// Package dclue is a from-scratch Go reproduction of DCLUE, the distributed
// cluster emulator behind K. Kant and A. Sahoo, "Clustered DBMS Scalability
// under Unified Ethernet Fabric" (ICPP 2005).
//
// It simulates a cache-fusion clustered OLTP DBMS whose inter-process
// communication, iSCSI storage traffic and client-server traffic all share
// one TCP/IP-over-Ethernet fabric: a discrete-event kernel, packet-level
// Ethernet/router/QoS models, TCP Reno with SACK-style recovery and ECN, a
// CPU/thread/memory platform model, per-node disks with iSCSI access, a
// functional mini-DBMS (B+-trees, buffer caches, MVCC, two-phase subpage
// locking, write-ahead logging, cache-fusion directory protocol), the full
// TPC-C workload with the paper's affinity parameter, and FTP cross
// traffic.
//
// The simplest entry point:
//
//	p := dclue.DefaultParams(4) // a 4-node cluster at the paper's defaults
//	p.Affinity = 0.8
//	m, err := dclue.Run(p)
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(m)
//
// Experiments reproducing the paper's figures live behind Figures and
// RunFigure; see EXPERIMENTS.md for the measured results.
package dclue

import (
	"dclue/internal/core"
	"dclue/internal/experiments"
	"dclue/internal/faults"
	"dclue/internal/runner"
	"dclue/internal/sim"
	"dclue/internal/telemetry"
	"dclue/internal/trace"
)

// Params configures a cluster simulation; see core.Params for every knob.
type Params = core.Params

// Metrics is the measurement set one run produces.
type Metrics = core.Metrics

// CapacityResult reports a capacity search outcome.
type CapacityResult = core.CapacityResult

// Time is simulated time in nanoseconds.
type Time = sim.Time

// Convenient duration units of simulated time.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultParams returns the paper's baseline configuration (scale factor
// 100, P4 DP nodes, 1 Gb/s Ethernet, HW TCP/iSCSI, affinity 0.8) for the
// given cluster size.
func DefaultParams(nodes int) Params { return core.DefaultParams(nodes) }

// Run builds the cluster, simulates warmup plus the measurement window, and
// returns the metrics. It returns an error for an invalid fault schedule,
// a setup failure, or a wedged simulation (kernel deadlock watchdog).
func Run(p Params) (Metrics, error) { return core.Run(p) }

// FaultSchedule validates a fault-injection schedule in the compact syntax
// accepted by Params.FaultSpec, returning its normalized form.
func FaultSchedule(spec string) (string, error) {
	sch, err := faults.ParseSchedule(spec)
	if err != nil {
		return "", err
	}
	return sch.String(), nil
}

// MeasureCapacity finds the largest TPC-C configuration (warehouses, at
// 12.5 tpm-C offered per warehouse) the cluster sustains with healthy
// response times, following the benchmark's size-to-throughput rule the
// paper's scaling studies rely on.
func MeasureCapacity(p Params, maxWarehousesPerNode int) CapacityResult {
	return core.MeasureCapacity(p, maxWarehousesPerNode)
}

// SweepPool is the bounded work-stealing worker pool the parallel sweep
// engine fans independent simulation points across. A nil pool is valid
// and means fully sequential execution.
type SweepPool = runner.Pool

// NewSweepPool returns a pool of the given width; workers <= 0 picks
// GOMAXPROCS, workers == 1 forces sequential execution.
func NewSweepPool(workers int) *SweepPool { return runner.New(workers) }

// SweepPoint is one independent simulation job in a sweep.
type SweepPoint = runner.Point

// SweepResult pairs a SweepPoint with its run outcome.
type SweepResult = runner.PointResult

// RunSweep evaluates every point on the pool and returns results in point
// order: a parallel sweep merges identically to a sequential one.
func RunSweep(pool *SweepPool, pts []SweepPoint) []SweepResult {
	return pool.RunPoints(pts)
}

// MeasureCapacityWith is MeasureCapacity with speculative parallel probing
// on the pool's free workers; the result is byte-identical to the
// sequential search.
func MeasureCapacityWith(pool *SweepPool, p Params, maxWarehousesPerNode int) CapacityResult {
	return runner.Capacity(pool, p, maxWarehousesPerNode)
}

// ExperimentOptions control the figure-reproduction sweeps.
type ExperimentOptions = experiments.Options

// ExperimentResult is one regenerated figure.
type ExperimentResult = experiments.Result

// Figure is one runnable paper-figure experiment.
type Figure = experiments.Figure

// Figures lists every paper figure experiment in order (Fig 2 .. Fig 16).
func Figures() []Figure { return experiments.All() }

// RunFigures runs the given figures — fanning across figures and sweep
// points on o.Pool when set — and returns results in input order.
func RunFigures(figs []Figure, o ExperimentOptions) []ExperimentResult {
	return experiments.RunAll(figs, o)
}

// RunFigure runs the experiment for the given figure id ("fig06" or "6").
// ok is false for an unknown id.
func RunFigure(id string, o ExperimentOptions) (ExperimentResult, bool) {
	f, ok := experiments.Lookup(id)
	if !ok {
		return ExperimentResult{}, false
	}
	return f.Run(o), true
}

// AblationList returns the design-choice ablation experiments: QoS remedy
// (WFQ), shared-SAN storage, subpage granularity, group commit, elevator
// scheduling, and warm start.
func AblationList() []Figure { return experiments.Ablations() }

// FaultList returns the graceful-degradation experiments driven by the
// fault-injection subsystem (an extension beyond the paper's fault-free
// scope): loss-intensity sweep, fault-window recovery timeline, and a
// per-layer (network/node/storage) comparison.
func FaultList() []Figure { return experiments.FaultFigures() }

// RunFault runs the fault experiment with the given id ("flt-loss" or
// "loss").
func RunFault(id string, o ExperimentOptions) (ExperimentResult, bool) {
	f, ok := experiments.LookupFault(id)
	if !ok {
		return ExperimentResult{}, false
	}
	return f.Run(o), true
}

// RunAblation runs the ablation with the given id ("abl-qos" or "qos").
func RunAblation(id string, o ExperimentOptions) (ExperimentResult, bool) {
	f, ok := experiments.LookupAblation(id)
	if !ok {
		return ExperimentResult{}, false
	}
	return f.Run(o), true
}

// TraceCollector gathers transaction spans and queue gauges across runs: set
// one on Params.Trace (or ExperimentOptions.Trace) and every run records a
// per-phase latency breakdown into its Metrics; with KeepEvents enabled the
// collector additionally retains span segments and gauges exportable as
// JSONL or a Chrome trace_event file (WriteFile). Tracing never perturbs a
// run: metrics outside the breakdown are bit-identical with tracing on or
// off (Metrics.FingerprintSansTrace is the regression hook).
type TraceCollector = trace.Collector

// LatencyBreakdown is the span-derived per-phase decomposition inside
// Metrics.
type LatencyBreakdown = core.LatencyBreakdown

// NewTraceCollector returns a collector sampling every n-th transaction per
// run (n <= 1 traces every transaction).
func NewTraceCollector(n int) *TraceCollector { return trace.NewCollector(n) }

// TelemetryCollector is the unified metrics registry: set one on
// Params.Telemetry (or ExperimentOptions.Telemetry) and every run registers
// per-component utilization instruments — link busy time and bytes attributed
// to traffic class (IPC, iSCSI, client, FTP, heartbeat), NIC and router-port
// queue occupancy, per-node CPU busy split, per-spindle disk utilization,
// GCS message rates and lock waits, and recovery phase timelines — plus the
// Metrics.UtilDecomp summary. Registries are exportable as a JSONL
// timeseries or a Prometheus text snapshot (WriteFile, WriteJSONL,
// WritePrometheus). Telemetry never perturbs a run: metrics outside the
// decomposition are bit-identical with telemetry on or off
// (Metrics.FingerprintSansTelemetry is the regression hook).
type TelemetryCollector = telemetry.Collector

// NewTelemetryCollector returns a collector whose instrument timelines use
// the given bucket width; bucket 0 records end-of-run scalars only.
func NewTelemetryCollector(bucket Time) *TelemetryCollector {
	return telemetry.NewCollector(bucket)
}

// UtilDecomp is the telemetry-derived utilization decomposition inside
// Metrics.
type UtilDecomp = core.UtilDecomp

// ClassUtil splits link busy seconds by traffic class.
type ClassUtil = core.ClassUtil

// TelemetryList returns the telemetry experiments (the utilization-
// decomposition table).
func TelemetryList() []Figure { return experiments.TelemetryFigures() }

// RunTelemetry runs the telemetry experiment with the given id
// ("util-decomp" or "decomp").
func RunTelemetry(id string, o ExperimentOptions) (ExperimentResult, bool) {
	f, ok := experiments.LookupTelemetry(id)
	if !ok {
		return ExperimentResult{}, false
	}
	return f.Run(o), true
}

// TraceList returns the span-tracing experiments (the latency-decomposition
// table).
func TraceList() []Figure { return experiments.TraceFigures() }

// RunTrace runs the trace experiment with the given id ("lat-decomp" or
// "decomp").
func RunTrace(id string, o ExperimentOptions) (ExperimentResult, bool) {
	f, ok := experiments.LookupTrace(id)
	if !ok {
		return ExperimentResult{}, false
	}
	return f.Run(o), true
}
