package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"dclue"
	"dclue/internal/farm"
)

// statusServer serves the -status observability endpoints while a sweep
// runs:
//
//	/status   live progress JSON — wall-clock elapsed plus, under -farm, the
//	          coordinator snapshot (cumulative counters, per-worker health
//	          and restart counts, every point's current state)
//	/metrics  Prometheus text snapshot of the telemetry registries sealed so
//	          far (one registry per completed telemetered run)
//
// Both read consistent snapshots (the coordinator copies under its lock;
// only sealed registries are exported), so serving concurrently with the
// sweep never races it — and never perturbs it, since handlers only read.
type statusServer struct {
	start time.Time
	coord *farm.Coordinator       // nil without -farm
	tel   *dclue.TelemetryCollector // nil without -telemetry
}

// statusReply is the /status response body.
type statusReply struct {
	ElapsedSec float64      `json:"elapsed_s"`
	Farm       *farm.Status `json:"farm,omitempty"`
}

func newStatusServer(coord *farm.Coordinator, tel *dclue.TelemetryCollector) http.Handler {
	s := &statusServer{start: time.Now(), coord: coord, tel: tel}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.serveStatus)
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/", s.serveIndex)
	return mux
}

func (s *statusServer) serveStatus(w http.ResponseWriter, r *http.Request) {
	rep := statusReply{ElapsedSec: time.Since(s.start).Seconds()}
	if s.coord != nil {
		st := s.coord.Status()
		rep.Farm = &st
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

func (s *statusServer) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.tel == nil {
		fmt.Fprintln(w, "# no telemetry collector attached (run with -telemetry)")
		return
	}
	s.tel.WritePrometheus(w)
}

func (s *statusServer) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "dclueexp status endpoints:\n  /status   sweep + farm progress (JSON)\n  /metrics  telemetry snapshot (Prometheus text)")
}
