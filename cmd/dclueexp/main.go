// Command dclueexp regenerates the paper's figures (Figs 2-16 of Kant &
// Sahoo, ICPP 2005) and prints each as a text table.
//
// Sweeps run on a parallel work-stealing pool (-j workers, default
// GOMAXPROCS); the output is byte-identical to a sequential run (-seq),
// only faster. -bench appends a machine-readable record of the run —
// per-figure points, fingerprints and wall-clock — to BENCH_sweeps.json.
//
// Examples:
//
//	dclueexp -fig 6                  # throughput scaling vs nodes and affinity
//	dclueexp -all -quick -j 4        # every figure, reduced sweeps, 4 workers
//	dclueexp -all -quick -seq        # same output, one worker
//	dclueexp -all -quick -bench BENCH_sweeps.json
//	dclueexp -run lat-decomp -quick  # latency decomposition by phase
//	dclueexp -fig 2 -quick -trace fig2.json   # same table + Chrome trace
//	dclueexp -run util-decomp -quick -telemetry util.jsonl -telemetry-bucket 5
//	dclueexp -all -quick -farm 4     # shard points across 4 worker processes
//	dclueexp -all -quick -farm 4 -status :8080   # live progress at /status
//	dclueexp -list
//
// -farm N runs the sweep as a coordinator that shards simulation points
// across N exec'd copies of this binary (each running in -worker mode,
// speaking line-delimited JSON over stdin/stdout). Every completed point is
// checkpointed atomically under -results-dir, so a killed sweep resumes
// where it left off, and cached under -cache-dir keyed by (params, seed,
// binary hash), so a repeated sweep is served from disk. Tables are
// byte-identical to in-process runs at any worker count.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"dclue"
	"dclue/internal/cliutil"
	"dclue/internal/farm"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to reproduce (2..16)")
		all       = flag.Bool("all", false, "reproduce every figure")
		ablation  = flag.String("ablation", "", "ablation to run (see -list)")
		ablations = flag.Bool("ablations", false, "run every ablation")
		fault     = flag.String("fault", "", "fault experiment to run (see -list)")
		faultsAll = flag.Bool("faults", false, "run every fault experiment")
		runID     = flag.String("run", "", "experiment to run by id, searched across figures, ablations, fault and trace experiments")
		list      = flag.Bool("list", false, "list available figures and ablations")
		quick     = flag.Bool("quick", false, "reduced sweeps and shorter runs")
		chart     = flag.Bool("chart", false, "render ASCII charts instead of tables")
		seed      = flag.Uint64("seed", 1, "random seed")
		jobs      = flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		seq       = flag.Bool("seq", false, "force fully sequential sweeps (same as -j 1)")
		bench     = flag.String("bench", "", "append a run record (figures, fingerprints, wall-clock) to this JSON file")
		traceF    = flag.String("trace", "", "trace every run's transaction spans and write them to this file (.jsonl = JSONL; else Chrome trace_event JSON); tables are unaffected")
		traceN    = flag.Int("trace-sample", 1, "with -trace, trace every Nth transaction per run")
		telemF    = flag.String("telemetry", "", "record per-component utilization telemetry for every run and write it to this file (.prom/.txt = Prometheus text snapshot; else JSONL timeseries); tables are unaffected")
		telemBkt  = flag.Float64("telemetry-bucket", 0, "with -telemetry, timeline bucket size in simulated seconds (0 = end-of-run scalars only)")
		statusA   = flag.String("status", "", "serve a live status endpoint on this address (e.g. :8080): farm progress JSON at /status, Prometheus telemetry snapshot at /metrics")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep process to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		farmN     = flag.Int("farm", 0, "shard point execution across N exec'd worker processes (0 = in-process)")
		workerF   = flag.Bool("worker", false, "farm worker mode: serve jobs over stdin/stdout and exit on EOF (spawned by -farm)")
		resDir    = flag.String("results-dir", ".dcluefarm/results", "with -farm, per-sweep checkpoint directory (reuse it to resume an interrupted sweep)")
		cacheDir  = flag.String("cache-dir", ".dcluefarm/cache", "with -farm, cross-sweep result cache directory (empty disables caching)")
	)
	flag.Parse()

	if *workerF {
		// Workers do nothing but serve jobs: no profiles, no figures, no
		// output beyond protocol replies on stdout and diagnostics on
		// stderr. EOF on stdin (coordinator gone) ends the process.
		if err := farm.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dclueexp worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}

	stopProf, err := cliutil.StartProfiles(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dclueexp:", err)
		os.Exit(1)
	}
	// exit stops the worker farm and flushes the profiles before leaving
	// (os.Exit skips defers).
	var coord *farm.Coordinator
	exit := func(code int) {
		if coord != nil {
			coord.Close()
		}
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dclueexp:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if *farmN > 0 {
			// The farm moves point execution out of this process, so the
			// natural in-process dispatch width is the worker count: enough
			// in-flight points to keep every worker busy, no more.
			workers = *farmN
		}
	}
	if *seq {
		workers = 1
	}
	var pool *dclue.SweepPool
	if workers > 1 {
		pool = dclue.NewSweepPool(workers)
	}
	opts := dclue.ExperimentOptions{Seed: *seed, Quick: *quick, Log: os.Stderr, Pool: pool}

	var col *dclue.TraceCollector
	if *traceF != "" {
		if *farmN > 0 {
			// Breakdown histograms survive farming (workers re-attach a
			// collector per point), but exported span events are local to
			// each worker process and cannot be stitched back together.
			fmt.Fprintln(os.Stderr, "dclueexp: -trace cannot be combined with -farm")
			exit(2)
		}
		col = dclue.NewTraceCollector(*traceN)
		col.KeepEvents(0)
		opts.Trace = col
	}

	var tel *dclue.TelemetryCollector
	if *telemF != "" {
		if *farmN > 0 {
			// Metrics.UtilDecomp survives farming (workers re-attach a
			// collector per point), but the registries behind the JSONL and
			// Prometheus exports die with each worker process.
			fmt.Fprintln(os.Stderr, "dclueexp: -telemetry cannot be combined with -farm")
			exit(2)
		}
		tel = dclue.NewTelemetryCollector(dclue.Time(*telemBkt * float64(dclue.Second)))
		opts.Telemetry = tel
	} else if *telemBkt != 0 {
		fmt.Fprintln(os.Stderr, "dclueexp: -telemetry-bucket requires -telemetry")
		exit(2)
	}

	if *farmN > 0 {
		exe, err := os.Executable()
		if err != nil {
			exe = os.Args[0]
		}
		coord, err = farm.New(farm.Config{
			Workers:    *farmN,
			Argv:       []string{exe, "-worker"},
			ResultsDir: *resDir,
			CacheDir:   *cacheDir,
			Stderr:     os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dclueexp:", err)
			exit(1)
		}
		opts.Exec = coord.Exec
	}

	if *statusA != "" {
		ln, err := net.Listen("tcp", *statusA)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dclueexp: status:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "status: serving on http://%s (/status, /metrics)\n", ln.Addr())
		//lint:allow goroutine the status endpoint serves HTTP beside the sweep and only reads lock-protected snapshots, never sim state
		go http.Serve(ln, newStatusServer(coord, tel))
	}

	var figs []dclue.Figure
	unknown := func(what, id string) {
		fmt.Fprintf(os.Stderr, "unknown %s %q; try -list\n", what, id)
		exit(2)
	}
	everything := func() []dclue.Figure {
		fs := dclue.Figures()
		fs = append(fs, dclue.AblationList()...)
		fs = append(fs, dclue.FaultList()...)
		fs = append(fs, dclue.TraceList()...)
		fs = append(fs, dclue.TelemetryList()...)
		return fs
	}
	switch {
	case *list:
		for _, f := range everything() {
			fmt.Printf("%-16s %s\n", f.ID, f.Title)
		}
		exit(0)
	case *runID != "":
		figs = pick(everything(), func(f dclue.Figure) bool {
			return f.ID == *runID || f.ID == "flt-"+*runID || f.ID == "abl-"+*runID || f.ID == "lat-"+*runID || f.ID == "util-"+*runID
		})
		if figs == nil {
			unknown("experiment", *runID)
		}
	case *faultsAll:
		figs = dclue.FaultList()
	case *fault != "":
		figs = pick(dclue.FaultList(), func(f dclue.Figure) bool {
			return f.ID == *fault || f.ID == "flt-"+*fault
		})
		if figs == nil {
			unknown("fault experiment", *fault)
		}
	case *ablations:
		figs = dclue.AblationList()
	case *ablation != "":
		figs = pick(dclue.AblationList(), func(f dclue.Figure) bool {
			return f.ID == *ablation || f.ID == "abl-"+*ablation
		})
		if figs == nil {
			unknown("ablation", *ablation)
		}
	case *all:
		figs = dclue.Figures()
	case *fig != "":
		figs = pick(dclue.Figures(), func(f dclue.Figure) bool {
			return f.ID == *fig || f.ID == "fig0"+*fig || f.ID == "fig"+*fig
		})
		if figs == nil {
			unknown("figure", *fig)
		}
	default:
		flag.Usage()
		exit(2)
	}

	// Wrap every figure so its wall-clock is captured even when the pool
	// interleaves figures; results still merge in figure order.
	elapsed := make([]time.Duration, len(figs))
	timed := make([]dclue.Figure, len(figs))
	for i, f := range figs {
		i, f := i, f
		timed[i] = f
		timed[i].Run = func(o dclue.ExperimentOptions) dclue.ExperimentResult {
			t0 := time.Now()
			r := f.Run(o)
			elapsed[i] = time.Since(t0)
			return r
		}
	}
	start := time.Now()
	results := dclue.RunFigures(timed, opts)
	total := time.Since(start)

	for i, r := range results {
		if *chart {
			fmt.Print(r.Chart())
		} else {
			fmt.Print(r.Table())
		}
		if len(results) > 1 {
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "%-16s %8.1fs  fingerprint=%016x\n", r.ID, elapsed[i].Seconds(), r.Fingerprint())
	}
	fmt.Fprintf(os.Stderr, "total %.1fs (%d figures, %d workers, GOMAXPROCS=%d)\n",
		total.Seconds(), len(results), workers, runtime.GOMAXPROCS(0))

	var farmStats *benchFarm
	if coord != nil {
		st := coord.Stats()
		alive := 0
		for _, ws := range coord.Status().Workers {
			if ws.Alive {
				alive++
			}
		}
		fmt.Fprintf(os.Stderr, "farm: workers=%d points=%d checkpoint=%d cache=%d exec=%d requeued=%d restarts=%d failures=%d alive=%d\n",
			*farmN, st.Points, st.CheckpointHits, st.CacheHits, st.Execs, st.Requeues, st.Restarts, st.Failures, alive)
		farmStats = &benchFarm{
			Workers:        *farmN,
			Points:         st.Points,
			CheckpointHits: st.CheckpointHits,
			CacheHits:      st.CacheHits,
			Execs:          st.Execs,
			Requeues:       st.Requeues,
			Restarts:       st.Restarts,
		}
	}

	if *bench != "" {
		rec := benchRun{
			Timestamp:  cliutil.NowUTC().Format(time.RFC3339),
			Jobs:       workers,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Quick:      *quick,
			Seed:       *seed,
			Telemetry:  tel != nil,
			TotalSec:   round3(total.Seconds()),
			Farm:       farmStats,
		}
		for i, r := range results {
			points := 0
			for _, s := range r.Series {
				points += len(s.Points)
			}
			rec.Figures = append(rec.Figures, benchFigure{
				ID:          r.ID,
				Points:      points,
				Fingerprint: fmt.Sprintf("%016x", r.Fingerprint()),
				Seconds:     round3(elapsed[i].Seconds()),
			})
		}
		if err := appendBench(*bench, rec); err != nil {
			fmt.Fprintln(os.Stderr, "dclueexp: bench:", err)
			exit(1)
		}
	}
	if col != nil {
		if err := col.WriteFile(*traceF); err != nil {
			fmt.Fprintln(os.Stderr, "dclueexp: trace:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s\n", *traceF)
	}
	if tel != nil {
		if err := tel.WriteFile(*telemF); err != nil {
			fmt.Fprintln(os.Stderr, "dclueexp: telemetry:", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote %s\n", *telemF)
	}
	exit(0)
}

// pick returns the figures matching ok, or nil if none match.
func pick(figs []dclue.Figure, ok func(dclue.Figure) bool) []dclue.Figure {
	for _, f := range figs {
		if ok(f) {
			return []dclue.Figure{f}
		}
	}
	return nil
}
