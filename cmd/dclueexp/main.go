// Command dclueexp regenerates the paper's figures (Figs 2-16 of Kant &
// Sahoo, ICPP 2005) and prints each as a text table.
//
// Examples:
//
//	dclueexp -fig 6            # throughput scaling vs nodes and affinity
//	dclueexp -all -quick       # every figure, reduced sweeps
//	dclueexp -list
package main

import (
	"flag"
	"fmt"
	"os"

	"dclue"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to reproduce (2..16)")
		all       = flag.Bool("all", false, "reproduce every figure")
		ablation  = flag.String("ablation", "", "ablation to run (see -list)")
		ablations = flag.Bool("ablations", false, "run every ablation")
		fault     = flag.String("fault", "", "fault experiment to run (see -list)")
		faultsAll = flag.Bool("faults", false, "run every fault experiment")
		list      = flag.Bool("list", false, "list available figures and ablations")
		quick     = flag.Bool("quick", false, "reduced sweeps and shorter runs")
		chart     = flag.Bool("chart", false, "render ASCII charts instead of tables")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := dclue.ExperimentOptions{Seed: *seed, Quick: *quick, Log: os.Stderr}
	render := func(r dclue.ExperimentResult) string {
		if *chart {
			return r.Chart()
		}
		return r.Table()
	}

	switch {
	case *list:
		for _, f := range dclue.Figures() {
			fmt.Printf("%-16s %s\n", f.ID, f.Title)
		}
		for _, f := range dclue.AblationList() {
			fmt.Printf("%-16s %s\n", f.ID, f.Title)
		}
		for _, f := range dclue.FaultList() {
			fmt.Printf("%-16s %s\n", f.ID, f.Title)
		}
	case *faultsAll:
		for _, f := range dclue.FaultList() {
			fmt.Print(render(f.Run(opts)))
			fmt.Println()
		}
	case *fault != "":
		r, ok := dclue.RunFault(*fault, opts)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown fault experiment %q; try -list\n", *fault)
			os.Exit(2)
		}
		fmt.Print(render(r))
	case *ablations:
		for _, f := range dclue.AblationList() {
			fmt.Print(render(f.Run(opts)))
			fmt.Println()
		}
	case *ablation != "":
		r, ok := dclue.RunAblation(*ablation, opts)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown ablation %q; try -list\n", *ablation)
			os.Exit(2)
		}
		fmt.Print(render(r))
	case *all:
		for _, f := range dclue.Figures() {
			fmt.Print(render(f.Run(opts)))
			fmt.Println()
		}
	case *fig != "":
		r, ok := dclue.RunFigure(*fig, opts)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; try -list\n", *fig)
			os.Exit(2)
		}
		fmt.Print(render(r))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
