package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// benchFigure is one figure's slice of a bench run record.
type benchFigure struct {
	ID          string  `json:"id"`
	Points      int     `json:"points"`
	Fingerprint string  `json:"fingerprint"`
	Seconds     float64 `json:"seconds"`
}

// benchRun records one dclueexp invocation: what ran, at what parallelism,
// on what hardware, how long each figure took, and the sequential-equivalent
// fingerprint of every table (identical across -j values by construction).
type benchRun struct {
	Timestamp  string        `json:"timestamp"`
	Jobs       int           `json:"jobs"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	Quick      bool          `json:"quick"`
	Seed       uint64        `json:"seed"`
	Telemetry  bool          `json:"telemetry,omitempty"`
	TotalSec   float64       `json:"total_seconds"`
	Farm       *benchFarm    `json:"farm,omitempty"`
	Figures    []benchFigure `json:"figures"`
}

// benchFarm records a -farm run's coordinator counters: how many points the
// sweep needed and how each was satisfied (checkpoint, cache, or a worker
// execution). A warm rerun shows the same points with execs near zero.
type benchFarm struct {
	Workers        int    `json:"workers"`
	Points         uint64 `json:"points"`
	CheckpointHits uint64 `json:"checkpoint_hits"`
	CacheHits      uint64 `json:"cache_hits"`
	Execs          uint64 `json:"execs"`
	Requeues       uint64 `json:"requeues"`
	Restarts       uint64 `json:"restarts"`
}

type benchFile struct {
	Runs []benchRun `json:"runs"`
}

// appendBench appends rec to the run list in path, creating the file if
// needed, so successive -j1 / -jN invocations accumulate comparable records.
func appendBench(path string, rec benchRun) error {
	var bf benchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &bf); err != nil {
			return fmt.Errorf("%s: existing file is not a bench record: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	bf.Runs = append(bf.Runs, rec)
	out, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// round3 keeps the JSON timings readable (millisecond resolution).
func round3(s float64) float64 { return math.Round(s*1000) / 1000 }
