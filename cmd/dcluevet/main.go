// Command dcluevet runs the determinism lint suite over the module: six
// analyzers that enforce at the source level the invariants the runtime
// regressions (fingerprint determinism, byte-identical parallel sweeps,
// trace non-perturbation) check at run time. See internal/lint/RULES.md for
// the rule catalog and the //lint:allow suppression syntax.
//
// Usage:
//
//	dcluevet [flags] [packages]      # default ./...
//	dcluevet -list                   # describe the analyzers
//	dcluevet -only simtime,simrand ./internal/...
//	dcluevet -cache .dcluevet-cache ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dclue/internal/lint"
	"dclue/internal/lint/analysis"
	"dclue/internal/lint/analyzers"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the analyzers and the invariant each enforces")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		cacheDir = flag.String("cache", "", "facts-cache directory: per-package findings keyed by transitive content hash")
		verbose  = flag.Bool("v", false, "print loader warnings (stubbed imports, degraded types)")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}

	suite := analyzers.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dcluevet: unknown analyzer %q; try -list\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	opts := lint.Options{
		Patterns:  flag.Args(),
		Analyzers: suite,
		CacheDir:  *cacheDir,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	findings, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcluevet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dcluevet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
