// Command dcluevet runs the determinism and lifetime lint suite over the
// module: nine analyzers that enforce at the source level the invariants
// the runtime regressions (fingerprint determinism, byte-identical parallel
// sweeps, trace non-perturbation, pool balance) check at run time. See
// internal/lint/RULES.md for the rule catalog and the //lint:allow
// suppression syntax.
//
// Usage:
//
//	dcluevet [flags] [packages]      # default ./...
//	dcluevet -list                   # describe the analyzers
//	dcluevet -only poolown,eventid ./internal/...
//	dcluevet -cache .dcluevet-cache ./...
//	dcluevet -sarif findings.sarif   # also write SARIF 2.1.0 for code scanning
//	dcluevet -allow-audit            # report stale //lint:allow directives
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dclue/internal/lint"
	"dclue/internal/lint/analysis"
	"dclue/internal/lint/analyzers"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list the analyzers and the invariant each enforces")
		only       = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		cacheDir   = flag.String("cache", "", "facts-cache directory: per-package findings keyed by transitive content hash")
		sarifFile  = flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file (for GitHub code scanning upload)")
		allowAudit = flag.Bool("allow-audit", false, "also report //lint:allow directives that suppress nothing (runs the full suite, bypasses the cache)")
		verbose    = flag.Bool("v", false, "print loader warnings (stubbed imports, degraded types)")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}

	suite := analyzers.All()
	if *only != "" && *allowAudit {
		// A filtered suite cannot tell a stale directive from one whose
		// analyzer simply didn't run; the audit only means something over
		// the full suite.
		fmt.Fprintln(os.Stderr, "dcluevet: -allow-audit runs the full suite; ignoring -only")
		*only = ""
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dcluevet: unknown analyzer %q; try -list\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	opts := lint.Options{
		Patterns:   flag.Args(),
		Analyzers:  suite,
		CacheDir:   *cacheDir,
		AllowAudit: *allowAudit,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	findings, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcluevet:", err)
		os.Exit(2)
	}
	if *sarifFile != "" {
		if err := writeSARIFFile(*sarifFile, findings, suite); err != nil {
			fmt.Fprintln(os.Stderr, "dcluevet: writing sarif:", err)
			os.Exit(2)
		}
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dcluevet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// writeSARIFFile renders findings relative to the working directory, which
// in CI is the repository checkout — exactly what %SRCROOT% means to the
// code-scanning upload.
func writeSARIFFile(path string, findings []lint.Finding, suite []*analysis.Analyzer) error {
	root, _ := os.Getwd()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lint.WriteSARIF(f, findings, suite, root); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
