// Command dcluesim runs a single clustered-DBMS simulation and prints its
// metrics. Every major knob of the paper's study is a flag.
//
// Examples:
//
//	dcluesim -nodes 8 -affinity 0.8
//	dcluesim -nodes 8 -affinity 0.5 -swtcp -swiscsi
//	dcluesim -nodes 8 -lata 4 -crosstraffic 100e6 -priority
//	dcluesim -nodes 4 -capacity
//	dcluesim -nodes 4 -faults "linkdown:node:1@200+20" -timeline 5
//	dcluesim -nodes 4 -faults "crash:dp1@200+0;restart:dp1@260+0" -timeline 5
//	dcluesim -nodes 4 -trace trace.json            # Chrome trace_event file
//	dcluesim -nodes 4 -trace spans.jsonl -trace-sample 10
//	dcluesim -nodes 4 -telemetry util.jsonl -telemetry-bucket 5
//	dcluesim -nodes 4 -telemetry snapshot.prom     # Prometheus text snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dclue"
	"dclue/internal/cliutil"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 4, "cluster size (server nodes)")
		lata       = flag.Int("lata", 12, "max nodes per LATA (subcluster)")
		affinity   = flag.Float64("affinity", 0.8, "probability a query routes to its home server")
		warehouses = flag.Int("warehouses", 0, "scaled warehouse count (0 = 40 per node)")
		capacity   = flag.Bool("capacity", false, "binary-search the max sustainable configuration instead of one run")
		swTCP      = flag.Bool("swtcp", false, "software TCP instead of HW offload")
		swISCSI    = flag.Bool("swiscsi", false, "software iSCSI instead of HW offload")
		central    = flag.Bool("centrallog", false, "centralized (single-node) logging")
		lowComp    = flag.Bool("lowcomp", false, "divide DB path lengths by 4 (the paper's low-computation variant)")
		cross      = flag.Float64("crosstraffic", 0, "offered FTP cross traffic, unscaled bits/s (e.g. 100e6)")
		priority   = flag.Bool("priority", false, "give cross traffic AF21 priority")
		extraRTT   = flag.Float64("extra-rtt-ms", 0, "added inter-LATA round-trip latency, unscaled milliseconds")
		fwdRate    = flag.Float64("router-pps", 10000, "router forwarding rate in the scaled model, packets/s")
		seed       = flag.Uint64("seed", 1, "random seed")
		warmup     = flag.Float64("warmup", 150, "warm-up, simulated seconds")
		measure    = flag.Float64("measure", 240, "measurement window, simulated seconds")
		faultSpec  = flag.String("faults", "", `fault schedule, e.g. "linkdown:node:1@200+20;crash:dp1@250+0;restart:dp1@300+0"`)
		heartbeat  = flag.Float64("heartbeat", 0, "membership heartbeat cadence, simulated seconds (0 = 5 ms scaled; crash/restart runs only)")
		suspect    = flag.Float64("suspect-after", 0, "membership lease: suspect a peer silent this long, simulated seconds (0 = 4x heartbeat)")
		checkpoint = flag.Float64("checkpoint", 0, "dirty-page checkpoint cadence, simulated seconds (0 = 10 s scaled); bounds redo-log replay after a crash")
		retryMax   = flag.Float64("retry-delay-max", 0, "cap on the exponential retry backoff under recovery, simulated seconds (0 = 16x retry delay)")
		timeline   = flag.Float64("timeline", 0, "print a throughput timeline at this bucket size, simulated seconds")
		jobs       = flag.Int("j", 0, "workers for the -capacity search (0 = GOMAXPROCS; single runs are unaffected)")
		traceFile  = flag.String("trace", "", "trace transaction spans and write them to this file (.jsonl = JSONL events; anything else = Chrome trace_event JSON for chrome://tracing or Perfetto)")
		traceEvery = flag.Int("trace-sample", 1, "with -trace, trace every Nth transaction (deterministic modular sampling)")
		telemFile  = flag.String("telemetry", "", "record per-component utilization telemetry and write it to this file (.prom/.txt = Prometheus text snapshot; anything else = JSONL timeseries)")
		telemBkt   = flag.Float64("telemetry-bucket", 0, "with -telemetry, timeline bucket size in simulated seconds (0 = end-of-run scalars only)")
		cpuprof    = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator process to this file")
		memprof    = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := cliutil.StartProfiles(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcluesim:", err)
		os.Exit(1)
	}
	// exit flushes the profiles before leaving (os.Exit skips defers).
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dcluesim:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	p := dclue.DefaultParams(*nodes)
	p.NodesPerLata = *lata
	p.Affinity = *affinity
	p.Warehouses = *warehouses
	p.SWTCP = *swTCP
	p.SWiSCSI = *swISCSI
	p.CentralLogging = *central
	p.LowComputation = *lowComp
	p.CrossTrafficBps = *cross
	p.CrossTrafficPriority = *priority
	p.ExtraLatency = dclue.Time(*extraRTT / 2 * p.Scale * float64(dclue.Millisecond))
	p.RouterFwdRate = *fwdRate * 100 / p.Scale
	p.Seed = *seed
	p.Warmup = dclue.Time(*warmup * float64(dclue.Second))
	p.Measure = dclue.Time(*measure * float64(dclue.Second))
	p.FaultSpec = *faultSpec
	p.Heartbeat = dclue.Time(*heartbeat * float64(dclue.Second))
	p.SuspectAfter = dclue.Time(*suspect * float64(dclue.Second))
	p.CheckpointInterval = dclue.Time(*checkpoint * float64(dclue.Second))
	p.RetryDelayMax = dclue.Time(*retryMax * float64(dclue.Second))
	p.TimelineBucket = dclue.Time(*timeline * float64(dclue.Second))

	// Reject bad fault schedules up front: a typo'd target (crash:dp7 on a
	// 4-node cluster) should fail with the list of valid names, not surface
	// as a mid-run panic after the warm-up has burned real time.
	if err := p.ValidateFaultSpec(); err != nil {
		fmt.Fprintln(os.Stderr, "dcluesim: -faults:", err)
		exit(1)
	}

	var col *dclue.TraceCollector
	if *traceFile != "" {
		col = dclue.NewTraceCollector(*traceEvery)
		col.KeepEvents(0)
		p.Trace = col
	}
	var tel *dclue.TelemetryCollector
	if *telemFile != "" {
		tel = dclue.NewTelemetryCollector(dclue.Time(*telemBkt * float64(dclue.Second)))
		p.Telemetry = tel
	} else if *telemBkt != 0 {
		fmt.Fprintln(os.Stderr, "dcluesim: -telemetry-bucket requires -telemetry")
		exit(2)
	}
	writeTrace := func() {
		if col != nil {
			if err := col.WriteFile(*traceFile); err != nil {
				fmt.Fprintln(os.Stderr, "dcluesim: trace:", err)
				exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace: wrote %s\n", *traceFile)
		}
		if tel != nil {
			if err := tel.WriteFile(*telemFile); err != nil {
				fmt.Fprintln(os.Stderr, "dcluesim: telemetry:", err)
				exit(1)
			}
			fmt.Fprintf(os.Stderr, "telemetry: wrote %s\n", *telemFile)
		}
	}

	start := time.Now()
	if *capacity {
		workers := *jobs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		var pool *dclue.SweepPool
		if workers > 1 {
			pool = dclue.NewSweepPool(workers)
		}
		r := dclue.MeasureCapacityWith(pool, p, 48)
		fmt.Printf("capacity: %d warehouses (feasible=%v)\n", r.Warehouses, r.Feasible)
		fmt.Print(r.Metrics)
		fmt.Fprintf(os.Stderr, "elapsed %.1fs (%d workers)\n", time.Since(start).Seconds(), workers)
		writeTrace()
		if !r.Feasible {
			exit(1)
		}
		exit(0)
	}
	m, err := dclue.Run(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcluesim:", err)
		exit(1)
	}
	fmt.Print(m)
	fmt.Fprintf(os.Stderr, "elapsed %.1fs\n", time.Since(start).Seconds())
	for _, pt := range m.Timeline {
		fmt.Printf("  t=%6.1fs  %7.1f txn/s\n", pt.T.Seconds(), pt.TxnRate)
	}
	writeTrace()
	exit(0)
}
