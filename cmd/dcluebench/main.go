// dcluebench compares kernel microbenchmark results and reference-figure
// wall-clock against a checked-in baseline, failing on regression.
//
// It is the gate behind the CI kernel-bench job and `make kernel-bench`:
// the event-kernel rewrite (PR 7) bought a large per-point speedup, and this
// tool keeps later changes from silently giving it back. Two inputs feed it:
//
//   - the text output of `go test -bench` over internal/sim (-bench-out),
//     parsed for ns/op; repeated -count runs collapse to the per-benchmark
//     minimum, which is the least noisy central tendency for CI machines;
//   - a dclueexp -bench JSON record (-sweeps), parsed for per-figure
//     seconds, again taking the minimum across runs in the file.
//
// Each measurement is compared against bench/kernel_baseline.json. A current
// value above baseline*(1+tolerance) is a regression and the exit status is
// 1; missing measurements that the baseline names are also failures, so a
// renamed or deleted benchmark cannot silently drop out of the gate. Faster
// results are reported but never fail: refreshing the baseline downward is a
// deliberate act (-write-baseline), not an ambient ratchet.
//
// Exit codes: 0 ok, 1 regression or missing measurement, 2 usage/IO error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline is the checked-in reference the gate compares against. Tolerance
// lives in the file rather than a flag default so the acceptable noise band
// is versioned alongside the numbers it applies to.
type baseline struct {
	// Tolerance is the fractional regression budget: current values up to
	// baseline*(1+Tolerance) pass. It absorbs run-to-run jitter and modest
	// CI-machine variance; structural slowdowns exceed it.
	Tolerance float64 `json:"tolerance"`
	// NsPerOp maps benchmark name (no -GOMAXPROCS suffix) to ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// FigureSeconds maps figure ID (e.g. "fig02") to wall-clock seconds
	// for the quick-mode reference run.
	FigureSeconds map[string]float64 `json:"figure_seconds"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSchedule-8   30382518   36.09 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines are portable across
// machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBenchOut extracts min ns/op per benchmark from go test -bench text.
func parseBenchOut(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := out[m[1]]; !ok || v < cur {
			out[m[1]] = v
		}
	}
	return out, sc.Err()
}

// sweepFigure / sweepRun / sweepFile mirror the dclueexp -bench record
// shape; only the fields the gate reads are declared.
type sweepFigure struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

type sweepRun struct {
	Figures []sweepFigure `json:"figures"`
}

type sweepFile struct {
	Runs []sweepRun `json:"runs"`
}

// parseSweeps extracts min seconds per figure ID across all runs in a
// dclueexp -bench JSON record.
func parseSweeps(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sf sweepFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]float64)
	for _, run := range sf.Runs {
		for _, fig := range run.Figures {
			if cur, ok := out[fig.ID]; !ok || fig.Seconds < cur {
				out[fig.ID] = fig.Seconds
			}
		}
	}
	return out, nil
}

// compare checks every baseline entry against the measured map, printing one
// line per metric. It returns the number of failures (regressions beyond
// tolerance, plus baseline metrics with no measurement).
func compare(kind string, base, got map[string]float64, tol float64) int {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		want := base[name]
		cur, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %s %s: no measurement (baseline %.3g)\n", kind, name, want)
			failures++
			continue
		}
		limit := want * (1 + tol)
		delta := (cur - want) / want * 100
		switch {
		case cur > limit:
			fmt.Printf("FAIL %s %s: %.3g vs baseline %.3g (%+.1f%%, budget %.0f%%)\n",
				kind, name, cur, want, delta, tol*100)
			failures++
		default:
			fmt.Printf("ok   %s %s: %.3g vs baseline %.3g (%+.1f%%)\n",
				kind, name, cur, want, delta)
		}
	}
	return failures
}

func run() int {
	benchOut := flag.String("bench-out", "", "go test -bench output text to check ns/op against baseline")
	sweeps := flag.String("sweeps", "", "dclueexp -bench JSON record to check figure seconds against baseline")
	basePath := flag.String("baseline", "bench/kernel_baseline.json", "checked-in baseline file")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the baseline from the current inputs instead of comparing")
	tolFlag := flag.Float64("tolerance", -1, "override the baseline file's regression budget (fraction, e.g. 0.20)")
	flag.Parse()
	if *benchOut == "" && *sweeps == "" {
		fmt.Fprintln(os.Stderr, "dcluebench: need -bench-out and/or -sweeps")
		flag.Usage()
		return 2
	}

	nsPerOp := map[string]float64{}
	figSeconds := map[string]float64{}
	var err error
	if *benchOut != "" {
		if nsPerOp, err = parseBenchOut(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "dcluebench: %v\n", err)
			return 2
		}
		if len(nsPerOp) == 0 {
			fmt.Fprintf(os.Stderr, "dcluebench: %s: no benchmark result lines found\n", *benchOut)
			return 2
		}
	}
	if *sweeps != "" {
		if figSeconds, err = parseSweeps(*sweeps); err != nil {
			fmt.Fprintf(os.Stderr, "dcluebench: %v\n", err)
			return 2
		}
		if len(figSeconds) == 0 {
			fmt.Fprintf(os.Stderr, "dcluebench: %s: no figure timings found\n", *sweeps)
			return 2
		}
	}

	if *writeBaseline {
		tol := 0.20
		if *tolFlag >= 0 {
			tol = *tolFlag
		}
		out, err := json.MarshalIndent(baseline{Tolerance: tol, NsPerOp: nsPerOp, FigureSeconds: figSeconds}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcluebench: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*basePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dcluebench: %v\n", err)
			return 2
		}
		fmt.Printf("wrote %s (%d benchmarks, %d figures, tolerance %.0f%%)\n",
			*basePath, len(nsPerOp), len(figSeconds), tol*100)
		return 0
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcluebench: %v\n", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "dcluebench: %s: %v\n", *basePath, err)
		return 2
	}
	tol := base.Tolerance
	if *tolFlag >= 0 {
		tol = *tolFlag
	}

	failures := 0
	if *benchOut != "" {
		failures += compare("bench", base.NsPerOp, nsPerOp, tol)
	}
	if *sweeps != "" {
		failures += compare("figure", base.FigureSeconds, figSeconds, tol)
	}
	if failures > 0 {
		fmt.Printf("%d regression(s) beyond the %.0f%% budget\n", failures, tol*100)
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }
