package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOut(t *testing.T) {
	path := writeTemp(t, "bench.txt", `goos: linux
goarch: amd64
pkg: dclue/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSchedule-8      	30382518	        36.09 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedule-8      	35086632	        34.50 ns/op	       0 B/op	       0 allocs/op
BenchmarkCancel          	17569423	        68.16 ns/op	       0 B/op	       0 allocs/op
BenchmarkProcSwitch-8    	 1000000	      1280 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	dclue/internal/sim	15.147s
`)
	got, err := parseBenchOut(path)
	if err != nil {
		t.Fatal(err)
	}
	// The -8 GOMAXPROCS suffix is stripped and repeats collapse to the min.
	want := map[string]float64{
		"BenchmarkSchedule":   34.50,
		"BenchmarkCancel":     68.16,
		"BenchmarkProcSwitch": 1280,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}

func TestParseSweeps(t *testing.T) {
	path := writeTemp(t, "sweeps.json", `{
  "runs": [
    {"jobs": 1, "figures": [
      {"id": "fig02", "points": 10, "fingerprint": "241c68808d0de9a9", "seconds": 6.5},
      {"id": "fig03", "points": 8, "fingerprint": "aa", "seconds": 3.1}
    ]},
    {"jobs": 4, "figures": [
      {"id": "fig02", "points": 10, "fingerprint": "241c68808d0de9a9", "seconds": 5.9}
    ]}
  ]
}`)
	got, err := parseSweeps(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["fig02"] != 5.9 {
		t.Errorf("fig02 = %v, want min across runs 5.9", got["fig02"])
	}
	if got["fig03"] != 3.1 {
		t.Errorf("fig03 = %v, want 3.1", got["fig03"])
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{
		"BenchmarkSchedule": 40,
		"BenchmarkCancel":   70,
		"BenchmarkGone":     10,
	}
	got := map[string]float64{
		"BenchmarkSchedule": 47,  // +17.5%: within the 20% budget
		"BenchmarkCancel":   120, // +71%: regression
		// BenchmarkGone missing: a renamed benchmark must not drop out silently
	}
	if n := compare("bench", base, got, 0.20); n != 2 {
		t.Errorf("compare = %d failures, want 2 (one regression, one missing)", n)
	}
	if n := compare("bench", base, map[string]float64{
		"BenchmarkSchedule": 20, "BenchmarkCancel": 70, "BenchmarkGone": 10,
	}, 0.20); n != 0 {
		t.Errorf("compare = %d failures, want 0 (improvements never fail)", n)
	}
}
