module dclue

go 1.22
