package dclue_test

import (
	"testing"

	"dclue"
)

// TestFacadeSmoke drives the public API end to end: configure, run, read
// metrics — the quickstart example as a test.
func TestFacadeSmoke(t *testing.T) {
	p := dclue.DefaultParams(2)
	p.Warehouses = 8
	p.CustomersPerDist = 30
	p.Items = 200
	p.Warmup = 40 * dclue.Second
	p.Measure = 100 * dclue.Second
	m, err := dclue.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.TpmC <= 0 {
		t.Fatalf("no throughput: %+v", m)
	}
	if m.Nodes != 2 {
		t.Fatalf("metrics nodes %d", m.Nodes)
	}
}

func TestFacadeFigureRegistry(t *testing.T) {
	figs := dclue.Figures()
	if len(figs) != 15 {
		t.Fatalf("figures %d, want 15", len(figs))
	}
	if _, ok := dclue.RunFigure("no-such", dclue.ExperimentOptions{}); ok {
		t.Fatal("unknown figure accepted")
	}
	abls := dclue.AblationList()
	if len(abls) < 5 {
		t.Fatalf("ablations %d", len(abls))
	}
	if _, ok := dclue.RunAblation("nope", dclue.ExperimentOptions{}); ok {
		t.Fatal("unknown ablation accepted")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() dclue.Metrics {
		p := dclue.DefaultParams(1)
		p.Warehouses = 6
		p.CustomersPerDist = 30
		p.Items = 100
		p.Warmup = 30 * dclue.Second
		p.Measure = 60 * dclue.Second
		m, err := dclue.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.TpmC != b.TpmC || a.RespTimeMs != b.RespTimeMs {
		t.Fatalf("nondeterministic facade runs: %v vs %v", a.TpmC, b.TpmC)
	}
}
