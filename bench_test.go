package dclue_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§3). One benchmark per figure: each iteration runs the
// figure's full parameter sweep in quick mode and reports the headline
// series values as custom metrics, so
//
//	go test -bench=Fig -benchmem
//
// prints the reproduced results. The full-size sweeps (paper-scale node
// counts and run lengths) are available via `go run ./cmd/dclueexp -all`.

import (
	"fmt"
	"testing"

	"dclue"
)

// runFigure executes one figure experiment per benchmark iteration and
// attaches its final series points as benchmark metrics.
func runFigure(b *testing.B, id string) {
	b.Helper()
	var last dclue.ExperimentResult
	for i := 0; i < b.N; i++ {
		r, ok := dclue.RunFigure(id, dclue.ExperimentOptions{Seed: 1, Quick: true})
		if !ok {
			b.Fatalf("unknown figure %s", id)
		}
		last = r
	}
	for _, s := range last.Series {
		if len(s.Points) == 0 {
			continue
		}
		p := s.Points[len(s.Points)-1]
		b.ReportMetric(p.Y, fmt.Sprintf("%s@x=%g", sanitize(s.Name), p.X))
	}
	if testing.Verbose() {
		b.Log("\n" + last.Table())
	}
}

// sanitize makes series names metric-safe.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '/', '=':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkFig02IPCMessagesAff08(b *testing.B)   { runFigure(b, "fig02") }
func BenchmarkFig03IPCMessagesAff00(b *testing.B)   { runFigure(b, "fig03") }
func BenchmarkFig04LockWaits(b *testing.B)          { runFigure(b, "fig04") }
func BenchmarkFig05LockWaitTime(b *testing.B)       { runFigure(b, "fig05") }
func BenchmarkFig06Scaling(b *testing.B)            { runFigure(b, "fig06") }
func BenchmarkFig07ScalingVsAffinity(b *testing.B)  { runFigure(b, "fig07") }
func BenchmarkFig08RouterForwarding(b *testing.B)   { runFigure(b, "fig08") }
func BenchmarkFig09CentralLogging(b *testing.B)     { runFigure(b, "fig09") }
func BenchmarkFig10DBGrowth(b *testing.B)           { runFigure(b, "fig10") }
func BenchmarkFig11Offload(b *testing.B)            { runFigure(b, "fig11") }
func BenchmarkFig12LatencyNormal(b *testing.B)      { runFigure(b, "fig12") }
func BenchmarkFig13LatencyLowComp(b *testing.B)     { runFigure(b, "fig13") }
func BenchmarkFig14CrossTrafficNormal(b *testing.B) { runFigure(b, "fig14") }
func BenchmarkFig15CrossTrafficLowComp(b *testing.B) {
	runFigure(b, "fig15")
}
func BenchmarkFig16CrossTrafficAffinity(b *testing.B) {
	runFigure(b, "fig16")
}

// BenchmarkSingleRun measures the cost of one baseline cluster simulation —
// the unit every sweep above is built from.
func BenchmarkSingleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := dclue.DefaultParams(4)
		p.Warehouses = 8 * 4
		p.Warmup = 60 * dclue.Second
		p.Measure = 120 * dclue.Second
		m, err := dclue.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(m.TpmC, "tpmC")
			b.ReportMetric(m.CtlMsgsPerTxn, "ctlMsgs/txn")
		}
	}
}

// ---- Ablation benches: the design choices DESIGN.md calls out ----

func runAblation(b *testing.B, id string) {
	b.Helper()
	var last dclue.ExperimentResult
	for i := 0; i < b.N; i++ {
		r, ok := dclue.RunAblation(id, dclue.ExperimentOptions{Seed: 1, Quick: true})
		if !ok {
			b.Fatalf("unknown ablation %s", id)
		}
		last = r
	}
	for _, s := range last.Series {
		if len(s.Points) == 0 {
			continue
		}
		p := s.Points[len(s.Points)-1]
		b.ReportMetric(p.Y, fmt.Sprintf("%s@x=%g", sanitize(s.Name), p.X))
	}
	if testing.Verbose() {
		b.Log("\n" + last.Table())
	}
}

func BenchmarkAblationQoSWFQ(b *testing.B)      { runAblation(b, "abl-qos") }
func BenchmarkAblationSANStorage(b *testing.B)  { runAblation(b, "abl-san") }
func BenchmarkAblationSubpage(b *testing.B)     { runAblation(b, "abl-subpage") }
func BenchmarkAblationGroupCommit(b *testing.B) { runAblation(b, "abl-groupcommit") }
func BenchmarkAblationElevator(b *testing.B)    { runAblation(b, "abl-elevator") }
func BenchmarkAblationPrewarm(b *testing.B)     { runAblation(b, "abl-prewarm") }
