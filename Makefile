GO ?= go

.PHONY: all build vet test race lint fuzz-smoke kernel-bench clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# Determinism lint: the nine dcluevet analyzers over the whole module.
# Facts are cached in .dcluevet-cache so repeat runs re-lint only what
# changed. See internal/lint/RULES.md for the rule catalog.
lint:
	$(GO) run ./cmd/dcluevet -cache .dcluevet-cache ./...

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseFaultSpec -fuzztime 10s ./internal/faults
	$(GO) test -run '^$$' -fuzz FuzzParseAllow -fuzztime 10s ./internal/lint/analysis
	$(GO) test -run '^$$' -fuzz FuzzWorkerProtocol -fuzztime 10s ./internal/farm

# Kernel performance gate: scheduler microbenchmarks plus one quick reference
# figure, compared against bench/kernel_baseline.json (>20% worse fails).
# Refresh the baseline deliberately with:
#   go run ./cmd/dcluebench -bench-out kernel_bench.txt -sweeps BENCH_kernel.json -write-baseline
kernel-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSchedule$$|BenchmarkScheduleDepth$$|BenchmarkCancel$$|BenchmarkProcSwitch$$' -benchmem -count 3 ./internal/sim | tee kernel_bench.txt
	$(GO) build -o dclueexp ./cmd/dclueexp
	rm -f BENCH_kernel.json
	./dclueexp -fig 2 -quick -j 1 -bench BENCH_kernel.json > /dev/null
	$(GO) run ./cmd/dcluebench -bench-out kernel_bench.txt -sweeps BENCH_kernel.json -baseline bench/kernel_baseline.json

clean:
	rm -rf .dcluevet-cache
	rm -f dclueexp dcluesim dcluevet
