GO ?= go

.PHONY: all build vet test race lint fuzz-smoke clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# Determinism lint: the six dcluevet analyzers over the whole module.
# Facts are cached in .dcluevet-cache so repeat runs re-lint only what
# changed. See internal/lint/RULES.md for the rule catalog.
lint:
	$(GO) run ./cmd/dcluevet -cache .dcluevet-cache ./...

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseFaultSpec -fuzztime 10s ./internal/faults
	$(GO) test -run '^$$' -fuzz FuzzParseAllow -fuzztime 10s ./internal/lint/analysis

clean:
	rm -rf .dcluevet-cache
	rm -f dclueexp dcluesim dcluevet
