// Scaling: the paper's headline question — how does a cache-fusion cluster
// scale when queries don't always land on the server owning their data?
// This example sweeps cluster size at two affinities and prints the
// throughput curve, a miniature of the paper's Fig 6.
package main

import (
	"fmt"

	"dclue"
)

func main() {
	fmt.Println("Max sustainable throughput (scaled tpm-C), TPC-C self-sized")
	fmt.Printf("%-8s %14s %14s %12s\n", "nodes", "affinity=1.0", "affinity=0.8", "efficiency")

	for _, nodes := range []int{1, 2, 4} {
		var perfect, realistic float64
		for _, aff := range []float64{1.0, 0.8} {
			p := dclue.DefaultParams(nodes)
			p.Affinity = aff
			p.Warmup = 60 * dclue.Second
			p.Measure = 120 * dclue.Second
			r := dclue.MeasureCapacity(p, 16)
			if aff == 1.0 {
				perfect = r.Metrics.TpmC
			} else {
				realistic = r.Metrics.TpmC
			}
		}
		eff := 0.0
		if perfect > 0 {
			eff = realistic / perfect * 100
		}
		fmt.Printf("%-8d %14.0f %14.0f %11.0f%%\n", nodes, perfect, realistic, eff)
	}
	fmt.Println("\nAffinity 1.0 is the perfectly partitioned reference; at 0.8,")
	fmt.Println("one query in five lands on the wrong node and pays for cache-fusion")
	fmt.Println("block transfers, remote locks, and the extra protocol processing.")
}
