// Quickstart: simulate a small clustered DBMS and print its headline
// metrics. This is the two-minute tour of the public API: configure a
// cluster, run it, read the measurement.
package main

import (
	"fmt"
	"log"

	"dclue"
)

func main() {
	// A 4-node cluster at the paper's defaults: scale factor 100 (so the
	// reported tpm-C is 1/100th of real hardware), affinity 0.8, hardware
	// TCP and iSCSI offload, local logging.
	p := dclue.DefaultParams(4)

	// Keep the quickstart snappy: a modest fixed database instead of the
	// full self-sized search, and shorter warmup/measurement windows.
	p.Warehouses = 8 * 4
	p.Warmup = 60 * dclue.Second
	p.Measure = 120 * dclue.Second

	m, err := dclue.Run(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("4-node cluster, affinity 0.8")
	fmt.Printf("  throughput:        %.0f scaled tpm-C (~%.0f unscaled)\n", m.TpmC, m.TpmC*p.Scale)
	fmt.Printf("  transaction rate:  %.1f txn/s (scaled)\n", m.TotalTxnRate)
	fmt.Printf("  IPC per txn:       %.1f control msgs, %.2f block transfers\n",
		m.CtlMsgsPerTxn, m.DataMsgsPerTxn)
	fmt.Printf("  lock waits/txn:    %.3f (mean wait %.1f scaled ms)\n",
		m.LockWaitsPerTxn, m.LockWaitMs)
	fmt.Printf("  CPU: utilization %.0f%%, CPI %.1f, %.1f active threads\n",
		m.CPUUtil*100, m.CPI, m.ActiveThreads)
	fmt.Printf("  buffer hit ratio:  %.1f%%\n", m.BufferHitRatio*100)
	fmt.Printf("  client response:   %.0f scaled ms\n", m.RespTimeMs)
}
