// Latency: could the two halves of a cluster live in different buildings —
// or different towns? The paper argues OLTP tolerates fabric latency
// surprisingly well because extra threads hide it (§3.3). This example
// injects metro-distance round-trip latency between two LATAs and measures
// the cost.
package main

import (
	"fmt"
	"log"

	"dclue"
)

func main() {
	base := dclue.DefaultParams(8)
	base.NodesPerLata = 4
	base.Affinity = 0.8
	base.Warehouses = 8 * 8
	base.Warmup = 90 * dclue.Second
	base.Measure = 150 * dclue.Second

	fmt.Println("Two 4-node LATAs, affinity 0.8: added inter-LATA RTT vs throughput")
	fmt.Printf("%-22s %10s %10s\n", "added RTT (real ms)", "tpmC", "relative")

	var t0 float64
	for _, rttMs := range []float64{0, 0.5, 1, 2} {
		p := base
		// Half the extra latency on each of the two inter-LATA links.
		p.ExtraLatency = dclue.Time(rttMs / 2 * p.Scale * float64(dclue.Millisecond))
		m, err := dclue.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		if rttMs == 0 {
			t0 = m.TpmC
		}
		rel := 100.0
		if t0 > 0 {
			rel = m.TpmC / t0 * 100
		}
		fmt.Printf("%-22.1f %10.0f %9.1f%%\n", rttMs, m.TpmC, rel)
	}

	fmt.Println("\n1 ms of round trip is roughly 50 miles of fiber: the paper's case")
	fmt.Println("that subclusters could be separated at MAN distances for a few")
	fmt.Println("percent of throughput, because transactional threads hide latency.")
}
