// QoS: what happens to a clustered DBMS when somebody else's traffic
// shares the fabric? This example reproduces the core of the paper's §3.4
// finding: best-effort cross traffic barely matters, but give it priority
// and it delays the DBMS's critical lock/IPC messages enough to thrash the
// server caches.
package main

import (
	"fmt"
	"log"

	"dclue"
)

func main() {
	base := dclue.DefaultParams(8)
	base.NodesPerLata = 4 // two LATAs; FTP crosses the inter-LATA links
	base.Affinity = 0.8
	base.LowComputation = true // lighter transactions feel interference more
	base.Warehouses = 6 * 8
	base.Warmup = 90 * dclue.Second
	base.Measure = 150 * dclue.Second

	fmt.Println("2x4-node cluster, affinity 0.8, low-computation workload")
	fmt.Printf("%-28s %10s %10s %8s %12s\n", "scenario", "tpmC", "threads", "CPI", "ctx cycles")

	run := func(name string, ftpBps float64, priority bool) {
		p := base
		p.CrossTrafficBps = ftpBps
		p.CrossTrafficPriority = priority
		m, err := dclue.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10.0f %10.1f %8.2f %11.1fK\n",
			name, m.TpmC, m.ActiveThreads, m.CPI, m.CtxSwitchK)
	}

	run("no cross traffic", 0, false)
	run("100 Mb/s FTP, best effort", 100e6, false)
	run("100 Mb/s FTP, AF21 priority", 100e6, true)

	fmt.Println("\nWith FTP at priority, lock-acquire and block-transfer messages")
	fmt.Println("queue behind FTP bursts at the routers; transactions need more")
	fmt.Println("threads to hide the delay, the caches thrash, and throughput falls.")
}
