package disk

import (
	"testing"

	"dclue/internal/rng"
	"dclue/internal/sim"
)

func newDrive(s *sim.Sim) *Drive {
	return NewDrive(s, DefaultParams(1), rng.New(1))
}

func TestDriveCompletesRequests(t *testing.T) {
	s := sim.New()
	d := newDrive(s)
	done := 0
	for i := 0; i < 10; i++ {
		d.Submit(&Request{Table: 1, Block: int64(i * 100), Size: 8192,
			Done: func() { done++ }})
	}
	s.RunAll()
	if done != 10 {
		t.Fatalf("completed %d, want 10", done)
	}
	if d.Reads != 10 || d.BytesRead != 10*8192 {
		t.Fatalf("reads=%d bytes=%d", d.Reads, d.BytesRead)
	}
}

func TestDriveWriteAccounting(t *testing.T) {
	s := sim.New()
	d := newDrive(s)
	d.Submit(&Request{Table: 0, Block: 5, Size: 4096, Write: true})
	s.RunAll()
	if d.Writes != 1 || d.BytesWritten != 4096 || d.Reads != 0 {
		t.Fatalf("writes=%d bw=%d reads=%d", d.Writes, d.BytesWritten, d.Reads)
	}
}

func TestBlockingAccess(t *testing.T) {
	s := sim.New()
	d := newDrive(s)
	var took sim.Time
	s.Spawn("io", func(p *sim.Proc) {
		start := p.Now()
		d.Access(p, 2, 1000, 8192, false)
		took = p.Now() - start
	})
	s.Run(10 * sim.Second)
	s.Shutdown()
	if took == 0 {
		t.Fatal("disk access took no time")
	}
	// seek + up to one rotation + transfer; must be under ~15ms at scale 1.
	if took > 20*sim.Millisecond {
		t.Fatalf("access took %v", took)
	}
}

func TestElevatorReducesSeeks(t *testing.T) {
	// Random-order requests across a wide span should complete faster with
	// SCAN than strict FIFO would; we check SCAN picks the nearest request
	// in the sweep direction.
	s := sim.New()
	d := newDrive(s)
	var order []int64
	blocks := []int64{900000, 100, 500000, 200, 800000, 300}
	for _, b := range blocks {
		b := b
		d.Submit(&Request{Table: 0, Block: b, Size: 512,
			Done: func() { order = append(order, b) }})
	}
	s.RunAll()
	if len(order) != len(blocks) {
		t.Fatalf("completed %d", len(order))
	}
	// The first request starts service immediately (it was alone in the
	// queue); the rest must be served as monotone sweeps, not submission
	// order. Count direction reversals: SCAN allows at most one.
	reversals := 0
	for i := 2; i < len(order); i++ {
		if (order[i] > order[i-1]) != (order[i-1] > order[i-2]) {
			reversals++
		}
	}
	if reversals > 1 {
		t.Fatalf("elevator order %v has %d reversals; not a sweep", order, reversals)
	}
}

func TestSeekScalesWithDistance(t *testing.T) {
	s := sim.New()
	d := newDrive(s)
	near := d.serviceTime(&Request{Table: 0, Block: 1, Size: 0})
	far := d.serviceTime(&Request{Table: 0, Block: d.params.Span - 1, Size: 0})
	// Strip rotation randomness by comparing against bounds.
	if far-near < sim.Time(float64(d.params.MaxSeek-d.params.MinSeek)/2)-d.params.RotationTime {
		t.Fatalf("far seek %v not much larger than near %v", far, near)
	}
}

func TestDriveUtilizationAndStats(t *testing.T) {
	s := sim.New()
	d := newDrive(s)
	for i := 0; i < 50; i++ {
		d.Submit(&Request{Table: 0, Block: int64(i), Size: 8192})
	}
	s.RunAll()
	if d.MeanServiceTime() <= 0 {
		t.Fatal("no mean service time")
	}
	if d.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestLogDiskGroupCommit(t *testing.T) {
	s := sim.New()
	l := DefaultLogDisk(s, 1)
	var done []sim.Time
	for i := 0; i < 5; i++ {
		l.Submit(4096, func() { done = append(done, s.Now()) })
	}
	s.RunAll()
	if len(done) != 5 {
		t.Fatalf("completed %d", len(done))
	}
	if l.Writes != 5 || l.BytesWritten != 5*4096 {
		t.Fatalf("writes=%d bytes=%d", l.Writes, l.BytesWritten)
	}
	// The first submit opens a batch of one; the remaining four, queued
	// while it is in flight, coalesce into a single group commit.
	if done[0] == done[1] {
		t.Fatal("first write should complete alone")
	}
	for i := 2; i < 5; i++ {
		if done[i] != done[1] {
			t.Fatalf("writes 2-5 should group-commit together: %v", done)
		}
	}
	// Grouping pays one fixed overhead for the batch: total time well under
	// five serial overheads.
	if done[4] > 2*800*sim.Microsecond+5*60*sim.Microsecond {
		t.Fatalf("group commit too slow: %v", done[4])
	}
}

func TestLogDiskBlockingWrite(t *testing.T) {
	s := sim.New()
	l := DefaultLogDisk(s, 1)
	var took sim.Time
	s.Spawn("commit", func(p *sim.Proc) {
		start := p.Now()
		l.Write(p, 2048)
		took = p.Now() - start
	})
	s.Run(1 * sim.Second)
	s.Shutdown()
	if took < 400*sim.Microsecond {
		t.Fatalf("log write took %v, below fixed overhead", took)
	}
}

func TestScaledParamsSlower(t *testing.T) {
	p1 := DefaultParams(1)
	p100 := DefaultParams(100)
	if p100.MaxSeek != 100*p1.MaxSeek {
		t.Fatalf("seek not scaled: %v vs %v", p100.MaxSeek, p1.MaxSeek)
	}
	if p100.TransferRate*100 != p1.TransferRate {
		t.Fatal("transfer rate not scaled")
	}
}

func TestSortRequestsByKeyGroupsTables(t *testing.T) {
	reqs := []*Request{
		{Table: 2, Block: 1},
		{Table: 1, Block: 999},
		{Table: 1, Block: 3},
	}
	out := SortRequestsByKey(reqs)
	if out[0].Table != 1 || out[0].Block != 3 || out[2].Table != 2 {
		t.Fatalf("order %+v", out)
	}
}

func TestFIFODisablesElevator(t *testing.T) {
	s := sim.New()
	d := newDrive(s)
	d.SetFIFO(true)
	var order []int64
	blocks := []int64{900000, 100, 500000, 200}
	for _, b := range blocks {
		b := b
		d.Submit(&Request{Table: 0, Block: b, Size: 512,
			Done: func() { order = append(order, b) }})
	}
	s.RunAll()
	for i, b := range blocks {
		if order[i] != b {
			t.Fatalf("FIFO order %v, want submission order %v", order, blocks)
		}
	}
}

func TestLogBatchLimitOne(t *testing.T) {
	s := sim.New()
	l := DefaultLogDisk(s, 1)
	l.SetBatchLimit(1)
	var done []sim.Time
	for i := 0; i < 4; i++ {
		l.Submit(1024, func() { done = append(done, s.Now()) })
	}
	s.RunAll()
	if len(done) != 4 {
		t.Fatalf("completed %d", len(done))
	}
	// No batching: strictly increasing completion times.
	for i := 1; i < len(done); i++ {
		if done[i] <= done[i-1] {
			t.Fatalf("batch-limit-1 writes not serialized: %v", done)
		}
	}
}

func TestLogBatchLimitClampsToOne(t *testing.T) {
	s := sim.New()
	l := DefaultLogDisk(s, 1)
	l.SetBatchLimit(0) // clamped to 1
	fired := false
	l.Submit(100, func() { fired = true })
	s.RunAll()
	if !fired {
		t.Fatal("write with clamped batch limit never completed")
	}
}
