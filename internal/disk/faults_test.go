package disk

import (
	"testing"

	"dclue/internal/sim"
)

// Fault-injection contract tests: error injection marks requests Failed
// with exact accounting, latency factors scale (and clamp), and faults
// never leak into throughput counters.

func TestErrorProbFailsEveryRequest(t *testing.T) {
	s := sim.New()
	d := newDrive(s)
	d.SetErrorProb(1)
	failed, completed := 0, 0
	for i := 0; i < 5; i++ {
		r := &Request{Table: 1, Block: int64(i * 100), Size: 8192}
		r.Done = func() {
			completed++
			if r.Failed {
				failed++
			}
		}
		d.Submit(r)
	}
	s.RunAll()
	if completed != 5 || failed != 5 {
		t.Fatalf("completed=%d failed=%d, want 5/5", completed, failed)
	}
	if d.FaultErrors != 5 {
		t.Fatalf("FaultErrors=%d, want 5", d.FaultErrors)
	}
	// A failed request is not a served read or write: the data never moved.
	if d.Reads != 0 || d.Writes != 0 || d.BytesRead != 0 || d.BytesWritten != 0 {
		t.Fatalf("throughput counters leaked: reads=%d writes=%d br=%d bw=%d",
			d.Reads, d.Writes, d.BytesRead, d.BytesWritten)
	}
}

func TestAccessReportsInjectedFailure(t *testing.T) {
	s := sim.New()
	d := newDrive(s)
	d.SetErrorProb(1)
	var ok bool
	var took sim.Time
	s.Spawn("io", func(p *sim.Proc) {
		start := p.Now()
		ok = d.Access(p, 1, 0, 8192, false)
		took = p.Now() - start
	})
	s.Run(10 * sim.Second)
	s.Shutdown()
	if ok {
		t.Fatal("Access reported success under errProb=1")
	}
	// A failing request still consumes its full service time — the fault
	// model is a media error after the mechanical work, not a fast reject.
	if took == 0 {
		t.Fatal("injected failure completed instantly")
	}
	// Clearing the fault restores success.
	d.SetErrorProb(0)
	s2done := false
	s.Spawn("io2", func(p *sim.Proc) {
		s2done = d.Access(p, 1, 0, 8192, false)
	})
	s.Run(20 * sim.Second)
	s.Shutdown()
	if !s2done {
		t.Fatal("Access still failing after SetErrorProb(0)")
	}
}

func TestLatencyFactorScalesServiceTime(t *testing.T) {
	measure := func(factor float64) sim.Time {
		s := sim.New()
		d := newDrive(s)
		d.SetLatencyFactor(factor)
		var took sim.Time
		s.Spawn("io", func(p *sim.Proc) {
			start := p.Now()
			d.Access(p, 2, 1000, 8192, false)
			took = p.Now() - start
		})
		s.Run(10 * sim.Minute)
		s.Shutdown()
		return took
	}
	healthy := measure(1)
	slow := measure(10)
	if healthy == 0 || slow == 0 {
		t.Fatalf("healthy=%v slow=%v, want nonzero access times", healthy, slow)
	}
	// Same seed, same geometry: the degraded access is exactly 10x.
	if slow != 10*healthy {
		t.Fatalf("slow=%v, want exactly 10x healthy (%v)", slow, 10*healthy)
	}
	// Factors below 1 clamp to healthy — fault injection can only slow a
	// drive down, never make it faster than its geometry allows.
	if clamped := measure(0.01); clamped != healthy {
		t.Fatalf("factor 0.01 gave %v, want clamp to healthy %v", clamped, healthy)
	}
}

func TestLogDiskReadAccounting(t *testing.T) {
	s := sim.New()
	l := NewLogDisk(s, sim.Millisecond, 100e6)
	reads := 0
	l.SubmitRead(4096, func() { reads++ })
	l.Submit(8192, nil) // a write, for contrast
	s.RunAll()
	if reads != 1 {
		t.Fatalf("read completions=%d, want 1", reads)
	}
	if l.Reads != 1 || l.BytesRead != 4096 {
		t.Fatalf("Reads=%d BytesRead=%d, want 1/4096", l.Reads, l.BytesRead)
	}
	if l.Writes != 1 || l.BytesWritten != 8192 {
		t.Fatalf("Writes=%d BytesWritten=%d, want 1/8192", l.Writes, l.BytesWritten)
	}
}

func TestLogDiskBlockingRead(t *testing.T) {
	s := sim.New()
	l := NewLogDisk(s, sim.Millisecond, 100e6)
	var took sim.Time
	s.Spawn("reader", func(p *sim.Proc) {
		start := p.Now()
		l.Read(p, 65536)
		took = p.Now() - start
	})
	s.Run(10 * sim.Second)
	s.Shutdown()
	// Fixed overhead plus 64KiB at 100 MB/s: strictly more than the bare
	// overhead, and the byte count must be attributed to reads.
	if took <= sim.Millisecond {
		t.Fatalf("blocking read took %v, want > overhead", took)
	}
	if l.Reads != 1 || l.BytesRead != 65536 || l.Writes != 0 {
		t.Fatalf("Reads=%d BytesRead=%d Writes=%d", l.Reads, l.BytesRead, l.Writes)
	}
}
