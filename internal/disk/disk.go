// Package disk models the per-node I/O subsystem: data drives with
// seek/rotation/transfer service times and elevator (SCAN) scheduling, and
// dedicated log drives doing sequential writes. The paper gives each node
// separate disks for normal I/O and logging, with the elevator applied per
// table and lazy data writes (§2.3).
package disk

import (
	"math"
	"sort"

	"dclue/internal/rng"
	"dclue/internal/sim"
	"dclue/internal/telemetry"
)

// Params describes a drive. Values are for the scaled system (the paper
// slows seek, rotation, and transfer by its scale factor).
type Params struct {
	MinSeek      sim.Time // track-to-track
	MaxSeek      sim.Time // full stroke
	RotationTime sim.Time // full revolution
	TransferRate float64  // bytes/s off the platter
	Span         int64    // addressable block span used to scale seeks
}

// DefaultParams returns a 10K-RPM-class drive at the given scale factor.
func DefaultParams(scale float64) Params {
	return Params{
		MinSeek:      sim.Time(0.5 * scale * float64(sim.Millisecond)),
		MaxSeek:      sim.Time(8 * scale * float64(sim.Millisecond)),
		RotationTime: sim.Time(6 * scale * float64(sim.Millisecond)),
		TransferRate: 60e6 / scale,
		Span:         1 << 22,
	}
}

// Request is one I/O operation.
type Request struct {
	Table int   // table id, the elevator's major key
	Block int64 // block number within the table
	Size  int   // bytes
	Write bool
	Done  func() // invoked in kernel context on completion

	// Failed is set (before Done runs) when an injected fault made the
	// operation fail after consuming its service time; callers retry or
	// surface an error.
	Failed bool
}

// Drive is a single disk with SCAN scheduling (FIFO available for
// ablations).
type Drive struct {
	sim    *sim.Sim
	params Params
	rnd    *rng.Stream
	fifo   bool

	queue []*Request
	busy  bool
	head  int64 // current head position (linearized key)
	dirUp bool

	// Fault-injection state: latFactor multiplies every service time
	// (latency spike; 1 = healthy), errProb fails requests with the given
	// probability after full service (transient I/O error).
	latFactor float64
	errProb   float64

	// Statistics.
	FaultErrors    uint64 // requests failed by injected faults
	Reads, Writes  uint64
	BytesRead      uint64
	BytesWritten   uint64
	busyTime       sim.Time
	lastStart      sim.Time
	queueSum       uint64
	queueSamples   uint64
	totalLatency   sim.Time
	completedTotal uint64

	// tel, when set, records every service interval. Nil on untelemetered
	// runs (the fast path).
	tel *telemetry.DiskTel
}

// SetTelemetry attaches a per-spindle utilization instrument (nil detaches).
func (d *Drive) SetTelemetry(t *telemetry.DiskTel) { d.tel = t }

// NewDrive creates an idle drive.
func NewDrive(s *sim.Sim, params Params, rnd *rng.Stream) *Drive {
	return &Drive{sim: s, params: params, rnd: rnd, latFactor: 1}
}

// SetLatencyFactor sets the fault-injection multiplier on every service
// time (1 restores healthy latency).
func (d *Drive) SetLatencyFactor(f float64) {
	if f < 1 {
		f = 1
	}
	d.latFactor = f
}

// SetErrorProb sets the per-request failure probability (0 disables). A
// failing request consumes its full service time, then completes with
// Failed set — a transient medium/controller error the caller must retry.
func (d *Drive) SetErrorProb(p float64) { d.errProb = p }

// key linearizes (table, block) for head-movement purposes: tables are laid
// out as consecutive extents, so the per-table elevator of the paper falls
// out of SCAN over this key.
func (d *Drive) key(r *Request) int64 {
	return int64(r.Table)<<40 | (r.Block & ((1 << 40) - 1))
}

// SetFIFO disables the elevator: requests are served in arrival order (the
// ablation baseline the paper's per-table elevator improves on).
func (d *Drive) SetFIFO(on bool) { d.fifo = on }

// Submit queues a request; Done fires when it completes.
func (d *Drive) Submit(r *Request) {
	d.queue = append(d.queue, r)
	d.queueSum += uint64(len(d.queue))
	d.queueSamples++
	d.pump()
}

// Access is the blocking form of Submit for process context. It reports
// whether the operation succeeded (false = transient injected I/O error).
func (d *Drive) Access(p *sim.Proc, table int, block int64, size int, write bool) bool {
	mb := sim.NewMailbox(p.Sim())
	r := &Request{Table: table, Block: block, Size: size, Write: write,
		Done: func() { mb.Send(nil) }}
	d.Submit(r)
	mb.Recv(p)
	return !r.Failed
}

// pump starts service if idle.
func (d *Drive) pump() {
	if d.busy || len(d.queue) == 0 {
		return
	}
	d.busy = true
	r := d.takeNext()
	svc := d.serviceTime(r)
	if d.errProb > 0 && d.rnd.Float64() < d.errProb {
		r.Failed = true
	}
	start := d.sim.Now()
	d.lastStart = start
	d.sim.After(svc, func() {
		d.busyTime += d.sim.Now() - d.lastStart
		if d.tel != nil {
			d.tel.OnIO(d.lastStart, d.sim.Now(), r.Write)
		}
		if r.Failed {
			d.FaultErrors++
		} else if r.Write {
			d.Writes++
			d.BytesWritten += uint64(r.Size)
		} else {
			d.Reads++
			d.BytesRead += uint64(r.Size)
		}
		d.completedTotal++
		d.totalLatency += svc
		d.head = d.key(r)
		d.busy = false
		if r.Done != nil {
			r.Done()
		}
		d.pump()
	})
}

// takeNext applies SCAN: continue in the current direction to the nearest
// request; reverse at the end of the sweep.
func (d *Drive) takeNext() *Request {
	if d.fifo {
		r := d.queue[0]
		d.queue = d.queue[1:]
		return r
	}
	best := -1
	var bestDist int64
	for pass := 0; pass < 2; pass++ {
		for i, r := range d.queue {
			k := d.key(r)
			var dist int64
			if d.dirUp {
				dist = k - d.head
			} else {
				dist = d.head - k
			}
			if dist < 0 {
				continue
			}
			if best == -1 || dist < bestDist ||
				(dist == bestDist && d.key(d.queue[best]) > k) {
				best = i
				bestDist = dist
			}
		}
		if best >= 0 {
			break
		}
		d.dirUp = !d.dirUp // end of sweep: reverse
	}
	if best < 0 {
		// All requests at the head position in both directions? Take FIFO.
		best = 0
	}
	r := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	return r
}

// serviceTime computes seek + rotation + transfer for a request.
func (d *Drive) serviceTime(r *Request) sim.Time {
	k := d.key(r)
	dist := k - d.head
	if dist < 0 {
		dist = -dist
	}
	var seek sim.Time
	if dist > 0 {
		frac := float64(dist) / float64(d.params.Span)
		if frac > 1 {
			frac = 1
		}
		seek = d.params.MinSeek + sim.Time(float64(d.params.MaxSeek-d.params.MinSeek)*math.Sqrt(frac))
	}
	rot := sim.Time(d.rnd.Float64() * float64(d.params.RotationTime))
	xfer := sim.Time(float64(r.Size) / d.params.TransferRate * float64(sim.Second))
	return sim.Time(d.latFactor * float64(seek+rot+xfer))
}

// Utilization returns busy fraction since simulation start.
func (d *Drive) Utilization() float64 {
	now := d.sim.Now()
	if now == 0 {
		return 0
	}
	b := d.busyTime
	if d.busy {
		b += now - d.lastStart
	}
	return float64(b) / float64(now)
}

// MeanServiceTime returns the mean per-request service time.
func (d *Drive) MeanServiceTime() sim.Time {
	if d.completedTotal == 0 {
		return 0
	}
	return d.totalLatency / sim.Time(d.completedTotal)
}

// QueueLen returns the current queue depth.
func (d *Drive) QueueLen() int { return len(d.queue) }

// LogDisk models the dedicated, strictly sequential log device: no seeks,
// a fixed per-write overhead plus transfer. Commits block on it, so its
// latency is on the transaction critical path.
type LogDisk struct {
	sim      *sim.Sim
	overhead sim.Time
	rate     float64

	queue      []logReq
	busy       bool
	batchLimit int

	Writes       uint64
	BytesWritten uint64
	Reads        uint64
	BytesRead    uint64
	busyTime     sim.Time
	lastStart    sim.Time

	// tel, when set, records every batch service interval. Nil on
	// untelemetered runs (the fast path).
	tel *telemetry.DiskTel
}

// SetTelemetry attaches a utilization instrument (nil detaches). Batches
// count as writes (reads only appear during recovery log scans).
func (l *LogDisk) SetTelemetry(t *telemetry.DiskTel) { l.tel = t }

type logReq struct {
	size int
	read bool
	done func()
}

// NewLogDisk creates a log device with the given per-write overhead and
// transfer rate.
func NewLogDisk(s *sim.Sim, overhead sim.Time, rate float64) *LogDisk {
	return &LogDisk{sim: s, overhead: overhead, rate: rate, batchLimit: DefaultLogBatch}
}

// SetBatchLimit adjusts the group-commit depth (1 disables batching).
func (l *LogDisk) SetBatchLimit(n int) {
	if n < 1 {
		n = 1
	}
	l.batchLimit = n
}

// DefaultLogDisk returns a log device at the given scale factor: 0.4 ms
// unscaled overhead (controller + sequential positioning) and 80 MB/s.
func DefaultLogDisk(s *sim.Sim, scale float64) *LogDisk {
	return NewLogDisk(s, sim.Time(0.4*scale*float64(sim.Millisecond)), 80e6/scale)
}

// Submit queues a log write.
func (l *LogDisk) Submit(size int, done func()) {
	l.queue = append(l.queue, logReq{size: size, done: done})
	l.pump()
}

// SubmitRead queues a sequential log read (crash recovery scans the redo
// log back off the shared device at the same overhead + transfer cost).
func (l *LogDisk) SubmitRead(size int, done func()) {
	l.queue = append(l.queue, logReq{size: size, read: true, done: done})
	l.pump()
}

// Write blocks the calling process until the log write is durable.
func (l *LogDisk) Write(p *sim.Proc, size int) {
	mb := sim.NewMailbox(p.Sim())
	l.Submit(size, func() { mb.Send(nil) })
	mb.Recv(p)
}

// Read blocks the calling process until size bytes of log have been
// scanned off the device.
func (l *LogDisk) Read(p *sim.Proc, size int) {
	mb := sim.NewMailbox(p.Sim())
	l.SubmitRead(size, func() { mb.Send(nil) })
	mb.Recv(p)
}

// DefaultLogBatch bounds group commit to the device's queue depth; beyond
// it the log device saturates, which is what makes centralized logging a
// real bottleneck at scale (Fig 9).
const DefaultLogBatch = 4

// pump services the queue with group commit: requests queued when the
// device frees are folded (up to maxLogBatch) into one sequential write —
// one overhead, summed transfer — and complete together.
func (l *LogDisk) pump() {
	if l.busy || len(l.queue) == 0 {
		return
	}
	l.busy = true
	n := len(l.queue)
	if n > l.batchLimit {
		n = l.batchLimit
	}
	batch := l.queue[:n:n]
	l.queue = l.queue[n:]
	total := 0
	for _, r := range batch {
		total += r.size
	}
	svc := l.overhead + sim.Time(float64(total)/l.rate*float64(sim.Second))
	l.lastStart = l.sim.Now()
	l.sim.After(svc, func() {
		l.busyTime += l.sim.Now() - l.lastStart
		if l.tel != nil {
			l.tel.OnIO(l.lastStart, l.sim.Now(), !batch[0].read)
		}
		for _, r := range batch {
			if r.read {
				l.Reads++
				l.BytesRead += uint64(r.size)
			} else {
				l.Writes++
				l.BytesWritten += uint64(r.size)
			}
		}
		l.busy = false
		for _, r := range batch {
			if r.done != nil {
				r.done()
			}
		}
		l.pump()
	})
}

// Utilization returns busy fraction since simulation start.
func (l *LogDisk) Utilization() float64 {
	now := l.sim.Now()
	if now == 0 {
		return 0
	}
	b := l.busyTime
	if l.busy {
		b += now - l.lastStart
	}
	return float64(b) / float64(now)
}

// QueueLen returns pending log writes.
func (l *LogDisk) QueueLen() int { return len(l.queue) }

// SortRequestsByKey is a test helper exposing elevator ordering: it returns
// the order in which the given (table, block) pairs would be linearized.
func SortRequestsByKey(reqs []*Request) []*Request {
	d := &Drive{}
	out := append([]*Request(nil), reqs...)
	sort.Slice(out, func(i, j int) bool { return d.key(out[i]) < d.key(out[j]) })
	return out
}
