package netsim

import "dclue/internal/sim"

// Well-known endpoint addresses. Server nodes are 0..N-1.
const (
	AddrClientCloud Addr = 1000 // aggregate TPC-C client population
	AddrExtraClient Addr = 2000 // cross-traffic (FTP) client
	AddrExtraServer Addr = 2001 // cross-traffic (FTP) server
)

// NodeAddr returns the fabric address of server node i.
func NodeAddr(i int) Addr { return Addr(i) }

// TopologyConfig describes the Fig 1 network: LATAs of server nodes behind
// inner routers, joined by an outer router where clients home in.
type TopologyConfig struct {
	NodesPerLata []int // length = number of LATAs

	NodeLinkBps  float64 // server <-> inner router
	InterLataBps float64 // inner router <-> outer router
	ClientBps    float64 // client cloud <-> outer router

	NodeProp  sim.Time // propagation on server links
	InterProp sim.Time // base propagation on inter-LATA links

	// ExtraInterLataLatency is the Fig 12/13 knob: the added one-way delay,
	// split half per inter-LATA hop exactly as in §3.3 ("each of the two
	// interlata links includes one-half of the additional latency").
	ExtraInterLataLatency sim.Time

	InnerFwdRate float64 // inner router forwarding rate, pkt/s
	OuterFwdRate float64 // outer router forwarding rate, pkt/s
	FwdLatency   sim.Time

	WithExtraHosts bool // attach the FTP cross-traffic endpoints

	// PortSetup, when non-nil, is applied to every router port queue as it
	// is created (QoS ablations: WFQ weights, RED, ...).
	PortSetup func(*Qdisc)
}

// Topology is the built fabric with handles the experiments need.
type Topology struct {
	Net    *Network
	Inner  []*Router
	Outer  *Router
	Config TopologyConfig

	// interLataLinks are the four directed links between inner routers and
	// the outer router (two per LATA), used for utilization reporting.
	interLataLinks []*Link

	// nodeLinks[i] is server node i's access link pair {uplink (NIC to
	// inner router), downlink (inner router to NIC)}; clientLinks is the
	// same pair for the client cloud at the outer router. Kept so the fault
	// injector can target a specific node or the client path.
	nodeLinks   [][2]*Link
	clientLinks [2]*Link

	totalNodes int
}

// LataOfNode returns which LATA node i lives in.
func (t *Topology) LataOfNode(i int) int {
	for l, n := range t.Config.NodesPerLata {
		if i < n {
			return l
		}
		i -= n
	}
	panic("netsim: node index out of range")
}

// TotalNodes returns the number of server nodes.
func (t *Topology) TotalNodes() int { return t.totalNodes }

// InterLataUtilization returns the max utilization across inter-LATA links.
func (t *Topology) InterLataUtilization() float64 {
	u := 0.0
	for _, l := range t.interLataLinks {
		if v := l.Utilization(); v > u {
			u = v
		}
	}
	return u
}

// BuildTopology wires the network per cfg and returns the topology.
func BuildTopology(s *sim.Sim, cfg TopologyConfig) *Topology {
	n := New(s)
	if cfg.PortSetup != nil {
		n.portSetup = cfg.PortSetup
	}
	t := &Topology{Net: n, Config: cfg}

	t.Outer = NewRouter(n, "outer", cfg.OuterFwdRate, cfg.FwdLatency)

	interProp := cfg.InterProp + cfg.ExtraInterLataLatency/2

	node := 0
	for l, count := range cfg.NodesPerLata {
		inner := NewRouter(n, "inner", cfg.InnerFwdRate, cfg.FwdLatency)
		t.Inner = append(t.Inner, inner)

		// Uplink pair between inner and outer routers.
		up := inner.AddPort(cfg.InterLataBps, interProp, DefaultQdiscConfig(), t.Outer)
		inner.DefaultRoute(up)
		down := t.Outer.AddPort(cfg.InterLataBps, interProp, DefaultQdiscConfig(), inner)
		t.interLataLinks = append(t.interLataLinks, inner.PortLink(up), t.Outer.PortLink(down))

		// Server nodes in this LATA.
		for i := 0; i < count; i++ {
			addr := NodeAddr(node)
			nic := n.NIC(addr)
			back := nic.Attach(inner, cfg.NodeLinkBps, cfg.NodeProp)
			t.nodeLinks = append(t.nodeLinks, [2]*Link{nic.Link(), inner.PortLink(back)})
			// Outer router reaches this node via this LATA's downlink.
			t.Outer.Route(addr, down)
			node++
		}

		// Cross-traffic endpoints per Fig 1: extra client in the first
		// LATA, extra server in the last, so their flows cross the
		// inter-LATA links.
		if cfg.WithExtraHosts {
			if l == 0 {
				nic := n.NIC(AddrExtraClient)
				nic.Attach(inner, cfg.NodeLinkBps, cfg.NodeProp)
				t.Outer.Route(AddrExtraClient, down)
			}
			if l == len(cfg.NodesPerLata)-1 {
				nic := n.NIC(AddrExtraServer)
				nic.Attach(inner, cfg.NodeLinkBps, cfg.NodeProp)
				t.Outer.Route(AddrExtraServer, down)
			}
		}
	}
	t.totalNodes = node

	// Client cloud homes in at the outer router.
	clientNIC := n.NIC(AddrClientCloud)
	clientBack := clientNIC.Attach(t.Outer, cfg.ClientBps, cfg.NodeProp)
	t.clientLinks = [2]*Link{clientNIC.Link(), t.Outer.PortLink(clientBack)}

	return t
}

// NodeLinks returns server node i's access link pair: the uplink from the
// node's NIC to its inner router and the downlink back.
func (t *Topology) NodeLinks(i int) (up, down *Link) {
	if i < 0 || i >= len(t.nodeLinks) {
		panic("netsim: NodeLinks index out of range")
	}
	return t.nodeLinks[i][0], t.nodeLinks[i][1]
}

// InterLataLinkPair returns LATA l's trunk pair: the uplink from its inner
// router to the outer router and the downlink back.
func (t *Topology) InterLataLinkPair(l int) (up, down *Link) {
	if l < 0 || 2*l+1 >= len(t.interLataLinks) {
		panic("netsim: InterLataLinkPair index out of range")
	}
	return t.interLataLinks[2*l], t.interLataLinks[2*l+1]
}

// ClientLinks returns the client cloud's access link pair at the outer
// router (uplink from the clients, downlink back to them).
func (t *Topology) ClientLinks() (up, down *Link) {
	return t.clientLinks[0], t.clientLinks[1]
}

// SetExtraInterLataLatency retargets the inter-LATA propagation delays at
// runtime (half the extra per hop).
func (t *Topology) SetExtraInterLataLatency(d sim.Time) {
	t.Config.ExtraInterLataLatency = d
	prop := t.Config.InterProp + d/2
	for _, l := range t.interLataLinks {
		l.SetPropagation(prop)
	}
}
