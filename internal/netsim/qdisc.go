package netsim

import (
	"dclue/internal/rng"
	"dclue/internal/telemetry"
)

// QdiscConfig sets the per-class queue limits of an output queue.
type QdiscConfig struct {
	// LimitBytes is the per-class tail-drop limit. Classes beyond the slice
	// reuse the last entry. The paper notes OPNET gives higher AF classes a
	// larger queue in addition to priority treatment.
	LimitBytes [NumClasses]int
	// ECNThresholdBytes marks (rather than drops) ECN-capable packets once
	// a class queue exceeds this depth. Zero disables marking.
	ECNThresholdBytes int
}

// DefaultQdiscConfig returns the configuration used for router ports:
// best-effort gets a 128 KB queue, AF21 a 256 KB queue (the paper notes
// OPNET gives higher AF classes larger queues), and ECN marking starts at
// 48 KB — below the 64 KB TCP receive window so even a single bulk flow is
// signalled before it fills the port.
func DefaultQdiscConfig() QdiscConfig {
	return QdiscConfig{
		LimitBytes:        [NumClasses]int{128 * 1024, 256 * 1024},
		ECNThresholdBytes: 48 * 1024,
	}
}

// Qdisc is the output queue at every NIC and router output port. The
// default configuration matches the paper: strict priority across classes
// with tail drop and optional ECN marking; WFQ scheduling and (W)RED
// dropping are available for the QoS ablations (see qos.go).
type Qdisc struct {
	net  *Network
	cfg  QdiscConfig
	q    [NumClasses][]*Packet
	size [NumClasses]int // queued bytes per class
	link *Link

	discipline Discipline
	weights    [NumClasses]float64
	deficit    [NumClasses]float64
	dropPolicy DropPolicy
	red        REDConfig
	rnd        *rng.Stream

	// Statistics.
	DropsByClass [NumClasses]uint64
	MaxDepth     int

	// tel, when set, tracks byte occupancy at every enqueue/dequeue. Nil on
	// untelemetered runs (the fast path).
	tel *telemetry.QueueTel
}

// SetTelemetry attaches a queue-occupancy instrument (nil detaches).
func (q *Qdisc) SetTelemetry(t *telemetry.QueueTel) { q.tel = t }

// NewQdisc returns an empty queue with the given limits, in the paper's
// default arrangement (strict priority, tail drop).
func NewQdisc(n *Network, cfg QdiscConfig) *Qdisc {
	q := &Qdisc{net: n, cfg: cfg}
	for c := range q.weights {
		q.weights[c] = 1
	}
	return q
}

// Enqueue adds pkt, applying tail drop and ECN marking, and kicks the
// attached link.
func (q *Qdisc) Enqueue(pkt *Packet) {
	c := pkt.Class
	if c < 0 || c >= NumClasses {
		c = ClassBestEffort
		pkt.Class = c
	}
	if !q.admit(pkt, c) {
		q.DropsByClass[c]++
		q.net.Drops++
		q.net.freePacket(pkt)
		return
	}
	if q.cfg.ECNThresholdBytes > 0 && pkt.ECN && !pkt.Marked &&
		q.size[c] > q.cfg.ECNThresholdBytes {
		pkt.Marked = true
		q.net.Marks++
	}
	q.q[c] = append(q.q[c], pkt)
	q.size[c] += pkt.Size
	if d := q.Depth(); d > q.MaxDepth {
		q.MaxDepth = d
	}
	if q.tel != nil {
		q.tel.OnDepth(q.net.sim.Now(), q.Depth())
	}
	if q.link != nil {
		q.link.kick()
	}
}

// dequeue removes the next packet under the configured discipline, handing
// ownership back to the caller (the link), or nil when every class is
// empty.
//
//pool:alloc
func (q *Qdisc) dequeue() *Packet {
	pkt := q.pick()
	if pkt != nil && q.tel != nil {
		q.tel.OnDepth(q.net.sim.Now(), q.Depth())
	}
	return pkt
}

// pick removes the next packet without touching instrumentation.
func (q *Qdisc) pick() *Packet {
	if q.discipline == DiscWFQ {
		return q.wfqDequeue()
	}
	// Strict priority: highest class first, FIFO within class.
	for c := NumClasses - 1; c >= 0; c-- {
		if len(q.q[c]) > 0 {
			pkt := q.q[c][0]
			q.q[c] = q.q[c][1:]
			q.size[c] -= pkt.Size
			return pkt
		}
	}
	return nil
}

// Depth returns the total queued bytes across classes.
func (q *Qdisc) Depth() int {
	total := 0
	for _, s := range q.size {
		total += s
	}
	return total
}

// Len returns the total queued packet count across classes.
func (q *Qdisc) Len() int {
	total := 0
	for _, l := range q.q {
		total += len(l)
	}
	return total
}
