package netsim

import "dclue/internal/sim"

// Link is a unidirectional wire: it serializes packets at the configured
// bandwidth, then delivers them to the far end after the propagation delay.
// The transmit queue in front of the link is a Qdisc owned by the sending
// device (NIC or router output port); Link itself holds at most the packet
// currently on the wire.
type Link struct {
	net   *Network
	bps   float64 // bandwidth, bits per second
	prop  sim.Time
	to    sink
	qdisc *Qdisc

	busy bool

	// Statistics.
	BytesSent uint64
	PktsSent  uint64
	busyTime  sim.Time
	lastStart sim.Time
}

// NewLink creates a link of the given bandwidth (bits/s) and one-way
// propagation delay, draining from q into to. The qdisc notifies the link
// when work arrives.
func NewLink(n *Network, bps float64, prop sim.Time, q *Qdisc, to sink) *Link {
	l := &Link{net: n, bps: bps, prop: prop, to: to, qdisc: q}
	q.link = l
	return l
}

// SerializationDelay returns the wire time for a packet of the given size.
func (l *Link) SerializationDelay(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / l.bps * float64(sim.Second))
}

// Utilization returns the fraction of elapsed time the wire was busy.
func (l *Link) Utilization() float64 {
	now := l.net.sim.Now()
	if now == 0 {
		return 0
	}
	busy := l.busyTime
	if l.busy {
		busy += now - l.lastStart
	}
	return float64(busy) / float64(now)
}

// kick starts the transmit loop if the wire is idle. Called by the qdisc on
// enqueue and by the link itself on transmit completion.
func (l *Link) kick() {
	if l.busy {
		return
	}
	pkt := l.qdisc.dequeue()
	if pkt == nil {
		return
	}
	l.busy = true
	l.lastStart = l.net.sim.Now()
	ser := l.SerializationDelay(pkt.Size)
	l.net.sim.After(ser, func() {
		l.busyTime += l.net.sim.Now() - l.lastStart
		l.BytesSent += uint64(pkt.Size)
		l.PktsSent++
		// Propagation: the wire is free for the next frame while this one
		// flies.
		l.net.sim.After(l.prop, func() { l.to.receive(pkt) })
		l.busy = false
		l.kick()
	})
}

// SetPropagation adjusts the one-way propagation delay (used by the latency
// experiments, which stretch the inter-LATA links).
func (l *Link) SetPropagation(d sim.Time) { l.prop = d }

// Propagation returns the current one-way propagation delay.
func (l *Link) Propagation() sim.Time { return l.prop }
