package netsim

import (
	"dclue/internal/rng"
	"dclue/internal/sim"
	"dclue/internal/telemetry"
)

// Link is a unidirectional wire: it serializes packets at the configured
// bandwidth, then delivers them to the far end after the propagation delay.
// The transmit queue in front of the link is a Qdisc owned by the sending
// device (NIC or router output port); Link itself holds at most the packet
// currently on the wire.
type Link struct {
	net   *Network
	bps   float64 // bandwidth, bits per second
	prop  sim.Time
	to    sink
	qdisc *Qdisc

	busy bool
	cur  *Packet // frame currently being serialized

	// inflight holds frames that finished serialization and are propagating,
	// oldest first. Arrival events pop from the front: the wire is FIFO, so
	// this is exact as long as the propagation delay does not shrink while
	// frames are in flight (SetPropagation is a setup-time knob; the model
	// never changes it mid-run).
	inflight pktRing

	// Prebuilt continuations, so serialization and arrival events do not
	// allocate a closure per frame.
	serDoneFn func()
	arriveFn  func()

	// Fault-injection state (all zero on a healthy link). down models a
	// failed wire: everything queued or in flight is lost. stalled models a
	// frozen transmitter (NIC stall): frames queue but nothing is sent, and
	// transmission resumes where it left off. lossP/corruptP are per-packet
	// probabilities drawn from faultRnd at serialization completion.
	down     bool
	stalled  bool
	lossP    float64
	corruptP float64
	faultRnd *rng.Stream

	// Statistics.
	BytesSent  uint64
	PktsSent   uint64
	FaultDrops uint64 // packets lost to injected faults on this link
	busyTime   sim.Time
	lastStart  sim.Time

	// tel, when set, attributes every serialization slice to the packet's
	// traffic class. Nil on untelemetered runs (the fast path).
	tel *telemetry.LinkTel
}

// NewLink creates a link of the given bandwidth (bits/s) and one-way
// propagation delay, draining from q into to. The qdisc notifies the link
// when work arrives.
func NewLink(n *Network, bps float64, prop sim.Time, q *Qdisc, to sink) *Link {
	l := &Link{net: n, bps: bps, prop: prop, to: to, qdisc: q}
	l.serDoneFn = l.serDone
	l.arriveFn = l.arrive
	q.link = l
	return l
}

// SerializationDelay returns the wire time for a packet of the given size.
func (l *Link) SerializationDelay(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / l.bps * float64(sim.Second))
}

// Queue returns the Qdisc feeding this link (the sending device's transmit
// queue — a NIC egress or a router output port), for occupancy gauges.
func (l *Link) Queue() *Qdisc { return l.qdisc }

// Utilization returns the fraction of elapsed time the wire was busy.
func (l *Link) Utilization() float64 {
	now := l.net.sim.Now()
	if now == 0 {
		return 0
	}
	busy := l.busyTime
	if l.busy {
		busy += now - l.lastStart
	}
	return float64(busy) / float64(now)
}

// kick starts the transmit loop if the wire is idle. Called by the qdisc on
// enqueue and by the link itself on transmit completion.
func (l *Link) kick() {
	if l.busy || l.stalled {
		return
	}
	if l.down {
		// A dead wire loses everything handed to it immediately.
		for {
			pkt := l.qdisc.dequeue()
			if pkt == nil {
				return
			}
			l.dropFault(pkt)
		}
	}
	pkt := l.qdisc.dequeue()
	if pkt == nil {
		return
	}
	l.busy = true
	l.cur = pkt
	l.lastStart = l.net.sim.Now()
	l.net.sim.After(l.SerializationDelay(pkt.Size), l.serDoneFn)
}

// serDone fires when the frame on the wire finishes serializing.
func (l *Link) serDone() {
	pkt := l.cur
	l.cur = nil
	now := l.net.sim.Now()
	l.busyTime += now - l.lastStart
	if l.tel != nil {
		// The identical integer slice just added to busyTime, attributed to
		// exactly one class: per-class sums equal BusyTime exactly. Recorded
		// before the fault-drop check because a dropped frame still consumed
		// its wire time.
		l.tel.OnTransmit(pkt.TC, l.lastStart, now, pkt.Size)
	}
	l.busy = false
	if l.down || (l.lossP > 0 && l.faultRnd != nil && l.faultRnd.Float64() < l.lossP) {
		// Lost on the wire: the frame consumed its serialization slot
		// but never arrives (link went down mid-flight, or burst loss).
		l.dropFault(pkt)
		l.kick()
		return
	}
	if l.corruptP > 0 && l.faultRnd != nil && l.faultRnd.Float64() < l.corruptP {
		pkt.Corrupt = true
	}
	l.BytesSent += uint64(pkt.Size)
	l.PktsSent++
	// Propagation: the wire is free for the next frame while this one
	// flies.
	l.inflight.push(pkt)
	l.net.sim.After(l.prop, l.arriveFn)
	l.kick()
}

// arrive fires when the oldest propagating frame reaches the far end.
func (l *Link) arrive() {
	l.to.receive(l.inflight.pop())
}

// dropFault discards a packet lost to an injected fault.
func (l *Link) dropFault(pkt *Packet) {
	l.FaultDrops++
	l.net.FaultDrops++
	l.net.Drops++
	l.net.freePacket(pkt)
}

// SetFaultRand installs the random stream used for loss/corruption draws.
// Each link should get its own derived stream so fault draws on one link
// never perturb another (common-random-numbers discipline).
func (l *Link) SetFaultRand(r *rng.Stream) { l.faultRnd = r }

// SetDown raises or clears a link-down fault. Bringing the link down drops
// everything already queued; packets enqueued while down are dropped as they
// arrive. The packet currently being serialized (if any) is lost when its
// serialization completes.
func (l *Link) SetDown(down bool) {
	l.down = down
	if !l.busy {
		l.kick()
	}
}

// SetStalled freezes or resumes the transmitter. Unlike a down link, a
// stalled link keeps its queue: frames accumulate (subject to qdisc limits)
// and transmission resumes when the stall clears.
func (l *Link) SetStalled(stalled bool) {
	l.stalled = stalled
	if !stalled && !l.busy {
		l.kick()
	}
}

// SetLoss sets the per-packet drop probability (0 disables). Draws come
// from the stream installed with SetFaultRand.
func (l *Link) SetLoss(p float64) { l.lossP = p }

// SetCorrupt sets the per-packet corruption probability (0 disables).
// Corrupted frames travel the fabric normally but are discarded by the
// receiving host's checksum, so the transport sees them as losses.
func (l *Link) SetCorrupt(p float64) { l.corruptP = p }

// Down reports whether a link-down fault is active.
func (l *Link) Down() bool { return l.down }

// SetPropagation adjusts the one-way propagation delay (used by the latency
// experiments, which stretch the inter-LATA links).
func (l *Link) SetPropagation(d sim.Time) { l.prop = d }

// Propagation returns the current one-way propagation delay.
func (l *Link) Propagation() sim.Time { return l.prop }

// BusyTime returns the accumulated wire time of completed serializations —
// the exact integer total the telemetry layer's per-class attribution must
// sum to.
func (l *Link) BusyTime() sim.Time { return l.busyTime }

// SetTelemetry attaches a per-class busy-time instrument (nil detaches).
func (l *Link) SetTelemetry(t *telemetry.LinkTel) { l.tel = t }
