package netsim

import "dclue/internal/rng"

// This file implements the parts of the diff-serv design space the paper
// enumerates but leaves unexplored (§3.4): weighted fair queueing as an
// alternative to strict priority, and (W)RED early dropping as an
// alternative to tail drop. The paper's conclusion asks for "QoS schemes
// that can minimize inter-application interference and yet provide a good
// performance for all" — WFQ is the canonical answer, and the ablation
// experiments compare it against the priority arrangement that hurt the
// DBMS so much.

// Discipline selects the scheduling algorithm of a Qdisc.
type Discipline int

const (
	// DiscPriority is strict priority across classes (the paper's setup:
	// higher AF classes preempt best effort at the router).
	DiscPriority Discipline = iota
	// DiscWFQ is weighted fair queueing: classes share the link in
	// proportion to configured weights, so a greedy priority class cannot
	// starve best-effort DBMS traffic.
	DiscWFQ
)

// DropPolicy selects the queue admission algorithm.
type DropPolicy int

const (
	// DropTail drops arrivals once the class queue is full (the paper's
	// routers "use simple tail-drop").
	DropTail DropPolicy = iota
	// DropRED drops arrivals probabilistically between a minimum and
	// maximum threshold (Random Early Detection); with per-class limits
	// this is WRED in the usual router sense.
	DropRED
)

// REDConfig parameterizes DropRED.
type REDConfig struct {
	MinBytes float64 // below this queue depth, never drop
	MaxBytes float64 // above this, drop every arrival
	MaxProb  float64 // drop probability at MaxBytes (linear in between)
}

// DefaultREDConfig drops from 25% to 75% of the limit with 10% max
// probability, per classic RED guidance scaled to the port queues.
func DefaultREDConfig(limitBytes int) REDConfig {
	return REDConfig{
		MinBytes: 0.25 * float64(limitBytes),
		MaxBytes: 0.75 * float64(limitBytes),
		MaxProb:  0.1,
	}
}

// SetDiscipline switches the qdisc's scheduler. WFQ uses the given weights
// (nil means equal weights).
func (q *Qdisc) SetDiscipline(d Discipline, weights []float64) {
	q.discipline = d
	for c := 0; c < NumClasses; c++ {
		w := 1.0
		if c < len(weights) && weights[c] > 0 {
			w = weights[c]
		}
		q.weights[c] = w
	}
}

// SetDropPolicy switches the admission algorithm. rnd supplies the RED coin
// flips; it must be non-nil for DropRED.
func (q *Qdisc) SetDropPolicy(p DropPolicy, red REDConfig, rnd *rng.Stream) {
	q.dropPolicy = p
	q.red = red
	q.rnd = rnd
}

// admit applies the drop policy for a packet arriving at class c. It
// returns false when the packet must be dropped.
func (q *Qdisc) admit(pkt *Packet, c Class) bool {
	limit := q.cfg.LimitBytes[c]
	depth := q.size[c]
	if limit > 0 && depth+pkt.Size > limit {
		return false // hard limit applies under every policy
	}
	if q.dropPolicy == DropRED && q.rnd != nil {
		d := float64(depth)
		switch {
		case d <= q.red.MinBytes:
			// No early drop.
		case d >= q.red.MaxBytes:
			return false
		default:
			p := q.red.MaxProb * (d - q.red.MinBytes) / (q.red.MaxBytes - q.red.MinBytes)
			if q.rnd.Bool(p) {
				return false
			}
		}
	}
	return true
}

// wfqDequeue picks the class whose virtual finish time is smallest: a
// byte-weighted deficit round robin, which approximates WFQ closely enough
// for two classes while staying O(classes).
func (q *Qdisc) wfqDequeue() *Packet {
	// Replenish deficit counters when every backlogged class is exhausted.
	for {
		best := -1
		for c := 0; c < NumClasses; c++ {
			if len(q.q[c]) == 0 {
				continue
			}
			if q.deficit[c] >= float64(q.q[c][0].Size) {
				if best < 0 || q.deficit[best]/q.weights[best] < q.deficit[c]/q.weights[c] {
					best = c
				}
			}
		}
		if best >= 0 {
			pkt := q.q[best][0]
			q.q[best] = q.q[best][1:]
			q.size[best] -= pkt.Size
			q.deficit[best] -= float64(pkt.Size)
			return pkt
		}
		// Nothing eligible: if any class is backlogged, grant quanta.
		backlogged := false
		for c := 0; c < NumClasses; c++ {
			if len(q.q[c]) > 0 {
				backlogged = true
				q.deficit[c] += q.weights[c] * wfqQuantum
			} else {
				q.deficit[c] = 0
			}
		}
		if !backlogged {
			return nil
		}
	}
}

// wfqQuantum is the per-round byte quantum at weight 1.0 (one MTU).
const wfqQuantum = 1518
