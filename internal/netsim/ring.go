package netsim

// pktRing is a growable FIFO of packets. The fabric's hot paths (router
// forwarding backlogs, link flights, NIC loopback) use it instead of
// slice-append/reslice queues so steady-state operation does not allocate:
// the ring grows to the high-water mark once and is reused thereafter.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

func (r *pktRing) push(pkt *Packet) {
	if r.n == len(r.buf) {
		size := 2 * len(r.buf)
		if size < 8 {
			size = 8
		}
		grown := make([]*Packet, size)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = pkt
	r.n++
}

func (r *pktRing) pop() *Packet {
	if r.n == 0 {
		return nil
	}
	pkt := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return pkt
}
