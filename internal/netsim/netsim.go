// Package netsim models the unified Ethernet fabric of the paper at packet
// granularity: full-duplex links with serialization and propagation delay,
// store-and-forward routers with a finite forwarding rate, and diff-serv
// output queues (strict priority across classes, tail drop, ECN marking).
//
// The topology mirrors the paper's Fig 1: one or more subclusters ("LATAs"),
// each with an inner router connecting its server nodes, joined by an outer
// router where the client population (and any cross-traffic endpoints) also
// home in.
package netsim

import (
	"fmt"

	"dclue/internal/sim"
	"dclue/internal/telemetry"
)

// Addr identifies an endpoint (a server node, the client cloud, or an
// extra cross-traffic host) on the fabric.
type Addr int

// Class is a diff-serv traffic class. Higher classes get strict priority at
// router output ports (the paper maps FTP to AF21 in its priority
// experiments, with DBMS traffic left best-effort).
type Class int

// Traffic classes used by the model.
const (
	ClassBestEffort Class = 0
	ClassAF21       Class = 1

	NumClasses = 2
)

// Packet is one frame on the wire. Size includes all headers.
type Packet struct {
	ID      uint64
	Src     Addr
	Dst     Addr
	Size    int // bytes on the wire
	Class   Class
	TC      telemetry.Class // workload traffic class, for telemetry attribution only
	ECN     bool            // ECN-capable transport
	Marked  bool            // congestion experienced
	Corrupt bool            // payload damaged in flight; dropped at the receiving NIC
	Payload any             // opaque to the network (a TCP segment)

	sent sim.Time // enqueue time at the source NIC, for delay stats
}

// Endpoint consumes packets addressed to it.
type Endpoint interface {
	// Deliver is called in kernel context when a packet arrives. The packet
	// is only valid for the duration of the call: the network recycles it as
	// soon as Deliver returns, so an endpoint that needs the contents later
	// must copy them out (the payload itself may be retained).
	//
	//pool:borrow
	Deliver(pkt *Packet)
}

// sink is anything a link can feed: a router input or an endpoint NIC.
type sink interface {
	receive(pkt *Packet)
}

// Network is the assembled fabric: endpoints, NICs, routers and links.
type Network struct {
	sim       *sim.Sim
	nextPktID uint64

	nics      map[Addr]*NIC
	routers   []*Router
	portSetup func(*Qdisc) // applied to each router port at creation

	// pktPool recycles Packet objects so the steady-state wire path does not
	// allocate: AllocPacket draws one, and the fabric returns it when the
	// packet dies (delivered, or dropped anywhere along the path).
	pktPool []*Packet

	// Delay statistics by class (end-to-end, NIC enqueue to delivery).
	DelayByClass [NumClasses]DelayTally

	// Drop and mark counters, fabric-wide.
	Drops uint64
	Marks uint64

	// Fault counters (injected faults, not congestion): packets lost on a
	// down/lossy link and packets discarded at the receiver because a fault
	// corrupted them in flight (modelling a checksum failure).
	FaultDrops   uint64
	CorruptDrops uint64

	// AbandonedPayloads counts packets recycled with their payload still
	// attached — the packet died in the fabric (dropped, lost, corrupted, or
	// delivered to nobody) and whatever rode in it was never handed to an
	// endpoint. The transport pool-balance test uses this as the runtime
	// witness for the static ownership contract: every segment the sender
	// put on the wire is either delivered or abandoned, never duplicated and
	// never silently retained by the network.
	AbandonedPayloads uint64

	// pktAllocs/pktFrees audit the pool contract at run time; see
	// PoolOutstanding.
	pktAllocs, pktFrees int64
}

// PoolOutstanding reports how many pool-drawn packets are currently live
// (allocated and not yet recycled). A quiesced network must read zero; a
// positive residue means some path leaked a packet, the exact bug class the
// poolown analyzer proves absent statically.
func (n *Network) PoolOutstanding() int {
	return int(n.pktAllocs - n.pktFrees)
}

// DelayTally accumulates end-to-end packet delays for one class.
type DelayTally struct {
	N   uint64
	Sum sim.Time
}

// Mean returns the mean recorded delay.
func (d DelayTally) Mean() sim.Time {
	if d.N == 0 {
		return 0
	}
	return d.Sum / sim.Time(d.N)
}

// New returns an empty network on s.
func New(s *sim.Sim) *Network {
	return &Network{sim: s, nics: make(map[Addr]*NIC)}
}

// Sim returns the simulation the network is bound to.
func (n *Network) Sim() *sim.Sim { return n.sim }

// AllocPacket draws a zeroed packet from the recycle pool. Senders that use
// it avoid a per-packet allocation; Send also accepts packets allocated any
// other way. The caller owns the result and must hand it to Send (or free
// it) on every path.
//
//pool:alloc
func (n *Network) AllocPacket() *Packet {
	n.pktAllocs++
	if ln := len(n.pktPool); ln > 0 {
		pkt := n.pktPool[ln-1]
		n.pktPool[ln-1] = nil
		n.pktPool = n.pktPool[:ln-1]
		return pkt
	}
	return &Packet{}
}

// freePacket recycles a dead packet (delivered or dropped). A payload
// still attached here never reached its endpoint: the segment died with
// the packet (see AbandonedPayloads).
//
//pool:free
func (n *Network) freePacket(pkt *Packet) {
	if pkt.Payload != nil {
		n.AbandonedPayloads++
	}
	n.pktFrees++
	*pkt = Packet{}
	n.pktPool = append(n.pktPool, pkt)
}

// NIC returns the NIC for addr, creating it if needed.
func (n *Network) NIC(addr Addr) *NIC {
	nic, ok := n.nics[addr]
	if !ok {
		nic = &NIC{net: n, addr: addr}
		n.nics[addr] = nic
	}
	return nic
}

// Send injects a packet from src's NIC toward its destination. It is the
// single entry point used by the transport layer; it takes ownership of the
// packet, which dies somewhere in the fabric (delivered or dropped) and is
// recycled there.
//
//pool:sink
func (n *Network) Send(pkt *Packet) {
	n.nextPktID++
	pkt.ID = n.nextPktID
	pkt.sent = n.sim.Now()
	nic, ok := n.nics[pkt.Src]
	if !ok {
		panic(fmt.Sprintf("netsim: send from unknown addr %d", pkt.Src))
	}
	nic.transmit(pkt)
}

// deliver hands a packet that reached its destination NIC to the endpoint,
// then recycles it (see the Endpoint.Deliver contract).
func (n *Network) deliver(pkt *Packet) {
	nic := n.nics[pkt.Dst]
	if nic == nil || nic.endpoint == nil {
		// Destination has no listener; count as a drop.
		n.Drops++
		n.freePacket(pkt)
		return
	}
	if pkt.Corrupt {
		// Checksum failure at the receiving host: the frame is discarded
		// silently, so the transport sees it exactly like a loss.
		n.CorruptDrops++
		n.freePacket(pkt)
		return
	}
	d := n.sim.Now() - pkt.sent
	t := &n.DelayByClass[pkt.Class]
	t.N++
	t.Sum += d
	nic.endpoint.Deliver(pkt)
	// The payload was handed to the endpoint (Deliver's borrow covers the
	// packet; the payload transfers); detach it so freePacket does not count
	// it abandoned.
	pkt.Payload = nil
	n.freePacket(pkt)
}
