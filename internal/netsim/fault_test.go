package netsim

import (
	"testing"

	"dclue/internal/rng"
	"dclue/internal/sim"
)

// sendN injects n packets from 0 to 1, spaced apart so queueing never
// interferes with the fault accounting under test.
func sendN(s *sim.Sim, n *Network, count int, gap sim.Time) {
	for i := 0; i < count; i++ {
		i := i
		s.At(sim.Time(i)*gap, func() {
			n.Send(&Packet{Src: 0, Dst: 1, Size: 1000})
		})
	}
}

func TestLinkLossDropsExactlyPerProbability(t *testing.T) {
	s := sim.New()
	n, _, cb := buildPair(s, 1e9, 1e9)
	link := n.NIC(0).Link()
	link.SetFaultRand(rng.Derive(7, "fault/test"))
	link.SetLoss(1)
	sendN(s, n, 10, sim.Millisecond)
	s.RunAll()
	if len(cb.pkts) != 0 {
		t.Fatalf("delivered %d packets across a p=1 lossy link", len(cb.pkts))
	}
	if link.FaultDrops != 10 || n.FaultDrops != 10 {
		t.Fatalf("fault drops link=%d net=%d, want 10/10", link.FaultDrops, n.FaultDrops)
	}
	if n.Drops != 10 {
		t.Fatalf("net.Drops=%d: injected losses must count as drops", n.Drops)
	}
}

func TestLinkLossPartialIsSeededAndDeterministic(t *testing.T) {
	run := func() (delivered int, dropped uint64) {
		s := sim.New()
		n, _, cb := buildPair(s, 1e9, 1e9)
		link := n.NIC(0).Link()
		link.SetFaultRand(rng.Derive(42, "fault/test"))
		link.SetLoss(0.4)
		sendN(s, n, 200, 100*sim.Microsecond)
		s.RunAll()
		return len(cb.pkts), link.FaultDrops
	}
	d1, f1 := run()
	d2, f2 := run()
	if d1 != d2 || f1 != f2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, f1, d2, f2)
	}
	if d1+int(f1) != 200 {
		t.Fatalf("delivered %d + dropped %d != 200", d1, f1)
	}
	if f1 < 40 || f1 > 160 {
		t.Fatalf("%d/200 dropped at p=0.4: stream looks broken", f1)
	}
}

func TestLinkDownLosesQueuedAndInFlight(t *testing.T) {
	s := sim.New()
	n, _, cb := buildPair(s, 1e9, 1e9)
	link := n.NIC(0).Link()
	// Burst of packets, link goes down while they queue/serialize, comes
	// back later; everything sent before the window must be lost, traffic
	// after it must flow.
	sendN(s, n, 5, sim.Nanosecond) // all enqueued at ~t=0
	s.At(1*sim.Microsecond, func() { link.SetDown(true) })
	s.At(1*sim.Millisecond, func() { link.SetDown(false) })
	s.At(2*sim.Millisecond, func() { n.Send(&Packet{Src: 0, Dst: 1, Size: 1000}) })
	s.RunAll()
	// 1000 B at 1 Gb/s = 8 us serialization: the cut at 1 us catches the
	// first packet mid-wire (lost at serialization end) and the rest still
	// queued (drained and dropped). Only the post-recovery packet arrives.
	if len(cb.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1 (only post-recovery)", len(cb.pkts))
	}
	if link.FaultDrops != 5 {
		t.Fatalf("fault drops = %d, want 5 (queued + in-flight)", link.FaultDrops)
	}
}

func TestCorruptionDiscardedAtReceiver(t *testing.T) {
	s := sim.New()
	n, _, cb := buildPair(s, 1e9, 1e9)
	link := n.NIC(0).Link()
	link.SetFaultRand(rng.Derive(7, "fault/test"))
	link.SetCorrupt(1)
	sendN(s, n, 8, sim.Millisecond)
	s.RunAll()
	if len(cb.pkts) != 0 {
		t.Fatalf("endpoint received %d corrupted packets", len(cb.pkts))
	}
	if n.CorruptDrops != 8 {
		t.Fatalf("CorruptDrops=%d, want 8", n.CorruptDrops)
	}
	// Corrupted frames consumed wire time: they count as sent, not dropped
	// on the link.
	if link.FaultDrops != 0 || link.PktsSent != 8 {
		t.Fatalf("link counters drops=%d sent=%d, want 0/8", link.FaultDrops, link.PktsSent)
	}
}

func TestNICStallQueuesThenDrains(t *testing.T) {
	s := sim.New()
	n, _, cb := buildPair(s, 1e9, 1e9)
	link := n.NIC(0).Link()
	s.At(0, func() { link.SetStalled(true) })
	sendN(s, n, 4, sim.Microsecond)
	var duringStall int
	s.At(5*sim.Millisecond, func() { duringStall = len(cb.pkts) })
	s.At(10*sim.Millisecond, func() { link.SetStalled(false) })
	s.RunAll()
	if duringStall != 0 {
		t.Fatalf("%d packets delivered across a stalled transmitter", duringStall)
	}
	if len(cb.pkts) != 4 {
		t.Fatalf("delivered %d after stall cleared, want all 4 (no loss)", len(cb.pkts))
	}
	if link.FaultDrops != 0 {
		t.Fatalf("stall must not drop, got %d fault drops", link.FaultDrops)
	}
}

func TestHealthyLinkUnchangedByFaultPlumbing(t *testing.T) {
	s := sim.New()
	n, _, cb := buildPair(s, 1e9, 1e9)
	n.NIC(0).Link().SetFaultRand(rng.Derive(7, "fault/test"))
	// All knobs at their defaults: behavior must be identical to a link
	// with no fault state at all.
	sendN(s, n, 20, 100*sim.Microsecond)
	s.RunAll()
	if len(cb.pkts) != 20 || n.FaultDrops != 0 || n.CorruptDrops != 0 || n.Drops != 0 {
		t.Fatalf("healthy path perturbed: delivered=%d faultDrops=%d corrupt=%d drops=%d",
			len(cb.pkts), n.FaultDrops, n.CorruptDrops, n.Drops)
	}
}
