package netsim

import (
	"testing"

	"dclue/internal/sim"
)

// collector is a test endpoint recording deliveries. Packets are only valid
// during Deliver (the network recycles them), so it records copies.
type collector struct {
	pkts  []*Packet
	times []sim.Time
	s     *sim.Sim
}

func (c *collector) Deliver(pkt *Packet) {
	cp := *pkt
	c.pkts = append(c.pkts, &cp)
	c.times = append(c.times, c.s.Now())
}

// buildPair wires two endpoints through one router with the given
// forwarding rate and link speed.
func buildPair(s *sim.Sim, bps float64, fwdRate float64) (*Network, *collector, *collector) {
	n := New(s)
	r := NewRouter(n, "r", fwdRate, 0)
	a := n.NIC(0)
	b := n.NIC(1)
	a.Attach(r, bps, sim.Microsecond)
	b.Attach(r, bps, sim.Microsecond)
	ca := &collector{s: s}
	cb := &collector{s: s}
	a.SetEndpoint(ca)
	b.SetEndpoint(cb)
	return n, ca, cb
}

func TestEndToEndDelivery(t *testing.T) {
	s := sim.New()
	n, _, cb := buildPair(s, 1e9, 1e6)
	n.Send(&Packet{Src: 0, Dst: 1, Size: 1500})
	s.RunAll()
	if len(cb.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(cb.pkts))
	}
	if cb.pkts[0].Size != 1500 {
		t.Fatalf("size %d", cb.pkts[0].Size)
	}
}

func TestSerializationAndPropagationTiming(t *testing.T) {
	s := sim.New()
	n, _, cb := buildPair(s, 1e8, 1e9) // 100 Mb/s, effectively infinite fwd rate
	// 1250 bytes at 100 Mb/s = 100us serialization per hop; two hops
	// (NIC->router, router->NIC); props 1us each; router service ~1ns.
	n.Send(&Packet{Src: 0, Dst: 1, Size: 1250})
	s.RunAll()
	want := sim.Time(2*100*sim.Microsecond + 2*sim.Microsecond)
	got := cb.times[0]
	if got < want || got > want+10*sim.Microsecond {
		t.Fatalf("delivery at %v, want ~%v", got, want)
	}
}

func TestFIFOWithinClass(t *testing.T) {
	s := sim.New()
	n, _, cb := buildPair(s, 1e6, 1e9) // slow link forces queueing
	for i := 0; i < 10; i++ {
		n.Send(&Packet{Src: 0, Dst: 1, Size: 1000, Payload: i})
	}
	s.RunAll()
	if len(cb.pkts) != 10 {
		t.Fatalf("delivered %d", len(cb.pkts))
	}
	for i, p := range cb.pkts {
		if p.Payload.(int) != i {
			t.Fatalf("out of order at %d: %v", i, p.Payload)
		}
	}
}

func TestPriorityClassJumpsQueue(t *testing.T) {
	s := sim.New()
	n := New(s)
	q := NewQdisc(n, DefaultQdiscConfig())
	be1 := &Packet{Size: 100, Class: ClassBestEffort, Payload: "be1"}
	be2 := &Packet{Size: 100, Class: ClassBestEffort, Payload: "be2"}
	af := &Packet{Size: 100, Class: ClassAF21, Payload: "af"}
	q.Enqueue(be1)
	q.Enqueue(be2)
	q.Enqueue(af)
	if got := q.dequeue().Payload; got != "af" {
		t.Fatalf("first dequeue %v, want af", got)
	}
	if got := q.dequeue().Payload; got != "be1" {
		t.Fatalf("second dequeue %v, want be1", got)
	}
}

func TestTailDrop(t *testing.T) {
	s := sim.New()
	n := New(s)
	cfg := QdiscConfig{LimitBytes: [NumClasses]int{1000, 1000}}
	q := NewQdisc(n, cfg)
	for i := 0; i < 5; i++ {
		q.Enqueue(&Packet{Size: 400, Class: ClassBestEffort})
	}
	// Only 2 fit (800 bytes; third would exceed 1000).
	if q.Len() != 2 {
		t.Fatalf("queued %d packets, want 2", q.Len())
	}
	if q.DropsByClass[ClassBestEffort] != 3 {
		t.Fatalf("drops %d, want 3", q.DropsByClass[ClassBestEffort])
	}
	if n.Drops != 3 {
		t.Fatalf("network drops %d", n.Drops)
	}
}

func TestPerClassLimitsIndependent(t *testing.T) {
	s := sim.New()
	n := New(s)
	cfg := QdiscConfig{LimitBytes: [NumClasses]int{500, 2000}}
	q := NewQdisc(n, cfg)
	for i := 0; i < 4; i++ {
		q.Enqueue(&Packet{Size: 400, Class: ClassBestEffort})
		q.Enqueue(&Packet{Size: 400, Class: ClassAF21})
	}
	if q.DropsByClass[ClassBestEffort] != 3 {
		t.Fatalf("BE drops %d, want 3", q.DropsByClass[ClassBestEffort])
	}
	if q.DropsByClass[ClassAF21] != 0 {
		t.Fatalf("AF drops %d, want 0 (larger queue)", q.DropsByClass[ClassAF21])
	}
}

func TestECNMarking(t *testing.T) {
	s := sim.New()
	n := New(s)
	cfg := QdiscConfig{
		LimitBytes:        [NumClasses]int{10000, 10000},
		ECNThresholdBytes: 1000,
	}
	q := NewQdisc(n, cfg)
	for i := 0; i < 3; i++ {
		q.Enqueue(&Packet{Size: 600, Class: ClassBestEffort, ECN: true})
	}
	// Third packet sees 1200 queued > 1000 threshold: marked.
	marked := 0
	for {
		p := q.dequeue()
		if p == nil {
			break
		}
		if p.Marked {
			marked++
		}
	}
	if marked != 1 {
		t.Fatalf("marked %d packets, want 1", marked)
	}
	if n.Marks != 1 {
		t.Fatalf("network marks %d", n.Marks)
	}
}

func TestECNNotMarkedWithoutCapability(t *testing.T) {
	s := sim.New()
	n := New(s)
	cfg := QdiscConfig{
		LimitBytes:        [NumClasses]int{10000, 10000},
		ECNThresholdBytes: 100,
	}
	q := NewQdisc(n, cfg)
	q.Enqueue(&Packet{Size: 600})
	q.Enqueue(&Packet{Size: 600})
	if n.Marks != 0 {
		t.Fatal("non-ECN packet was marked")
	}
}

func TestRouterForwardingRateBottleneck(t *testing.T) {
	s := sim.New()
	// 1000 pkt/s forwarding: 50 packets take ~50ms regardless of link speed.
	n, _, cb := buildPair(s, 1e9, 1000)
	for i := 0; i < 50; i++ {
		n.Send(&Packet{Src: 0, Dst: 1, Size: 100})
	}
	s.RunAll()
	if len(cb.pkts) != 50 {
		t.Fatalf("delivered %d", len(cb.pkts))
	}
	last := cb.times[len(cb.times)-1]
	if last < 49*sim.Millisecond {
		t.Fatalf("50 packets at 1000 pkt/s finished in %v, want >=49ms", last)
	}
}

func TestLoopbackBypassesFabric(t *testing.T) {
	s := sim.New()
	n, ca, _ := buildPair(s, 1e9, 1e6)
	n.Send(&Packet{Src: 0, Dst: 0, Size: 100})
	s.RunAll()
	if len(ca.pkts) != 1 {
		t.Fatalf("loopback delivered %d", len(ca.pkts))
	}
	if ca.times[0] > 2*sim.Microsecond {
		t.Fatalf("loopback took %v", ca.times[0])
	}
}

func TestLinkUtilization(t *testing.T) {
	s := sim.New()
	n, _, cb := buildPair(s, 1e6, 1e9) // 1 Mb/s
	// 12500 bytes = 100ms of wire time at 1 Mb/s.
	for i := 0; i < 10; i++ {
		n.Send(&Packet{Src: 0, Dst: 1, Size: 1250})
	}
	s.RunAll()
	_ = cb
	nic := n.NIC(0)
	u := nic.Link().Utilization()
	if u < 0.9 {
		t.Fatalf("utilization %v, want ~1.0 while saturated", u)
	}
}

func TestDelayStatsByClass(t *testing.T) {
	s := sim.New()
	n, _, _ := buildPair(s, 1e9, 1e6)
	n.Send(&Packet{Src: 0, Dst: 1, Size: 100, Class: ClassAF21})
	s.RunAll()
	if n.DelayByClass[ClassAF21].N != 1 {
		t.Fatal("AF21 delay not recorded")
	}
	if n.DelayByClass[ClassAF21].Mean() <= 0 {
		t.Fatal("mean delay not positive")
	}
}

func TestTopologyIntraLata(t *testing.T) {
	s := sim.New()
	topo := BuildTopology(s, testTopoConfig([]int{4}))
	c := &collector{s: s}
	topo.Net.NIC(NodeAddr(1)).SetEndpoint(c)
	topo.Net.Send(&Packet{Src: NodeAddr(0), Dst: NodeAddr(1), Size: 500})
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatal("intra-LATA packet not delivered")
	}
	// Must not have crossed the outer router.
	if topo.Outer.Forwarded != 0 {
		t.Fatalf("outer router forwarded %d packets for intra-LATA traffic", topo.Outer.Forwarded)
	}
}

func TestTopologyInterLata(t *testing.T) {
	s := sim.New()
	topo := BuildTopology(s, testTopoConfig([]int{2, 2}))
	c := &collector{s: s}
	topo.Net.NIC(NodeAddr(3)).SetEndpoint(c)
	topo.Net.Send(&Packet{Src: NodeAddr(0), Dst: NodeAddr(3), Size: 500})
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatal("inter-LATA packet not delivered")
	}
	if topo.Outer.Forwarded != 1 {
		t.Fatalf("outer router forwarded %d, want 1", topo.Outer.Forwarded)
	}
	if topo.Inner[0].Forwarded != 1 || topo.Inner[1].Forwarded != 1 {
		t.Fatal("both inner routers should forward the packet once")
	}
}

func TestTopologyClientCloud(t *testing.T) {
	s := sim.New()
	topo := BuildTopology(s, testTopoConfig([]int{2}))
	c := &collector{s: s}
	topo.Net.NIC(AddrClientCloud).SetEndpoint(c)
	topo.Net.Send(&Packet{Src: NodeAddr(0), Dst: AddrClientCloud, Size: 500})
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatal("client-bound packet not delivered")
	}
}

func TestTopologyExtraHostsCrossLatas(t *testing.T) {
	s := sim.New()
	cfg := testTopoConfig([]int{2, 2})
	cfg.WithExtraHosts = true
	topo := BuildTopology(s, cfg)
	c := &collector{s: s}
	topo.Net.NIC(AddrExtraServer).SetEndpoint(c)
	topo.Net.Send(&Packet{Src: AddrExtraClient, Dst: AddrExtraServer, Size: 500})
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatal("extra-host packet not delivered")
	}
	if topo.Outer.Forwarded != 1 {
		t.Fatal("FTP path must cross the outer router (inter-LATA)")
	}
}

func TestExtraInterLataLatency(t *testing.T) {
	run := func(extra sim.Time) sim.Time {
		s := sim.New()
		cfg := testTopoConfig([]int{1, 1})
		cfg.ExtraInterLataLatency = extra
		topo := BuildTopology(s, cfg)
		c := &collector{s: s}
		topo.Net.NIC(NodeAddr(1)).SetEndpoint(c)
		topo.Net.Send(&Packet{Src: NodeAddr(0), Dst: NodeAddr(1), Size: 500})
		s.RunAll()
		return c.times[0]
	}
	base := run(0)
	slow := run(1 * sim.Millisecond)
	diff := slow - base
	// Two inter-LATA hops, each +0.5ms: +1ms total.
	if diff < 990*sim.Microsecond || diff > 1010*sim.Microsecond {
		t.Fatalf("extra latency delta %v, want ~1ms", diff)
	}
}

func TestLataOfNode(t *testing.T) {
	s := sim.New()
	topo := BuildTopology(s, testTopoConfig([]int{3, 2}))
	cases := map[int]int{0: 0, 2: 0, 3: 1, 4: 1}
	for node, want := range cases {
		if got := topo.LataOfNode(node); got != want {
			t.Errorf("LataOfNode(%d) = %d, want %d", node, got, want)
		}
	}
	if topo.TotalNodes() != 5 {
		t.Errorf("TotalNodes = %d", topo.TotalNodes())
	}
}

func testTopoConfig(nodesPerLata []int) TopologyConfig {
	return TopologyConfig{
		NodesPerLata: nodesPerLata,
		NodeLinkBps:  1e9,
		InterLataBps: 1e9,
		ClientBps:    1e9,
		NodeProp:     sim.Microsecond,
		InterProp:    5 * sim.Microsecond,
		InnerFwdRate: 1e6,
		OuterFwdRate: 1e6,
	}
}
