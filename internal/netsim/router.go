package netsim

import (
	"fmt"

	"dclue/internal/sim"
)

// Router is a store-and-forward router. All arriving packets pass through a
// single forwarding engine with a finite rate (packets/second) — the
// resource the paper throttles in its Fig 8 experiment — then are placed on
// the output port toward their destination. Output ports run the diff-serv
// Qdisc, so priority traffic receives priority treatment "only at the
// router", as §3.4 notes.
type Router struct {
	net     *Network
	name    string
	fwdRate float64  // packets per second through the forwarding engine
	latency sim.Time // fixed per-packet forwarding latency

	fwdQ      pktRing
	fwdBusy   bool
	fwdLimit  int     // max queued packets in the forwarding engine
	inService *Packet // packet in the forwarding engine
	fwdDoneFn func()  // prebuilt completion (no closure per packet)

	routes      map[Addr]*Qdisc
	defaultPort *Qdisc
	ports       []*port

	// Statistics.
	Forwarded uint64
	FwdDrops  uint64
	maxFwdQ   int
}

type port struct {
	q    *Qdisc
	link *Link
}

// NewRouter creates a router with the given forwarding rate (pkt/s) and
// fixed forwarding latency, registered on the network.
func NewRouter(n *Network, name string, fwdRate float64, latency sim.Time) *Router {
	r := &Router{
		net:      n,
		name:     name,
		fwdRate:  fwdRate,
		latency:  latency,
		fwdLimit: 4096,
		routes:   make(map[Addr]*Qdisc),
	}
	r.fwdDoneFn = r.fwdDone
	n.routers = append(n.routers, r)
	return r
}

// SetForwardingRate changes the forwarding rate (pkt/s).
func (r *Router) SetForwardingRate(pps float64) { r.fwdRate = pps }

// AddPort attaches an output link to the router: packets routed to this
// port are queued in a fresh Qdisc with cfg and drained onto a link of the
// given bandwidth and propagation delay toward 'to'. The returned port
// handle is used in route entries.
func (r *Router) AddPort(bps float64, prop sim.Time, cfg QdiscConfig, to sink) *Qdisc {
	q := NewQdisc(r.net, cfg)
	if r.net.portSetup != nil {
		r.net.portSetup(q)
	}
	l := NewLink(r.net, bps, prop, q, to)
	r.ports = append(r.ports, &port{q: q, link: l})
	return q
}

// PortLink returns the link behind a port queue (for utilization stats and
// the latency experiments). It panics if q is not one of r's ports.
func (r *Router) PortLink(q *Qdisc) *Link {
	for _, p := range r.ports {
		if p.q == q {
			return p.link
		}
	}
	panic(fmt.Sprintf("netsim: %s: unknown port", r.name))
}

// Route directs packets for addr to the given port.
func (r *Router) Route(addr Addr, q *Qdisc) { r.routes[addr] = q }

// DefaultRoute directs packets with no specific route to the given port.
func (r *Router) DefaultRoute(q *Qdisc) { r.defaultPort = q }

// receive implements sink: a packet arrives from some link.
func (r *Router) receive(pkt *Packet) {
	if r.fwdQ.len() >= r.fwdLimit {
		r.FwdDrops++
		r.net.Drops++
		r.net.freePacket(pkt)
		return
	}
	r.fwdQ.push(pkt)
	if r.fwdQ.len() > r.maxFwdQ {
		r.maxFwdQ = r.fwdQ.len()
	}
	r.pump()
}

// pump drives the forwarding engine.
func (r *Router) pump() {
	if r.fwdBusy || r.fwdQ.len() == 0 {
		return
	}
	r.fwdBusy = true
	r.inService = r.fwdQ.pop()
	service := sim.Time(float64(sim.Second)/r.fwdRate) + r.latency
	r.net.sim.After(service, r.fwdDoneFn)
}

// fwdDone fires when the forwarding engine finishes one packet.
func (r *Router) fwdDone() {
	pkt := r.inService
	r.inService = nil
	r.Forwarded++
	r.forward(pkt)
	r.fwdBusy = false
	r.pump()
}

// forward places the packet on its output port.
func (r *Router) forward(pkt *Packet) {
	q, ok := r.routes[pkt.Dst]
	if !ok {
		q = r.defaultPort
	}
	if q == nil {
		panic(fmt.Sprintf("netsim: %s: no route to %d", r.name, pkt.Dst))
	}
	q.Enqueue(pkt)
}

// MaxForwardQueue returns the deepest forwarding backlog seen (packets).
func (r *Router) MaxForwardQueue() int { return r.maxFwdQ }

// Name returns the router's name ("inner" or "outer").
func (r *Router) Name() string { return r.name }

// Ports returns the output-port queues in creation order (read-only view
// for occupancy gauges).
func (r *Router) Ports() []*Qdisc {
	qs := make([]*Qdisc, len(r.ports))
	for i, p := range r.ports {
		qs[i] = p.q
	}
	return qs
}
