package netsim

import (
	"testing"

	"dclue/internal/rng"
	"dclue/internal/sim"
)

// drainRatio saturates a qdisc with both classes and measures the byte
// share each receives over the first n dequeues.
func drainRatio(q *Qdisc, n int) (be, af int) {
	for i := 0; i < 200; i++ {
		q.Enqueue(&Packet{Size: 1000, Class: ClassBestEffort})
		q.Enqueue(&Packet{Size: 1000, Class: ClassAF21})
	}
	for i := 0; i < n; i++ {
		pkt := q.dequeue()
		if pkt == nil {
			break
		}
		if pkt.Class == ClassAF21 {
			af += pkt.Size
		} else {
			be += pkt.Size
		}
	}
	return
}

func bigCfg() QdiscConfig {
	return QdiscConfig{LimitBytes: [NumClasses]int{1 << 20, 1 << 20}}
}

func TestPriorityStarvesBestEffort(t *testing.T) {
	s := sim.New()
	n := New(s)
	q := NewQdisc(n, bigCfg())
	be, af := drainRatio(q, 100)
	if be != 0 {
		t.Fatalf("priority let %d best-effort bytes through while AF backlogged", be)
	}
	if af == 0 {
		t.Fatal("nothing dequeued")
	}
}

func TestWFQSharesEvenly(t *testing.T) {
	s := sim.New()
	n := New(s)
	q := NewQdisc(n, bigCfg())
	q.SetDiscipline(DiscWFQ, nil) // equal weights
	be, af := drainRatio(q, 200)
	if be == 0 || af == 0 {
		t.Fatalf("WFQ starved a class: be=%d af=%d", be, af)
	}
	ratio := float64(af) / float64(be)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("equal-weight WFQ ratio %.2f, want ~1", ratio)
	}
}

func TestWFQRespectsWeights(t *testing.T) {
	s := sim.New()
	n := New(s)
	q := NewQdisc(n, bigCfg())
	q.SetDiscipline(DiscWFQ, []float64{3, 1}) // best-effort gets 3x
	be, af := drainRatio(q, 200)
	if af == 0 {
		t.Fatal("weighted WFQ starved the light class")
	}
	ratio := float64(be) / float64(af)
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("3:1 WFQ delivered ratio %.2f", ratio)
	}
}

func TestWFQDrainsCompletely(t *testing.T) {
	s := sim.New()
	n := New(s)
	q := NewQdisc(n, bigCfg())
	q.SetDiscipline(DiscWFQ, []float64{1, 1})
	for i := 0; i < 10; i++ {
		q.Enqueue(&Packet{Size: 500, Class: ClassBestEffort})
	}
	got := 0
	for q.dequeue() != nil {
		got++
	}
	if got != 10 {
		t.Fatalf("drained %d of 10", got)
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty")
	}
}

func TestREDDropsEarly(t *testing.T) {
	s := sim.New()
	n := New(s)
	cfg := QdiscConfig{LimitBytes: [NumClasses]int{100 * 1000, 100 * 1000}}
	q := NewQdisc(n, cfg)
	q.SetDropPolicy(DropRED, DefaultREDConfig(100*1000), rng.New(5))
	drops := uint64(0)
	for i := 0; i < 90; i++ {
		q.Enqueue(&Packet{Size: 1000, Class: ClassBestEffort})
	}
	drops = q.DropsByClass[ClassBestEffort]
	if drops == 0 {
		t.Fatal("RED never dropped below the hard limit")
	}
	// But queue must still have admitted most packets (early drop is
	// probabilistic, not a cliff).
	if q.Len() < 50 {
		t.Fatalf("RED dropped too aggressively: %d queued", q.Len())
	}
}

func TestREDNeverDropsBelowMin(t *testing.T) {
	s := sim.New()
	n := New(s)
	cfg := QdiscConfig{LimitBytes: [NumClasses]int{100 * 1000, 100 * 1000}}
	q := NewQdisc(n, cfg)
	q.SetDropPolicy(DropRED, DefaultREDConfig(100*1000), rng.New(5))
	for i := 0; i < 20; i++ { // 20 KB < 25 KB min threshold
		q.Enqueue(&Packet{Size: 1000, Class: ClassBestEffort})
	}
	if q.DropsByClass[ClassBestEffort] != 0 {
		t.Fatal("RED dropped below the minimum threshold")
	}
}

func TestREDHardLimitStillApplies(t *testing.T) {
	s := sim.New()
	n := New(s)
	cfg := QdiscConfig{LimitBytes: [NumClasses]int{10 * 1000, 10 * 1000}}
	q := NewQdisc(n, cfg)
	// RED window far above the hard limit: the limit must still bound it.
	q.SetDropPolicy(DropRED, REDConfig{MinBytes: 1e9, MaxBytes: 2e9, MaxProb: 0}, rng.New(5))
	for i := 0; i < 50; i++ {
		q.Enqueue(&Packet{Size: 1000, Class: ClassBestEffort})
	}
	if q.Depth() > 10*1000 {
		t.Fatalf("depth %d exceeds hard limit", q.Depth())
	}
}

// TestWFQProtectsDBMSUnderCrossTraffic is the end-to-end point of the
// extension: with FTP at AF21, strict priority lets FTP bytes monopolize a
// congested link, while WFQ preserves roughly the configured share for
// best-effort (DBMS) traffic.
func TestWFQProtectsDBMSUnderCrossTraffic(t *testing.T) {
	run := func(wfq bool) (beDelay sim.Time) {
		s := sim.New()
		n := New(s)
		r := NewRouter(n, "r", 1e6, 0)
		n.NIC(0).Attach(r, 1e9, sim.Microsecond)
		back := n.NIC(1).Attach(r, 1e7, sim.Microsecond) // 10 Mb/s bottleneck
		n.NIC(1).SetEndpoint(&collector{s: s})
		if wfq {
			back.SetDiscipline(DiscWFQ, []float64{1, 1})
		}
		// Saturating AF21 aggressor plus sparse best-effort probes.
		s.Spawn("load", func(p *sim.Proc) {
			for i := 0; i < 2000; i++ {
				n.Send(&Packet{Src: 0, Dst: 1, Size: 1500, Class: ClassAF21})
				if i%20 == 0 {
					n.Send(&Packet{Src: 0, Dst: 1, Size: 250, Class: ClassBestEffort})
				}
				p.Sleep(sim.Millisecond) // ~12 Mb/s offered AF21
			}
		})
		s.Run(3 * sim.Second)
		s.Shutdown()
		return n.DelayByClass[ClassBestEffort].Mean()
	}
	prio := run(false)
	wfq := run(true)
	if wfq >= prio {
		t.Fatalf("WFQ did not reduce best-effort delay: %v vs %v under priority", wfq, prio)
	}
}
