package netsim

import (
	"testing"

	"dclue/internal/rng"
	"dclue/internal/sim"
)

// nullEndpoint consumes deliveries without recording (so pool tests can
// measure the fabric's own allocations, not the recorder's).
type nullEndpoint struct{ delivered int }

func (e *nullEndpoint) Deliver(pkt *Packet) { e.delivered++ }

// TestPacketPoolHitPathDoesNotAllocate pins the pool's purpose: once a
// packet has been through the pool, the alloc/free cycle touches the heap
// zero times. A regression here (e.g. freePacket dropping packets, or
// AllocPacket ignoring the pool) silently reintroduces per-packet GC work
// on the wire path.
func TestPacketPoolHitPathDoesNotAllocate(t *testing.T) {
	s := sim.New()
	n := New(s)
	n.freePacket(n.AllocPacket()) // warm: pool holds one packet
	allocs := testing.AllocsPerRun(100, func() {
		n.freePacket(n.AllocPacket())
	})
	if allocs != 0 {
		t.Fatalf("pool hit path allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestPoolBalancedAfterLossyRun is the runtime witness for the static
// ownership contract under faults: every pool-drawn packet injected into a
// lossy fabric dies exactly once — delivered, tail-dropped, or lost to the
// fault — and is recycled where it dies. Payload accounting must agree:
// a packet abandoned with its payload attached is counted once per drop,
// and delivered payloads are never counted.
func TestPoolBalancedAfterLossyRun(t *testing.T) {
	s := sim.New()
	n := New(s)
	r := NewRouter(n, "r", 1e6, 0)
	a := n.NIC(0)
	b := n.NIC(1)
	a.Attach(r, 1e9, sim.Microsecond)
	b.Attach(r, 1e9, sim.Microsecond)
	ep := &nullEndpoint{}
	b.SetEndpoint(ep)

	link := a.Link()
	link.SetFaultRand(rng.Derive(7, "fault/pool-test"))
	link.SetLoss(0.5)

	type payload struct{ seq int }
	const sent = 200
	for i := 0; i < sent; i++ {
		pkt := n.AllocPacket()
		pkt.Src, pkt.Dst, pkt.Size = 0, 1, 1500
		pkt.Payload = &payload{seq: i}
		n.Send(pkt)
		if i%16 == 0 {
			s.RunAll() // interleave drain so queues see varied depth
		}
	}
	s.RunAll()

	if out := n.PoolOutstanding(); out != 0 {
		t.Fatalf("pool outstanding %d after quiesce, want 0 (leaked packets)", out)
	}
	if n.FaultDrops == 0 {
		t.Fatal("loss schedule injected no drops; the test exercised nothing")
	}
	// Drops already folds in fault and tail drops; corrupt frames are
	// discarded at the receiver and counted separately.
	wantAbandoned := n.Drops + n.CorruptDrops
	if n.AbandonedPayloads != wantAbandoned {
		t.Fatalf("abandoned payloads %d, want drops+corruptDrops = %d",
			n.AbandonedPayloads, wantAbandoned)
	}
	if got := uint64(ep.delivered) + n.AbandonedPayloads; got != sent {
		t.Fatalf("delivered %d + abandoned %d != sent %d (a packet died twice or not at all)",
			ep.delivered, n.AbandonedPayloads, sent)
	}
}
