package netsim

import "dclue/internal/sim"

// NIC is an endpoint's network interface: an egress queue + link toward the
// attached router, and the delivery point for inbound packets.
type NIC struct {
	net      *Network
	addr     Addr
	endpoint Endpoint
	egress   *Qdisc
	link     *Link

	// Loopback frames in flight (constant local delay, so strictly FIFO)
	// and the prebuilt delivery continuation.
	loopQ  pktRing
	loopFn func()
}

// Addr returns the NIC's fabric address.
func (nic *NIC) Addr() Addr { return nic.addr }

// SetEndpoint registers the consumer of inbound packets.
func (nic *NIC) SetEndpoint(e Endpoint) { nic.endpoint = e }

// Attach wires the NIC's egress to a router via a link of the given
// bandwidth and propagation delay, and returns the router-side port that
// must carry return traffic (the caller routes the NIC's address to it).
//
// Host egress queues are deliberately generous (hosts feel backpressure via
// TCP, not local drops): 1 MB per class.
func (nic *NIC) Attach(r *Router, bps float64, prop sim.Time) *Qdisc {
	cfg := QdiscConfig{
		LimitBytes:        [NumClasses]int{1 << 20, 1 << 20},
		ECNThresholdBytes: 0,
	}
	nic.egress = NewQdisc(nic.net, cfg)
	nic.link = NewLink(nic.net, bps, prop, nic.egress, r)
	// Return path: a port on the router back to this NIC.
	back := r.AddPort(bps, prop, DefaultQdiscConfig(), nic)
	r.Route(nic.addr, back)
	return back
}

// Link returns the NIC's uplink (for utilization stats).
func (nic *NIC) Link() *Link { return nic.link }

// transmit queues an outbound packet on the egress qdisc.
func (nic *NIC) transmit(pkt *Packet) {
	if pkt.Dst == nic.addr {
		// Loopback: deliver after a negligible local delay without touching
		// the fabric.
		if nic.loopFn == nil {
			nic.loopFn = func() { nic.net.deliver(nic.loopQ.pop()) }
		}
		nic.loopQ.push(pkt)
		nic.net.sim.After(sim.Microsecond, nic.loopFn)
		return
	}
	nic.egress.Enqueue(pkt)
}

// receive implements sink for inbound packets from the router.
func (nic *NIC) receive(pkt *Packet) { nic.net.deliver(pkt) }
