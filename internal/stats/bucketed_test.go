package stats

import (
	"math"
	"testing"

	"dclue/internal/sim"
)

func TestBucketedNonPositiveWidthIsNil(t *testing.T) {
	if NewBucketed(0) != nil || NewBucketed(-sim.Second) != nil {
		t.Fatal("non-positive width must return nil (timeline disabled)")
	}
}

func TestBucketedAddAtBoundaries(t *testing.T) {
	b := NewBucketed(10)
	b.AddAt(0, 1)  // first instant of bucket 0
	b.AddAt(9, 1)  // last instant of bucket 0
	b.AddAt(10, 1) // boundary opens bucket 1 (half-open intervals)
	b.AddAt(25, 1) // middle of bucket 2
	if got := []float64{b.Value(0), b.Value(1), b.Value(2)}; got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("boundary placement wrong: %v", got)
	}
	if b.Len() != 3 {
		t.Fatalf("Len=%d, want 3", b.Len())
	}
}

func TestBucketedEmptyBuckets(t *testing.T) {
	b := NewBucketed(10)
	b.AddAt(5, 1)
	b.AddAt(45, 1)
	// Buckets 1..3 were skipped entirely: they must exist (so an exporter
	// can walk a dense timeline) and read as zero.
	if b.Len() != 5 {
		t.Fatalf("Len=%d, want 5 (empty buckets materialized up to the last write)", b.Len())
	}
	for i := 1; i <= 3; i++ {
		if b.Value(i) != 0 {
			t.Fatalf("bucket %d = %v, want 0", i, b.Value(i))
		}
	}
	// Out-of-range reads are 0, not a panic.
	if b.Value(-1) != 0 || b.Value(99) != 0 {
		t.Fatal("out-of-range Value must be 0")
	}
}

func TestBucketedAddSpanProportional(t *testing.T) {
	b := NewBucketed(10)
	// Span [5, 25) = 20 units: 1/4 in bucket 0, 1/2 in bucket 1, 1/4 in 2.
	b.AddSpan(5, 25, 8)
	want := []float64{2, 4, 2}
	for i, w := range want {
		if math.Abs(b.Value(i)-w) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b.Value(i), w)
		}
	}
	// Conservation: the distributed shares sum to exactly what was added.
	sum := 0.0
	for i := 0; i < b.Len(); i++ {
		sum += b.Value(i)
	}
	if math.Abs(sum-8) > 1e-12 {
		t.Fatalf("span mass not conserved: sum %v, want 8", sum)
	}
}

func TestBucketedAddSpanEdges(t *testing.T) {
	b := NewBucketed(10)
	b.AddSpan(10, 20, 3) // exactly one bucket: no division, lands whole
	if b.Value(1) != 3 {
		t.Fatalf("aligned span: bucket 1 = %v, want 3", b.Value(1))
	}
	b.AddSpan(0, 10, 2) // ends exactly on a boundary: nothing leaks into bucket 1
	if b.Value(0) != 2 || b.Value(1) != 3 {
		t.Fatalf("boundary-ending span leaked: %v %v", b.Value(0), b.Value(1))
	}
	b.AddSpan(35, 35, 5) // zero-length span degenerates to AddAt
	if b.Value(3) != 5 {
		t.Fatalf("zero-length span: bucket 3 = %v, want 5", b.Value(3))
	}
	b.AddSpan(48, 42, 6) // reversed endpoints are normalized
	if math.Abs(b.Value(4)-6) > 1e-12 {
		t.Fatalf("reversed span: bucket 4 = %v, want 6", b.Value(4))
	}
}

func TestBucketedMerge(t *testing.T) {
	a := NewBucketed(10)
	a.AddAt(5, 1)
	b := NewBucketed(10)
	b.AddAt(5, 2)
	b.AddAt(25, 4)

	a.Merge(b)
	if a.Value(0) != 3 || a.Value(1) != 0 || a.Value(2) != 4 {
		t.Fatalf("merge wrong: %v %v %v", a.Value(0), a.Value(1), a.Value(2))
	}
	if a.Len() != 3 {
		t.Fatalf("merge did not extend: Len=%d, want 3", a.Len())
	}
	a.Merge(nil) // no-op
	if a.Value(0) != 3 {
		t.Fatal("nil merge changed values")
	}

	// Merging the longer into the shorter must also work (grow path), and
	// mismatched widths must be loud.
	c := NewBucketed(10)
	c.Merge(a)
	if c.Value(2) != 4 {
		t.Fatalf("merge into empty: bucket 2 = %v, want 4", c.Value(2))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width-mismatch merge must panic")
		}
	}()
	c.Merge(NewBucketed(20))
}

func TestBucketedStart(t *testing.T) {
	b := NewBucketed(sim.Second)
	if b.Start(0) != 0 || b.Start(3) != 3*sim.Second {
		t.Fatalf("Start wrong: %v %v", b.Start(0), b.Start(3))
	}
	if b.Width() != sim.Second {
		t.Fatalf("Width = %v", b.Width())
	}
}
