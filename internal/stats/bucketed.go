package stats

import "dclue/internal/sim"

// Bucketed accumulates a quantity into fixed-width simulated-time buckets —
// the timeline primitive behind the telemetry layer's per-component
// utilization timeseries. Bucket i covers [i*width, (i+1)*width); the bucket
// slice grows on demand, so an instrument never needs to know the run length
// up front. All methods are allocation-free once the slice has grown past
// the latest time seen, which keeps them safe on simulation hot paths.
type Bucketed struct {
	width   sim.Time
	buckets []float64
}

// NewBucketed returns an accumulator with the given bucket width. A
// non-positive width returns nil: the caller's nil fast path then disables
// the timeline while scalar accumulation continues, which is exactly the
// "-telemetry without -telemetry-bucket" configuration.
func NewBucketed(width sim.Time) *Bucketed {
	if width <= 0 {
		return nil
	}
	return &Bucketed{width: width}
}

// Width returns the bucket width.
func (b *Bucketed) Width() sim.Time { return b.width }

// Len returns the number of buckets touched so far (trailing buckets that
// were never written do not exist).
func (b *Bucketed) Len() int { return len(b.buckets) }

// Value returns bucket i's accumulated value; out-of-range buckets are 0,
// so callers can iterate a merged pair of timelines by the longer length.
func (b *Bucketed) Value(i int) float64 {
	if i < 0 || i >= len(b.buckets) {
		return 0
	}
	return b.buckets[i]
}

// Start returns the inclusive start time of bucket i.
func (b *Bucketed) Start(i int) sim.Time { return sim.Time(i) * b.width }

// grow ensures bucket i exists.
func (b *Bucketed) grow(i int) {
	for len(b.buckets) <= i {
		b.buckets = append(b.buckets, 0)
	}
}

// index maps a time to its bucket, clamping negative times to bucket 0.
func (b *Bucketed) index(t sim.Time) int {
	if t < 0 {
		return 0
	}
	return int(t / b.width)
}

// AddAt adds v to the bucket containing t. Events exactly on a boundary
// land in the later bucket (half-open intervals).
func (b *Bucketed) AddAt(t sim.Time, v float64) {
	i := b.index(t)
	b.grow(i)
	b.buckets[i] += v
}

// AddSpan distributes v over [from, to) proportionally to each bucket's
// overlap with the span: a busy interval that straddles a boundary credits
// each side with its share, so per-bucket values sum to exactly the values
// added regardless of how spans align with the grid. A zero-length span
// degenerates to AddAt(from, v).
func (b *Bucketed) AddSpan(from, to sim.Time, v float64) {
	if to < from {
		from, to = to, from
	}
	if from < 0 {
		from = 0
	}
	if to <= from {
		b.AddAt(from, v)
		return
	}
	lo, hi := b.index(from), b.index(to)
	// A span ending exactly on a boundary has zero overlap with the bucket
	// that boundary opens.
	if hi > lo && to == b.Start(hi) {
		hi--
	}
	b.grow(hi)
	if lo == hi {
		b.buckets[lo] += v
		return
	}
	span := float64(to - from)
	for i := lo; i <= hi; i++ {
		s, e := b.Start(i), b.Start(i+1)
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		b.buckets[i] += v * float64(e-s) / span
	}
}

// Merge adds o's buckets into b. Widths must match; merging nil is a no-op.
func (b *Bucketed) Merge(o *Bucketed) {
	if o == nil {
		return
	}
	if o.width != b.width {
		panic("stats: Bucketed.Merge: width mismatch")
	}
	b.grow(len(o.buckets) - 1)
	for i, v := range o.buckets {
		b.buckets[i] += v
	}
}
