// Package stats provides the measurement primitives used across the
// simulator: sample tallies, time-weighted averages, histograms, and the
// (x, y) series the experiment harness turns into the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"

	"dclue/internal/sim"
)

// Tally accumulates independent samples and reports summary statistics.
type Tally struct {
	n        uint64
	sum, sq  float64
	min, max float64
}

// Add records one sample.
func (t *Tally) Add(x float64) {
	if t.n == 0 || x < t.min {
		t.min = x
	}
	if t.n == 0 || x > t.max {
		t.max = x
	}
	t.n++
	t.sum += x
	t.sq += x * x
}

// N returns the number of samples.
func (t *Tally) N() uint64 { return t.n }

// Sum returns the total of all samples.
func (t *Tally) Sum() float64 { return t.sum }

// Mean returns the sample mean (0 if empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Var returns the population variance (0 if fewer than 2 samples).
func (t *Tally) Var() float64 {
	if t.n < 2 {
		return 0
	}
	m := t.Mean()
	v := t.sq/float64(t.n) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// Std returns the population standard deviation.
func (t *Tally) Std() float64 { return math.Sqrt(t.Var()) }

// Min returns the smallest sample (0 if empty).
func (t *Tally) Min() float64 {
	if t.n == 0 {
		return 0
	}
	return t.min
}

// Max returns the largest sample (0 if empty).
func (t *Tally) Max() float64 {
	if t.n == 0 {
		return 0
	}
	return t.max
}

// Reset discards all samples.
func (t *Tally) Reset() { *t = Tally{} }

// TimeWeighted tracks a piecewise-constant quantity (queue length, active
// threads, ...) and reports its time-average.
type TimeWeighted struct {
	val      float64
	integral float64
	start    sim.Time
	last     sim.Time
	max      float64
	started  bool
}

// Set records that the quantity changed to v at time now.
func (w *TimeWeighted) Set(now sim.Time, v float64) {
	if !w.started {
		w.start, w.last, w.started = now, now, true
	}
	w.integral += w.val * float64(now-w.last)
	w.last = now
	w.val = v
	if v > w.max {
		w.max = v
	}
}

// Add is a convenience for Set(now, current+delta).
func (w *TimeWeighted) Add(now sim.Time, delta float64) { w.Set(now, w.val+delta) }

// Value returns the current value.
func (w *TimeWeighted) Value() float64 { return w.val }

// Max returns the largest value seen.
func (w *TimeWeighted) Max() float64 { return w.max }

// Mean returns the time-average over [first Set, now].
func (w *TimeWeighted) Mean(now sim.Time) float64 {
	if !w.started || now <= w.start {
		return w.val
	}
	integral := w.integral + w.val*float64(now-w.last)
	return integral / float64(now-w.start)
}

// ResetAt restarts averaging from now, keeping the current value. Used to
// discard a warm-up period.
func (w *TimeWeighted) ResetAt(now sim.Time) {
	w.integral = 0
	w.start, w.last = now, now
	w.max = w.val
	w.started = true
}

// Histogram is a fixed-bucket histogram over [0, +inf) with linear buckets
// of the given width; overflow lands in the last bucket.
type Histogram struct {
	width   float64
	buckets []uint64
	tally   Tally
}

// NewHistogram returns a histogram with n linear buckets of the given width.
// It panics when width or n is not positive — a zero width would put every
// observation in the overflow bucket and quietly report garbage quantiles.
func NewHistogram(width float64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram(width=%v, n=%d): both must be positive", width, n))
	}
	return &Histogram{width: width, buckets: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.tally.Add(x)
	i := int(x / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.tally.N() }

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 { return h.tally.Mean() }

// Quantile returns an approximate q-quantile (q in [0,1]) using bucket
// midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.tally.N() == 0 {
		return 0
	}
	target := uint64(q * float64(h.tally.N()))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			return (float64(i) + 0.5) * h.width
		}
	}
	return float64(len(h.buckets)) * h.width
}

// Point is one (x, y) pair in a figure series.
type Point struct{ X, Y float64 }

// Series is a named sequence of points — one curve in a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the y value at the given x (exact match) and whether it exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Table renders one or more series sharing an x-axis as an aligned text
// table, the form the experiment harness prints for each paper figure.
func Table(xlabel string, series ...*Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	out := fmt.Sprintf("%-12s", xlabel)
	for _, s := range series {
		out += fmt.Sprintf(" %16s", s.Name)
	}
	out += "\n"
	for _, x := range sorted {
		out += fmt.Sprintf("%-12.4g", x)
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				out += fmt.Sprintf(" %16.6g", y)
			} else {
				out += fmt.Sprintf(" %16s", "-")
			}
		}
		out += "\n"
	}
	return out
}
