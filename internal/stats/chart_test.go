package stats

import (
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	a := &Series{Name: "alpha"}
	for i := 0; i < 10; i++ {
		a.Add(float64(i), float64(i*i))
	}
	b := &Series{Name: "beta"}
	b.Add(0, 50)
	b.Add(9, 10)
	out := Chart("demo", "nodes", 40, 10, a, b)
	for _, want := range []string{"demo", "alpha", "beta", "nodes", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xlabel + 2 legend lines
	if len(lines) != 1+10+2+2 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("t", "x", 40, 10, &Series{Name: "e"})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	s := &Series{Name: "one"}
	s.Add(5, 42)
	out := Chart("", "x", 30, 8, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	s := &Series{Name: "tiny"}
	s.Add(0, 1)
	s.Add(1, 2)
	out := Chart("", "x", 1, 1, s) // clamped up internally
	if len(out) == 0 {
		t.Fatal("no output at clamped dimensions")
	}
}
