package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dclue/internal/sim"
)

func TestTallyBasics(t *testing.T) {
	var ta Tally
	for _, x := range []float64{1, 2, 3, 4} {
		ta.Add(x)
	}
	if ta.N() != 4 {
		t.Fatalf("N = %d", ta.N())
	}
	if ta.Mean() != 2.5 {
		t.Fatalf("Mean = %v", ta.Mean())
	}
	if ta.Min() != 1 || ta.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", ta.Min(), ta.Max())
	}
	if math.Abs(ta.Var()-1.25) > 1e-12 {
		t.Fatalf("Var = %v, want 1.25", ta.Var())
	}
	if ta.Sum() != 10 {
		t.Fatalf("Sum = %v", ta.Sum())
	}
}

func TestTallyEmpty(t *testing.T) {
	var ta Tally
	if ta.Mean() != 0 || ta.Var() != 0 || ta.Min() != 0 || ta.Max() != 0 {
		t.Fatal("empty tally should report zeros")
	}
}

func TestTallyReset(t *testing.T) {
	var ta Tally
	ta.Add(5)
	ta.Reset()
	if ta.N() != 0 || ta.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTallyVarNonNegativeProperty(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		var ta Tally
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float overflow in x*x.
			ta.Add(math.Mod(x, 1e6))
		}
		return ta.Var() >= 0 && ta.Min() <= ta.Max()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 10)
	w.Set(100, 20)
	// 10 for [0,100), 20 for [100,200): mean 15 at t=200.
	if m := w.Mean(200); m != 15 {
		t.Fatalf("Mean = %v, want 15", m)
	}
	if w.Max() != 20 {
		t.Fatalf("Max = %v", w.Max())
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Add(10, +3)
	w.Add(20, -1)
	if w.Value() != 2 {
		t.Fatalf("Value = %v", w.Value())
	}
}

func TestTimeWeightedResetAt(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 100) // big warm-up value
	w.Set(50, 2)
	w.ResetAt(100)
	if m := w.Mean(200); m != 2 {
		t.Fatalf("Mean after reset = %v, want 2", m)
	}
}

func TestTimeWeightedBeforeStart(t *testing.T) {
	var w TimeWeighted
	if w.Mean(100) != 0 {
		t.Fatal("mean of never-set gauge should be 0")
	}
	w.Set(sim.Time(50), 7)
	if w.Mean(50) != 7 {
		t.Fatal("mean at start time should be current value")
	}
}

func TestHistogramMeanAndQuantile(t *testing.T) {
	h := NewHistogram(1.0, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-49.5) > 1e-9 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 95 {
		t.Fatalf("p99 = %v", p99)
	}
}

func TestHistogramRejectsBadGeometry(t *testing.T) {
	for _, tc := range []struct {
		width float64
		n     int
	}{
		{0, 10}, {-1, 10}, {1, 0}, {1, -3}, {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v, %d) did not panic", tc.width, tc.n)
				}
			}()
			NewHistogram(tc.width, tc.n)
		}()
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(1.0, 10)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %v, want 0", q, got)
		}
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	h := NewHistogram(2.0, 1)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(100) // overflow clamps into the only bucket
	// Every quantile below 1 lands on the single bucket's midpoint.
	for _, q := range []float64{0, 0.5, 0.99} {
		if got := h.Quantile(q); got != 1.0 {
			t.Fatalf("Quantile(%v) = %v, want bucket midpoint 1.0", q, got)
		}
	}
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramOverflowClamps(t *testing.T) {
	h := NewHistogram(1.0, 10)
	h.Add(1e9)
	h.Add(-5)
	if h.N() != 2 {
		t.Fatal("out-of-range samples must still be counted")
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Name: "aff=0.8"}
	a.Add(2, 100)
	a.Add(4, 180)
	b := &Series{Name: "aff=0.5"}
	b.Add(2, 90)
	out := Table("nodes", a, b)
	if !strings.Contains(out, "aff=0.8") || !strings.Contains(out, "nodes") {
		t.Fatalf("table missing headers:\n%s", out)
	}
	if !strings.Contains(out, "180") {
		t.Fatalf("table missing data:\n%s", out)
	}
	// Missing cell rendered as '-'.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell not rendered:\n%s", out)
	}
	if y, ok := a.YAt(4); !ok || y != 180 {
		t.Fatalf("YAt(4) = %v/%v", y, ok)
	}
	if _, ok := a.YAt(99); ok {
		t.Fatal("YAt on absent x returned ok")
	}
}
