package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Chart renders one or more series as an ASCII scatter/line chart sized
// width x height characters (plot area), with a y-axis scale and a legend.
// It is deliberately simple — enough to see the shape of a paper figure in
// a terminal without any plotting dependency.
func Chart(title, xlabel string, width, height int, series ...*Series) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // y-axis anchored at zero: these are magnitudes
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			any = true
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if !any {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	marks := []rune{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range series {
		m := marks[si%len(marks)]
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		var prevC, prevR int = -1, -1
		for _, p := range pts {
			c := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((p.Y-minY)/(maxY-minY)*float64(height-1)))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			// Connect with a crude line (horizontal interpolation).
			if prevC >= 0 {
				steps := c - prevC
				for i := 1; i < steps; i++ {
					ic := prevC + i
					ir := prevR + (r-prevR)*i/steps
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			grid[r][c] = m
			prevC, prevR = c, r
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r := 0; r < height; r++ {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.3g |%s\n", yVal, string(grid[r]))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g  (%s)\n", "", width/2, minX, width-width/2, maxX, xlabel)
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
