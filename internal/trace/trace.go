// Package trace is the transaction-span observability layer: it follows one
// client request from the terminal through the server worker thread, the
// lock and cache-fusion (GCS) waits, the pager/disk/iSCSI path and back
// across the fabric, attributing every nanosecond of the response time to a
// phase. Aggregates land in per-phase histograms (p50/p95/p99, not just
// means) that core.Metrics folds into its LatencyBreakdown; raw span
// segments and sampled queue-depth gauges can additionally be exported as a
// JSONL event stream or a Chrome trace_event file (see export.go).
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Model code calls the package-level
//     Enter/Exit helpers, which reduce to a single nil-interface check when
//     the current process carries no span (the same idiom as sim.Tracer).
//   - Non-perturbing when enabled. Span bookkeeping reads the clock and
//     writes collector memory; it never schedules events, blocks, or draws
//     random numbers, so the simulated trajectory — and therefore every
//     metric outside the breakdown itself — is bit-identical with tracing
//     on or off. Gauge sampling does add calendar events, but they are
//     read-only and cannot reorder model events (the kernel orders ties by
//     scheduling sequence, which is preserved).
//   - Deterministic. Sampling is a modular counter on the run's request
//     stream, not a random draw; two runs of the same seed trace the same
//     transactions.
//
// Phase attribution uses self-time semantics: phases nest (a disk read
// inside a GCS fill, a CPU burst inside a disk setup), and each frame is
// charged only for the time no inner frame was active, so the per-phase
// durations of a span always sum to its server residency. The client-side
// remainder — request and reply wire time, NIC/router queueing, protocol
// processing before the worker runs — is the fabric phase, computed at
// span finish as total minus server residency.
package trace

import (
	"sync"

	"dclue/internal/sim"
	"dclue/internal/stats"
)

// Phase identifies where a slice of a transaction's response time went.
type Phase int

const (
	// PhaseCPU is time executing (or queued for) the node CPUs.
	PhaseCPU Phase = iota
	// PhaseLock is time acquiring global locks, including remote lock
	// message round-trips and deadlock-timeout waits.
	PhaseLock
	// PhaseGCS is time in the cache-fusion block protocol: directory
	// exchanges, block transfers and fetch retries (disk reads issued on
	// behalf of a fetch charge PhaseDisk instead).
	PhaseGCS
	// PhaseDisk is time in storage: local drive access, iSCSI command
	// round-trips, SAN hops and log-durability waits.
	PhaseDisk
	// PhaseFabric is the client-observed remainder: request/reply wire and
	// queueing time plus protocol processing outside the worker thread.
	PhaseFabric
	// PhaseOther is server residency not claimed by any phase above
	// (scheduling gaps between instrumented sections; normally tiny).
	PhaseOther

	NumPhases = int(PhaseOther) + 1
)

// String returns the short phase label used in tables and exports.
func (ph Phase) String() string {
	switch ph {
	case PhaseCPU:
		return "cpu"
	case PhaseLock:
		return "lock"
	case PhaseGCS:
		return "gcs"
	case PhaseDisk:
		return "disk"
	case PhaseFabric:
		return "fabric"
	case PhaseOther:
		return "other"
	}
	return "unknown"
}

// Enter pushes a phase frame on the span carried by p, if any. The
// disabled-tracing fast path is the single nil-interface check.
func Enter(p *sim.Proc, ph Phase) {
	if v := p.Span(); v != nil {
		if s, ok := v.(*Span); ok {
			s.Enter(p.Now(), ph)
		}
	}
}

// Exit pops the current phase frame on the span carried by p, if any.
func Exit(p *sim.Proc) {
	if v := p.Span(); v != nil {
		if s, ok := v.(*Span); ok {
			s.Exit(p.Now())
		}
	}
}

// Collector gathers runs. One Collector may serve many concurrent cluster
// simulations (a parallel sweep); each simulation owns a Run and touches
// only that, so the collector lock is taken only at run creation and export.
type Collector struct {
	mu          sync.Mutex
	sampleEvery uint64
	keepEvents  bool
	maxEvents   int
	runs        []*Run
}

// NewCollector returns a collector sampling every n-th transaction per run
// (n <= 1 traces every transaction). Only histograms are kept; call
// KeepEvents to also retain exportable span segments and gauges.
func NewCollector(n int) *Collector {
	if n < 1 {
		n = 1
	}
	return &Collector{sampleEvery: uint64(n), maxEvents: 1 << 20}
}

// SampleEvery returns the sampling stride.
func (c *Collector) SampleEvery() int { return int(c.sampleEvery) }

// KeepEvents enables per-span segment and gauge retention for export, with
// at most max records per run (max <= 0 keeps the default cap). Call before
// the runs start.
func (c *Collector) KeepEvents(max int) {
	c.keepEvents = true
	if max > 0 {
		c.maxEvents = max
	}
}

// NewRun registers a new simulation run under the collector and returns its
// handle. Safe to call from concurrent sweep workers.
func (c *Collector) NewRun(label string) *Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &Run{
		c:           c,
		pid:         len(c.runs) + 1,
		label:       label,
		sampleEvery: c.sampleEvery,
		keepEvents:  c.keepEvents,
		maxEvents:   c.maxEvents,
	}
	for i := range r.phase {
		// 0.25 ms buckets to 8 s: finer than the scaled response times the
		// model produces, with range to spare for overloaded configurations
		// whose tails run to seconds (means stay exact regardless — the
		// histogram keeps a full tally alongside the buckets).
		r.phase[i] = stats.NewHistogram(0.25, 32000)
	}
	r.total = stats.NewHistogram(0.25, 32000)
	c.runs = append(c.runs, r)
	return r
}

// Runs returns every registered run in creation order.
func (c *Collector) Runs() []*Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Run(nil), c.runs...)
}

// Run is the per-simulation trace sink: per-phase histograms, retained span
// segments and queue gauges. All methods are called from the single kernel
// goroutine of one simulation, so no locking is needed.
type Run struct {
	c           *Collector
	pid         int
	label       string
	sampleEvery uint64
	keepEvents  bool
	maxEvents   int

	reqSeen uint64 // transactions offered to the sampler
	nextID  uint64 // span ids
	sampled uint64 // spans finished and recorded

	phase [NumPhases]*stats.Histogram // per-phase self time, ms
	total *stats.Histogram            // span total (client-observed), ms

	events  []Event
	gauges  []GaugeSample
	dropped uint64 // records lost to the maxEvents cap
}

// Event is one retained span segment (or the whole span for PhaseFabric ==
// false records with Name "txn").
type Event struct {
	SpanID uint64
	TID    int // terminal id
	Name   string
	Start  sim.Time
	Dur    sim.Time
}

// GaugeSample is one sampled queue-occupancy reading.
type GaugeSample struct {
	T     sim.Time
	Name  string
	Bytes int
	Pkts  int
}

// PID returns the run's export process id.
func (r *Run) PID() int { return r.pid }

// Label returns the run label given at creation.
func (r *Run) Label() string { return r.label }

// Sampled returns how many spans finished and were recorded.
func (r *Run) Sampled() uint64 { return r.sampled }

// KeepsEvents reports whether this run retains span segments and gauges for
// export (set by Collector.KeepEvents before the run was created).
func (r *Run) KeepsEvents() bool { return r.keepEvents }

// Dropped returns how many export records were lost to the retention cap.
func (r *Run) Dropped() uint64 { return r.dropped }

// StartSpan offers one transaction to the sampler at its send time and
// returns a span for it, or nil when the transaction is not sampled. tid
// identifies the issuing terminal (export thread id).
func (r *Run) StartSpan(now sim.Time, tid int) *Span {
	r.reqSeen++
	if (r.reqSeen-1)%r.sampleEvery != 0 {
		return nil
	}
	r.nextID++
	return &Span{run: r, id: r.nextID, tid: tid, start: now}
}

// Gauge records one queue-occupancy sample.
func (r *Run) Gauge(now sim.Time, name string, bytes, pkts int) {
	if !r.keepEvents {
		return
	}
	if len(r.gauges) >= r.maxEvents {
		r.dropped++
		return
	}
	r.gauges = append(r.gauges, GaugeSample{T: now, Name: name, Bytes: bytes, Pkts: pkts})
}

// PhaseMeanMs returns the mean self time of a phase across sampled spans.
func (r *Run) PhaseMeanMs(ph Phase) float64 { return r.phase[ph].Mean() }

// PhaseQuantileMs returns an approximate per-phase quantile (ms).
func (r *Run) PhaseQuantileMs(ph Phase, q float64) float64 { return r.phase[ph].Quantile(q) }

// TotalMeanMs returns the mean client-observed span duration (ms).
func (r *Run) TotalMeanMs() float64 { return r.total.Mean() }

// TotalQuantileMs returns an approximate quantile of span totals (ms).
func (r *Run) TotalQuantileMs(q float64) float64 { return r.total.Quantile(q) }

// PeakGauge returns the largest sampled queue occupancy (bytes, packets)
// across all gauges of the run.
func (r *Run) PeakGauge() (bytes, pkts int) {
	for _, g := range r.gauges {
		if g.Bytes > bytes {
			bytes = g.Bytes
		}
		if g.Pkts > pkts {
			pkts = g.Pkts
		}
	}
	return bytes, pkts
}

// addEvent retains one export record under the cap.
func (r *Run) addEvent(e Event) {
	if len(r.events) >= r.maxEvents {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// maxSpanDepth bounds phase nesting; the instrumented stack nests at most
// GCS → disk → CPU plus slack.
const maxSpanDepth = 8

// Span tracks one sampled transaction from terminal send to terminal
// receive. The terminal creates it (StartSpan), the server worker carries it
// (sim.Proc.SetSpan) between BeginServer and EndServer, and the terminal
// finishes it when the reply arrives. Phase frames accumulate self time:
// entering a nested phase suspends the charge to the outer one.
type Span struct {
	run         *Run
	id          uint64
	tid         int
	start       sim.Time
	serverStart sim.Time
	serverEnd   sim.Time

	inServer bool
	mark     sim.Time // start of the currently-charging slice
	depth    int      // stack[0] is the PhaseOther ground frame
	stack    [maxSpanDepth]Phase

	acc [NumPhases]sim.Time
}

// ID returns the span id (unique within its run).
func (s *Span) ID() uint64 { return s.id }

// charge attributes the slice since mark to the current frame.
func (s *Span) charge(now sim.Time) {
	if !s.inServer {
		return
	}
	ph := s.stack[s.depth-1]
	if d := now - s.mark; d > 0 {
		s.acc[ph] += d
		if s.run.keepEvents && ph != PhaseOther {
			s.run.addEvent(Event{SpanID: s.id, TID: s.tid, Name: ph.String(), Start: s.mark, Dur: d})
		}
	}
	s.mark = now
}

// BeginServer marks the worker thread picking the request up.
func (s *Span) BeginServer(now sim.Time) {
	s.serverStart = now
	s.inServer = true
	s.depth = 1
	s.stack[0] = PhaseOther
	s.mark = now
}

// Enter pushes a phase frame, charging the elapsed slice to the outer one.
func (s *Span) Enter(now sim.Time, ph Phase) {
	if !s.inServer || s.depth >= maxSpanDepth {
		return
	}
	s.charge(now)
	s.stack[s.depth] = ph
	s.depth++
}

// Exit pops the current phase frame, charging it for its final slice.
func (s *Span) Exit(now sim.Time) {
	if !s.inServer || s.depth <= 1 {
		return
	}
	s.charge(now)
	s.depth--
}

// EndServer marks the worker handing the reply to the stack.
func (s *Span) EndServer(now sim.Time) {
	if !s.inServer {
		return
	}
	s.charge(now)
	s.inServer = false
	s.serverEnd = now
}

// Finish completes the span when the terminal receives the reply: the
// client-observed remainder becomes the fabric phase and every accumulator
// lands in the run's histograms. A span whose reply never arrives is simply
// never finished and never recorded (matching the response-time tally).
func (s *Span) Finish(now sim.Time) {
	if s.inServer {
		// Defensive: a reply observed before EndServer cannot happen under
		// the strict hand-off kernel; close the books anyway.
		s.EndServer(now)
	}
	total := now - s.start
	s.acc[PhaseFabric] = total - (s.serverEnd - s.serverStart)
	r := s.run
	for ph := 0; ph < NumPhases; ph++ {
		r.phase[ph].Add(s.acc[ph].Millis())
	}
	r.total.Add(total.Millis())
	r.sampled++
	if r.keepEvents {
		r.addEvent(Event{SpanID: s.id, TID: s.tid, Name: "txn", Start: s.start, Dur: total})
	}
}

// PhaseTime returns the accumulated self time of a phase so far (test and
// export hook; PhaseFabric is only set by Finish).
func (s *Span) PhaseTime(ph Phase) sim.Time { return s.acc[ph] }
