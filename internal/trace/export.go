package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"dclue/internal/sim"
)

// Export formats. Span segments and gauges are retained only when
// KeepEvents was enabled before the runs executed; histogram-only
// collectors export an empty stream.
//
// Chrome trace_event JSON loads directly in chrome://tracing or Perfetto:
// each run is a process (pid), each terminal a thread (tid), each phase
// slice a complete ("X") event and each queue gauge a counter ("C") event.
// Timestamps are simulated microseconds.

// WriteFile exports the collector to path, picking the format from the
// extension: ".jsonl" writes the JSONL event stream, anything else the
// Chrome trace_event JSON.
func (c *Collector) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = c.WriteJSONL(f)
	} else {
		err = c.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func us(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// jsonEscape covers the label/name strings we emit (no control characters
// in practice; quotes and backslashes escaped for safety).
func jsonEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// WriteChrome writes the Chrome trace_event JSON array for every run.
func (c *Collector) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			fmt.Fprint(bw, ",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for _, r := range c.Runs() {
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"%s"}}`,
			r.pid, jsonEscape(r.label))
		for _, e := range r.events {
			emit(`{"name":"%s","cat":"txn","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"span":%d}}`,
				jsonEscape(e.Name), us(e.Start), us(e.Dur), r.pid, e.TID, e.SpanID)
		}
		for _, g := range r.gauges {
			emit(`{"name":"%s","cat":"queue","ph":"C","ts":%.3f,"pid":%d,"tid":0,"args":{"bytes":%d,"pkts":%d}}`,
				jsonEscape(g.Name), us(g.T), r.pid, g.Bytes, g.Pkts)
		}
	}
	fmt.Fprint(bw, "\n]\n")
	return bw.Flush()
}

// WriteJSONL writes one JSON object per line: span segments ("seg"), whole
// transactions ("txn") and queue gauges ("gauge"), grouped by run.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range c.Runs() {
		for _, e := range r.events {
			kind := "seg"
			if e.Name == "txn" {
				kind = "txn"
			}
			fmt.Fprintf(bw, `{"type":"%s","run":%d,"label":"%s","span":%d,"tid":%d,"phase":"%s","start_us":%.3f,"dur_us":%.3f}`+"\n",
				kind, r.pid, jsonEscape(r.label), e.SpanID, e.TID, jsonEscape(e.Name), us(e.Start), us(e.Dur))
		}
		for _, g := range r.gauges {
			fmt.Fprintf(bw, `{"type":"gauge","run":%d,"label":"%s","queue":"%s","t_us":%.3f,"bytes":%d,"pkts":%d}`+"\n",
				r.pid, jsonEscape(r.label), jsonEscape(g.Name), us(g.T), g.Bytes, g.Pkts)
		}
	}
	return bw.Flush()
}
