package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"dclue/internal/sim"
)

const ms = sim.Millisecond

// TestSpanSelfTime exercises the self-time stack: nested phases suspend the
// outer charge, and the per-phase times sum to the server residency.
func TestSpanSelfTime(t *testing.T) {
	c := NewCollector(1)
	r := c.NewRun("unit")
	s := r.StartSpan(0, 7)
	if s == nil {
		t.Fatal("sample-every-1 span not created")
	}

	s.BeginServer(10 * ms)
	s.Enter(10*ms, PhaseGCS)  //  GCS: 10..20 (self 10)
	s.Enter(20*ms, PhaseDisk) //  disk: 20..30 and 35..40 (self 15)
	s.Enter(30*ms, PhaseCPU)  //  cpu: 30..35 (self 5)
	s.Exit(35 * ms)           //  back in disk
	s.Exit(40 * ms)           //  back in GCS (zero further time)
	s.Exit(40 * ms)
	s.EndServer(42 * ms) //       other: 40..42 (ground frame)
	s.Finish(50 * ms)    //       fabric: 50-0 minus server 32 = 18

	want := map[Phase]sim.Time{
		PhaseGCS:    10 * ms,
		PhaseDisk:   15 * ms,
		PhaseCPU:    5 * ms,
		PhaseOther:  2 * ms,
		PhaseFabric: 18 * ms,
		PhaseLock:   0,
	}
	var sum sim.Time
	for ph, w := range want {
		if got := s.PhaseTime(ph); got != w {
			t.Errorf("%v self time = %v, want %v", ph, got, w)
		}
		sum += s.PhaseTime(ph)
	}
	if sum != 50*ms {
		t.Errorf("phase sum %v != span total 50ms", sum)
	}
	if r.Sampled() != 1 {
		t.Errorf("sampled = %d", r.Sampled())
	}
	if got := r.TotalMeanMs(); got != 50 {
		t.Errorf("total mean = %gms", got)
	}
	if got := r.PhaseMeanMs(PhaseGCS); got != 10 {
		t.Errorf("gcs mean = %gms", got)
	}
}

// TestSampling checks the deterministic modular sampler.
func TestSampling(t *testing.T) {
	c := NewCollector(3)
	r := c.NewRun("sampling")
	var spans int
	for i := 0; i < 10; i++ {
		if s := r.StartSpan(sim.Time(i), 0); s != nil {
			spans++
		}
	}
	if spans != 4 { // requests 0, 3, 6, 9
		t.Errorf("sampled %d of 10 at stride 3, want 4", spans)
	}
	if NewCollector(0).sampleEvery != 1 {
		t.Error("stride < 1 not clamped to 1")
	}
}

// TestUnsampledSpanIsNil documents the disabled fast path: an unsampled
// transaction gets a nil span and the Enter/Exit helpers see a nil
// interface via sim.Proc.
func TestUnsampledSpanIsNil(t *testing.T) {
	c := NewCollector(2)
	r := c.NewRun("x")
	if s := r.StartSpan(0, 0); s == nil {
		t.Fatal("first request must be sampled")
	}
	if s := r.StartSpan(0, 0); s != nil {
		t.Fatal("second request sampled at stride 2")
	}
}

// TestEnterExitHelpers drives the package-level helpers through a real
// kernel process carrying a span.
func TestEnterExitHelpers(t *testing.T) {
	s := sim.New()
	c := NewCollector(1)
	r := c.NewRun("helpers")
	var span *Span
	s.Spawn("worker", func(p *sim.Proc) {
		// No span attached: helpers must be no-ops.
		Enter(p, PhaseCPU)
		p.Sleep(1 * ms)
		Exit(p)

		span = r.StartSpan(p.Now(), 3)
		span.BeginServer(p.Now())
		p.SetSpan(span)
		Enter(p, PhaseDisk)
		p.Sleep(4 * ms)
		Exit(p)
		p.SetSpan(nil)
		span.EndServer(p.Now())
		span.Finish(p.Now())
	})
	s.RunAll()
	if span.PhaseTime(PhaseCPU) != 0 {
		t.Errorf("span-less Enter charged CPU: %v", span.PhaseTime(PhaseCPU))
	}
	if span.PhaseTime(PhaseDisk) != 4*ms {
		t.Errorf("disk self time = %v, want 4ms", span.PhaseTime(PhaseDisk))
	}
}

// TestExportFormats checks both writers produce parseable output with the
// expected record shapes.
func TestExportFormats(t *testing.T) {
	c := NewCollector(1)
	c.KeepEvents(0)
	r := c.NewRun(`case "a"`)
	s := r.StartSpan(0, 5)
	s.BeginServer(1 * ms)
	s.Enter(1*ms, PhaseCPU)
	s.Exit(2 * ms)
	s.EndServer(2 * ms)
	s.Finish(3 * ms)
	r.Gauge(10*ms, "inner0/port1", 4096, 3)

	var chrome strings.Builder
	if err := c.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(chrome.String()), &events); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, chrome.String())
	}
	var haveTxn, haveCPU, haveGauge bool
	for _, e := range events {
		switch e["name"] {
		case "txn":
			haveTxn = true
			if e["ph"] != "X" || e["dur"].(float64) != 3000 {
				t.Errorf("txn event malformed: %v", e)
			}
		case "cpu":
			haveCPU = true
		case "inner0/port1":
			haveGauge = true
			if e["ph"] != "C" {
				t.Errorf("gauge not a counter event: %v", e)
			}
		}
	}
	if !haveTxn || !haveCPU || !haveGauge {
		t.Fatalf("missing chrome records (txn=%v cpu=%v gauge=%v):\n%s",
			haveTxn, haveCPU, haveGauge, chrome.String())
	}

	var jsonl strings.Builder
	if err := c.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 3 { // cpu seg, txn, gauge
		t.Fatalf("want 3 JSONL lines, got %d:\n%s", len(lines), jsonl.String())
	}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if rec["label"] != `case "a"` {
			t.Errorf("label mangled by escaping: %q", rec["label"])
		}
	}
}

// TestEventCap checks retention stops (and is counted) at the cap.
func TestEventCap(t *testing.T) {
	c := NewCollector(1)
	c.KeepEvents(2)
	r := c.NewRun("cap")
	for i := 0; i < 5; i++ {
		s := r.StartSpan(sim.Time(i)*ms, 0)
		s.BeginServer(sim.Time(i) * ms)
		s.EndServer(sim.Time(i)*ms + ms)
		s.Finish(sim.Time(i)*ms + ms)
	}
	if len(r.events) != 2 {
		t.Errorf("retained %d events at cap 2", len(r.events))
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", r.Dropped())
	}
	if r.Sampled() != 5 {
		t.Errorf("histograms must keep counting past the cap: sampled=%d", r.Sampled())
	}
}
