package recovery

import (
	"testing"

	"dclue/internal/sim"
)

// Membership transition tests: which states the detector may and may not
// move between, and how the coordinator's verdicts interact with the
// lease machinery.

// TestDownPeerNotHeartbeatedOrSuspected: once the coordinator fences a
// peer (Down), the sender stops wasting wire bytes on it and the monitor
// never re-suspects it — Down is terminal until re-admission.
func TestDownPeerNotHeartbeatedOrSuspected(t *testing.T) {
	interval, lease := 100*sim.Millisecond, 400*sim.Millisecond
	h := newHarness(t, interval, lease)
	h.s.After(sim.Second, func() {
		h.dead[1] = true
		h.svc[0].SetState(1, StateDown)
	})
	sentAtFence := uint64(0)
	h.s.After(sim.Second+sim.Millisecond, func() { sentAtFence = h.svc[0].HeartbeatsSent })
	h.s.Run(10 * sim.Second)
	// The crashed node's own monitor legitimately suspects node 0 (node 0
	// stopped heartbeating it); what must never appear is a suspicion OF
	// the fenced peer.
	for _, p := range h.suspects {
		if p == 1 {
			t.Fatalf("monitor suspected a fenced peer: %v", h.suspects)
		}
	}
	if h.svc[0].StateOf(1) != StateDown {
		t.Fatalf("peer state = %v, want down", h.svc[0].StateOf(1))
	}
	if h.svc[0].HeartbeatsSent != sentAtFence {
		t.Fatalf("sender kept heartbeating a down peer: %d sent after fence (was %d)",
			h.svc[0].HeartbeatsSent, sentAtFence)
	}
	if h.svc[0].LiveCount() != 1 || h.svc[0].Coordinator() != 0 {
		t.Fatalf("live=%d coord=%d, want 1/0", h.svc[0].LiveCount(), h.svc[0].Coordinator())
	}
}

// TestObserveDoesNotReviveDownPeer: a stray packet from a fenced node (the
// classic zombie after a partial crash) must not re-admit it — only the
// coordinator's explicit SetState does. Suspect→Live revival stays
// Observe's job.
func TestObserveDoesNotReviveDownPeer(t *testing.T) {
	s := sim.New()
	sv := NewService(s, 0, 3, 100*sim.Millisecond, 400*sim.Millisecond, Hooks{
		Spawn:         func(name string, fn func(*sim.Proc)) *sim.Proc { return s.Spawn(name, fn) },
		SendHeartbeat: func(int) {},
	})
	sv.SetState(1, StateDown)
	sv.SetState(2, StateJoining)
	sv.Observe(1)
	sv.Observe(2)
	if st := sv.StateOf(1); st != StateDown {
		t.Fatalf("zombie heartbeat revived a down peer: %v", st)
	}
	if st := sv.StateOf(2); st != StateJoining {
		t.Fatalf("heartbeat promoted a joining peer to live: %v", st)
	}
	// The signs of life are still recorded for when the state machine
	// does re-admit them.
	if sv.HeartbeatsRecv != 2 {
		t.Fatalf("HeartbeatsRecv=%d, want 2", sv.HeartbeatsRecv)
	}
}

// TestJoiningPeerNeverSuspected: the lease monitor only judges Live peers;
// a silent Joining node (still replaying its log) must not accrue
// suspicions however long it takes.
func TestJoiningPeerNeverSuspected(t *testing.T) {
	interval, lease := 100*sim.Millisecond, 400*sim.Millisecond
	h := newHarness(t, interval, lease)
	h.s.After(sim.Second, func() {
		h.dead[1] = true
		h.svc[0].SetState(1, StateJoining)
	})
	h.s.Run(20 * sim.Second)
	if len(h.suspects) != 0 {
		t.Fatalf("monitor suspected a joining peer: %v", h.suspects)
	}
	if h.svc[0].Suspicions != 0 {
		t.Fatalf("Suspicions=%d, want 0", h.svc[0].Suspicions)
	}
}

// TestSetStateLiveRefreshesLease: re-admitting a silent peer as Live resets
// its lease — suspicion fires one lease after re-admission, not instantly
// off the stale lastHeard.
func TestSetStateLiveRefreshesLease(t *testing.T) {
	interval, lease := 100*sim.Millisecond, 400*sim.Millisecond
	h := newHarness(t, interval, lease)
	// Peer 1 goes silent and is fenced immediately (before the monitor even
	// fires), then re-admitted at t=5s while still silent.
	h.s.After(sim.Second, func() {
		h.dead[1] = true
		h.svc[0].SetState(1, StateDown)
	})
	var readmitted sim.Time
	h.s.After(5*sim.Second, func() {
		readmitted = h.s.Now()
		h.svc[0].SetState(1, StateLive)
	})
	var suspectedAt sim.Time
	h.svc[0].hooks.OnSuspect = func(peer int, silentFor sim.Time) {
		if suspectedAt == 0 {
			suspectedAt = h.s.Now()
		}
	}
	h.s.Run(20 * sim.Second)
	if suspectedAt == 0 {
		t.Fatal("still-silent re-admitted peer never re-suspected")
	}
	if got := suspectedAt - readmitted; got <= lease || got > lease+2*interval {
		t.Fatalf("re-suspected %v after re-admission, want in (lease, lease+2*interval] = (%v, %v]",
			got, lease, lease+2*interval)
	}
}

// TestStartResetsLeases: Start (called again after a node restart) resets
// every peer's lastHeard to now, so suspicion timing is measured from the
// restart, not from stale pre-crash observations.
func TestStartResetsLeases(t *testing.T) {
	s := sim.New()
	interval, lease := 100*sim.Millisecond, 400*sim.Millisecond
	var suspectedAt sim.Time
	sv := NewService(s, 0, 2, interval, lease, Hooks{
		Spawn:         func(name string, fn func(*sim.Proc)) *sim.Proc { return s.Spawn(name, fn) },
		SendHeartbeat: func(int) {},
		OnSuspect: func(peer int, silentFor sim.Time) {
			if suspectedAt == 0 {
				suspectedAt = s.Now()
			}
		},
	})
	// The service object existed since t=0 but only starts at t=3s (the
	// restart). Peer 1 never speaks.
	var startedAt sim.Time
	s.After(3*sim.Second, func() {
		startedAt = s.Now()
		sv.Start()
	})
	s.Run(10 * sim.Second)
	s.Shutdown()
	if suspectedAt == 0 {
		t.Fatal("silent peer never suspected after restart")
	}
	if got := suspectedAt - startedAt; got <= lease || got > lease+2*interval {
		t.Fatalf("suspected %v after Start, want in (lease, lease+2*interval] = (%v, %v] — lease measured from restart",
			got, lease, lease+2*interval)
	}
}
