// Package recovery implements the heartbeat/lease membership service each
// DP node runs. Heartbeats ride the per-pair IPC TCP connections as real
// packets, so failure-detection latency is a property of the fabric (load,
// loss, RTO dynamics), not a constant. The service only detects and
// bookkeeps: the cluster's recovery coordinator (in core) decides what a
// suspicion means and drives fencing, remastering, replay, and rejoin.
//
// All timers go through internal/sim and every state array is indexed by
// node id, so the service is deterministic by construction; the dcluevet
// lint rules (derived rng streams, no wall clock, ordered teardown) hold
// trivially — the service uses no randomness at all.
package recovery

import "dclue/internal/sim"

// State is a peer's membership state as seen from one node.
type State int

// Membership states.
const (
	StateLive State = iota
	StateSuspect
	StateDown
	StateJoining
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateLive:
		return "live"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateJoining:
		return "joining"
	}
	return "?"
}

// Hooks connects the service to its host node.
type Hooks struct {
	// Spawn creates a process tracked by the host node, so a crash tears
	// the service down with everything else.
	Spawn func(name string, fn func(*sim.Proc)) *sim.Proc
	// SendHeartbeat ships one heartbeat packet to a peer (real wire bytes).
	SendHeartbeat func(to int)
	// OnSuspect fires once when a Live peer's silence exceeds the lease.
	OnSuspect func(peer int, silentFor sim.Time)
}

// Service is one node's membership view plus the heartbeat machinery.
type Service struct {
	sim   *sim.Sim
	self  int
	nodes int
	hooks Hooks

	// Interval is the heartbeat cadence; Lease is the silence threshold
	// after which a Live peer becomes Suspect.
	Interval sim.Time
	Lease    sim.Time

	state     []State
	lastHeard []sim.Time

	HeartbeatsSent uint64
	HeartbeatsRecv uint64
	Suspicions     uint64
}

// NewService creates a membership view where every peer starts Live.
func NewService(s *sim.Sim, self, nodes int, interval, lease sim.Time, hooks Hooks) *Service {
	sv := &Service{
		sim:       s,
		self:      self,
		nodes:     nodes,
		hooks:     hooks,
		Interval:  interval,
		Lease:     lease,
		state:     make([]State, nodes),
		lastHeard: make([]sim.Time, nodes),
	}
	now := s.Now()
	for i := range sv.lastHeard {
		sv.lastHeard[i] = now
	}
	return sv
}

// Start spawns the sender and monitor processes through the tracked
// spawner. Called at cluster setup and again after a node restart.
func (sv *Service) Start() {
	now := sv.sim.Now()
	for i := range sv.lastHeard {
		sv.lastHeard[i] = now
	}
	sv.hooks.Spawn("hb-send", sv.sender)
	sv.hooks.Spawn("hb-monitor", sv.monitor)
}

// sender ships a heartbeat to every non-down peer each interval.
func (sv *Service) sender(p *sim.Proc) {
	for {
		p.Sleep(sv.Interval)
		for to := 0; to < sv.nodes; to++ {
			if to == sv.self || sv.state[to] == StateDown {
				continue
			}
			sv.HeartbeatsSent++
			sv.hooks.SendHeartbeat(to)
		}
	}
}

// monitor checks leases each interval and raises suspicions.
func (sv *Service) monitor(p *sim.Proc) {
	for {
		p.Sleep(sv.Interval)
		now := p.Now()
		for i := 0; i < sv.nodes; i++ {
			if i == sv.self || sv.state[i] != StateLive {
				continue
			}
			if silent := now - sv.lastHeard[i]; silent > sv.Lease {
				sv.state[i] = StateSuspect
				sv.Suspicions++
				if sv.hooks.OnSuspect != nil {
					sv.hooks.OnSuspect(i, silent)
				}
			}
		}
	}
}

// Observe records a heartbeat (or any sign of life) from a peer. A Suspect
// peer that proves alive is revived to Live — false suspicions (a slow or
// lossy fabric, not a crash) must not wedge the detector.
func (sv *Service) Observe(from int) {
	sv.HeartbeatsRecv++
	sv.lastHeard[from] = sv.sim.Now()
	if sv.state[from] == StateSuspect {
		sv.state[from] = StateLive
	}
}

// StateOf returns the local view of a peer.
func (sv *Service) StateOf(i int) State { return sv.state[i] }

// SetState overrides a peer's state (the coordinator's verdicts — Down at
// fence, Joining during re-admission, Live on completion — propagate here).
func (sv *Service) SetState(i int, st State) {
	sv.state[i] = st
	if st == StateLive {
		sv.lastHeard[i] = sv.sim.Now()
	}
}

// Coordinator returns the lowest node id currently believed live: the
// deterministic recovery-coordinator election.
func (sv *Service) Coordinator() int {
	for i := 0; i < sv.nodes; i++ {
		if sv.state[i] == StateLive {
			return i
		}
	}
	return sv.self
}

// LiveCount returns how many nodes (including self) this node believes live.
func (sv *Service) LiveCount() int {
	n := 0
	for _, st := range sv.state {
		if st == StateLive {
			n++
		}
	}
	return n
}
