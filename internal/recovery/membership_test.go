package recovery

import (
	"testing"

	"dclue/internal/sim"
)

// harness wires two membership services back to back: every heartbeat is
// delivered to the peer after a fixed wire delay, or dropped while the
// sender is "crashed".
type harness struct {
	s     *sim.Sim
	svc   [2]*Service
	delay sim.Time
	dead  [2]bool

	suspects []int
}

func newHarness(t *testing.T, interval, lease sim.Time) *harness {
	t.Helper()
	h := &harness{s: sim.New(), delay: 1 * sim.Millisecond}
	for i := 0; i < 2; i++ {
		i := i
		h.svc[i] = NewService(h.s, i, 2, interval, lease, Hooks{
			Spawn: func(name string, fn func(*sim.Proc)) *sim.Proc {
				return h.s.Spawn(name, fn)
			},
			SendHeartbeat: func(to int) {
				if h.dead[i] {
					return
				}
				h.s.After(h.delay, func() { h.svc[to].Observe(i) })
			},
			OnSuspect: func(peer int, silentFor sim.Time) {
				if silentFor <= lease {
					t.Errorf("suspected %d after only %v (lease %v)", peer, silentFor, lease)
				}
				h.suspects = append(h.suspects, peer)
			},
		})
		h.svc[i].Start()
	}
	return h
}

func TestHealthyPeersStayLive(t *testing.T) {
	h := newHarness(t, 100*sim.Millisecond, 400*sim.Millisecond)
	h.s.Run(10 * sim.Second)
	if len(h.suspects) != 0 {
		t.Fatalf("suspicions on a healthy pair: %v", h.suspects)
	}
	for i := 0; i < 2; i++ {
		if st := h.svc[i].StateOf(1 - i); st != StateLive {
			t.Fatalf("node %d sees peer as %v, want live", i, st)
		}
		if h.svc[i].HeartbeatsSent == 0 || h.svc[i].HeartbeatsRecv == 0 {
			t.Fatalf("node %d exchanged no heartbeats", i)
		}
	}
}

func TestSilentPeerSuspectedWithinOneLeasePlusInterval(t *testing.T) {
	interval, lease := 100*sim.Millisecond, 400*sim.Millisecond
	h := newHarness(t, interval, lease)
	h.s.After(2*sim.Second, func() { h.dead[1] = true })
	h.s.Run(10 * sim.Second)
	if len(h.suspects) != 1 || h.suspects[0] != 1 {
		t.Fatalf("suspects = %v, want exactly [1]", h.suspects)
	}
	if got := h.svc[0].StateOf(1); got != StateSuspect {
		t.Fatalf("survivor sees dead peer as %v, want suspect", got)
	}
	if h.svc[0].Suspicions != 1 {
		t.Fatalf("Suspicions = %d, want 1", h.svc[0].Suspicions)
	}
}

func TestLateHeartbeatRevivesSuspect(t *testing.T) {
	h := newHarness(t, 100*sim.Millisecond, 400*sim.Millisecond)
	// Mute node 1 long enough to be suspected, then let it speak again.
	h.s.After(2*sim.Second, func() { h.dead[1] = true })
	h.s.After(4*sim.Second, func() { h.dead[1] = false })
	h.s.Run(10 * sim.Second)
	if len(h.suspects) != 1 {
		t.Fatalf("suspects = %v, want one suspicion before the revival", h.suspects)
	}
	if got := h.svc[0].StateOf(1); got != StateLive {
		t.Fatalf("revived peer still %v, want live", got)
	}
}

func TestCoordinatorIsLowestLive(t *testing.T) {
	s := sim.New()
	sv := NewService(s, 2, 4, sim.Second, 4*sim.Second, Hooks{})
	if got := sv.Coordinator(); got != 0 {
		t.Fatalf("all-live coordinator = %d, want 0", got)
	}
	sv.SetState(0, StateDown)
	sv.SetState(1, StateJoining)
	if got := sv.Coordinator(); got != 2 {
		t.Fatalf("coordinator with 0 down, 1 joining = %d, want self (2)", got)
	}
	if got := sv.LiveCount(); got != 2 {
		t.Fatalf("LiveCount = %d, want 2 (self and node 3)", got)
	}
	// SetState back to Live must refresh the lease so the revived peer is
	// not instantly re-suspected.
	s.Run(10 * sim.Second)
	sv.SetState(0, StateLive)
	if got := sv.Coordinator(); got != 0 {
		t.Fatalf("coordinator after readmitting 0 = %d, want 0", got)
	}
}
