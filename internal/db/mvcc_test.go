package db

import (
	"testing"

	"dclue/internal/sim"
)

func testCatalog(nodes int) (*Catalog, *Table) {
	cat := NewCatalog(nodes)
	t := cat.AddTable(TableSpec{Name: "t", RowBytes: 256, Subpages: 4})
	return cat, t
}

func TestVersionCreateAndHops(t *testing.T) {
	cat, tbl := testCatalog(2)
	bc := NewBufferCache(64, nil)
	vm := NewVersionManager(cat, bc, 1<<20)
	row := tbl.Insert(1, 0)

	if vm.SnapshotHops(tbl.ID, row, 0) != 0 {
		t.Fatal("hops on unversioned row")
	}
	vm.Create(tbl, row, 100)
	vm.Create(tbl, row, 200)
	vm.Create(tbl, row, 300)
	// Snapshot at 150 must skip versions from 200 and 300.
	if h := vm.SnapshotHops(tbl.ID, row, 150); h != 2 {
		t.Fatalf("hops = %d, want 2", h)
	}
	// Current reader walks nothing.
	if h := vm.SnapshotHops(tbl.ID, row, 400); h != 0 {
		t.Fatalf("hops = %d, want 0", h)
	}
	if vm.Used() != 3*256 {
		t.Fatalf("used %d", vm.Used())
	}
	if vm.VersionBytes(tbl.BlockOf(row)) != 3*256 {
		t.Fatal("per-block version bytes wrong")
	}
}

func TestVersionGC(t *testing.T) {
	cat, tbl := testCatalog(2)
	bc := NewBufferCache(64, nil)
	vm := NewVersionManager(cat, bc, 1<<20)
	row := tbl.Insert(1, 0)
	for i := sim.Time(1); i <= 10; i++ {
		vm.Create(tbl, row, i*100)
	}
	vm.GC(550) // versions before 550 collectable (newest always kept)
	if vm.Collected == 0 {
		t.Fatal("GC collected nothing")
	}
	// Versions at 600..1000 plus the newest survivor remain.
	if h := vm.SnapshotHops(tbl.ID, row, 550); h != 5 {
		t.Fatalf("hops after GC = %d, want 5", h)
	}
}

func TestVersionStealsPages(t *testing.T) {
	cat, tbl := testCatalog(2)
	bc := NewBufferCache(64, nil)
	for i := int64(0); i < 32; i++ {
		bc.InsertPinned(blk(5, i))
		bc.Unpin(blk(5, i))
	}
	// Tiny overflow area: creating versions must steal cache pages.
	vm := NewVersionManager(cat, bc, 1024)
	row := tbl.Insert(1, 0)
	for i := sim.Time(0); i < 100; i++ {
		vm.Create(tbl, row, i)
	}
	if vm.Steals == 0 {
		t.Fatal("no pages stolen despite overflow pressure")
	}
	if bc.Capacity() >= 64 {
		t.Fatal("cache capacity not reduced by steals")
	}
	// GC everything except the newest; stolen pages return.
	vm.GC(1 << 60)
	if bc.Capacity() != 64 {
		t.Fatalf("capacity %d after GC, want 64", bc.Capacity())
	}
}

func TestTablePlacementAndResources(t *testing.T) {
	cat := NewCatalog(4)
	tbl := cat.AddTable(TableSpec{Name: "x", RowBytes: 2048, Subpages: 2})
	if tbl.RowsPerBlock != 4 {
		t.Fatalf("rows/block %d", tbl.RowsPerBlock)
	}
	// Fill one block from node 2.
	var rows []int64
	for k := int64(0); k < 4; k++ {
		rows = append(rows, tbl.Insert(k, 2))
	}
	b := tbl.BlockOf(rows[0])
	if cat.Home(b) != 2 {
		t.Fatalf("home %d, want 2", cat.Home(b))
	}
	// Subpages: 4 rows, 2 subpages -> rows 0,1 in subpage 0; rows 2,3 in 1.
	if tbl.ResourceOf(rows[0]).Subpage != 0 || tbl.ResourceOf(rows[3]).Subpage != 1 {
		t.Fatalf("subpage mapping: %+v %+v", tbl.ResourceOf(rows[0]), tbl.ResourceOf(rows[3]))
	}
	// Next insert from node 1 opens a new block homed there.
	r2 := tbl.Insert(100, 1)
	if cat.Home(tbl.BlockOf(r2)) != 1 {
		t.Fatal("new block not homed on inserting node")
	}
}

func TestTableHashedPlacement(t *testing.T) {
	cat := NewCatalog(4)
	tbl := cat.AddTable(TableSpec{Name: "item", RowBytes: 64, Subpages: 1, Placement: PlacementHashed})
	for k := int64(0); k < 1000; k++ {
		tbl.Insert(k, 0)
	}
	seen := map[int]bool{}
	for b := int64(0); b < tbl.Blocks(); b++ {
		seen[cat.Home(BlockID{tbl.ID, b})] = true
	}
	if len(seen) != 4 {
		t.Fatalf("hashed blocks touched %d nodes, want 4", len(seen))
	}
}

func TestTableFreeListReuse(t *testing.T) {
	cat := NewCatalog(1)
	tbl := cat.AddTable(TableSpec{Name: "no", RowBytes: 64, Subpages: 1})
	r1 := tbl.Insert(1, 0)
	tbl.Delete(1)
	r2 := tbl.Insert(2, 0)
	if r1 != r2 {
		t.Fatalf("slot not reused: %d vs %d", r1, r2)
	}
	if tbl.Rows() != 1 {
		t.Fatalf("rows %d", tbl.Rows())
	}
}

func TestIndexLeafHoming(t *testing.T) {
	cat := NewCatalog(2)
	tbl := cat.AddTable(TableSpec{Name: "x", RowBytes: 8192, Subpages: 1})
	row := tbl.Insert(1, 1)
	leaf := tbl.IndexLeafOf(row)
	if !leaf.IsIndex() {
		t.Fatal("leaf not flagged as index block")
	}
	if cat.Home(leaf) != cat.Home(tbl.BlockOf(row)) {
		t.Fatal("index leaf homed away from its data")
	}
}
