package db

import (
	"errors"

	"dclue/internal/disk"
	"dclue/internal/iscsi"
	"dclue/internal/sim"
	"dclue/internal/trace"
)

// ErrDiskFailed is returned when a block read kept failing (injected
// transient I/O errors) after exhausting the pager's local retries.
var ErrDiskFailed = errors.New("db: disk read failed")

// Host abstracts the node CPU (implemented by platform.CPU): blocking
// execution of path lengths from process context and asynchronous
// interrupt-priority work from kernel context.
type Host interface {
	Execute(p *sim.Proc, pathLen float64)
	Dispatch(p *sim.Proc, pathLen float64)
	Process(pathLen float64, done func())
}

// Pager routes block I/O. In the paper's primary "distributed storage"
// model (§2.1) every block lives on the disks of its home
// (partition-owning) node, accessed with plain SCSI locally and iSCSI
// across the fabric. The alternative "shared IO" (SAN) model of §2.1 —
// every node reaching a centralized I/O subsystem over an unmodeled SAN
// fabric — is available via SetSAN.
type Pager struct {
	sim       *sim.Sim
	self      int
	cat       *Catalog
	host      Host
	drives    []*disk.Drive // local data drives (striped round-robin by block)
	initiator *iscsi.Initiator
	costs     *OpCosts
	san       *SANArray

	// MaxDiskRetries bounds how many times a locally failing read is
	// retried before ErrDiskFailed (transient injected I/O errors usually
	// clear on retry).
	MaxDiskRetries int

	// reroute redirects I/O for a fenced home node's blocks: the buddy node
	// reaches the dead node's dual-ported drives directly; everyone else
	// goes through the buddy's iSCSI target, which exports the enclosure.
	reroute map[int]failoverRoute

	LocalReads      uint64
	LocalWrites     uint64
	RemoteReads     uint64
	RemoteWrites    uint64
	DiskRetries     uint64 // local reads reissued after a transient error
	DiskFailures    uint64 // reads abandoned after exhausting retries
	WriteBackErrors uint64 // lazy remote write-backs that failed
	FailoverReads   uint64 // reads served over a failover route
	FailoverWrites  uint64 // writes served over a failover route
}

// failoverRoute describes how to reach a fenced node's enclosure.
type failoverRoute struct {
	via    int           // node serving the enclosure (buddy)
	drives []*disk.Drive // non-nil when via == self: direct dual-port access
}

// SANArray is the centralized I/O subsystem of the shared-IO model: a
// pooled drive farm every node reaches with a fixed fabric latency (the
// paper treats the Fibre Channel SAN fabric as unmodeled).
type SANArray struct {
	Sim     *sim.Sim
	Drives  []*disk.Drive
	Latency sim.Time // one-way SAN fabric latency
}

// drive stripes blocks across the pooled farm.
func (sa *SANArray) drive(blk BlockID) *disk.Drive {
	return sa.Drives[int(blk.Block&^indexRegion)%len(sa.Drives)]
}

// SetSAN switches the pager to the shared-IO model.
func (pg *Pager) SetSAN(sa *SANArray) { pg.san = sa }

// NewPager creates a node's pager.
func NewPager(s *sim.Sim, self int, cat *Catalog, host Host, drives []*disk.Drive, ini *iscsi.Initiator, costs *OpCosts) *Pager {
	return &Pager{sim: s, self: self, cat: cat, host: host, drives: drives,
		initiator: ini, costs: costs, MaxDiskRetries: 3}
}

// drive picks the local drive for a block.
func (pg *Pager) drive(blk BlockID) *disk.Drive {
	return pg.drives[int(blk.Block&^indexRegion)%len(pg.drives)]
}

// SetFailover reroutes I/O for blocks homed at home: via is the buddy node
// serving the enclosure; drives is non-nil on the buddy itself, which
// reaches the dual-ported drives directly.
func (pg *Pager) SetFailover(home, via int, drives []*disk.Drive) {
	if pg.reroute == nil {
		pg.reroute = make(map[int]failoverRoute)
	}
	pg.reroute[home] = failoverRoute{via: via, drives: drives}
}

// ClearFailover restores direct routing to home (it rejoined).
func (pg *Pager) ClearFailover(home int) { delete(pg.reroute, home) }

// ReadBlock fetches a block from its home disk (or the SAN), blocking the
// caller. Size includes any version payload travelling with the block.
// Transient local failures are retried up to MaxDiskRetries times; a
// non-nil error means the block could not be read.
func (pg *Pager) ReadBlock(p *sim.Proc, blk BlockID, size int) error {
	trace.Enter(p, trace.PhaseDisk)
	err := pg.readBlock(p, blk, size)
	trace.Exit(p)
	return err
}

func (pg *Pager) readBlock(p *sim.Proc, blk BlockID, size int) error {
	if pg.san != nil {
		pg.LocalReads++
		pg.host.Execute(p, pg.costs.DiskSetup)
		p.Sleep(2 * pg.san.Latency) // command out, data back
		return pg.readRetry(p, pg.san.drive(blk), blk, size)
	}
	home := pg.cat.Home(blk)
	if rt, ok := pg.reroute[home]; ok {
		pg.FailoverReads++
		if rt.via == pg.self {
			pg.host.Execute(p, pg.costs.DiskSetup)
			return pg.readRetry(p, rt.drives[int(blk.Block&^indexRegion)%len(rt.drives)], blk, size)
		}
		return pg.initiator.ReadFrom(p, rt.via, home, int(blk.Table), blk.Block&^indexRegion, size)
	}
	if home == pg.self {
		pg.LocalReads++
		pg.host.Execute(p, pg.costs.DiskSetup)
		return pg.readRetry(p, pg.drive(blk), blk, size)
	}
	pg.RemoteReads++
	return pg.initiator.Read(p, home, int(blk.Table), blk.Block&^indexRegion, size)
}

// readRetry issues a read on d, reissuing on transient failure.
func (pg *Pager) readRetry(p *sim.Proc, d *disk.Drive, blk BlockID, size int) error {
	for attempt := 0; ; attempt++ {
		if d.Access(p, int(blk.Table), blk.Block&^indexRegion, size, false) {
			return nil
		}
		if attempt >= pg.MaxDiskRetries {
			pg.DiskFailures++
			return ErrDiskFailed
		}
		pg.DiskRetries++
	}
}

// WriteBack lazily writes a dirty block to its home disk (kernel context,
// fire-and-forget — the paper's disk writes "are lazy and could finish
// after the transaction is done").
func (pg *Pager) WriteBack(blk BlockID, size int) {
	if pg.san != nil {
		pg.LocalWrites++
		pg.host.Process(pg.costs.DiskSetup, func() {
			pg.sim.After(pg.san.Latency, func() {
				pg.san.drive(blk).Submit(&disk.Request{
					Table: int(blk.Table),
					Block: blk.Block &^ indexRegion,
					Size:  size,
					Write: true,
				})
			})
		})
		return
	}
	home := pg.cat.Home(blk)
	if rt, ok := pg.reroute[home]; ok {
		pg.FailoverWrites++
		if rt.via == pg.self {
			d := rt.drives[int(blk.Block&^indexRegion)%len(rt.drives)]
			pg.host.Process(pg.costs.DiskSetup, func() {
				d.Submit(&disk.Request{
					Table: int(blk.Table),
					Block: blk.Block &^ indexRegion,
					Size:  size,
					Write: true,
				})
			})
			return
		}
		via := rt.via
		pg.sim.Spawn("writeback", func(p *sim.Proc) {
			if err := pg.initiator.WriteFrom(p, via, home, int(blk.Table), blk.Block&^indexRegion, size); err != nil {
				pg.WriteBackErrors++
			}
		})
		return
	}
	if home == pg.self {
		pg.LocalWrites++
		pg.host.Process(pg.costs.DiskSetup, func() {
			pg.drive(blk).Submit(&disk.Request{
				Table: int(blk.Table),
				Block: blk.Block &^ indexRegion,
				Size:  size,
				Write: true,
			})
		})
		return
	}
	pg.RemoteWrites++
	// Remote lazy write rides a short-lived process so the initiator's
	// blocking protocol can run without holding up the caller. Failure is
	// tolerable — the write is lazy and the block stays reconstructible
	// from the log — so it is only counted.
	pg.sim.Spawn("writeback", func(p *sim.Proc) {
		if err := pg.initiator.Write(p, home, int(blk.Table), blk.Block&^indexRegion, size); err != nil {
			pg.WriteBackErrors++
		}
	})
}
