package db

import (
	"errors"

	"dclue/internal/sim"
	"dclue/internal/stats"
)

// ErrLockFailed aborts the current transaction attempt: a lock could not be
// acquired and the paper's protocol (§2.3) releases everything and retries
// after a delay.
var ErrLockFailed = errors.New("db: lock acquisition failed")

// Txn is one transaction attempt executing on a node.
type Txn struct {
	Ref      TxnRef
	Snapshot sim.Time
	node     *Node

	locks      []ResourceID
	lockSet    map[ResourceID]bool
	freed      []freedRow
	waitedOnce bool
	writeRows  int
	logBytes   int
	aborted    bool
}

type freedRow struct {
	table TableID
	row   int64
}

// NodeStats aggregates the executor-level measurements of one node.
type NodeStats struct {
	Commits      uint64
	Aborts       uint64
	RowsRead     uint64
	RowsWritten  uint64
	VersionsRead stats.Tally // snapshot hops per read
}

// Node is one cluster member's database engine: buffer cache, version
// manager, lock client/master, fusion directory client/master, pager and
// log — plus the executor API the workload drives.
type Node struct {
	Self  int
	sim   *sim.Sim
	cat   *Catalog
	host  Host
	Cache *BufferCache
	VM    *VersionManager
	GCS   *GCS
	Pager *Pager
	costs *OpCosts

	nextTxn uint64
	procs   []*sim.Proc // engine-internal processes, for teardown on crash
	Stats   NodeStats
}

// NodeConfig sizes a node's memory structures.
type NodeConfig struct {
	BufferFrames  int      // buffer cache capacity in 8 KB frames
	OverflowBytes int      // MVCC overflow area
	GCInterval    sim.Time // version GC cadence (0 disables)
	GCHorizon     sim.Time // versions older than now-horizon are reclaimable
}

// NewNode assembles a node engine. The caller wires the transport
// afterwards via n.GCS.SetTransport.
func NewNode(s *sim.Sim, self int, cat *Catalog, host Host, cfg NodeConfig,
	pagerMk func(costs *OpCosts, cache *BufferCache) *Pager, costs *OpCosts, logDisk LogDevice) *Node {

	n := &Node{Self: self, sim: s, cat: cat, host: host, costs: costs}
	var gcs *GCS
	n.Cache = NewBufferCache(cfg.BufferFrames, func(blk BlockID, dirty bool) {
		if gcs != nil {
			gcs.OnEvict(blk, dirty)
		}
	})
	n.Pager = pagerMk(costs, n.Cache)
	n.VM = NewVersionManager(cat, n.Cache, cfg.OverflowBytes)
	gcs = NewGCS(s, self, cat, host, n.Cache, n.Pager, n.VM, costs, logDisk)
	n.GCS = gcs

	// Version garbage collection: reclaim versions no active snapshot can
	// need. Snapshots live at most a transaction's lifetime; the horizon is
	// a safe multiple of healthy response times.
	if cfg.GCInterval > 0 {
		n.procs = append(n.procs, s.Spawn("mvcc-gc", func(p *sim.Proc) {
			for {
				p.Sleep(cfg.GCInterval)
				n.VM.GC(p.Now() - cfg.GCHorizon)
			}
		}))
	}
	return n
}

// Procs returns the engine's internal processes in spawn order, so a node
// crash can kill them deterministically.
func (n *Node) Procs() []*sim.Proc { return n.procs }

// CrashSnapshot reports what recovery must reconstruct if the node died at
// this instant: its dirty owned blocks (buffer-pool order) and the redo-log
// bytes written since the last checkpoint. The core crash injector captures
// this as the ground truth a real log scan would discover.
func (n *Node) CrashSnapshot() (dirty []BlockID, redoBytes int64) {
	n.Cache.Each(func(f *Frame) {
		if f.Dirty && f.WriteOwner {
			dirty = append(dirty, f.Blk)
		}
	})
	return dirty, n.GCS.RedoBytes()
}

// Costs exposes the node's cost table.
func (n *Node) Costs() *OpCosts { return n.costs }

// Begin starts a transaction attempt, charging initiation work.
func (n *Node) Begin(p *sim.Proc) *Txn {
	n.nextTxn++
	n.host.Execute(p, n.costs.TxnBegin)
	return &Txn{
		Ref:      TxnRef{Node: n.Self, ID: n.nextTxn},
		Snapshot: n.sim.Now(),
		node:     n,
		lockSet:  make(map[ResourceID]bool),
	}
}

// access pins the index leaf and data block of a row (phase 1: latch and
// bring missing data into the cache), charging traversal costs. The caller
// unpins via release. On a fetch failure nothing is left pinned and the
// error (ErrFetchFailed) propagates so the transaction attempt aborts.
func (n *Node) access(p *sim.Proc, t *Table, row int64, forWrite bool) error {
	n.host.Execute(p, float64(t.Index.Height())*n.costs.IndexLevel+n.costs.Latch)
	ixBlk := t.IndexLeafOf(row)
	if err := n.GCS.GetBlock(p, ixBlk, false); err != nil {
		return err
	}
	dataBlk := t.BlockOf(row)
	if err := n.GCS.GetBlock(p, dataBlk, forWrite); err != nil {
		n.Cache.Unpin(ixBlk)
		return err
	}
	return nil
}

// release unpins a row's blocks.
func (n *Node) release(t *Table, row int64) {
	n.Cache.Unpin(t.IndexLeafOf(row))
	n.Cache.Unpin(t.BlockOf(row))
}

// Read performs a snapshot read of the row with the given key. With MVCC no
// lock is taken (§2.1); the read charges version-walk work for versions
// newer than the snapshot. Returns the row id, ok=false if the key does not
// exist, or an error if the block fetch failed under injected faults.
func (n *Node) Read(p *sim.Proc, txn *Txn, tid TableID, key int64) (int64, bool, error) {
	t := n.cat.Table(tid)
	row, ok := t.Lookup(key)
	if !ok {
		n.host.Execute(p, float64(t.Index.Height())*n.costs.IndexLevel)
		return 0, false, nil
	}
	if err := n.access(p, t, row, false); err != nil {
		return 0, false, err
	}
	hops := n.VM.SnapshotHops(tid, row, txn.Snapshot)
	n.host.Execute(p, n.costs.RowRead+float64(hops)*n.costs.VersionHop)
	n.Stats.RowsRead++
	n.Stats.VersionsRead.Add(float64(hops))
	n.release(t, row)
	return row, true, nil
}

// Update write-locks and updates the row with the given key, creating a new
// version. Returns ErrLockFailed when the lock cannot be acquired under the
// paper's wait-once policy; the caller must abort and retry.
func (n *Node) Update(p *sim.Proc, txn *Txn, tid TableID, key int64) (int64, error) {
	t := n.cat.Table(tid)
	row, ok := t.Lookup(key)
	if !ok {
		return 0, errors.New("db: update of missing key")
	}
	if err := n.lockRow(p, txn, t, row); err != nil {
		return 0, err
	}
	if err := n.access(p, t, row, true); err != nil {
		return 0, err
	}
	versions := n.VM.Create(t, row, n.sim.Now())
	n.host.Execute(p, n.costs.RowWrite+n.costs.VersionCreate+float64(versions-1)*n.costs.VersionHop/4)
	n.markDirty(t.BlockOf(row))
	n.Stats.RowsWritten++
	txn.writeRows++
	txn.logBytes += t.Spec.RowBytes
	n.release(t, row)
	return row, nil
}

// Insert creates a row for key, homed (for fresh blocks) on homeNode — the
// partition owner of the row's warehouse.
func (n *Node) Insert(p *sim.Proc, txn *Txn, tid TableID, key int64, homeNode int) (int64, error) {
	t := n.cat.Table(tid)
	row, fresh := t.InsertFresh(key, homeNode)
	if err := n.lockRow(p, txn, t, row); err != nil {
		t.Delete(key) // undo placement
		return 0, err
	}
	n.host.Execute(p, float64(t.Index.Height())*n.costs.IndexLevel+n.costs.Latch)
	if err := n.GCS.GetBlock(p, t.IndexLeafOf(row), false); err != nil {
		t.Delete(key) // undo placement
		return 0, err
	}
	var err error
	if fresh {
		err = n.GCS.GetBlockCreate(p, t.BlockOf(row))
	} else {
		err = n.GCS.GetBlock(p, t.BlockOf(row), true)
	}
	if err != nil {
		n.Cache.Unpin(t.IndexLeafOf(row))
		t.Delete(key) // undo placement
		return 0, err
	}
	n.host.Execute(p, n.costs.RowInsert+n.costs.IndexInsert+n.costs.VersionCreate)
	n.VM.Create(t, row, n.sim.Now())
	n.markDirty(t.BlockOf(row))
	n.Stats.RowsWritten++
	txn.writeRows++
	txn.logBytes += t.Spec.RowBytes
	n.release(t, row)
	return row, nil
}

// TryDelete deletes the row for key if its lock is immediately available,
// returning claimed=false (without aborting the transaction) when another
// transaction holds it or the key is already gone. Deferred-mode delivery
// uses it to skip a district whose oldest order is being delivered by
// someone else.
func (n *Node) TryDelete(p *sim.Proc, txn *Txn, tid TableID, key int64) (claimed bool) {
	t := n.cat.Table(tid)
	row, ok := t.Lookup(key)
	if !ok {
		return false
	}
	res := t.ResourceOf(row)
	if !txn.lockSet[res] {
		granted, _ := n.GCS.AcquireLock(p, txn.Ref, res, LockX, false)
		if !granted {
			return false
		}
		txn.locks = append(txn.locks, res)
		txn.lockSet[res] = true
	}
	// The row could have been deleted while the lock message was in flight.
	if _, still := t.Lookup(key); !still {
		return false
	}
	if err := n.access(p, t, row, true); err != nil {
		// The lock stays held until commit/abort releases it; the district
		// is simply skipped this round.
		return false
	}
	n.host.Execute(p, n.costs.RowDelete)
	t.DeleteKeepSlot(key)
	txn.freed = append(txn.freed, freedRow{tid, row})
	n.markDirty(t.BlockOf(row))
	txn.writeRows++
	txn.logBytes += 64
	n.release(t, row)
	return true
}

// Delete removes the row with the given key under an X lock.
func (n *Node) Delete(p *sim.Proc, txn *Txn, tid TableID, key int64) error {
	t := n.cat.Table(tid)
	row, ok := t.Lookup(key)
	if !ok {
		return errors.New("db: delete of missing key")
	}
	if err := n.lockRow(p, txn, t, row); err != nil {
		return err
	}
	if err := n.access(p, t, row, true); err != nil {
		return err
	}
	n.host.Execute(p, n.costs.RowDelete)
	t.DeleteKeepSlot(key)
	txn.freed = append(txn.freed, freedRow{tid, row})
	n.markDirty(t.BlockOf(row))
	txn.writeRows++
	txn.logBytes += 64 // delete log record
	n.release(t, row)
	return nil
}

// Scan visits index entries from key upward until fn returns false,
// fetching each visited row's data block (snapshot reads, no locks).
func (n *Node) Scan(p *sim.Proc, txn *Txn, tid TableID, from int64, fn func(k, row int64) bool) error {
	t := n.cat.Table(tid)
	n.host.Execute(p, float64(t.Index.Height())*n.costs.IndexLevel)
	type ent struct{ k, row int64 }
	var batch []ent
	t.Index.Scan(from, func(k, row int64) bool {
		batch = append(batch, ent{k, row})
		return fn(k, row)
	})
	for _, e := range batch {
		if err := n.GCS.GetBlock(p, t.BlockOf(e.row), false); err != nil {
			return err
		}
		hops := n.VM.SnapshotHops(tid, e.row, txn.Snapshot)
		n.host.Execute(p, n.costs.ScanEntry+float64(hops)*n.costs.VersionHop)
		n.Cache.Unpin(t.BlockOf(e.row))
		n.Stats.RowsRead++
	}
	return nil
}

// lockRow acquires the global X lock on a row's subpage (phase 2).
// Contended locks wait in the master's queue; a wait that outlives the
// deadlock-suspicion timeout is treated as a failure, on which the caller
// releases everything and retries after a delay (§2.3's lock-wait /
// release-and-delayed-retry scheme).
func (n *Node) lockRow(p *sim.Proc, txn *Txn, t *Table, row int64) error {
	res := t.ResourceOf(row)
	if txn.lockSet[res] {
		return nil // already held by this transaction
	}
	granted, waited := n.GCS.AcquireLock(p, txn.Ref, res, LockX, true)
	if waited {
		txn.waitedOnce = true
	}
	if !granted {
		return ErrLockFailed
	}
	txn.locks = append(txn.locks, res)
	txn.lockSet[res] = true
	return nil
}

// markDirty flags a resident block dirty.
func (n *Node) markDirty(blk BlockID) {
	if f := n.Cache.Lookup(blk); f != nil {
		f.Dirty = true
		n.Cache.Unpin(blk)
	}
}

// Commit makes the transaction durable: commit work, the forced log write,
// then lock release (one batched message per remote master).
func (n *Node) Commit(p *sim.Proc, txn *Txn) {
	n.host.Execute(p, n.costs.TxnCommit+n.costs.LogSetup+float64(txn.logBytes)*n.costs.LogPerByte)
	if txn.logBytes > 0 {
		n.GCS.WriteLog(p, txn.logBytes+128)
	}
	n.GCS.ReleaseLocks(txn.Ref, txn.locks)
	for _, f := range txn.freed {
		n.cat.Table(f.table).Recycle(f.row)
	}
	n.Stats.Commits++
}

// Abort releases everything without logging; the caller retries after a
// delay.
func (n *Node) Abort(p *sim.Proc, txn *Txn) {
	n.host.Execute(p, n.costs.TxnCommit/2)
	n.GCS.ReleaseLocks(txn.Ref, txn.locks)
	for _, f := range txn.freed {
		n.cat.Table(f.table).Recycle(f.row)
	}
	txn.aborted = true
	n.Stats.Aborts++
}
