package db

import "sort"

// resourceIDLess is the (table, block, subpage) order for sort.Slice over rs.
func resourceIDLess(rs []ResourceID) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Subpage < b.Subpage
	}
}

// LockMode is a lock strength. With multi-version concurrency control
// reads never lock (§2.1), so the executor only requests X; S exists for
// completeness and tests.
type LockMode int

// Lock modes.
const (
	LockS LockMode = iota
	LockX
)

// TxnRef names a transaction cluster-wide.
type TxnRef struct {
	Node int
	ID   uint64
}

// lockWaiter is a queued request at the master.
type lockWaiter struct {
	txn   TxnRef
	mode  LockMode
	grant func(waited bool)
}

// lockEntry is the master-side state of one resource.
type lockEntry struct {
	holders map[TxnRef]LockMode
	queue   []*lockWaiter
}

// LockService is the lock master role of one node: it owns the lock tables
// for every resource whose block it homes (partition-aware mastering, like
// the directory).
type LockService struct {
	locks map[ResourceID]*lockEntry

	Grants     uint64
	Queued     uint64
	Cancels    uint64
	MaxQueue   int
	ActiveLock int // resources with holders or waiters
}

// NewLockService returns an empty lock master.
func NewLockService() *LockService {
	return &LockService{locks: make(map[ResourceID]*lockEntry)}
}

// compatible reports whether a request mode coexists with a held mode.
func compatible(held, req LockMode) bool { return held == LockS && req == LockS }

// Request asks for res in mode on behalf of txn. grant is invoked exactly
// once — immediately (waited=false) or later when the lock frees
// (waited=true). Re-entrant requests by a holder are granted immediately;
// an S holder sole on the resource upgrades to X in place.
func (ls *LockService) Request(res ResourceID, txn TxnRef, mode LockMode, grant func(waited bool)) {
	e := ls.locks[res]
	if e == nil {
		e = &lockEntry{holders: make(map[TxnRef]LockMode)}
		ls.locks[res] = e
		ls.ActiveLock++
	}
	if held, ok := e.holders[txn]; ok {
		if mode == LockX && held == LockS {
			if len(e.holders) == 1 {
				e.holders[txn] = LockX
				ls.Grants++
				grant(false)
				return
			}
			// Upgrade must queue behind other S holders.
		} else {
			ls.Grants++
			grant(false)
			return
		}
	}
	if len(e.queue) == 0 && ls.fits(e, txn, mode) {
		e.holders[txn] = mode
		ls.Grants++
		grant(false)
		return
	}
	e.queue = append(e.queue, &lockWaiter{txn: txn, mode: mode, grant: grant})
	ls.Queued++
	if len(e.queue) > ls.MaxQueue {
		ls.MaxQueue = len(e.queue)
	}
}

// fits reports whether txn may take mode given current holders (ignoring
// the queue).
func (ls *LockService) fits(e *lockEntry, txn TxnRef, mode LockMode) bool {
	for h, m := range e.holders {
		if h == txn {
			continue
		}
		if !compatible(m, mode) {
			return false
		}
	}
	return true
}

// Release drops txn's hold on res and pumps the queue.
func (ls *LockService) Release(res ResourceID, txn TxnRef) {
	e := ls.locks[res]
	if e == nil {
		return
	}
	delete(e.holders, txn)
	ls.pump(res, e)
}

// Cancel withdraws a queued request (requester gave up waiting). If the
// request was already granted this is a release.
func (ls *LockService) Cancel(res ResourceID, txn TxnRef) {
	e := ls.locks[res]
	if e == nil {
		return
	}
	for i, w := range e.queue {
		if w.txn == txn {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			ls.Cancels++
			ls.pump(res, e)
			return
		}
	}
	// Not queued: grant must have raced the cancel; treat as release.
	if _, ok := e.holders[txn]; ok {
		delete(e.holders, txn)
		ls.pump(res, e)
	}
}

// pump grants queued requests in FIFO order while they fit.
func (ls *LockService) pump(res ResourceID, e *lockEntry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if !ls.fits(e, w.txn, w.mode) {
			break
		}
		e.queue = e.queue[1:]
		e.holders[w.txn] = w.mode
		ls.Grants++
		w.grant(true)
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(ls.locks, res)
		ls.ActiveLock--
	}
}

// ReleaseNode drops every hold and queued request belonging to transactions
// from node, pumping each affected queue: fencing a crashed node frees its
// locks so survivors stop waiting on a peer that will never answer.
// Resources are visited in sorted order for determinism.
func (ls *LockService) ReleaseNode(node int) {
	for _, res := range ls.sortedResources() {
		e := ls.locks[res]
		if e == nil {
			continue
		}
		for h := range e.holders {
			if h.Node == node {
				delete(e.holders, h)
			}
		}
		kept := e.queue[:0]
		for _, w := range e.queue {
			if w.txn.Node == node {
				ls.Cancels++
				continue
			}
			kept = append(kept, w)
		}
		e.queue = kept
		ls.pump(res, e)
	}
}

// DropHomedAt discards master state for every resource satisfying pred
// without granting anyone: used when mastering moves (surrogate takeover or
// hand-back), where the new master rebuilds state from survivors.
func (ls *LockService) DropHomedAt(pred func(ResourceID) bool) {
	for _, res := range ls.sortedResources() {
		if pred(res) {
			if _, ok := ls.locks[res]; ok {
				delete(ls.locks, res)
				ls.ActiveLock--
			}
		}
	}
}

// sortedResources returns the active resource ids in a total order.
func (ls *LockService) sortedResources() []ResourceID {
	out := make([]ResourceID, 0, len(ls.locks))
	for res := range ls.locks {
		out = append(out, res)
	}
	sort.Slice(out, resourceIDLess(out))
	return out
}

// HeldBy reports whether txn currently holds res.
func (ls *LockService) HeldBy(res ResourceID, txn TxnRef) bool {
	e := ls.locks[res]
	if e == nil {
		return false
	}
	_, ok := e.holders[txn]
	return ok
}

// QueueLen returns the waiter count on res.
func (ls *LockService) QueueLen(res ResourceID) int {
	if e := ls.locks[res]; e != nil {
		return len(e.queue)
	}
	return 0
}
