package db

// LockMode is a lock strength. With multi-version concurrency control
// reads never lock (§2.1), so the executor only requests X; S exists for
// completeness and tests.
type LockMode int

// Lock modes.
const (
	LockS LockMode = iota
	LockX
)

// TxnRef names a transaction cluster-wide.
type TxnRef struct {
	Node int
	ID   uint64
}

// lockWaiter is a queued request at the master.
type lockWaiter struct {
	txn   TxnRef
	mode  LockMode
	grant func(waited bool)
}

// lockEntry is the master-side state of one resource.
type lockEntry struct {
	holders map[TxnRef]LockMode
	queue   []*lockWaiter
}

// LockService is the lock master role of one node: it owns the lock tables
// for every resource whose block it homes (partition-aware mastering, like
// the directory).
type LockService struct {
	locks map[ResourceID]*lockEntry

	Grants     uint64
	Queued     uint64
	Cancels    uint64
	MaxQueue   int
	ActiveLock int // resources with holders or waiters
}

// NewLockService returns an empty lock master.
func NewLockService() *LockService {
	return &LockService{locks: make(map[ResourceID]*lockEntry)}
}

// compatible reports whether a request mode coexists with a held mode.
func compatible(held, req LockMode) bool { return held == LockS && req == LockS }

// Request asks for res in mode on behalf of txn. grant is invoked exactly
// once — immediately (waited=false) or later when the lock frees
// (waited=true). Re-entrant requests by a holder are granted immediately;
// an S holder sole on the resource upgrades to X in place.
func (ls *LockService) Request(res ResourceID, txn TxnRef, mode LockMode, grant func(waited bool)) {
	e := ls.locks[res]
	if e == nil {
		e = &lockEntry{holders: make(map[TxnRef]LockMode)}
		ls.locks[res] = e
		ls.ActiveLock++
	}
	if held, ok := e.holders[txn]; ok {
		if mode == LockX && held == LockS {
			if len(e.holders) == 1 {
				e.holders[txn] = LockX
				ls.Grants++
				grant(false)
				return
			}
			// Upgrade must queue behind other S holders.
		} else {
			ls.Grants++
			grant(false)
			return
		}
	}
	if len(e.queue) == 0 && ls.fits(e, txn, mode) {
		e.holders[txn] = mode
		ls.Grants++
		grant(false)
		return
	}
	e.queue = append(e.queue, &lockWaiter{txn: txn, mode: mode, grant: grant})
	ls.Queued++
	if len(e.queue) > ls.MaxQueue {
		ls.MaxQueue = len(e.queue)
	}
}

// fits reports whether txn may take mode given current holders (ignoring
// the queue).
func (ls *LockService) fits(e *lockEntry, txn TxnRef, mode LockMode) bool {
	for h, m := range e.holders {
		if h == txn {
			continue
		}
		if !compatible(m, mode) {
			return false
		}
	}
	return true
}

// Release drops txn's hold on res and pumps the queue.
func (ls *LockService) Release(res ResourceID, txn TxnRef) {
	e := ls.locks[res]
	if e == nil {
		return
	}
	delete(e.holders, txn)
	ls.pump(res, e)
}

// Cancel withdraws a queued request (requester gave up waiting). If the
// request was already granted this is a release.
func (ls *LockService) Cancel(res ResourceID, txn TxnRef) {
	e := ls.locks[res]
	if e == nil {
		return
	}
	for i, w := range e.queue {
		if w.txn == txn {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			ls.Cancels++
			ls.pump(res, e)
			return
		}
	}
	// Not queued: grant must have raced the cancel; treat as release.
	if _, ok := e.holders[txn]; ok {
		delete(e.holders, txn)
		ls.pump(res, e)
	}
}

// pump grants queued requests in FIFO order while they fit.
func (ls *LockService) pump(res ResourceID, e *lockEntry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if !ls.fits(e, w.txn, w.mode) {
			break
		}
		e.queue = e.queue[1:]
		e.holders[w.txn] = w.mode
		ls.Grants++
		w.grant(true)
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(ls.locks, res)
		ls.ActiveLock--
	}
}

// HeldBy reports whether txn currently holds res.
func (ls *LockService) HeldBy(res ResourceID, txn TxnRef) bool {
	e := ls.locks[res]
	if e == nil {
		return false
	}
	_, ok := e.holders[txn]
	return ok
}

// QueueLen returns the waiter count on res.
func (ls *LockService) QueueLen(res ResourceID) int {
	if e := ls.locks[res]; e != nil {
		return len(e.queue)
	}
	return 0
}
