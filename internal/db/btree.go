// Package db implements the clustered DBMS engine of the paper: tables on
// 8 KB blocks with B+-tree indices, per-node buffer caches, multi-version
// concurrency control, two-phase subpage locking with a global lock
// service, cache-fusion block transfers with partition-aware directory
// mastering, and write-ahead logging (local or centralized). It is the Go
// counterpart of what DCLUE implemented on top of OPNET.
package db

// BTree is an in-memory B+ tree mapping int64 keys to int64 values (row
// ids). DCLUE "explicitly maintains B+-tree indices for each table"; the
// tree here is fully functional (insert, delete, exact and range lookup)
// and its depth feeds the index-traversal path-length charge.
type BTree struct {
	root   *btNode
	degree int
	size   int
}

// btNode is a B+ tree node. Leaves carry values and are chained.
type btNode struct {
	leaf bool
	keys []int64
	// Internal nodes: children, len(children) == len(keys)+1.
	children []*btNode
	// Leaves: values parallel to keys, plus the leaf chain.
	vals []int64
	next *btNode
}

// NewBTree returns an empty tree. Degree is the maximum number of keys per
// node (order); 64 gives realistic 2-4 level trees for our table sizes.
func NewBTree(degree int) *BTree {
	if degree < 4 {
		degree = 4
	}
	return &BTree{root: &btNode{leaf: true}, degree: degree}
}

// Len returns the number of stored keys.
func (t *BTree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf); table ops charge
// an index path length per level.
func (t *BTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// search returns the index of the first key >= k.
func (n *btNode) search(k int64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value for k.
func (t *BTree) Get(k int64) (int64, bool) {
	n := t.root
	for !n.leaf {
		i := n.search(k)
		if i < len(n.keys) && n.keys[i] == k {
			i++ // equal keys route right in internal nodes
		}
		n = n.children[i]
	}
	i := n.search(k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	return 0, false
}

// Put inserts or replaces the value for k.
func (t *BTree) Put(k, v int64) {
	sep, right := t.insert(t.root, k, v)
	if right != nil {
		t.root = &btNode{
			keys:     []int64{sep},
			children: []*btNode{t.root, right},
		}
	}
}

// insert descends, inserting into the leaf; on overflow it splits and
// returns the separator key and new right sibling.
func (t *BTree) insert(n *btNode, k, v int64) (int64, *btNode) {
	if n.leaf {
		i := n.search(k)
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = v // replace
			return 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		t.size++
		if len(n.keys) > t.degree {
			return t.splitLeaf(n)
		}
		return 0, nil
	}
	i := n.search(k)
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	sep, right := t.insert(n.children[i], k, v)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) > t.degree {
		return t.splitInternal(n)
	}
	return 0, nil
}

func (t *BTree) splitLeaf(n *btNode) (int64, *btNode) {
	mid := len(n.keys) / 2
	right := &btNode{
		leaf: true,
		keys: append([]int64(nil), n.keys[mid:]...),
		vals: append([]int64(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = right
	return right.keys[0], right
}

func (t *BTree) splitInternal(n *btNode) (int64, *btNode) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &btNode{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*btNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right
}

// Delete removes k, returning whether it was present. Underflowed nodes are
// left lazy (no rebalancing): deletions in the workload (new-order retirement)
// are immediately followed by inserts at higher keys, so lazy deletion keeps
// the tree compact enough while staying simple and fast.
func (t *BTree) Delete(k int64) bool {
	n := t.root
	for !n.leaf {
		i := n.search(k)
		if i < len(n.keys) && n.keys[i] == k {
			i++
		}
		n = n.children[i]
	}
	i := n.search(k)
	if i < len(n.keys) && n.keys[i] == k {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.size--
		return true
	}
	return false
}

// Scan visits keys in [from, +inf) in ascending order until fn returns
// false. Used for range reads (oldest new-order, last orders of a district).
func (t *BTree) Scan(from int64, fn func(k, v int64) bool) {
	n := t.root
	for !n.leaf {
		i := n.search(from)
		if i < len(n.keys) && n.keys[i] == from {
			i++
		}
		n = n.children[i]
	}
	i := n.search(from)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Min returns the smallest key (ok=false when empty).
func (t *BTree) Min() (int64, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		if len(n.keys) > 0 {
			return n.keys[0], true
		}
		n = n.next
	}
	return 0, false
}
