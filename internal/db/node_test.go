package db

import (
	"testing"

	"dclue/internal/disk"
	"dclue/internal/rng"
	"dclue/internal/sim"
)

// instantHost runs path lengths in zero simulated time (db-level unit
// tests care about protocol behaviour, not CPU timing).
type instantHost struct{}

func (instantHost) Execute(p *sim.Proc, pathLen float64)  {}
func (instantHost) Dispatch(p *sim.Proc, pathLen float64) {}
func (instantHost) Process(pathLen float64, done func())  { done() }

// loopTransport delivers messages between in-process GCS instances after a
// fixed delay.
type loopTransport struct {
	s     *sim.Sim
	self  int
	peers []*GCS
	delay sim.Time

	ctlSent, dataSent uint64
}

func (t *loopTransport) Self() int { return t.self }
func (t *loopTransport) Send(to int, m Msg, size int, data bool) {
	if data {
		t.dataSent++
	} else {
		t.ctlSent++
	}
	from := t.self
	t.s.After(t.delay, func() { t.peers[to].HandleMessage(from, m) })
}

// cluster is a little two-or-more node harness for executor tests.
type cluster struct {
	s     *sim.Sim
	cat   *Catalog
	nodes []*Node
	tbl   *Table
}

func buildCluster(nNodes int, bufFrames int) *cluster {
	s := sim.New()
	cat := NewCatalog(nNodes)
	tbl := cat.AddTable(TableSpec{Name: "t", RowBytes: 512, Subpages: 4})
	cl := &cluster{s: s, cat: cat, tbl: tbl}
	gcss := make([]*GCS, nNodes)
	for i := 0; i < nNodes; i++ {
		i := i
		drv := disk.NewDrive(s, disk.DefaultParams(1), rng.Derive(9, "d"))
		logd := disk.DefaultLogDisk(s, 1)
		mkPager := func(costs *OpCosts, cache *BufferCache) *Pager {
			return NewPager(s, i, cat, instantHost{}, []*disk.Drive{drv}, nil, costs)
		}
		n := NewNode(s, i, cat, instantHost{},
			NodeConfig{BufferFrames: bufFrames, OverflowBytes: 1 << 20},
			mkPager, DefaultOpCosts(), logd)
		cl.nodes = append(cl.nodes, n)
		gcss[i] = n.GCS
	}
	for i, n := range cl.nodes {
		n.GCS.SetTransport(&loopTransport{s: s, self: i, peers: gcss, delay: 50 * sim.Microsecond})
	}
	return cl
}

// seedRows inserts keys [0,count) homed on the given node, bypassing
// locking (build phase).
func (cl *cluster) seedRows(count int64, home int) {
	for k := int64(0); k < count; k++ {
		cl.tbl.Insert(k, home)
	}
}

func TestLocalReadCommit(t *testing.T) {
	cl := buildCluster(1, 256)
	cl.seedRows(100, 0)
	n := cl.nodes[0]
	var ok bool
	cl.s.Spawn("txn", func(p *sim.Proc) {
		txn := n.Begin(p)
		_, ok, _ = n.Read(p, txn, cl.tbl.ID, 42)
		n.Commit(p, txn)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
	if !ok {
		t.Fatal("read failed")
	}
	if n.Stats.Commits != 1 {
		t.Fatalf("commits %d", n.Stats.Commits)
	}
	if n.GCS.Stats.BlockDiskReads == 0 {
		t.Fatal("cold read did not hit disk")
	}
}

func TestReadMissingKey(t *testing.T) {
	cl := buildCluster(1, 256)
	n := cl.nodes[0]
	found := true
	cl.s.Spawn("txn", func(p *sim.Proc) {
		txn := n.Begin(p)
		_, found, _ = n.Read(p, txn, cl.tbl.ID, 9999)
		n.Commit(p, txn)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
	if found {
		t.Fatal("found absent key")
	}
}

func TestRemoteFetchUsesFusionProtocol(t *testing.T) {
	cl := buildCluster(2, 256)
	cl.seedRows(100, 1) // all data homed on node 1
	n0, n1 := cl.nodes[0], cl.nodes[1]

	// Warm node 1's cache so it holds the blocks.
	cl.s.Spawn("warm", func(p *sim.Proc) {
		txn := n1.Begin(p)
		for k := int64(0); k < 100; k++ {
			n1.Read(p, txn, cl.tbl.ID, k)
		}
		n1.Commit(p, txn)
	})
	cl.s.Run(20 * sim.Second)

	// Now node 0 reads: blocks must arrive by cache-fusion transfer, not
	// disk.
	transfersBefore := n0.GCS.Stats.BlockTransfers
	cl.s.Spawn("remote", func(p *sim.Proc) {
		txn := n0.Begin(p)
		for k := int64(0); k < 100; k++ {
			n0.Read(p, txn, cl.tbl.ID, k)
		}
		n0.Commit(p, txn)
	})
	cl.s.Run(40 * sim.Second)
	cl.s.Shutdown()
	if n0.GCS.Stats.BlockTransfers == transfersBefore {
		t.Fatal("no cache-fusion transfers for remotely cached blocks")
	}
	if n0.GCS.Stats.CtlMsgsSent == 0 {
		t.Fatal("no control messages sent")
	}
	if n1.GCS.Stats.DataMsgsSent == 0 {
		t.Fatal("holder sent no data messages")
	}
}

func TestColdReadOfOwnPartitionHitsLocalDisk(t *testing.T) {
	// In a 2-node cluster, node 0 cold-reading its own partition must go to
	// its local disk (directory negative at self), with zero IPC messages.
	cl := buildCluster(2, 256)
	// Block-align partitions: 16 rows per 8 KB block at 512 B rows.
	for k := int64(0); k < 16; k++ {
		cl.tbl.Insert(k, 0)
	}
	for k := int64(16); k < 32; k++ {
		cl.tbl.Insert(k, 1)
	}
	n0 := cl.nodes[0]
	var done bool
	cl.s.Spawn("cold", func(p *sim.Proc) {
		txn := n0.Begin(p)
		if _, ok, _ := n0.Read(p, txn, cl.tbl.ID, 3); !ok {
			t.Error("key missing")
		}
		n0.Commit(p, txn)
		done = true
	})
	cl.s.Run(20 * sim.Second)
	cl.s.Shutdown()
	if !done {
		t.Fatal("cold read did not complete")
	}
	if n0.GCS.Stats.BlockDiskReads == 0 {
		t.Fatal("no disk read")
	}
	if n0.GCS.Stats.CtlMsgsSent != 0 {
		t.Fatalf("local-partition read sent %d IPC messages", n0.GCS.Stats.CtlMsgsSent)
	}
	if n0.Pager.LocalReads == 0 || n0.Pager.RemoteReads != 0 {
		t.Fatalf("pager local=%d remote=%d", n0.Pager.LocalReads, n0.Pager.RemoteReads)
	}
}

func TestUpdateCreatesVersionAndLocks(t *testing.T) {
	cl := buildCluster(1, 256)
	cl.seedRows(10, 0)
	n := cl.nodes[0]
	cl.s.Spawn("w", func(p *sim.Proc) {
		txn := n.Begin(p)
		if _, err := n.Update(p, txn, cl.tbl.ID, 5); err != nil {
			t.Error(err)
		}
		n.Commit(p, txn)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
	if n.VM.Created != 1 {
		t.Fatalf("versions created %d", n.VM.Created)
	}
	if n.Stats.RowsWritten != 1 {
		t.Fatalf("rows written %d", n.Stats.RowsWritten)
	}
	// Lock released at commit.
	row, _ := cl.tbl.Lookup(5)
	if n.GCS.Locks().HeldBy(cl.tbl.ResourceOf(row), TxnRef{0, 1}) {
		t.Fatal("lock still held after commit")
	}
}

func TestWriteConflictSecondWaits(t *testing.T) {
	cl := buildCluster(1, 256)
	cl.seedRows(10, 0)
	n := cl.nodes[0]
	var order []string
	cl.s.Spawn("t1", func(p *sim.Proc) {
		txn := n.Begin(p)
		n.Update(p, txn, cl.tbl.ID, 0)
		order = append(order, "t1-locked")
		p.Sleep(100 * sim.Millisecond)
		n.Commit(p, txn)
		order = append(order, "t1-commit")
	})
	cl.s.Spawn("t2", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		txn := n.Begin(p)
		if _, err := n.Update(p, txn, cl.tbl.ID, 0); err != nil {
			t.Errorf("t2 update: %v", err)
		}
		order = append(order, "t2-locked")
		n.Commit(p, txn)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
	if len(order) != 3 || order[0] != "t1-locked" || order[1] != "t1-commit" || order[2] != "t2-locked" {
		t.Fatalf("order %v", order)
	}
	if n.GCS.Stats.LockWaits == 0 {
		t.Fatal("no lock wait recorded")
	}
}

func TestSecondContentionFailsFast(t *testing.T) {
	// A transaction that already spent its blocking wait must get
	// ErrLockFailed on the next contended lock.
	cl := buildCluster(1, 256)
	cl.seedRows(10, 0)
	n := cl.nodes[0]
	cl.tbl.Spec.Subpages = 8 // row-level-ish
	var gotErr error
	// Holder pins rows 0 and 1 forever.
	cl.s.Spawn("holder", func(p *sim.Proc) {
		txn := n.Begin(p)
		n.Update(p, txn, cl.tbl.ID, 0)
		n.Update(p, txn, cl.tbl.ID, 1)
		p.Sleep(5 * sim.Second) // outlives everything
		n.Commit(p, txn)
	})
	cl.s.Spawn("victim", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		n.GCS.DeadlockTimeout = 50 * sim.Millisecond // quick test
		txn := n.Begin(p)
		_, err1 := n.Update(p, txn, cl.tbl.ID, 0) // waits, times out
		if err1 == nil {
			t.Error("first contended update unexpectedly granted")
		}
		_, gotErr = n.Update(p, txn, cl.tbl.ID, 1) // must fail fast
		n.Abort(p, txn)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
	if gotErr != ErrLockFailed {
		t.Fatalf("second contention error = %v, want ErrLockFailed", gotErr)
	}
	if n.Stats.Aborts != 1 {
		t.Fatalf("aborts %d", n.Stats.Aborts)
	}
	if n.GCS.Stats.LockFails < 2 {
		t.Fatalf("lock fails %d", n.GCS.Stats.LockFails)
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	cl := buildCluster(1, 256)
	n := cl.nodes[0]
	cl.s.Spawn("txn", func(p *sim.Proc) {
		txn := n.Begin(p)
		if _, err := n.Insert(p, txn, cl.tbl.ID, 777, 0); err != nil {
			t.Error(err)
		}
		n.Commit(p, txn)
		txn2 := n.Begin(p)
		if _, ok, _ := n.Read(p, txn2, cl.tbl.ID, 777); !ok {
			t.Error("inserted row not found")
		}
		if err := n.Delete(p, txn2, cl.tbl.ID, 777); err != nil {
			t.Error(err)
		}
		n.Commit(p, txn2)
		txn3 := n.Begin(p)
		if _, ok, _ := n.Read(p, txn3, cl.tbl.ID, 777); ok {
			t.Error("deleted row still visible")
		}
		n.Commit(p, txn3)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
}

func TestScanVisitsRange(t *testing.T) {
	cl := buildCluster(1, 256)
	cl.seedRows(50, 0)
	n := cl.nodes[0]
	var keys []int64
	cl.s.Spawn("scan", func(p *sim.Proc) {
		txn := n.Begin(p)
		n.Scan(p, txn, cl.tbl.ID, 10, func(k, row int64) bool {
			keys = append(keys, k)
			return len(keys) < 5
		})
		n.Commit(p, txn)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
	if len(keys) != 5 || keys[0] != 10 || keys[4] != 14 {
		t.Fatalf("scan keys %v", keys)
	}
}

func TestCommitWritesLog(t *testing.T) {
	cl := buildCluster(1, 256)
	cl.seedRows(10, 0)
	n := cl.nodes[0]
	logd := n.GCS.logDisk.(*disk.LogDisk)
	cl.s.Spawn("txn", func(p *sim.Proc) {
		txn := n.Begin(p)
		n.Update(p, txn, cl.tbl.ID, 1)
		n.Commit(p, txn)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
	if logd.Writes != 1 {
		t.Fatalf("log writes %d", logd.Writes)
	}
}

func TestCentralizedLogging(t *testing.T) {
	cl := buildCluster(2, 256)
	cl.seedRows(10, 1)
	n1 := cl.nodes[1]
	// Node 1 logs at node 0.
	n1.GCS.CentralLogNode = 0
	log0 := cl.nodes[0].GCS.logDisk.(*disk.LogDisk)
	log1 := n1.GCS.logDisk.(*disk.LogDisk)
	cl.s.Spawn("txn", func(p *sim.Proc) {
		txn := n1.Begin(p)
		n1.Update(p, txn, cl.tbl.ID, 1)
		n1.Commit(p, txn)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
	if log1.Writes != 0 {
		t.Fatal("local log written despite central logging")
	}
	if log0.Writes != 1 {
		t.Fatalf("central log writes %d", log0.Writes)
	}
}

func TestReadOnlyCommitSkipsLog(t *testing.T) {
	cl := buildCluster(1, 256)
	cl.seedRows(10, 0)
	n := cl.nodes[0]
	logd := n.GCS.logDisk.(*disk.LogDisk)
	cl.s.Spawn("txn", func(p *sim.Proc) {
		txn := n.Begin(p)
		n.Read(p, txn, cl.tbl.ID, 1)
		n.Commit(p, txn)
	})
	cl.s.Run(10 * sim.Second)
	cl.s.Shutdown()
	if logd.Writes != 0 {
		t.Fatal("read-only transaction wrote log")
	}
}
