package db

import (
	"testing"

	"dclue/internal/disk"
	"dclue/internal/sim"
)

// gcsRig builds n GCS instances over the loopback transport with a shared
// catalog and one 16-rows-per-block table, all blocks homed on node 0.
type gcsRig struct {
	s     *sim.Sim
	cat   *Catalog
	tbl   *Table
	nodes []*Node
}

func newGCSRig(t *testing.T, n int) *gcsRig {
	t.Helper()
	cl := buildCluster(n, 256)
	for k := int64(0); k < 16; k++ {
		cl.tbl.Insert(k, 0)
	}
	prewarmHome(cl)
	return &gcsRig{s: cl.s, cat: cl.cat, tbl: cl.tbl, nodes: cl.nodes}
}

func TestFusionThreeNodeForward(t *testing.T) {
	// Classic A/B/C: master B=node0 (home), holder C=node0 after prewarm;
	// make node 1 a holder, then node 2's request must be served by a
	// forward: 0 (master) -> supplier -> xfer to 2.
	rig := newGCSRig(t, 3)
	n1, n2 := rig.nodes[1], rig.nodes[2]
	rig.s.Spawn("seq", func(p *sim.Proc) {
		txn := n1.Begin(p)
		n1.Read(p, txn, rig.tbl.ID, 3)
		n1.Commit(p, txn)

		before := n2.GCS.Stats.BlockTransfers
		txn2 := n2.Begin(p)
		n2.Read(p, txn2, rig.tbl.ID, 3)
		n2.Commit(p, txn2)
		if n2.GCS.Stats.BlockTransfers != before+2 { // index leaf + data block
			t.Errorf("transfers %d -> %d, want +2", before, n2.GCS.Stats.BlockTransfers)
		}
		if n2.GCS.Stats.BlockDiskReads != 0 {
			t.Error("fusion-served read hit disk")
		}
	})
	rig.s.Run(60 * sim.Second)
	rig.s.Shutdown()
}

func TestFusionPendingFwdCleanup(t *testing.T) {
	rig := newGCSRig(t, 3)
	n1 := rig.nodes[1]
	rig.s.Spawn("seq", func(p *sim.Proc) {
		txn := n1.Begin(p)
		n1.Read(p, txn, rig.tbl.ID, 1)
		n1.Commit(p, txn)
	})
	rig.s.Run(60 * sim.Second)
	rig.s.Shutdown()
	for i, n := range rig.nodes {
		if len(n.GCS.pendingFwd) != 0 {
			t.Fatalf("node %d leaked %d pendingFwd entries", i, len(n.GCS.pendingFwd))
		}
		if len(n.GCS.pending) != 0 {
			t.Fatalf("node %d leaked %d pending requests", i, len(n.GCS.pending))
		}
		if len(n.GCS.inflight) != 0 {
			t.Fatalf("node %d leaked %d inflight fills", i, len(n.GCS.inflight))
		}
	}
}

func TestEvictionNotifiesDirectory(t *testing.T) {
	// A tiny cache on node 1 forces evictions; the master's directory must
	// drop node 1 as holder so later requests are not forwarded to it.
	cl := buildCluster(2, 256)
	for k := int64(0); k < 16; k++ {
		cl.tbl.Insert(k, 0)
	}
	prewarmHome(cl)
	n0, n1 := cl.nodes[0], cl.nodes[1]
	cl.s.Spawn("seq", func(p *sim.Proc) {
		txn := n1.Begin(p)
		n1.Read(p, txn, cl.tbl.ID, 3)
		n1.Commit(p, txn)
		row, _ := cl.tbl.Lookup(3)
		blk := cl.tbl.BlockOf(row)
		// Force the eviction directly.
		n1.Cache.Invalidate(blk)
		n1.GCS.OnEvict(blk, false)
		p.Sleep(1 * sim.Second)
		e := n0.GCS.dir[blk]
		if e == nil {
			t.Error("directory entry vanished entirely")
			return
		}
		if e.holders[1] {
			t.Error("master still lists node 1 as holder after eviction notice")
		}
	})
	cl.s.Run(30 * sim.Second)
	cl.s.Shutdown()
}

func TestCentralLogRoundTrip(t *testing.T) {
	cl := buildCluster(3, 256)
	n2 := cl.nodes[2]
	n2.GCS.CentralLogNode = 0
	done := false
	cl.s.Spawn("w", func(p *sim.Proc) {
		n2.GCS.WriteLog(p, 2048)
		done = true
	})
	cl.s.Run(30 * sim.Second)
	cl.s.Shutdown()
	if !done {
		t.Fatal("central log write never acknowledged")
	}
	if cl.nodes[0].GCS.logDisk.(*disk.LogDisk).Writes != 1 {
		t.Fatal("central node did not write the record")
	}
	if cl.nodes[2].GCS.logDisk.(*disk.LogDisk).Writes != 0 {
		t.Fatal("requesting node wrote locally despite central logging")
	}
}

func TestOpCostsScale(t *testing.T) {
	c := DefaultOpCosts()
	h := c.Scale(0.25)
	if h.TxnBegin*4 != c.TxnBegin || h.RowInsert*4 != c.RowInsert {
		t.Fatal("Scale did not quarter computational costs")
	}
	if h.LogPerByte != c.LogPerByte || h.DiskSetup != c.DiskSetup {
		t.Fatal("Scale touched I/O and logging costs")
	}
	// Original untouched.
	if c.TxnBegin != DefaultOpCosts().TxnBegin {
		t.Fatal("Scale mutated the receiver")
	}
}
