package db

import (
	"sort"

	"dclue/internal/sim"
)

// This file holds the GCS side of crash recovery: fencing a dead node out
// of the directory and lock tables, rebuilding mastering state from
// survivors' holdings, handing mastering back on rejoin, and the checkpoint
// that bounds how much redo log a crash forces recovery to replay. The
// protocol itself (who fences, who remasters, in what order) lives in the
// core cluster's recovery coordinator; everything here is node-local state
// surgery, deterministic via sorted iteration.

// blockIDLess is the (table, block) order for sort.Slice over bs.
func blockIDLess(bs []BlockID) func(i, j int) bool {
	return func(i, j int) bool {
		if bs[i].Table != bs[j].Table {
			return bs[i].Table < bs[j].Table
		}
		return bs[i].Block < bs[j].Block
	}
}

// SendCtl ships a control message on the GCS's IPC channel (recovery
// coordinator use; same pricing as protocol messages).
func (g *GCS) SendCtl(to int, m Msg) { g.sendCtl(to, m) }

// SendData ships a data message of the given wire size.
func (g *GCS) SendData(to int, m Msg, size int) { g.sendData(to, m, size) }

// NewRequest registers a pending request and returns its id and mailbox.
func (g *GCS) NewRequest() (uint64, *sim.Mailbox) { return g.newReq() }

// Wake completes a pending request (no-op for unknown ids).
func (g *GCS) Wake(reqID uint64, v any) { g.wake(reqID, v) }

// DropRequest abandons a pending request so a late reply is ignored.
func (g *GCS) DropRequest(reqID uint64) { delete(g.pending, reqID) }

// RedoBytes returns log volume written since the last checkpoint: the
// amount a crash right now would force recovery to replay.
func (g *GCS) RedoBytes() int64 { return g.redoBytes }

// Checkpoint flushes every dirty unpinned owned frame to disk (lazy
// write-backs) and truncates the redo accounting. Returns frames flushed.
func (g *GCS) Checkpoint() (flushed int) {
	g.cache.Each(func(f *Frame) {
		if f.Dirty && f.Pins == 0 && f.WriteOwner {
			g.pager.WriteBack(f.Blk, BlockBytes)
			f.Dirty = false
			flushed++
		}
	})
	g.redoBytes = 0
	return flushed
}

// FenceNode expels dead from this node's master-side state: directory
// entries forget its copies, forward state on its behalf is dropped, and
// every lock its transactions held or waited for is released so survivors
// stop queueing behind a peer that will never answer.
func (g *GCS) FenceNode(dead int) {
	blks := make([]BlockID, 0, len(g.dir))
	for b := range g.dir {
		blks = append(blks, b)
	}
	sort.Slice(blks, blockIDLess(blks))
	for _, b := range blks {
		e := g.dir[b]
		delete(e.holders, dead)
		if e.lastWriter == dead {
			e.lastWriter = -1
		}
		if len(e.holders) == 0 {
			delete(g.dir, b)
		}
	}
	ids := make([]uint64, 0, len(g.pendingFwd))
	for id, st := range g.pendingFwd {
		if st.requester == dead {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		delete(g.pendingFwd, id)
	}
	g.locks.ReleaseNode(dead)
}

// HoldingsHomedAt reports this node's cached copies of blocks homed at
// home, in pool order: the survivors' answers to a remastering sweep.
func (g *GCS) HoldingsHomedAt(home int) []Holding {
	var out []Holding
	g.cache.Each(func(f *Frame) {
		if g.cat.Home(f.Blk) == home {
			out = append(out, Holding{Blk: f.Blk, WriteOwner: f.WriteOwner})
		}
	})
	return out
}

// RegisterHolding records one remastered holding in the local directory
// (surrogate side). Unlike masterRegisterHolder it never revokes anyone:
// the reports describe existing ownership, they do not move it.
func (g *GCS) RegisterHolding(holder int, h Holding) {
	e := g.dir[h.Blk]
	if e == nil {
		e = &dirEntry{holders: make(map[int]bool), lastWriter: -1}
		g.dir[h.Blk] = e
	}
	e.holders[holder] = true
	if h.WriteOwner {
		e.lastWriter = holder
	}
}

// ExportDirHomedAt returns the directory entries for blocks homed at home
// in sorted order: the mastering state a surrogate hands back on rejoin.
func (g *GCS) ExportDirHomedAt(home int) []DirExport {
	var blks []BlockID
	for b := range g.dir {
		if g.cat.Home(b) == home {
			blks = append(blks, b)
		}
	}
	sort.Slice(blks, blockIDLess(blks))
	out := make([]DirExport, 0, len(blks))
	for _, b := range blks {
		e := g.dir[b]
		hs := make([]int, 0, len(e.holders))
		for h := range e.holders {
			hs = append(hs, h)
		}
		sort.Ints(hs)
		out = append(out, DirExport{Blk: b, Holders: hs, LastWriter: e.lastWriter})
	}
	return out
}

// DropDirHomedAt forgets directory entries for blocks homed at home (the
// mastering moved elsewhere).
func (g *GCS) DropDirHomedAt(home int) {
	var blks []BlockID
	for b := range g.dir {
		if g.cat.Home(b) == home {
			blks = append(blks, b)
		}
	}
	sort.Slice(blks, blockIDLess(blks))
	for _, b := range blks {
		delete(g.dir, b)
	}
}

// ImportDir installs handed-back directory entries (rejoining node side).
func (g *GCS) ImportDir(entries []DirExport) {
	for _, de := range entries {
		e := &dirEntry{holders: make(map[int]bool), lastWriter: de.LastWriter}
		for _, h := range de.Holders {
			e.holders[h] = true
		}
		g.dir[de.Blk] = e
	}
}

// DropLocksHomedAt discards lock-master state for resources homed at home
// (surrogate hand-back; the owner rebuilds as traffic arrives).
func (g *GCS) DropLocksHomedAt(home int) {
	g.locks.DropHomedAt(func(r ResourceID) bool {
		return g.cat.Home(BlockID{Table: r.Table, Block: r.Block}) == home
	})
}
