package db

import (
	"testing"

	"dclue/internal/sim"
)

// prewarmHome loads every block of the test table (data + index leaves)
// into its home node's cache so remote accesses become fusion transfers
// rather than disk reads (the loopback harness has no iSCSI path).
func prewarmHome(cl *cluster) {
	t := cl.tbl
	for b := int64(0); b < t.IndexLeafBlocks(); b++ {
		blk := t.IndexLeafBlock(b)
		cl.nodes[cl.cat.Home(blk)].GCS.Prewarm(blk)
	}
	for b := int64(0); b < t.Blocks(); b++ {
		blk := BlockID{t.ID, b}
		cl.nodes[cl.cat.Home(blk)].GCS.Prewarm(blk)
	}
}

// TestWritePingPong exercises the write-ownership (currency) protocol: two
// nodes alternately updating the same row must transfer the current block
// image back and forth even though both keep cached copies.
func TestWritePingPong(t *testing.T) {
	cl := buildCluster(2, 256)
	// Rows homed on node 0; warm both caches.
	for k := int64(0); k < 16; k++ {
		cl.tbl.Insert(k, 0)
	}
	prewarmHome(cl)
	n0, n1 := cl.nodes[0], cl.nodes[1]
	cl.s.Spawn("warm", func(p *sim.Proc) {
		for _, n := range []*Node{n0, n1} {
			txn := n.Begin(p)
			n.Read(p, txn, cl.tbl.ID, 3)
			n.Commit(p, txn)
		}
	})
	cl.s.Run(5 * sim.Second)

	transfersBefore := n0.GCS.Stats.BlockTransfers + n1.GCS.Stats.BlockTransfers
	currencyBefore := n0.GCS.Stats.CurrencyFetches + n1.GCS.Stats.CurrencyFetches

	cl.s.Spawn("pingpong", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			n := n0
			if i%2 == 1 {
				n = n1
			}
			txn := n.Begin(p)
			if _, err := n.Update(p, txn, cl.tbl.ID, 3); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
			n.Commit(p, txn)
		}
	})
	cl.s.Run(60 * sim.Second)
	cl.s.Shutdown()

	currency := n0.GCS.Stats.CurrencyFetches + n1.GCS.Stats.CurrencyFetches - currencyBefore
	if currency < 4 {
		t.Fatalf("alternating writers triggered only %d currency fetches, want >=4", currency)
	}
	transfers := n0.GCS.Stats.BlockTransfers + n1.GCS.Stats.BlockTransfers - transfersBefore
	if transfers < 4 {
		t.Fatalf("ping-pong produced only %d block transfers", transfers)
	}
}

// TestRepeatedLocalWritesNoTraffic: the write owner keeps writing its own
// block without any fabric traffic.
func TestRepeatedLocalWritesNoTraffic(t *testing.T) {
	cl := buildCluster(2, 256)
	for k := int64(0); k < 16; k++ {
		cl.tbl.Insert(k, 0)
	}
	prewarmHome(cl)
	n0 := cl.nodes[0]
	cl.s.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			txn := n0.Begin(p)
			n0.Update(p, txn, cl.tbl.ID, 3)
			n0.Commit(p, txn)
		}
	})
	cl.s.Run(30 * sim.Second)
	cl.s.Shutdown()
	if n0.GCS.Stats.CurrencyFetches != 0 {
		t.Fatalf("sole writer did %d currency fetches", n0.GCS.Stats.CurrencyFetches)
	}
	if n0.GCS.Stats.CtlMsgsSent != 0 {
		t.Fatalf("sole writer on own partition sent %d ctl msgs", n0.GCS.Stats.CtlMsgsSent)
	}
}

// TestReadersUnaffectedByOwnership: snapshot readers use their cached copy
// regardless of who owns the current image (MVCC, §2.1).
func TestReadersUnaffectedByOwnership(t *testing.T) {
	cl := buildCluster(2, 256)
	for k := int64(0); k < 16; k++ {
		cl.tbl.Insert(k, 0)
	}
	prewarmHome(cl)
	n0, n1 := cl.nodes[0], cl.nodes[1]
	// n1 reads once (caches the block), n0 then writes (takes ownership
	// back), then n1 reads again: the second read must be a pure hit.
	cl.s.Spawn("seq", func(p *sim.Proc) {
		txn := n1.Begin(p)
		n1.Read(p, txn, cl.tbl.ID, 3)
		n1.Commit(p, txn)

		txn0 := n0.Begin(p)
		n0.Update(p, txn0, cl.tbl.ID, 3)
		n0.Commit(p, txn0)

		hitsBefore := n1.GCS.Stats.BlockHits
		ctlBefore := n1.GCS.Stats.CtlMsgsSent
		txn2 := n1.Begin(p)
		n1.Read(p, txn2, cl.tbl.ID, 3)
		n1.Commit(p, txn2)
		if n1.GCS.Stats.BlockHits <= hitsBefore {
			t.Error("second read was not a cache hit")
		}
		if n1.GCS.Stats.CtlMsgsSent != ctlBefore {
			t.Error("snapshot read sent messages despite cached copy")
		}
	})
	cl.s.Run(60 * sim.Second)
	cl.s.Shutdown()
}

// TestOwnershipRevokeMessageFlows: when a remote node takes ownership, the
// previous owner receives a revoke and its next write pays a currency
// fetch.
func TestOwnershipRevokeMessageFlows(t *testing.T) {
	cl := buildCluster(2, 256)
	for k := int64(0); k < 16; k++ {
		cl.tbl.Insert(k, 0)
	}
	prewarmHome(cl)
	n0, n1 := cl.nodes[0], cl.nodes[1]
	cl.s.Spawn("seq", func(p *sim.Proc) {
		// n0 (home) writes: becomes owner without traffic.
		txn := n0.Begin(p)
		n0.Update(p, txn, cl.tbl.ID, 5)
		n0.Commit(p, txn)
		// n1 writes: fetch + ownership move; n0 gets revoked.
		txn1 := n1.Begin(p)
		n1.Update(p, txn1, cl.tbl.ID, 5)
		n1.Commit(p, txn1)
		p.Sleep(1 * sim.Second) // let the revoke land
		row, _ := cl.tbl.Lookup(5)
		blk := cl.tbl.BlockOf(row)
		f := n0.Cache.Peek(blk)
		if f == nil {
			t.Error("home lost its cached copy")
			return
		}
		if f.WriteOwner {
			t.Error("previous owner still flagged as write owner after revoke")
		}
	})
	cl.s.Run(60 * sim.Second)
	cl.s.Shutdown()
}
