package db

import (
	"dclue/internal/sim"
	"dclue/internal/trace"
)

// ---- Block access (cache fusion, §2.1 steps 1-4) ----

// GetBlock ensures blk is resident in the local buffer cache, pinned once.
// The calling process blocks for the protocol's duration. A non-nil error
// (ErrFetchFailed) means the protocol kept failing under injected faults;
// nothing is left pinned and the caller aborts the transaction attempt.
func (g *GCS) GetBlock(p *sim.Proc, blk BlockID, forWrite bool) error {
	trace.Enter(p, trace.PhaseGCS)
	err := g.fetch(p, blk, forWrite, false)
	trace.Exit(p)
	return err
}

// GetBlockCreate is GetBlock for a block that has no disk image yet (a
// fresh append target): if nobody holds it, it is formatted in the cache
// instead of being read from disk.
func (g *GCS) GetBlockCreate(p *sim.Proc, blk BlockID) error {
	trace.Enter(p, trace.PhaseGCS)
	err := g.fetch(p, blk, true, true)
	trace.Exit(p)
	return err
}

func (g *GCS) fetch(p *sim.Proc, blk BlockID, forWrite, create bool) error {
	if f := g.cache.Lookup(blk); f != nil {
		if !forWrite || f.WriteOwner {
			g.Stats.BlockHits++
			return nil
		}
		// The copy is stale for writing: write ownership lives elsewhere.
		// Fetch the current image from the last writer (the cache-fusion
		// ping-pong that dominates clustered-DBMS IPC traffic). The frame
		// is pinned, so it cannot vanish while we block.
		g.Stats.CurrencyFetches++
		if err := g.currencyFetch(p, blk); err != nil {
			g.cache.Unpin(blk)
			g.Stats.FetchFails++
			return ErrFetchFailed
		}
		f.WriteOwner = true
		return nil
	}
	// Coalesce concurrent fetches of the same block.
	if waiters, busy := g.inflight[blk]; busy {
		mb := sim.NewMailbox(g.sim)
		g.inflight[blk] = append(waiters, mb)
		mb.Recv(p)
		g.host.Dispatch(p, g.costs.ResumeDispatch)
		if f := g.cache.Lookup(blk); f != nil {
			return nil
		}
		// Evicted between fill and wake (rare), or the fill failed under
		// faults: fall through and fetch on our own behalf.
	}
	g.inflight[blk] = nil

	if g.Gate != nil && !g.Gate(g.cat.Home(blk)) {
		// The home is inside a fence-to-reopen recovery window: fail fast so
		// the transaction retries against recovered state instead of timing
		// out against a master that cannot answer yet.
		delete(g.inflight, blk)
		g.Stats.GateRejects++
		g.Stats.FetchFails++
		return ErrFetchFailed
	}
	master := g.cat.Master(blk)
	var err error
	if master == g.self {
		err = g.localMasterFetch(p, blk, forWrite, create)
	} else {
		err = g.remoteFetch(p, blk, master, forWrite, create)
	}
	if err != nil {
		// Failed fill: wake coalesced waiters so they retry (or fail) on
		// their own behalf instead of parking forever.
		for _, mb := range g.inflight[blk] {
			mb.Send(nil)
		}
		delete(g.inflight, blk)
		g.Stats.FetchFails++
		return ErrFetchFailed
	}

	// Fill complete: admit, wake coalesced waiters.
	f := g.cache.InsertPinned(blk)
	if forWrite || create {
		f.WriteOwner = true
	}
	for _, mb := range g.inflight[blk] {
		mb.Send(nil)
	}
	delete(g.inflight, blk)
	return nil
}

// recvReply waits for the reply to a pending request, bounded by
// FetchTimeout when one is configured. On timeout the pending entry is
// dropped so a late reply is ignored harmlessly (wake on an unknown id is a
// no-op).
func (g *GCS) recvReply(p *sim.Proc, reqID uint64, mb *sim.Mailbox) (any, bool) {
	if g.FetchTimeout <= 0 {
		return mb.Recv(p), true
	}
	v, ok := mb.RecvTimeout(p, g.FetchTimeout)
	if !ok {
		delete(g.pending, reqID)
		g.Stats.FetchTimeouts++
	}
	return v, ok
}

// currencyFetch obtains the current image of a block we already hold a
// stale copy of: a directory exchange plus a data transfer from the last
// writer, but never a disk read (our copy plus the log are current enough
// if the writer is gone).
func (g *GCS) currencyFetch(p *sim.Proc, blk BlockID) error {
	if g.Gate != nil && !g.Gate(g.cat.Home(blk)) {
		g.Stats.GateRejects++
		return ErrFetchFailed
	}
	master := g.cat.Master(blk)
	if master == g.self {
		g.host.Execute(p, g.costs.DirLookup)
		e := g.dir[blk]
		supplier := -1
		if e != nil && e.lastWriter >= 0 && e.lastWriter != g.self && e.holders[e.lastWriter] {
			supplier = e.lastWriter
		}
		if supplier >= 0 {
			for attempt := 0; ; attempt++ {
				reqID, mb := g.newReq()
				g.sendCtl(supplier, MsgBlkFwd{ReqID: reqID, DestReqID: reqID, Blk: blk, Requester: g.self})
				v, ok := g.recvReply(p, reqID, mb)
				g.host.Dispatch(p, g.costs.ResumeDispatch)
				if ok {
					if v != "neg" {
						g.Stats.BlockTransfers++
					}
					break
				}
				if attempt >= g.MaxFetchRetries {
					// The supplier is unreachable: our copy plus the log are
					// current enough once the writer is effectively gone.
					break
				}
			}
		}
		g.masterRegisterHolder(blk, g.self, true)
		return nil
	}
	for attempt := 0; ; attempt++ {
		reqID, mb := g.newReq()
		g.sendCtl(master, MsgBlkReq{ReqID: reqID, Blk: blk, ForWrite: true, HaveCopy: true})
		v, ok := g.recvReply(p, reqID, mb)
		g.host.Dispatch(p, g.costs.ResumeDispatch)
		if ok {
			if v != "neg" {
				g.Stats.BlockTransfers++
			}
			g.sendCtl(master, MsgBlkAck{Blk: blk, Holder: g.self, ForWrite: true})
			return nil
		}
		if attempt >= g.MaxFetchRetries {
			return ErrFetchFailed
		}
	}
}

// revokeOwnership clears the local write-owner flag: another node now holds
// the current image.
func (g *GCS) revokeOwnership(blk BlockID) {
	if f := g.cache.Peek(blk); f != nil {
		f.WriteOwner = false
	}
}

// localMasterFetch handles A == B: the directory is local.
func (g *GCS) localMasterFetch(p *sim.Proc, blk BlockID, forWrite, create bool) error {
	g.host.Execute(p, g.costs.DirLookup)
	supplier := g.pickSupplier(blk, g.self)
	if supplier < 0 {
		// No holder anywhere: disk read (step 2), local disk since we are
		// the home — unless the block is brand new and formatted in place.
		if !create {
			g.Stats.BlockDiskReads++
			if err := g.pager.ReadBlock(p, blk, BlockBytes); err != nil {
				return err
			}
			g.host.Dispatch(p, g.costs.ResumeDispatch)
		}
		g.masterRegisterHolder(blk, g.self, forWrite)
		return nil
	}
	// Step 3 with B == A: ask C directly, wait for the data.
	reqID, mb := g.newReq()
	g.sendCtl(supplier, MsgBlkFwd{ReqID: reqID, DestReqID: reqID, Blk: blk, Requester: g.self})
	v, ok := g.recvReply(p, reqID, mb)
	g.host.Dispatch(p, g.costs.ResumeDispatch)
	if !ok || v == "neg" {
		// Supplier lost the block (or the exchange timed out under faults)
		// and we are the master: fall back to disk.
		g.Stats.BlockDiskReads++
		if err := g.pager.ReadBlock(p, blk, BlockBytes); err != nil {
			return err
		}
		g.host.Dispatch(p, g.costs.ResumeDispatch)
	} else {
		g.Stats.BlockTransfers++
	}
	g.masterRegisterHolder(blk, g.self, forWrite)
	return nil
}

// remoteFetch handles A != B: full message protocol. A timed-out exchange
// is reissued from step 1 with a fresh request id (a late XFER or NEG for
// the stale id is dropped by wake) up to MaxFetchRetries times.
func (g *GCS) remoteFetch(p *sim.Proc, blk BlockID, master int, forWrite, create bool) error {
	for attempt := 0; ; attempt++ {
		reqID, mb := g.newReq()
		g.sendCtl(master, MsgBlkReq{ReqID: reqID, Blk: blk, ForWrite: forWrite})
		v, ok := g.recvReply(p, reqID, mb)
		g.host.Dispatch(p, g.costs.ResumeDispatch)
		if !ok {
			if attempt >= g.MaxFetchRetries {
				return ErrFetchFailed
			}
			continue
		}
		if v == "neg" {
			// Step 2: read from the home node's disk over iSCSI — unless the
			// block is brand new and formatted in place.
			if !create {
				g.Stats.BlockDiskReads++
				if err := g.pager.ReadBlock(p, blk, BlockBytes); err != nil {
					return err
				}
				g.host.Dispatch(p, g.costs.ResumeDispatch)
			}
		} else {
			g.Stats.BlockTransfers++
		}
		// Step 4: tell the directory we hold it now.
		g.sendCtl(master, MsgBlkAck{Blk: blk, Holder: g.self, ForWrite: forWrite})
		return nil
	}
}

// pickSupplier chooses a current holder other than requester, preferring
// the last writer (most recent copy), then the lowest node id for
// determinism. Returns -1 if none.
func (g *GCS) pickSupplier(blk BlockID, requester int) int {
	e := g.dir[blk]
	if e == nil {
		return -1
	}
	if e.lastWriter != requester && e.holders[e.lastWriter] {
		return e.lastWriter
	}
	best := -1
	for h := range e.holders {
		if h == requester {
			continue
		}
		if best < 0 || h < best {
			best = h
		}
	}
	return best
}

// masterBlockReq serves step 1 at the directory master.
func (g *GCS) masterBlockReq(from int, m MsgBlkReq) {
	var supplier int
	if m.HaveCopy {
		// Currency fetch: only the last writer's image improves on the
		// requester's own copy.
		supplier = -1
		if e := g.dir[m.Blk]; e != nil && e.lastWriter >= 0 &&
			e.lastWriter != from && e.holders[e.lastWriter] {
			supplier = e.lastWriter
		}
	} else {
		supplier = g.pickSupplier(m.Blk, from)
	}
	if supplier < 0 {
		g.sendCtl(from, MsgBlkNeg{ReqID: m.ReqID})
		return
	}
	if supplier == g.self {
		// Master itself supplies: ship data directly (C == B).
		g.sendData(from, MsgBlkXfer{ReqID: m.ReqID, Blk: m.Blk},
			BlockBytes+g.vm.VersionBytes(m.Blk))
		return
	}
	g.nextReq++
	fid := g.nextReq
	g.pendingFwd[fid] = &fwdState{
		requester: from, blk: m.Blk, forWrite: m.ForWrite,
		tried: map[int]bool{supplier: true}, reqID: m.ReqID,
	}
	g.sendCtl(supplier, MsgBlkFwd{ReqID: fid, DestReqID: m.ReqID, Blk: m.Blk, Requester: from})
}

// holderForward serves step 3 at the supplier C.
func (g *GCS) holderForward(from int, m MsgBlkFwd) {
	if !g.cache.Contains(m.Blk) {
		// Raced an eviction; tell the master (or the requester when the
		// master asked on its own behalf).
		if m.Requester == from {
			g.sendCtl(from, MsgBlkNeg{ReqID: m.ReqID})
		} else {
			g.sendCtl(from, MsgBlkFwdFail{ReqID: m.ReqID, Blk: m.Blk, Requester: m.Requester})
		}
		return
	}
	size := BlockBytes + g.vm.VersionBytes(m.Blk)
	g.sendData(m.Requester, MsgBlkXfer{ReqID: m.DestReqID, Blk: m.Blk}, size)
}

// masterFwdFail retries with another supplier or negs the requester.
func (g *GCS) masterFwdFail(from int, m MsgBlkFwdFail) {
	st, ok := g.pendingFwd[m.ReqID]
	if !ok {
		return
	}
	g.masterEvict(st.blk, from)
	// Retry an untried holder.
	e := g.dir[st.blk]
	next := -1
	if e != nil {
		for h := range e.holders {
			if h == st.requester || st.tried[h] {
				continue
			}
			if next < 0 || h < next {
				next = h
			}
		}
	}
	if next < 0 {
		delete(g.pendingFwd, m.ReqID)
		g.sendCtl(st.requester, MsgBlkNeg{ReqID: st.reqID})
		return
	}
	st.tried[next] = true
	if next == g.self {
		delete(g.pendingFwd, m.ReqID)
		g.sendData(st.requester, MsgBlkXfer{ReqID: st.reqID, Blk: st.blk},
			BlockBytes+g.vm.VersionBytes(st.blk))
		return
	}
	g.sendCtl(next, MsgBlkFwd{ReqID: m.ReqID, DestReqID: st.reqID, Blk: st.blk, Requester: st.requester})
}

// masterRegisterHolder records a new holder (step 4 / local fill), moving
// write ownership when the access was a write: the previous owner is told
// its image is no longer current. Also reaps any pendingFwd entries that
// completed (XFER went straight to the requester, so the master learns
// completion from the ack).
func (g *GCS) masterRegisterHolder(blk BlockID, holder int, forWrite bool) {
	e := g.dir[blk]
	if e == nil {
		e = &dirEntry{holders: make(map[int]bool), lastWriter: -1}
		g.dir[blk] = e
	}
	e.holders[holder] = true
	if forWrite && e.lastWriter != holder {
		prev := e.lastWriter
		e.lastWriter = holder
		if prev >= 0 {
			if prev == g.self {
				g.revokeOwnership(blk)
			} else {
				g.sendCtl(prev, MsgOwnerRevoke{Blk: blk})
			}
		}
	}
	for id, st := range g.pendingFwd {
		if st.blk == blk && st.requester == holder {
			delete(g.pendingFwd, id)
		}
	}
}

// Prewarm admits a self-homed block into the local cache and directory at
// build time (no messages involved); the home starts as write owner.
// Returns false when the cache is full.
func (g *GCS) Prewarm(blk BlockID) bool {
	if g.cat.Home(blk) != g.self {
		return false
	}
	if !g.cache.InsertWarm(blk) {
		return false
	}
	if f := g.cache.Peek(blk); f != nil {
		f.WriteOwner = true
	}
	g.masterRegisterHolder(blk, g.self, true)
	return true
}

// masterEvict removes a holder from the directory.
func (g *GCS) masterEvict(blk BlockID, holder int) {
	e := g.dir[blk]
	if e == nil {
		return
	}
	delete(e.holders, holder)
	if len(e.holders) == 0 {
		delete(g.dir, blk)
	}
}

// OnEvict is the buffer cache's eviction callback: write back dirty data
// and notify the directory (§2.1: "if A had to evict a block ... it informs
// B of that too").
func (g *GCS) OnEvict(blk BlockID, dirty bool) {
	if dirty {
		g.pager.WriteBack(blk, BlockBytes)
	}
	master := g.cat.Master(blk)
	if master == g.self {
		g.masterEvict(blk, g.self)
		return
	}
	g.sendCtl(master, MsgEvict{Blk: blk, Holder: g.self})
}

// ---- Global locks ----

// AcquireLock requests an X/S lock on res for txn. If wait is true the
// caller blocks until granted or the deadlock timeout expires; if false a
// would-block request is denied immediately (the paper's
// release-and-retry path for later locks in a sequence). Returns whether
// the lock was granted and whether the caller had to wait for it.
func (g *GCS) AcquireLock(p *sim.Proc, txn TxnRef, res ResourceID, mode LockMode, wait bool) (granted, waited bool) {
	trace.Enter(p, trace.PhaseLock)
	granted, waited = g.acquireLock(p, txn, res, mode, wait)
	trace.Exit(p)
	return granted, waited
}

func (g *GCS) acquireLock(p *sim.Proc, txn TxnRef, res ResourceID, mode LockMode, wait bool) (granted, waited bool) {
	if g.Gate != nil && !g.Gate(g.cat.Home(BlockID{res.Table, res.Block})) {
		g.Stats.GateRejects++
		g.Stats.LockFails++
		g.Stats.noteFail(res.Table)
		return false, false
	}
	master := g.cat.Master(BlockID{res.Table, res.Block})
	start := g.sim.Now()
	if master == g.self {
		g.host.Execute(p, g.costs.LockRequest)
		done := false
		syncWait := false
		mb := sim.NewMailbox(g.sim)
		g.locks.Request(res, txn, mode, func(w bool) {
			done = true
			syncWait = w
			if w {
				mb.Send(nil)
			}
		})
		if done && !syncWait {
			return true, false
		}
		if !wait {
			g.locks.Cancel(res, txn)
			g.Stats.LockFails++
			g.Stats.noteFail(res.Table)
			return false, false
		}
		g.Stats.LockWaits++
		g.Stats.noteWait(res.Table)
		if _, ok := mb.RecvTimeout(p, g.DeadlockTimeout); !ok {
			g.locks.Cancel(res, txn)
			g.Stats.LockFails++
			g.Stats.noteFail(res.Table)
			g.recordLockWait(start)
			g.host.Dispatch(p, g.costs.ResumeDispatch)
			return false, true
		}
		g.recordLockWait(start)
		g.host.Dispatch(p, g.costs.ResumeDispatch)
		return true, true
	}

	// Remote master.
	reqID, mb := g.newReq()
	g.sendCtl(master, MsgLockReq{ReqID: reqID, Res: res, Txn: txn, Mode: mode, NoWait: !wait})
	v, ok := mb.RecvTimeout(p, g.DeadlockTimeout)
	g.host.Dispatch(p, g.costs.ResumeDispatch)
	if !ok {
		delete(g.pending, reqID)
		g.sendCtl(master, MsgLockCancel{Res: res, Txn: txn})
		g.Stats.LockFails++
		g.Stats.noteFail(res.Table)
		g.Stats.LockWaits++
		g.Stats.noteWait(res.Table)
		g.recordLockWait(start)
		return false, true
	}
	switch r := v.(type) {
	case MsgLockGrant:
		if r.Waited {
			g.Stats.LockWaits++
			g.Stats.noteWait(res.Table)
			g.recordLockWait(start)
		}
		return true, r.Waited
	case MsgLockDeny:
		g.Stats.LockFails++
		g.Stats.noteFail(res.Table)
		return false, false
	}
	return false, false
}

// masterLockReq serves a remote lock request.
func (g *GCS) masterLockReq(from int, m MsgLockReq) {
	if m.NoWait {
		granted := false
		g.locks.Request(m.Res, m.Txn, m.Mode, func(w bool) { granted = true })
		if granted {
			g.sendCtl(from, MsgLockGrant{ReqID: m.ReqID})
		} else {
			g.locks.Cancel(m.Res, m.Txn)
			g.sendCtl(from, MsgLockDeny{ReqID: m.ReqID})
		}
		return
	}
	g.locks.Request(m.Res, m.Txn, m.Mode, func(w bool) {
		g.sendCtl(from, MsgLockGrant{ReqID: m.ReqID, Waited: w})
	})
}

// ReleaseLocks drops every lock txn holds: local releases plus one batched
// control message per remote master.
func (g *GCS) ReleaseLocks(txn TxnRef, held []ResourceID) {
	perMaster := make(map[int][]ResourceID)
	for _, r := range held {
		m := g.cat.Master(BlockID{r.Table, r.Block})
		if m == g.self {
			g.locks.Release(r, txn)
		} else {
			perMaster[m] = append(perMaster[m], r)
		}
	}
	// Deterministic send order.
	for m := 0; m < g.cat.Nodes(); m++ {
		if rs, ok := perMaster[m]; ok {
			g.sendCtl(m, MsgLockRelease{Txn: txn, Res: rs})
		}
	}
}

// ---- Logging ----

// WriteLog makes size bytes of log durable before returning: on the local
// log disk, or at the central log node over the fabric (Fig 9). When the
// central node stops answering (injected faults), the write is retried and
// finally falls back to the local log device so commits keep making
// progress instead of wedging the cluster on one unreachable node.
func (g *GCS) WriteLog(p *sim.Proc, size int) {
	trace.Enter(p, trace.PhaseDisk)
	g.writeLog(p, size)
	trace.Exit(p)
}

func (g *GCS) writeLog(p *sim.Proc, size int) {
	g.redoBytes += int64(size)
	if g.CentralLogNode < 0 || g.CentralLogNode == g.self {
		g.writeLocalLog(p, size)
		return
	}
	for attempt := 0; ; attempt++ {
		reqID, mb := g.newReq()
		g.sendData(g.CentralLogNode, MsgLogWrite{ReqID: reqID, From: g.self, Size: size}, size)
		_, ok := g.recvReply(p, reqID, mb)
		g.host.Dispatch(p, g.costs.ResumeDispatch)
		if ok {
			return
		}
		if attempt >= g.MaxFetchRetries {
			g.Stats.LogFallbacks++
			g.writeLocalLog(p, size)
			return
		}
	}
}

// writeLocalLog blocks until the local log device reports durability.
func (g *GCS) writeLocalLog(p *sim.Proc, size int) {
	mb := sim.NewMailbox(g.sim)
	g.logDisk.Submit(size, func() { mb.Send(nil) })
	mb.Recv(p)
	g.host.Dispatch(p, g.costs.ResumeDispatch)
}
