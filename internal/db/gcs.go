package db

import (
	"errors"

	"dclue/internal/sim"
	"dclue/internal/stats"
	"dclue/internal/telemetry"
)

// ErrFetchFailed aborts the current transaction attempt: a block fetch kept
// timing out or failing (lost XFER, unreachable supplier, failing disk)
// after exhausting the bounded retries. Like ErrLockFailed, the caller
// releases everything and retries after a delay.
var ErrFetchFailed = errors.New("db: block fetch failed")

// Transport carries IPC messages between nodes' GCS instances. The core
// package implements it over the per-pair IPC TCP connections; tests use a
// loopback. Control messages are CtlMsgBytes on the wire; data messages
// carry a block plus version payload.
type Transport interface {
	Self() int
	// Send delivers m to node to's GCS.HandleMessage. size is the wire
	// payload; data distinguishes block transfers from control messages.
	Send(to int, m Msg, size int, data bool)
}

// CtlMsgBytes is the size of IPC control messages (§3.2: "about 250 bytes").
const CtlMsgBytes = 250

// Msg is any inter-node GCS message.
type Msg interface{ isMsg() }

// Directory / cache-fusion messages (§2.1's numbered protocol).
type (
	// MsgBlkReq: A asks directory master B for block X. HaveCopy says A
	// already holds a (stale) copy and only needs the current image for
	// writing; a negative response then means "your copy is current
	// enough", not "read from disk".
	MsgBlkReq struct {
		ReqID    uint64
		Blk      BlockID
		ForWrite bool
		HaveCopy bool
	}
	// MsgBlkNeg: negative response; A must read from disk.
	MsgBlkNeg struct{ ReqID uint64 }
	// MsgBlkFwd: B asks holder C to supply the block to Requester. ReqID
	// identifies B's forward state (echoed in MsgBlkFwdFail); DestReqID is
	// the requester's own pending id, which must ride the MsgBlkXfer so A
	// can match the arriving block to its wait.
	MsgBlkFwd struct {
		ReqID     uint64
		DestReqID uint64
		Blk       BlockID
		Requester int
	}
	// MsgBlkFwdFail: C no longer holds the block; B retries.
	MsgBlkFwdFail struct {
		ReqID     uint64
		Blk       BlockID
		Requester int
	}
	// MsgBlkXfer: C ships the block (data message) to A.
	MsgBlkXfer struct {
		ReqID uint64
		Blk   BlockID
	}
	// MsgBlkAck: A tells B it now holds the block (step 4).
	MsgBlkAck struct {
		Blk      BlockID
		Holder   int
		ForWrite bool
	}
	// MsgEvict: a node dropped its copy; master updates the directory.
	MsgEvict struct {
		Blk    BlockID
		Holder int
	}
	// MsgOwnerRevoke: write ownership of a block moved to another node;
	// the previous owner keeps its copy for snapshot reads but must fetch
	// the current image before writing again.
	MsgOwnerRevoke struct {
		Blk BlockID
	}
)

// Global lock messages.
type (
	// MsgLockReq asks the master for a lock.
	MsgLockReq struct {
		ReqID  uint64
		Res    ResourceID
		Txn    TxnRef
		Mode   LockMode
		NoWait bool
	}
	// MsgLockGrant grants a request; Waited says it queued first.
	MsgLockGrant struct {
		ReqID  uint64
		Waited bool
	}
	// MsgLockDeny refuses a NoWait request that would queue.
	MsgLockDeny struct{ ReqID uint64 }
	// MsgLockCancel withdraws a waiting request (timeout at requester).
	MsgLockCancel struct {
		Res ResourceID
		Txn TxnRef
	}
	// MsgLockRelease drops all of a transaction's locks mastered at the
	// destination (sent once per master at commit).
	MsgLockRelease struct {
		Txn TxnRef
		Res []ResourceID
	}
)

// Centralized logging messages (Fig 9).
type (
	// MsgLogWrite carries a log record to the central log node.
	MsgLogWrite struct {
		ReqID uint64
		From  int
		Size  int
	}
	// MsgLogDone acknowledges durability.
	MsgLogDone struct{ ReqID uint64 }
)

// Recovery messages (crash fencing, remastering, log replay, rejoin). The
// GCS transports and prices them like any other IPC; the recovery
// coordinator in core drives the protocol through the OnClusterMsg hook.
type (
	// MsgFence: the coordinator tells a survivor to fence Dead — drop it
	// from directories, release its locks, stop talking to it.
	MsgFence struct {
		ReqID uint64
		Dead  int
	}
	// MsgFenceAck confirms the fence took effect on From.
	MsgFenceAck struct {
		ReqID uint64
		From  int
	}
	// MsgRemasterReq: the surrogate master asks a survivor to report its
	// cached holdings homed at Dead so the directory can be rebuilt.
	MsgRemasterReq struct {
		ReqID uint64
		Dead  int
	}
	// MsgRemaster ships one batch of holdings (control-plane bulk data).
	MsgRemaster struct {
		ReqID    uint64
		From     int
		Holdings []Holding
	}
	// MsgRemasterDone ends a survivor's holdings stream.
	MsgRemasterDone struct {
		ReqID uint64
		From  int
	}
	// MsgReplayReq asks the buddy (dual-ported enclosure server) to scan
	// Bytes of the dead node's redo log off its log device.
	MsgReplayReq struct {
		ReqID uint64
		Dead  int
		Bytes int64
	}
	// MsgReplayChunk streams scanned log back (data message).
	MsgReplayChunk struct {
		ReqID uint64
		Bytes int
		Last  bool
	}
	// MsgJoinReq: a restarted node asks the coordinator to re-admit it.
	MsgJoinReq struct {
		ReqID uint64
		Node  int
	}
	// MsgJoinDir hands a batch of directory entries for the joiner's
	// partition back from the surrogate.
	MsgJoinDir struct {
		ReqID   uint64
		Entries []DirExport
	}
	// MsgJoinOK completes re-admission. The coordinator sends it to the
	// joiner (echoing its ReqID) and broadcasts it to survivors (ReqID 0),
	// who clear their fences and failover routes for Node.
	MsgJoinOK struct {
		ReqID uint64
		Node  int
	}
	// MsgRecoveryOpen: the coordinator tells survivors that Dead's partition
	// is open again under surrogate mastering — their gates lift and
	// requests flow to the surrogate instead of failing fast.
	MsgRecoveryOpen struct {
		Dead int
	}
)

// Holding reports one cached block during remastering.
type Holding struct {
	Blk        BlockID
	WriteOwner bool
}

// DirExport is one directory entry shipped during mastering hand-back.
type DirExport struct {
	Blk        BlockID
	Holders    []int // sorted
	LastWriter int
}

func (MsgFence) isMsg()        {}
func (MsgFenceAck) isMsg()     {}
func (MsgRemasterReq) isMsg()  {}
func (MsgRemaster) isMsg()     {}
func (MsgRemasterDone) isMsg() {}
func (MsgReplayReq) isMsg()    {}
func (MsgReplayChunk) isMsg()  {}
func (MsgJoinReq) isMsg()      {}
func (MsgJoinDir) isMsg()      {}
func (MsgJoinOK) isMsg()       {}
func (MsgRecoveryOpen) isMsg() {}

func (MsgBlkReq) isMsg()      {}
func (MsgBlkNeg) isMsg()      {}
func (MsgBlkFwd) isMsg()      {}
func (MsgBlkFwdFail) isMsg()  {}
func (MsgBlkXfer) isMsg()     {}
func (MsgBlkAck) isMsg()      {}
func (MsgEvict) isMsg()       {}
func (MsgOwnerRevoke) isMsg() {}
func (MsgLockReq) isMsg()     {}
func (MsgLockGrant) isMsg()   {}
func (MsgLockDeny) isMsg()    {}
func (MsgLockCancel) isMsg()  {}
func (MsgLockRelease) isMsg() {}
func (MsgLogWrite) isMsg()    {}
func (MsgLogDone) isMsg()     {}

// dirEntry is the master-side directory record for one block.
type dirEntry struct {
	holders    map[int]bool
	lastWriter int
}

// GCSStats aggregates one node's IPC and locking measurements.
type GCSStats struct {
	CtlMsgsSent  uint64
	DataMsgsSent uint64
	DataBytes    uint64

	BlockHits       uint64 // local buffer cache hits
	BlockTransfers  uint64 // blocks received via cache fusion
	BlockDiskReads  uint64 // blocks fetched from disk
	CurrencyFetches uint64 // current-image fetches for writes to stale copies

	LockWaits    uint64
	LockWaitTime stats.Tally // seconds per wait
	LockFails    uint64

	// Fault-tolerance counters: protocol replies that timed out, fetches
	// abandoned after exhausting retries, and commits whose central log
	// write fell back to the local log device.
	FetchTimeouts uint64
	FetchFails    uint64
	LogFallbacks  uint64

	// GateRejects counts requests refused fast because their master was
	// inside a fence-to-reopen recovery window (failover fast-fail).
	GateRejects uint64

	// Per-table contention breakdown (diagnostics).
	WaitsByTable map[TableID]uint64
	FailsByTable map[TableID]uint64
}

// noteWait records a lock wait on a table.
func (s *GCSStats) noteWait(t TableID) {
	if s.WaitsByTable == nil {
		s.WaitsByTable = make(map[TableID]uint64)
	}
	s.WaitsByTable[t]++
}

// noteFail records a lock failure on a table.
func (s *GCSStats) noteFail(t TableID) {
	if s.FailsByTable == nil {
		s.FailsByTable = make(map[TableID]uint64)
	}
	s.FailsByTable[t]++
}

// GCS is one node's global cache+lock service: the requester side used by
// the executor, and the master side for blocks and locks homed here.
type GCS struct {
	sim   *sim.Sim
	self  int
	cat   *Catalog
	host  Host
	tr    Transport
	cache *BufferCache
	pager *Pager
	vm    *VersionManager
	locks *LockService
	costs *OpCosts

	dir        map[BlockID]*dirEntry
	pendingFwd map[uint64]*fwdState

	nextReq  uint64
	pending  map[uint64]*sim.Mailbox
	inflight map[BlockID][]*sim.Mailbox

	// DeadlockTimeout bounds the blocking wait on a transaction's first
	// contended lock; expiry is treated as a deadlock-suspected failure.
	DeadlockTimeout sim.Time

	// FetchTimeout bounds each wait for a block-protocol or log reply; 0
	// waits forever (safe only on a fault-free fabric). MaxFetchRetries is
	// how many times a timed-out exchange is reissued before the fetch
	// fails with ErrFetchFailed.
	FetchTimeout    sim.Time
	MaxFetchRetries int

	// CentralLogNode >= 0 routes every commit's log write to that node
	// (Fig 9); -1 logs locally.
	CentralLogNode int
	logDisk        LogDevice

	// Gate, when set, vets the home node of every fetch and lock request.
	// A false return fails the request immediately (ErrFetchFailed /
	// ErrLockFailed) instead of letting it time out against a node inside a
	// fence-to-reopen recovery window. It receives the home (not the
	// surrogate) so fenced-partition requests fail fast even after a
	// surrogate takes over mastering.
	Gate func(home int) bool

	// OnClusterMsg, when set, receives recovery-protocol messages (fence,
	// remaster, replay, join) that the GCS itself does not interpret. The
	// cluster's recovery coordinator installs it.
	OnClusterMsg func(from int, m Msg)

	// redoBytes accumulates log volume written since the last checkpoint:
	// the amount a crash at this instant would force recovery to replay.
	redoBytes int64

	// tel, when set, records message rates and lock-wait timelines. Nil on
	// untelemetered runs (the fast path).
	tel *telemetry.GCSTel

	Stats GCSStats
}

// LogDevice is the slice of disk.LogDisk the GCS needs (allows tests to
// stub it).
type LogDevice interface {
	Submit(size int, done func())
}

// NewGCS assembles a node's global cache service.
func NewGCS(s *sim.Sim, self int, cat *Catalog, host Host, cache *BufferCache,
	pager *Pager, vm *VersionManager, costs *OpCosts, logDisk LogDevice) *GCS {
	return &GCS{
		sim:             s,
		self:            self,
		cat:             cat,
		host:            host,
		cache:           cache,
		pager:           pager,
		vm:              vm,
		locks:           NewLockService(),
		costs:           costs,
		dir:             make(map[BlockID]*dirEntry),
		pendingFwd:      make(map[uint64]*fwdState),
		pending:         make(map[uint64]*sim.Mailbox),
		inflight:        make(map[BlockID][]*sim.Mailbox),
		DeadlockTimeout: 500 * sim.Millisecond,
		MaxFetchRetries: 2,
		CentralLogNode:  -1,
		logDisk:         logDisk,
	}
}

// SetTransport wires the IPC transport (done by the cluster assembly after
// all nodes exist).
func (g *GCS) SetTransport(tr Transport) { g.tr = tr }

// SetTelemetry attaches a GCS instrument (nil detaches). The cluster
// re-attaches it when a crashed node boots a fresh engine.
func (g *GCS) SetTelemetry(t *telemetry.GCSTel) { g.tel = t }

// recordLockWait charges the elapsed wait to stats and, when telemetry is
// attached, to the lock-wait timeline.
func (g *GCS) recordLockWait(start sim.Time) {
	g.Stats.LockWaitTime.Add((g.sim.Now() - start).Seconds())
	if g.tel != nil {
		g.tel.OnLockWait(start, g.sim.Now())
	}
}

// Locks exposes the master-side lock service (tests, stats).
func (g *GCS) Locks() *LockService { return g.locks }

type fwdState struct {
	requester int
	blk       BlockID
	forWrite  bool
	tried     map[int]bool
	reqID     uint64 // requester-side request id
}

// sendCtl charges send-side handling and ships a control message.
func (g *GCS) sendCtl(to int, m Msg) {
	g.Stats.CtlMsgsSent++
	if g.tel != nil {
		g.tel.OnCtlMsg(g.sim.Now())
	}
	g.host.Process(g.costs.CtlMsgHandle, func() { g.tr.Send(to, m, CtlMsgBytes, false) })
}

// sendData charges send-side handling and ships a data message.
func (g *GCS) sendData(to int, m Msg, size int) {
	g.Stats.DataMsgsSent++
	g.Stats.DataBytes += uint64(size)
	if g.tel != nil {
		g.tel.OnDataMsg(g.sim.Now())
	}
	g.host.Process(g.costs.DataMsgHandle, func() { g.tr.Send(to, m, size, true) })
}

// HandleMessage is the inbound entry point (kernel context); it charges
// receive-side handling then dispatches.
func (g *GCS) HandleMessage(from int, m Msg) {
	cost := g.costs.CtlMsgHandle
	if _, ok := m.(MsgBlkXfer); ok {
		cost = g.costs.DataMsgHandle
	}
	if _, ok := m.(MsgLogWrite); ok {
		cost = g.costs.DataMsgHandle
	}
	if _, ok := m.(MsgReplayChunk); ok {
		cost = g.costs.DataMsgHandle
	}
	g.host.Process(cost, func() { g.dispatch(from, m) })
}

// dispatch routes one message after CPU processing.
func (g *GCS) dispatch(from int, m Msg) {
	switch msg := m.(type) {
	case MsgFence, MsgFenceAck, MsgRemasterReq, MsgRemaster, MsgRemasterDone,
		MsgReplayReq, MsgReplayChunk, MsgJoinReq, MsgJoinDir, MsgJoinOK,
		MsgRecoveryOpen:
		if g.OnClusterMsg != nil {
			g.OnClusterMsg(from, m)
		}
	case MsgBlkReq:
		g.masterBlockReq(from, msg)
	case MsgBlkNeg:
		// Negative: requester reads from disk; wake it with "neg".
		g.wake(msg.ReqID, "neg")
	case MsgBlkFwd:
		g.holderForward(from, msg)
	case MsgBlkFwdFail:
		g.masterFwdFail(from, msg)
	case MsgBlkXfer:
		g.wake(msg.ReqID, "xfer")
	case MsgBlkAck:
		g.masterRegisterHolder(msg.Blk, msg.Holder, msg.ForWrite)
	case MsgEvict:
		g.masterEvict(msg.Blk, msg.Holder)
	case MsgOwnerRevoke:
		g.revokeOwnership(msg.Blk)
	case MsgLockReq:
		g.masterLockReq(from, msg)
	case MsgLockGrant:
		g.wake(msg.ReqID, msg)
	case MsgLockDeny:
		g.wake(msg.ReqID, msg)
	case MsgLockCancel:
		g.locks.Cancel(msg.Res, msg.Txn)
	case MsgLockRelease:
		for _, r := range msg.Res {
			g.locks.Release(r, msg.Txn)
		}
	case MsgLogWrite:
		g.logDisk.Submit(msg.Size, func() {
			g.sendCtl(msg.From, MsgLogDone{ReqID: msg.ReqID})
		})
	case MsgLogDone:
		g.wake(msg.ReqID, "logged")
	}
}

// wake completes a pending request.
func (g *GCS) wake(reqID uint64, v any) {
	if mb, ok := g.pending[reqID]; ok {
		delete(g.pending, reqID)
		mb.Send(v)
	}
}

// newReq registers a pending request mailbox.
func (g *GCS) newReq() (uint64, *sim.Mailbox) {
	g.nextReq++
	mb := sim.NewMailbox(g.sim)
	g.pending[g.nextReq] = mb
	return g.nextReq, mb
}
