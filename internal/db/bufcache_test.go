package db

import "testing"

func blk(t TableID, b int64) BlockID { return BlockID{t, b} }

func TestCacheHitMiss(t *testing.T) {
	bc := NewBufferCache(16, nil)
	if bc.Lookup(blk(0, 1)) != nil {
		t.Fatal("hit on empty cache")
	}
	f := bc.InsertPinned(blk(0, 1))
	if f.Pins != 1 {
		t.Fatalf("pins %d", f.Pins)
	}
	bc.Unpin(blk(0, 1))
	if g := bc.Lookup(blk(0, 1)); g == nil || g != f {
		t.Fatal("miss after insert")
	}
	if bc.Hits != 1 || bc.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", bc.Hits, bc.Misses)
	}
	if r := bc.HitRatio(); r != 0.5 {
		t.Fatalf("hit ratio %v", r)
	}
}

func TestCacheEvictsUnpinned(t *testing.T) {
	var evicted []BlockID
	bc := NewBufferCache(8, func(b BlockID, dirty bool) { evicted = append(evicted, b) })
	for i := int64(0); i < 20; i++ {
		bc.InsertPinned(blk(0, i))
		bc.Unpin(blk(0, i))
	}
	if bc.Len() > 8 {
		t.Fatalf("cache grew to %d frames", bc.Len())
	}
	if len(evicted) != 12 {
		t.Fatalf("evicted %d, want 12", len(evicted))
	}
}

func TestCachePinnedNotEvicted(t *testing.T) {
	bc := NewBufferCache(8, nil)
	for i := int64(0); i < 8; i++ {
		bc.InsertPinned(blk(0, i)) // all pinned
	}
	bc.InsertPinned(blk(0, 100)) // must over-commit, not evict pinned
	for i := int64(0); i < 8; i++ {
		if !bc.Contains(blk(0, i)) {
			t.Fatalf("pinned block %d evicted", i)
		}
	}
}

func TestCacheDirtyEvictionCallback(t *testing.T) {
	var dirtyEv int
	bc := NewBufferCache(8, func(b BlockID, dirty bool) {
		if dirty {
			dirtyEv++
		}
	})
	f := bc.InsertPinned(blk(0, 1))
	f.Dirty = true
	bc.Unpin(blk(0, 1))
	for i := int64(2); i < 30; i++ {
		bc.InsertPinned(blk(0, i))
		bc.Unpin(blk(0, i))
	}
	if dirtyEv != 1 {
		t.Fatalf("dirty evictions %d", dirtyEv)
	}
}

func TestCacheClockGivesSecondChance(t *testing.T) {
	bc := NewBufferCache(8, nil)
	for i := int64(0); i < 8; i++ {
		bc.InsertPinned(blk(0, i))
		bc.Unpin(blk(0, i))
	}
	// One insert clears every reference bit during its sweep and evicts the
	// first frame.
	bc.InsertPinned(blk(0, 90))
	bc.Unpin(blk(0, 90))
	if bc.Contains(blk(0, 0)) {
		t.Fatal("expected block 0 evicted on first full sweep")
	}
	// Now re-reference block 1: with its bit set it must get a second
	// chance, so the next eviction takes block 2 instead.
	bc.Lookup(blk(0, 1))
	bc.Unpin(blk(0, 1))
	bc.InsertPinned(blk(0, 91))
	bc.Unpin(blk(0, 91))
	if !bc.Contains(blk(0, 1)) {
		t.Fatal("recently referenced block evicted before cold ones")
	}
	if bc.Contains(blk(0, 2)) {
		t.Fatal("cold block survived ahead of the clock hand")
	}
}

func TestCacheStealShrinksCapacity(t *testing.T) {
	bc := NewBufferCache(8, nil)
	for i := int64(0); i < 8; i++ {
		bc.InsertPinned(blk(0, i))
		bc.Unpin(blk(0, i))
	}
	if !bc.Steal() {
		t.Fatal("steal failed with unpinned frames")
	}
	if bc.Capacity() != 7 {
		t.Fatalf("capacity %d after steal", bc.Capacity())
	}
	if bc.Len() != 7 {
		t.Fatalf("len %d after steal", bc.Len())
	}
	bc.ReturnStolen()
	if bc.Capacity() != 8 {
		t.Fatalf("capacity %d after return", bc.Capacity())
	}
}

func TestCacheStealAllPinnedFails(t *testing.T) {
	bc := NewBufferCache(8, nil)
	bc.InsertPinned(blk(0, 1))
	if bc.Steal() {
		t.Fatal("stole a pinned frame")
	}
}

func TestCacheInvalidate(t *testing.T) {
	bc := NewBufferCache(8, nil)
	bc.InsertPinned(blk(0, 1))
	bc.Unpin(blk(0, 1))
	bc.InsertPinned(blk(0, 2))
	bc.Unpin(blk(0, 2))
	bc.Invalidate(blk(0, 1))
	if bc.Contains(blk(0, 1)) {
		t.Fatal("invalidated block still resident")
	}
	if !bc.Contains(blk(0, 2)) {
		t.Fatal("wrong block removed")
	}
	bc.Invalidate(blk(0, 42)) // absent: no-op
}

func TestCacheSharedFetchSamePins(t *testing.T) {
	bc := NewBufferCache(8, nil)
	a := bc.InsertPinned(blk(0, 7))
	b := bc.InsertPinned(blk(0, 7))
	if a != b {
		t.Fatal("duplicate insert created two frames")
	}
	if a.Pins != 2 {
		t.Fatalf("pins %d", a.Pins)
	}
}

func TestUnpinUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unpin underflow")
		}
	}()
	bc := NewBufferCache(8, nil)
	bc.InsertPinned(blk(0, 1))
	bc.Unpin(blk(0, 1))
	bc.Unpin(blk(0, 1))
}
