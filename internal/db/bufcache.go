package db

// Frame is one buffer-cache slot. Since DCLUE keeps the whole database in
// memory, a frame carries status only — residency is what matters, not
// bytes (§2.3: "buffer cache operations merely change status of the pages").
type Frame struct {
	Blk        BlockID
	Pins       int
	Dirty      bool
	Ref        bool // clock reference bit
	VersBytes  int  // version data attached to the block (fattens transfers)
	WriteOwner bool // this node holds the current (most recent) copy
}

// BufferCache is one node's page cache with clock (second-chance)
// replacement. The version manager may steal unpinned frames when its
// overflow area runs low, shrinking the effective cache (§2.3).
type BufferCache struct {
	capacity int
	pool     []*Frame
	index    map[BlockID]int
	hand     int
	stolen   int

	// onEvict is called when a block leaves the cache (eviction or steal):
	// the node notifies the directory and schedules a write-back if dirty.
	onEvict func(blk BlockID, dirty bool)

	Hits, Misses, Evictions uint64
}

// NewBufferCache creates a cache of the given capacity in frames.
func NewBufferCache(capacity int, onEvict func(BlockID, bool)) *BufferCache {
	if capacity < 8 {
		capacity = 8
	}
	return &BufferCache{
		capacity: capacity,
		index:    make(map[BlockID]int),
		onEvict:  onEvict,
	}
}

// Capacity returns the current effective capacity (configured minus stolen).
func (bc *BufferCache) Capacity() int { return bc.capacity - bc.stolen }

// Len returns resident frames.
func (bc *BufferCache) Len() int { return len(bc.pool) }

// HitRatio returns hits / (hits+misses); the paper stresses this is an
// output of cache management, never an input.
func (bc *BufferCache) HitRatio() float64 {
	total := bc.Hits + bc.Misses
	if total == 0 {
		return 0
	}
	return float64(bc.Hits) / float64(total)
}

// Lookup returns the frame for blk and pins it, or nil on miss.
func (bc *BufferCache) Lookup(blk BlockID) *Frame {
	if i, ok := bc.index[blk]; ok {
		f := bc.pool[i]
		f.Ref = true
		f.Pins++
		bc.Hits++
		return f
	}
	bc.Misses++
	return nil
}

// Contains reports residency without pinning or counting.
func (bc *BufferCache) Contains(blk BlockID) bool {
	_, ok := bc.index[blk]
	return ok
}

// Peek returns the resident frame without pinning or statistics, or nil.
func (bc *BufferCache) Peek(blk BlockID) *Frame {
	if i, ok := bc.index[blk]; ok {
		return bc.pool[i]
	}
	return nil
}

// InsertPinned adds a freshly fetched block, pinned once, evicting if full.
func (bc *BufferCache) InsertPinned(blk BlockID) *Frame {
	if i, ok := bc.index[blk]; ok {
		// Raced fetch of the same block: share the frame.
		f := bc.pool[i]
		f.Pins++
		f.Ref = true
		return f
	}
	f := &Frame{Blk: blk, Pins: 1, Ref: true}
	if len(bc.pool) < bc.Capacity() {
		bc.index[blk] = len(bc.pool)
		bc.pool = append(bc.pool, f)
		return f
	}
	if i := bc.victim(); i >= 0 {
		old := bc.pool[i]
		delete(bc.index, old.Blk)
		bc.Evictions++
		if bc.onEvict != nil {
			bc.onEvict(old.Blk, old.Dirty)
		}
		bc.pool[i] = f
		bc.index[blk] = i
		return f
	}
	// Everything pinned: over-commit rather than deadlock.
	bc.index[blk] = len(bc.pool)
	bc.pool = append(bc.pool, f)
	return f
}

// victim runs the clock hand over the pool, clearing reference bits, and
// returns the index of an evictable frame or -1 if all frames are pinned.
func (bc *BufferCache) victim() int {
	n := len(bc.pool)
	if n == 0 {
		return -1
	}
	for sweep := 0; sweep < 2*n; sweep++ {
		i := bc.hand
		bc.hand = (bc.hand + 1) % n
		f := bc.pool[i]
		if f.Pins > 0 {
			continue
		}
		if f.Ref {
			f.Ref = false
			continue
		}
		return i
	}
	return -1
}

// Unpin releases one pin.
func (bc *BufferCache) Unpin(blk BlockID) {
	if i, ok := bc.index[blk]; ok {
		f := bc.pool[i]
		if f.Pins <= 0 {
			panic("db: unpin of unpinned frame")
		}
		f.Pins--
	}
}

// Steal removes one unpinned frame for the version overflow area, shrinking
// effective capacity. Returns false if nothing is evictable.
func (bc *BufferCache) Steal() bool {
	i := bc.victim()
	if i < 0 {
		return false
	}
	old := bc.pool[i]
	delete(bc.index, old.Blk)
	bc.Evictions++
	if bc.onEvict != nil {
		bc.onEvict(old.Blk, old.Dirty)
	}
	last := len(bc.pool) - 1
	bc.pool[i] = bc.pool[last]
	bc.index[bc.pool[i].Blk] = i
	bc.pool = bc.pool[:last]
	if bc.hand >= last && last > 0 {
		bc.hand = 0
	}
	bc.stolen++
	return true
}

// ReturnStolen gives one stolen frame back (version GC reclaimed space).
func (bc *BufferCache) ReturnStolen() {
	if bc.stolen > 0 {
		bc.stolen--
	}
}

// InsertWarm admits a block unpinned with a cold reference bit, without
// evicting anything: used to prewarm caches at build time (DCLUE builds the
// database in memory, so nodes start with their partitions resident).
// Returns false when the cache is full.
func (bc *BufferCache) InsertWarm(blk BlockID) bool {
	if _, ok := bc.index[blk]; ok {
		return true
	}
	if len(bc.pool) >= bc.Capacity() {
		return false
	}
	bc.index[blk] = len(bc.pool)
	bc.pool = append(bc.pool, &Frame{Blk: blk})
	return true
}

// Each calls fn for every resident frame in pool order (deterministic).
// Used by recovery to enumerate a node's holdings and dirty set.
func (bc *BufferCache) Each(fn func(*Frame)) {
	for _, f := range bc.pool {
		fn(f)
	}
}

// Invalidate drops a block (e.g., the current copy moved to another node in
// exclusive mode). No eviction callback: the directory already knows.
func (bc *BufferCache) Invalidate(blk BlockID) {
	i, ok := bc.index[blk]
	if !ok {
		return
	}
	last := len(bc.pool) - 1
	delete(bc.index, blk)
	bc.pool[i] = bc.pool[last]
	bc.index[bc.pool[i].Blk] = i
	bc.pool = bc.pool[:last]
	if bc.hand >= last && last > 0 {
		bc.hand = 0
	}
}
