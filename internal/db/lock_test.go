package db

import "testing"

var res1 = ResourceID{Table: 1, Block: 2, Subpage: 0}
var res2 = ResourceID{Table: 1, Block: 2, Subpage: 1}

func tx(n int, id uint64) TxnRef { return TxnRef{Node: n, ID: id} }

func TestLockImmediateGrant(t *testing.T) {
	ls := NewLockService()
	granted := false
	ls.Request(res1, tx(0, 1), LockX, func(w bool) {
		granted = true
		if w {
			t.Error("uncontended grant reported waited")
		}
	})
	if !granted {
		t.Fatal("not granted")
	}
	if !ls.HeldBy(res1, tx(0, 1)) {
		t.Fatal("holder not recorded")
	}
}

func TestLockConflictQueuesThenGrants(t *testing.T) {
	ls := NewLockService()
	ls.Request(res1, tx(0, 1), LockX, func(bool) {})
	got := false
	ls.Request(res1, tx(1, 2), LockX, func(w bool) {
		got = true
		if !w {
			t.Error("queued grant reported no wait")
		}
	})
	if got {
		t.Fatal("conflicting lock granted immediately")
	}
	if ls.QueueLen(res1) != 1 {
		t.Fatalf("queue %d", ls.QueueLen(res1))
	}
	ls.Release(res1, tx(0, 1))
	if !got {
		t.Fatal("lock not granted after release")
	}
}

func TestLockSharedCompatible(t *testing.T) {
	ls := NewLockService()
	g1, g2 := false, false
	ls.Request(res1, tx(0, 1), LockS, func(bool) { g1 = true })
	ls.Request(res1, tx(1, 2), LockS, func(bool) { g2 = true })
	if !g1 || !g2 {
		t.Fatal("shared locks not co-granted")
	}
}

func TestLockSThenXQueues(t *testing.T) {
	ls := NewLockService()
	ls.Request(res1, tx(0, 1), LockS, func(bool) {})
	got := false
	ls.Request(res1, tx(1, 2), LockX, func(bool) { got = true })
	if got {
		t.Fatal("X granted alongside S")
	}
	ls.Release(res1, tx(0, 1))
	if !got {
		t.Fatal("X not granted after S release")
	}
}

func TestLockReentrant(t *testing.T) {
	ls := NewLockService()
	n := 0
	ls.Request(res1, tx(0, 1), LockX, func(bool) { n++ })
	ls.Request(res1, tx(0, 1), LockX, func(bool) { n++ })
	if n != 2 {
		t.Fatalf("re-entrant request not granted: %d", n)
	}
}

func TestLockUpgradeSoleHolder(t *testing.T) {
	ls := NewLockService()
	ls.Request(res1, tx(0, 1), LockS, func(bool) {})
	upgraded := false
	ls.Request(res1, tx(0, 1), LockX, func(w bool) { upgraded = true })
	if !upgraded {
		t.Fatal("sole-holder upgrade not granted")
	}
	// Now X is held: another S must queue.
	blocked := true
	ls.Request(res1, tx(1, 2), LockS, func(bool) { blocked = false })
	if !blocked {
		t.Fatal("S granted against upgraded X")
	}
}

func TestLockFIFOOrder(t *testing.T) {
	ls := NewLockService()
	ls.Request(res1, tx(0, 1), LockX, func(bool) {})
	var order []uint64
	for i := uint64(2); i <= 4; i++ {
		i := i
		ls.Request(res1, tx(1, i), LockX, func(bool) { order = append(order, i) })
	}
	ls.Release(res1, tx(0, 1))
	ls.Release(res1, tx(1, 2))
	ls.Release(res1, tx(1, 3))
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 4 {
		t.Fatalf("grant order %v", order)
	}
}

func TestLockCancelQueued(t *testing.T) {
	ls := NewLockService()
	ls.Request(res1, tx(0, 1), LockX, func(bool) {})
	granted := false
	ls.Request(res1, tx(1, 2), LockX, func(bool) { granted = true })
	ls.Cancel(res1, tx(1, 2))
	ls.Release(res1, tx(0, 1))
	if granted {
		t.Fatal("cancelled waiter was granted")
	}
	if ls.QueueLen(res1) != 0 {
		t.Fatal("queue not empty")
	}
}

func TestLockCancelAfterGrantActsAsRelease(t *testing.T) {
	ls := NewLockService()
	ls.Request(res1, tx(0, 1), LockX, func(bool) {})
	ls.Cancel(res1, tx(0, 1)) // raced grant: treated as release
	granted := false
	ls.Request(res1, tx(1, 2), LockX, func(bool) { granted = true })
	if !granted {
		t.Fatal("resource not freed by cancel-as-release")
	}
}

func TestLockIndependentResources(t *testing.T) {
	ls := NewLockService()
	g2 := false
	ls.Request(res1, tx(0, 1), LockX, func(bool) {})
	ls.Request(res2, tx(1, 2), LockX, func(bool) { g2 = true })
	if !g2 {
		t.Fatal("different subpage blocked")
	}
}

func TestLockEntryCleanup(t *testing.T) {
	ls := NewLockService()
	ls.Request(res1, tx(0, 1), LockX, func(bool) {})
	ls.Release(res1, tx(0, 1))
	if ls.ActiveLock != 0 {
		t.Fatalf("active lock entries %d after release", ls.ActiveLock)
	}
}
