package db

// OpCosts are the path lengths (instructions) charged for database
// operations — the model's central calibration inputs, following the
// paper's method of expressing everything as path lengths or path-length
// equivalents so the 100x system scaling applies uniformly (§3.1). The
// defaults make an average TPC-C transaction cost ~1 M instructions and a
// new-order ~1.5 M, matching the unclustered path length quoted in §3.3,
// with roughly 15% of it attached to disk I/O and buffer management.
type OpCosts struct {
	TxnBegin  float64 // initiation, parse, plan
	TxnCommit float64 // commit processing excluding the log write

	IndexLevel  float64 // per B+-tree level traversed
	IndexInsert float64 // key insertion incl. occasional splits

	RowRead   float64
	RowWrite  float64 // update applied to a locked row
	RowInsert float64
	RowDelete float64
	ScanEntry float64 // per index entry visited in a range scan

	Latch         float64 // subpage latch acquire+release (phase 1)
	VersionCreate float64
	VersionHop    float64 // walking one version back for a snapshot read

	DirLookup   float64 // local directory lookup
	LockRequest float64 // local lock table operation

	CtlMsgHandle  float64 // GCS control message processing (each end)
	DataMsgHandle float64 // GCS data (block) message processing (each end)

	DiskSetup float64 // issuing one disk I/O (driver + SCSI stack)

	LogSetup   float64 // building the commit log record
	LogPerByte float64

	ResumeDispatch float64 // continuation work after any blocking wait
}

// DefaultOpCosts returns the calibrated cost table.
func DefaultOpCosts() *OpCosts {
	return &OpCosts{
		TxnBegin:  72_000,
		TxnCommit: 58_000,

		IndexLevel:  2_200,
		IndexInsert: 11_000,

		RowRead:   7_500,
		RowWrite:  15_000,
		RowInsert: 18_000,
		RowDelete: 12_000,
		ScanEntry: 1_000,

		Latch:         800,
		VersionCreate: 5_000,
		VersionHop:    1_500,

		DirLookup:   3_000,
		LockRequest: 4_000,

		CtlMsgHandle:  3_500,
		DataMsgHandle: 9_000,

		DiskSetup: 10_000,

		LogSetup:   10_000,
		LogPerByte: 0.3,

		ResumeDispatch: 2_000,
	}
}

// Scale multiplies every computational path length by f; the paper's "low
// computation" variant (§3.3) divides them by 4 to study workloads lighter
// than TPC-C.
func (c *OpCosts) Scale(f float64) *OpCosts {
	s := *c
	s.TxnBegin *= f
	s.TxnCommit *= f
	s.IndexLevel *= f
	s.IndexInsert *= f
	s.RowRead *= f
	s.RowWrite *= f
	s.RowInsert *= f
	s.RowDelete *= f
	s.ScanEntry *= f
	s.Latch *= f
	s.VersionCreate *= f
	s.VersionHop *= f
	return &s
}
