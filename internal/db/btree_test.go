package db

import (
	"sort"
	"testing"
	"testing/quick"

	"dclue/internal/rng"
)

func TestBTreePutGet(t *testing.T) {
	bt := NewBTree(8)
	for i := int64(0); i < 1000; i++ {
		bt.Put(i*7%1000, i)
	}
	if bt.Len() != 1000 {
		t.Fatalf("len %d", bt.Len())
	}
	for i := int64(0); i < 1000; i++ {
		v, ok := bt.Get(i * 7 % 1000)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d/%v, want %d", i*7%1000, v, ok, i)
		}
	}
	if _, ok := bt.Get(5000); ok {
		t.Fatal("found absent key")
	}
}

func TestBTreeReplace(t *testing.T) {
	bt := NewBTree(8)
	bt.Put(5, 1)
	bt.Put(5, 2)
	if bt.Len() != 1 {
		t.Fatalf("len %d after replace", bt.Len())
	}
	if v, _ := bt.Get(5); v != 2 {
		t.Fatalf("Get = %d", v)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree(8)
	for i := int64(0); i < 500; i++ {
		bt.Put(i, i)
	}
	for i := int64(0); i < 500; i += 2 {
		if !bt.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if bt.Delete(1000) {
		t.Fatal("deleted absent key")
	}
	if bt.Len() != 250 {
		t.Fatalf("len %d", bt.Len())
	}
	for i := int64(0); i < 500; i++ {
		_, ok := bt.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v", i, ok)
		}
	}
}

func TestBTreeScanOrdered(t *testing.T) {
	bt := NewBTree(8)
	r := rng.New(3)
	inserted := map[int64]bool{}
	for i := 0; i < 2000; i++ {
		k := int64(r.Intn(10000))
		bt.Put(k, k*2)
		inserted[k] = true
	}
	var got []int64
	bt.Scan(2500, func(k, v int64) bool {
		if v != k*2 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return len(got) < 100
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan not ordered")
	}
	for _, k := range got {
		if k < 2500 {
			t.Fatalf("scan returned key %d below start", k)
		}
		if !inserted[k] {
			t.Fatalf("scan invented key %d", k)
		}
	}
}

func TestBTreeMin(t *testing.T) {
	bt := NewBTree(8)
	if _, ok := bt.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	bt.Put(42, 0)
	bt.Put(7, 0)
	bt.Put(99, 0)
	if k, ok := bt.Min(); !ok || k != 7 {
		t.Fatalf("Min = %d/%v", k, ok)
	}
}

func TestBTreeHeightGrows(t *testing.T) {
	bt := NewBTree(8)
	if bt.Height() != 1 {
		t.Fatalf("empty height %d", bt.Height())
	}
	for i := int64(0); i < 10000; i++ {
		bt.Put(i, i)
	}
	if h := bt.Height(); h < 3 || h > 8 {
		t.Fatalf("height %d for 10k keys at degree 8", h)
	}
}

func TestBTreeMatchesMapProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		bt := NewBTree(6)
		ref := map[int64]int64{}
		for i := 0; i < int(n)*8; i++ {
			k := int64(r.Intn(200))
			switch r.Intn(3) {
			case 0, 1:
				v := int64(r.Intn(1000))
				bt.Put(k, v)
				ref[k] = v
			case 2:
				want := false
				if _, ok := ref[k]; ok {
					want = true
				}
				if bt.Delete(k) != want {
					return false
				}
				delete(ref, k)
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := bt.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
