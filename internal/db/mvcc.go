package db

import (
	"sort"

	"dclue/internal/sim"
)

// verKey names a row version chain.
type verKey struct {
	Table TableID
	Row   int64
}

// versionChain tracks the version numbers of one row, exactly as §2.3
// describes: minimum, maximum, and current version number, with timestamps
// for snapshot selection.
type versionChain struct {
	minVer, maxVer, curVer uint64
	stamps                 []sim.Time // creation time per live version (ascending)
	bytes                  int        // per-version size (row bytes)
}

// VersionManager is one node's multi-version state: a timestamp-ordered
// version store living in an overflow memory area that steals unpinned
// buffer-cache pages when it runs low (§2.3).
type VersionManager struct {
	cat         *Catalog
	cache       *BufferCache
	capacity    int // bytes in the overflow area
	used        int
	chains      map[verKey]*versionChain
	perBlock    map[BlockID]int // live version bytes attached to each block
	stolenBytes int

	// multi indexes the chains holding two or more live versions — the only
	// ones GC can shrink. A sweep over every chain ever written is O(hot
	// rows) per GC tick and showed up as ~10% of a figure run; the working
	// set of genuinely multi-versioned rows is tiny by comparison.
	multi map[verKey]*versionChain

	Created   uint64
	Collected uint64
	Steals    uint64
}

// NewVersionManager creates a version store of capacityBytes backed by the
// given cache for page stealing.
func NewVersionManager(cat *Catalog, cache *BufferCache, capacityBytes int) *VersionManager {
	return &VersionManager{
		cat:      cat,
		cache:    cache,
		capacity: capacityBytes,
		chains:   make(map[verKey]*versionChain),
		perBlock: make(map[BlockID]int),
		multi:    make(map[verKey]*versionChain),
	}
}

// Used returns bytes of live version data.
func (vm *VersionManager) Used() int { return vm.used }

// Capacity returns the current overflow capacity including stolen pages.
func (vm *VersionManager) Capacity() int { return vm.capacity + vm.stolenBytes }

// Create records a new version of a row at time now. Returns the number of
// versions now live on the row (path-length charges scale with it).
func (vm *VersionManager) Create(t *Table, row int64, now sim.Time) int {
	k := verKey{t.ID, row}
	ch := vm.chains[k]
	if ch == nil {
		ch = &versionChain{bytes: t.Spec.RowBytes}
		vm.chains[k] = ch
	}
	ch.curVer++
	ch.maxVer = ch.curVer
	if ch.minVer == 0 {
		ch.minVer = ch.curVer
	}
	ch.stamps = append(ch.stamps, now)
	if len(ch.stamps) == 2 {
		vm.multi[k] = ch
	}
	vm.used += ch.bytes
	vm.perBlock[t.BlockOf(row)] += ch.bytes
	vm.Created++
	// Replenish from the buffer cache when low (§2.3: unpinned pages are
	// stolen).
	for vm.used > vm.Capacity()*9/10 {
		if !vm.cache.Steal() {
			break
		}
		vm.stolenBytes += BlockBytes
		vm.Steals++
	}
	return len(ch.stamps)
}

// SnapshotHops returns how many versions a reader with snapshot time ts
// must walk on (table,row): versions created after ts sit between the
// current version and the visible one.
func (vm *VersionManager) SnapshotHops(t TableID, row int64, ts sim.Time) int {
	ch := vm.chains[verKey{t, row}]
	if ch == nil {
		return 0
	}
	// stamps ascending: count entries with stamp > ts.
	i := sort.Search(len(ch.stamps), func(i int) bool { return ch.stamps[i] > ts })
	return len(ch.stamps) - i
}

// VersionBytes returns the version payload that travels with a block in a
// cache-fusion transfer (the paper: data messages are "8 KB or larger - the
// larger part comes because of additional versioning data").
func (vm *VersionManager) VersionBytes(blk BlockID) int { return vm.perBlock[blk] }

// GC drops versions older than minActive (no active snapshot can need
// them), keeping the newest version of each row, and returns stolen pages
// once usage drops. Only chains in the multi-version set are visited: a
// single-version chain always keeps its newest (only) version, so sweeping
// it could never change anything. Per-chain updates are independent and
// commutative, so map iteration order does not leak into the result.
func (vm *VersionManager) GC(minActive sim.Time) {
	for k, ch := range vm.multi {
		keep := ch.stamps[:0]
		dropped := 0
		for i, st := range ch.stamps {
			if st >= minActive || i == len(ch.stamps)-1 {
				keep = append(keep, st)
			} else {
				dropped++
			}
		}
		if dropped > 0 {
			ch.stamps = keep
			ch.minVer += uint64(dropped)
			bytes := dropped * ch.bytes
			vm.used -= bytes
			vm.Collected += uint64(dropped)
			blk := vm.cat.Tables[k.Table].BlockOf(k.Row)
			vm.perBlock[blk] -= bytes
			if vm.perBlock[blk] <= 0 {
				delete(vm.perBlock, blk)
			}
		}
		if len(ch.stamps) <= 1 {
			delete(vm.multi, k)
		}
	}
	// Return stolen pages while comfortably below capacity.
	for vm.stolenBytes > 0 && vm.used < (vm.capacity+vm.stolenBytes-BlockBytes)*7/10 {
		vm.stolenBytes -= BlockBytes
		vm.cache.ReturnStolen()
	}
}
