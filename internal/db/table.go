package db

import "fmt"

// BlockBytes is the database block (page) size; also the basic IPC transfer
// size of the paper (§2.1).
const BlockBytes = 8192

// TableID identifies a table in the catalog.
type TableID int

// indexRegion flags a BlockID as an index block rather than a data block.
const indexRegion int64 = 1 << 40

// BlockID names a block cluster-wide.
type BlockID struct {
	Table TableID
	Block int64
}

func (b BlockID) String() string {
	if b.Block&indexRegion != 0 {
		return fmt.Sprintf("t%d.ix%d", b.Table, b.Block&^indexRegion)
	}
	return fmt.Sprintf("t%d.b%d", b.Table, b.Block)
}

// IsIndex reports whether the block belongs to the table's index segment.
func (b BlockID) IsIndex() bool { return b.Block&indexRegion != 0 }

// ResourceID names a lockable subpage cluster-wide.
type ResourceID struct {
	Table   TableID
	Block   int64
	Subpage int
}

// Placement is how rows map onto nodes.
type Placement int

const (
	// PlacementPartitioned homes a block on the node that inserted its
	// first row (warehouse partitioning makes this the warehouse owner).
	PlacementPartitioned Placement = iota
	// PlacementHashed spreads blocks across nodes round-robin (the shared
	// item table).
	PlacementHashed
)

// TableSpec declares a table.
type TableSpec struct {
	Name      string
	RowBytes  int
	Subpages  int // lock subpages per block; the paper tunes this per table
	Placement Placement
	Grows     bool // history-like tables that only grow
}

// Table is one cluster-global table: row placement, primary index, and
// block homing. Attribute data lives with the workload (dense arrays
// indexed by the row ids this table allocates).
type Table struct {
	ID   TableID
	Spec TableSpec
	cat  *Catalog

	RowsPerBlock int
	Index        *BTree

	// Rows are allocated from per-home block extents so one block never
	// mixes partitions: the block's home node is well-defined and affinity
	// 1.0 workloads generate (almost) no cross-node block traffic, as the
	// paper reports.
	nextBlock int64
	cur       map[int]*allocExtent
	freeRows  map[int][]int64
	blockHome []int16 // data block -> owning node

	// indexFanout controls how many data blocks one index leaf covers.
	indexFanout int64

	Inserts, Deletes uint64
}

type allocExtent struct {
	block int64
	used  int
}

// Catalog is the cluster-wide set of tables.
type Catalog struct {
	Tables []*Table
	nodes  int

	// surrogate redirects mastering for blocks homed at a crashed node to a
	// surviving coordinator until the owner rejoins. Disk placement (Home)
	// is unaffected: the paper's shared-storage model keeps the data where
	// it is; only directory/lock mastering moves.
	surrogate map[int]int
}

// NewCatalog creates a catalog for a cluster of n nodes.
func NewCatalog(n int) *Catalog {
	return &Catalog{nodes: n}
}

// Nodes returns the cluster size the catalog was built for.
func (c *Catalog) Nodes() int { return c.nodes }

// AddTable registers a table and returns it.
func (c *Catalog) AddTable(spec TableSpec) *Table {
	rpb := BlockBytes / spec.RowBytes
	if rpb < 1 {
		rpb = 1
	}
	if spec.Subpages < 1 {
		spec.Subpages = 1
	}
	t := &Table{
		ID:           TableID(len(c.Tables)),
		Spec:         spec,
		cat:          c,
		RowsPerBlock: rpb,
		Index:        NewBTree(64),
		indexFanout:  64,
		cur:          make(map[int]*allocExtent),
		freeRows:     make(map[int][]int64),
	}
	c.Tables = append(c.Tables, t)
	return t
}

// Table returns the table with the given id.
func (c *Catalog) Table(id TableID) *Table { return c.Tables[id] }

// Home returns the owning node of a block: the disk it lives on and the
// master of its directory entry and locks (partition-aware mastering).
func (c *Catalog) Home(b BlockID) int {
	t := c.Tables[b.Table]
	blk := b.Block &^ indexRegion
	if b.IsIndex() {
		blk *= t.indexFanout // home index leaves with the data they cover
	}
	if t.Spec.Placement == PlacementHashed {
		return int(blk % int64(c.nodes))
	}
	if blk < int64(len(t.blockHome)) {
		return int(t.blockHome[blk])
	}
	return 0
}

// Master returns the node currently mastering b's directory entry and
// locks: Home, unless a surrogate took over after a crash.
func (c *Catalog) Master(b BlockID) int {
	h := c.Home(b)
	if via, ok := c.surrogate[h]; ok {
		return via
	}
	return h
}

// SetSurrogate redirects mastering for every block homed at dead to via
// until ClearSurrogate (GCS fencing: the recovery coordinator takes over
// the dead node's directory and lock duties).
func (c *Catalog) SetSurrogate(dead, via int) {
	if c.surrogate == nil {
		c.surrogate = make(map[int]int)
	}
	c.surrogate[dead] = via
}

// ClearSurrogate restores mastering to home (the node rejoined).
func (c *Catalog) ClearSurrogate(dead int) { delete(c.surrogate, dead) }

// Surrogate returns the active surrogate for home, or -1 if none.
func (c *Catalog) Surrogate(home int) int {
	if via, ok := c.surrogate[home]; ok {
		return via
	}
	return -1
}

// Insert allocates a row for key from the given home node's extent and
// returns the dense row id. Hashed-placement tables ignore home for
// ownership (Home hashes the block) but still pack rows densely.
func (t *Table) Insert(key int64, home int) int64 {
	row, _ := t.InsertFresh(key, home)
	return row
}

// InsertFresh is Insert, additionally reporting whether the row opened a
// brand-new block — such a block has no disk image yet, so the executor
// formats it in the cache instead of reading it.
func (t *Table) InsertFresh(key int64, home int) (row int64, fresh bool) {
	if t.Spec.Placement == PlacementHashed {
		home = 0 // single allocation extent; ownership comes from hashing
	}
	if fr := t.freeRows[home]; len(fr) > 0 {
		row = fr[len(fr)-1]
		t.freeRows[home] = fr[:len(fr)-1]
	} else {
		ext := t.cur[home]
		if ext == nil || ext.used == t.RowsPerBlock {
			ext = &allocExtent{block: t.nextBlock}
			t.nextBlock++
			t.cur[home] = ext
			t.blockHome = append(t.blockHome, int16(home))
			fresh = true
		}
		row = ext.block*int64(t.RowsPerBlock) + int64(ext.used)
		ext.used++
	}
	t.Index.Put(key, row)
	t.Inserts++
	return row, fresh
}

// Lookup returns the row id for key.
func (t *Table) Lookup(key int64) (int64, bool) { return t.Index.Get(key) }

// Delete removes key, recycling its row slot within its home's extent.
func (t *Table) Delete(key int64) bool {
	row, ok := t.DeleteKeepSlot(key)
	if !ok {
		return false
	}
	t.Recycle(row)
	return true
}

// DeleteKeepSlot removes key from the index without recycling its slot;
// the executor recycles at commit so a concurrent insert cannot reuse a
// slot whose lock the deleting transaction still holds.
func (t *Table) DeleteKeepSlot(key int64) (int64, bool) {
	row, ok := t.Index.Get(key)
	if !ok {
		return 0, false
	}
	t.Index.Delete(key)
	t.Deletes++
	return row, true
}

// Recycle returns a deleted row's slot to its home's free list.
func (t *Table) Recycle(row int64) {
	home := 0
	if blk := row / int64(t.RowsPerBlock); blk < int64(len(t.blockHome)) {
		home = int(t.blockHome[blk])
	}
	t.freeRows[home] = append(t.freeRows[home], row)
}

// BlockOf returns the data block holding a row.
func (t *Table) BlockOf(row int64) BlockID {
	return BlockID{t.ID, row / int64(t.RowsPerBlock)}
}

// IndexLeafOf returns the index leaf block covering a row's data block.
func (t *Table) IndexLeafOf(row int64) BlockID {
	leaf := (row / int64(t.RowsPerBlock)) / t.indexFanout
	return BlockID{t.ID, indexRegion | leaf}
}

// ResourceOf returns the lockable subpage of a row.
func (t *Table) ResourceOf(row int64) ResourceID {
	blk := row / int64(t.RowsPerBlock)
	slot := int(row % int64(t.RowsPerBlock))
	sub := slot * t.Spec.Subpages / t.RowsPerBlock
	return ResourceID{t.ID, blk, sub}
}

// Blocks returns the number of data blocks allocated so far.
func (t *Table) Blocks() int64 { return int64(len(t.blockHome)) }

// IndexLeafBlocks returns how many index-leaf blocks cover the table.
func (t *Table) IndexLeafBlocks() int64 { return t.Blocks()/t.indexFanout + 1 }

// IndexLeafBlock returns the i-th index leaf block id.
func (t *Table) IndexLeafBlock(i int64) BlockID {
	return BlockID{t.ID, indexRegion | i}
}

// Rows returns the live row count.
func (t *Table) Rows() int { return t.Index.Len() }
