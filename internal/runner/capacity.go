package runner

import (
	"sync"

	"dclue/internal/core"
)

// future is one in-flight or finished capacity probe.
type future struct {
	done chan struct{}
	m    core.Metrics
	err  error
}

// Capacity runs core's capacity bisection with speculative parallel
// probing: while the search evaluates one midpoint, free pool slots warm
// the two candidate midpoints the next iteration may need, halving the
// critical path of the search when workers are available. Probes are
// memoized by warehouse count and each probe is a pure deterministic run,
// so the bisection visits the same path and returns a result byte-identical
// to core.MeasureCapacity — speculation only ever wastes work, never
// changes the answer.
func Capacity(pool *Pool, p core.Params, maxPerNode int) core.CapacityResult {
	return CapacityExec(pool, nil, p, maxPerNode)
}

// CapacityExec is Capacity with a pluggable point executor (nil = in-process
// core.Run). Because the bisection path is a function of probe outcomes only
// and exec is held to the deterministic Exec contract, the result is
// byte-identical whichever executor evaluates the probes — the speculative
// warming just overlaps farm round trips the same way it overlaps local runs.
func CapacityExec(pool *Pool, exec Exec, p core.Params, maxPerNode int) core.CapacityResult {
	if exec == nil {
		exec = core.Run
	}
	if pool.Workers() <= 1 {
		return core.SearchCapacity(p, maxPerNode, core.CapacityProbe(exec), nil)
	}

	var mu sync.Mutex
	memo := map[int]*future{} // keyed by Warehouses, the only varying field

	compute := func(f *future, q core.Params) {
		f.m, f.err = exec(q)
		close(f.done)
	}
	probe := func(q core.Params) (core.Metrics, error) {
		mu.Lock()
		f, started := memo[q.Warehouses]
		if !started {
			f = &future{done: make(chan struct{})}
			memo[q.Warehouses] = f
		}
		mu.Unlock()
		if started {
			<-f.done
		} else {
			compute(f, q)
		}
		return f.m, f.err
	}
	speculate := func(qs ...core.Params) {
		for _, q := range qs {
			q := q
			mu.Lock()
			if _, ok := memo[q.Warehouses]; ok {
				mu.Unlock()
				continue
			}
			f := &future{done: make(chan struct{})}
			memo[q.Warehouses] = f
			mu.Unlock()
			if !pool.TryGo(func() { compute(f, q) }) {
				// No free slot: unregister so a later demand computes inline.
				// Safe from the lost-waiter race because probe and speculate
				// are only ever called from the single search goroutine, and
				// nothing else reads the memo.
				mu.Lock()
				delete(memo, q.Warehouses)
				mu.Unlock()
			}
		}
	}
	return core.SearchCapacity(p, maxPerNode, probe, speculate)
}
