// Package runner is the parallel sweep engine behind the experiment
// harness. Every figure in the paper reduces to a set of independent,
// deterministic simulation points; the runner fans those points across a
// bounded work-stealing worker pool and merges results in point order, so a
// parallel sweep is byte-identical to a sequential one — only wall-clock
// changes.
//
// The determinism argument is structural: each job is a pure function of
// its inputs (the simulation kernel owns no shared mutable state), results
// land in a slice slot owned by exactly one job, and consumers read the
// slice only after the pool drains. Scheduling order therefore cannot leak
// into output. Progress logging is the one shared sink, and the experiments
// layer serializes it per line.
package runner

import (
	"runtime"
	"sync"
)

// Pool is a bounded pool of workers for independent simulation jobs. The
// zero of concurrency is explicit: a nil *Pool (or one worker) runs every
// job on the calling goroutine in index order, which keeps library default
// behaviour — and progress-log ordering — exactly sequential.
type Pool struct {
	workers int
	// slots gates helper goroutines: Map workers beyond the caller and
	// speculative TryGo jobs each hold one slot while running, bounding
	// total extra concurrency at workers-1 however Maps nest.
	slots chan struct{}
}

// New returns a pool of the given width; workers <= 0 means GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, slots: make(chan struct{}, workers-1)}
}

// Workers reports the pool width (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Map runs fn(i) for every i in [0, n) and returns when all calls have
// finished. The calling goroutine always participates, so Map makes
// progress even on a saturated pool (nested Maps degrade to sequential
// instead of deadlocking); up to Workers()-1 free slots join it. Work is
// distributed by stealing: each worker owns a contiguous index range,
// claims from its front, and when empty steals the upper half of the
// largest remaining range. fn must not call back into Map's result slice
// until Map returns.
func (p *Pool) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	// chunks[k] is worker k's unclaimed range [lo, hi); one mutex guards
	// them all — jobs are whole simulation runs, so claim traffic is cold.
	type chunk struct{ lo, hi int }
	chunks := make([]chunk, w)
	for k := range chunks {
		chunks[k] = chunk{k * n / w, (k + 1) * n / w}
	}
	var mu sync.Mutex
	next := func(self int) (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		c := &chunks[self]
		if c.lo >= c.hi {
			victim, rem := -1, 0
			for j := range chunks {
				if r := chunks[j].hi - chunks[j].lo; r > rem {
					victim, rem = j, r
				}
			}
			if victim < 0 {
				return 0, false
			}
			v := &chunks[victim]
			mid := v.lo + rem/2 // steal the upper half (all of it when rem == 1)
			*c = chunk{mid, v.hi}
			v.hi = mid
		}
		i := c.lo
		c.lo++
		return i, true
	}
	work := func(self int) {
		for {
			i, ok := next(self)
			if !ok {
				return
			}
			fn(i)
		}
	}

	var wg sync.WaitGroup
	for k := 1; k < w; k++ {
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			go func(self int) {
				defer func() {
					<-p.slots
					wg.Done()
				}()
				work(self)
			}(k)
		default:
			// Pool saturated: worker k never starts; its range is stolen.
		}
	}
	work(0)
	wg.Wait()
}

// TryGo runs fn on a free pool slot and returns true, or returns false
// without running fn when every slot is busy. It is the hook for
// speculative work: callers must be prepared to (deterministically)
// compute the same result inline when speculation is declined.
func (p *Pool) TryGo(fn func()) bool {
	if p == nil {
		return false
	}
	select {
	case p.slots <- struct{}{}:
		go func() {
			defer func() { <-p.slots }()
			fn()
		}()
		return true
	default:
		return false
	}
}
