package runner

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dclue/internal/core"
	"dclue/internal/sim"
)

// tinyParams is a cluster configuration small enough that a full run takes
// well under a second, so pool behaviour can be tested on real simulations.
func tinyParams(nodes int) core.Params {
	p := core.DefaultParams(nodes)
	p.Warehouses = 4 * nodes
	p.CustomersPerDist = 30
	p.Items = 200
	p.Warmup = 20 * sim.Second
	p.Measure = 40 * sim.Second
	return p
}

func TestMapCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {3, 4}, {7, 2}, {16, 4}, {100, 8}, {5, 1},
	} {
		counts := make([]int32, tc.n)
		New(tc.workers).Map(tc.n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d ran %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

func TestMapNilAndSingleWorkerRunInOrder(t *testing.T) {
	for _, p := range []*Pool{nil, New(1)} {
		var order []int
		p.Map(6, func(i int) { order = append(order, i) })
		for i, got := range order {
			if got != i {
				t.Fatalf("pool %v: sequential order broken: %v", p.Workers(), order)
			}
		}
		if len(order) != 6 {
			t.Fatalf("ran %d of 6 jobs", len(order))
		}
	}
}

// TestMapStealsSkewedWork gives worker 0's initial range all the slow jobs;
// with stealing, the other workers must end up running some of them.
func TestMapStealsSkewedWork(t *testing.T) {
	if New(0).Workers() < 2 {
		t.Skip("single-CPU host: stealing needs a second runnable worker")
	}
	const n = 16
	var slowRunners sync.Map
	New(4).Map(n, func(i int) {
		if i < n/4 { // worker 0's initial quarter
			time.Sleep(20 * time.Millisecond)
		}
		slowRunners.Store(i, struct{}{})
	})
	count := 0
	slowRunners.Range(func(_, _ any) bool { count++; return true })
	if count != n {
		t.Fatalf("covered %d of %d jobs", count, n)
	}
}

func TestTryGoBoundsConcurrency(t *testing.T) {
	p := New(3) // 2 helper slots
	block := make(chan struct{})
	var started sync.WaitGroup
	for i := 0; i < 2; i++ {
		started.Add(1)
		if !p.TryGo(func() { started.Done(); <-block }) {
			t.Fatalf("slot %d refused with capacity free", i)
		}
	}
	started.Wait()
	if p.TryGo(func() {}) {
		t.Fatal("TryGo accepted work beyond pool width")
	}
	close(block)
	if (*Pool)(nil).TryGo(func() {}) {
		t.Fatal("nil pool accepted speculative work")
	}
}

func TestRunPointsOrderAndSeedOverride(t *testing.T) {
	base := tinyParams(1)
	pts := []Point{
		{Label: "a", Params: base},
		{Label: "b", Params: base, Seed: 7},
		{Label: "c", Params: tinyParams(2)},
	}
	got := New(4).RunPoints(pts)
	if len(got) != len(pts) {
		t.Fatalf("results %d, want %d", len(got), len(pts))
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("point %d: %v", i, r.Err)
		}
		if r.Point.Label != pts[i].Label {
			t.Fatalf("results out of order: %q at %d", r.Point.Label, i)
		}
	}
	qb := base
	qb.Seed = 7
	want := core.MustRun(qb)
	if got[1].Metrics.Fingerprint() != want.Fingerprint() {
		t.Fatal("seed override not applied or run nondeterministic")
	}
	if got[0].Metrics.Fingerprint() == got[1].Metrics.Fingerprint() {
		t.Fatal("different seeds produced identical metrics")
	}
}

// TestCapacityMatchesSequential is the speculative search's contract: same
// warehouses, same feasibility, same metrics fingerprint as the plain
// bisection, whatever the pool width.
func TestCapacityMatchesSequential(t *testing.T) {
	p := tinyParams(2)
	p.Warehouses = 0
	want := core.MeasureCapacity(p, 4)
	for _, workers := range []int{1, 2, 4, 8} {
		got := Capacity(New(workers), p, 4)
		if got.Warehouses != want.Warehouses || got.Feasible != want.Feasible {
			t.Fatalf("workers=%d: capacity (%d, %v), want (%d, %v)",
				workers, got.Warehouses, got.Feasible, want.Warehouses, want.Feasible)
		}
		if got.Metrics.Fingerprint() != want.Metrics.Fingerprint() {
			t.Fatalf("workers=%d: metrics fingerprint diverged from sequential", workers)
		}
	}
}
