package runner

import "dclue/internal/core"

// Point is one independent simulation job in a sweep: a full parameter set
// plus an optional seed override and a label for progress reporting.
type Point struct {
	Label  string
	Params core.Params
	Seed   uint64 // overrides Params.Seed when nonzero
}

// Resolved returns the exact parameters the point runs with: Params with the
// seed override applied. This is the point's identity — two points with equal
// Resolved() values are the same simulation job, which is what the experiment
// farm's content-addressed result cache keys on.
func (pt Point) Resolved() core.Params {
	q := pt.Params
	if pt.Seed != 0 {
		q.Seed = pt.Seed
	}
	return q
}

// PointResult pairs a Point with its run outcome.
type PointResult struct {
	Point   Point
	Metrics core.Metrics
	Err     error
}

// Exec evaluates one resolved simulation point. It must behave as a pure,
// deterministic function of its Params: callers (the capacity search, the
// sweep merge step, the golden-figure regressions) assume two Exec calls
// with equal Params return identical Metrics. core.Run is the in-process
// executor; the experiment farm substitutes one that ships the point to a
// worker process or serves it from the content-addressed result cache —
// indistinguishable to the sweep by this contract.
type Exec func(core.Params) (core.Metrics, error)

// Enumerate builds a point list from an index function. The enumeration
// order is the definition order (0..n-1) and callers must keep mk a pure
// function of its index, so the same sweep enumerates the same points in the
// same stable order in every process — the property that lets a farm
// coordinator and its workers, or an interrupted and a resumed sweep, agree
// on what point a result belongs to.
func Enumerate(n int, mk func(i int) Point) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = mk(i)
	}
	return pts
}

// RunPoints evaluates every point in-process on the pool. See RunPointsExec.
func (p *Pool) RunPoints(pts []Point) []PointResult {
	return p.RunPointsExec(core.Run, pts)
}

// RunPointsExec evaluates every point through exec on the pool and returns
// results indexed like the input, regardless of completion order: the merged
// output of a parallel sweep is identical to a sequential one, whatever the
// executor. A nil exec runs in-process.
func (p *Pool) RunPointsExec(exec Exec, pts []Point) []PointResult {
	if exec == nil {
		exec = core.Run
	}
	out := make([]PointResult, len(pts))
	p.Map(len(pts), func(i int) {
		out[i].Point = pts[i]
		out[i].Metrics, out[i].Err = exec(pts[i].Resolved())
	})
	return out
}
