package runner

import "dclue/internal/core"

// Point is one independent simulation job in a sweep: a full parameter set
// plus an optional seed override and a label for progress reporting.
type Point struct {
	Label  string
	Params core.Params
	Seed   uint64 // overrides Params.Seed when nonzero
}

// PointResult pairs a Point with its run outcome.
type PointResult struct {
	Point   Point
	Metrics core.Metrics
	Err     error
}

// RunPoints evaluates every point on the pool and returns results indexed
// like the input, regardless of completion order: the merged output of a
// parallel sweep is identical to a sequential one.
func (p *Pool) RunPoints(pts []Point) []PointResult {
	out := make([]PointResult, len(pts))
	p.Map(len(pts), func(i int) {
		q := pts[i].Params
		if pts[i].Seed != 0 {
			q.Seed = pts[i].Seed
		}
		out[i].Point = pts[i]
		out[i].Metrics, out[i].Err = core.Run(q)
	})
	return out
}
