package tcp

import (
	"testing"

	"dclue/internal/netsim"
	"dclue/internal/sim"
)

func TestSRTTConverges(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) { c.Enqueue("pong", 100) })
	})
	var srtt sim.Time
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		inbox := sim.NewMailbox(s)
		c.SetOnMessage(func(m Message) { inbox.Send(nil) })
		for i := 0; i < 20; i++ {
			c.Enqueue("ping", 100)
			inbox.Recv(p)
		}
		srtt = c.SRTT()
	})
	s.Run(10 * sim.Second)
	s.Shutdown()
	if srtt <= 0 {
		t.Fatal("no RTT estimate after 20 exchanges")
	}
	// Path: two 1 Gb/s hops + ~1us props + router: well under 1ms.
	if srtt > sim.Millisecond {
		t.Fatalf("srtt %v implausibly large", srtt)
	}
}

func TestConnStatsCount(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	var server *Conn
	sb.Listen(99, func(c *Conn) { server = c })
	var client *Conn
	s.Spawn("c", func(p *sim.Proc) {
		client = Dial(p, sa, 1, 99, DialOptions{})
		client.Enqueue("a", 3000)
		client.Enqueue("b", 5000)
	})
	s.Run(2 * sim.Second)
	s.Shutdown()
	if client.MsgsSent != 2 || client.BytesSent != 8000 {
		t.Fatalf("client sent %d msgs / %d bytes", client.MsgsSent, client.BytesSent)
	}
	if server.MsgsRecv != 2 || server.BytesRecv != 8000 {
		t.Fatalf("server got %d msgs / %d bytes", server.MsgsRecv, server.BytesRecv)
	}
}

func TestZeroByteMessage(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	var got *Message
	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) { got = &m })
	})
	s.Spawn("c", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		c.Enqueue("empty", 0)
	})
	s.Run(1 * sim.Second)
	s.Shutdown()
	if got == nil || got.Meta != "empty" {
		t.Fatal("zero-byte message not delivered")
	}
}

func TestEnqueueAfterCloseDropsQuietly(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	sb.Listen(99, func(c *Conn) {})
	s.Spawn("c", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		c.Close()
		c.WaitClosed(p)
		c.Enqueue("late", 100) // closed: silently ignored
	})
	s.Run(5 * sim.Second)
	s.Shutdown()
}

func TestManyConcurrentConnections(t *testing.T) {
	s := sim.New()
	n := netsim.New(s)
	r := netsim.NewRouter(n, "r", 1e6, 0)
	n.NIC(0).Attach(r, 1e9, sim.Microsecond)
	n.NIC(1).Attach(r, 1e9, sim.Microsecond)
	dom := NewDomain(n, DefaultConfig(1))
	sa := dom.NewStack(0, InstantProcessor{}, CostModel{})
	sb := dom.NewStack(1, InstantProcessor{}, CostModel{})
	served := 0
	sb.Listen(7, func(c *Conn) {
		c.SetOnMessage(func(m Message) {
			served++
			c.Enqueue("ok", 100)
		})
	})
	const conns = 50
	completed := 0
	for i := 0; i < conns; i++ {
		s.Spawn("cli", func(p *sim.Proc) {
			c := Dial(p, sa, 1, 7, DialOptions{})
			if c == nil {
				return
			}
			inbox := sim.NewMailbox(s)
			c.SetOnMessage(func(m Message) { inbox.Send(nil) })
			c.Enqueue("req", 2000)
			if _, ok := inbox.RecvTimeout(p, 30*sim.Second); ok {
				completed++
			}
			c.Close()
		})
	}
	s.Run(60 * sim.Second)
	s.Shutdown()
	if completed != conns {
		t.Fatalf("completed %d of %d concurrent connections", completed, conns)
	}
	if served != conns {
		t.Fatalf("server served %d", served)
	}
}

func TestDomainCounters(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	sb.Listen(99, func(c *Conn) {})
	s.Spawn("c", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		c.Enqueue("m", 10000)
	})
	s.Run(2 * sim.Second)
	s.Shutdown()
	dom := sa.Domain()
	if dom.SegsSent == 0 || dom.SegsRecv == 0 {
		t.Fatal("segment counters not incremented")
	}
	if dom.Handshakes != 2 {
		t.Fatalf("handshakes %d", dom.Handshakes)
	}
}
