package tcp

import (
	"testing"

	"dclue/internal/rng"
	"dclue/internal/sim"
)

// TestPoolsBalancedAfterFaultedRun is the kill/cancel stress witness for the
// static ownership contract. A transfer runs through a burst-loss window
// (the flt-loss schedule shape) and both stacks are power-cycled mid-window,
// while segments are in flight, retransmission timers are armed, and the
// receiver is holding out-of-order segments for reassembly. After the fabric
// quiesces, every pool-drawn object must be accounted for:
//
//   - the packet pool is fully recycled (packets die in the fabric or at a
//     NIC, never in a stack), and
//   - the only segments still outstanding are exactly the ones the fabric
//     dropped with their packets (AbandonedPayloads) — connection teardown
//     must have recycled everything a conn retained, including the
//     out-of-order reassembly buffer.
//
// The poolown analyzer proves the per-path obligations statically; this test
// pins the same invariant at run time across the paths the analyzer cannot
// follow (processor continuations, the fabric, timer cancellation).
func TestPoolsBalancedAfterFaultedRun(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	n := sa.dom.net
	dom := sa.dom
	link := n.NIC(0).Link()
	link.SetFaultRand(rng.Derive(1, "fault/pool-test"))

	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(Message) {})
	})
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		if c == nil {
			return // aborted during handshake; still a valid pool run
		}
		for i := 0; i < 60; i++ {
			c.Enqueue(i, 4000)
			p.Sleep(2 * sim.Millisecond)
		}
	})
	// Loss window 10–60 ms; both nodes lose power at 50 ms, inside the
	// window, so connections die with segments in flight and retransmits
	// pending.
	s.At(10*sim.Millisecond, func() { link.SetLoss(0.3) })
	oobAtAbort := 0
	s.At(50*sim.Millisecond, func() {
		// Record how many out-of-order segments the receiver is holding so
		// the test can prove the abort exercised reassembly-buffer teardown.
		for _, c := range sb.conns {
			oobAtAbort += len(c.oob)
		}
		sa.AbortConns()
		sb.AbortConns()
	})
	s.At(60*sim.Millisecond, func() { link.SetLoss(0) })

	s.Run(20 * sim.Second)
	s.Shutdown()

	if dom.Retransmits == 0 {
		t.Fatal("no retransmissions despite the loss window; stress did not engage")
	}
	if n.AbandonedPayloads == 0 {
		t.Fatal("no packets died carrying segments; stress did not engage")
	}
	if oobAtAbort == 0 {
		t.Fatal("receiver held no out-of-order segments at abort; pick a seed that does")
	}
	if out := n.PoolOutstanding(); out != 0 {
		t.Fatalf("packet pool outstanding %d after quiesce, want 0", out)
	}
	if got, want := dom.PoolOutstanding(), int(n.AbandonedPayloads); got != want {
		t.Fatalf("segment pool outstanding %d, want %d (= packets dropped with segments aboard): teardown leaked or double-freed",
			got, want)
	}
}
