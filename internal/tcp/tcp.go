// Package tcp models TCP Reno (with SACK-style loss recovery and ECN) at
// segment granularity over the netsim fabric. It provides message framing —
// the unit the DBMS layers think in — on top of the byte stream, and charges
// configurable protocol-processing path lengths to a host Processor so that
// software vs. hardware (offloaded) TCP can be compared, as in the paper's
// Fig 11.
package tcp

import (
	"fmt"
	"sort"

	"dclue/internal/netsim"
	"dclue/internal/sim"
)

// MSS is the maximum segment payload in bytes (Ethernet MTU minus headers).
const MSS = 1460

// HeaderBytes is the per-segment wire overhead (Ethernet+IP+TCP).
const HeaderBytes = 58

// Processor schedules protocol-processing work on a host CPU. The platform
// package implements it; tests can use instant processors. Process must
// eventually invoke done in kernel context.
type Processor interface {
	Process(pathLen float64, done func())
}

// ArgProcessor is an optional Processor extension for the per-segment hot
// path: completion is fn(arg) with a prebuilt continuation, so the caller
// does not allocate a closure per task. Stacks use it when the Processor
// provides it and fall back to Process otherwise.
type ArgProcessor interface {
	ProcessArg(pathLen float64, fn func(any), arg any)
}

// InstantProcessor is a Processor with zero cost (ideal full offload).
type InstantProcessor struct{}

// Process implements Processor by completing immediately.
func (InstantProcessor) Process(pathLen float64, done func()) { done() }

// ProcessArg implements ArgProcessor by completing immediately.
func (InstantProcessor) ProcessArg(pathLen float64, fn func(any), arg any) { fn(arg) }

// CostModel gives the path lengths (instructions) charged for protocol
// processing. Separate send and receive costs capture the copy asymmetry
// the paper cites (one copy on send, two on receive for software TCP).
type CostModel struct {
	SendPerSegment float64 // per outbound segment
	SendPerByte    float64 // per outbound payload byte
	RecvPerSegment float64 // per inbound segment (incl. pure ACKs)
	RecvPerByte    float64 // per inbound payload byte
	ConnSetup      float64 // per connection establishment/teardown event
}

// SendCost returns the instructions to transmit one segment.
func (c CostModel) SendCost(payload int) float64 {
	return c.SendPerSegment + c.SendPerByte*float64(payload)
}

// RecvCost returns the instructions to receive one segment.
func (c CostModel) RecvCost(payload int) float64 {
	return c.RecvPerSegment + c.RecvPerByte*float64(payload)
}

// Config sets the transport parameters for a Domain.
type Config struct {
	RecvWindowBytes int      // advertised receive window (paper: 64 KB)
	MinRTO          sim.Time // clamp on the retransmission timer
	InitialRTO      sim.Time
	MaxRTO          sim.Time
	ECN             bool // negotiate ECN on all connections
}

// DefaultConfig returns the paper's configuration at the given system scale
// factor: 64 KB receive buffers, SACK and ECN on, and TCP timer values
// "reduced by 100X" from the RFC defaults (§2.3). At the paper's scale
// factor of 100 the minimum RTO is 200 ms against worst-case queueing RTTs
// of ~50 ms on the scaled 10 Mb/s links (64 KB of window draining at line
// rate), preserving the real-world property that the RTO floor sits safely
// above the RTT so timeouts remain a last resort behind fast retransmit.
func DefaultConfig(scale float64) Config {
	unit := scale / 100
	return Config{
		RecvWindowBytes: 64 * 1024,
		MinRTO:          sim.Time(200 * unit * float64(sim.Millisecond)),
		InitialRTO:      sim.Time(600 * unit * float64(sim.Millisecond)),
		MaxRTO:          sim.Time(6 * unit * float64(sim.Second)),
		ECN:             true,
	}
}

// Domain is a collection of stacks sharing a fabric and configuration.
type Domain struct {
	sim    *sim.Sim
	net    *netsim.Network
	cfg    Config
	nextID uint64

	// segPool recycles wire segments: the sender draws from the pool, the
	// receiving stack returns each segment once it has been fully consumed.
	// Segments dropped in the fabric fall to the garbage collector; the
	// network counts each one in AbandonedPayloads, which is what keeps
	// PoolOutstanding auditable after a faulted run.
	segPool []*segment

	// segAllocs/segFrees audit the pool contract; see PoolOutstanding.
	segAllocs, segFrees int64

	// Domain-wide statistics.
	SegsSent     uint64
	SegsRecv     uint64
	Retransmits  uint64
	Resets       uint64
	Handshakes   uint64
	ECNCwndCuts  uint64
	FastRecovers uint64
}

// NewDomain creates a TCP domain over the given network.
func NewDomain(n *netsim.Network, cfg Config) *Domain {
	return &Domain{sim: n.Sim(), net: n, cfg: cfg}
}

// PoolOutstanding reports how many pool-drawn segments are live. After a
// run in which every connection finished or was aborted, the only legal
// residue is the segments the fabric dropped with their packets
// (netsim.Network.AbandonedPayloads); anything beyond that is a leak.
func (d *Domain) PoolOutstanding() int {
	return int(d.segAllocs - d.segFrees)
}

// allocSeg draws a zeroed segment from the pool; the caller owns it and
// must send it or free it on every path.
//
//pool:alloc
func (d *Domain) allocSeg() *segment {
	d.segAllocs++
	if n := len(d.segPool); n > 0 {
		seg := d.segPool[n-1]
		d.segPool[n-1] = nil
		d.segPool = d.segPool[:n-1]
		return seg
	}
	return &segment{}
}

// freeSeg recycles a fully-consumed segment, keeping its sack buffer.
//
//pool:free
func (d *Domain) freeSeg(seg *segment) {
	d.segFrees++
	sacks := seg.sacks[:0]
	*seg = segment{}
	seg.sacks = sacks
	d.segPool = append(d.segPool, seg)
}

// Stack is one host's TCP instance. It implements netsim.Endpoint.
type Stack struct {
	dom       *Domain
	addr      netsim.Addr
	proc      Processor
	argProc   ArgProcessor // non-nil when proc supports the no-closure path
	costs     CostModel
	conns     map[uint64]*Conn
	listeners map[int]func(*Conn)

	// Prebuilt continuations for the per-segment hot path.
	recvFn func(any)
	sendFn func(any)
}

// NewStack creates a host stack at addr, registers it as the NIC endpoint,
// and charges protocol work to proc using costs.
func (d *Domain) NewStack(addr netsim.Addr, proc Processor, costs CostModel) *Stack {
	st := &Stack{
		dom:       d,
		addr:      addr,
		proc:      proc,
		costs:     costs,
		conns:     make(map[uint64]*Conn),
		listeners: make(map[int]func(*Conn)),
	}
	st.argProc, _ = proc.(ArgProcessor)
	st.recvFn = func(v any) { st.handleSegment(v.(*segment)) }
	st.sendFn = func(v any) { st.putOnWire(v.(*segment)) }
	d.net.NIC(addr).SetEndpoint(st)
	return st
}

// Addr returns the stack's fabric address.
func (s *Stack) Addr() netsim.Addr { return s.addr }

// Domain returns the stack's domain.
func (s *Stack) Domain() *Domain { return s.dom }

// SetCosts replaces the stack's protocol cost model (offload experiments).
func (s *Stack) SetCosts(c CostModel) { s.costs = c }

// SetProcessor repoints protocol work at a new CPU complex; a restarted node
// keeps its stack (peers hold its address) but boots fresh processors.
func (s *Stack) SetProcessor(proc Processor) {
	s.proc = proc
	s.argProc, _ = proc.(ArgProcessor)
}

// AbortConns abandons every connection on the stack without wire traffic —
// the node lost power; nothing it could say would reach anyone. Connections
// die in id order so teardown side effects stay deterministic.
func (s *Stack) AbortConns() {
	ids := make([]uint64, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if c, ok := s.conns[id]; ok {
			c.Abort()
		}
	}
}

// Listen registers accept for connections arriving on port. The callback
// runs in kernel context once the connection is established.
func (s *Stack) Listen(port int, accept func(*Conn)) {
	if _, dup := s.listeners[port]; dup {
		panic(fmt.Sprintf("tcp: duplicate listener on port %d", port))
	}
	s.listeners[port] = accept
}

// Deliver implements netsim.Endpoint: an inbound frame. The packet is
// consumed within this call (netsim recycles it on return); only the payload
// segment travels on into protocol processing.
func (s *Stack) Deliver(pkt *netsim.Packet) {
	seg := pkt.Payload.(*segment)
	if pkt.Marked {
		seg.marked = true
	}
	s.dom.SegsRecv++
	if s.argProc != nil {
		s.argProc.ProcessArg(s.costs.RecvCost(seg.payload), s.recvFn, seg)
		return
	}
	s.proc.Process(s.costs.RecvCost(seg.payload), func() { s.handleSegment(seg) })
}

// handleSegment runs after receive-side protocol processing. It recycles the
// segment unless the connection retained it (out-of-order data waiting for
// reassembly).
func (s *Stack) handleSegment(seg *segment) {
	if seg.kind == segSYN {
		s.handleSYN(seg, seg.from)
		s.dom.freeSeg(seg)
		return
	}
	c, ok := s.conns[seg.conn]
	if !ok {
		s.dom.freeSeg(seg) // connection gone (reset/closed); drop silently
		return
	}
	if !c.handleSegment(seg) {
		s.dom.freeSeg(seg)
	}
}

// handleSYN creates the passive side of a connection.
func (s *Stack) handleSYN(seg *segment, from netsim.Addr) {
	if c, ok := s.conns[seg.conn]; ok {
		// Retransmitted SYN: resend SYNACK.
		c.sendControl(segSYNACK)
		return
	}
	accept, ok := s.listeners[seg.port]
	if !ok {
		return // no listener: black-hole (dialer will time out)
	}
	c := newConn(s, seg.conn, from, seg.class, seg.tc, seg.ecnOn, seg.maxRetx)
	c.state = stSynRcvd
	c.acceptFn = accept
	s.conns[seg.conn] = c
	s.proc.Process(s.costs.ConnSetup, func() { c.sendControl(segSYNACK) })
}

// sendSegment stamps the frame and pushes it through send-side processing
// onto the wire. It takes ownership of the segment: after protocol
// processing it rides a packet into the fabric, where it is either
// delivered to the peer stack (which frees or retains it) or dies with the
// packet. The hand-off happens through a processor continuation the
// ownership engine cannot follow, hence the explicit contract.
//
//pool:sink
func (s *Stack) sendSegment(seg *segment, to netsim.Addr) {
	s.dom.SegsSent++
	seg.from = s.addr
	seg.to = to
	if s.argProc != nil {
		s.argProc.ProcessArg(s.costs.SendCost(seg.payload), s.sendFn, seg)
		return
	}
	s.proc.Process(s.costs.SendCost(seg.payload), func() { s.putOnWire(seg) })
}

// putOnWire wraps the segment in a (pooled) packet and injects it into the
// fabric; runs after send-side protocol processing.
func (s *Stack) putOnWire(seg *segment) {
	pkt := s.dom.net.AllocPacket()
	pkt.Src = s.addr
	pkt.Dst = seg.to
	pkt.Size = seg.payload + HeaderBytes
	pkt.Class = seg.class
	pkt.TC = seg.tc
	pkt.ECN = seg.ecnOn && seg.kind == segData
	pkt.Payload = seg
	s.dom.net.Send(pkt)
}
