package tcp

import (
	"testing"

	"dclue/internal/rng"
	"dclue/internal/sim"
)

// TestRetransmissionRecoversInjectedBurstLoss: a burst-loss window on the
// sender's access link loses segments outright (not congestion drops); Reno
// retransmission must still deliver every message, in order, and the loss
// must be visible in the domain's retransmit counter and the network's
// fault-drop counter — not in ECN marks or queue tail-drops, which stay at
// whatever congestion alone produces (zero here).
func TestRetransmissionRecoversInjectedBurstLoss(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	n := sa.dom.net
	link := n.NIC(0).Link()
	link.SetFaultRand(rng.Derive(11, "fault/tcp-test"))

	var got []Message
	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) { got = append(got, m) })
	})

	const msgs = 60
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		if c == nil {
			t.Error("dial failed")
			return
		}
		for i := 0; i < msgs; i++ {
			c.Enqueue(i, 1200)
			p.Sleep(2 * sim.Millisecond)
		}
	})
	// Burst loss for a stretch of the transfer, then a clean tail so
	// recovery completes.
	s.At(10*sim.Millisecond, func() { link.SetLoss(0.3) })
	s.At(60*sim.Millisecond, func() { link.SetLoss(0) })

	s.Run(20 * sim.Second)
	s.Shutdown()

	if len(got) != msgs {
		t.Fatalf("delivered %d/%d messages through the loss window", len(got), msgs)
	}
	for i, m := range got {
		if m.Meta != i {
			t.Fatalf("out-of-order delivery: got[%d] = %v", i, m.Meta)
		}
	}
	if sa.dom.Retransmits == 0 {
		t.Fatal("no retransmissions recorded despite injected loss")
	}
	if n.FaultDrops == 0 {
		t.Fatal("injected losses not counted in Network.FaultDrops")
	}
	// The injected losses are wire losses, not queue overflows or
	// congestion marks: every recorded drop must be fault-attributed.
	if n.Drops != n.FaultDrops {
		t.Fatalf("drops=%d vs faultDrops=%d: tail-drop counter polluted by injected loss",
			n.Drops, n.FaultDrops)
	}
	if n.Marks != 0 {
		t.Fatalf("ECN marks=%d on an uncongested path", n.Marks)
	}
}

// TestCorruptionBehavesAsLossForTCP: corrupted frames are delivered to the
// host and discarded by its checksum; the transport must recover exactly as
// it does from loss.
func TestCorruptionBehavesAsLossForTCP(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	n := sa.dom.net
	link := n.NIC(0).Link()
	link.SetFaultRand(rng.Derive(12, "fault/tcp-test"))

	var got []Message
	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) { got = append(got, m) })
	})
	const msgs = 20
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		if c == nil {
			t.Error("dial failed")
			return
		}
		for i := 0; i < msgs; i++ {
			c.Enqueue(i, 1200)
			p.Sleep(2 * sim.Millisecond)
		}
	})
	s.At(5*sim.Millisecond, func() { link.SetCorrupt(0.25) })
	s.At(40*sim.Millisecond, func() { link.SetCorrupt(0) })

	s.Run(20 * sim.Second)
	s.Shutdown()

	if len(got) != msgs {
		t.Fatalf("delivered %d/%d messages through the corruption window", len(got), msgs)
	}
	if n.CorruptDrops == 0 {
		t.Fatal("no corruption drops recorded despite the window")
	}
	if sa.dom.Retransmits == 0 {
		t.Fatal("corruption must surface as retransmissions")
	}
}
