package tcp

import (
	"sort"

	"dclue/internal/netsim"
	"dclue/internal/sim"
	"dclue/internal/telemetry"
)

// Connection states.
type connState int

const (
	stSynSent connState = iota
	stSynRcvd
	stEstablished
	stFinWait // our FIN sent, awaiting ack
	stClosed  // orderly shutdown complete
	stReset   // torn down after too many retransmissions
)

// DefaultMaxRetx is the consecutive-RTO limit before a connection resets.
// The paper bumps this "to rather high values" for the static DBMS
// connections so overload cannot reset them.
const DefaultMaxRetx = 10

// Message is one framed application message delivered by a connection.
type Message struct {
	Meta any
	Size int
}

// Conn is one endpoint of a TCP connection.
type Conn struct {
	stack   *Stack
	id      uint64
	remote  netsim.Addr
	class   netsim.Class
	tc      telemetry.Class // default traffic class for messages and control segments
	ecnOn   bool
	maxRetx int
	state   connState

	// Send side. segs holds every data segment ever queued; indexes are
	// sequence numbers.
	segs      []*sndSeg
	sndUna    int // first unacked seq
	sndNxt    int // next never-sent seq
	sacked    int // count of sacked segs in [sndUna, sndNxt)
	cwnd      float64
	ssthresh  float64
	dupAcks   int
	inRecov   bool
	recovPt   int
	rtxScan   int // next seq to consider for SACK-hole retransmission
	srtt      sim.Time
	rttvar    sim.Time
	rto       sim.Time
	rtoTimer  sim.EventID
	rtoArmed  bool
	rtoFn     func() // prebuilt onRTO continuation (no per-arm closure)
	rtoCount  int    // consecutive expiries
	cutPoint  int    // sndNxt at last ECN-induced cut
	finQueued bool
	finSeq    int

	// Receive side.
	rcvNxt   int
	oob      map[int]*segment
	finRcvd  bool
	rfinSeq  int
	echoECN  bool
	rwndSegs int

	// Application interface.
	onMessage func(m Message)
	onClose   func(reset bool)
	inbox     *sim.Mailbox // established/closed notifications for Dial/Close
	acceptFn  func(*Conn)
	dialPort  int

	// Per-connection statistics.
	BytesSent   uint64
	BytesRecv   uint64
	MsgsSent    uint64
	MsgsRecv    uint64
	Retransmits uint64
}

type sndSeg struct {
	payload int
	meta    any
	msgSize int
	tc      telemetry.Class
	sentAt  sim.Time
	acked   bool
	sacked  bool
	rtx     bool // ever retransmitted (Karn)
	sent    bool
}

func newConn(s *Stack, id uint64, remote netsim.Addr, class netsim.Class, tc telemetry.Class, ecn bool, maxRetx int) *Conn {
	cfg := s.dom.cfg
	c := &Conn{
		stack:    s,
		id:       id,
		remote:   remote,
		class:    class,
		tc:       tc,
		ecnOn:    ecn && cfg.ECN,
		maxRetx:  maxRetx,
		cwnd:     2,
		ssthresh: 64,
		rto:      cfg.InitialRTO,
		oob:      make(map[int]*segment),
		rwndSegs: cfg.RecvWindowBytes / MSS,
		inbox:    sim.NewMailbox(s.dom.sim),
	}
	c.rtoFn = c.onRTO
	return c
}

// DialOptions tunes a new connection.
type DialOptions struct {
	Class   netsim.Class
	TC      telemetry.Class // traffic class for telemetry attribution
	MaxRetx int             // 0 means DefaultMaxRetx
}

// Dial opens a connection from s to the given address and port, blocking
// the calling process until the handshake completes. It returns nil if the
// connection could not be established (reset during handshake).
func Dial(p *sim.Proc, s *Stack, to netsim.Addr, port int, opts DialOptions) *Conn {
	maxRetx := opts.MaxRetx
	if maxRetx == 0 {
		maxRetx = DefaultMaxRetx
	}
	s.dom.nextID++
	c := newConn(s, s.dom.nextID, to, opts.Class, opts.TC, true, maxRetx)
	c.state = stSynSent
	c.dialPort = port
	s.conns[c.id] = c
	s.proc.Process(s.costs.ConnSetup, func() {
		c.sendControl(segSYN)
		c.armRTO()
	})
	v := c.inbox.Recv(p)
	if v == "established" {
		return c
	}
	return nil
}

// SetOnMessage registers the in-order message delivery callback (kernel
// context).
func (c *Conn) SetOnMessage(fn func(m Message)) { c.onMessage = fn }

// SetOnClose registers a callback fired when the connection fully closes or
// resets.
func (c *Conn) SetOnClose(fn func(reset bool)) { c.onClose = fn }

// Remote returns the peer address.
func (c *Conn) Remote() netsim.Addr { return c.remote }

// State helpers.
func (c *Conn) Established() bool { return c.state == stEstablished }

// IsReset reports whether the connection died from retransmission overrun.
func (c *Conn) IsReset() bool { return c.state == stReset }

// Enqueue frames a message of size bytes onto the connection. meta rides on
// the final segment and is handed to the peer's OnMessage. Enqueue never
// blocks; the send buffer is unbounded and actual transmission is paced by
// the congestion and receive windows. Safe from kernel or process context.
func (c *Conn) Enqueue(meta any, size int) { c.EnqueueTC(meta, size, c.tc) }

// EnqueueTC is Enqueue with an explicit traffic class for this message's
// segments, for senders that multiplex workloads over one connection (the
// membership heartbeats riding the IPC mesh). The class is inert data: it
// only feeds telemetry attribution, never queueing or pacing decisions.
func (c *Conn) EnqueueTC(meta any, size int, tc telemetry.Class) {
	if c.state == stClosed || c.state == stReset {
		return
	}
	if c.finQueued {
		panic("tcp: Enqueue after Close")
	}
	c.MsgsSent++
	c.BytesSent += uint64(size)
	remaining := size
	for remaining > 0 || size == 0 {
		chunk := remaining
		if chunk > MSS {
			chunk = MSS
		}
		if chunk == 0 {
			chunk = 1 // zero-length app message still needs a carrier
		}
		remaining -= chunk
		seg := &sndSeg{payload: chunk, tc: tc}
		if remaining <= 0 {
			seg.meta = meta
			seg.msgSize = size
		}
		c.segs = append(c.segs, seg)
		if remaining <= 0 {
			break
		}
	}
	c.trySend()
}

// Close performs an orderly shutdown after all queued data: FIN is sent
// once everything else is acknowledged. Non-blocking; OnClose fires when
// done.
func (c *Conn) Close() {
	if c.state == stClosed || c.state == stReset || c.finQueued {
		return
	}
	c.finQueued = true
	c.finSeq = len(c.segs)
	c.trySend()
}

// sendControl emits a control segment of the given kind.
func (c *Conn) sendControl(kind segKind) {
	seg := c.stack.dom.allocSeg()
	seg.conn = c.id
	seg.kind = kind
	seg.port = c.dialPort
	seg.class = c.class
	seg.tc = c.tc
	seg.ecnOn = c.ecnOn
	seg.maxRetx = c.maxRetx
	if kind == segACK {
		seg.ack = c.rcvNxt
		seg.sacks = c.appendSacks(seg.sacks[:0])
		seg.ecnEcho = c.echoECN
		c.echoECN = false
	}
	if kind == segFIN {
		seg.seq = c.finSeq
	}
	c.stack.sendSegment(seg, c.remote)
}

// appendSacks appends up to 16 out-of-order sequence numbers held, in sorted
// order (map iteration order must not leak into the simulation). The caller
// passes a reusable buffer so steady-state acking does not allocate.
func (c *Conn) appendSacks(buf []int) []int {
	if len(c.oob) == 0 {
		return buf
	}
	for seq := range c.oob {
		buf = append(buf, seq)
	}
	sort.Ints(buf)
	if len(buf) > 16 {
		buf = buf[:16]
	}
	return buf
}

// flight returns outstanding unacked, un-sacked segments.
func (c *Conn) flight() int { return c.sndNxt - c.sndUna - c.sacked }

// trySend transmits new segments while the windows allow, plus the FIN when
// its turn comes.
func (c *Conn) trySend() {
	if c.state != stEstablished && c.state != stFinWait {
		return
	}
	for c.sndNxt < len(c.segs) &&
		float64(c.flight()) < c.cwnd &&
		c.sndNxt-c.sndUna < c.rwndSegs {
		c.transmit(c.sndNxt)
		c.sndNxt++
	}
	if c.finQueued && c.state == stEstablished && c.sndUna == len(c.segs) && c.sndNxt == len(c.segs) {
		c.state = stFinWait
		c.sendControl(segFIN)
		c.armRTO()
	}
	if c.flight() > 0 && !c.rtoArmed {
		c.armRTO()
	}
}

// transmit puts segment seq on the wire.
func (c *Conn) transmit(seq int) {
	s := c.segs[seq]
	if s.sent {
		s.rtx = true
		c.Retransmits++
		c.stack.dom.Retransmits++
	}
	s.sent = true
	s.sentAt = c.stack.dom.sim.Now()
	out := c.stack.dom.allocSeg()
	out.conn = c.id
	out.kind = segData
	out.class = c.class
	out.tc = s.tc
	out.ecnOn = c.ecnOn
	out.seq = seq
	out.payload = s.payload
	out.meta = s.meta
	out.msgSize = s.msgSize
	out.rtx = s.rtx
	c.stack.sendSegment(out, c.remote)
}

// handleSegment is the per-connection receive path (post CPU processing). It
// reports whether the connection retained the segment (out-of-order data held
// for reassembly); when false the caller recycles it.
func (c *Conn) handleSegment(seg *segment) bool {
	if c.state == stClosed {
		// TIME_WAIT-ish: keep acking the peer's FIN/data retransmissions so
		// the peer can finish too.
		if seg.kind == segFIN || seg.kind == segData {
			c.sendControl(segACK)
		}
		return false
	}
	if c.state == stReset {
		return false
	}
	switch seg.kind {
	case segSYNACK:
		if c.state == stSynSent {
			c.state = stEstablished
			c.disarmRTO()
			c.rtoCount = 0
			c.stack.dom.Handshakes++
			c.sendControl(segACK)
			c.inbox.Send("established")
			c.trySend()
		} else {
			c.sendControl(segACK) // duplicate SYNACK: re-ack
		}
	case segACK:
		if c.state == stSynRcvd {
			c.establishPassive()
		}
		c.handleAck(seg)
	case segData:
		if c.state == stSynRcvd {
			c.establishPassive()
		}
		return c.handleData(seg)
	case segFIN:
		c.finRcvd = true
		c.rfinSeq = seg.seq
		c.sendControl(segACK)
		c.maybeFinish()
	case segRST:
		c.teardown(true)
	}
	return false
}

// establishPassive completes the passive open.
func (c *Conn) establishPassive() {
	c.state = stEstablished
	c.disarmRTO()
	c.stack.dom.Handshakes++
	if c.acceptFn != nil {
		fn := c.acceptFn
		c.acceptFn = nil
		fn(c)
	}
}

// handleData processes an inbound data segment and acks it, reporting
// whether the segment was retained in the out-of-order buffer.
func (c *Conn) handleData(seg *segment) (retained bool) {
	if seg.marked {
		c.echoECN = true
	}
	switch {
	case seg.seq < c.rcvNxt:
		// Duplicate; re-ack.
	case seg.seq == c.rcvNxt:
		c.consume(seg) // caller recycles seg itself
		for {
			next, ok := c.oob[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.oob, c.rcvNxt)
			c.consume(next)
			c.stack.dom.freeSeg(next)
		}
	default:
		if _, dup := c.oob[seg.seq]; !dup {
			c.oob[seg.seq] = seg
			retained = true
		}
		// A duplicate of a held segment carries nothing new; recycle it.
	}
	c.sendControl(segACK)
	c.maybeFinish()
	return retained
}

// consume advances rcvNxt over one in-order segment, delivering a message
// if this segment completes one.
func (c *Conn) consume(seg *segment) {
	c.rcvNxt++
	c.BytesRecv += uint64(seg.payload)
	if seg.meta != nil || seg.msgSize > 0 {
		c.MsgsRecv++
		if c.onMessage != nil {
			c.onMessage(Message{Meta: seg.meta, Size: seg.msgSize})
		}
	}
}

// handleAck drives the Reno sender.
func (c *Conn) handleAck(seg *segment) {
	if c.state != stEstablished && c.state != stFinWait {
		return
	}
	// ECN: one multiplicative decrease per window.
	if seg.ecnEcho && c.sndUna >= c.cutPoint {
		c.ssthresh = maxf(c.cwnd/2, 2)
		c.cwnd = c.ssthresh
		c.cutPoint = c.sndNxt
		c.stack.dom.ECNCwndCuts++
	}
	// Record SACK information.
	for _, sq := range seg.sacks {
		if sq >= c.sndUna && sq < len(c.segs) && !c.segs[sq].acked && !c.segs[sq].sacked {
			c.segs[sq].sacked = true
			c.sacked++
		}
	}
	switch {
	case seg.ack > c.sndUna:
		newly := seg.ack - c.sndUna
		for i := c.sndUna; i < seg.ack; i++ {
			s := c.segs[i]
			if s.sacked {
				c.sacked--
			}
			s.acked = true
			if !s.rtx {
				c.srttSample(s.sentAt) // Karn: never sample retransmitted segments
			}
		}
		c.sndUna = seg.ack
		c.rtoCount = 0
		c.dupAcks = 0
		if c.inRecov && c.sndUna >= c.recovPt {
			c.inRecov = false
			c.cwnd = c.ssthresh
		}
		if !c.inRecov {
			if c.cwnd < c.ssthresh {
				c.cwnd += float64(newly) // slow start
			} else {
				c.cwnd += float64(newly) / c.cwnd // congestion avoidance
			}
		}
		if c.flight() > 0 {
			c.armRTO()
		} else {
			c.disarmRTO()
		}
	case seg.ack == c.sndUna && c.flight() > 0:
		c.dupAcks++
		if !c.inRecov && c.dupAcks >= 3 {
			c.inRecov = true
			c.recovPt = c.sndNxt
			c.ssthresh = maxf(float64(c.flight())/2, 2)
			c.cwnd = c.ssthresh
			c.rtxScan = c.sndUna
			c.retransmitHole()
			c.stack.dom.FastRecovers++
		} else if c.inRecov {
			c.retransmitHole()
		}
	}
	c.trySend()
	c.maybeFinish()
}

// retransmitHole resends the next unacked, un-sacked segment below the
// recovery point (SACK-based recovery).
func (c *Conn) retransmitHole() {
	if c.rtxScan < c.sndUna {
		c.rtxScan = c.sndUna
	}
	for c.rtxScan < c.recovPt {
		s := c.segs[c.rtxScan]
		if !s.acked && !s.sacked {
			c.transmit(c.rtxScan)
			c.rtxScan++
			c.armRTO()
			return
		}
		c.rtxScan++
	}
}

// srttSample folds one RTT observation into the estimator (RFC 6298).
func (c *Conn) srttSample(sentAt sim.Time) bool {
	r := c.stack.dom.sim.Now() - sentAt
	if c.srtt == 0 {
		c.srtt = r
		c.rttvar = r / 2
	} else {
		d := c.srtt - r
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + r) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	cfg := c.stack.dom.cfg
	if c.rto < cfg.MinRTO {
		c.rto = cfg.MinRTO
	}
	if c.rto > cfg.MaxRTO {
		c.rto = cfg.MaxRTO
	}
	return true
}

// SRTT exposes the smoothed RTT estimate.
func (c *Conn) SRTT() sim.Time { return c.srtt }

// armRTO (re)starts the retransmission timer.
func (c *Conn) armRTO() {
	c.disarmRTO()
	shift := c.rtoCount // exponential backoff
	if shift > 6 {
		shift = 6 // MaxRTO clamps anyway; avoid shift overflow at high limits
	}
	d := c.rto << uint(shift)
	if max := c.stack.dom.cfg.MaxRTO; d > max {
		d = max
	}
	c.rtoArmed = true
	c.rtoTimer = c.stack.dom.sim.After(d, c.rtoFn)
}

func (c *Conn) disarmRTO() {
	if c.rtoArmed {
		c.stack.dom.sim.Cancel(c.rtoTimer)
		c.rtoArmed = false
	}
	// Drop the handle either way so a dead connection does not pin pool
	// bookkeeping and a stale ID can never be cancelled twice.
	c.rtoTimer = sim.EventID{}
}

// onRTO fires when the retransmission timer expires.
func (c *Conn) onRTO() {
	c.rtoArmed = false
	c.rtoTimer = sim.EventID{}
	c.rtoCount++
	if c.rtoCount > c.maxRetx {
		// Too many consecutive losses: reset, notifying the peer.
		rst := c.stack.dom.allocSeg()
		rst.conn = c.id
		rst.kind = segRST
		rst.class = c.class
		rst.tc = c.tc
		c.stack.sendSegment(rst, c.remote)
		c.teardown(true)
		return
	}
	switch c.state {
	case stSynSent:
		c.sendControl(segSYN)
		c.armRTO()
		return
	case stSynRcvd:
		c.sendControl(segSYNACK)
		c.armRTO()
		return
	case stFinWait:
		if c.sndUna >= len(c.segs) {
			c.sendControl(segFIN)
			c.armRTO()
			return
		}
	case stClosed, stReset:
		return
	}
	// Data RTO: collapse to slow start and resend the first hole.
	c.ssthresh = maxf(float64(c.flight())/2, 2)
	c.cwnd = 1
	c.inRecov = false
	c.dupAcks = 0
	if c.sndUna < len(c.segs) && c.sndUna < c.sndNxt {
		c.transmit(c.sndUna)
	}
	c.armRTO()
}

// maybeFinish completes an orderly close when both directions are done.
func (c *Conn) maybeFinish() {
	if c.state == stFinWait && c.sndUna >= len(c.segs) && c.finAcked() {
		c.teardown(false)
		return
	}
	if c.finRcvd && c.rcvNxt >= c.rfinSeq && c.state == stEstablished && !c.finQueued {
		// Peer closed; close our side too (half-close not modeled).
		c.Close()
	}
}

// finAcked approximates FIN acknowledgement: all data acked and the peer
// has acked at least the FIN sequence. We treat any ACK arriving in
// stFinWait with everything acked as covering the FIN.
func (c *Conn) finAcked() bool { return c.sndUna >= c.finSeq }

// Abort kills the connection locally without sending anything: the crash
// model for a powered-off host. The peer discovers the loss through its own
// retransmission timeouts (and a restarted host's fresh stack drops the
// stale segments). Safe to call from kernel context.
func (c *Conn) Abort() { c.teardown(true) }

// teardown finalizes the connection.
func (c *Conn) teardown(reset bool) {
	if c.state == stClosed || c.state == stReset {
		return
	}
	if reset {
		c.state = stReset
		c.stack.dom.Resets++
	} else {
		c.state = stClosed
	}
	c.disarmRTO()
	// Return any retained out-of-order segments to the pool: the reassembly
	// gap they were waiting behind will never fill now. A closed connection
	// never touches c.oob again (handleSegment returns before reassembly for
	// stClosed/stReset), so freeing here cannot double-free. Keys are sorted
	// so the pool's free-list order stays deterministic.
	if len(c.oob) > 0 {
		seqs := make([]int, 0, len(c.oob))
		for seq := range c.oob {
			seqs = append(seqs, seq)
		}
		sort.Ints(seqs)
		for _, seq := range seqs {
			c.stack.dom.freeSeg(c.oob[seq])
		}
		c.oob = nil
	}
	// Linger (TIME_WAIT) so late retransmissions from the peer still find
	// us and get acked, then reap the connection state.
	linger := 2 * c.stack.dom.cfg.MaxRTO
	c.stack.dom.sim.After(linger, func() { delete(c.stack.conns, c.id) })
	if c.state == stReset {
		c.inbox.Send("reset")
	} else {
		c.inbox.Send("closed")
	}
	if c.onClose != nil {
		c.onClose(reset)
	}
}

// WaitClosed blocks the process until the connection closes or resets,
// returning true for orderly close.
func (c *Conn) WaitClosed(p *sim.Proc) bool {
	if c.state == stClosed {
		return true
	}
	if c.state == stReset {
		return false
	}
	v := c.inbox.Recv(p)
	return v == "closed"
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
