package tcp

import (
	"testing"

	"dclue/internal/netsim"
	"dclue/internal/sim"
)

// testNet builds two stacks joined by one router. Returns sim, the stacks,
// and the router for knob-twisting.
func testNet(t *testing.T, bps float64, fwdRate float64) (*sim.Sim, *Stack, *Stack, *netsim.Router) {
	t.Helper()
	s := sim.New()
	n := netsim.New(s)
	r := netsim.NewRouter(n, "r", fwdRate, 0)
	for _, a := range []netsim.Addr{0, 1} {
		n.NIC(a).Attach(r, bps, sim.Microsecond)
	}
	dom := NewDomain(n, DefaultConfig(1))
	sa := dom.NewStack(0, InstantProcessor{}, CostModel{})
	sb := dom.NewStack(1, InstantProcessor{}, CostModel{})
	return s, sa, sb, r
}

func TestHandshakeAndSmallMessage(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	var got []Message
	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) { got = append(got, m) })
	})
	var dialed *Conn
	s.Spawn("client", func(p *sim.Proc) {
		dialed = Dial(p, sa, 1, 99, DialOptions{})
		if dialed == nil {
			t.Error("dial failed")
			return
		}
		dialed.Enqueue("hello", 250)
	})
	s.Run(1 * sim.Second)
	s.Shutdown()
	if len(got) != 1 || got[0].Meta != "hello" || got[0].Size != 250 {
		t.Fatalf("got %+v", got)
	}
	if sa.dom.Handshakes != 2 {
		t.Fatalf("handshakes %d, want 2 (one per side)", sa.dom.Handshakes)
	}
}

func TestLargeMessageSegmentation(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	var got []Message
	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) { got = append(got, m) })
	})
	const size = 64 * 1024 // 45 segments
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		c.Enqueue("big", size)
	})
	s.Run(2 * sim.Second)
	s.Shutdown()
	if len(got) != 1 || got[0].Size != size {
		t.Fatalf("got %+v", got)
	}
}

func TestManyMessagesInOrder(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e8, 1e6)
	var got []int
	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) { got = append(got, m.Meta.(int)) })
	})
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		for i := 0; i < 50; i++ {
			c.Enqueue(i, 8000)
		}
	})
	s.Run(5 * sim.Second)
	s.Shutdown()
	if len(got) != 50 {
		t.Fatalf("delivered %d messages", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestBidirectional(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	var fromClient, fromServer []Message
	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) {
			fromClient = append(fromClient, m)
			c.Enqueue("reply", 500)
		})
	})
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		c.SetOnMessage(func(m Message) { fromServer = append(fromServer, m) })
		c.Enqueue("req", 250)
	})
	s.Run(1 * sim.Second)
	s.Shutdown()
	if len(fromClient) != 1 || len(fromServer) != 1 {
		t.Fatalf("client->server %d, server->client %d", len(fromClient), len(fromServer))
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e8, 1e7) // 100 Mb/s
	var rcvd int
	sb.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) { rcvd += m.Size })
	})
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		for i := 0; i < 200; i++ {
			c.Enqueue(i, 64*1024)
		}
	})
	s.Run(2 * sim.Second)
	s.Shutdown()
	// 100 Mb/s for ~2s = 25 MB ceiling; expect at least half after slow start.
	if rcvd < 10*1024*1024 {
		t.Fatalf("received %d bytes in 2s on 100 Mb/s, want >=10MB", rcvd)
	}
}

func TestLossRecoveryUnderCongestion(t *testing.T) {
	// Two senders into one 10 Mb/s bottleneck port overflow the queue;
	// everything must still arrive, via fast retransmit/RTO.
	s := sim.New()
	n := netsim.New(s)
	r := netsim.NewRouter(n, "r", 1e6, 0)
	const nsend = 4 // 4 x 64KB windows overflow the 128KB port queue
	for a := netsim.Addr(0); a <= nsend; a++ {
		n.NIC(a).Attach(r, 1e7, sim.Microsecond)
	}
	cfg := DefaultConfig(1)
	cfg.ECN = false // force drops, not marks
	dom := NewDomain(n, cfg)
	recv := dom.NewStack(nsend, InstantProcessor{}, CostModel{})
	total := 0
	want := 0
	recv.Listen(99, func(c *Conn) {
		c.SetOnMessage(func(m Message) { total += m.Size })
	})
	for a := netsim.Addr(0); a < nsend; a++ {
		st := dom.NewStack(a, InstantProcessor{}, CostModel{})
		want += 100 * 16 * 1024
		s.Spawn("snd", func(p *sim.Proc) {
			c := Dial(p, st, nsend, 99, DialOptions{MaxRetx: 100})
			for i := 0; i < 100; i++ {
				c.Enqueue(i, 16*1024)
			}
		})
	}
	s.Run(20 * sim.Second)
	s.Shutdown()
	if dom.Retransmits == 0 {
		t.Fatal("expected retransmissions under congestion")
	}
	if total != want {
		t.Fatalf("received %d bytes, want %d (reliability violated)", total, want)
	}
}

func TestECNAvoidsDrops(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e7, 1e6) // 10 Mb/s bottleneck at host NIC? egress won't mark
	_ = sa
	_ = sb
	_ = s
	// ECN marking happens at router ports; build a dedicated scenario:
	s2 := sim.New()
	n := netsim.New(s2)
	r := netsim.NewRouter(n, "r", 1e6, 0)
	n.NIC(0).Attach(r, 1e9, sim.Microsecond)
	n.NIC(1).Attach(r, 1e7, sim.Microsecond) // slow egress toward receiver
	dom := NewDomain(n, DefaultConfig(1))
	st0 := dom.NewStack(0, InstantProcessor{}, CostModel{})
	st1 := dom.NewStack(1, InstantProcessor{}, CostModel{})
	got := 0
	st1.Listen(9, func(c *Conn) {
		c.SetOnMessage(func(m Message) { got += m.Size })
	})
	s2.Spawn("snd", func(p *sim.Proc) {
		c := Dial(p, st0, 1, 9, DialOptions{})
		for i := 0; i < 100; i++ {
			c.Enqueue(i, 32*1024)
		}
	})
	s2.Run(10 * sim.Second)
	s2.Shutdown()
	if dom.ECNCwndCuts == 0 {
		t.Fatal("expected ECN-induced cwnd cuts")
	}
	if got != 100*32*1024 {
		t.Fatalf("received %d", got)
	}
}

func TestOrderlyClose(t *testing.T) {
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	serverClosed := false
	var serverReset bool
	sb.Listen(99, func(c *Conn) {
		c.SetOnClose(func(reset bool) { serverClosed = true; serverReset = reset })
	})
	clientOK := false
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{})
		c.Enqueue("x", 1000)
		c.Close()
		clientOK = c.WaitClosed(p)
	})
	s.Run(5 * sim.Second)
	s.Shutdown()
	if !clientOK {
		t.Fatal("client close not orderly")
	}
	if !serverClosed || serverReset {
		t.Fatalf("server closed=%v reset=%v", serverClosed, serverReset)
	}
}

func TestDialNoListenerTimesOut(t *testing.T) {
	s, sa, _, _ := testNet(t, 1e9, 1e6)
	var c *Conn
	done := false
	s.Spawn("client", func(p *sim.Proc) {
		c = Dial(p, sa, 1, 7, DialOptions{MaxRetx: 3})
		done = true
	})
	s.Run(120 * sim.Second)
	s.Shutdown()
	if !done {
		t.Fatal("Dial never returned")
	}
	if c != nil {
		t.Fatal("Dial to missing listener succeeded")
	}
}

func TestResetAfterMaxRetx(t *testing.T) {
	// Kill the path mid-flight by dropping the router's forwarding ability:
	// use a tiny forwarding queue and huge load so everything drops... easier:
	// give the connection maxRetx=1 and a black-holed peer via no listener,
	// covered above. Here verify data-phase reset: stop the sim network by
	// detaching the receiver endpoint.
	s, sa, sb, _ := testNet(t, 1e9, 1e6)
	resetSeen := false
	sb.Listen(99, func(c *Conn) {})
	s.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, sa, 1, 99, DialOptions{MaxRetx: 2})
		if c == nil {
			t.Error("dial failed")
			return
		}
		// Black-hole the peer: remove its conn state so data is ignored
		// (simulates a dead peer).
		for id := range sb.conns {
			delete(sb.conns, id)
		}
		c.SetOnClose(func(reset bool) { resetSeen = reset })
		c.Enqueue("x", 1000)
	})
	s.Run(60 * sim.Second)
	s.Shutdown()
	if !resetSeen {
		t.Fatal("connection did not reset after max retransmissions")
	}
}

func TestCostModelDelaysDelivery(t *testing.T) {
	// A processor that adds fixed latency per operation should slow the
	// transfer measurably.
	run := func(mk func(*sim.Sim) Processor) sim.Time {
		s := sim.New()
		n := netsim.New(s)
		r := netsim.NewRouter(n, "r", 1e6, 0)
		n.NIC(0).Attach(r, 1e9, sim.Microsecond)
		n.NIC(1).Attach(r, 1e9, sim.Microsecond)
		dom := NewDomain(n, DefaultConfig(1))
		proc := mk(s)
		st0 := dom.NewStack(0, proc, CostModel{SendPerSegment: 1})
		st1 := dom.NewStack(1, proc, CostModel{RecvPerSegment: 1})
		var doneAt sim.Time
		st1.Listen(9, func(c *Conn) {
			c.SetOnMessage(func(m Message) { doneAt = s.Now() })
		})
		s.Spawn("snd", func(p *sim.Proc) {
			c := Dial(p, st0, 1, 9, DialOptions{})
			c.Enqueue("m", 60000)
		})
		s.Run(10 * sim.Second)
		s.Shutdown()
		return doneAt
	}
	fast := run(func(*sim.Sim) Processor { return InstantProcessor{} })
	slow := run(func(s *sim.Sim) Processor { return &delayProcessor{s: s, d: 100 * sim.Microsecond} })
	if slow <= fast {
		t.Fatalf("slow processor (%v) not slower than instant (%v)", slow, fast)
	}
}

// delayProcessor completes each work item after a fixed delay.
type delayProcessor struct {
	s *sim.Sim
	d sim.Time
}

func (p *delayProcessor) Process(pathLen float64, done func()) {
	p.s.After(p.d, done)
}
