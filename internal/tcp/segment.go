package tcp

import (
	"dclue/internal/netsim"
	"dclue/internal/telemetry"
)

// segment kinds.
type segKind int

const (
	segSYN segKind = iota
	segSYNACK
	segACK // pure acknowledgement
	segData
	segFIN
	segRST
)

func (k segKind) String() string {
	switch k {
	case segSYN:
		return "SYN"
	case segSYNACK:
		return "SYNACK"
	case segACK:
		return "ACK"
	case segData:
		return "DATA"
	case segFIN:
		return "FIN"
	case segRST:
		return "RST"
	}
	return "?"
}

// segment is the model's TCP segment. Sequence numbers count segments, not
// bytes: every data segment of a connection gets the next integer. This
// keeps the congestion/loss machinery exact while avoiding byte-range
// bookkeeping; cwnd and windows are tracked in segments.
//
// Segments are pooled per Domain (see allocSeg/freeSeg): the sending stack
// draws one, the receiving stack recycles it once fully consumed, so the
// wire path allocates nothing in steady state.
type segment struct {
	conn    uint64
	kind    segKind
	port    int         // SYN only: destination port
	from    netsim.Addr // sender stack address (receive-path dispatch key)
	to      netsim.Addr // destination address (send-path routing)
	class   netsim.Class
	tc      telemetry.Class // workload traffic class, telemetry attribution only
	ecnOn   bool
	maxRetx int // SYN only: propagates connection policy

	seq     int   // data/FIN: segment sequence number
	ack     int   // cumulative ack: next expected seq
	sacks   []int // out-of-order segments held by receiver
	ecnEcho bool  // receiver saw CE mark
	marked  bool  // set by the fabric (CE)

	payload int // payload bytes (data segments)
	meta    any // non-nil on the last segment of a message
	msgSize int // total message size, on the last segment
	rtx     bool
}
