// Package ftp provides the cross-traffic application of the paper's QoS
// experiments (§3.4): an FTP-like workload with 50% GETs and 50% PUTs, a
// fresh TCP connection per transfer (making it more "stubborn" than the
// static DBMS connections), and file sizes similar to DBMS transfer sizes
// (control-message-sized and block-sized-and-up).
package ftp

import (
	"fmt"

	"dclue/internal/netsim"
	"dclue/internal/rng"
	"dclue/internal/sim"
	"dclue/internal/tcp"
	"dclue/internal/telemetry"
)

// Port is the FTP server listener port.
const Port = 21

// reqGet asks the server to send size bytes; reqPut announces size bytes
// are coming. ack completes a PUT.
type (
	reqGet struct{ size int }
	reqPut struct{ size int }
	ack    struct{}
)

// Server serves GET/PUT transfers.
type Server struct {
	Served uint64
}

// NewServer attaches a server to the stack.
func NewServer(st *tcp.Stack) *Server {
	s := &Server{}
	st.Listen(Port, func(conn *tcp.Conn) {
		var pending int // bytes expected from an in-flight PUT
		conn.SetOnMessage(func(m tcp.Message) {
			switch r := m.Meta.(type) {
			case reqGet:
				conn.Enqueue(ack{}, r.size) // file data
				s.Served++
			case reqPut:
				pending = r.size
			case ack: // PUT payload arrives as a data message with ack meta
				_ = pending
				conn.Enqueue(ack{}, 32)
				s.Served++
			}
		})
	})
	return s
}

// Generator drives Poisson transfer arrivals at a target offered load.
type Generator struct {
	sim    *sim.Sim
	stack  *tcp.Stack
	target netsim.Addr
	class  netsim.Class
	rnd    *rng.Stream

	offeredBps float64

	// Stats.
	Started        uint64
	Completed      uint64
	Failed         uint64
	BytesDelivered uint64
}

// NewGenerator creates an idle generator; call Start.
func NewGenerator(s *sim.Sim, stack *tcp.Stack, target netsim.Addr,
	class netsim.Class, offeredBps float64, seed uint64) *Generator {
	return &Generator{
		sim:        s,
		stack:      stack,
		target:     target,
		class:      class,
		rnd:        rng.Derive(seed, "ftp-gen"),
		offeredBps: offeredBps,
	}
}

// fileSize draws a transfer size similar to DBMS message sizes: 30%
// control-sized (250 B), 70% block-sized and up (8-32 KB).
func (g *Generator) fileSize() int {
	if g.rnd.Bool(0.3) {
		return 250
	}
	return g.rnd.IntRange(8*1024, 32*1024)
}

// meanFileBits is the expectation of fileSize in bits.
func (g *Generator) meanFileBits() float64 {
	return (0.3*250 + 0.7*20*1024) * 8
}

// Start launches the arrival process.
func (g *Generator) Start() {
	if g.offeredBps <= 0 {
		return
	}
	g.sim.Spawn("ftp-arrivals", func(p *sim.Proc) {
		mean := g.meanFileBits() / g.offeredBps // seconds between arrivals
		i := 0
		for {
			p.Sleep(sim.FromSeconds(g.rnd.Exp(mean)))
			i++
			size := g.fileSize()
			get := g.rnd.Bool(0.5)
			g.sim.Spawn(fmt.Sprintf("ftp-%d", i), func(p *sim.Proc) {
				g.transfer(p, size, get)
			})
		}
	})
}

// transfer runs one GET or PUT on its own connection.
func (g *Generator) transfer(p *sim.Proc, size int, get bool) {
	g.Started++
	conn := tcp.Dial(p, g.stack, g.target, Port,
		tcp.DialOptions{Class: g.class, MaxRetx: 50, TC: telemetry.ClassFTP})
	if conn == nil {
		g.Failed++
		return
	}
	inbox := sim.NewMailbox(p.Sim())
	conn.SetOnMessage(func(m tcp.Message) { inbox.Send(m.Size) })
	if get {
		conn.Enqueue(reqGet{size: size}, 64)
	} else {
		conn.Enqueue(reqPut{size: size}, 64)
		conn.Enqueue(ack{}, size) // the file itself
	}
	v, ok := inbox.RecvTimeout(p, 300*sim.Second)
	if !ok || conn.IsReset() {
		g.Failed++
		conn.Close()
		return
	}
	g.Completed++
	if get {
		g.BytesDelivered += uint64(v.(int))
	} else {
		g.BytesDelivered += uint64(size)
	}
	conn.Close()
}

// ResetStats clears counters at the warmup boundary.
func (g *Generator) ResetStats() {
	g.Started, g.Completed, g.Failed, g.BytesDelivered = 0, 0, 0, 0
}
