package ftp

import (
	"testing"

	"dclue/internal/netsim"
	"dclue/internal/sim"
	"dclue/internal/tcp"
)

// rig builds a client and server stack joined by one router.
func rig(t *testing.T, bps float64) (*sim.Sim, *Generator, *Server) {
	t.Helper()
	s := sim.New()
	n := netsim.New(s)
	r := netsim.NewRouter(n, "r", 1e6, 0)
	n.NIC(0).Attach(r, bps, sim.Microsecond)
	n.NIC(1).Attach(r, bps, sim.Microsecond)
	dom := tcp.NewDomain(n, tcp.DefaultConfig(1))
	cli := dom.NewStack(0, tcp.InstantProcessor{}, tcp.CostModel{})
	srvStack := dom.NewStack(1, tcp.InstantProcessor{}, tcp.CostModel{})
	srv := NewServer(srvStack)
	gen := NewGenerator(s, cli, 1, netsim.ClassBestEffort, 10e6, 7)
	return s, gen, srv
}

func TestTransfersComplete(t *testing.T) {
	s, gen, srv := rig(t, 1e9)
	gen.Start()
	s.Run(10 * sim.Second)
	s.Shutdown()
	if gen.Completed == 0 {
		t.Fatal("no transfers completed")
	}
	if srv.Served == 0 {
		t.Fatal("server served nothing")
	}
	if gen.Failed > gen.Completed/10 {
		t.Fatalf("too many failures: %d of %d", gen.Failed, gen.Completed)
	}
}

func TestOfferedLoadApproximatelyMet(t *testing.T) {
	s, gen, _ := rig(t, 1e9) // plenty of bandwidth
	gen.Start()
	const horizon = 30 * sim.Second
	s.Run(horizon)
	s.Shutdown()
	gotBps := float64(gen.BytesDelivered) * 8 / horizon.Seconds()
	if gotBps < 0.7*10e6 || gotBps > 1.3*10e6 {
		t.Fatalf("delivered %.1f Mb/s, offered 10 Mb/s", gotBps/1e6)
	}
}

func TestBottleneckThrottlesDelivery(t *testing.T) {
	// Offered 10 Mb/s over a 2 Mb/s path: delivery must be capped well
	// below offered, without the generator deadlocking.
	s, gen, _ := rig(t, 2e6)
	gen.Start()
	const horizon = 30 * sim.Second
	s.Run(horizon)
	s.Shutdown()
	gotBps := float64(gen.BytesDelivered) * 8 / horizon.Seconds()
	if gotBps > 2.5e6 {
		t.Fatalf("delivered %.1f Mb/s over a 2 Mb/s link", gotBps/1e6)
	}
	if gen.Completed == 0 {
		t.Fatal("nothing completed under congestion")
	}
}

func TestFileSizesDBMSLike(t *testing.T) {
	_, gen, _ := rig(t, 1e9)
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		sz := gen.fileSize()
		switch {
		case sz == 250:
			small++
		case sz >= 8*1024 && sz <= 32*1024:
			large++
		default:
			t.Fatalf("file size %d outside DBMS-like ranges", sz)
		}
	}
	if small < 2000 || small > 4000 {
		t.Fatalf("control-sized fraction %d/10000, want ~30%%", small)
	}
	if large == 0 {
		t.Fatal("no block-sized transfers")
	}
}

func TestResetStats(t *testing.T) {
	s, gen, _ := rig(t, 1e9)
	gen.Start()
	s.Run(5 * sim.Second)
	gen.ResetStats()
	if gen.Completed != 0 || gen.BytesDelivered != 0 || gen.Started != 0 {
		t.Fatal("stats not cleared")
	}
	s.Shutdown()
}

func TestZeroOfferedLoadIsIdle(t *testing.T) {
	s := sim.New()
	n := netsim.New(s)
	r := netsim.NewRouter(n, "r", 1e6, 0)
	n.NIC(0).Attach(r, 1e9, sim.Microsecond)
	dom := tcp.NewDomain(n, tcp.DefaultConfig(1))
	cli := dom.NewStack(0, tcp.InstantProcessor{}, tcp.CostModel{})
	gen := NewGenerator(s, cli, 1, netsim.ClassBestEffort, 0, 7)
	gen.Start()
	s.Run(5 * sim.Second)
	s.Shutdown()
	if gen.Started != 0 {
		t.Fatal("transfers started at zero offered load")
	}
}
