package platform

import (
	"math"
	"testing"

	"dclue/internal/sim"
)

func testCfg() Config { return DefaultConfig(1) }

func TestPressureAnchors(t *testing.T) {
	// The calibration must reproduce the paper's published context-switch
	// costs: ~17.7K cycles at 20 active threads, ~69.7K at 75.
	s := sim.New()
	c := NewCPU(s, testCfg())
	cost := func(n float64) float64 {
		return c.cfg.CtxSwitchBase + c.cfg.CtxRefillMax*c.pressure(n)
	}
	if got := cost(20); math.Abs(got-17700) > 1000 {
		t.Errorf("ctx cost at 20 threads = %v cycles, want ~17700", got)
	}
	if got := cost(75); math.Abs(got-69700) > 3000 {
		t.Errorf("ctx cost at 75 threads = %v cycles, want ~69700", got)
	}
	if got := cost(5); got != c.cfg.CtxSwitchBase {
		t.Errorf("ctx cost below cache fit = %v, want base %v", got, c.cfg.CtxSwitchBase)
	}
}

func TestPressureMonotone(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	prev := -1.0
	for n := 0.0; n <= 200; n += 5 {
		p := c.pressure(n)
		if p < prev {
			t.Fatalf("pressure not monotone at n=%v", n)
		}
		if p < 0 || p >= 1 {
			t.Fatalf("pressure out of range at n=%v: %v", n, p)
		}
		prev = p
	}
}

func TestCPIRisesWithRemoteFraction(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	base := c.CPI()
	c.SetRemoteFraction(0.2)
	mid := c.CPI()
	c.SetRemoteFraction(0.8)
	high := c.CPI()
	if !(base < mid && mid < high) {
		t.Fatalf("CPI not increasing with remote fraction: %v %v %v", base, mid, high)
	}
	if base < c.cfg.BaseCPI {
		t.Fatalf("CPI %v below core CPI %v", base, c.cfg.BaseCPI)
	}
}

func TestCPIRatioAnchor(t *testing.T) {
	// CPI(n=75)/CPI(n=20) at the paper's cross-traffic operating point
	// should approximate 16.9/11.5. We test the stall-term ratio
	// (1+g*P(75))/(1+g*P(20)) ~= 1.5.
	s := sim.New()
	c := NewCPU(s, testCfg())
	g := c.cfg.ThrashMPIFactor
	r := (1 + g*c.pressure(75)) / (1 + g*c.pressure(20))
	want := (16.9 - 0.8) / (11.5 - 0.8) // stall-term ratio implied by the paper
	if math.Abs(r-want) > 0.1 {
		t.Fatalf("stall ratio %v, want ~%v", r, want)
	}
}

func TestExecuteTiming(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	var took sim.Time
	s.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		c.Execute(p, 3.2e6) // 1M cycles at CPI~? : at least BaseCPI*1M/3.2GHz
		took = p.Now() - start
	})
	s.Run(1 * sim.Second)
	s.Shutdown()
	min := sim.Time(float64(3.2e6) * c.cfg.BaseCPI / c.cfg.ClockHz * float64(sim.Second))
	if took < min {
		t.Fatalf("execute took %v, below core-CPI floor %v", took, min)
	}
	if took > 100*min {
		t.Fatalf("execute took %v, absurdly long", took)
	}
}

func TestTwoCPUsRunInParallel(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	var done []sim.Time
	for i := 0; i < 2; i++ {
		s.Spawn("w", func(p *sim.Proc) {
			c.Execute(p, 3.2e7)
			done = append(done, p.Now())
		})
	}
	s.Run(10 * sim.Second)
	s.Shutdown()
	if len(done) != 2 {
		t.Fatalf("completed %d", len(done))
	}
	// Both finish at the same time if they ran in parallel.
	if done[0] != done[1] {
		t.Fatalf("2 threads on 2 CPUs finished at %v and %v; expected parallel", done[0], done[1])
	}
}

func TestThirdThreadQueues(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	var done []sim.Time
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *sim.Proc) {
			c.Execute(p, 3.2e7)
			done = append(done, p.Now())
		})
	}
	s.Run(10 * sim.Second)
	s.Shutdown()
	if len(done) != 3 {
		t.Fatalf("completed %d", len(done))
	}
	if done[2] <= done[0] {
		t.Fatal("third thread did not queue behind the two processors")
	}
}

func TestDispatchChargesContextSwitch(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	var t1, t2 sim.Time
	s.Spawn("a", func(p *sim.Proc) {
		start := p.Now()
		c.Execute(p, 1e6)
		t1 = p.Now() - start
	})
	s.Run(1 * sim.Second)
	s.Shutdown()
	s2 := sim.New()
	c2 := NewCPU(s2, testCfg())
	s2.Spawn("b", func(p *sim.Proc) {
		start := p.Now()
		c2.Dispatch(p, 1e6)
		t2 = p.Now() - start
	})
	s2.Run(1 * sim.Second)
	s2.Shutdown()
	if t2 <= t1 {
		t.Fatalf("Dispatch (%v) not slower than Execute (%v)", t2, t1)
	}
	if c2.MeanCtxSwitchCycles() < c2.cfg.CtxSwitchBase {
		t.Fatalf("ctx cycles %v below base", c2.MeanCtxSwitchCycles())
	}
}

func TestInterruptPriority(t *testing.T) {
	// With both CPUs busy and a thread queued, interrupt work must still be
	// served before the queued thread.
	s := sim.New()
	cfg := testCfg()
	cfg.NumCPUs = 1
	c := NewCPU(s, cfg)
	var order []string
	s.Spawn("hog", func(p *sim.Proc) {
		c.Execute(p, 3.2e7) // long burst
		order = append(order, "hog")
	})
	s.Spawn("queued", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		c.Execute(p, 1e5)
		order = append(order, "thread")
	})
	s.At(2*sim.Millisecond, func() {
		c.Process(1e5, func() { order = append(order, "irq") })
	})
	s.Run(10 * sim.Second)
	s.Shutdown()
	if len(order) != 3 {
		t.Fatalf("order %v", order)
	}
	if order[0] != "hog" || order[1] != "irq" || order[2] != "thread" {
		t.Fatalf("interrupt did not preempt queue: %v", order)
	}
}

func TestProcessFromKernelContext(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	ran := false
	s.At(0, func() { c.Process(1000, func() { ran = true }) })
	s.Run(1 * sim.Second)
	s.Shutdown()
	if !ran {
		t.Fatal("interrupt work never completed")
	}
	if c.IRQInstr() != 1000 {
		t.Fatalf("irq instr %v", c.IRQInstr())
	}
}

func TestActiveThreadAccounting(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	for i := 0; i < 4; i++ {
		s.Spawn("w", func(p *sim.Proc) {
			c.Execute(p, 3.2e7)
		})
	}
	var snapshot float64
	s.At(sim.Millisecond, func() { snapshot = c.ActiveThreadsNow() })
	s.Run(10 * sim.Second)
	s.Shutdown()
	if snapshot != 4 {
		t.Fatalf("active threads %v at 1ms, want 4 (2 running + 2 queued)", snapshot)
	}
}

func TestUtilizationUnderLoad(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	// Keep both processors saturated for the whole run.
	for i := 0; i < 8; i++ {
		s.Spawn("w", func(p *sim.Proc) {
			for {
				c.Execute(p, 1e6)
			}
		})
	}
	s.Run(100 * sim.Millisecond)
	u := c.Utilization()
	s.Shutdown()
	if u < 0.95 {
		t.Fatalf("utilization %v under saturation", u)
	}
}

func TestCPIReactsToMemoryTraffic(t *testing.T) {
	// Driving lots of instructions raises the measured instruction rate,
	// which raises bus utilization and hence CPI, after a stat tick.
	s := sim.New()
	cfg := testCfg()
	cfg.MemBandwidth = 1e8 // tiny bus so the effect is visible
	c := NewCPU(s, cfg)
	idleCPI := c.CPI()
	for i := 0; i < 8; i++ {
		s.Spawn("w", func(p *sim.Proc) {
			for {
				c.Execute(p, 1e6)
			}
		})
	}
	s.Run(1 * sim.Second)
	loaded := c.CPI()
	s.Shutdown()
	if loaded <= idleCPI {
		t.Fatalf("CPI %v did not rise from idle %v under memory load", loaded, idleCPI)
	}
}

func TestResetStats(t *testing.T) {
	s := sim.New()
	c := NewCPU(s, testCfg())
	s.Spawn("w", func(p *sim.Proc) { c.Dispatch(p, 1e6) })
	s.Run(1 * sim.Second)
	c.ResetStats(s.Now())
	s.Shutdown()
	if c.InstrTotal() != 0 || c.MeanCtxSwitchCycles() != 0 {
		t.Fatal("stats not reset")
	}
}
