// Package platform models the server node hardware and OS behaviour the
// paper calibrates in §2.3: a dual-processor node executing work expressed
// as path lengths (instruction counts), with
//
//   - a CPI model: core CPI plus memory stalls, where stalls follow from
//     misses-per-instruction × memory latency × a blocking factor, and the
//     memory latency includes a bus/memory-channel queueing term;
//   - a thread model: context-switch cost that rises steeply once the
//     aggregate working set of active threads overflows the processor
//     cache (calibrated to the paper's published 17.7 K cycles at ~20
//     active threads and 69.7 K cycles at ~75);
//   - interrupt-priority protocol work, so message receives interrupt
//     application processing as in DCLUE.
package platform

import (
	"math"

	"dclue/internal/sim"
	"dclue/internal/stats"
	"dclue/internal/telemetry"
	"dclue/internal/trace"
)

// Config sets the node hardware parameters. All values are expressed for
// the scaled system (the paper divides clock rates by its scale factor and
// multiplies latencies by it; see core.Params).
type Config struct {
	NumCPUs int     // processors per node (paper: 2)
	ClockHz float64 // effective core clock

	BaseCPI float64 // CPI with no memory stalls

	// Memory system.
	MPI            float64  // cache misses per instruction at baseline
	MissBytes      float64  // bytes moved per miss (cache line)
	MemBandwidth   float64  // bytes/s across bus + memory channels
	MemLatency     sim.Time // unloaded memory access latency
	QueueFactor    float64  // weight of the rho/(1-rho) queueing term
	BlockingFactor float64  // fraction of miss latency that stalls retirement

	// Stall scaling with remote work: the paper notes projecting MPI as a
	// function of affinity is heuristic; this linear factor scales the MPI
	// by (1 + RemoteMPIFactor * remoteFraction) where remoteFraction is the
	// fraction of work touching non-home data (set via SetRemoteFraction).
	RemoteMPIFactor float64

	// Thread/cache-pressure model. Pressure(n) = 1 - exp(-(n-CacheFitThreads)
	// * PressureDecay) for n above CacheFitThreads, else 0.
	CacheFitThreads float64
	PressureDecay   float64
	CtxSwitchBase   float64 // cycles per dispatch with a warm cache
	CtxRefillMax    float64 // extra cycles per dispatch at full pressure
	ThrashMPIFactor float64 // MPI multiplier slope with pressure

	StatTick sim.Time // cadence for the instruction-rate / CPI update
}

// DefaultConfig returns the baseline P4 DP node of §3.1 at the given scale
// factor (clock divided, latencies multiplied). The calibration constants
// reproduce the paper's anchors; see the package comment and DESIGN.md.
func DefaultConfig(scale float64) Config {
	return Config{
		NumCPUs: 2,
		ClockHz: 3.2e9 / scale,
		BaseCPI: 0.8,

		MPI:            0.0135,
		MissBytes:      64,
		MemBandwidth:   4.3e9 / scale,
		MemLatency:     sim.Time(150 * scale), // 150 ns unscaled
		QueueFactor:    0.4,
		BlockingFactor: 0.35,

		RemoteMPIFactor: 15.7,

		// Derived from the published context-switch anchors:
		// cost(20)=17.7K and cost(75)=69.7K cycles with base 5K and max
		// refill 80K solve to fit~13.6 threads and decay 0.027.
		CacheFitThreads: 13.6,
		PressureDecay:   0.027,
		CtxSwitchBase:   5000,
		CtxRefillMax:    80000,
		// Matches the published CPI rise 11.5 -> 16.9 as active threads go
		// 20 -> 75.
		ThrashMPIFactor: 0.888,

		StatTick: sim.Time(5 * scale * float64(sim.Millisecond) / 100),
	}
}

// Priorities for the CPU run queue.
const (
	prioInterrupt = 0
	prioThread    = 10
)

// CPU is one node's processor complex.
type CPU struct {
	sim   *sim.Sim
	cfg   Config
	res   *sim.Resource
	procs []*sim.Proc // stats ticker, for teardown on node crash

	remoteFraction float64
	cachedCPI      float64
	slowFactor     float64 // fault-injection multiplier on service time (1 = healthy)

	instrSinceTick float64
	instrRate      float64 // EWMA instructions/s (node-wide)

	// Interrupt work: a FIFO of pending tasks served by NumCPUs
	// continuation-style "interrupt channels" (no goroutines — each channel
	// is a tiny state machine driven by kernel callbacks; see irqService).
	irqQ     irqRing
	services []*irqService
	dead     bool // set by Stop (node crash): drop all further interrupt work

	// Statistics.
	activeThreads stats.TimeWeighted
	instrTotal    float64
	busyCycleEst  float64
	occupied      sim.Time
	ctxSwitches   uint64
	ctxCycles     float64
	dispatches    uint64
	irqWork       float64 // instructions of interrupt work

	// tel, when set, records every thread and interrupt busy interval. Nil
	// on untelemetered runs (the fast path).
	tel *telemetry.CPUTel
}

// SetTelemetry attaches a busy-interval instrument (nil detaches).
func (c *CPU) SetTelemetry(t *telemetry.CPUTel) { c.tel = t }

// irqTask is one unit of interrupt work. Completion is either done() or
// fn(arg); the latter lets hot callers (the TCP stack) pass a prebuilt
// continuation plus argument instead of allocating a closure per segment.
type irqTask struct {
	pathLen float64
	done    func()
	fn      func(any)
	arg     any
}

// complete invokes whichever completion the task carries.
func (t *irqTask) complete() {
	if t.done != nil {
		t.done()
	} else if t.fn != nil {
		t.fn(t.arg)
	}
}

// irqRing is an allocation-free FIFO of interrupt tasks.
type irqRing struct {
	buf  []irqTask
	head int
	n    int
}

func (r *irqRing) push(t irqTask) {
	if r.n == len(r.buf) {
		grown := make([]irqTask, 2*len(r.buf)+4)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = t
	r.n++
}

func (r *irqRing) pop() irqTask {
	t := r.buf[r.head]
	r.buf[r.head] = irqTask{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return t
}

func (r *irqRing) reset() {
	for i := range r.buf {
		r.buf[i] = irqTask{}
	}
	r.head, r.n = 0, 0
}

// irqService is one interrupt channel: the continuation analogue of the old
// goroutine-backed irq server. Its three prebuilt callbacks (start → grant →
// finish) mirror, event for event, the park/wake sequence of the goroutine
// version — schedule order and simulated times are identical, only the two
// real context switches per task are gone.
type irqService struct {
	cpu    *CPU
	task   irqTask
	busy   bool
	ev     sim.EventID // pending completion event, cancelled on Stop
	start  func()
	grant  func()
	finish func()
}

// NewCPU creates the processor complex and starts its bookkeeping
// processes.
func NewCPU(s *sim.Sim, cfg Config) *CPU {
	c := &CPU{
		sim:        s,
		cfg:        cfg,
		res:        sim.NewResource(s, cfg.NumCPUs),
		slowFactor: 1,
	}
	c.cachedCPI = c.computeCPI()
	// Interrupt channels: one per processor so protocol work can use the
	// whole complex, at priority over application threads.
	for i := 0; i < cfg.NumCPUs; i++ {
		svc := &irqService{cpu: c}
		svc.start = func() { svc.doStart() }
		svc.grant = func() { svc.doGrant() }
		svc.finish = func() { svc.doFinish() }
		c.services = append(c.services, svc)
	}
	c.procs = append(c.procs, s.Spawn("cpustats", c.ticker))
	return c
}

// Procs returns the CPU's internal processes (the stats ticker) in spawn
// order, so a node crash can tear the complex down. Interrupt channels are
// not processes; Stop tears them down.
func (c *CPU) Procs() []*sim.Proc { return c.procs }

// Stop tears down the interrupt machinery on node crash: pending completion
// events are cancelled (their done callbacks never run — the work died with
// the node), queued tasks are dropped, and later Process calls no-op. The
// caller separately kills the procs from Procs(). Kernel context.
func (c *CPU) Stop() {
	c.dead = true
	c.irqQ.reset()
	for _, svc := range c.services {
		if c.sim.Scheduled(svc.ev) {
			c.sim.Cancel(svc.ev)
		}
		svc.ev = sim.EventID{}
		svc.task = irqTask{}
		svc.busy = false
	}
}

// SetRemoteFraction updates the fraction of work on non-home data, which
// scales the miss rate (the paper's affinity-MPI heuristic).
func (c *CPU) SetRemoteFraction(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	c.remoteFraction = f
	c.cachedCPI = c.computeCPI()
}

// pressure returns the cache-pressure term in [0,1) for n active threads.
func (c *CPU) pressure(n float64) float64 {
	over := n - c.cfg.CacheFitThreads
	if over <= 0 {
		return 0
	}
	return 1 - math.Exp(-over*c.cfg.PressureDecay)
}

// ctxSwitchCycles returns the dispatch cost at the current thread pressure.
func (c *CPU) ctxSwitchCycles() float64 {
	p := c.pressure(c.activeThreads.Value())
	return c.cfg.CtxSwitchBase + c.cfg.CtxRefillMax*p
}

// computeCPI evaluates the CPI model at current pressure, remote fraction,
// and measured memory traffic.
func (c *CPU) computeCPI() float64 {
	cfg := c.cfg
	p := c.pressure(c.activeThreads.Value())
	mpi := cfg.MPI * (1 + cfg.RemoteMPIFactor*c.remoteFraction) * (1 + cfg.ThrashMPIFactor*p)
	// Bus/memory-channel queueing. The remote-work term is excluded from
	// the traffic estimate: those extra stalls come largely from copy and
	// coherence activity whose latency the RemoteMPIFactor already prices,
	// and folding them into bus occupancy double-counts the penalty (the
	// paper notes the low realized throughput at low affinity keeps the
	// bus from saturating).
	busMPI := cfg.MPI * (1 + cfg.ThrashMPIFactor*p)
	traffic := c.instrRate * busMPI * cfg.MissBytes
	rho := traffic / cfg.MemBandwidth
	if rho > 0.9 {
		rho = 0.9
	}
	latency := float64(cfg.MemLatency) / float64(sim.Second) * (1 + cfg.QueueFactor*rho/(1-rho))
	latencyCycles := latency * cfg.ClockHz
	return cfg.BaseCPI + mpi*latencyCycles*cfg.BlockingFactor
}

// CPI returns the current effective cycles-per-instruction.
func (c *CPU) CPI() float64 { return c.cachedCPI }

// ticker refreshes the instruction-rate estimate and cached CPI.
func (c *CPU) ticker(p *sim.Proc) {
	for {
		p.Sleep(c.cfg.StatTick)
		rate := c.instrSinceTick / c.cfg.StatTick.Seconds()
		c.instrSinceTick = 0
		c.instrRate = 0.5*c.instrRate + 0.5*rate
		c.cachedCPI = c.computeCPI()
	}
}

// SetSlowFactor sets the fault-injection slowdown multiplier on all CPU
// service times (1 restores healthy speed). A very large factor models a
// frozen node: work queues but barely progresses until the factor resets.
func (c *CPU) SetSlowFactor(f float64) {
	if f < 1 {
		f = 1
	}
	c.slowFactor = f
}

// SlowFactor returns the current fault slowdown multiplier.
func (c *CPU) SlowFactor() float64 { return c.slowFactor }

// duration converts a path length to busy time at the current CPI.
func (c *CPU) duration(pathLen float64) sim.Time {
	cycles := pathLen * c.cachedCPI
	return sim.Time(c.slowFactor * cycles / c.cfg.ClockHz * float64(sim.Second))
}

// Execute runs pathLen instructions on a CPU without a dispatch charge
// (the thread is already hot). Blocks the calling process for queueing plus
// service time.
func (c *CPU) Execute(p *sim.Proc, pathLen float64) {
	c.runOn(p, pathLen, 0)
}

// Dispatch runs pathLen instructions, paying a context-switch first. Model
// code calls this for the first burst after a thread blocks (on a lock,
// I/O, or IPC) as in the paper's thread-switching model.
func (c *CPU) Dispatch(p *sim.Proc, pathLen float64) {
	cycles := c.ctxSwitchCycles()
	c.ctxSwitches++
	c.ctxCycles += cycles
	c.runOn(p, pathLen, cycles)
}

// runOn performs the actual CPU occupancy. The CPU phase spans queueing for
// a processor plus service time, i.e. everything between the thread becoming
// runnable and it blocking again.
func (c *CPU) runOn(p *sim.Proc, pathLen, extraCycles float64) {
	trace.Enter(p, trace.PhaseCPU)
	now := p.Now()
	c.activeThreads.Add(now, 1)
	c.dispatches++
	c.res.Acquire(p, prioThread)
	d := c.duration(pathLen) + sim.Time(c.slowFactor*extraCycles/c.cfg.ClockHz*float64(sim.Second))
	c.occupied += d
	if c.tel != nil {
		c.tel.OnBusy(false, p.Now(), p.Now()+d)
	}
	p.Sleep(d)
	c.res.Release()
	c.instrSinceTick += pathLen
	c.instrTotal += pathLen
	c.busyCycleEst += pathLen*c.cachedCPI + extraCycles
	c.activeThreads.Add(p.Now(), -1)
	trace.Exit(p)
}

// Process implements tcp.Processor (and serves iSCSI, interrupt and other
// protocol work): pathLen instructions at interrupt priority; done runs in
// kernel context on completion. Callable from kernel or process context.
func (c *CPU) Process(pathLen float64, done func()) {
	c.submit(irqTask{pathLen: pathLen, done: done})
}

// ProcessArg implements tcp.ArgProcessor: like Process but completion is
// fn(arg), letting per-segment callers reuse one prebuilt continuation
// instead of allocating a closure for every task.
func (c *CPU) ProcessArg(pathLen float64, fn func(any), arg any) {
	c.submit(irqTask{pathLen: pathLen, fn: fn, arg: arg})
}

// submit hands a task to an idle interrupt channel (through the calendar,
// exactly where the old mailbox dispatch scheduled the server wake-up) or
// queues it FIFO when all channels are busy.
func (c *CPU) submit(t irqTask) {
	if c.dead {
		return // crashed node: interrupt work dies with it
	}
	for _, svc := range c.services {
		if !svc.busy {
			svc.busy = true
			svc.task = t
			c.sim.After(0, svc.start)
			return
		}
	}
	c.irqQ.push(t)
}

// doStart begins serving the assigned task: claim a processor at interrupt
// priority, continuing in doGrant once one is held.
func (svc *irqService) doStart() {
	c := svc.cpu
	if c.dead {
		return
	}
	c.res.AcquireFunc(prioInterrupt, svc.grant)
}

// doGrant runs with a processor held: occupy it for the task's service time.
func (svc *irqService) doGrant() {
	c := svc.cpu
	if c.dead {
		c.res.Release() // hand the server back; the work died with the node
		return
	}
	d := c.duration(svc.task.pathLen)
	c.occupied += d
	if c.tel != nil {
		now := c.sim.Now()
		c.tel.OnBusy(true, now, now+d)
	}
	svc.ev = c.sim.After(d, svc.finish)
}

// doFinish completes the task: release the processor, account the work, run
// the completion, then pull the next queued task (if any) on this channel.
func (svc *irqService) doFinish() {
	c := svc.cpu
	svc.ev = sim.EventID{}
	c.res.Release()
	task := svc.task
	svc.task = irqTask{}
	c.instrSinceTick += task.pathLen
	c.instrTotal += task.pathLen
	c.irqWork += task.pathLen
	c.busyCycleEst += task.pathLen * c.cachedCPI
	task.complete()
	if c.dead {
		svc.busy = false
		return
	}
	if c.irqQ.n > 0 {
		svc.task = c.irqQ.pop()
		c.res.AcquireFunc(prioInterrupt, svc.grant)
		return
	}
	svc.busy = false
}

// Utilization returns mean busy processors / capacity.
func (c *CPU) Utilization() float64 { return c.res.Utilization() }

// ActiveThreads returns the time-averaged number of runnable threads.
func (c *CPU) ActiveThreads(now sim.Time) float64 { return c.activeThreads.Mean(now) }

// ActiveThreadsNow returns the instantaneous runnable thread count.
func (c *CPU) ActiveThreadsNow() float64 { return c.activeThreads.Value() }

// MeanCtxSwitchCycles returns the average dispatch cost so far.
func (c *CPU) MeanCtxSwitchCycles() float64 {
	if c.ctxSwitches == 0 {
		return 0
	}
	return c.ctxCycles / float64(c.ctxSwitches)
}

// BusyCycles returns the estimated cycles of work performed (instructions
// at their charged CPI plus context-switch cycles).
func (c *CPU) BusyCycles() float64 { return c.busyCycleEst }

// OccupiedTime returns cumulative CPU service time granted.
func (c *CPU) OccupiedTime() sim.Time { return c.occupied }

// InstrTotal returns total instructions executed (threads + interrupts).
func (c *CPU) InstrTotal() float64 { return c.instrTotal }

// IRQInstr returns instructions executed as interrupt work.
func (c *CPU) IRQInstr() float64 { return c.irqWork }

// ResetStats clears accumulated statistics (after warm-up).
func (c *CPU) ResetStats(now sim.Time) {
	c.res.ResetUsage()
	c.occupied = 0
	c.instrTotal = 0
	c.busyCycleEst = 0
	c.ctxSwitches = 0
	c.ctxCycles = 0
	c.dispatches = 0
	c.irqWork = 0
	c.activeThreads.ResetAt(now)
}
