package tpcc

import (
	"math"
	"testing"

	"dclue/internal/db"
	"dclue/internal/disk"
	"dclue/internal/rng"
	"dclue/internal/sim"
)

type instantHost struct{}

func (instantHost) Execute(p *sim.Proc, pathLen float64)  {}
func (instantHost) Dispatch(p *sim.Proc, pathLen float64) {}
func (instantHost) Process(pathLen float64, done func())  { done() }

type loopTransport struct {
	s     *sim.Sim
	self  int
	peers []*db.GCS
}

func (t *loopTransport) Self() int { return t.self }
func (t *loopTransport) Send(to int, m db.Msg, size int, data bool) {
	from := t.self
	t.s.After(20*sim.Microsecond, func() { t.peers[to].HandleMessage(from, m) })
}

type harness struct {
	s     *sim.Sim
	cat   *db.Catalog
	eng   *Engine
	nodes []*db.Node
}

func build(t *testing.T, nNodes int, cfg Config) *harness {
	t.Helper()
	s := sim.New()
	cat := db.NewCatalog(nNodes)
	eng := New(cat, cfg, 42)
	h := &harness{s: s, cat: cat, eng: eng}
	gcss := make([]*db.GCS, nNodes)
	for i := 0; i < nNodes; i++ {
		drv := disk.NewDrive(s, disk.DefaultParams(1), rng.Derive(uint64(i), "drv"))
		logd := disk.DefaultLogDisk(s, 1)
		i := i
		mk := func(costs *db.OpCosts, cache *db.BufferCache) *db.Pager {
			return db.NewPager(s, i, cat, instantHost{}, []*disk.Drive{drv}, nil, costs)
		}
		n := db.NewNode(s, i, cat, instantHost{},
			db.NodeConfig{BufferFrames: 4096, OverflowBytes: 1 << 22},
			mk, db.DefaultOpCosts(), logd)
		h.nodes = append(h.nodes, n)
		gcss[i] = n.GCS
	}
	for i, n := range h.nodes {
		n.GCS.SetTransport(&loopTransport{s: s, self: i, peers: gcss})
	}
	return h
}

func smallCfg() Config {
	return Config{Warehouses: 2, Items: 50, CustomersPerDist: 30}
}

// run executes one transaction to completion on node 0 (home of w=0).
func (h *harness) run(t *testing.T, req Request, seed uint64) error {
	t.Helper()
	r := rng.Derive(seed, "txn")
	var err error
	h.s.Spawn("txn", func(p *sim.Proc) {
		err = h.eng.Execute(p, h.nodes[0], req, r)
	})
	h.s.Run(60 * sim.Second)
	return err
}

func TestBuildSizes(t *testing.T) {
	h := build(t, 1, smallCfg())
	e := h.eng
	if e.Tables[TWarehouse].Rows() != 2 {
		t.Fatalf("warehouses %d", e.Tables[TWarehouse].Rows())
	}
	if e.Tables[TDistrict].Rows() != 20 {
		t.Fatalf("districts %d", e.Tables[TDistrict].Rows())
	}
	if e.Tables[TCustomer].Rows() != 2*10*30 {
		t.Fatalf("customers %d", e.Tables[TCustomer].Rows())
	}
	if e.Tables[TStock].Rows() != 2*50 {
		t.Fatalf("stock %d", e.Tables[TStock].Rows())
	}
	if e.Tables[TItem].Rows() != 50 {
		t.Fatalf("items %d", e.Tables[TItem].Rows())
	}
	// One initial order per customer.
	if e.Tables[TOrder].Rows() != 2*10*30 {
		t.Fatalf("orders %d", e.Tables[TOrder].Rows())
	}
	// ~30% undelivered.
	no := e.Tables[TNewOrder].Rows()
	if no < 150 || no > 210 {
		t.Fatalf("new-orders %d, want ~180", no)
	}
	h.s.Shutdown()
}

func TestBuildPartitioning(t *testing.T) {
	cfg := smallCfg()
	h := build(t, 2, cfg)
	e := h.eng
	if e.WarehouseOwner(0) != 0 || e.WarehouseOwner(1) != 1 {
		t.Fatalf("owners %d %d", e.WarehouseOwner(0), e.WarehouseOwner(1))
	}
	// Every stock block of warehouse 1 must be homed on node 1.
	for i := 0; i < cfg.Items; i++ {
		row, ok := e.Tables[TStock].Lookup(e.StockKey(1, i))
		if !ok {
			t.Fatal("missing stock row")
		}
		if h.cat.Home(e.Tables[TStock].BlockOf(row)) != 1 {
			t.Fatalf("stock block of w1 homed on %d", h.cat.Home(e.Tables[TStock].BlockOf(row)))
		}
	}
	h.s.Shutdown()
}

func TestNewOrderCommit(t *testing.T) {
	h := build(t, 1, smallCfg())
	e := h.eng
	ordersBefore := e.Tables[TOrder].Rows()
	linesBefore := e.Tables[TOrderLine].Rows()
	nextBefore := e.distNextO[0]
	// Seed 77 avoids the 1% rollback path (verified by outcome).
	if err := h.run(t, Request{Type: TxnNewOrder, Warehouse: 0, District: 0}, 77); err != nil {
		t.Fatalf("new-order: %v", err)
	}
	if e.distNextO[0] != nextBefore+1 {
		t.Fatal("district next o_id not advanced")
	}
	if e.Tables[TOrder].Rows() != ordersBefore+1 {
		t.Fatal("order not inserted")
	}
	added := e.Tables[TOrderLine].Rows() - linesBefore
	if added < 5 || added > MaxOrderLines {
		t.Fatalf("order lines added %d", added)
	}
	if h.nodes[0].Stats.Commits != 1 {
		t.Fatalf("commits %d", h.nodes[0].Stats.Commits)
	}
	h.s.Shutdown()
}

func TestNewOrderRollbackRate(t *testing.T) {
	h := build(t, 1, Config{Warehouses: 1, Items: 100, CustomersPerDist: 30})
	r := rng.New(9)
	rollbacks, commits := 0, 0
	h.s.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			err := h.eng.Execute(p, h.nodes[0], Request{Type: TxnNewOrder, Warehouse: 0, District: i % 10}, r)
			switch err {
			case nil:
				commits++
			case ErrRollback:
				rollbacks++
			default:
				t.Errorf("unexpected error: %v", err)
				return
			}
		}
	})
	h.s.Run(3600 * sim.Second)
	h.s.Shutdown()
	if commits+rollbacks != 400 {
		t.Fatalf("completed %d", commits+rollbacks)
	}
	if rollbacks == 0 || rollbacks > 30 {
		t.Fatalf("rollbacks %d of 400, want ~1%%", rollbacks)
	}
}

func TestPaymentInsertsHistory(t *testing.T) {
	h := build(t, 1, smallCfg())
	before := h.eng.Tables[THistory].Rows()
	if err := h.run(t, Request{Type: TxnPayment, Warehouse: 0, District: 3}, 5); err != nil {
		t.Fatalf("payment: %v", err)
	}
	if h.eng.Tables[THistory].Rows() != before+1 {
		t.Fatal("history not appended")
	}
	h.s.Shutdown()
}

func TestOrderStatusReadsOnly(t *testing.T) {
	h := build(t, 1, smallCfg())
	e := h.eng
	writesBefore := h.nodes[0].Stats.RowsWritten
	if err := h.run(t, Request{Type: TxnOrderStatus, Warehouse: 0, District: 1}, 6); err != nil {
		t.Fatalf("order-status: %v", err)
	}
	if h.nodes[0].Stats.RowsWritten != writesBefore {
		t.Fatal("order-status wrote rows")
	}
	if e.Tables[TOrder].Rows() != 2*10*30 {
		t.Fatal("order count changed")
	}
	h.s.Shutdown()
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	h := build(t, 1, smallCfg())
	e := h.eng
	before := e.Tables[TNewOrder].Rows()
	if err := h.run(t, Request{Type: TxnDelivery, Warehouse: 0, District: 0}, 7); err != nil {
		t.Fatalf("delivery: %v", err)
	}
	drained := before - e.Tables[TNewOrder].Rows()
	if drained < 1 || drained > Districts {
		t.Fatalf("drained %d new-orders", drained)
	}
	h.s.Shutdown()
}

func TestStockLevelRuns(t *testing.T) {
	h := build(t, 1, smallCfg())
	if err := h.run(t, Request{Type: TxnStockLevel, Warehouse: 0, District: 2}, 8); err != nil {
		t.Fatalf("stock-level: %v", err)
	}
	if h.nodes[0].Stats.RowsRead == 0 {
		t.Fatal("stock-level read nothing")
	}
	h.s.Shutdown()
}

func TestMixProportions(t *testing.T) {
	r := rng.New(11)
	var counts [NumTxnTypes]int
	const n = 100000
	for i := 0; i < n; i++ {
		counts[PickTxnType(r)]++
	}
	want := [NumTxnTypes]float64{0.43, 0.43, 0.05, 0.05, 0.04}
	for ty, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-want[ty]) > 0.01 {
			t.Errorf("%v fraction %v, want %v", TxnType(ty), frac, want[ty])
		}
	}
}

func TestNURandBounds(t *testing.T) {
	r := rng.New(12)
	for i := 0; i < 10000; i++ {
		v := nuRand(r, 1023, 0, 299)
		if v < 0 || v > 299 {
			t.Fatalf("NURand out of bounds: %d", v)
		}
	}
	// NURand is non-uniform: the most popular decile should be clearly
	// above 10%.
	var buckets [10]int
	for i := 0; i < 100000; i++ {
		buckets[nuRand(r, 1023, 0, 999)/100]++
	}
	max := 0
	for _, b := range buckets {
		if b > max {
			max = b
		}
	}
	if max < 11000 {
		t.Fatalf("NURand looks uniform: max decile %d", max)
	}
}

func TestMeanTxnDelayPositive(t *testing.T) {
	for ty := TxnType(0); ty < NumTxnTypes; ty++ {
		if MeanTxnDelay(ty) <= 0 {
			t.Fatalf("delay for %v not positive", ty)
		}
	}
}

func TestKeyEncodingsDisjoint(t *testing.T) {
	e := &Engine{Cfg: Config{Warehouses: 4, Items: 100, CustomersPerDist: 30}}
	seen := map[int64]bool{}
	for w := 0; w < 4; w++ {
		for d := 0; d < Districts; d++ {
			for o := 1; o < 50; o++ {
				k := e.OrderKey(w, d, o)
				if seen[k] {
					t.Fatalf("duplicate order key %d", k)
				}
				seen[k] = true
			}
		}
	}
	// Order-line keys of consecutive orders must not collide.
	a := e.OLKey(0, 0, 1, MaxOrderLines-1)
	b := e.OLKey(0, 0, 2, 0)
	if a >= b {
		t.Fatalf("order-line keys overlap: %d >= %d", a, b)
	}
}
