package tpcc

import (
	"testing"

	"dclue/internal/db"
	"dclue/internal/rng"
	"dclue/internal/sim"
)

func TestNuRandAScaling(t *testing.T) {
	// Spec pairs: 8191 for 100K items (ratio 12), 1023 for 3000 customers
	// (ratio 3). The scaled A must preserve the ratio and stay a 2^k-1.
	cases := []struct {
		size, ratio, want int
	}{
		{100000, 12, 8191}, // the spec's item pairing exactly
		{3000, 3, 511},     // conservative power-of-two floor of the 1023 pairing
		{1000, 12, 63},
		{120, 3, 31},
		{10, 3, 3},
		{1, 3, 1},
	}
	for _, c := range cases {
		if got := nuRandA(c.size, c.ratio); got != c.want {
			t.Errorf("nuRandA(%d,%d) = %d, want %d", c.size, c.ratio, got, c.want)
		}
	}
}

func TestConcurrentDeliveriesSkipNotBlock(t *testing.T) {
	// Two deliveries on the same warehouse race for the same oldest orders:
	// deferred-mode semantics say the loser skips districts, never queueing
	// behind the winner.
	h := build(t, 1, smallCfg())
	n := h.nodes[0]
	backlogBefore := h.eng.Tables[TNewOrder].Rows()
	finished := 0
	for i := 0; i < 2; i++ {
		i := i
		h.s.Spawn("dlv", func(p *sim.Proc) {
			r := rng.Derive(uint64(i+100), "dlv")
			if err := h.eng.Execute(p, n, Request{Type: TxnDelivery, Warehouse: 0}, r); err != nil {
				t.Errorf("delivery %d: %v", i, err)
			}
			finished++
		})
	}
	h.s.Run(600 * sim.Second)
	h.s.Shutdown()
	if finished != 2 {
		t.Fatalf("finished %d deliveries", finished)
	}
	drained := backlogBefore - h.eng.Tables[TNewOrder].Rows()
	// Between them the two deliveries must have drained more than one
	// delivery's worth... at minimum something, and at most 2 x districts.
	if drained < 1 || drained > 2*Districts {
		t.Fatalf("drained %d new-orders", drained)
	}
	if n.Stats.Aborts != 0 {
		t.Fatalf("deliveries aborted %d times; skip-locked should avoid retries", n.Stats.Aborts)
	}
}

func TestPaymentRemoteCustomerTouchesOtherWarehouse(t *testing.T) {
	// With 2 warehouses and the 15% remote-customer rule, enough payments
	// eventually update a customer of the other warehouse.
	h := build(t, 1, smallCfg())
	n := h.nodes[0]
	r := rng.New(31)
	h.s.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 60; i++ {
			if err := h.eng.Execute(p, n, Request{Type: TxnPayment, Warehouse: 0, District: i % 10}, r); err != nil {
				t.Errorf("payment: %v", err)
				return
			}
		}
	})
	h.s.Run(3600 * sim.Second)
	h.s.Shutdown()
	if n.Stats.Commits != 60 {
		t.Fatalf("commits %d", n.Stats.Commits)
	}
	// History grew by exactly one row per payment.
	if h.eng.Tables[THistory].Rows() != 60 {
		t.Fatalf("history rows %d", h.eng.Tables[THistory].Rows())
	}
}

func TestStockLevelCountsLowStock(t *testing.T) {
	h := build(t, 1, smallCfg())
	n := h.nodes[0]
	// Force every stock of warehouse 0 to a low quantity.
	for i := 0; i < h.eng.Cfg.Items; i++ {
		h.eng.stockQty[i] = 1
	}
	reads := n.Stats.RowsRead
	if err := h.run(t, Request{Type: TxnStockLevel, Warehouse: 0, District: 0}, 55); err != nil {
		t.Fatal(err)
	}
	if n.Stats.RowsRead <= reads {
		t.Fatal("stock-level read nothing")
	}
	h.s.Shutdown()
}

func TestNewOrderRemoteStockSupply(t *testing.T) {
	// Run enough new-orders that the 1% remote-warehouse stock rule fires;
	// the other warehouse's stock quantities must change.
	cfg := Config{Warehouses: 2, Items: 50, CustomersPerDist: 30}
	h := build(t, 1, cfg)
	n := h.nodes[0]
	var w1Before []int32
	w1Before = append(w1Before, h.eng.stockQty[cfg.Items:]...)
	r := rng.New(77)
	h.s.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			h.eng.Execute(p, n, Request{Type: TxnNewOrder, Warehouse: 0, District: i % 10}, r)
		}
	})
	h.s.Run(7200 * sim.Second)
	h.s.Shutdown()
	changed := false
	for i, q := range h.eng.stockQty[cfg.Items:] {
		if q != w1Before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("300 new-orders never touched remote warehouse stock (1% rule)")
	}
}

func TestRespAndReqSizes(t *testing.T) {
	if ReqBytes <= 0 {
		t.Fatal("request size")
	}
	for ty := TxnType(0); ty < NumTxnTypes; ty++ {
		if RespBytes(ty) <= 0 {
			t.Fatalf("response size for %v", ty)
		}
	}
	if RespBytes(TxnOrderStatus) <= RespBytes(TxnDelivery) {
		t.Fatal("order-status response should be the largest-ish (it carries an order)")
	}
}

func TestTxnTypeStrings(t *testing.T) {
	seen := map[string]bool{}
	for ty := TxnType(0); ty < NumTxnTypes; ty++ {
		s := ty.String()
		if s == "" || seen[s] {
			t.Fatalf("bad name for type %d: %q", ty, s)
		}
		seen[s] = true
	}
}

func TestCoarseSubpagesKnob(t *testing.T) {
	cfg := smallCfg()
	cfg.CoarseSubpages = true
	e := New(db.NewCatalog(1), cfg, 1)
	if sp := e.Tables[TDistrict].Spec.Subpages; sp != 8 {
		t.Fatalf("coarse district subpages %d, want 8", sp)
	}
	fine := New(db.NewCatalog(1), smallCfg(), 1)
	if fine.Tables[TDistrict].Spec.Subpages <= 8 {
		t.Fatal("default district granularity should be row-level")
	}
}
