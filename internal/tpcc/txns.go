package tpcc

import (
	"errors"
	"sort"

	"dclue/internal/db"
	"dclue/internal/rng"
	"dclue/internal/sim"
)

// TxnType enumerates the five TPC-C transactions.
type TxnType int

// The transaction mix (§2.2): 43% new-order, 43% payment, 5% order-status,
// 5% delivery, 4% stock-level.
const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
	NumTxnTypes
)

func (t TxnType) String() string {
	return [...]string{"new-order", "payment", "order-status", "delivery", "stock-level"}[t]
}

// PickTxnType draws from the nominal mix.
func PickTxnType(r *rng.Stream) TxnType {
	x := r.Float64()
	switch {
	case x < 0.43:
		return TxnNewOrder
	case x < 0.86:
		return TxnPayment
	case x < 0.91:
		return TxnOrderStatus
	case x < 0.96:
		return TxnDelivery
	default:
		return TxnStockLevel
	}
}

// Request is one transaction as submitted by a terminal.
type Request struct {
	Type      TxnType
	Warehouse int
	District  int
}

// ErrRollback marks the spec's intentional new-order rollback (1% invalid
// item); it is not retried.
var ErrRollback = errors.New("tpcc: intentional rollback")

// RespBytes returns the client response size for a transaction type.
func RespBytes(t TxnType) int {
	switch t {
	case TxnNewOrder:
		return 1024
	case TxnPayment:
		return 512
	case TxnOrderStatus:
		return 1536
	case TxnDelivery:
		return 384
	default:
		return 320
	}
}

// ReqBytes is the client request size.
const ReqBytes = 300

// Execute runs one transaction attempt on node. It returns nil on commit,
// ErrRollback for the spec's intentional abort (already rolled back), or
// db.ErrLockFailed when the attempt aborted on lock contention and should
// be retried after a delay (§2.3).
func (e *Engine) Execute(p *sim.Proc, node *db.Node, req Request, r *rng.Stream) error {
	txn := node.Begin(p)
	var err error
	switch req.Type {
	case TxnNewOrder:
		err = e.newOrder(p, node, txn, req, r)
	case TxnPayment:
		err = e.payment(p, node, txn, req, r)
	case TxnOrderStatus:
		err = e.orderStatus(p, node, txn, req, r)
	case TxnDelivery:
		err = e.delivery(p, node, txn, req, r)
	case TxnStockLevel:
		err = e.stockLevel(p, node, txn, req, r)
	}
	if err != nil {
		node.Abort(p, txn)
		return err
	}
	node.Commit(p, txn)
	return nil
}

// newOrder implements the spec flow: read warehouse tax, customer, update
// district (allocating o_id), per line read item + update stock (1% remote
// warehouse), insert order, new-order, and the lines. 1% of transactions
// roll back on an invalid item.
func (e *Engine) newOrder(p *sim.Proc, n *db.Node, txn *db.Txn, req Request, r *rng.Stream) error {
	w, d := req.Warehouse, req.District
	owner := e.whOwner[w]

	_, ok, err := n.Read(p, txn, e.Tables[TWarehouse].ID, int64(w))
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("tpcc: missing warehouse")
	}
	cust := e.nuRandCustomer(r)
	if _, _, err := n.Read(p, txn, e.Tables[TCustomer].ID, e.CustKey(w, d, cust)); err != nil {
		return err
	}

	if _, err := n.Update(p, txn, e.Tables[TDistrict].ID, e.DistKey(w, d)); err != nil {
		return err
	}
	dist := w*Districts + d
	oid := int(e.distNextO[dist])
	e.distNextO[dist]++

	cnt := r.IntRange(5, MaxOrderLines)
	rollback := r.Bool(0.01) // spec: 1% invalid item aborts
	items := make([]int, cnt)
	stocks := make([]int64, 0, cnt)
	for l := 0; l < cnt; l++ {
		item := e.nuRandItem(r)
		items[l] = item
		supplyW := w
		if e.Cfg.Warehouses > 1 && r.Bool(0.01) { // spec: 1% remote stock
			supplyW = r.Intn(e.Cfg.Warehouses)
		}
		stocks = append(stocks, e.StockKey(supplyW, item))
	}
	if rollback {
		// Unused item id: the lookup fails after the reads done so far.
		if _, _, err := n.Read(p, txn, e.Tables[TItem].ID, int64(e.Cfg.Items)+1); err != nil {
			return err
		}
		return ErrRollback
	}
	// Acquire stock rows in key order: with the scaled-down item table two
	// concurrent new-orders collide on hot items often enough that
	// unordered acquisition deadlocks; ordered acquisition removes the
	// cycles without changing the work done.
	sort.Slice(stocks, func(i, j int) bool { return stocks[i] < stocks[j] })
	for l := 0; l < cnt; l++ {
		if _, _, err := n.Read(p, txn, e.Tables[TItem].ID, int64(items[l])); err != nil {
			return err
		}
	}
	for _, sk := range stocks {
		if _, err := n.Update(p, txn, e.Tables[TStock].ID, sk); err != nil {
			return err
		}
		q := e.stockQty[sk] - int32(r.IntRange(1, 10))
		if q < 10 {
			q += 91
		}
		e.stockQty[sk] = q
	}

	okey := e.OrderKey(w, d, oid)
	orow, err := n.Insert(p, txn, e.Tables[TOrder].ID, okey, owner)
	if err != nil {
		return err
	}
	e.setOrder(orow, int32(cust), int8(cnt), 0)
	if _, err := n.Insert(p, txn, e.Tables[TNewOrder].ID, okey, owner); err != nil {
		return err
	}
	for l := 0; l < cnt; l++ {
		lrow, err := n.Insert(p, txn, e.Tables[TOrderLine].ID, e.OLKey(w, d, oid, l), owner)
		if err != nil {
			return err
		}
		e.setOrderLine(lrow, int32(items[l]), false)
	}
	e.lastOrder[e.custIdx(w, d, cust)] = int32(oid)
	return nil
}

// payment updates warehouse and district YTD, selects the customer (60% by
// last name via the secondary index, 15% resident at a remote warehouse),
// updates the balance, and appends history.
func (e *Engine) payment(p *sim.Proc, n *db.Node, txn *db.Txn, req Request, r *rng.Stream) error {
	w, d := req.Warehouse, req.District
	if _, err := n.Update(p, txn, e.Tables[TWarehouse].ID, int64(w)); err != nil {
		return err
	}
	if _, err := n.Update(p, txn, e.Tables[TDistrict].ID, e.DistKey(w, d)); err != nil {
		return err
	}
	cw, cd := w, d
	if e.Cfg.Warehouses > 1 && r.Bool(0.15) { // spec: 15% remote customer
		for cw == w {
			cw = r.Intn(e.Cfg.Warehouses)
		}
		cd = r.Intn(Districts)
	}
	cust, err := e.selectCustomer(p, n, txn, cw, cd, r)
	if err != nil {
		return err
	}
	if _, err := n.Update(p, txn, e.Tables[TCustomer].ID, e.CustKey(cw, cd, cust)); err != nil {
		return err
	}
	_, err = n.Insert(p, txn, e.Tables[THistory].ID, e.HistKey(n.Self), e.whOwner[w])
	return err
}

// orderStatus reads a customer and their most recent order with its lines.
func (e *Engine) orderStatus(p *sim.Proc, n *db.Node, txn *db.Txn, req Request, r *rng.Stream) error {
	w, d := req.Warehouse, req.District
	cust, err := e.selectCustomer(p, n, txn, w, d, r)
	if err != nil {
		return err
	}
	if _, _, err := n.Read(p, txn, e.Tables[TCustomer].ID, e.CustKey(w, d, cust)); err != nil {
		return err
	}
	oid := int(e.lastOrder[e.custIdx(w, d, cust)])
	if oid == 0 {
		return nil
	}
	orow, ok, err := n.Read(p, txn, e.Tables[TOrder].ID, e.OrderKey(w, d, oid))
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	cnt := int(e.orderOLCnt[orow])
	count := 0
	return n.Scan(p, txn, e.Tables[TOrderLine].ID, e.OLKey(w, d, oid, 0), func(k, row int64) bool {
		count++
		return count < cnt
	})
}

// delivery processes the oldest undelivered order of every district of the
// warehouse: delete its new-order entry, stamp the order with a carrier,
// mark each line delivered, and credit the customer.
func (e *Engine) delivery(p *sim.Proc, n *db.Node, txn *db.Txn, req Request, r *rng.Stream) error {
	w := req.Warehouse
	for d := 0; d < Districts; d++ {
		base := e.OrderKey(w, d, 0)
		limit := e.OrderKey(w, d+1, 0)
		var okey int64 = -1
		e.Tables[TNewOrder].Index.Scan(base, func(k, row int64) bool {
			if k < limit {
				okey = k
			}
			return false
		})
		if okey < 0 {
			continue // no undelivered order in this district (spec: skip)
		}
		// Deferred-mode delivery: if another delivery already claimed this
		// district's oldest order, skip the district rather than queueing
		// behind it.
		if !n.TryDelete(p, txn, e.Tables[TNewOrder].ID, okey) {
			continue
		}
		orow, err := n.Update(p, txn, e.Tables[TOrder].ID, okey)
		if err != nil {
			return err
		}
		e.orderCarrier[orow] = int8(r.IntRange(1, 10))
		oid := int(okey & ((1 << 24) - 1))
		cnt := int(e.orderOLCnt[orow])
		for l := 0; l < cnt; l++ {
			lrow, err := n.Update(p, txn, e.Tables[TOrderLine].ID, e.OLKey(w, d, oid, l))
			if err != nil {
				return err
			}
			e.olDelivered[lrow] = true
		}
		cust := int(e.orderCust[orow])
		if _, err := n.Update(p, txn, e.Tables[TCustomer].ID, e.CustKey(w, d, cust)); err != nil {
			return err
		}
	}
	return nil
}

// stockLevel examines the order lines of the district's last 20 orders and
// counts distinct items with stock below a threshold.
func (e *Engine) stockLevel(p *sim.Proc, n *db.Node, txn *db.Txn, req Request, r *rng.Stream) error {
	w, d := req.Warehouse, req.District
	if _, _, err := n.Read(p, txn, e.Tables[TDistrict].ID, e.DistKey(w, d)); err != nil {
		return err
	}
	dist := w*Districts + d
	next := int(e.distNextO[dist])
	lo := next - 20
	if lo < 1 {
		lo = 1
	}
	threshold := int32(r.IntRange(10, 20))
	seen := make(map[int32]bool)
	from := e.OLKey(w, d, lo, 0)
	limit := e.OrderKey(w, d, next) * MaxOrderLines
	count := 0
	var items []int32
	if err := n.Scan(p, txn, e.Tables[TOrderLine].ID, from, func(k, row int64) bool {
		if k >= limit || count >= 200 {
			return false
		}
		count++
		it := e.olItem[row]
		if !seen[it] {
			seen[it] = true
			items = append(items, it)
		}
		return true
	}); err != nil {
		return err
	}
	low := 0
	for _, it := range items {
		if _, _, err := n.Read(p, txn, e.Tables[TStock].ID, e.StockKey(w, int(it))); err != nil {
			return err
		}
		if e.stockQty[w*e.Cfg.Items+int(it)] < threshold {
			low++
		}
	}
	return nil
}

// selectCustomer resolves a customer 60% by last name (modelled as an extra
// secondary-index probe resolving to a deterministic customer) and 40% by
// id, per spec.
func (e *Engine) selectCustomer(p *sim.Proc, n *db.Node, txn *db.Txn, w, d int, r *rng.Stream) (int, error) {
	if r.Bool(0.6) {
		// By last name: NURand over 255 names; the name resolves to a
		// cluster of customers, one of which is chosen. Charge the extra
		// index traversal by touching the customer index leaf again.
		name := nuRand(r, 255, 0, 254)
		cust := (name * 7) % e.Cfg.CustomersPerDist
		if _, _, err := n.Read(p, txn, e.Tables[TCustomer].ID, e.CustKey(w, d, cust)); err != nil {
			return 0, err
		}
		return cust, nil
	}
	return e.nuRandCustomer(r), nil
}

// nuRandCustomer draws a customer id with the spec's NURand skew. The spec
// pairs A=1023 with 3000 customers (A ≈ range/3); with the scaled-down
// population the same A/range ratio is preserved, otherwise the bit-OR
// construction concentrates far more mass on a few ids than TPC-C intends.
func (e *Engine) nuRandCustomer(r *rng.Stream) int {
	return nuRand(r, nuRandA(e.Cfg.CustomersPerDist, 3), 0, e.Cfg.CustomersPerDist-1)
}

// nuRandItem draws an item id with the spec's NURand skew (spec: A=8191 for
// 100K items, A ≈ range/12).
func (e *Engine) nuRandItem(r *rng.Stream) int {
	return nuRand(r, nuRandA(e.Cfg.Items, 12), 0, e.Cfg.Items-1)
}

// nuRandA returns the largest 2^k-1 not exceeding range/ratio (minimum 1).
func nuRandA(rangeSize, ratio int) int {
	a := 1
	for a*2-1 <= rangeSize/ratio {
		a *= 2
	}
	if a-1 < 1 {
		return 1
	}
	return a - 1
}

// nuRand is the TPC-C non-uniform random function
// NURand(A,x,y) = (((rand(0,A) | rand(x,y)) + C) % (y-x+1)) + x.
func nuRand(r *rng.Stream, a, x, y int) int {
	const c = 123 // constant per spec §2.1.6 (any fixed value)
	if a < 1 {
		a = 1
	}
	return (((r.IntRange(0, a) | r.IntRange(x, y)) + c) % (y - x + 1)) + x
}
