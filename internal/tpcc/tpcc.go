// Package tpcc implements the paper's workload: the TPC-C schema (9
// tables), its sizing rules, and all five transactions (new-order, payment,
// order-status, delivery, stock-level in 43/43/5/5/4 proportions), executed
// against the clustered db engine. The paper's affinity tweak — route a
// query to the warehouse's home server with probability α, else to a random
// server — lives in the cluster driver; this package owns warehouse
// partitioning and transaction logic.
package tpcc

import (
	"dclue/internal/db"
	"dclue/internal/rng"
	"dclue/internal/sim"
)

// Districts per warehouse (TPC-C spec).
const Districts = 10

// MaxOrderLines bounds order lines per order (spec: 5..15, mean 10).
const MaxOrderLines = 15

// Config sizes the database.
type Config struct {
	Warehouses       int // total, spread evenly over nodes
	Items            int // paper: 100K unscaled, 1000 at scale 100
	CustomersPerDist int // spec: 3000; reduced defaults keep memory sane

	// CoarseSubpages uses 8 lock subpages per block instead of row-level
	// granularity — the untuned configuration §2.3's subpage tuning
	// improves on. Ablation knob.
	CoarseSubpages bool
}

// DefaultConfig returns the paper's scaled sizing for the given cluster:
// warehouses proportional to target throughput (≈40 per node at scale 100,
// i.e. ≈500 scaled tpm-C each), 1000 items, and a reduced customer
// population per district (documented substitution: preserves access
// pattern and contention — customer rows are uncontended — while keeping
// memory bounded; the buffer cache is sized relative to the database).
func DefaultConfig(nodes int) Config {
	return Config{
		Warehouses:       40 * nodes,
		Items:            1000,
		CustomersPerDist: 120,
	}
}

// Table indices into Engine.Tables.
const (
	TWarehouse = iota
	TDistrict
	TCustomer
	THistory
	TItem
	TStock
	TOrder
	TNewOrder
	TOrderLine
	NumTables
)

// TableNames for reporting.
var TableNames = [NumTables]string{
	"warehouse", "district", "customer", "history", "item",
	"stock", "order", "new-order", "order-line",
}

// Engine owns the cluster-global TPC-C state: the db tables plus the
// attribute data the transactions interpret (DCLUE retains "only what is
// essential to interpret and execute queries" — §2.3).
type Engine struct {
	Cfg     Config
	Cat     *db.Catalog
	Tables  [NumTables]*db.Table
	whOwner []int // warehouse -> node

	// Static-table attribute data, indexed by key.
	distNextO []int32 // [dist] next o_id
	stockQty  []int32 // [stock key] quantity

	// Dynamic attribute data, indexed by dense row id of the order /
	// order-line tables.
	orderCust    []int32
	orderOLCnt   []int8
	orderCarrier []int8
	olItem       []int32
	olDelivered  []bool

	lastOrder []int32 // [cust key] most recent o_id, 0 if none

	histSeq []uint64 // per-node history key counters
}

// New builds the catalog and populates the database, homing each
// warehouse's partition (and every table block it spawns) on its owner
// node. Initial orders per district follow the spec shape: customers have
// order history and a backlog of undelivered new-orders.
func New(cat *db.Catalog, cfg Config, seed uint64) *Engine {
	e := &Engine{Cfg: cfg, Cat: cat}
	nodes := cat.Nodes()

	spec := func(name string, rowBytes, subpages int, placement db.Placement) *db.Table {
		return cat.AddTable(db.TableSpec{
			Name: name, RowBytes: rowBytes, Subpages: subpages, Placement: placement,
		})
	}
	// Subpage sizes follow §2.3: "we had to tune the size of subpage for
	// each table separately. In particular, the district table is accessed
	// very frequently and needs a small subpage size." Our tuning landed on
	// row-level subpages for every written table — coarser settings
	// serialize the append-heavy tables (every insert in a warehouse lands
	// in the same tail block) and collapse throughput, exactly the kind of
	// false sharing the paper tuned away.
	rowLevel := func(rowBytes int) int {
		if cfg.CoarseSubpages {
			return 8
		}
		return db.BlockBytes / rowBytes
	}
	e.Tables[TWarehouse] = spec("warehouse", 96, rowLevel(96), db.PlacementPartitioned)
	e.Tables[TDistrict] = spec("district", 96, rowLevel(96), db.PlacementPartitioned)
	e.Tables[TCustomer] = spec("customer", 656, rowLevel(656), db.PlacementPartitioned)
	e.Tables[THistory] = spec("history", 48, rowLevel(48), db.PlacementPartitioned)
	e.Tables[TItem] = spec("item", 88, 1, db.PlacementHashed)
	e.Tables[TStock] = spec("stock", 312, rowLevel(312), db.PlacementPartitioned)
	e.Tables[TOrder] = spec("order", 32, rowLevel(32), db.PlacementPartitioned)
	e.Tables[TNewOrder] = spec("new-order", 16, rowLevel(16), db.PlacementPartitioned)
	e.Tables[TOrderLine] = spec("order-line", 56, rowLevel(56), db.PlacementPartitioned)

	e.whOwner = make([]int, cfg.Warehouses)
	perNode := cfg.Warehouses / nodes
	if perNode == 0 {
		perNode = 1
	}
	for w := 0; w < cfg.Warehouses; w++ {
		owner := w / perNode
		if owner >= nodes {
			owner = nodes - 1
		}
		e.whOwner[w] = owner
	}

	e.distNextO = make([]int32, cfg.Warehouses*Districts)
	e.stockQty = make([]int32, cfg.Warehouses*cfg.Items)
	e.lastOrder = make([]int32, cfg.Warehouses*Districts*cfg.CustomersPerDist)
	e.histSeq = make([]uint64, nodes)

	r := rng.Derive(seed, "tpcc-build")

	// Item table (shared, hashed across nodes).
	for i := 0; i < cfg.Items; i++ {
		e.Tables[TItem].Insert(int64(i), 0)
	}

	// Per-warehouse partitions, inserted warehouse-by-warehouse so blocks
	// home cleanly.
	for w := 0; w < cfg.Warehouses; w++ {
		owner := e.whOwner[w]
		e.Tables[TWarehouse].Insert(int64(w), owner)
		for d := 0; d < Districts; d++ {
			dist := w*Districts + d
			e.Tables[TDistrict].Insert(int64(dist), owner)
			for c := 0; c < cfg.CustomersPerDist; c++ {
				e.Tables[TCustomer].Insert(e.CustKey(w, d, c), owner)
			}
		}
		for i := 0; i < cfg.Items; i++ {
			e.Tables[TStock].Insert(e.StockKey(w, i), owner)
			e.stockQty[w*cfg.Items+i] = int32(r.IntRange(10, 100))
		}
		// Initial order history: spec gives each district 3000 orders with
		// the last 900 undelivered; scale that shape to the customer count.
		for d := 0; d < Districts; d++ {
			dist := w*Districts + d
			initOrders := cfg.CustomersPerDist // one per customer, shuffled
			perm := r.Perm(cfg.CustomersPerDist)
			for o := 0; o < initOrders; o++ {
				e.insertInitialOrder(w, d, o+1, perm[o], o >= initOrders*7/10, r)
			}
			e.distNextO[dist] = int32(initOrders + 1)
		}
	}
	return e
}

// insertInitialOrder seeds one order during the build (no locking).
func (e *Engine) insertInitialOrder(w, d, oid, cust int, undelivered bool, r *rng.Stream) {
	owner := e.whOwner[w]
	okey := e.OrderKey(w, d, oid)
	row := e.Tables[TOrder].Insert(okey, owner)
	cnt := r.IntRange(5, MaxOrderLines)
	e.setOrder(row, int32(cust), int8(cnt), boolToCarrier(!undelivered, r))
	e.lastOrder[e.custIdx(w, d, cust)] = int32(oid)
	for l := 0; l < cnt; l++ {
		lrow := e.Tables[TOrderLine].Insert(e.OLKey(w, d, oid, l), owner)
		e.setOrderLine(lrow, int32(r.Intn(e.Cfg.Items)), !undelivered)
	}
	if undelivered {
		e.Tables[TNewOrder].Insert(okey, owner)
	}
}

func boolToCarrier(delivered bool, r *rng.Stream) int8 {
	if delivered {
		return int8(r.IntRange(1, 10))
	}
	return 0
}

// setOrder grows and fills the order attribute arrays.
func (e *Engine) setOrder(row int64, cust int32, cnt, carrier int8) {
	for int64(len(e.orderCust)) <= row {
		e.orderCust = append(e.orderCust, 0)
		e.orderOLCnt = append(e.orderOLCnt, 0)
		e.orderCarrier = append(e.orderCarrier, 0)
	}
	e.orderCust[row] = cust
	e.orderOLCnt[row] = cnt
	e.orderCarrier[row] = carrier
}

// setOrderLine grows and fills the order-line attribute arrays.
func (e *Engine) setOrderLine(row int64, item int32, delivered bool) {
	for int64(len(e.olItem)) <= row {
		e.olItem = append(e.olItem, 0)
		e.olDelivered = append(e.olDelivered, false)
	}
	e.olItem[row] = item
	e.olDelivered[row] = delivered
}

// WarehouseOwner returns the node homing warehouse w.
func (e *Engine) WarehouseOwner(w int) int { return e.whOwner[w] }

// Warehouses returns the configured warehouse count.
func (e *Engine) Warehouses() int { return e.Cfg.Warehouses }

// ---- Key encodings ----

// DistKey returns the district primary key.
func (e *Engine) DistKey(w, d int) int64 { return int64(w*Districts + d) }

// CustKey returns the customer primary key.
func (e *Engine) CustKey(w, d, c int) int64 {
	return int64((w*Districts+d)*e.Cfg.CustomersPerDist + c)
}

func (e *Engine) custIdx(w, d, c int) int {
	return (w*Districts+d)*e.Cfg.CustomersPerDist + c
}

// StockKey returns the stock primary key.
func (e *Engine) StockKey(w, item int) int64 { return int64(w*e.Cfg.Items + item) }

// OrderKey returns the order / new-order primary key: district-major then
// order id, so district scans are contiguous.
func (e *Engine) OrderKey(w, d, oid int) int64 {
	return int64(w*Districts+d)<<24 | int64(oid)
}

// OLKey returns the order-line primary key.
func (e *Engine) OLKey(w, d, oid, line int) int64 {
	return e.OrderKey(w, d, oid)*MaxOrderLines + int64(line)
}

// HistKey returns a unique history key for an insert at node.
func (e *Engine) HistKey(node int) int64 {
	e.histSeq[node]++
	return int64(node)<<40 | int64(e.histSeq[node])
}

// MeanTxnDelay is the per-type terminal keying+think time (unscaled spec
// shape); see core's terminal loop.
func MeanTxnDelay(t TxnType) sim.Time {
	switch t {
	case TxnNewOrder:
		return 30 * sim.Second
	case TxnPayment:
		return 15 * sim.Second
	case TxnOrderStatus:
		return 12 * sim.Second
	case TxnDelivery:
		return 7 * sim.Second
	default:
		return 7 * sim.Second
	}
}
