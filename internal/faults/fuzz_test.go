package faults

import (
	"testing"
)

// FuzzParseFaultSpec fuzzes the compact schedule grammar
// (kind:target@start+dur[=sev], ';'-separated). The parser must never
// panic, and every accepted schedule must round-trip: rendering it with
// String and reparsing yields a stable normal form.
func FuzzParseFaultSpec(f *testing.F) {
	for _, seed := range []string{
		// Valid schedules.
		"linkdown:node:1@60+10",
		"loss:interlata:0@80+20=0.3",
		"linkdown:node:1@60+10;loss:interlata:0@80+20=0.3",
		"corrupt:client@0+1=1",
		"stall:node:0@1.5+2.5",
		"cpuslow:node:1@10+5=4",
		"freeze:node:2@100+10",
		"diskslow:node:0@5+2=8",
		"diskerr:san@3+4=0.05",
		" loss:node:0@1+1=0.5 ; ; freeze:node:1@2+3 ",
		"loss:a@1e2+1e-3=1e-4",
		// Invalid: wrong kind, missing pieces, bad numbers, bad ranges.
		"",
		";",
		"nuke:node:1@60+10",
		"linkdown",
		"linkdown:@1+1",
		"linkdown:node:1",
		"linkdown:node:1@60",
		"linkdown:node:1@-1+10",
		"linkdown:node:1@1+0",
		"loss:node:1@1+1",
		"loss:node:1@1+1=0",
		"loss:node:1@1+1=1.5",
		"loss:node:1@1+1=NaN",
		"cpuslow:node:1@1+1=+Inf",
		"cpuslow:node:1@1+1=1e300",
		"linkdown:node:1@1e300+10",
		"linkdown:node:1@NaN+10",
		"loss:node:1@1+1=0.5=0.5",
		"linkdown:node:1@1+2+3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sch, err := ParseSchedule(spec)
		if err != nil {
			if sch != nil {
				t.Fatalf("error with non-nil schedule: %q -> %v, %v", spec, sch, err)
			}
			return
		}
		// Accepted specs must round-trip through the compact syntax.
		normal := sch.String()
		sch2, err := ParseSchedule(normal)
		if err != nil {
			t.Fatalf("accepted spec did not reparse: %q -> %q: %v", spec, normal, err)
		}
		if got := sch2.String(); got != normal {
			t.Fatalf("round-trip unstable: %q -> %q -> %q", spec, normal, got)
		}
		if len(sch2) != len(sch) {
			t.Fatalf("round-trip changed schedule length: %q: %d -> %d", spec, len(sch), len(sch2))
		}
		for i := range sch {
			if sch2[i].Kind != sch[i].Kind || sch2[i].Target != sch[i].Target ||
				sch2[i].Start != sch[i].Start || sch2[i].Duration != sch[i].Duration {
				t.Fatalf("round-trip changed fault %d: %+v -> %+v", i, sch[i], sch2[i])
			}
		}
	})
}
