package faults

import (
	"testing"

	"dclue/internal/lint/analysis"
)

// FuzzParseFaultSpec fuzzes the compact schedule grammar
// (kind:target@start+dur[=sev], ';'-separated). The parser must never
// panic, and every accepted schedule must round-trip: rendering it with
// String and reparsing yields a stable normal form.
//
// The corpus is cross-seeded with //lint:allow suppression-comment shapes
// (the repo's other hand-rolled mini-grammar), and every input is also fed
// through the shared comment-scanning helper: the two grammars must stay
// mutually exclusive — no string may parse as both a fault schedule and a
// lint directive.
func FuzzParseFaultSpec(f *testing.F) {
	for _, seed := range []string{
		// Valid schedules.
		"linkdown:node:1@60+10",
		"loss:interlata:0@80+20=0.3",
		"linkdown:node:1@60+10;loss:interlata:0@80+20=0.3",
		"corrupt:client@0+1=1",
		"stall:node:0@1.5+2.5",
		"cpuslow:node:1@10+5=4",
		"freeze:node:2@100+10",
		"diskslow:node:0@5+2=8",
		"diskerr:san@3+4=0.05",
		" loss:node:0@1+1=0.5 ; ; freeze:node:1@2+3 ",
		"loss:a@1e2+1e-3=1e-4",
		// Invalid: wrong kind, missing pieces, bad numbers, bad ranges.
		"",
		";",
		"nuke:node:1@60+10",
		"linkdown",
		"linkdown:@1+1",
		"linkdown:node:1",
		"linkdown:node:1@60",
		"linkdown:node:1@-1+10",
		"linkdown:node:1@1+0",
		"loss:node:1@1+1",
		"loss:node:1@1+1=0",
		"loss:node:1@1+1=1.5",
		"loss:node:1@1+1=NaN",
		"cpuslow:node:1@1+1=+Inf",
		"cpuslow:node:1@1+1=1e300",
		"linkdown:node:1@1e300+10",
		"linkdown:node:1@NaN+10",
		"loss:node:1@1+1=0.5=0.5",
		"linkdown:node:1@1+2+3",
		// Suppression-comment grammar shapes: comment markers, directive
		// words, and hybrids of the two grammars. All must be rejected
		// here without panicking, and must never satisfy both parsers.
		"//lint:allow simtime reason",
		"// lint:allow faultspec linkdown:node:1@60+10",
		"/*lint:allow maporder reason*/",
		"//lint:allow",
		"//lint:allowed simtime reason",
		"linkdown:node:1@60+10//lint:allow simtime inline",
		"linkdown:node:1@60+10;//lint:allow simtime reason",
		"//linkdown:node:1@60+10",
		"lint:allow@1+1",
		"lint:allow:simtime@1+1=0.5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		// The shared directive scanner must not panic on fault-spec-shaped
		// input, and its grammar must be disjoint from the schedule grammar.
		_, isDirective, _ := analysis.ParseAllow(spec)

		sch, err := ParseSchedule(spec)
		if err != nil {
			if sch != nil {
				t.Fatalf("error with non-nil schedule: %q -> %v, %v", spec, sch, err)
			}
			return
		}
		if isDirective && len(sch) > 0 {
			t.Fatalf("grammar collision: %q parses as both a fault schedule and a lint directive", spec)
		}
		// Accepted specs must round-trip through the compact syntax.
		normal := sch.String()
		sch2, err := ParseSchedule(normal)
		if err != nil {
			t.Fatalf("accepted spec did not reparse: %q -> %q: %v", spec, normal, err)
		}
		if got := sch2.String(); got != normal {
			t.Fatalf("round-trip unstable: %q -> %q -> %q", spec, normal, got)
		}
		if len(sch2) != len(sch) {
			t.Fatalf("round-trip changed schedule length: %q: %d -> %d", spec, len(sch), len(sch2))
		}
		for i := range sch {
			if sch2[i].Kind != sch[i].Kind || sch2[i].Target != sch[i].Target ||
				sch2[i].Start != sch[i].Start || sch2[i].Duration != sch[i].Duration {
				t.Fatalf("round-trip changed fault %d: %+v -> %+v", i, sch[i], sch2[i])
			}
		}
	})
}
