// Package faults is a deterministic, schedule-driven fault injector for the
// DCLUE simulation. It perturbs the stack at three layers — network (link
// down windows, burst loss, corruption, NIC stall), node (CPU slowdown,
// transient freeze) and storage (drive latency spikes, transient I/O
// errors) — by scheduling activate/restore events on the simulation
// calendar. Probabilistic faults draw from per-target streams derived from
// the master seed, so the same seed plus the same schedule yields a
// byte-identical run.
//
// The fault model is an extension beyond the source paper's scope: §2.3
// explicitly assumes a fault-free fabric. It exists so the graceful-
// degradation behaviour of cache fusion over Ethernet can be studied, per
// the robustness goals in ROADMAP.md.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dclue/internal/sim"
)

// Kind enumerates the supported fault types.
type Kind int

const (
	// LinkDown takes a link pair fully down for the window: queued and
	// in-flight frames are lost, new frames are dropped on arrival.
	LinkDown Kind = iota
	// LinkLoss drops each packet on the target links with probability
	// Severity (burst packet loss).
	LinkLoss
	// LinkCorrupt corrupts each packet with probability Severity; corrupted
	// frames are discarded by the receiver's checksum.
	LinkCorrupt
	// NICStall freezes the target links' transmitters: frames queue
	// (subject to qdisc limits) and drain when the window ends.
	NICStall
	// CPUSlow multiplies the target node's CPU service times by Severity.
	CPUSlow
	// NodeFreeze is CPUSlow with a very large factor: the node is
	// effectively unresponsive for the window but loses no state.
	NodeFreeze
	// DiskSlow multiplies the target drives' service times by Severity.
	DiskSlow
	// DiskErrors fails each request on the target drives with probability
	// Severity (transient I/O errors).
	DiskErrors
	// Crash kills a DP node at the start instant: its processes die, its
	// connections are abandoned, its volatile state is lost. A point event
	// (duration 0); the node stays down until a Restart.
	Crash
	// Restart boots a crashed DP node at the start instant: fresh engine,
	// rejoin protocol, cache warmup. A point event (duration 0).
	Restart

	numKinds
)

var kindNames = [numKinds]string{
	LinkDown:    "linkdown",
	LinkLoss:    "loss",
	LinkCorrupt: "corrupt",
	NICStall:    "stall",
	CPUSlow:     "cpuslow",
	NodeFreeze:  "freeze",
	DiskSlow:    "diskslow",
	DiskErrors:  "diskerr",
	Crash:       "crash",
	Restart:     "restart",
}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// kindByName is the inverse of kindNames.
func kindByName(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// needsSeverity reports whether the kind requires an explicit =severity.
func (k Kind) needsSeverity() bool {
	switch k {
	case LinkLoss, LinkCorrupt, CPUSlow, DiskSlow, DiskErrors:
		return true
	}
	return false
}

// IsPoint reports kinds that are instantaneous state transitions rather
// than windows: they are written with "+0" and have no restore event.
func (k Kind) IsPoint() bool { return k == Crash || k == Restart }

// Fault is one scheduled perturbation of one target.
type Fault struct {
	Kind     Kind
	Target   string   // e.g. "node:1", "interlata:0", "client"
	Start    sim.Time // activation time (absolute simulation time)
	Duration sim.Time // window length; the fault reverts at Start+Duration
	Severity float64  // probability or multiplier, per Kind
}

// String renders the fault in the compact schedule syntax.
func (f Fault) String() string {
	s := fmt.Sprintf("%s:%s@%g+%g", f.Kind, f.Target,
		f.Start.Seconds(), f.Duration.Seconds())
	if f.Kind.needsSeverity() {
		s += fmt.Sprintf("=%g", f.Severity)
	}
	return s
}

// Schedule is a set of faults. Order does not matter; the injector sorts
// deterministically when applying.
type Schedule []Fault

// String renders the schedule in the compact syntax accepted by
// ParseSchedule.
func (sch Schedule) String() string {
	parts := make([]string, len(sch))
	for i, f := range sch {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// scheduleLess is the (Start, Target, Kind, Duration) order for
// sort.SliceStable over sch, so event scheduling order is independent of
// how the schedule was assembled.
func scheduleLess(sch Schedule) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := sch[i], sch[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Duration < b.Duration
	}
}

// sorted returns a copy in scheduleLess order.
func (sch Schedule) sorted() Schedule {
	out := append(Schedule(nil), sch...)
	sort.SliceStable(out, scheduleLess(out))
	return out
}

// ParseSchedule parses the compact fault-schedule syntax:
//
//	fault      := kind ":" target "@" start "+" duration [ "=" severity ]
//	schedule   := fault { ";" fault }
//
// where kind is one of linkdown, loss, corrupt, stall, cpuslow, freeze,
// diskslow, diskerr; target names a registered injection point (node:<i>,
// interlata:<l>, client — node:<i> also names the CPU and drives of node i
// for the node/storage kinds); start and duration are simulated seconds
// (floats); severity is the drop/corruption/error probability or the
// slowdown multiplier, required for the probabilistic and slowdown kinds.
//
// Example: "linkdown:node:1@60+10;loss:interlata:0@80+20=0.3"
func ParseSchedule(spec string) (Schedule, error) {
	var sch Schedule
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		f, err := parseFault(item)
		if err != nil {
			return nil, err
		}
		sch = append(sch, f)
	}
	return sch, nil
}

func parseFault(item string) (Fault, error) {
	var f Fault
	kindStr, rest, ok := strings.Cut(item, ":")
	if !ok {
		return f, fmt.Errorf("faults: %q: want kind:target@start+dur[=sev]", item)
	}
	k, ok := kindByName(kindStr)
	if !ok {
		return f, fmt.Errorf("faults: unknown kind %q in %q", kindStr, item)
	}
	f.Kind = k
	target, timing, ok := strings.Cut(rest, "@")
	if !ok || target == "" {
		return f, fmt.Errorf("faults: %q: missing @start", item)
	}
	f.Target = target
	if sevStr, found := cutLast(&timing, "="); found {
		sev, err := strconv.ParseFloat(sevStr, 64)
		if err != nil {
			return f, fmt.Errorf("faults: %q: bad severity: %v", item, err)
		}
		f.Severity = sev
	} else if k.needsSeverity() {
		return f, fmt.Errorf("faults: %q: kind %s requires =severity", item, k)
	}
	startStr, durStr, ok := strings.Cut(timing, "+")
	if !ok {
		return f, fmt.Errorf("faults: %q: want start+duration", item)
	}
	start, err := strconv.ParseFloat(startStr, 64)
	if err != nil {
		return f, fmt.Errorf("faults: %q: bad start: %v", item, err)
	}
	dur, err := strconv.ParseFloat(durStr, 64)
	if err != nil {
		return f, fmt.Errorf("faults: %q: bad duration: %v", item, err)
	}
	if k.IsPoint() {
		// Crash/restart are instants, not windows: insist on "+0" so a
		// schedule cannot silently imply "the node comes back by itself".
		if !(start >= 0) || dur != 0 {
			return f, fmt.Errorf("faults: %q: %s is a point event; want start >= 0 and +0 duration", item, k)
		}
	} else if !(start >= 0) || !(dur > 0) { // NaN fails both comparisons
		return f, fmt.Errorf("faults: %q: start must be >= 0 and duration > 0", item)
	}
	// Bound times so the sim.Time conversion below cannot overflow int64
	// nanoseconds (~292 years); 1e9 simulated seconds is far beyond any run.
	const maxSeconds = 1e9
	if start > maxSeconds || dur > maxSeconds {
		return f, fmt.Errorf("faults: %q: start and duration must be <= %g s", item, float64(maxSeconds))
	}
	f.Start = sim.Time(start * float64(sim.Second))
	f.Duration = sim.Time(dur * float64(sim.Second))
	if err := validate(f); err != nil {
		return f, fmt.Errorf("faults: %q: %v", item, err)
	}
	return f, nil
}

// Targets lists a cluster topology's injectable target names by class, so
// a schedule can be validated at parse time — before any simulation object
// exists — instead of silently no-opping on a typo at run time.
type Targets struct {
	Links  []string // linkdown / loss / corrupt / stall
	CPUs   []string // cpuslow / freeze
	Drives []string // diskslow / diskerr
	Nodes  []string // crash / restart ("dp<i>")
}

// Validate resolves every fault in the schedule against t, returning an
// error that lists the valid names when a target does not resolve, and
// checks the crash/restart pairing rules Apply will enforce.
func (sch Schedule) Validate(t Targets) error {
	for _, f := range sch {
		var class string
		var valid []string
		switch f.Kind {
		case LinkDown, LinkLoss, LinkCorrupt, NICStall:
			class, valid = "link", t.Links
		case CPUSlow, NodeFreeze:
			class, valid = "CPU", t.CPUs
		case DiskSlow, DiskErrors:
			class, valid = "drive", t.Drives
		case Crash, Restart:
			class, valid = "node", t.Nodes
		default:
			return fmt.Errorf("faults: unknown kind %v", f.Kind)
		}
		if !containsString(valid, f.Target) {
			sorted := append([]string(nil), valid...)
			sort.Strings(sorted)
			return fmt.Errorf("faults: no %s target %q (valid: %s)",
				class, f.Target, strings.Join(sorted, ", "))
		}
	}
	return checkLifecycle(sch.sorted())
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// checkLifecycle verifies crash/restart alternation per node on a sorted
// schedule: a restart needs a preceding crash, a crashed node cannot crash
// again before restarting.
func checkLifecycle(ordered Schedule) error {
	down := make(map[string]bool)
	for _, f := range ordered {
		switch f.Kind {
		case Crash:
			if down[f.Target] {
				return fmt.Errorf("faults: %s crashes twice without a restart", f.Target)
			}
			down[f.Target] = true
		case Restart:
			if !down[f.Target] {
				return fmt.Errorf("faults: restart of %s without a preceding crash", f.Target)
			}
			down[f.Target] = false
		}
	}
	return nil
}

// HasNodeLifecycle reports whether the schedule contains crash or restart
// events: the cluster only arms its recovery machinery (heartbeats,
// checkpoints, failover paths) when it does, keeping fault-free runs
// event-for-event identical to builds without the subsystem.
func (sch Schedule) HasNodeLifecycle() bool {
	for _, f := range sch {
		if f.Kind.IsPoint() {
			return true
		}
	}
	return false
}

// cutLast splits s at the last sep, mutating s to the prefix and returning
// the suffix.
func cutLast(s *string, sep string) (string, bool) {
	i := strings.LastIndex(*s, sep)
	if i < 0 {
		return "", false
	}
	suffix := (*s)[i+len(sep):]
	*s = (*s)[:i]
	return suffix, true
}

// validate checks severity ranges per kind. The comparisons are phrased so
// NaN fails them (NaN compares false with everything), and multipliers are
// bounded so a fuzzer-supplied 1e300 cannot push scaled service times into
// overflow.
func validate(f Fault) error {
	switch f.Kind {
	case LinkLoss, LinkCorrupt, DiskErrors:
		if !(f.Severity > 0 && f.Severity <= 1) {
			return fmt.Errorf("severity %g: want a probability in (0,1]", f.Severity)
		}
	case CPUSlow, DiskSlow:
		if !(f.Severity > 1 && f.Severity <= 1e6) {
			return fmt.Errorf("severity %g: want a multiplier in (1, 1e6]", f.Severity)
		}
	}
	return nil
}
