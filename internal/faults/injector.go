package faults

import (
	"fmt"
	"sort"

	"dclue/internal/disk"
	"dclue/internal/netsim"
	"dclue/internal/platform"
	"dclue/internal/rng"
	"dclue/internal/sim"
)

// FreezeFactor is the CPU slowdown used for NodeFreeze: large enough that a
// frozen node makes no visible progress inside any realistic fault window,
// small enough that the kernel's time arithmetic stays exact.
const FreezeFactor = 1e4

// NodeController lets the injector crash and restart a whole DP node (the
// core cluster implements it: kill processes, abandon connections, lose
// volatile state; later boot a fresh engine and rejoin).
type NodeController interface {
	Crash()
	Restart()
}

// Injector binds a fault schedule to the live simulation objects. The core
// package registers each injectable target under a stable name, then Apply
// places activate/restore events on the simulation calendar.
type Injector struct {
	sim  *sim.Sim
	seed uint64

	links  map[string][]*netsim.Link
	cpus   map[string]*platform.CPU
	drives map[string][]*disk.Drive
	nodes  map[string]NodeController

	// Active counts currently-open fault windows (experiments can sample it
	// to annotate timelines).
	Active int

	// open tracks currently-active windows by kind|target, so a hang during
	// a fault schedule is diagnosable from the deadlock report alone. A
	// crash opens a window that the matching restart closes.
	open map[string]Fault
}

// NewInjector returns an empty injector. seed is the master simulation seed;
// per-target fault streams are derived from it so fault draws do not perturb
// the workload's random streams.
func NewInjector(s *sim.Sim, seed uint64) *Injector {
	return &Injector{
		sim:    s,
		seed:   seed,
		links:  make(map[string][]*netsim.Link),
		cpus:   make(map[string]*platform.CPU),
		drives: make(map[string][]*disk.Drive),
		nodes:  make(map[string]NodeController),
		open:   make(map[string]Fault),
	}
}

// RegisterLinks names a group of links (typically the up/down pair of one
// attachment) as one fault target. Each link gets its own derived stream for
// loss/corruption draws.
func (in *Injector) RegisterLinks(name string, links ...*netsim.Link) {
	for i, l := range links {
		l.SetFaultRand(rng.Derive(in.seed, fmt.Sprintf("fault/%s/%d", name, i)))
	}
	in.links[name] = append(in.links[name], links...)
}

// RegisterCPU names a CPU as a fault target for CPUSlow/NodeFreeze.
func (in *Injector) RegisterCPU(name string, c *platform.CPU) {
	in.cpus[name] = c
}

// RegisterDrives names a group of drives as one fault target for
// DiskSlow/DiskErrors.
func (in *Injector) RegisterDrives(name string, drives ...*disk.Drive) {
	in.drives[name] = append(in.drives[name], drives...)
}

// RegisterNode names a DP node as a crash/restart target.
func (in *Injector) RegisterNode(name string, nc NodeController) {
	in.nodes[name] = nc
}

// ActiveFaults returns the currently-open fault windows as a sorted
// schedule (a crash counts as open until its restart). Deadlock and hang
// reports embed it so a wedge during a fault schedule is diagnosable from
// the error alone.
func (in *Injector) ActiveFaults() Schedule {
	out := make(Schedule, 0, len(in.open))
	for _, f := range in.open {
		out = append(out, f)
	}
	sort.SliceStable(out, scheduleLess(out))
	return out
}

// Apply validates the schedule against the registered targets and places
// the activate/restore events. It must be called before Sim.Run. Faults on
// the same target must not overlap in time (restores would otherwise clear
// a still-open window); Apply rejects such schedules.
func (in *Injector) Apply(sch Schedule) error {
	ordered := sch.sorted()
	lastEnd := make(map[string]sim.Time)
	for _, f := range ordered {
		if err := in.check(f); err != nil {
			return err
		}
		key := f.Kind.String() + "|" + f.Target
		if f.Start < lastEnd[key] {
			return fmt.Errorf("faults: overlapping %s windows on %s", f.Kind, f.Target)
		}
		lastEnd[key] = f.Start + f.Duration
	}
	if err := checkLifecycle(ordered); err != nil {
		return err
	}
	for _, f := range ordered {
		f := f
		in.sim.At(f.Start, func() { in.activate(f) })
		if !f.Kind.IsPoint() {
			in.sim.At(f.Start+f.Duration, func() { in.restore(f) })
		}
	}
	return nil
}

// check verifies the fault's target is registered for its kind.
func (in *Injector) check(f Fault) error {
	switch f.Kind {
	case LinkDown, LinkLoss, LinkCorrupt, NICStall:
		if len(in.links[f.Target]) == 0 {
			return fmt.Errorf("faults: no links registered as %q (have %s)",
				f.Target, keysOf(in.links))
		}
	case CPUSlow, NodeFreeze:
		if in.cpus[f.Target] == nil {
			return fmt.Errorf("faults: no CPU registered as %q (have %s)",
				f.Target, keysOf(in.cpus))
		}
	case DiskSlow, DiskErrors:
		if len(in.drives[f.Target]) == 0 {
			return fmt.Errorf("faults: no drives registered as %q (have %s)",
				f.Target, keysOf(in.drives))
		}
	case Crash, Restart:
		if in.nodes[f.Target] == nil {
			return fmt.Errorf("faults: no node registered as %q (have %s)",
				f.Target, keysOf(in.nodes))
		}
	default:
		return fmt.Errorf("faults: unknown kind %v", f.Kind)
	}
	return nil
}

// keysOf returns m's keys sorted, so error messages and any iteration built
// on them are deterministic.
func keysOf[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// activate opens a fault window (kernel context).
func (in *Injector) activate(f Fault) {
	if f.Kind == Restart {
		// A restart closes the crash window instead of opening one.
		in.Active--
		delete(in.open, Crash.String()+"|"+f.Target)
		in.nodes[f.Target].Restart()
		return
	}
	in.Active++
	in.open[f.Kind.String()+"|"+f.Target] = f
	switch f.Kind {
	case Crash:
		in.nodes[f.Target].Crash()
	case LinkDown:
		for _, l := range in.links[f.Target] {
			l.SetDown(true)
		}
	case LinkLoss:
		for _, l := range in.links[f.Target] {
			l.SetLoss(f.Severity)
		}
	case LinkCorrupt:
		for _, l := range in.links[f.Target] {
			l.SetCorrupt(f.Severity)
		}
	case NICStall:
		for _, l := range in.links[f.Target] {
			l.SetStalled(true)
		}
	case CPUSlow:
		in.cpus[f.Target].SetSlowFactor(f.Severity)
	case NodeFreeze:
		in.cpus[f.Target].SetSlowFactor(FreezeFactor)
	case DiskSlow:
		for _, d := range in.drives[f.Target] {
			d.SetLatencyFactor(f.Severity)
		}
	case DiskErrors:
		for _, d := range in.drives[f.Target] {
			d.SetErrorProb(f.Severity)
		}
	}
}

// restore closes a fault window, returning the target to its healthy
// baseline (kernel context).
func (in *Injector) restore(f Fault) {
	in.Active--
	delete(in.open, f.Kind.String()+"|"+f.Target)
	switch f.Kind {
	case LinkDown:
		for _, l := range in.links[f.Target] {
			l.SetDown(false)
		}
	case LinkLoss:
		for _, l := range in.links[f.Target] {
			l.SetLoss(0)
		}
	case LinkCorrupt:
		for _, l := range in.links[f.Target] {
			l.SetCorrupt(0)
		}
	case NICStall:
		for _, l := range in.links[f.Target] {
			l.SetStalled(false)
		}
	case CPUSlow, NodeFreeze:
		in.cpus[f.Target].SetSlowFactor(1)
	case DiskSlow:
		for _, d := range in.drives[f.Target] {
			d.SetLatencyFactor(1)
		}
	case DiskErrors:
		for _, d := range in.drives[f.Target] {
			d.SetErrorProb(0)
		}
	}
}
