package faults

import (
	"testing"

	"dclue/internal/disk"
	"dclue/internal/netsim"
	"dclue/internal/platform"
	"dclue/internal/rng"
	"dclue/internal/sim"
)

func TestParseSchedule(t *testing.T) {
	sch, err := ParseSchedule("linkdown:node:1@60+10; loss:interlata:0@80+20=0.3;freeze:cpu:2@5+0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(sch) != 3 {
		t.Fatalf("got %d faults, want 3", len(sch))
	}
	f := sch[0]
	if f.Kind != LinkDown || f.Target != "node:1" ||
		f.Start != 60*sim.Second || f.Duration != 10*sim.Second {
		t.Errorf("fault 0 = %+v", f)
	}
	f = sch[1]
	if f.Kind != LinkLoss || f.Target != "interlata:0" || f.Severity != 0.3 {
		t.Errorf("fault 1 = %+v", f)
	}
	f = sch[2]
	if f.Kind != NodeFreeze || f.Target != "cpu:2" || f.Duration != sim.Time(0.5*float64(sim.Second)) {
		t.Errorf("fault 2 = %+v", f)
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "linkdown:node:1@60+10;loss:interlata:0@80+20=0.3;diskslow:node:0@5+2=8"
	sch, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.String(); got != spec {
		t.Errorf("round trip: got %q, want %q", got, spec)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"explode:node:0@1+1",     // unknown kind
		"linkdown:node:0@1",      // missing duration
		"loss:node:0@1+1",        // missing required severity
		"loss:node:0@1+1=1.5",    // probability out of range
		"cpuslow:node:0@1+1=0.5", // multiplier must exceed 1
		"linkdown:node:0@-1+1",   // negative start
		"linkdown:node:0@1+0",    // zero duration
		"linkdown@1+1",           // missing target
		"loss:node:0@1+1=x",      // unparsable severity
	}
	for _, spec := range bad {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q): expected error", spec)
		}
	}
}

// testRig builds a sim plus one registered target of each category. The
// link is a real NIC uplink into a router so down/stall paths exercise the
// same code the cluster topology uses.
func testRig(t *testing.T) (*sim.Sim, *Injector, *netsim.Link, *platform.CPU, *disk.Drive) {
	t.Helper()
	s := sim.New()
	net := netsim.New(s)
	r := netsim.NewRouter(net, "r0", 1e9, sim.Microsecond)
	nic := net.NIC(0)
	nic.Attach(r, 1e9, 10*sim.Microsecond)
	cpu := platform.NewCPU(s, platform.DefaultConfig(1))
	drv := disk.NewDrive(s, disk.DefaultParams(1), rng.New(7))
	in := NewInjector(s, 42)
	in.RegisterLinks("node:0", nic.Link())
	in.RegisterCPU("node:0", cpu)
	in.RegisterDrives("node:0", drv)
	return s, in, nic.Link(), cpu, drv
}

func TestApplyActivatesAndRestores(t *testing.T) {
	s, in, link, cpu, drv := testRig(t)
	sch, err := ParseSchedule(
		"linkdown:node:0@1+2;cpuslow:node:0@1+2=4;diskslow:node:0@1+2=8;diskerr:node:0@1+2=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sch); err != nil {
		t.Fatal(err)
	}

	type snap struct {
		down   bool
		slow   float64
		active int
	}
	var during, after snap
	s.At(2*sim.Second, func() {
		during = snap{link.Down(), cpu.SlowFactor(), in.Active}
	})
	s.At(4*sim.Second, func() {
		after = snap{link.Down(), cpu.SlowFactor(), in.Active}
	})
	s.Run(5 * sim.Second)

	if !during.down || during.slow != 4 || during.active != 4 {
		t.Errorf("during window: %+v", during)
	}
	if after.down || after.slow != 1 || after.active != 0 {
		t.Errorf("after window: %+v", after)
	}
	_ = drv
}

func TestApplyUnknownTarget(t *testing.T) {
	_, in, _, _, _ := testRig(t)
	for _, spec := range []string{
		"linkdown:node:9@1+1",
		"cpuslow:node:9@1+1=2",
		"diskerr:node:9@1+1=0.1",
	} {
		sch, err := ParseSchedule(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Apply(sch); err == nil {
			t.Errorf("Apply(%q): expected unknown-target error", spec)
		}
	}
}

func TestApplyRejectsOverlap(t *testing.T) {
	_, in, _, _, _ := testRig(t)
	sch, err := ParseSchedule("linkdown:node:0@1+5;linkdown:node:0@3+5")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sch); err == nil {
		t.Error("expected overlap error")
	}
	// Different kinds on the same target may overlap.
	sch, err = ParseSchedule("linkdown:node:0@1+5;loss:node:0@3+5=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sch); err != nil {
		t.Errorf("distinct kinds should be allowed to overlap: %v", err)
	}
}
