package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dclue/internal/runner"
)

var update = flag.Bool("update", false, "rewrite the golden figure fixtures under testdata/")

// goldenFigures are the Quick-mode tables locked as fixtures: the two IPC
// figures the paper's §3 argument hangs on, one throughput-scaling figure,
// one QoS/cross-traffic figure, the fault-loss sweep, and the failover
// timeline. Any change to model output shows up as an explicit, reviewable
// fixture diff.
var goldenFigures = []string{"fig02", "fig03", "fig06", "fig16", "flt-loss", "lat-decomp", "flt-failover", "util-decomp"}

// findFigure looks an id up across the paper figures, fault experiments,
// ablations, trace and telemetry experiments.
func findFigure(id string) (Figure, bool) {
	if f, ok := Lookup(id); ok {
		return f, true
	}
	if f, ok := LookupFault(id); ok {
		return f, true
	}
	if f, ok := LookupTrace(id); ok {
		return f, true
	}
	if f, ok := LookupTelemetry(id); ok {
		return f, true
	}
	return LookupAblation(id)
}

// TestGoldenFigures regenerates each committed figure table in Quick mode
// and diffs it byte-for-byte against testdata/<id>.golden. Regenerate with:
//
//	go test ./internal/experiments -run Golden -update
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full Quick-mode regeneration")
	}
	for _, id := range goldenFigures {
		id := id
		t.Run(id, func(t *testing.T) {
			f, ok := findFigure(id)
			if !ok {
				t.Fatalf("figure %q not registered", id)
			}
			// The pool exercises the parallel path; output is identical to
			// sequential by the runner's ordered-merge contract (verified
			// separately by the determinism tests).
			got := f.Run(Options{Quick: true, Seed: 1, Pool: runner.New(4)}).Table()
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s table drifted from fixture.\n-- got --\n%s-- want --\n%s"+
					"If the change is intended, regenerate with -update and review the diff.",
					id, got, want)
			}
		})
	}
}
