package experiments

import (
	"strconv"
	"strings"
	"testing"

	"dclue/internal/runner"
	"dclue/internal/trace"
)

// TestLatDecompPhaseSum regenerates the decomposition table and checks the
// accounting the figure advertises: in every case the phase columns sum to
// within 5% of the independently measured mean response time (the figure
// records the worst deviation in its notes).
func TestLatDecompPhaseSum(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r := LatencyDecomposition(Options{Quick: true, Seed: 1, tinyRuns: true, Pool: runner.New(4)})
	i := strings.LastIndex(r.Notes, "= ")
	if i < 0 {
		t.Fatalf("no deviation note: %q", r.Notes)
	}
	dev, err := strconv.ParseFloat(strings.TrimSpace(r.Notes[i+2:]), 64)
	if err != nil {
		t.Fatalf("unparsable deviation in notes %q: %v", r.Notes, err)
	}
	if dev > 0.05 {
		t.Fatalf("phase sums deviate from response time by %.2f%% (limit 5%%)\n%s",
			dev*100, r.Table())
	}
	if len(r.Series) != 6 {
		t.Fatalf("got %d series, want 6 (resp + five phases)", len(r.Series))
	}
}

// TestTraceDoesNotPerturbFigures attaches an event-retaining stride-1
// collector to an ordinary figure sweep (parallel, to also cover concurrent
// run registration) and checks the rendered table is byte-identical to the
// untraced sweep — the whole-stack version of the core fingerprint test.
func TestTraceDoesNotPerturbFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	base := Options{Quick: true, Seed: 1, tinyRuns: true, Pool: runner.New(4)}
	plain := Fig2(base)

	col := trace.NewCollector(1)
	col.KeepEvents(0)
	traced := base
	traced.Trace = col
	withTrace := Fig2(traced)

	if plain.Table() != withTrace.Table() {
		t.Errorf("tracing changed a figure table.\n-- untraced --\n%s-- traced --\n%s",
			plain.Table(), withTrace.Table())
	}
	if plain.Fingerprint() != withTrace.Fingerprint() {
		t.Errorf("fingerprint mismatch: untraced %x, traced %x",
			plain.Fingerprint(), withTrace.Fingerprint())
	}
	runs := col.Runs()
	if len(runs) == 0 {
		t.Fatal("collector saw no runs")
	}
	var sampled uint64
	for _, r := range runs {
		sampled += r.Sampled()
	}
	if sampled == 0 {
		t.Fatal("no spans recorded across the sweep")
	}
}
