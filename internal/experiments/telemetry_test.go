package experiments

import (
	"strings"
	"testing"

	"dclue/internal/runner"
	"dclue/internal/sim"
	"dclue/internal/telemetry"
)

// TestTelemetryNonPerturbing attaches a timeline-recording telemetry
// collector to every golden figure and checks each rendered table is
// byte-identical to the bare sweep, sequentially and on a 4-worker pool —
// the whole-stack version of the core fingerprint test, across the exact
// suite the golden fixtures lock.
func TestTelemetryNonPerturbing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	for _, id := range goldenFigures {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			f, ok := findFigure(id)
			if !ok {
				t.Fatalf("figure %q not registered", id)
			}
			base := Options{Quick: true, Seed: 1, tinyRuns: true}
			plain := f.Run(base)
			for _, workers := range []int{1, 4} {
				o := base
				o.Pool = runner.New(workers)
				o.Telemetry = telemetry.NewCollector(sim.Second)
				got := f.Run(o)
				if got.Table() != plain.Table() {
					t.Errorf("telemetry changed the table at -j%d.\n-- bare --\n%s-- telemetered --\n%s",
						workers, plain.Table(), got.Table())
				}
				if got.Fingerprint() != plain.Fingerprint() {
					t.Errorf("fingerprint mismatch at -j%d: bare %x, telemetered %x",
						workers, plain.Fingerprint(), got.Fingerprint())
				}
			}
		})
	}
}

// TestUtilDecompFigure regenerates the decomposition table and checks the
// accounting it advertises: zero attribution mismatches in the notes, six
// series, and class shares summing to ~100% of server-link busy time.
func TestUtilDecompFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r := UtilDecomposition(Options{Quick: true, Seed: 1, tinyRuns: true, Pool: runner.New(4)})
	if !strings.Contains(r.Notes, "mismatches=0") {
		t.Fatalf("attribution mismatches in notes: %q", r.Notes)
	}
	if len(r.Series) != 6 {
		t.Fatalf("got %d series, want 6 (util + five class shares)", len(r.Series))
	}
	// Series 1..5 are the class shares; at every x they must sum to 100%.
	for i, pt := range r.Series[1].Points {
		sum := 0.0
		for _, s := range r.Series[1:] {
			sum += s.Points[i].Y
		}
		if sum < 99.999 || sum > 100.001 {
			t.Errorf("class shares at nodes=%g sum to %.4f%%, want 100%%", pt.X, sum)
		}
	}
}

// TestUtilDecompShapeAcrossSeeds pins the qualitative claim the util-decomp
// figure reproduces: the benchmark's sizing rule grows the database with the
// cluster, buffer hit rates fall, and so the iSCSI share of the shared
// server links grows monotonically with DP node count — the paper's
// fabric-saturation argument. Checked across seeds so the claim, not one
// fixture, is enforced.
func TestUtilDecompShapeAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	for _, seed := range []uint64{1, 2, 3} {
		o := Options{Quick: true, Seed: seed, tinyRuns: true, Pool: runner.New(4)}
		sizes := []int{2, 4, 8}
		shares := make([]float64, len(sizes))
		o.forEach(len(sizes), func(i int) {
			n := sizes[i]
			q := o.baseParams(n)
			q.Affinity = 0.8
			q.Telemetry = telemetry.NewCollector(0)
			u := o.fixedLoad(q, 6*n).UtilDecomp
			shares[i] = 100 * u.NodeLinks.ISCSI / u.NodeLinksBusySec
		})
		for i := 1; i < len(shares); i++ {
			if shares[i] <= shares[i-1] {
				t.Errorf("seed %d: iSCSI share not growing with nodes: %.3f%%@%d >= %.3f%%@%d",
					seed, shares[i-1], sizes[i-1], shares[i], sizes[i])
			}
		}
	}
}
