package experiments

import (
	"strings"
	"testing"

	"dclue/internal/sim"
	"dclue/internal/stats"
)

func TestAllFiguresRegistered(t *testing.T) {
	figs := All()
	if len(figs) != 15 {
		t.Fatalf("registered %d figures, want 15 (Figs 2-16)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
		if f.Run == nil || f.Title == "" {
			t.Fatalf("figure %s incomplete", f.ID)
		}
	}
}

func TestLookupForms(t *testing.T) {
	for _, id := range []string{"fig06", "06", "6"} {
		f, ok := Lookup(id)
		if !ok || f.ID != "fig06" {
			t.Fatalf("Lookup(%q) = %v/%v", id, f.ID, ok)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Fatal("Lookup accepted unknown figure")
	}
}

func TestResultTableRendering(t *testing.T) {
	s := &stats.Series{Name: "a"}
	s.Add(1, 10)
	s.Add(2, 20)
	r := Result{ID: "figXX", Title: "demo", XLabel: "nodes",
		Series: []*stats.Series{s}, Notes: "note"}
	out := r.Table()
	for _, want := range []string{"figXX", "demo", "nodes", "20", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if len(o.nodeSweep()) < 4 {
		t.Fatal("full sweep too small")
	}
	o.Quick = true
	if len(o.nodeSweep()) > 4 {
		t.Fatal("quick sweep too big")
	}
	if o.maxWhPerNode() >= (Options{}).maxWhPerNode() {
		t.Fatal("quick search cap not smaller")
	}
	p := o.baseParams(2)
	if p.Nodes != 2 {
		t.Fatalf("baseParams nodes %d", p.Nodes)
	}
	if p.Warmup >= 150*sim.Second {
		t.Fatal("quick warmup not reduced")
	}
	o.Seed = 42
	if o.baseParams(2).Seed != 42 {
		t.Fatal("seed not applied")
	}
}

// TestFig2QuickShape runs the cheapest real figure end-to-end and checks
// the paper's qualitative shape: IPC messages per transaction increase
// with cluster size at affinity 0.8.
func TestFig2QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r := Fig2(Options{Quick: true, Seed: 1})
	if len(r.Series) != 2 {
		t.Fatalf("series %d", len(r.Series))
	}
	ctl := r.Series[0].Points
	if len(ctl) < 3 {
		t.Fatalf("points %d", len(ctl))
	}
	if !(ctl[0].Y < ctl[len(ctl)-1].Y) {
		t.Fatalf("ctl msgs/txn not increasing with nodes: %+v", ctl)
	}
	for _, p := range ctl {
		if p.Y < 0 {
			t.Fatalf("negative message count: %+v", p)
		}
	}
}
