package experiments

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"dclue/internal/farm"
	"dclue/internal/runner"
)

// The farm integration tests re-exec this test binary as helper processes
// (workers, and a whole coordinator-driven sweep for the kill-and-resume
// scenario). TestMain dispatches on DCLUE_EXP_FARM_HELPER before the test
// framework takes over.
const farmHelperEnv = "DCLUE_EXP_FARM_HELPER"

func TestMain(m *testing.M) {
	switch mode := os.Getenv(farmHelperEnv); mode {
	case "":
		os.Exit(m.Run())
	case "worker":
		// A production worker, optionally throttled: DCLUE_FARM_SLOWMS
		// delays every stdin read so the parent can reliably SIGKILL the
		// coordinator while points are still in flight.
		var in io.Reader = os.Stdin
		if ms, _ := strconv.Atoi(os.Getenv("DCLUE_FARM_SLOWMS")); ms > 0 {
			in = &slowReader{r: os.Stdin, delay: time.Duration(ms) * time.Millisecond}
		}
		if err := farm.Serve(in, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "farm helper worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	case "sweep":
		os.Exit(helperSweep())
	default:
		fmt.Fprintf(os.Stderr, "unknown helper mode %q\n", mode)
		os.Exit(2)
	}
}

type slowReader struct {
	r     io.Reader
	delay time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.r.Read(p)
}

// helperSweep runs one figure end to end under a farm coordinator — the
// exact wiring cmd/dclueexp -farm uses — and writes the rendered table to
// DCLUE_FARM_OUT. The parent kills this process mid-sweep and runs it again
// to prove resume.
func helperSweep() int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "farm helper sweep:", err)
		return 1
	}
	figID := os.Getenv("DCLUE_FARM_FIG")
	var fig *Figure
	for _, f := range everyFigure() {
		if f.ID == figID {
			f := f
			fig = &f
			break
		}
	}
	if fig == nil {
		return fail(fmt.Errorf("unknown figure %q", figID))
	}
	coord, err := farm.New(farm.Config{
		Workers: 2,
		Argv:    []string{os.Args[0]},
		ExtraEnv: []string{
			farmHelperEnv + "=worker",
			"DCLUE_FARM_SLOWMS=" + os.Getenv("DCLUE_FARM_SLOWMS"),
		},
		ResultsDir: os.Getenv("DCLUE_FARM_RESULTS"),
		CacheDir:   os.Getenv("DCLUE_FARM_CACHE"),
	})
	if err != nil {
		return fail(err)
	}
	defer coord.Close()
	r := fig.Run(Options{Quick: true, Seed: 1, tinyRuns: true, Pool: runner.New(2), Exec: coord.Exec})
	if err := os.WriteFile(os.Getenv("DCLUE_FARM_OUT"), []byte(r.Table()), 0o644); err != nil {
		return fail(err)
	}
	return 0
}

// farmWorkerConfig wires a coordinator to helper-process workers.
func farmWorkerConfig(t *testing.T, workers int, resultsDir, cacheDir string) farm.Config {
	t.Helper()
	return farm.Config{
		Workers:    workers,
		Argv:       []string{os.Args[0]},
		ExtraEnv:   []string{farmHelperEnv + "=worker"},
		ResultsDir: resultsDir,
		CacheDir:   cacheDir,
		Stderr:     io.Discard,
	}
}

// TestFarmEveryFigureByteIdentical is the farm's headline contract, pinned
// for every registered experiment: the rendered table is byte-identical to
// the in-process run at worker counts 1, 2 and 4 — from a cold cache, from
// a warm cache (fresh sweep, every point a cache hit), and from a resumed
// results directory (every point a checkpoint hit).
func TestFarmEveryFigureByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps every registered experiment through worker subprocesses")
	}
	root := t.TempDir()
	cacheDir := filepath.Join(root, "cache")
	for _, f := range everyFigure() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			ref := f.Run(Options{Quick: true, Seed: 1, tinyRuns: true})

			runWidth := func(w int, resultsDir string) farm.Stats {
				t.Helper()
				coord, err := farm.New(farmWorkerConfig(t, w, resultsDir, cacheDir))
				if err != nil {
					t.Fatal(err)
				}
				defer coord.Close()
				r := f.Run(Options{Quick: true, Seed: 1, tinyRuns: true, Pool: runner.New(w), Exec: coord.Exec})
				if r.Table() != ref.Table() {
					t.Fatalf("farm table (width %d) diverges from in-process run.\n-- in-process --\n%s-- farm --\n%s",
						w, ref.Table(), r.Table())
				}
				return coord.Stats()
			}

			coldDir := filepath.Join(root, f.ID+"-cold")
			cold := runWidth(1, coldDir)
			// Two kinds of reuse are legitimate even on a "cold" figure: the
			// cache is shared across the registry and some experiments share
			// points (an ablation's baseline is the base figure's point), and
			// a figure may sweep the same point twice (overlapping series),
			// whose second occurrence hits the checkpoint written moments
			// earlier. So the cold invariant is pure accounting: every point
			// is served exactly once, with no failures.
			if cold.Points == 0 || cold.Failures != 0 ||
				cold.Execs+cold.CacheHits+cold.CheckpointHits != cold.Points {
				t.Fatalf("cold run accounting off: %+v", cold)
			}

			warmDir := filepath.Join(root, f.ID+"-warm")
			warm := runWidth(2, warmDir)
			if warm.Execs != 0 || warm.CacheHits+warm.CheckpointHits != warm.Points || warm.Points != cold.Points {
				t.Fatalf("warm run not served purely from reuse (cold %+v, warm %+v)", cold, warm)
			}

			resumed := runWidth(4, warmDir) // same results dir: checkpoints
			if resumed.Execs != 0 || resumed.CacheHits != 0 || resumed.CheckpointHits != cold.Points {
				t.Fatalf("resumed run not served purely from checkpoints: %+v", resumed)
			}
		})
	}
}

// TestFarmKillAndResume is the crash-recovery integration test: a
// coordinator-driven sweep (in a subprocess, with throttled workers) is
// SIGKILLed mid-sweep — workers orphaned, log torn wherever it happened to
// be — then rerun against the same results directory. The resumed sweep's
// table must be byte-identical to an uninterrupted in-process run, and the
// combined checkpoint log must show every point executed at most once.
func TestFarmKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns coordinator and worker subprocesses")
	}
	const figID = "fig02"
	var ref Result
	for _, f := range everyFigure() {
		if f.ID == figID {
			ref = f.Run(Options{Quick: true, Seed: 1, tinyRuns: true})
		}
	}
	if ref.ID != figID {
		t.Fatalf("figure %s not registered", figID)
	}

	root := t.TempDir()
	resultsDir := filepath.Join(root, "results")
	outPath := filepath.Join(root, "table.txt")
	sweepEnv := func(slowMS int) []string {
		return append(os.Environ(),
			farmHelperEnv+"=sweep",
			"DCLUE_FARM_FIG="+figID,
			"DCLUE_FARM_RESULTS="+resultsDir,
			"DCLUE_FARM_CACHE=", // no cache: resume must come from checkpoints
			"DCLUE_FARM_OUT="+outPath,
			"DCLUE_FARM_SLOWMS="+strconv.Itoa(slowMS),
		)
	}

	// First run: throttled workers, killed as soon as the first checkpoint
	// lands (mid-sweep: later points are still queued or in flight).
	first := exec.Command(os.Args[0])
	first.Env = sweepEnv(200)
	first.Stderr = io.Discard
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if n, _ := filepath.Glob(filepath.Join(resultsDir, "*.json")); len(n) > 0 {
			break
		}
		if time.Now().After(deadline) {
			first.Process.Kill()
			first.Wait()
			t.Fatal("no checkpoint appeared within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := first.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	first.Wait()
	if _, err := os.Stat(outPath); err == nil {
		// The sweep finished before the kill landed; the scenario degrades
		// to plain resume, which the byte-identity test already covers —
		// but the double-execution audit below still applies.
		t.Log("sweep completed before SIGKILL; resume will be pure checkpoint replay")
	}

	// Second run: same results directory, full speed, runs to completion.
	second := exec.Command(os.Args[0])
	second.Env = sweepEnv(0)
	second.Stderr = io.Discard
	if out, err := second.Output(); err != nil {
		t.Fatalf("resumed sweep failed: %v (%s)", err, out)
	}
	table, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(table) != ref.Table() {
		t.Fatalf("resumed table diverges from uninterrupted in-process run.\n-- in-process --\n%s-- resumed --\n%s",
			ref.Table(), table)
	}

	// The combined log (first segment + resumed segment, same file) is the
	// no-double-execution proof: every point's exec-done appears at most
	// once, and the resumed run re-served at least one checkpoint.
	evs, err := farm.ReadLog(filepath.Join(resultsDir, "log.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	done := map[string]int{}
	checkpointHits := 0
	for _, e := range evs {
		switch e.Event {
		case "exec-done":
			done[e.Key]++
		case "checkpoint-hit":
			checkpointHits++
		}
	}
	if len(done) == 0 {
		t.Fatal("log records no executed points")
	}
	var dup []string
	for k, n := range done {
		if n > 1 {
			dup = append(dup, fmt.Sprintf("%.12s x%d", k, n))
		}
	}
	sort.Strings(dup)
	if len(dup) > 0 {
		t.Fatalf("points executed more than once across kill+resume: %s", strings.Join(dup, ", "))
	}
	if checkpointHits == 0 {
		t.Fatal("resumed sweep served no checkpoints (kill landed after completion AND before any reuse?)")
	}
}
