package experiments

import (
	"fmt"

	"dclue/internal/core"
	"dclue/internal/sim"
	"dclue/internal/stats"
)

// Fig11 reproduces "Impact of TCP and iSCSI offload": throughput for three
// implementation mixes at affinities 1.0, 0.8 and 0.5 (§3.3):
//  1. both TCP and iSCSI in hardware (the baseline of all other figures);
//  2. TCP in hardware, iSCSI in software;
//  3. both in software (1 copy on send, 2 on receive).
func Fig11(o Options) Result {
	nodes := 8
	if o.Quick {
		nodes = 4
	}
	configs := []struct {
		name    string
		swTCP   bool
		swISCSI bool
	}{
		{"HW TCP + HW iSCSI", false, false},
		{"HW TCP + SW iSCSI", false, true},
		{"SW TCP + SW iSCSI", true, true},
	}
	affs := []float64{1.0, 0.8, 0.5}
	caps := make([]core.CapacityResult, len(configs)*len(affs))
	o.grid(len(configs), len(affs), func(c, a int) {
		cfg := configs[c]
		p := o.baseParams(nodes)
		p.Affinity = affs[a]
		p.SWTCP = cfg.swTCP
		p.SWiSCSI = cfg.swISCSI
		r := o.capacity(p)
		o.logf("fig11 %s aff=%.1f: tpmC=%.0f", cfg.name, affs[a], r.Metrics.TpmC)
		caps[c*len(affs)+a] = r
	})
	var series []*stats.Series
	for c, cfg := range configs {
		s := &stats.Series{Name: cfg.name}
		for a, aff := range affs {
			s.Add(aff, caps[c*len(affs)+a].Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "fig11", Title: fmt.Sprintf("Offload impact, %d nodes (scaled tpm-C)", nodes),
		XLabel: "affinity", Series: series,
		Notes: "Paper shape: no appreciable difference at affinity 1.0; HW TCP ~2x SW TCP at 0.8; iSCSI offload marginal; the gap widens only slightly at 0.5 where lock failures dominate (§3.3).",
	}
}

// latencyFigure implements Figs 12-13: relative throughput as extra
// inter-LATA round-trip latency is injected, on a 2-LATA cluster at the
// figure's computation weight. Latency points are unscaled milliseconds of
// added RTT as in the paper; the load is fixed at the zero-latency capacity
// so the drop isolates the latency effect. Each affinity is one job — its
// RTT runs depend on its own capacity search, and fan out as an inner sweep
// once the search completes.
func latencyFigure(o Options, id string, lowComp bool) Result {
	rtts := []float64{0, 0.5, 1, 2}
	if o.Quick {
		rtts = []float64{0, 1}
	}
	affs := []float64{0.8, 0.5}
	rows := make([][]core.Metrics, len(affs))
	o.forEach(len(affs), func(a int) {
		base := o.baseParams(8)
		base.NodesPerLata = 4 // two LATAs of four
		base.Affinity = affs[a]
		base.LowComputation = lowComp
		cap0 := o.capacity(base)
		wh := cap0.Warehouses
		ms := make([]core.Metrics, len(rtts))
		o.forEach(len(rtts), func(i int) {
			p := base
			// The paper splits the additional latency over the two
			// inter-LATA links; the knob here is added RTT in unscaled ms.
			p.ExtraLatency = sim.Time(rtts[i] / 2 * p.Scale * float64(sim.Millisecond))
			ms[i] = o.fixedLoad(p, wh)
		})
		t0 := ms[0].TpmC // rtts[0] is always the zero-latency point
		for i, rtt := range rtts {
			rel := 0.0
			if t0 > 0 {
				rel = ms[i].TpmC / t0 * 100
			}
			o.logf("%s aff=%.1f rtt=+%.1fms: tpmC=%.0f (%.1f%%)", id, affs[a], rtt, ms[i].TpmC, rel)
		}
		rows[a] = ms
	})
	var series []*stats.Series
	for a, aff := range affs {
		s := &stats.Series{Name: fmt.Sprintf("aff=%.1f", aff)}
		t0 := rows[a][0].TpmC
		for i, rtt := range rtts {
			rel := 0.0
			if t0 > 0 {
				rel = rows[a][i].TpmC / t0 * 100
			}
			s.Add(rtt, rel)
		}
		series = append(series, s)
	}
	var notes string
	if lowComp {
		notes = "Paper anchor: with computation cut 4x, +1 ms RTT costs ~10.4% (§3.3)."
	} else {
		notes = "Paper anchor: +1 ms RTT costs ~3.4%, +2 ms ~6%; sensitivity similar at 0.5 and 0.8 affinity (§3.3)."
	}
	return Result{
		ID: id, Title: "Relative throughput (%) vs added inter-LATA RTT (unscaled ms)",
		XLabel: "added RTT ms", Series: series, Notes: notes,
	}
}

// Fig12 reproduces "Latency impact: normal comp, 0.5 & 0.8 affinity".
func Fig12(o Options) Result { return latencyFigure(o, "fig12", false) }

// Fig13 reproduces "Latency impact: low comp, 0.5 & 0.8 affinity".
func Fig13(o Options) Result { return latencyFigure(o, "fig13", true) }
