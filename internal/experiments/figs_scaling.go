package experiments

import (
	"fmt"

	"dclue/internal/core"
	"dclue/internal/stats"
)

// ipcFigure implements Figs 2-3: control and data IPC messages per
// transaction as the cluster grows, at a fixed per-node load well inside
// capacity so the message counts are not polluted by retry storms.
func ipcFigure(o Options, id string, affinity float64, whPerNode int) Result {
	ctl := &stats.Series{Name: "ctl msgs/txn"}
	data := &stats.Series{Name: "data msgs/txn"}
	for _, n := range o.nodeSweep() {
		p := o.baseParams(n)
		p.Affinity = affinity
		m := fixedLoad(p, whPerNode*n)
		o.logf("%s nodes=%d: ctl=%.1f data=%.2f", id, n, m.CtlMsgsPerTxn, m.DataMsgsPerTxn)
		ctl.Add(float64(n), m.CtlMsgsPerTxn)
		data.Add(float64(n), m.DataMsgsPerTxn)
	}
	return Result{
		ID:     id,
		Title:  fmt.Sprintf("IPC messages per transaction, affinity %.1f", affinity),
		XLabel: "nodes",
		Series: []*stats.Series{ctl, data},
		Notes:  "Paper shape: sharp rise then quick saturation with cluster size (§3.2).",
	}
}

// Fig2 reproduces "IPC messages per trans for 0.8 affinity".
func Fig2(o Options) Result { return ipcFigure(o, "fig02", 0.8, 8) }

// Fig3 reproduces "IPC messages per trans for 0 affinity".
func Fig3(o Options) Result { return ipcFigure(o, "fig03", 0.0, 5) }

// lockFigure implements Figs 4-5 over two affinities.
func lockFigure(o Options, id, title string, pick func(core.Metrics) float64, note string) Result {
	var series []*stats.Series
	for _, aff := range []float64{0.8, 0.5} {
		s := &stats.Series{Name: fmt.Sprintf("aff=%.1f", aff)}
		whPerNode := 8
		if aff < 0.7 {
			whPerNode = 5
		}
		for _, n := range o.nodeSweep() {
			p := o.baseParams(n)
			p.Affinity = aff
			m := fixedLoad(p, whPerNode*n)
			o.logf("%s nodes=%d aff=%.1f: %v", id, n, aff, pick(m))
			s.Add(float64(n), pick(m))
		}
		series = append(series, s)
	}
	return Result{ID: id, Title: title, XLabel: "nodes", Series: series, Notes: note}
}

// Fig4 reproduces "Lock waits/trans vs #nodes and affinities".
func Fig4(o Options) Result {
	return lockFigure(o, "fig04", "Lock waits per transaction",
		func(m core.Metrics) float64 { return m.LockWaitsPerTxn },
		"Paper shape: steady increase with cluster size, high variability (§3.2).")
}

// Fig5 reproduces "Lock wait time vs #nodes and affinities".
func Fig5(o Options) Result {
	return lockFigure(o, "fig05", "Mean lock wait time (scaled ms)",
		func(m core.Metrics) float64 { return m.LockWaitMs },
		"Paper shape: average wait time increases steadily with cluster size (§3.2).")
}

// Fig6 reproduces "Scaling vs nodes and affinity": maximum sustainable
// throughput (TPC-C self-sized) against cluster size for several
// affinities. Affinity 1.0 is the perfect-scaling reference.
func Fig6(o Options) Result {
	affs := []float64{1.0, 0.8, 0.5, 0.2}
	nodes := append([]int{1}, o.nodeSweep()...)
	if o.Quick {
		affs = []float64{1.0, 0.8}
		nodes = []int{1, 2, 4}
	}
	var series []*stats.Series
	for _, aff := range affs {
		s := &stats.Series{Name: fmt.Sprintf("aff=%.1f", aff)}
		for _, n := range nodes {
			p := o.baseParams(n)
			p.Affinity = aff
			r := o.capacity(p)
			o.logf("fig06 nodes=%d aff=%.1f: tpmC=%.0f (wh=%d feasible=%v)",
				n, aff, r.Metrics.TpmC, r.Warehouses, r.Feasible)
			s.Add(float64(n), r.Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "fig06", Title: "Throughput scaling vs cluster size (scaled tpm-C)",
		XLabel: "nodes", Series: series,
		Notes: "Paper shape: near-linear 2-10 nodes; slope falls with affinity; knee at the 12-node 2-LATA crossover; aff<=0.5 stops scaling beyond 12 (§3.2).",
	}
}

// Fig7 reproduces "Scaling vs affinity and nodes".
func Fig7(o Options) Result {
	affs := []float64{0, 0.2, 0.5, 0.8, 1.0}
	nodes := []int{4, 8, 16}
	if o.Quick {
		affs = []float64{0.5, 0.8, 1.0}
		nodes = []int{4}
	}
	var series []*stats.Series
	for _, n := range nodes {
		s := &stats.Series{Name: fmt.Sprintf("%d nodes", n)}
		for _, aff := range affs {
			p := o.baseParams(n)
			p.Affinity = aff
			r := o.capacity(p)
			o.logf("fig07 nodes=%d aff=%.1f: tpmC=%.0f", n, aff, r.Metrics.TpmC)
			s.Add(aff, r.Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "fig07", Title: "Throughput vs affinity (scaled tpm-C)",
		XLabel: "affinity", Series: series,
		Notes: "Paper shape: scaling drops rapidly with affinity; sensitivity is highest near affinity 1 (§3.2).",
	}
}

// Fig8 reproduces "Impact of router forwarding rate on scalability": a
// single-LATA cluster with the inner router throttled from 10000 to 4000
// packets/second saturates beyond ~8 nodes.
func Fig8(o Options) Result {
	nodes := []int{2, 4, 6, 8, 10, 12}
	if o.Quick {
		nodes = []int{2, 4, 8}
	}
	// The paper reduces the rate from 10000 to 4000 pkt/s, placing the
	// saturation knee near 8 servers of *its* calibration (~21 control
	// messages per transaction at affinity 0.8). This model produces fewer
	// messages per transaction, so the throttled rate is rescaled to put
	// the router at the same relative position: saturating around the
	// 8-node traffic level.
	rates := []float64{10000, 1600}
	var series []*stats.Series
	for _, rate := range rates {
		s := &stats.Series{Name: fmt.Sprintf("%.0f pkt/s", rate)}
		for _, n := range nodes {
			p := o.baseParams(n)
			p.NodesPerLata = 12 // single LATA
			p.RouterFwdRate = rate * 100 / p.Scale
			r := o.capacity(p)
			o.logf("fig08 nodes=%d rate=%.0f: tpmC=%.0f", n, rate, r.Metrics.TpmC)
			s.Add(float64(n), r.Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "fig08", Title: "Throughput vs nodes under reduced router forwarding rate",
		XLabel: "nodes", Series: series,
		Notes: "Paper shape: with the throttled forwarding rate the inner router saturates beyond ~8 servers and scaling stops (§3.2).",
	}
}

// Fig9 reproduces "Impact of single node logging on scalability".
func Fig9(o Options) Result {
	nodes := o.nodeSweep()
	var series []*stats.Series
	for _, central := range []bool{false, true} {
		name := "local logging"
		if central {
			name = "central logging"
		}
		s := &stats.Series{Name: name}
		for _, n := range nodes {
			p := o.baseParams(n)
			p.CentralLogging = central
			r := o.capacity(p)
			o.logf("fig09 nodes=%d central=%v: tpmC=%.0f", n, central, r.Metrics.TpmC)
			s.Add(float64(n), r.Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "fig09", Title: "Throughput vs nodes, local vs centralized logging",
		XLabel: "nodes", Series: series,
		Notes: "Paper shape: centralized logging consistently lower; scaling eventually stops as the log node saturates (§3.2).",
	}
}

// Fig10 reproduces "Impact of slower growth in DB size": the same offered
// load against a database whose warehouse count grows only with the square
// root of throughput beyond the 90K tpm-C knee, increasing contention.
func Fig10(o Options) Result {
	nodes := o.nodeSweep()
	linear := &stats.Series{Name: "TPC-C growth"}
	slow := &stats.Series{Name: "sqrt growth"}
	for _, n := range nodes {
		// Affinity 1.0: the paper's knee sits at 90K tpm-C (72 scaled
		// warehouses), which only well-scaling configurations pass.
		p := o.baseParams(n)
		p.Affinity = 1.0
		r := o.capacity(p)
		linear.Add(float64(n), r.Metrics.TpmC)
		whLinear := r.Warehouses
		whSlow := core.SqrtGrowthWarehouses(whLinear)
		q := o.baseParams(n)
		q.Affinity = 1.0
		q.Warehouses = whSlow
		// Same offered load on the smaller database: scale terminals.
		q.TerminalsPerWarehouse = (10*whLinear + whSlow - 1) / whSlow
		m := core.MustRun(q)
		o.logf("fig10 nodes=%d: linear wh=%d tpmC=%.0f | sqrt wh=%d tpmC=%.0f",
			n, whLinear, r.Metrics.TpmC, whSlow, m.TpmC)
		slow.Add(float64(n), m.TpmC)
	}
	return Result{
		ID: "fig10", Title: "Throughput vs nodes under sub-linear DB growth",
		XLabel: "nodes", Series: []*stats.Series{linear, slow},
		Notes: "Paper shape: with sub-linear warehouse growth, data contention rises with cluster size and throughput stops growing linearly (§3.2).",
	}
}
