package experiments

import (
	"fmt"

	"dclue/internal/core"
	"dclue/internal/stats"
)

// ipcFigure implements Figs 2-3: control and data IPC messages per
// transaction as the cluster grows, at a fixed per-node load well inside
// capacity so the message counts are not polluted by retry storms. Every
// cluster size is an independent point; the sweep fans across the pool and
// merges in node order.
func ipcFigure(o Options, id string, affinity float64, whPerNode int) Result {
	sweep := o.nodeSweep()
	ms := make([]core.Metrics, len(sweep))
	o.forEach(len(sweep), func(i int) {
		n := sweep[i]
		p := o.baseParams(n)
		p.Affinity = affinity
		m := o.fixedLoad(p, whPerNode*n)
		o.logf("%s nodes=%d: ctl=%.1f data=%.2f", id, n, m.CtlMsgsPerTxn, m.DataMsgsPerTxn)
		ms[i] = m
	})
	ctl := &stats.Series{Name: "ctl msgs/txn"}
	data := &stats.Series{Name: "data msgs/txn"}
	for i, n := range sweep {
		ctl.Add(float64(n), ms[i].CtlMsgsPerTxn)
		data.Add(float64(n), ms[i].DataMsgsPerTxn)
	}
	return Result{
		ID:     id,
		Title:  fmt.Sprintf("IPC messages per transaction, affinity %.1f", affinity),
		XLabel: "nodes",
		Series: []*stats.Series{ctl, data},
		Notes:  "Paper shape: sharp rise then quick saturation with cluster size (§3.2).",
	}
}

// Fig2 reproduces "IPC messages per trans for 0.8 affinity".
func Fig2(o Options) Result { return ipcFigure(o, "fig02", 0.8, 8) }

// Fig3 reproduces "IPC messages per trans for 0 affinity".
func Fig3(o Options) Result { return ipcFigure(o, "fig03", 0.0, 5) }

// lockFigure implements Figs 4-5 over two affinities.
func lockFigure(o Options, id, title string, pick func(core.Metrics) float64, note string) Result {
	affs := []float64{0.8, 0.5}
	sweep := o.nodeSweep()
	ms := make([]core.Metrics, len(affs)*len(sweep))
	o.grid(len(affs), len(sweep), func(a, i int) {
		aff := affs[a]
		whPerNode := 8
		if aff < 0.7 {
			whPerNode = 5
		}
		n := sweep[i]
		p := o.baseParams(n)
		p.Affinity = aff
		m := o.fixedLoad(p, whPerNode*n)
		o.logf("%s nodes=%d aff=%.1f: %v", id, n, aff, pick(m))
		ms[a*len(sweep)+i] = m
	})
	var series []*stats.Series
	for a, aff := range affs {
		s := &stats.Series{Name: fmt.Sprintf("aff=%.1f", aff)}
		for i, n := range sweep {
			s.Add(float64(n), pick(ms[a*len(sweep)+i]))
		}
		series = append(series, s)
	}
	return Result{ID: id, Title: title, XLabel: "nodes", Series: series, Notes: note}
}

// Fig4 reproduces "Lock waits/trans vs #nodes and affinities".
func Fig4(o Options) Result {
	return lockFigure(o, "fig04", "Lock waits per transaction",
		func(m core.Metrics) float64 { return m.LockWaitsPerTxn },
		"Paper shape: steady increase with cluster size, high variability (§3.2).")
}

// Fig5 reproduces "Lock wait time vs #nodes and affinities".
func Fig5(o Options) Result {
	return lockFigure(o, "fig05", "Mean lock wait time (scaled ms)",
		func(m core.Metrics) float64 { return m.LockWaitMs },
		"Paper shape: average wait time increases steadily with cluster size (§3.2).")
}

// Fig6 reproduces "Scaling vs nodes and affinity": maximum sustainable
// throughput (TPC-C self-sized) against cluster size for several
// affinities. Affinity 1.0 is the perfect-scaling reference. Every
// (affinity, nodes) capacity search is independent, so the whole grid fans
// across the pool at once.
func Fig6(o Options) Result {
	affs := []float64{1.0, 0.8, 0.5, 0.2}
	nodes := append([]int{1}, o.nodeSweep()...)
	if o.Quick {
		affs = []float64{1.0, 0.8}
		nodes = []int{1, 2, 4}
	}
	caps := make([]core.CapacityResult, len(affs)*len(nodes))
	o.grid(len(affs), len(nodes), func(a, i int) {
		p := o.baseParams(nodes[i])
		p.Affinity = affs[a]
		r := o.capacity(p)
		o.logf("fig06 nodes=%d aff=%.1f: tpmC=%.0f (wh=%d feasible=%v)",
			nodes[i], affs[a], r.Metrics.TpmC, r.Warehouses, r.Feasible)
		caps[a*len(nodes)+i] = r
	})
	var series []*stats.Series
	for a, aff := range affs {
		s := &stats.Series{Name: fmt.Sprintf("aff=%.1f", aff)}
		for i, n := range nodes {
			s.Add(float64(n), caps[a*len(nodes)+i].Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "fig06", Title: "Throughput scaling vs cluster size (scaled tpm-C)",
		XLabel: "nodes", Series: series,
		Notes: "Paper shape: near-linear 2-10 nodes; slope falls with affinity; knee at the 12-node 2-LATA crossover; aff<=0.5 stops scaling beyond 12 (§3.2).",
	}
}

// Fig7 reproduces "Scaling vs affinity and nodes".
func Fig7(o Options) Result {
	affs := []float64{0, 0.2, 0.5, 0.8, 1.0}
	nodes := []int{4, 8, 16}
	if o.Quick {
		affs = []float64{0.5, 0.8, 1.0}
		nodes = []int{4}
	}
	caps := make([]core.CapacityResult, len(nodes)*len(affs))
	o.grid(len(nodes), len(affs), func(i, a int) {
		p := o.baseParams(nodes[i])
		p.Affinity = affs[a]
		r := o.capacity(p)
		o.logf("fig07 nodes=%d aff=%.1f: tpmC=%.0f", nodes[i], affs[a], r.Metrics.TpmC)
		caps[i*len(affs)+a] = r
	})
	var series []*stats.Series
	for i, n := range nodes {
		s := &stats.Series{Name: fmt.Sprintf("%d nodes", n)}
		for a, aff := range affs {
			s.Add(aff, caps[i*len(affs)+a].Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "fig07", Title: "Throughput vs affinity (scaled tpm-C)",
		XLabel: "affinity", Series: series,
		Notes: "Paper shape: scaling drops rapidly with affinity; sensitivity is highest near affinity 1 (§3.2).",
	}
}

// Fig8 reproduces "Impact of router forwarding rate on scalability": a
// single-LATA cluster with the inner router throttled from 10000 to 4000
// packets/second saturates beyond ~8 nodes.
func Fig8(o Options) Result {
	nodes := []int{2, 4, 6, 8, 10, 12}
	if o.Quick {
		nodes = []int{2, 4, 8}
	}
	// The paper reduces the rate from 10000 to 4000 pkt/s, placing the
	// saturation knee near 8 servers of *its* calibration (~21 control
	// messages per transaction at affinity 0.8). This model produces fewer
	// messages per transaction, so the throttled rate is rescaled to put
	// the router at the same relative position: saturating around the
	// 8-node traffic level.
	rates := []float64{10000, 1600}
	caps := make([]core.CapacityResult, len(rates)*len(nodes))
	o.grid(len(rates), len(nodes), func(r, i int) {
		p := o.baseParams(nodes[i])
		p.NodesPerLata = 12 // single LATA
		p.RouterFwdRate = rates[r] * 100 / p.Scale
		c := o.capacity(p)
		o.logf("fig08 nodes=%d rate=%.0f: tpmC=%.0f", nodes[i], rates[r], c.Metrics.TpmC)
		caps[r*len(nodes)+i] = c
	})
	var series []*stats.Series
	for r, rate := range rates {
		s := &stats.Series{Name: fmt.Sprintf("%.0f pkt/s", rate)}
		for i, n := range nodes {
			s.Add(float64(n), caps[r*len(nodes)+i].Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "fig08", Title: "Throughput vs nodes under reduced router forwarding rate",
		XLabel: "nodes", Series: series,
		Notes: "Paper shape: with the throttled forwarding rate the inner router saturates beyond ~8 servers and scaling stops (§3.2).",
	}
}

// Fig9 reproduces "Impact of single node logging on scalability".
func Fig9(o Options) Result {
	nodes := o.nodeSweep()
	modes := []bool{false, true}
	caps := make([]core.CapacityResult, len(modes)*len(nodes))
	o.grid(len(modes), len(nodes), func(c, i int) {
		p := o.baseParams(nodes[i])
		p.CentralLogging = modes[c]
		r := o.capacity(p)
		o.logf("fig09 nodes=%d central=%v: tpmC=%.0f", nodes[i], modes[c], r.Metrics.TpmC)
		caps[c*len(nodes)+i] = r
	})
	var series []*stats.Series
	for c, central := range modes {
		name := "local logging"
		if central {
			name = "central logging"
		}
		s := &stats.Series{Name: name}
		for i, n := range nodes {
			s.Add(float64(n), caps[c*len(nodes)+i].Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "fig09", Title: "Throughput vs nodes, local vs centralized logging",
		XLabel: "nodes", Series: series,
		Notes: "Paper shape: centralized logging consistently lower; scaling eventually stops as the log node saturates (§3.2).",
	}
}

// Fig10 reproduces "Impact of slower growth in DB size": the same offered
// load against a database whose warehouse count grows only with the square
// root of throughput beyond the 90K tpm-C knee, increasing contention. Each
// cluster size is one job (its sqrt-growth run depends on its own capacity
// search, so the pair stays sequential inside the job).
func Fig10(o Options) Result {
	nodes := o.nodeSweep()
	type pair struct {
		linear core.CapacityResult
		slow   core.Metrics
	}
	pairs := make([]pair, len(nodes))
	o.forEach(len(nodes), func(i int) {
		n := nodes[i]
		// Affinity 1.0: the paper's knee sits at 90K tpm-C (72 scaled
		// warehouses), which only well-scaling configurations pass.
		p := o.baseParams(n)
		p.Affinity = 1.0
		r := o.capacity(p)
		whLinear := r.Warehouses
		whSlow := core.SqrtGrowthWarehouses(whLinear)
		if whSlow < 1 {
			whSlow = 1 // a fully infeasible search reports zero warehouses
		}
		q := o.baseParams(n)
		q.Affinity = 1.0
		q.Warehouses = whSlow
		// Same offered load on the smaller database: scale terminals.
		q.TerminalsPerWarehouse = (10*whLinear + whSlow - 1) / whSlow
		m := o.mustRun(q)
		o.logf("fig10 nodes=%d: linear wh=%d tpmC=%.0f | sqrt wh=%d tpmC=%.0f",
			n, whLinear, r.Metrics.TpmC, whSlow, m.TpmC)
		pairs[i] = pair{r, m}
	})
	linear := &stats.Series{Name: "TPC-C growth"}
	slow := &stats.Series{Name: "sqrt growth"}
	for i, n := range nodes {
		linear.Add(float64(n), pairs[i].linear.Metrics.TpmC)
		slow.Add(float64(n), pairs[i].slow.TpmC)
	}
	return Result{
		ID: "fig10", Title: "Throughput vs nodes under sub-linear DB growth",
		XLabel: "nodes", Series: []*stats.Series{linear, slow},
		Notes: "Paper shape: with sub-linear warehouse growth, data contention rises with cluster size and throughput stops growing linearly (§3.2).",
	}
}
