package experiments

import (
	"strings"
	"sync"
	"testing"

	"dclue/internal/runner"
)

// everyFigure is the complete experiment registry: paper figures, fault
// experiments and ablations.
func everyFigure() []Figure {
	figs := All()
	figs = append(figs, FaultFigures()...)
	figs = append(figs, Ablations()...)
	figs = append(figs, TraceFigures()...)
	return figs
}

// TestParallelDeterminismEveryFigure is the sweep engine's core contract:
// for every registered experiment, a parallel run renders a table (and
// therefore a fingerprint) byte-identical to the sequential run. Runs use
// the tiny test sizing so the whole registry stays affordable; the golden
// tests cover real Quick-mode output.
func TestParallelDeterminismEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps every registered experiment twice")
	}
	for _, f := range everyFigure() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			seq := f.Run(Options{Quick: true, Seed: 1, tinyRuns: true})
			par := f.Run(Options{Quick: true, Seed: 1, tinyRuns: true, Pool: runner.New(4)})
			if seq.Table() != par.Table() {
				t.Errorf("parallel table diverges from sequential.\n-- sequential --\n%s-- parallel --\n%s",
					seq.Table(), par.Table())
			}
			if seq.Fingerprint() != par.Fingerprint() {
				t.Errorf("fingerprint mismatch: seq %x, par %x", seq.Fingerprint(), par.Fingerprint())
			}
		})
	}
}

// lineRecorder records every Write it receives, so tests can assert that
// concurrent progress logging reaches the sink in whole lines.
type lineRecorder struct {
	mu     sync.Mutex
	writes []string
}

func (r *lineRecorder) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.writes = append(r.writes, string(p))
	return len(p), nil
}

// TestParallelLogWholeLines runs a parallel figure against a recording sink
// and asserts no progress line was ever split or merged mid-line: every
// Write is exactly one newline-terminated line.
func TestParallelLogWholeLines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rec := &lineRecorder{}
	o := Options{Quick: true, Seed: 1, tinyRuns: true, Pool: runner.New(4), Log: rec}
	Fig2(o)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.writes) == 0 {
		t.Fatal("no progress lines recorded")
	}
	for _, w := range rec.writes {
		if !strings.HasSuffix(w, "\n") || strings.Count(w, "\n") != 1 {
			t.Errorf("interleaved or partial log write: %q", w)
		}
		if !strings.HasPrefix(w, "fig02 ") {
			t.Errorf("unexpected log line: %q", w)
		}
	}
}
