package experiments

import (
	"fmt"
	"math"

	"dclue/internal/core"
	"dclue/internal/stats"
	"dclue/internal/trace"
)

// Trace experiments: the latency-decomposition table the span observability
// layer exists for. The paper reports only mean response times (§3); this
// extension splits them into where the time actually goes — CPU, lock waits,
// cache-fusion messaging, storage, fabric — across cluster sizes and the
// Fig 11 offload modes, from the same runs the throughput numbers come from.
func TraceFigures() []Figure {
	return []Figure{
		{"lat-decomp", "Transaction latency decomposition by phase (nodes x offload)", LatencyDecomposition},
	}
}

// LookupTrace finds a trace experiment by id.
func LookupTrace(id string) (Figure, bool) {
	for _, f := range TraceFigures() {
		if f.ID == id || "lat-"+id == f.ID {
			return f, true
		}
	}
	return Figure{}, false
}

// LatencyDecomposition traces every transaction of fixed-load runs across
// cluster sizes and offload modes and tabulates the per-phase mean self
// times. The phase columns of each case sum to the resp column exactly (the
// span accounting identity); resp itself matches the untraced mean response
// time because stride-1 sampling covers the same population the response
// tally does.
func LatencyDecomposition(o Options) Result {
	type tcase struct {
		nodes int
		sw    bool // software TCP + iSCSI (Fig 11's both-offloads-off point)
	}
	sizes := []int{2, 4, 8}
	if o.Quick {
		sizes = []int{2, 4}
	}
	if o.tinyRuns {
		sizes = []int{2}
	}
	var cases []tcase
	for _, n := range sizes {
		cases = append(cases, tcase{n, false}, tcase{n, true})
	}

	col := o.Trace
	if col == nil {
		col = trace.NewCollector(1)
	}

	ms := make([]core.Metrics, len(cases))
	names := make([]string, len(cases))
	o.forEach(len(cases), func(i int) {
		cse := cases[i]
		q := o.baseParams(cse.nodes)
		q.Affinity = 0.8
		q.SWTCP, q.SWiSCSI = cse.sw, cse.sw
		off := "hw"
		if cse.sw {
			off = "sw"
		}
		names[i] = fmt.Sprintf("n%d-%s", cse.nodes, off)
		q.Trace = col
		q.TraceLabel = names[i]
		o.logf("lat-decomp: %s", names[i])
		ms[i] = o.fixedLoad(q, 6*cse.nodes)
	})

	resp := &stats.Series{Name: "resp ms"}
	cpu := &stats.Series{Name: "cpu ms"}
	lock := &stats.Series{Name: "lock ms"}
	gcs := &stats.Series{Name: "gcs ms"}
	disk := &stats.Series{Name: "disk ms"}
	fabric := &stats.Series{Name: "fabric ms"}
	notes := "Span-tracing extension (stride-1 sampling). Cases: "
	maxDev := 0.0
	for i := range cases {
		b := ms[i].Breakdown
		x := float64(i)
		resp.Add(x, b.TotalMs)
		cpu.Add(x, b.CPUMs)
		lock.Add(x, b.LockMs)
		gcs.Add(x, b.GCSMs)
		disk.Add(x, b.DiskMs)
		fabric.Add(x, b.FabricMs+b.OtherMs)
		notes += fmt.Sprintf("%d=%s ", i, names[i])
		if ms[i].RespTimeMs > 0 {
			dev := math.Abs(b.Sum()-ms[i].RespTimeMs) / ms[i].RespTimeMs
			if dev > maxDev {
				maxDev = dev
			}
		}
	}
	notes += fmt.Sprintf("| max |phase-sum - resp|/resp = %.4f", maxDev)
	return Result{
		ID: "lat-decomp", Title: "Latency decomposition by phase (affinity 0.8, 6 wh/node)",
		XLabel: "case",
		Series: []*stats.Series{resp, cpu, lock, gcs, disk, fabric},
		Notes:  notes,
	}
}
