package experiments

import (
	"fmt"

	"dclue/internal/core"
	"dclue/internal/sim"
	"dclue/internal/stats"
)

// Failover experiments: whole-node crash and re-admission under the
// recovery subsystem — membership detection over the fabric, GCS fencing
// and remastering, redo-log replay through the buddy's dual-ported
// enclosure, and the availability window the client population observes.

// failoverSpec schedules a crash of dp1 a quarter into the measurement
// window and (when restart is true) a restart at just past the halfway
// point, leaving room for re-admission and the recovered steady state.
func failoverSpec(p core.Params, restart bool) string {
	w := p.Warmup.Seconds()
	crash := w + (p.Measure / 4).Seconds()
	spec := fmt.Sprintf("crash:dp1@%g+0", crash)
	if restart {
		spec += fmt.Sprintf(";restart:dp1@%g+0", w+(p.Measure*11/20).Seconds())
	}
	return spec
}

// recoveryNotes renders the recovery metrics one line of Notes; the CI
// chaos-smoke job greps the "recovery=" field out of the golden table.
func recoveryNotes(m core.Metrics) string {
	return fmt.Sprintf("crashes=%d restarts=%d recovered=%d readmitted=%d detect=%.1fms recovery=%.1fms unavail=%.1fms readmit=%.1fms replay=%dB/%dblk",
		m.Crashes, m.Restarts, m.NodesRecovered, m.NodesReadmitted,
		m.DetectMs, m.RecoveryTimeMs, m.UnavailabilityMs, m.ReadmitMs,
		m.ReplayBytes, m.ReplayBlocks)
}

// FaultFailover runs the headline crash-restart scenario and reports the
// throughput timeline through the outage: the dip at the crash, the partial
// service under surrogate mastering and failover I/O, and the return to
// steady state after re-admission.
func FaultFailover(o Options) Result {
	p := o.faultParams()
	p.TimelineBucket = 5 * sim.Second
	p.FaultSpec = failoverSpec(p, true)

	o.logf("flt-failover: %s", p.FaultSpec)
	m := o.mustRun(p)
	rate := &stats.Series{Name: "txn/s"}
	for _, pt := range m.Timeline {
		rate.Add(pt.T.Seconds(), pt.TxnRate)
	}
	return Result{
		ID: "flt-failover", Title: "Throughput through a node crash, recovery and re-admission (dp1)",
		XLabel: "time (s)", Series: []*stats.Series{rate},
		Notes: fmt.Sprintf("faults: %s | %s | gateRejects=%d clientRetries=%d warmup=%d",
			p.FaultSpec, recoveryNotes(m), m.FailoverRejects, m.ClientRetries, m.WarmupFetches),
	}
}

// FaultFailoverSize sweeps cluster size: more survivors mean more
// remastering reports and more fabric traffic during recovery, but also
// more spare capacity to absorb the dead partition's load.
func FaultFailoverSize(o Options) Result {
	sizes := []int{2, 4, 6}
	if o.Quick {
		sizes = []int{2, 4}
	}
	ms := make([]core.Metrics, len(sizes))
	o.forEach(len(sizes), func(i int) {
		p := o.faultParams()
		p.Nodes = sizes[i]
		p.NodesPerLata = (sizes[i] + 1) / 2
		p.Warehouses = 6 * sizes[i]
		p.FaultSpec = failoverSpec(p, true)
		o.logf("flt-failover-size: n=%d", sizes[i])
		ms[i] = o.mustRun(p)
	})
	unavail := &stats.Series{Name: "unavail ms"}
	rec := &stats.Series{Name: "recovery ms"}
	tpm := &stats.Series{Name: "tpmC"}
	notes := "Recovery vs cluster size. "
	for i, n := range sizes {
		unavail.Add(float64(n), ms[i].UnavailabilityMs)
		rec.Add(float64(n), ms[i].RecoveryTimeMs)
		tpm.Add(float64(n), ms[i].TpmC)
		notes += fmt.Sprintf("n%d: %s | ", n, recoveryNotes(ms[i]))
	}
	return Result{
		ID: "flt-failover-size", Title: "Recovery and unavailability window vs cluster size (crash+restart of dp1)",
		XLabel: "nodes", Series: []*stats.Series{unavail, rec, tpm}, Notes: notes,
	}
}

// FaultFailoverCkpt sweeps the checkpoint interval: checkpointing less
// often leaves more redo log and dirty blocks for replay, so the recovery
// window grows — the availability cost of cheaper steady-state I/O.
func FaultFailoverCkpt(o Options) Result {
	intervals := []float64{2, 10, 50}
	if o.Quick {
		intervals = []float64{2, 50}
	}
	ms := make([]core.Metrics, len(intervals))
	o.forEach(len(intervals), func(i int) {
		p := o.faultParams()
		p.CheckpointInterval = sim.Time(intervals[i] * float64(sim.Second))
		p.FaultSpec = failoverSpec(p, true)
		o.logf("flt-failover-ckpt: interval=%gs", intervals[i])
		ms[i] = o.mustRun(p)
	})
	rec := &stats.Series{Name: "recovery ms"}
	replay := &stats.Series{Name: "replay KB"}
	notes := "Recovery vs checkpoint interval. "
	for i, iv := range intervals {
		rec.Add(iv, ms[i].RecoveryTimeMs)
		replay.Add(iv, float64(ms[i].ReplayBytes)/1024)
		notes += fmt.Sprintf("%gs: %s | ", iv, recoveryNotes(ms[i]))
	}
	return Result{
		ID: "flt-failover-ckpt", Title: "Recovery window vs checkpoint interval (dirty-log size at the crash)",
		XLabel: "checkpoint interval (s)", Series: []*stats.Series{rec, replay}, Notes: notes,
	}
}
