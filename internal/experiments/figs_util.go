package experiments

import (
	"fmt"

	"dclue/internal/core"
	"dclue/internal/stats"
	"dclue/internal/telemetry"
)

// Telemetry experiments: the per-class fabric-utilization decomposition the
// unified telemetry registry exists for. The paper's central argument (§1,
// §3) is that IPC, iSCSI storage traffic and client traffic all share one
// Ethernet fabric and interfere; this extension tabulates exactly how the
// shared server links divide between those classes as the cluster grows,
// from the same runs the throughput numbers come from.
func TelemetryFigures() []Figure {
	return []Figure{
		{"util-decomp", "Per-class server-link utilization decomposition vs nodes", UtilDecomposition},
	}
}

// LookupTelemetry finds a telemetry experiment by id.
func LookupTelemetry(id string) (Figure, bool) {
	for _, f := range TelemetryFigures() {
		if f.ID == id || "util-"+id == f.ID {
			return f, true
		}
	}
	return Figure{}, false
}

// UtilDecomposition runs fixed-load clusters across sizes with the telemetry
// registry attached and tabulates how the server links' busy time divides
// between traffic classes (exact attribution: the class busy times of every
// link sum to the link's own busy counter — mismatches are reported in the
// notes and pinned to zero by test). DB size grows with the cluster per the
// benchmark's sizing rule, so buffer misses — and with them the iSCSI share
// of the shared fabric — grow with node count: the paper's saturation story
// as a table.
func UtilDecomposition(o Options) Result {
	sizes := []int{2, 4, 8}
	if o.Quick {
		sizes = []int{2, 4}
	}
	if o.tinyRuns {
		sizes = []int{2}
	}

	col := o.Telemetry
	if col == nil {
		col = telemetry.NewCollector(0)
	}

	ms := make([]core.Metrics, len(sizes))
	o.forEach(len(sizes), func(i int) {
		n := sizes[i]
		q := o.baseParams(n)
		q.Affinity = 0.8
		q.Telemetry = col
		q.TelemetryLabel = fmt.Sprintf("util-n%d", n)
		o.logf("util-decomp: n%d", n)
		ms[i] = o.fixedLoad(q, 6*n)
	})

	util := &stats.Series{Name: "link util %"}
	ipc := &stats.Series{Name: "ipc %"}
	iscsi := &stats.Series{Name: "iscsi %"}
	client := &stats.Series{Name: "client %"}
	hb := &stats.Series{Name: "hb %"}
	other := &stats.Series{Name: "other %"}
	mismatch := 0
	for i, n := range sizes {
		u := ms[i].UtilDecomp
		x := float64(n)
		total := u.NodeLinksBusySec
		share := func(v float64) float64 {
			if total <= 0 {
				return 0
			}
			return 100 * v / total
		}
		// 2n server links (one up, one down per node), each busy for a
		// fraction of the whole run.
		util.Add(x, 100*total/(float64(2*n)*u.ElapsedSec))
		ipc.Add(x, share(u.NodeLinks.IPC))
		iscsi.Add(x, share(u.NodeLinks.ISCSI))
		client.Add(x, share(u.NodeLinks.Client))
		hb.Add(x, share(u.NodeLinks.Heartbeat))
		other.Add(x, share(u.NodeLinks.FTP+u.NodeLinks.Other))
		mismatch += u.AttribMismatch
	}
	notes := fmt.Sprintf("Telemetry extension: class shares of server-link busy time (affinity 0.8, 6 wh/node). attribution mismatches=%d", mismatch)
	return Result{
		ID: "util-decomp", Title: "Server-link utilization by traffic class",
		XLabel: "nodes",
		Series: []*stats.Series{util, ipc, iscsi, client, hb, other},
		Notes:  notes,
	}
}
