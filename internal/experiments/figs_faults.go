package experiments

import (
	"fmt"

	"dclue/internal/core"
	"dclue/internal/sim"
	"dclue/internal/stats"
)

// Fault experiments: graceful degradation under injected network, node and
// storage faults. These extend beyond the paper's scope — §2.3 assumes a
// fault-free fabric — and quantify how the cache-fusion protocol behaves
// when the unified Ethernet fabric misbehaves: lost XFER and status PDUs
// become bounded timeouts, retried fetches and (at worst) aborted-and-
// retried transactions, never hung workers.
func FaultFigures() []Figure {
	return []Figure{
		{"flt-loss", "Degradation vs burst-loss intensity on the inter-LATA path", FaultLossSweep},
		{"flt-recovery", "Throughput timeline through a link-down + burst-loss fault", FaultRecovery},
		{"flt-layers", "Degradation by faulted layer: network vs node vs storage", FaultLayers},
		{"flt-failover", "Throughput through a node crash, recovery and re-admission", FaultFailover},
		{"flt-failover-size", "Recovery and unavailability window vs cluster size", FaultFailoverSize},
		{"flt-failover-ckpt", "Recovery window vs checkpoint interval", FaultFailoverCkpt},
	}
}

// LookupFault finds a fault experiment by id.
func LookupFault(id string) (Figure, bool) {
	for _, f := range FaultFigures() {
		if f.ID == id || "flt-"+id == f.ID {
			return f, true
		}
	}
	return Figure{}, false
}

// faultParams is the common 4-node configuration the fault experiments
// perturb: two LATAs so the inter-LATA path matters, moderate affinity so
// cache-fusion traffic crosses it.
func (o Options) faultParams() core.Params {
	p := o.baseParams(4)
	p.NodesPerLata = 2
	p.Affinity = 0.8
	p.Warehouses = 6 * 4
	p.Warmup = 60 * sim.Second
	p.Measure = 150 * sim.Second
	if o.Quick {
		p.Warmup = 40 * sim.Second
		p.Measure = 100 * sim.Second
	}
	if o.tinyRuns {
		p.Warmup = 20 * sim.Second
		p.Measure = 40 * sim.Second
	}
	return p
}

// FaultLossSweep measures throughput, transaction retries and protocol
// timeouts as burst loss of rising intensity hits LATA 0's uplink pair for
// the middle half of the measurement window.
func FaultLossSweep(o Options) Result {
	p := o.faultParams()
	start := (p.Warmup + p.Measure/4).Seconds()
	dur := (p.Measure / 2).Seconds()

	intensities := []float64{0, 0.05, 0.1, 0.2, 0.3}
	if o.Quick {
		intensities = []float64{0, 0.1, 0.3}
	}

	ms := make([]core.Metrics, len(intensities))
	o.forEach(len(intensities), func(i int) {
		loss := intensities[i]
		q := p
		if loss > 0 {
			q.FaultSpec = fmt.Sprintf("loss:interlata:0@%g+%g=%g", start, dur, loss)
		}
		o.logf("flt-loss: loss=%.2f", loss)
		ms[i] = o.mustRun(q)
	})
	tpm := &stats.Series{Name: "tpmC"}
	retries := &stats.Series{Name: "retries/min"}
	timeouts := &stats.Series{Name: "fetchTO/min"}
	min := p.Measure.Seconds() / 60
	for i, loss := range intensities {
		tpm.Add(loss, ms[i].TpmC)
		retries.Add(loss, float64(ms[i].Retries)/min)
		timeouts.Add(loss, float64(ms[i].FetchTimeouts)/min)
	}
	return Result{
		ID: "flt-loss", Title: "Degradation vs burst-loss intensity (inter-LATA, half the window)",
		XLabel: "loss probability", Series: []*stats.Series{tpm, retries, timeouts},
		Notes: "Fault-injection extension (beyond the paper's fault-free §2.3 scope).",
	}
}

// FaultRecovery runs one faulted scenario — node 1's access link goes down,
// then the inter-LATA path takes burst loss — and reports the committed-
// transaction timeline: the dips must align with the fault windows and the
// rate must recover after each one.
func FaultRecovery(o Options) Result {
	p := o.faultParams()
	p.TimelineBucket = 5 * sim.Second
	w := p.Warmup.Seconds()
	p.FaultSpec = fmt.Sprintf("linkdown:node:1@%g+15;loss:interlata:0@%g+20=0.3", w+30, w+80)

	o.logf("flt-recovery: %s", p.FaultSpec)
	m := o.mustRun(p)
	rate := &stats.Series{Name: "txn/s"}
	for _, pt := range m.Timeline {
		rate.Add(pt.T.Seconds(), pt.TxnRate)
	}
	return Result{
		ID: "flt-recovery", Title: "Throughput through a link-down (node 1) then burst-loss (inter-LATA) fault",
		XLabel: "time (s)", Series: []*stats.Series{rate},
		Notes: fmt.Sprintf("faults: %s | drops=%d corrupt=%d fetchTO=%d fetchFail=%d retries=%d failures=%d",
			p.FaultSpec, m.FaultDrops, m.CorruptDrops, m.FetchTimeouts, m.FetchFails, m.Retries, m.Failures),
	}
}

// FaultLayers compares equal-length fault windows injected at each layer —
// network (burst loss), node (CPU slowdown / freeze) and storage (latency
// spike, I/O errors) — against the healthy baseline.
func FaultLayers(o Options) Result {
	p := o.faultParams()
	start := (p.Warmup + p.Measure/4).Seconds()
	dur := (p.Measure / 2).Seconds()

	cases := []struct {
		name string
		spec string
	}{
		{"healthy", ""},
		{"net-loss", fmt.Sprintf("loss:interlata:0@%g+%g=0.2", start, dur)},
		{"node-slow", fmt.Sprintf("cpuslow:node:1@%g+%g=4", start, dur)},
		{"node-freeze", fmt.Sprintf("freeze:node:1@%g+10", start)},
		{"disk-slow", fmt.Sprintf("diskslow:node:1@%g+%g=8", start, dur)},
		{"disk-errors", fmt.Sprintf("diskerr:node:1@%g+%g=0.2", start, dur)},
	}
	ms := make([]core.Metrics, len(cases))
	o.forEach(len(cases), func(i int) {
		q := p
		q.FaultSpec = cases[i].spec
		o.logf("flt-layers: %s", cases[i].name)
		ms[i] = o.mustRun(q)
	})
	tpm := &stats.Series{Name: "tpmC"}
	fail := &stats.Series{Name: "failures"}
	notes := "Fault-injection extension. Cases: "
	for i, cse := range cases {
		tpm.Add(float64(i), ms[i].TpmC)
		fail.Add(float64(i), float64(ms[i].Failures))
		notes += fmt.Sprintf("%d=%s ", i, cse.name)
	}
	return Result{
		ID: "flt-layers", Title: "Degradation by faulted layer (equal windows on node 1 / inter-LATA 0)",
		XLabel: "case", Series: []*stats.Series{tpm, fail}, Notes: notes,
	}
}
