package experiments

import (
	"testing"

	"dclue/internal/runner"
	"dclue/internal/stats"
)

// Shape invariants: the paper's §3 qualitative claims about Figs 2-3 must
// survive any refactor, across seeds — even when the golden fixtures are
// legitimately regenerated. Fig 2/3 plot IPC messages per transaction vs
// cluster size; the claims under test are (a) control messages grow
// monotonically with cluster size, (b) the growth saturates (later
// increments no larger than the first), and (c) removing affinity (Fig 3)
// multiplies the message level by roughly 5x.
func TestIPCShapeInvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	for _, seed := range []uint64{1, 2, 3} {
		o := Options{Quick: true, Seed: seed, Pool: runner.New(4)}
		results := RunAll([]Figure{{ID: "fig02", Run: Fig2}, {ID: "fig03", Run: Fig3}}, o)
		ctl := map[string][]stats.Point{
			"fig02": results[0].Series[0].Points,
			"fig03": results[1].Series[0].Points,
		}
		for name, pts := range ctl {
			if len(pts) < 3 {
				t.Fatalf("seed %d %s: sweep too small: %d points", seed, name, len(pts))
			}
			// (a) monotone non-decreasing in cluster size.
			for i := 1; i < len(pts); i++ {
				if pts[i].Y < pts[i-1].Y {
					t.Errorf("seed %d %s: ctl msgs/txn not monotone: %.2f@%g > %.2f@%g",
						seed, name, pts[i-1].Y, pts[i-1].X, pts[i].Y, pts[i].X)
				}
			}
			// (b) saturating: the last increment must not exceed the first
			// (sharp rise, then flattening — §3.2).
			first := pts[1].Y - pts[0].Y
			last := pts[len(pts)-1].Y - pts[len(pts)-2].Y
			if last > first {
				t.Errorf("seed %d %s: not saturating: first increment %.2f, last %.2f",
					seed, name, first, last)
			}
		}
		// (c) zero affinity multiplies the control-message level ~5x (§3.2);
		// accept a generous band so the claim, not the noise, is enforced.
		c2, c3 := ctl["fig02"], ctl["fig03"]
		l2 := c2[len(c2)-1].Y
		l3 := c3[len(c3)-1].Y
		if l2 <= 0 {
			t.Fatalf("seed %d: fig02 level not positive: %v", seed, l2)
		}
		if ratio := l3 / l2; ratio < 3 || ratio > 8 {
			t.Errorf("seed %d: fig03/fig02 ctl-msg ratio %.2f outside [3, 8] (paper: ~5x)", seed, ratio)
		}
	}
}
