// Package experiments regenerates every table and figure of the paper's
// evaluation (§3): IPC message growth, lock behaviour, throughput scaling
// versus cluster size and affinity, router and logging bottlenecks,
// database-growth sensitivity, protocol offload, latency sensitivity, and
// QoS/cross-traffic interference. Each Fig* function runs the relevant
// parameter sweep on the core cluster model and returns named series plus a
// printable table, exactly one function per paper figure.
package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"dclue/internal/core"
	"dclue/internal/runner"
	"dclue/internal/sim"
	"dclue/internal/stats"
	"dclue/internal/telemetry"
	"dclue/internal/trace"
)

// Options control sweep sizes, run lengths and parallelism.
type Options struct {
	Seed uint64
	// Quick shrinks sweeps and run lengths so the full set finishes in
	// minutes (used by the benchmark harness); the default is the paper's
	// full sweep.
	Quick bool
	// Log, when non-nil, receives progress lines. Writes are whole lines
	// and serialized, so the sink stays readable under parallel sweeps;
	// line order follows completion order when a Pool is set.
	Log io.Writer
	// Pool, when non-nil, fans the independent simulation points of every
	// figure across its workers. Results are merged in point order, so the
	// rendered tables and fingerprints are identical to a sequential run;
	// nil (the default) runs fully sequentially.
	Pool *runner.Pool

	// Trace, when non-nil, is the span collector the trace-aware experiments
	// attach to their runs (the CLI passes one configured for export). When
	// nil, lat-decomp allocates a private histogram-only collector, so its
	// tables come out the same either way.
	Trace *trace.Collector

	// Telemetry, when non-nil, is the metrics registry collector every
	// figure's runs attach to (the CLI passes one configured for JSONL
	// export). When nil, util-decomp allocates a private collector, so its
	// tables come out the same either way. Telemetry never changes a table —
	// the non-perturbation guarantee the telemetry tests hold the layer to.
	Telemetry *telemetry.Collector

	// Exec, when non-nil, evaluates every simulation point of every figure
	// in place of in-process core.Run — the hook the experiment farm uses to
	// ship points to worker processes and serve repeats from its
	// content-addressed result cache. Exec is held to the runner.Exec
	// contract (a pure deterministic function of Params), so the rendered
	// tables are byte-identical whichever executor is installed; nil (the
	// default) runs every point in-process.
	Exec runner.Exec

	// tinyRuns (test hook) shrinks workload sizing and windows far below
	// Quick so unit tests can afford to sweep every registered figure.
	tinyRuns bool
}

// Result is one regenerated figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	Series []*stats.Series
	Notes  string
}

// Table renders the result as text.
func (r Result) Table() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	out += stats.Table(r.XLabel, r.Series...)
	if r.Notes != "" {
		out += r.Notes + "\n"
	}
	return out
}

// Chart renders the result as an ASCII chart plus the table.
func (r Result) Chart() string {
	out := stats.Chart(fmt.Sprintf("== %s: %s ==", r.ID, r.Title), r.XLabel, 56, 14, r.Series...)
	if r.Notes != "" {
		out += r.Notes + "\n"
	}
	return out
}

// Fingerprint hashes the rendered table (every series name and value) into
// one number. Parallel and sequential regenerations of the same figure must
// agree on it — the cross-check the sweep engine is held to.
func (r Result) Fingerprint() uint64 {
	h := fnv.New64a()
	io.WriteString(h, r.Table())
	return h.Sum64()
}

// Figure is a runnable experiment.
type Figure struct {
	ID    string
	Title string
	Run   func(Options) Result
}

// All returns every figure in paper order.
func All() []Figure {
	return []Figure{
		{"fig02", "IPC messages per transaction vs nodes (affinity 0.8)", Fig2},
		{"fig03", "IPC messages per transaction vs nodes (affinity 0)", Fig3},
		{"fig04", "Lock waits per transaction vs nodes and affinity", Fig4},
		{"fig05", "Lock wait time vs nodes and affinity", Fig5},
		{"fig06", "Throughput scaling vs nodes and affinity", Fig6},
		{"fig07", "Scaling vs affinity, nodes as parameter", Fig7},
		{"fig08", "Impact of router forwarding rate on scalability", Fig8},
		{"fig09", "Impact of single-node (centralized) logging", Fig9},
		{"fig10", "Impact of slower DB size growth", Fig10},
		{"fig11", "Impact of TCP and iSCSI offload", Fig11},
		{"fig12", "Latency impact, normal computation", Fig12},
		{"fig13", "Latency impact, low computation", Fig13},
		{"fig14", "Cross-traffic impact, normal computation", Fig14},
		{"fig15", "Cross-traffic impact, low computation", Fig15},
		{"fig16", "Cross-traffic impact vs affinity (low computation)", Fig16},
	}
}

// Lookup finds a figure by id ("fig06", "6", "06").
func Lookup(id string) (Figure, bool) {
	for _, f := range All() {
		if f.ID == id || f.ID == "fig0"+id || f.ID == "fig"+id {
			return f, true
		}
	}
	return Figure{}, false
}

// RunAll runs the given figures — fanning across figures and, within each,
// across sweep points on o.Pool — and returns results in input order.
func RunAll(figs []Figure, o Options) []Result {
	out := make([]Result, len(figs))
	o.Pool.Map(len(figs), func(i int) { out[i] = figs[i].Run(o) })
	return out
}

// ---- shared helpers ----

// logMu serializes progress lines from concurrent sweep workers: each line
// is formatted in full, then written with a single Write under the lock, so
// lines never interleave mid-line whatever the sink.
var logMu sync.Mutex

func (o Options) logf(format string, args ...any) {
	if o.Log == nil {
		return
	}
	line := fmt.Sprintf(format+"\n", args...)
	logMu.Lock()
	defer logMu.Unlock()
	io.WriteString(o.Log, line)
}

// forEach runs fn for every index in [0, n) on the option's pool (inline
// and in order when no pool is set). fn must confine its writes to
// index-owned slots; the caller merges after forEach returns.
func (o Options) forEach(n int, fn func(i int)) {
	o.Pool.Map(n, fn)
}

// grid runs fn for every (row, col) pair on the option's pool, flattening
// the pairs row-major so a two-level sweep parallelizes as one job set.
func (o Options) grid(rows, cols int, fn func(r, c int)) {
	o.forEach(rows*cols, func(i int) { fn(i/cols, i%cols) })
}

// baseParams returns the default cluster parameters adjusted for quick mode.
func (o Options) baseParams(nodes int) core.Params {
	p := core.DefaultParams(nodes)
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	if o.Quick {
		p.Warmup = 50 * sim.Second
		p.Measure = 100 * sim.Second
	}
	if o.tinyRuns {
		p.CustomersPerDist = 20
		p.Items = 100
		p.Warmup = 10 * sim.Second
		p.Measure = 20 * sim.Second
	}
	// Tracing and telemetry attach to every figure's runs (nil disables);
	// neither ever changes a table — the non-perturbation guarantee their
	// test suites hold both layers to.
	p.Trace = o.Trace
	p.Telemetry = o.Telemetry
	return p
}

// nodeSweep returns the cluster sizes for scaling figures. The paper goes
// to 24 nodes; the default sweep stops at 16 to keep the full single-core
// regeneration under an hour (the model is linear in nodes, and every
// trend is established well before 16).
func (o Options) nodeSweep() []int {
	if o.Quick {
		return []int{2, 4, 8}
	}
	return []int{2, 4, 8, 12, 16}
}

// quickAffs trims affinity sweeps in quick mode.
func (o Options) quickAffs(full []float64) []float64 {
	if !o.Quick {
		return full
	}
	if len(full) <= 2 {
		return full
	}
	return []float64{full[0], full[len(full)-2]}
}

// maxWhPerNode caps the capacity search.
func (o Options) maxWhPerNode() int {
	if o.tinyRuns {
		return 3
	}
	if o.Quick {
		return 12
	}
	return 48
}

// capacity runs the TPC-C self-sizing capacity search. The warehouse upper
// bound scales with affinity (low-affinity clusters cannot sustain large
// populations, and probing deep overload is the single most expensive thing
// a sweep can do), and larger clusters use a slightly shorter measurement
// window — they produce proportionally more transactions per simulated
// second, so the statistics stay sound. With a pool set, the bisection
// probes speculatively on free workers; the result is identical either way.
func (o Options) capacity(p core.Params) core.CapacityResult {
	max := o.maxWhPerNode()
	if !o.Quick && !o.tinyRuns {
		switch {
		case p.Affinity >= 0.95:
			max = 48
		case p.Affinity >= 0.7:
			max = 24
		case p.Affinity >= 0.4:
			max = 12
		default:
			max = 8
		}
	}
	if p.Nodes >= 12 {
		p.Warmup = 100 * sim.Second
		p.Measure = 150 * sim.Second
	}
	return runner.CapacityExec(o.Pool, o.Exec, p, max)
}

// run evaluates one simulation point through the installed executor
// (in-process core.Run by default). Every figure's points go through here or
// through o.capacity — the single-funnel property the farm relies on.
func (o Options) run(p core.Params) (core.Metrics, error) {
	if o.Exec != nil {
		return o.Exec(p)
	}
	return core.Run(p)
}

// mustRun is run for configurations the experiments know to be valid.
func (o Options) mustRun(p core.Params) core.Metrics {
	m, err := o.run(p)
	if err != nil {
		panic(err)
	}
	return m
}

// fixedLoad runs once at the given warehouse count.
func (o Options) fixedLoad(p core.Params, warehouses int) core.Metrics {
	p.Warehouses = warehouses
	return o.mustRun(p)
}

// sortedCopy returns xs ascending (defensive for table rendering).
func sortedCopy(xs []float64) []float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c
}
