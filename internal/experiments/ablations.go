package experiments

import (
	"fmt"

	"dclue/internal/core"
	"dclue/internal/stats"
)

// Ablations exercise the design choices DESIGN.md calls out and the parts
// of the paper's design space it names but leaves unexplored: the QoS
// remedy its conclusion asks for (WFQ), the shared-IO SAN architecture of
// §2.1 it set aside, the subpage-size tuning of §2.3, and the storage-path
// mechanisms (group commit, elevator) whose value the model quantifies.
func Ablations() []Figure {
	return []Figure{
		{"abl-qos", "QoS remedy: strict priority vs WFQ under cross traffic", AblationQoS},
		{"abl-san", "Storage architecture: distributed iSCSI vs shared SAN", AblationSAN},
		{"abl-subpage", "Lock granularity: tuned row-level vs coarse subpages", AblationSubpage},
		{"abl-groupcommit", "Log device: group commit vs serial writes", AblationGroupCommit},
		{"abl-elevator", "Disk scheduling: SCAN elevator vs FIFO", AblationElevator},
		{"abl-prewarm", "Warm vs cold buffer caches at start", AblationPrewarm},
	}
}

// LookupAblation finds an ablation by id.
func LookupAblation(id string) (Figure, bool) {
	for _, f := range Ablations() {
		if f.ID == id || "abl-"+id == f.ID {
			return f, true
		}
	}
	return Figure{}, false
}

// AblationQoS compares the paper's harmful arrangement (FTP at AF21 strict
// priority) against WFQ at the router ports, at rising cross-traffic load.
// The paper's conclusion asks exactly for this: a scheme that minimizes
// inter-application interference "yet provides a good performance for all".
func AblationQoS(o Options) Result {
	loads := []float64{0, 200e6, 400e6, 600e6}
	if o.Quick {
		loads = []float64{0, 400e6}
	}
	base := o.baseParams(8)
	base.NodesPerLata = 4
	base.Affinity = 0.8
	base.LowComputation = true
	cap0 := o.capacity(base)
	wh := cap0.Warehouses

	wfqs := []bool{false, true}
	ms := make([]core.Metrics, len(wfqs)*len(loads))
	o.grid(len(wfqs), len(loads), func(w, i int) {
		p := base
		p.CrossTrafficBps = loads[i]
		p.CrossTrafficPriority = true
		p.WFQRouters = wfqs[w]
		m := o.fixedLoad(p, wh)
		o.logf("abl-qos wfq=%v load=%.0fM: tpmC=%.0f ftp=%.1fM delay=%.2fms",
			wfqs[w], loads[i]/1e6, m.TpmC, m.FTPDeliveredMbps, m.MsgDelayMs)
		ms[w*len(loads)+i] = m
	})
	var series []*stats.Series
	for w, wfq := range wfqs {
		name := "priority routers"
		if wfq {
			name = "WFQ routers"
		}
		dbms := &stats.Series{Name: name + " (tpmC)"}
		ftp := &stats.Series{Name: name + " (FTP Mb/s)"}
		for i, load := range loads {
			dbms.Add(load/1e6, ms[w*len(loads)+i].TpmC)
			ftp.Add(load/1e6, ms[w*len(loads)+i].FTPDeliveredMbps)
		}
		series = append(series, dbms, ftp)
	}
	return Result{
		ID: "abl-qos", Title: "DBMS throughput and FTP goodput vs offered AF21 FTP load",
		XLabel: "FTP Mb/s", Series: series,
		Notes: "Expected: WFQ caps the damage priority scheduling does to DBMS control messages while still carrying FTP traffic.",
	}
}

// AblationSAN compares §2.1's two storage architectures: the distributed
// iSCSI model the paper studies against the Oracle-style shared SAN.
func AblationSAN(o Options) Result {
	nodes := 4
	sans := []bool{false, true}
	affs := []float64{1.0, 0.8}
	caps := make([]core.CapacityResult, len(sans)*len(affs))
	o.grid(len(sans), len(affs), func(s, a int) {
		p := o.baseParams(nodes)
		p.Affinity = affs[a]
		p.CentralSAN = sans[s]
		r := o.capacity(p)
		o.logf("abl-san san=%v aff=%.1f: tpmC=%.0f", sans[s], affs[a], r.Metrics.TpmC)
		caps[s*len(affs)+a] = r
	})
	var series []*stats.Series
	for si, san := range sans {
		name := "distributed iSCSI"
		if san {
			name = "central SAN"
		}
		s := &stats.Series{Name: name}
		for a, aff := range affs {
			s.Add(aff, caps[si*len(affs)+a].Metrics.TpmC)
		}
		series = append(series, s)
	}
	return Result{
		ID: "abl-san", Title: fmt.Sprintf("Storage architecture, %d nodes (scaled tpm-C)", nodes),
		XLabel: "affinity", Series: series,
		Notes: "The SAN removes iSCSI fabric traffic but adds SAN fabric latency to every physical I/O; with warm caches the two converge, which is why the paper's unified-fabric question centers on IPC, not storage.",
	}
}

// runPair evaluates two independent configurations as one two-job sweep.
func (o Options) runPair(a, b core.Params) (core.Metrics, core.Metrics) {
	ps := [2]core.Params{a, b}
	var ms [2]core.Metrics
	o.forEach(2, func(i int) { ms[i] = o.mustRun(ps[i]) })
	return ms[0], ms[1]
}

// AblationSubpage quantifies §2.3's subpage tuning: coarse (8 per block)
// subpages false-share the append-heavy tables.
func AblationSubpage(o Options) Result {
	p := o.baseParams(2)
	p.Warehouses = 8 * 2
	q := p
	q.CoarseSubpages = true
	tuned, coarse := o.runPair(p, q)
	o.logf("abl-subpage tuned: tpmC=%.0f waits/txn=%.2f | coarse: tpmC=%.0f waits/txn=%.2f",
		tuned.TpmC, tuned.LockWaitsPerTxn, coarse.TpmC, coarse.LockWaitsPerTxn)
	a := &stats.Series{Name: "tpmC"}
	b := &stats.Series{Name: "lock waits/txn"}
	a.Add(0, tuned.TpmC)
	a.Add(1, coarse.TpmC)
	b.Add(0, tuned.LockWaitsPerTxn)
	b.Add(1, coarse.LockWaitsPerTxn)
	return Result{
		ID: "abl-subpage", Title: "Row-level (x=0) vs coarse (x=1) subpage locking",
		XLabel: "coarse", Series: []*stats.Series{a, b},
		Notes: "Expected: coarse subpages multiply lock waits via false sharing on append-heavy tables (§2.3's tuning rationale).",
	}
}

// AblationGroupCommit quantifies the log device's group commit.
func AblationGroupCommit(o Options) Result {
	p := o.baseParams(2)
	p.Warehouses = 8 * 2
	q := p
	q.LogBatchLimit = 1
	grouped, serial := o.runPair(p, q)
	o.logf("abl-groupcommit batched: tpmC=%.0f resp=%.0fms | serial: tpmC=%.0f resp=%.0fms",
		grouped.TpmC, grouped.RespTimeMs, serial.TpmC, serial.RespTimeMs)
	a := &stats.Series{Name: "tpmC"}
	b := &stats.Series{Name: "resp ms"}
	a.Add(4, grouped.TpmC)
	a.Add(1, serial.TpmC)
	b.Add(4, grouped.RespTimeMs)
	b.Add(1, serial.RespTimeMs)
	return Result{
		ID: "abl-groupcommit", Title: "Group commit depth 4 vs serial log writes (x=batch limit)",
		XLabel: "batch", Series: []*stats.Series{a, b},
		Notes: "Expected: serial log writes inflate commit latency; throughput holds until the log device saturates.",
	}
}

// AblationElevator quantifies the per-table elevator of §2.3 against FIFO
// disk scheduling, under a deliberately cache-starved configuration so the
// disks actually see queues.
func AblationElevator(o Options) Result {
	p := o.baseParams(2)
	p.Warehouses = 8 * 2
	p.BufferFraction = 0.3 // starve the cache: real disk traffic
	q := p
	q.FIFODisks = true
	scan, fifo := o.runPair(p, q)
	o.logf("abl-elevator scan: tpmC=%.0f resp=%.0fms | fifo: tpmC=%.0f resp=%.0fms",
		scan.TpmC, scan.RespTimeMs, fifo.TpmC, fifo.RespTimeMs)
	a := &stats.Series{Name: "tpmC"}
	b := &stats.Series{Name: "resp ms"}
	a.Add(0, scan.TpmC)
	a.Add(1, fifo.TpmC)
	b.Add(0, scan.RespTimeMs)
	b.Add(1, fifo.RespTimeMs)
	return Result{
		ID: "abl-elevator", Title: "SCAN elevator (x=0) vs FIFO (x=1) disk scheduling",
		XLabel: "fifo", Series: []*stats.Series{a, b},
		Notes: "Expected: under real disk queues the elevator shortens seeks and response times.",
	}
}

// AblationPrewarm shows what the warm start is worth: a cold cluster pays
// for every first touch with a (scaled) disk read during warmup.
func AblationPrewarm(o Options) Result {
	p := o.baseParams(2)
	p.Warehouses = 6 * 2
	q := p
	q.NoPrewarm = true
	warm, cold := o.runPair(p, q)
	o.logf("abl-prewarm warm: tpmC=%.0f | cold: tpmC=%.0f hit=%.3f",
		warm.TpmC, cold.TpmC, cold.BufferHitRatio)
	a := &stats.Series{Name: "tpmC"}
	a.Add(0, warm.TpmC)
	a.Add(1, cold.TpmC)
	b := &stats.Series{Name: "buffer hit ratio"}
	b.Add(0, warm.BufferHitRatio)
	b.Add(1, cold.BufferHitRatio)
	return Result{
		ID: "abl-prewarm", Title: "Warm (x=0) vs cold (x=1) start",
		XLabel: "cold", Series: []*stats.Series{a, b},
		Notes: "Expected: the cold cluster converges toward the warm one as the measurement window grows; short windows understate steady-state throughput.",
	}
}
