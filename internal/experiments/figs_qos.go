package experiments

import (
	"dclue/internal/core"
	"dclue/internal/stats"
)

// crossTrafficFigure implements Figs 14-15: DBMS throughput on a 2x4-node
// cluster at affinity 0.8 as FTP cross traffic (50% GET / 50% PUT, fresh
// connection per transfer) is offered at increasing rates, under two QoS
// arrangements: everything best-effort, and FTP promoted to AF21 priority.
// One shared capacity search fixes the load; the (priority, load) grid then
// fans across the pool.
func crossTrafficFigure(o Options, id string, lowComp bool) Result {
	loads := []float64{0, 100e6, 200e6, 300e6, 400e6, 600e6}
	if o.Quick {
		loads = []float64{0, 400e6}
	}
	base := o.baseParams(8)
	base.NodesPerLata = 4
	base.Affinity = 0.8
	base.LowComputation = lowComp
	cap0 := o.capacity(base)
	wh := cap0.Warehouses

	prios := []bool{false, true}
	ms := make([]core.Metrics, len(prios)*len(loads))
	o.grid(len(prios), len(loads), func(pr, i int) {
		p := base
		p.CrossTrafficBps = loads[i]
		p.CrossTrafficPriority = prios[pr]
		m := o.fixedLoad(p, wh)
		o.logf("%s prio=%v load=%.0fMbps: tpmC=%.0f threads=%.1f ctx=%.1fK cpi=%.2f lockWait=%.0fms ftp=%.1fMbps",
			id, prios[pr], loads[i]/1e6, m.TpmC, m.ActiveThreads, m.CtxSwitchK, m.CPI, m.LockWaitMs, m.FTPDeliveredMbps)
		ms[pr*len(loads)+i] = m
	})
	var series []*stats.Series
	for pr, prio := range prios {
		name := "FTP best-effort"
		if prio {
			name = "FTP at AF21 priority"
		}
		s := &stats.Series{Name: name}
		for i, load := range loads {
			s.Add(load/1e6, ms[pr*len(loads)+i].TpmC)
		}
		series = append(series, s)
	}
	notes := "Paper shape: best-effort interference is marginal; at AF21 priority ~30% drop by 100 Mb/s with most of the damage done early — threads jump ~20->75, ctx switch 17.7K->69.7K cycles, CPI 11.5->16.9 (§3.4)."
	if lowComp {
		notes = "Paper shape (low computation): ~13% drop at 100 Mb/s best-effort, ~43% at AF21 priority (§3.4)."
	}
	return Result{
		ID: id, Title: "DBMS throughput (scaled tpm-C) vs offered FTP cross traffic (unscaled Mb/s)",
		XLabel: "FTP Mb/s", Series: series, Notes: notes,
	}
}

// Fig14 reproduces "Impact of cross traffic w/ normal computation".
func Fig14(o Options) Result { return crossTrafficFigure(o, "fig14", false) }

// Fig15 reproduces "Impact of cross traffic w/ low computation".
func Fig15(o Options) Result { return crossTrafficFigure(o, "fig15", true) }

// Fig16 reproduces "Impact of cross traffic vs affinity (low computation)":
// the throughput retained under 100 Mb/s of priority cross traffic, as a
// function of affinity. The paper's counter-intuitive finding: sensitivity
// *decreases* as affinity falls, because low-affinity workloads already run
// with enough threads that further delays cannot degrade the cache much
// more. Each affinity is one job (capacity search plus its dependent
// cross-traffic run).
func Fig16(o Options) Result {
	affs := []float64{0.8, 0.5, 0.2}
	if o.Quick {
		affs = []float64{0.8, 0.5}
	}
	type outcome struct {
		base core.CapacityResult
		ct   core.Metrics
	}
	outs := make([]outcome, len(affs))
	o.forEach(len(affs), func(a int) {
		p := o.baseParams(8)
		p.NodesPerLata = 4
		p.Affinity = affs[a]
		p.LowComputation = true
		cap0 := o.capacity(p)
		wh := cap0.Warehouses
		q := p
		q.CrossTrafficBps = 100e6
		q.CrossTrafficPriority = true
		m := o.fixedLoad(q, wh)
		retained := 0.0
		if cap0.Metrics.TpmC > 0 {
			retained = m.TpmC / cap0.Metrics.TpmC * 100
		}
		o.logf("fig16 aff=%.1f: base=%.0f withCT=%.0f retained=%.1f%%",
			affs[a], cap0.Metrics.TpmC, m.TpmC, retained)
		outs[a] = outcome{cap0, m}
	})
	abs := &stats.Series{Name: "tpmC with cross traffic"}
	base0 := &stats.Series{Name: "tpmC without"}
	rel := &stats.Series{Name: "% retained"}
	for a, aff := range affs {
		retained := 0.0
		if outs[a].base.Metrics.TpmC > 0 {
			retained = outs[a].ct.TpmC / outs[a].base.Metrics.TpmC * 100
		}
		base0.Add(aff, outs[a].base.Metrics.TpmC)
		abs.Add(aff, outs[a].ct.TpmC)
		rel.Add(aff, retained)
	}
	return Result{
		ID: "fig16", Title: "Cross-traffic sensitivity vs affinity (low computation, 100 Mb/s AF21 FTP)",
		XLabel: "affinity", Series: []*stats.Series{base0, abs, rel},
		Notes: "Paper shape: lower affinity is LESS sensitive — those workloads already run many threads, so the cache is near thrashing and extra delays do little further damage (§3.4).",
	}
}
