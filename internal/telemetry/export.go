package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dclue/internal/stats"
)

// Export. Two formats, both deterministic (registries sorted by label,
// instruments in registration order, classes in enum order, buckets
// ascending):
//
//   - JSONL timeseries (WriteFile / WriteJSONL): one object per scalar
//     instrument plus one per non-empty timeline bucket — the raw material
//     for utilization-over-time plots.
//   - Prometheus text exposition (WritePrometheus): the end-of-run scalar
//     snapshot, also served live by `dclueexp -status`.
//
// Only sealed registries are exported: a run's instruments are written by
// its simulation goroutine without locks, so the collector exposes a
// registry to readers only after Seal establishes the happens-before edge.

// Seal publishes r to the export side; call it once, after the run's last
// instrument write. Export functions ignore unsealed registries.
func (c *Collector) Seal(r *Registry) {
	c.mu.Lock()
	c.sealed = append(c.sealed, r)
	c.mu.Unlock()
}

// sortRegistries orders registries by label (labels are unique per run in
// every caller; ties keep their relative order).
func sortRegistries(rs []*Registry) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].label < rs[j].label })
}

// sealedRegistries snapshots the exportable set in label order.
func (c *Collector) sealedRegistries() []*Registry {
	c.mu.Lock()
	out := make([]*Registry, len(c.sealed))
	copy(out, c.sealed)
	c.mu.Unlock()
	sortRegistries(out)
	return out
}

// WriteFile writes the export to path, picking the format from the
// extension: ".prom" or ".txt" selects the Prometheus text snapshot,
// anything else the JSONL timeseries.
func (c *Collector) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := c.WriteJSONL
	if ext := filepath.Ext(path); ext == ".prom" || ext == ".txt" {
		write = c.WritePrometheus
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rec is one JSONL line. json.Marshal sorts map keys, so the per-line field
// order is deterministic too.
type rec map[string]any

// WriteJSONL writes one JSON object per line: scalar records per instrument
// and `*_tl` records per non-empty timeline bucket.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emit := func(r rec) error { return enc.Encode(r) }
	for _, reg := range c.sealedRegistries() {
		if err := reg.writeJSONL(emit); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// tlRecords emits one record per non-empty bucket of tl, with base's fields
// plus t (bucket start, seconds) and v.
func tlRecords(emit func(rec) error, base rec, tl *stats.Bucketed) error {
	if tl == nil {
		return nil
	}
	for i := 0; i < tl.Len(); i++ {
		v := tl.Value(i)
		if v == 0 {
			continue
		}
		r := rec{}
		for k, val := range base {
			r[k] = val
		}
		r["t"] = tl.Start(i).Seconds()
		r["v"] = round9(v)
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

// round9 trims float noise to nanosecond-ish resolution so exported JSON
// stays compact and stable.
func round9(v float64) float64 {
	return float64(int64(v*1e9+0.5)) / 1e9
}

func (r *Registry) writeJSONL(emit func(rec) error) error {
	run := r.label
	for _, l := range r.links {
		for _, cls := range Classes() {
			if l.Pkts[cls] == 0 {
				continue
			}
			if err := emit(rec{
				"run": run, "kind": "link", "name": l.Name, "class": cls.String(),
				"busy_s": l.Busy[cls].Seconds(), "bytes": l.Bytes[cls], "pkts": l.Pkts[cls],
			}); err != nil {
				return err
			}
			if err := tlRecords(emit, rec{
				"run": run, "kind": "link_tl", "name": l.Name, "class": cls.String(),
			}, l.tl[cls]); err != nil {
				return err
			}
		}
	}
	for _, q := range r.queues {
		if err := emit(rec{
			"run": run, "kind": "queue", "name": q.Name,
			"mean_bytes": round9(q.Occ.Mean(q.last)), "max_bytes": q.Occ.Max(),
		}); err != nil {
			return err
		}
		if err := tlRecords(emit, rec{"run": run, "kind": "queue_tl", "name": q.Name}, q.tl); err != nil {
			return err
		}
	}
	for _, cpu := range r.cpus {
		if err := emit(rec{
			"run": run, "kind": "cpu", "name": cpu.Name,
			"thread_busy_s": cpu.ThreadBusy.Seconds(), "irq_busy_s": cpu.IRQBusy.Seconds(),
		}); err != nil {
			return err
		}
		if err := tlRecords(emit, rec{"run": run, "kind": "cpu_tl", "name": cpu.Name, "comp": "thread"}, cpu.tlThread); err != nil {
			return err
		}
		if err := tlRecords(emit, rec{"run": run, "kind": "cpu_tl", "name": cpu.Name, "comp": "irq"}, cpu.tlIRQ); err != nil {
			return err
		}
	}
	for _, d := range r.disks {
		if err := emit(rec{
			"run": run, "kind": "disk", "name": d.Name,
			"busy_s": d.Busy.Seconds(), "reads": d.Reads, "writes": d.Writes,
		}); err != nil {
			return err
		}
		if err := tlRecords(emit, rec{"run": run, "kind": "disk_tl", "name": d.Name}, d.tl); err != nil {
			return err
		}
	}
	for _, g := range r.gcs {
		if err := emit(rec{
			"run": run, "kind": "gcs", "name": g.Name,
			"ctl_msgs": g.CtlMsgs, "data_msgs": g.DataMsgs,
			"lock_waits": g.LockWait.N(), "lock_wait_s": round9(g.LockWait.Sum()),
		}); err != nil {
			return err
		}
		if err := tlRecords(emit, rec{"run": run, "kind": "gcs_tl", "name": g.Name, "metric": "ctl"}, g.tlCtl); err != nil {
			return err
		}
		if err := tlRecords(emit, rec{"run": run, "kind": "gcs_tl", "name": g.Name, "metric": "data"}, g.tlData); err != nil {
			return err
		}
		if err := tlRecords(emit, rec{"run": run, "kind": "gcs_tl", "name": g.Name, "metric": "lockwait"}, g.tlWait); err != nil {
			return err
		}
	}
	for _, ph := range r.phases {
		if err := emit(rec{
			"run": run, "kind": "phase", "component": ph.Component, "phase": ph.Phase,
			"start_s": ph.Start.Seconds(), "end_s": ph.End.Seconds(),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the scalar snapshot in Prometheus text exposition
// format: every sealed run's instruments as labeled samples.
func (c *Collector) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	regs := c.sealedRegistries()

	section := func(name, typ, help string, emit func(*Registry)) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, r := range regs {
			emit(r)
		}
	}

	section("dclue_link_busy_seconds", "counter", "Wire busy time per link and traffic class.", func(r *Registry) {
		for _, l := range r.links {
			for _, cls := range Classes() {
				if l.Pkts[cls] == 0 {
					continue
				}
				fmt.Fprintf(bw, "dclue_link_busy_seconds{run=%q,link=%q,class=%q} %g\n",
					r.label, l.Name, cls.String(), l.Busy[cls].Seconds())
			}
		}
	})
	section("dclue_link_bytes_total", "counter", "Bytes serialized per link and traffic class.", func(r *Registry) {
		for _, l := range r.links {
			for _, cls := range Classes() {
				if l.Pkts[cls] == 0 {
					continue
				}
				fmt.Fprintf(bw, "dclue_link_bytes_total{run=%q,link=%q,class=%q} %d\n",
					r.label, l.Name, cls.String(), l.Bytes[cls])
			}
		}
	})
	section("dclue_queue_max_bytes", "gauge", "Peak queue occupancy in bytes.", func(r *Registry) {
		for _, q := range r.queues {
			fmt.Fprintf(bw, "dclue_queue_max_bytes{run=%q,queue=%q} %g\n", r.label, q.Name, q.Occ.Max())
		}
	})
	section("dclue_cpu_busy_seconds", "counter", "CPU busy time split by component.", func(r *Registry) {
		for _, cpu := range r.cpus {
			fmt.Fprintf(bw, "dclue_cpu_busy_seconds{run=%q,cpu=%q,comp=\"thread\"} %g\n", r.label, cpu.Name, cpu.ThreadBusy.Seconds())
			fmt.Fprintf(bw, "dclue_cpu_busy_seconds{run=%q,cpu=%q,comp=\"irq\"} %g\n", r.label, cpu.Name, cpu.IRQBusy.Seconds())
		}
	})
	section("dclue_disk_busy_seconds", "counter", "Disk service busy time per spindle.", func(r *Registry) {
		for _, d := range r.disks {
			fmt.Fprintf(bw, "dclue_disk_busy_seconds{run=%q,disk=%q} %g\n", r.label, d.Name, d.Busy.Seconds())
		}
	})
	section("dclue_disk_ops_total", "counter", "Disk operations per spindle and direction.", func(r *Registry) {
		for _, d := range r.disks {
			fmt.Fprintf(bw, "dclue_disk_ops_total{run=%q,disk=%q,op=\"read\"} %d\n", r.label, d.Name, d.Reads)
			fmt.Fprintf(bw, "dclue_disk_ops_total{run=%q,disk=%q,op=\"write\"} %d\n", r.label, d.Name, d.Writes)
		}
	})
	section("dclue_gcs_msgs_total", "counter", "Cache-fusion messages sent per node and kind.", func(r *Registry) {
		for _, g := range r.gcs {
			fmt.Fprintf(bw, "dclue_gcs_msgs_total{run=%q,node=%q,kind=\"ctl\"} %d\n", r.label, g.Name, g.CtlMsgs)
			fmt.Fprintf(bw, "dclue_gcs_msgs_total{run=%q,node=%q,kind=\"data\"} %d\n", r.label, g.Name, g.DataMsgs)
		}
	})
	section("dclue_lock_wait_seconds_total", "counter", "Total lock-wait time per node.", func(r *Registry) {
		for _, g := range r.gcs {
			fmt.Fprintf(bw, "dclue_lock_wait_seconds_total{run=%q,node=%q} %g\n", r.label, g.Name, round9(g.LockWait.Sum()))
		}
	})
	section("dclue_recovery_phase_seconds", "gauge", "Recorded recovery phase durations.", func(r *Registry) {
		for _, ph := range r.phases {
			fmt.Fprintf(bw, "dclue_recovery_phase_seconds{run=%q,component=%q,phase=%q} %g\n",
				r.label, ph.Component, ph.Phase, (ph.End - ph.Start).Seconds())
		}
	})
	return bw.Flush()
}
