package telemetry

import (
	"strings"
	"testing"

	"dclue/internal/sim"
)

func TestLinkTelExactAttribution(t *testing.T) {
	col := NewCollector(0)
	reg := col.NewRegistry("run")
	l := reg.NewLink("l0")
	// Odd, boundary-hostile slices: per-class busy must sum to the exact
	// integer total because each slice goes to exactly one class.
	var total sim.Time
	slices := []struct {
		cls  Class
		from sim.Time
		d    sim.Time
	}{
		{ClassIPC, 0, 7}, {ClassISCSI, 7, 13}, {ClassIPC, 100, 1},
		{ClassFTP, 101, 999}, {ClassHeartbeat, 5000, 3}, {ClassClient, 5003, 42},
		{ClassOther, 6000, 11},
	}
	for _, s := range slices {
		l.OnTransmit(s.cls, s.from, s.from+s.d, 100)
		total += s.d
	}
	if l.BusyTotal() != total {
		t.Fatalf("BusyTotal %d != sum of slices %d", l.BusyTotal(), total)
	}
	if l.Busy[ClassIPC] != 8 || l.Pkts[ClassIPC] != 2 || l.Bytes[ClassIPC] != 200 {
		t.Fatalf("per-class accounting wrong: busy=%d pkts=%d bytes=%d",
			l.Busy[ClassIPC], l.Pkts[ClassIPC], l.Bytes[ClassIPC])
	}
	// Out-of-range class falls back to Other instead of corrupting memory.
	l.OnTransmit(Class(250), 7000, 7001, 1)
	if l.Busy[ClassOther] != 12 {
		t.Fatalf("overflow class not folded into other: %d", l.Busy[ClassOther])
	}
}

func TestRegistryTimelinesFollowBucket(t *testing.T) {
	for _, bucket := range []sim.Time{0, sim.Second} {
		col := NewCollector(bucket)
		reg := col.NewRegistry("r")
		l := reg.NewLink("l")
		q := reg.NewQueue("q")
		c := reg.NewCPU("c")
		d := reg.NewDisk("d")
		g := reg.NewGCS("g")
		want := bucket > 0
		got := l.Timeline(ClassIPC) != nil && q.Timeline() != nil &&
			c.Timeline(false) != nil && c.Timeline(true) != nil &&
			d.Timeline() != nil && g.CtlTimeline() != nil && g.DataTimeline() != nil &&
			g.WaitTimeline() != nil
		if got != want {
			t.Fatalf("bucket=%d: timelines present=%v, want %v", bucket, got, want)
		}
		// Hooks must be safe in both configurations.
		l.OnTransmit(ClassISCSI, 0, sim.Second/2, 1500)
		q.OnDepth(10, 3000)
		q.OnDepth(20, 0)
		c.OnBusy(false, 0, 5)
		c.OnBusy(true, 5, 9)
		d.OnIO(0, 3, true)
		g.OnCtlMsg(1)
		g.OnDataMsg(2)
		g.OnLockWait(3, 9)
		reg.RecordPhase("recovery", "fence", 0, sim.Second)
	}
}

func TestCollectorExportsOnlySealedSortedByLabel(t *testing.T) {
	col := NewCollector(sim.Second)
	rb := col.NewRegistry("b-run")
	ra := col.NewRegistry("a-run")
	rb.NewLink("lb").OnTransmit(ClassIPC, 0, 10, 64)
	ra.NewLink("la").OnTransmit(ClassISCSI, 0, 10, 64)

	var buf strings.Builder
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("unsealed registries exported: %q", buf.String())
	}

	col.Seal(rb)
	col.Seal(ra)
	buf.Reset()
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia, ib := strings.Index(out, `"a-run"`), strings.Index(out, `"b-run"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("export not sorted by label (a at %d, b at %d):\n%s", ia, ib, out)
	}
	if !strings.Contains(out, `"kind":"link"`) {
		t.Fatalf("no link scalar record:\n%s", out)
	}

	buf.Reset()
	if err := col.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"# TYPE dclue_link_busy_seconds counter",
		`dclue_link_busy_seconds{run="a-run",link="la",class="iscsi"}`,
		`dclue_link_busy_seconds{run="b-run",link="lb",class="ipc"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus export missing %q:\n%s", want, prom)
		}
	}
}

func TestQueueTelOccupancy(t *testing.T) {
	col := NewCollector(10)
	q := col.NewRegistry("r").NewQueue("q")
	q.OnDepth(0, 100)
	q.OnDepth(10, 0) // 100 bytes held for 10 units
	if q.Occ.Max() != 100 {
		t.Fatalf("max %v, want 100", q.Occ.Max())
	}
	// Byte-seconds timeline: bucket 0 integrated 100 bytes * 10 units.
	want := 100 * sim.Time(10).Seconds()
	if got := q.Timeline().Value(0); got != want {
		t.Fatalf("bucket 0 byte-seconds %v, want %v", got, want)
	}
}
