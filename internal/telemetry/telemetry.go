// Package telemetry is the unified metrics registry: deterministic,
// sim-time-stamped utilization and occupancy instruments threaded through
// every simulated component — links and router ports (busy time and bytes
// attributed to traffic class), queues (occupancy), CPUs (thread vs IRQ
// busy), disks (per-spindle utilization), the cache-fusion GCS (message
// rates and lock waits) and the recovery coordinator (phase timelines).
//
// The contract mirrors the trace layer's: a run carries a nil *Registry by
// default, every hot-path hook site guards with `if tel != nil` (enforced
// by the telemnil dcluevet analyzer), and instruments do pure bookkeeping
// inside existing event handlers — no calendar events, no randomness, no
// allocation after registration — so an instrumented run is provably
// bit-identical to an uninstrumented one (Metrics.FingerprintSansTelemetry
// is the regression hook).
//
// Attribution is exact by construction: the link hook receives the very
// same integer busy slice the link adds to its own busy-time counter and
// credits it to exactly one traffic class, so the per-class sums equal each
// link's total busy time with no rounding.
package telemetry

import (
	"sync"

	"dclue/internal/sim"
	"dclue/internal/stats"
)

// Class is the traffic class a packet belongs to for attribution purposes:
// which *workload* put it on the fabric. It is deliberately distinct from
// the QoS class (netsim.Class) that decides queueing priority — the paper's
// fabric-sharing question is exactly how these workloads interfere inside
// the same best-effort QoS class.
type Class uint8

const (
	// ClassOther covers traffic with no explicit attribution: pure
	// transport overhead (ACKs and control segments inherit their
	// connection's class instead, so in practice Other stays near zero).
	ClassOther Class = iota
	// ClassIPC is cache-fusion GCS messaging between DP nodes.
	ClassIPC
	// ClassISCSI is storage traffic between DP nodes and their enclosures.
	ClassISCSI
	// ClassClient is terminal (client/server) request/response traffic.
	ClassClient
	// ClassFTP is the bulk FTP cross traffic.
	ClassFTP
	// ClassHeartbeat is membership heartbeat traffic.
	ClassHeartbeat

	// NumClasses sizes per-class arrays.
	NumClasses = 6
)

var classNames = [NumClasses]string{"other", "ipc", "iscsi", "client", "ftp", "heartbeat"}

// String returns the class's export label.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "other"
}

// Classes lists every class in export order.
func Classes() [NumClasses]Class {
	return [NumClasses]Class{ClassOther, ClassIPC, ClassISCSI, ClassClient, ClassFTP, ClassHeartbeat}
}

// Collector gathers telemetry registries across the runs of a sweep: set
// one on Params.Telemetry (or Options.Telemetry) and every run registers
// its components and accumulates utilization into a private Registry. A
// positive bucket width additionally records per-bucket timelines
// exportable as JSONL (WriteFile); bucket 0 keeps scalars only.
//
// A nil *Collector is the fast path: no registry is created and every hook
// site short-circuits on its nil instrument handle.
type Collector struct {
	mu     sync.Mutex
	bucket sim.Time
	regs   []*Registry
	sealed []*Registry
}

// NewCollector returns a collector with the given timeline bucket width
// (0 disables timelines, keeping end-of-run scalars only).
func NewCollector(bucket sim.Time) *Collector {
	if bucket < 0 {
		bucket = 0
	}
	return &Collector{bucket: bucket}
}

// Bucket returns the timeline bucket width (0 = scalars only).
func (c *Collector) Bucket() sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bucket
}

// NewRegistry creates the per-run registry labeled label. Safe to call from
// concurrent sweep workers; each registry itself is then owned by its run's
// single simulation goroutine.
func (c *Collector) NewRegistry(label string) *Registry {
	r := &Registry{label: label, bucket: c.bucket}
	c.mu.Lock()
	c.regs = append(c.regs, r)
	c.mu.Unlock()
	return r
}

// Registries returns every registry created so far, sorted by label so the
// export order is independent of sweep scheduling.
func (c *Collector) Registries() []*Registry {
	c.mu.Lock()
	out := make([]*Registry, len(c.regs))
	copy(out, c.regs)
	c.mu.Unlock()
	sortRegistries(out)
	return out
}

// Registry holds one run's instruments. Registration happens once at
// cluster construction (under no concurrency); the hook methods on the
// instruments it hands out are then called from the run's simulation
// goroutine only, so none of them lock.
type Registry struct {
	label  string
	bucket sim.Time

	links  []*LinkTel
	queues []*QueueTel
	cpus   []*CPUTel
	disks  []*DiskTel
	gcs    []*GCSTel
	phases []PhaseEvent
}

// Label returns the run label the registry was created with.
func (r *Registry) Label() string { return r.label }

// Bucket returns the timeline bucket width (0 = scalars only).
func (r *Registry) Bucket() sim.Time { return r.bucket }

// NewLink registers a link (or router-port) instrument.
func (r *Registry) NewLink(name string) *LinkTel {
	l := &LinkTel{Name: name}
	if r.bucket > 0 {
		for c := range l.tl {
			l.tl[c] = stats.NewBucketed(r.bucket)
		}
	}
	r.links = append(r.links, l)
	return l
}

// NewQueue registers a queue-occupancy instrument.
func (r *Registry) NewQueue(name string) *QueueTel {
	q := &QueueTel{Name: name, tl: stats.NewBucketed(r.bucket)}
	r.queues = append(r.queues, q)
	return q
}

// NewCPU registers a per-node CPU instrument.
func (r *Registry) NewCPU(name string) *CPUTel {
	c := &CPUTel{Name: name, tlThread: stats.NewBucketed(r.bucket), tlIRQ: stats.NewBucketed(r.bucket)}
	r.cpus = append(r.cpus, c)
	return c
}

// NewDisk registers a per-spindle disk instrument.
func (r *Registry) NewDisk(name string) *DiskTel {
	d := &DiskTel{Name: name, tl: stats.NewBucketed(r.bucket)}
	r.disks = append(r.disks, d)
	return d
}

// NewGCS registers a per-node GCS instrument.
func (r *Registry) NewGCS(name string) *GCSTel {
	g := &GCSTel{
		Name:  name,
		tlCtl: stats.NewBucketed(r.bucket), tlData: stats.NewBucketed(r.bucket),
		tlWait: stats.NewBucketed(r.bucket),
	}
	r.gcs = append(r.gcs, g)
	return g
}

// RecordPhase appends one component-phase interval to the run's phase
// timeline (recovery's fence/remaster/replay/open spans).
func (r *Registry) RecordPhase(component, phase string, start, end sim.Time) {
	r.phases = append(r.phases, PhaseEvent{Component: component, Phase: phase, Start: start, End: end})
}

// Links returns the link instruments in registration order.
func (r *Registry) Links() []*LinkTel { return r.links }

// Queues returns the queue instruments in registration order.
func (r *Registry) Queues() []*QueueTel { return r.queues }

// CPUs returns the CPU instruments in registration order.
func (r *Registry) CPUs() []*CPUTel { return r.cpus }

// Disks returns the disk instruments in registration order.
func (r *Registry) Disks() []*DiskTel { return r.disks }

// GCS returns the GCS instruments in registration order.
func (r *Registry) GCS() []*GCSTel { return r.gcs }

// Phases returns the recorded phase intervals in record order.
func (r *Registry) Phases() []PhaseEvent { return r.phases }

// LinkTel attributes a link's wire time to traffic classes. OnTransmit is
// fed the exact integer busy slice the link itself accounts, so
// sum(Busy) == the link's own busy-time counter with no rounding.
type LinkTel struct {
	Name  string
	Busy  [NumClasses]sim.Time
	Bytes [NumClasses]uint64
	Pkts  [NumClasses]uint64

	tl [NumClasses]*stats.Bucketed // busy seconds per bucket
}

// OnTransmit records one packet's serialization interval [from, to)
// attributed to class cls.
func (l *LinkTel) OnTransmit(cls Class, from, to sim.Time, bytes int) {
	if cls >= NumClasses {
		cls = ClassOther
	}
	l.Busy[cls] += to - from
	l.Bytes[cls] += uint64(bytes)
	l.Pkts[cls]++
	if tl := l.tl[cls]; tl != nil {
		tl.AddSpan(from, to, (to - from).Seconds())
	}
}

// BusyTotal returns the summed per-class busy time.
func (l *LinkTel) BusyTotal() sim.Time {
	var t sim.Time
	for _, b := range l.Busy {
		t += b
	}
	return t
}

// Timeline returns the class's busy-seconds-per-bucket timeline (nil when
// timelines are disabled).
func (l *LinkTel) Timeline(cls Class) *stats.Bucketed { return l.tl[cls] }

// QueueTel tracks a queue's byte occupancy: time-weighted mean/max scalars
// plus an optional byte-seconds-per-bucket timeline.
type QueueTel struct {
	Name string
	Occ  stats.TimeWeighted

	tl      *stats.Bucketed // byte-seconds per bucket
	last    sim.Time
	lastVal float64
}

// OnDepth records that the queue's occupancy changed to bytes at now.
func (q *QueueTel) OnDepth(now sim.Time, bytes int) {
	if q.tl != nil && now > q.last {
		q.tl.AddSpan(q.last, now, q.lastVal*(now-q.last).Seconds())
	}
	q.last, q.lastVal = now, float64(bytes)
	q.Occ.Set(now, float64(bytes))
}

// Timeline returns the byte-seconds-per-bucket timeline (nil when
// timelines are disabled).
func (q *QueueTel) Timeline() *stats.Bucketed { return q.tl }

// CPUTel splits a node CPU's busy time into thread (DB work) and IRQ
// (per-packet protocol) components.
type CPUTel struct {
	Name       string
	ThreadBusy sim.Time
	IRQBusy    sim.Time

	tlThread, tlIRQ *stats.Bucketed // busy seconds per bucket
}

// OnBusy records one busy interval [from, to); irq selects the component.
func (c *CPUTel) OnBusy(irq bool, from, to sim.Time) {
	d := to - from
	if irq {
		c.IRQBusy += d
		if c.tlIRQ != nil {
			c.tlIRQ.AddSpan(from, to, d.Seconds())
		}
		return
	}
	c.ThreadBusy += d
	if c.tlThread != nil {
		c.tlThread.AddSpan(from, to, d.Seconds())
	}
}

// Timeline returns the component's busy-seconds-per-bucket timeline.
func (c *CPUTel) Timeline(irq bool) *stats.Bucketed {
	if irq {
		return c.tlIRQ
	}
	return c.tlThread
}

// DiskTel tracks one spindle's (or log device's) service utilization.
type DiskTel struct {
	Name   string
	Busy   sim.Time
	Reads  uint64
	Writes uint64

	tl *stats.Bucketed // busy seconds per bucket
}

// OnIO records one service interval [from, to).
func (d *DiskTel) OnIO(from, to sim.Time, write bool) {
	d.Busy += to - from
	if write {
		d.Writes++
	} else {
		d.Reads++
	}
	if d.tl != nil {
		d.tl.AddSpan(from, to, (to - from).Seconds())
	}
}

// Timeline returns the busy-seconds-per-bucket timeline.
func (d *DiskTel) Timeline() *stats.Bucketed { return d.tl }

// GCSTel tracks a node's cache-fusion messaging rates and lock-wait time.
type GCSTel struct {
	Name     string
	CtlMsgs  uint64
	DataMsgs uint64
	LockWait stats.Tally // seconds per wait

	tlCtl, tlData *stats.Bucketed // messages per bucket
	tlWait        *stats.Bucketed // wait seconds per bucket
}

// OnCtlMsg counts one control message sent at now.
func (g *GCSTel) OnCtlMsg(now sim.Time) {
	g.CtlMsgs++
	if g.tlCtl != nil {
		g.tlCtl.AddAt(now, 1)
	}
}

// OnDataMsg counts one data (block-transfer) message sent at now.
func (g *GCSTel) OnDataMsg(now sim.Time) {
	g.DataMsgs++
	if g.tlData != nil {
		g.tlData.AddAt(now, 1)
	}
}

// OnLockWait records one lock wait spanning [from, to).
func (g *GCSTel) OnLockWait(from, to sim.Time) {
	g.LockWait.Add((to - from).Seconds())
	if g.tlWait != nil {
		g.tlWait.AddSpan(from, to, (to - from).Seconds())
	}
}

// CtlTimeline returns the control-messages-per-bucket timeline.
func (g *GCSTel) CtlTimeline() *stats.Bucketed { return g.tlCtl }

// DataTimeline returns the data-messages-per-bucket timeline.
func (g *GCSTel) DataTimeline() *stats.Bucketed { return g.tlData }

// WaitTimeline returns the lock-wait-seconds-per-bucket timeline.
func (g *GCSTel) WaitTimeline() *stats.Bucketed { return g.tlWait }

// PhaseEvent is one recorded component-phase interval.
type PhaseEvent struct {
	Component string
	Phase     string
	Start     sim.Time
	End       sim.Time
}
