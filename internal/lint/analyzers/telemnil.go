package analyzers

import "dclue/internal/lint/analysis"

// Telemnil enforces the zero-cost untelemetered fast path, the telemetry
// sibling of tracenil: Params.Telemetry and every instrument handle derived
// from it (telemetry.Collector, Registry, LinkTel, QueueTel, CPUTel,
// DiskTel, GCSTel) are nil on an untelemetered run, so model code may only
// call their methods behind a nil check. The hooks sit on the hottest paths
// in the simulator — per-packet link transmits, per-dispatch CPU
// accounting, per-IO disk completions — where a missing guard is a
// nil-pointer crash on the common path that no telemetered test would ever
// see. Guard tracking is shared with tracenil (see nilRule and nilVisitor
// in tracenil.go).
var Telemnil = &analysis.Analyzer{
	Name: "telemnil",
	Doc:  "require a nil check around every call on a telemetry handle (Collector/Registry/*Tel); untelemetered runs carry nil handles on the fast path",
	Run:  runTelemnil,
}

// telemetryRule: the nilable instrument handle types, by name within any
// package named "telemetry".
var telemetryRule = &nilRule{
	pkg: "telemetry",
	handles: map[string]bool{
		"Collector": true,
		"Registry":  true,
		"LinkTel":   true,
		"QueueTel":  true,
		"CPUTel":    true,
		"DiskTel":   true,
		"GCSTel":    true,
	},
	offPath: "untelemetered",
}

func runTelemnil(pass *analysis.Pass) error { return runNilRule(pass, telemetryRule) }
