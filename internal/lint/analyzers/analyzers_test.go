package analyzers_test

import (
	"testing"

	"dclue/internal/lint/analyzers"
	"dclue/internal/lint/linttest"
)

// Each fixture seeds violations (matched by // want comments) and at least
// one //lint:allow-suppressed occurrence (matched by the absence of a want:
// if suppression broke, the unexpected diagnostic fails the harness).

func TestSimtime(t *testing.T) {
	linttest.Run(t, analyzers.Simtime, linttest.Dir("simtime"))
}

func TestSimrand(t *testing.T) {
	linttest.Run(t, analyzers.Simrand, linttest.Dir("simrand"))
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, analyzers.Maporder, linttest.Dir("maporder"))
}

func TestGoroutine(t *testing.T) {
	linttest.Run(t, analyzers.Goroutine, linttest.Dir("goroutine"))
}

// TestGoroutineContinuationOnly exercises the continuation-only rule: the
// fixture package stands in for a hot-path package rebuilt as callback state
// machines, where goroutine-backed sim primitives are forbidden.
func TestGoroutineContinuationOnly(t *testing.T) {
	linttest.Run(t, analyzers.Goroutine, linttest.Dir("continuation"))
}

func TestFloatsum(t *testing.T) {
	linttest.Run(t, analyzers.Floatsum, linttest.Dir("floatsum"))
}

func TestTracenil(t *testing.T) {
	linttest.Run(t, analyzers.Tracenil, linttest.Dir("tracenil"))
}

func TestTelemnil(t *testing.T) {
	linttest.Run(t, analyzers.Telemnil, linttest.Dir("telemnil"))
}

func TestPoolown(t *testing.T) {
	linttest.Run(t, analyzers.Poolown, linttest.Dir("poolown"))
}

func TestEventid(t *testing.T) {
	linttest.Run(t, analyzers.Eventid, linttest.Dir("eventid"))
}

// TestPolicyExemptions pins the sanctioned-package lists: a rename that
// silently widened or narrowed an exemption would otherwise only surface
// as a confusing self-host failure.
func TestPolicyExemptions(t *testing.T) {
	cases := []struct {
		analyzer string
		pkg      string
		exempt   bool
	}{
		{"simtime", "dclue/cmd/dclueexp", true},
		{"simtime", "dclue/cmd/dcluesim", true},
		{"simtime", "dclue/internal/cliutil", true},
		{"simtime", "dclue/internal/core", false},
		{"simtime", "dclue/internal/sim", false},
		{"simrand", "dclue/internal/rng", true},
		{"simrand", "dclue/internal/tpcc", false},
		{"goroutine", "dclue/internal/sim", true},
		{"goroutine", "dclue/internal/runner", true},
		{"goroutine", "dclue/internal/farm", true},
		{"goroutine", "dclue/internal/cliutil", false},
		{"goroutine", "dclue/internal/trace", false},
		{"goroutine", "dclue/cmd/dclueexp", false},
	}
	for _, c := range cases {
		got := analyzers.ExemptForTest(c.analyzer, c.pkg)
		if got != c.exempt {
			t.Errorf("%s on %s: exempt=%v, want %v", c.analyzer, c.pkg, got, c.exempt)
		}
	}
	contCases := []struct {
		pkg  string
		cont bool
	}{
		{"dclue/internal/netsim", true},
		{"continuation", true},             // the lint fixture stands in for a hot path
		{"dclue/internal/tcp", false},      // still hosts Dial/Mailbox for low-rate callers
		{"dclue/internal/platform", false}, // app threads remain goroutine-backed Procs
		{"dclue/internal/core", false},
	}
	for _, c := range contCases {
		if got := analyzers.ContinuationOnlyForTest(c.pkg); got != c.cont {
			t.Errorf("continuationOnly(%s)=%v, want %v", c.pkg, got, c.cont)
		}
	}
}
