package analyzers

import (
	"strings"

	"dclue/internal/lint/analysis"
)

// forbiddenRandPkgs are the randomness sources whose global state (or, for
// crypto/rand, the OS entropy pool) is outside the seeded derivation tree.
var forbiddenRandPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// Simrand forbids math/rand and crypto/rand everywhere but internal/rng.
// Every random draw in the simulator must come from an internal/rng stream
// derived from the run seed and a stable label — that is what makes a run a
// pure function of its parameters. The check flags the import itself
// (including blank and dot imports): there is no sanctioned use of these
// packages in model or test code, so no call-level granularity is needed.
var Simrand = &analysis.Analyzer{
	Name: "simrand",
	Doc:  "forbid global math/rand and crypto/rand outside internal/rng; randomness must come from seeded derived streams",
	Run:  runSimrand,
}

func runSimrand(pass *analysis.Pass) error {
	if globalRandExempt(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if forbiddenRandPkgs[path] {
				pass.Reportf(imp.Pos(),
					"import of %s in model code: derive a seeded stream via internal/rng (rng.Derive) instead", path)
			}
		}
	}
	return nil
}
