package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"dclue/internal/lint/analysis"
)

// Maporder flags order-sensitive work inside `range` over a map. Go
// randomizes map iteration order on purpose, so a map range whose body
// appends to an outer slice, sends on a channel, writes output, or
// schedules simulator events produces a different observable order every
// run — exactly the nondeterminism the byte-identical sweep tables and
// golden fixtures forbid. Commutative bodies (counting, set insertion,
// integer sums, delete) pass; to iterate in order, sort the keys into a
// slice first and range over that. Float accumulation inside a map range is
// Floatsum's half of this rule.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "forbid order-sensitive effects (append to outer slice, channel send, output, event scheduling) inside range over a map; sort keys first",
	Run:  runMaporder,
}

// orderSensitiveCallees are selector names whose call emits something in
// iteration order: formatted printing, direct writer access, and the sim
// calendar API (scheduling events in map order reorders the event calendar
// between runs).
var orderSensitiveCallees = map[string]string{
	"Print":       "printing",
	"Printf":      "printing",
	"Println":     "printing",
	"Fprint":      "printing",
	"Fprintf":     "printing",
	"Fprintln":    "printing",
	"Write":       "writing output",
	"WriteString": "writing output",
	"WriteByte":   "writing output",
	"WriteRune":   "writing output",
	"Spawn":       "scheduling simulator events",
	"After":       "scheduling simulator events",
	"At":          "scheduling simulator events",
}

func runMaporder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		sorts := collectSortCalls(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				return true
			}
			checkMapRangeBody(pass, rs, f, sorts)
			return true
		})
	}
	return nil
}

// sortCall is a call that establishes a deterministic order on its first
// argument (sort.Strings(keys) and friends).
type sortCall struct {
	root string // root identifier of the sorted expression
	pos  token.Pos
}

// sortFuncs are the sort/slices functions that order their first argument.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

func collectSortCalls(f *ast.File) []sortCall {
	var out []sortCall
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortFuncs[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || (id.Name != "sort" && id.Name != "slices") {
			return true
		}
		if root := rootIdent(call.Args[0]); root != "" {
			out = append(out, sortCall{root: root, pos: call.Pos()})
		}
		return true
	})
	return out
}

// rootIdent digs to the base identifier of an expression (possibly through
// selectors, indexes, derefs, and interface-adapter conversions like
// sort.Sort(byName(xs))).
func rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			if len(x.Args) != 1 {
				return ""
			}
			e = x.Args[0]
		default:
			return ""
		}
	}
}

// sortedAfter reports whether the expression appended to inside rs is
// passed to a sort function after the range but within the enclosing
// function — the sanctioned collect-then-sort idiom.
func sortedAfter(target ast.Expr, rs *ast.RangeStmt, f *ast.File, sorts []sortCall) bool {
	root := rootIdent(target)
	if root == "" {
		return false
	}
	end := enclosingFuncEnd(f, rs)
	for _, sc := range sorts {
		if sc.root == root && sc.pos > rs.End() && sc.pos <= end {
			return true
		}
	}
	return false
}

// enclosingFuncEnd returns the End of the smallest function literal or
// declaration containing n (or the file end if none).
func enclosingFuncEnd(f *ast.File, n ast.Node) token.Pos {
	end := f.End()
	ast.Inspect(f, func(fn ast.Node) bool {
		switch fn := fn.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if fn.Pos() <= n.Pos() && n.End() <= fn.End() && fn.End() <= end {
				end = fn.End()
			}
		}
		return true
	})
	return end
}

// isMapRange reports whether rs iterates a map.
func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody reports each order-sensitive operation in the body.
func checkMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt, f *ast.File, sorts []sortCall) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range reports its own body once, when the
			// inspector reaches it at the top level.
			if n != rs && isMapRange(pass, n) {
				return false
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: iteration order is random — sort the keys and range the slice")
		case *ast.AssignStmt:
			checkAppendToOuter(pass, rs, n, f, sorts)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if what, bad := orderSensitiveCallees[sel.Sel.Name]; bad {
					pass.Reportf(n.Pos(), "%s inside range over map: iteration order is random — sort the keys and range the slice", what)
				}
			}
		}
		return true
	})
}

// checkAppendToOuter flags `x = append(x, ...)` where x outlives the range
// statement and is not sorted afterwards: the resulting element order
// differs between runs. Collect-then-sort — appending inside the range and
// passing the slice to sort.X before the function returns — is the
// sanctioned idiom and passes.
func checkAppendToOuter(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, f *ast.File, sorts []sortCall) {
	for _, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		if declaredOutside(pass, call.Args[0], rs) && !sortedAfter(call.Args[0], rs, f, sorts) {
			pass.Reportf(call.Pos(), "append to %s inside range over map without a later sort: element order is random — sort the result or range sorted keys",
				types.ExprString(call.Args[0]))
		}
	}
}

// declaredOutside reports whether expr refers to storage declared outside
// the statement span [outer.Pos(), outer.End()]. Selector expressions
// (fields, package vars) always count as outside.
func declaredOutside(pass *analysis.Pass, expr ast.Expr, outer ast.Node) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return false // unresolved; do not guess
		}
		pos := obj.Pos()
		return pos != token.NoPos && (pos < outer.Pos() || pos > outer.End())
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return declaredOutside(pass, e.X, outer)
	case *ast.StarExpr:
		return declaredOutside(pass, e.X, outer)
	case *ast.ParenExpr:
		return declaredOutside(pass, e.X, outer)
	}
	return false
}
