package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"dclue/internal/lint/analysis"
)

// Eventid is the lifetime state machine for stored timer handles — the
// exact bug class the event-kernel rewrite had to hotfix twice (stale
// rtoTimer, stale mailbox waiter timer). A sim.EventID held in a struct
// field is a claim ticket on a heap slot; once the event fires or is
// cancelled the slot is recycled, and a stale field handed to Cancel later
// can revoke an unrelated event. The analyzer finds every assignment of an
// After/At result into an EventID field and proves the fire callback zeroes
// that field; every Cancel(recv.field) call must likewise be followed by a
// zeroing in the same function.
var Eventid = &analysis.Analyzer{
	Name: "eventid",
	Doc: "struct fields of type sim.EventID armed via At/After must be zeroed " +
		"on the fire-callback and cancel paths. EventIDs are generation-tagged " +
		"slot tickets into the recycled event heap; a field left holding a " +
		"fired or cancelled ticket is a stale handle whose slot another event " +
		"now owns. The callback may zero the field directly, or through a " +
		"method or same-package helper the analyzer can resolve; func-typed " +
		"fields are accepted when every assignment to them zeroes the field.",
	Run: runEventid,
}

// fieldKey names one EventID-holding struct field, "pkgpath.Type.field".
type fieldKey string

func runEventid(pass *analysis.Pass) error {
	v := &eventidVisitor{
		pass:     pass,
		zeroes:   make(map[*types.Func]map[fieldKey]bool),
		fieldFns: make(map[fieldKey][]ast.Expr),
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn := funcObjOf(pass, fd); fn != nil {
					v.decls = append(v.decls, fnDecl{fn, fd})
				}
			}
		}
	}
	v.buildZeroSets()
	v.collectFieldFns()
	for _, d := range v.decls {
		v.checkFunc(d.fn, d.fd)
	}
	return nil
}

// fnDecl pairs a declaration with its object; the analyzer walks functions
// in file order so diagnostics and field-value collection stay
// deterministic.
type fnDecl struct {
	fn *types.Func
	fd *ast.FuncDecl
}

type eventidVisitor struct {
	pass  *analysis.Pass
	decls []fnDecl
	// zeroes maps each package function to the EventID fields it provably
	// zeroes (directly or through same-package calls, to a fixpoint).
	zeroes map[*types.Func]map[fieldKey]bool
	// fieldFns gathers every value assigned to a func-typed struct field
	// anywhere in the package (`c.rtoFn = c.onRTO`), so a callback passed as
	// `c.rtoFn` can be checked against all its possible values.
	fieldFns map[fieldKey][]ast.Expr
}

func funcObjOf(pass *analysis.Pass, fd *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

// isEventID reports whether t is the sim package's EventID type.
func isEventID(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == "EventID" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// fieldKeyOf resolves a selector expression base.field of EventID (or any)
// type to its owning struct's key. ok is false when the base is not a named
// struct (or pointer to one).
func (v *eventidVisitor) fieldKeyOf(sel *ast.SelectorExpr) (fieldKey, bool) {
	t := v.pass.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return "", false
	}
	return fieldKey(n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + sel.Sel.Name), true
}

// keyLabel renders a field key for diagnostics without the package path.
func keyLabel(k fieldKey) string {
	s := string(k)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return s[i+1:]
		}
	}
	return s
}

// isZeroAssign reports whether stmt assigns a zero EventID composite
// literal into an EventID field, returning that field's key.
func (v *eventidVisitor) isZeroAssign(stmt ast.Stmt) (fieldKey, bool) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
	if !ok || !isEventID(v.pass.TypeOf(sel)) {
		return "", false
	}
	cl, ok := ast.Unparen(as.Rhs[0]).(*ast.CompositeLit)
	if !ok || len(cl.Elts) != 0 || !isEventID(v.pass.TypeOf(cl)) {
		return "", false
	}
	return v.fieldKeyOf(sel)
}

// calleeFunc resolves a call to its *types.Func (methods included).
func (v *eventidVisitor) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := v.pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if s, ok := v.pass.TypesInfo.Selections[fun]; ok {
			f, _ := s.Obj().(*types.Func)
			return f
		}
		f, _ := v.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// buildZeroSets computes, to a fixpoint, which EventID fields each package
// function zeroes: direct `recv.f = sim.EventID{}` assignments plus the
// zero sets of same-package functions it calls unconditionally or not —
// the analysis is may-not-must on purpose: a callback that zeroes the field
// on only some paths still shows intent, and path-splitting every callback
// would drown the real bug class (no zeroing anywhere) in noise.
func (v *eventidVisitor) buildZeroSets() {
	for _, d := range v.decls {
		v.zeroes[d.fn] = make(map[fieldKey]bool)
	}
	for changed := true; changed; {
		changed = false
		for _, d := range v.decls {
			set := v.zeroes[d.fn]
			ast.Inspect(d.fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if k, ok := v.isZeroAssign(n); ok && !set[k] {
						set[k] = true
						changed = true
					}
				case *ast.CallExpr:
					if callee := v.calleeFunc(n); callee != nil {
						for k := range v.zeroes[callee] {
							if !set[k] {
								set[k] = true
								changed = true
							}
						}
					}
				}
				return true
			})
		}
	}
}

// collectFieldFns records every expression assigned to a func()-typed
// struct field in the package.
func (v *eventidVisitor) collectFieldFns() {
	for _, d := range v.decls {
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if _, isSig := v.pass.TypeOf(sel).Underlying().(*types.Signature); !isSig {
					continue
				}
				if k, ok := v.fieldKeyOf(sel); ok {
					v.fieldFns[k] = append(v.fieldFns[k], as.Rhs[i])
				}
			}
			return true
		})
	}
}

// checkFunc scans one function for arm sites and Cancel calls.
func (v *eventidVisitor) checkFunc(fn *types.Func, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			v.checkArm(n)
		case *ast.CallExpr:
			v.checkCancel(fn, n)
		}
		return true
	})
}

// checkArm handles `recv.field = <sim>.After(d, cb)` / `.At(t, cb)`: the
// callback must zero the field.
func (v *eventidVisitor) checkArm(as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
	if !ok || !isEventID(v.pass.TypeOf(sel)) {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := v.calleeFunc(call)
	if callee == nil || (callee.Name() != "After" && callee.Name() != "At") {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || !isEventID(sig.Results().At(0).Type()) {
		return
	}
	key, ok := v.fieldKeyOf(sel)
	if !ok || len(call.Args) < 2 {
		return
	}
	v.checkCallback(call.Args[len(call.Args)-1], key, as.Pos())
}

// checkCallback proves one callback value zeroes key, recursing through
// func-typed fields. armPos anchors the diagnostic.
func (v *eventidVisitor) checkCallback(cb ast.Expr, key fieldKey, armPos token.Pos) {
	switch cb := ast.Unparen(cb).(type) {
	case *ast.FuncLit:
		if !v.litZeroes(cb, key) {
			v.pass.Reportf(armPos,
				"sim.EventID field %s is armed here but the callback never zeroes it; a fired timer leaves a stale handle that a later Cancel can revoke someone else's event with",
				keyLabel(key))
		}
	case *ast.Ident, *ast.SelectorExpr:
		// Method value (c.onRTO), package function, or func-typed field
		// (c.rtoFn): resolve what actually runs.
		if fn := v.funcValue(cb); fn != nil {
			if !v.zeroes[fn][key] {
				v.pass.Reportf(armPos,
					"sim.EventID field %s is armed here but callback %s never zeroes it; the fired timer leaves a stale handle",
					keyLabel(key), fn.Name())
			}
			return
		}
		if sel, ok := cb.(*ast.SelectorExpr); ok {
			if fk, ok := v.fieldKeyOf(sel); ok {
				if vals := v.fieldFns[fk]; len(vals) > 0 {
					for _, val := range vals {
						v.checkCallback(val, key, armPos)
					}
					return
				}
			}
		}
		v.reportUnresolvable(armPos, key)
	default:
		v.reportUnresolvable(armPos, key)
	}
}

// funcValue resolves a method value or function identifier to its
// *types.Func (nil for func-typed variables and fields).
func (v *eventidVisitor) funcValue(e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := v.pass.TypesInfo.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if s, ok := v.pass.TypesInfo.Selections[e]; ok {
			f, _ := s.Obj().(*types.Func)
			return f
		}
		f, _ := v.pass.TypesInfo.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

func (v *eventidVisitor) reportUnresolvable(armPos token.Pos, key fieldKey) {
	v.pass.Reportf(armPos,
		"sim.EventID field %s is armed with a callback the analyzer cannot resolve; use a func literal, method value, or func-typed field so the zeroing obligation can be checked",
		keyLabel(key))
}

// litZeroes reports whether a func literal zeroes key, directly or through
// a resolvable call.
func (v *eventidVisitor) litZeroes(lit *ast.FuncLit, key fieldKey) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if k, ok := v.isZeroAssign(n); ok && k == key {
				found = true
			}
		case *ast.CallExpr:
			if callee := v.calleeFunc(n); callee != nil && v.zeroes[callee][key] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkCancel handles `<sim>.Cancel(recv.field)`: the enclosing function
// must zero the field (before or after — may-analysis, see buildZeroSets).
func (v *eventidVisitor) checkCancel(enclosing *types.Func, call *ast.CallExpr) {
	callee := v.calleeFunc(call)
	if callee == nil || callee.Name() != "Cancel" || callee.Pkg() == nil || callee.Pkg().Name() != "sim" {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || !isEventID(sig.Params().At(0).Type()) {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	if !ok || !isEventID(v.pass.TypeOf(sel)) {
		return
	}
	key, ok := v.fieldKeyOf(sel)
	if !ok {
		return
	}
	if !v.zeroes[enclosing][key] {
		v.pass.Reportf(call.Pos(),
			"sim.EventID field %s is cancelled here but never zeroed in %s; the stale handle can match a recycled event slot",
			keyLabel(key), enclosing.Name())
	}
}
