package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dclue/internal/lint/analysis"
)

// Tracenil enforces the zero-cost untraced fast path: Params.Trace and the
// handles derived from it (trace.Collector, trace.Run, trace.Span) are nil
// on every untraced run, so model code may only call their methods behind a
// nil check. A missing guard is a nil-pointer crash on the common path that
// no traced test would ever see. The analyzer tracks guards flow-lite:
//
//   - `if h != nil { ... }` (including `h != nil && ...` conjuncts) guards
//     the branch; `if h == nil { return }` guards the rest of the block;
//   - a variable assigned from a `New...` constructor, a composite literal,
//     or an already-guarded expression is known non-nil;
//   - `range` value variables are assumed non-nil (collections of handles
//     hold live handles).
//
// The trace package itself — the implementation those guards protect — is
// exempt, matched by package name so the fixture's miniature trace package
// behaves like the real one.
var Tracenil = &analysis.Analyzer{
	Name: "tracenil",
	Doc:  "require a nil check around every call on a trace handle (Collector/Run/Span); untraced runs carry nil handles on the fast path",
	Run:  runTracenil,
}

// nilRule parametrizes the nil-guard analyzers (tracenil, telemnil): which
// package declares the nilable handle types and how the diagnostic words
// the disabled fast path. The declaring package itself is exempt — its
// methods are the implementation the guards protect — matched by package
// name so each fixture's miniature package behaves like the real one.
type nilRule struct {
	pkg     string          // package name declaring the handle types
	handles map[string]bool // nilable handle type names within that package
	offPath string          // adjective for the handle-disabled fast path
}

// traceRule: the nilable span-observability handle types, by name within
// any package named "trace".
var traceRule = &nilRule{
	pkg: "trace",
	handles: map[string]bool{
		"Collector": true,
		"Run":       true,
		"Span":      true,
	},
	offPath: "untraced",
}

func runTracenil(pass *analysis.Pass) error { return runNilRule(pass, traceRule) }

func runNilRule(pass *analysis.Pass, rule *nilRule) error {
	if pass.Pkg.Name() == rule.pkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			v := &nilVisitor{pass: pass, rule: rule}
			v.stmts(fd.Body.List, newGuards())
		}
	}
	return nil
}

// guards is the set of expressions (by printed form) known non-nil at the
// current program point.
type guards map[string]bool

func newGuards() guards { return make(guards) }

func (g guards) clone() guards {
	c := make(guards, len(g))
	for k, v := range g {
		c[k] = v
	}
	return c
}

type nilVisitor struct {
	pass *analysis.Pass
	rule *nilRule
}

// stmts visits a statement list, applying the early-exit guard pattern:
// after `if h == nil { return }`, h is non-nil for the rest of the list.
func (v *nilVisitor) stmts(list []ast.Stmt, g guards) {
	for _, s := range list {
		v.stmt(s, g)
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil {
			if e, isNilEq := nilCompare(ifs.Cond, token.EQL); isNilEq && terminates(ifs.Body) {
				g[types.ExprString(e)] = true
			}
		}
	}
}

func (v *nilVisitor) stmt(s ast.Stmt, g guards) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		v.stmts(s.List, g.clone())
	case *ast.IfStmt:
		v.stmt(s.Init, g)
		condG := g.clone()
		v.cond(s.Cond, condG) // checks calls in the cond, collecting conjunct guards
		thenG := g.clone()
		addNonNil(s.Cond, thenG)
		v.stmt(s.Body, thenG)
		if s.Else != nil {
			elseG := g.clone()
			if e, ok := nilCompare(s.Cond, token.EQL); ok {
				elseG[types.ExprString(e)] = true
			}
			v.stmt(s.Else, elseG)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			v.expr(r, g)
		}
		v.trackAssign(s, g)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						v.expr(val, g)
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && v.nonNilExpr(vs.Values[i], g) {
							g[name.Name] = true
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		v.expr(s.X, g)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			v.expr(e, g)
		}
	case *ast.RangeStmt:
		v.expr(s.X, g)
		body := g.clone()
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				body[id.Name] = true
			}
		}
		v.stmts(s.Body.List, body)
	case *ast.ForStmt:
		inner := g.clone()
		v.stmt(s.Init, inner)
		if s.Cond != nil {
			v.expr(s.Cond, inner)
		}
		v.stmt(s.Post, inner)
		v.stmts(s.Body.List, inner)
	case *ast.SwitchStmt:
		v.stmt(s.Init, g)
		if s.Tag != nil {
			v.expr(s.Tag, g)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					v.expr(e, g)
				}
				v.stmts(cc.Body, g.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		v.stmt(s.Init, g)
		v.stmt(s.Assign, g)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.stmts(cc.Body, g.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				v.stmt(cc.Comm, g)
				v.stmts(cc.Body, g.clone())
			}
		}
	case *ast.GoStmt:
		v.expr(s.Call, g)
	case *ast.DeferStmt:
		v.expr(s.Call, g)
	case *ast.SendStmt:
		v.expr(s.Chan, g)
		v.expr(s.Value, g)
	case *ast.LabeledStmt:
		v.stmt(s.Stmt, g)
	case *ast.IncDecStmt:
		v.expr(s.X, g)
	}
}

// trackAssign updates guard state for `x := rhs` / `x = rhs` forms.
func (v *nilVisitor) trackAssign(s *ast.AssignStmt, g guards) {
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			key := types.ExprString(lhs)
			if v.nonNilExpr(s.Rhs[i], g) {
				g[key] = true
			} else {
				delete(g, key)
			}
		}
		return
	}
	// Multi-value assignment: no guarantees about any target.
	for _, lhs := range s.Lhs {
		delete(g, types.ExprString(lhs))
	}
}

// nonNilExpr reports whether e is statically known non-nil: a New*
// constructor call, a composite literal (or its address), or an expression
// already guarded.
func (v *nilVisitor) nonNilExpr(e ast.Expr, g guards) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			return strings.HasPrefix(fun.Name, "New")
		case *ast.SelectorExpr:
			return strings.HasPrefix(fun.Sel.Name, "New")
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CompositeLit:
		return true
	case *ast.IndexExpr:
		// Indexing a collection of handles: same live-handle assumption as
		// range values (a collector's Runs() slice holds live runs).
		return true
	default:
		return g[types.ExprString(e)]
	}
	return false
}

// cond walks a boolean condition left to right: in `a != nil && a.F()`,
// the left conjunct's guarantee covers the right conjunct.
func (v *nilVisitor) cond(e ast.Expr, g guards) {
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.LAND {
		v.cond(be.X, g)
		addNonNil(be.X, g)
		v.cond(be.Y, g)
		return
	}
	v.expr(e, g)
}

// expr recursively checks an expression tree for unguarded trace-handle
// calls.
func (v *nilVisitor) expr(e ast.Expr, g guards) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		v.checkCall(e, g)
		v.expr(e.Fun, g)
		for _, a := range e.Args {
			v.expr(a, g)
		}
	case *ast.SelectorExpr:
		v.expr(e.X, g)
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			v.cond(e, g.clone())
			return
		}
		v.expr(e.X, g)
		v.expr(e.Y, g)
	case *ast.UnaryExpr:
		v.expr(e.X, g)
	case *ast.ParenExpr:
		v.expr(e.X, g)
	case *ast.StarExpr:
		v.expr(e.X, g)
	case *ast.IndexExpr:
		v.expr(e.X, g)
		v.expr(e.Index, g)
	case *ast.SliceExpr:
		v.expr(e.X, g)
	case *ast.TypeAssertExpr:
		v.expr(e.X, g)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v.expr(el, g)
		}
	case *ast.KeyValueExpr:
		v.expr(e.Value, g)
	case *ast.FuncLit:
		// A closure created here inherits the syntactic guard context of
		// its creation site.
		v.stmts(e.Body.List, g.clone())
	}
}

// checkCall reports a method call on a possibly-nil trace handle.
func (v *nilVisitor) checkCall(call *ast.CallExpr, g guards) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := sel.X
	if id, ok := recv.(*ast.Ident); ok {
		if _, isPkg := v.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			return // package-qualified function call, not a method
		}
	}
	name, ok := v.rule.handleType(v.pass.TypeOf(recv))
	if !ok {
		return
	}
	if v.nonNilExpr(recv, g) || g[types.ExprString(recv)] {
		return
	}
	v.pass.Reportf(call.Pos(),
		"call to (%s).%s on a possibly-nil %s handle (*%s.%s): the %s fast path needs `if %s != nil` first",
		types.ExprString(recv), sel.Sel.Name, v.rule.pkg, v.rule.pkg, name, v.rule.offPath, types.ExprString(recv))
}

// handleType reports whether t (or its pointee) is one of the rule's
// nilable handle types, declared in the rule's package (matched by name).
func (r *nilRule) handleType(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != r.pkg {
		return "", false
	}
	if !r.handles[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// nilCompare matches `e <op> nil` / `nil <op> e`, returning e.
func nilCompare(cond ast.Expr, op token.Token) (ast.Expr, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return nil, false
	}
	if isNilIdent(be.Y) {
		return be.X, true
	}
	if isNilIdent(be.X) {
		return be.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// addNonNil folds the non-nil guarantees of cond into g: `e != nil`
// conjuncts, recursively through &&.
func addNonNil(cond ast.Expr, g guards) {
	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op == token.LAND {
		addNonNil(be.X, g)
		addNonNil(be.Y, g)
		return
	}
	if e, ok := nilCompare(cond, token.NEQ); ok {
		g[types.ExprString(e)] = true
	}
}

// terminates reports whether a block always leaves the enclosing statement
// list (return, break, continue, goto, panic, or a Fatal*/Exit call last).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			n := fun.Sel.Name
			return strings.HasPrefix(n, "Fatal") || n == "Exit" || n == "Goexit"
		}
	}
	return false
}
