// Package analyzers holds dcluevet's determinism and lifetime lint suite:
// nine analyzers that enforce, at the source level, the invariants the
// runtime tests (fingerprint determinism, golden figures, trace and
// telemetry non-perturbation, pool balance) can only observe after the
// fact. Each analyzer documents the invariant it guards;
// internal/lint/RULES.md is the human catalog.
package analyzers

import (
	"strings"

	"dclue/internal/lint/analysis"
)

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Simtime,
		Simrand,
		Maporder,
		Goroutine,
		Floatsum,
		Tracenil,
		Telemnil,
		Poolown,
		Eventid,
	}
}

// Known returns the set of analyzer names, for validating //lint:allow
// directives.
func Known() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// Sanctioned-package policy. Paths are import paths within this module;
// fixture packages (testdata/src/...) have bare paths and are never exempt,
// which is what the fixtures rely on.

// wallClockPkgs may read the wall clock: the CLIs (which time and stamp
// real runs) and cliutil (the single sanctioned wall-clock helper,
// cliutil.NowUTC). The lint tree itself is tooling, not model code.
func wallClockExempt(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "dclue/cmd/") ||
		pkgPath == "dclue/internal/cliutil" ||
		strings.HasPrefix(pkgPath, "dclue/internal/lint")
}

// globalRandExempt: internal/rng is the randomness root; every other
// package must derive streams from it.
func globalRandExempt(pkgPath string) bool {
	return pkgPath == "dclue/internal/rng" ||
		strings.HasPrefix(pkgPath, "dclue/internal/lint")
}

// concurrencyExempt: internal/sim owns the coroutine kernel,
// internal/runner owns the work-stealing sweep pool, and internal/farm owns
// the multi-process sweep coordinator (goroutine-per-worker dispatch); all
// other model code must be single-threaded from the kernel's point of view.
func concurrencyExempt(pkgPath string) bool {
	return pkgPath == "dclue/internal/sim" ||
		pkgPath == "dclue/internal/runner" ||
		pkgPath == "dclue/internal/farm" ||
		strings.HasPrefix(pkgPath, "dclue/internal/lint")
}

// continuationOnly lists the hot-path packages rebuilt as continuation
// (callback) actors: they run at per-packet/per-segment event rates where a
// goroutine-backed sim.Proc step costs two real context switches, so
// reintroducing Proc or Mailbox there would silently undo the kernel
// speedup. The bare "continuation" path is the lint fixture standing in for
// a real hot-path package (fixture packages have bare import paths).
func continuationOnly(pkgPath string) bool {
	return pkgPath == "dclue/internal/netsim" ||
		pkgPath == "continuation"
}

