package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"dclue/internal/lint/analysis"
)

// Floatsum flags float accumulation in map-iteration order. Floating-point
// addition is not associative: summing the same set of values in two
// different orders can change the low bits, and every metric in
// core.Metrics feeds the run fingerprint where a single ULP is a
// determinism failure. Accumulating over slices is fine (slice order is
// deterministic); accumulating inside `range` over a map is not. Sort the
// keys first, or accumulate into a keyed slice and sum that.
var Floatsum = &analysis.Analyzer{
	Name: "floatsum",
	Doc:  "forbid floating-point accumulation (+=, -=, *=, /=) into outer variables inside range over a map; the sum depends on iteration order",
	Run:  runFloatsum,
}

var accumOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func runFloatsum(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				return true
			}
			ast.Inspect(rs.Body, func(inner ast.Node) bool {
				as, ok := inner.(*ast.AssignStmt)
				if !ok || !accumOps[as.Tok] || len(as.Lhs) != 1 {
					return true
				}
				lhs := as.Lhs[0]
				if !isFloat(pass.TypeOf(lhs)) || !declaredOutside(pass, lhs, rs) {
					return true
				}
				pass.Reportf(as.Pos(),
					"float accumulation into %s inside range over map: float addition is order-sensitive and the iteration order is random — sort the keys first",
					types.ExprString(lhs))
				return true
			})
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
