package analyzers

import (
	"go/ast"

	"dclue/internal/lint/analysis"
)

// wallClockFuncs are the package time functions that read or wait on the
// wall clock. Types and constants (time.Duration, time.RFC3339, time.Second)
// stay usable everywhere; only clock access is restricted.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Simtime forbids wall-clock access in model code. Every duration a
// simulated component experiences must come from the sim clock
// (sim.Sim.Now / After / At); a single time.Now() in a model package makes
// two runs of the same seed diverge. The CLIs and internal/cliutil (home of
// the one sanctioned wall-clock helper, cliutil.NowUTC) are exempt, as are
// _test.go files — the test harness may time itself, the model may not.
var Simtime = &analysis.Analyzer{
	Name: "simtime",
	Doc:  "forbid time.Now/Since/Sleep/After and friends outside cmd/ and internal/cliutil; model code must use the sim clock",
	Run:  runSimtime,
}

func runSimtime(pass *analysis.Pass) error {
	if wallClockExempt(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if path, isPkg := pass.PkgNameOf(f, id); isPkg && path == "time" {
				pass.Reportf(sel.Pos(),
					"wall-clock access time.%s in model code: use the sim clock (sim.Sim.Now/After) or, from a CLI, cliutil.NowUTC", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
