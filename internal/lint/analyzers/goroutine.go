package analyzers

import (
	"go/ast"

	"dclue/internal/lint/analysis"
)

// Goroutine confines real concurrency to the two packages built for it:
// internal/sim (the coroutine kernel — one runnable goroutine at a time by
// construction) and internal/runner (the work-stealing sweep pool, whose
// merge step restores point order). A `go` statement, channel, or
// sync.WaitGroup anywhere else introduces scheduling nondeterminism the
// kernel cannot serialize, which the byte-identical-sweep regression would
// only catch after the fact. sync.Mutex stays legal everywhere: mutual
// exclusion protects shared state without creating concurrency. Test files
// are exempt — the test harness may spawn helpers; model code may not.
//
// The analyzer also knows the continuation actor style: packages on the
// continuation-only list (see continuationOnly) are per-packet hot paths
// that were deliberately rebuilt as callback state machines, where each
// goroutine-backed sim.Proc step would cost two real context switches.
// There it additionally flags the goroutine-backed kernel primitives —
// naming the sim.Proc or sim.Mailbox types, or calling sim.NewMailbox —
// since any use of the process API has to name one of them. Pure callback
// scheduling (sim.After/At, EventID) stays legal everywhere.
var Goroutine = &analysis.Analyzer{
	Name: "goroutine",
	Doc:  "forbid go statements, channels, and sync.WaitGroup outside internal/sim and internal/runner; forbid goroutine-backed sim primitives in continuation-only packages",
	Run:  runGoroutine,
}

func runGoroutine(pass *analysis.Pass) error {
	if concurrencyExempt(pass.PkgPath) {
		return nil
	}
	contOnly := continuationOnly(pass.PkgPath)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned outside the sanctioned concurrency packages (internal/sim, internal/runner): model code must run single-threaded under the sim kernel")
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type outside the sanctioned concurrency packages (internal/sim, internal/runner): use sim.Mailbox for model-level message passing")
				return false // one report per channel type, not per nesting
			case *ast.SelectorExpr:
				id, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				switch n.Sel.Name {
				case "WaitGroup":
					if path, isPkg := pass.PkgNameOf(f, id); isPkg && path == "sync" {
						pass.Reportf(n.Pos(), "sync.WaitGroup outside the sanctioned concurrency packages (internal/sim, internal/runner)")
					}
				case "Proc", "Mailbox", "NewMailbox":
					if !contOnly {
						return true
					}
					if path, isPkg := pass.PkgNameOf(f, id); isPkg && isSimImport(path) {
						pass.Reportf(n.Pos(), "sim.%s in a continuation-only package: this hot path runs as callback state machines; goroutine-backed processes would reintroduce two context switches per event", n.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isSimImport matches the kernel package by full module path or by the bare
// fixture path.
func isSimImport(path string) bool {
	return path == "dclue/internal/sim" || path == "sim"
}
