package analyzers

import (
	"go/ast"

	"dclue/internal/lint/analysis"
)

// Goroutine confines real concurrency to the two packages built for it:
// internal/sim (the coroutine kernel — one runnable goroutine at a time by
// construction) and internal/runner (the work-stealing sweep pool, whose
// merge step restores point order). A `go` statement, channel, or
// sync.WaitGroup anywhere else introduces scheduling nondeterminism the
// kernel cannot serialize, which the byte-identical-sweep regression would
// only catch after the fact. sync.Mutex stays legal everywhere: mutual
// exclusion protects shared state without creating concurrency. Test files
// are exempt — the test harness may spawn helpers; model code may not.
var Goroutine = &analysis.Analyzer{
	Name: "goroutine",
	Doc:  "forbid go statements, channels, and sync.WaitGroup outside internal/sim and internal/runner",
	Run:  runGoroutine,
}

func runGoroutine(pass *analysis.Pass) error {
	if concurrencyExempt(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned outside the sanctioned concurrency packages (internal/sim, internal/runner): model code must run single-threaded under the sim kernel")
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type outside the sanctioned concurrency packages (internal/sim, internal/runner): use sim.Mailbox for model-level message passing")
				return false // one report per channel type, not per nesting
			case *ast.SelectorExpr:
				if n.Sel.Name != "WaitGroup" {
					return true
				}
				if id, ok := n.X.(*ast.Ident); ok {
					if path, isPkg := pass.PkgNameOf(f, id); isPkg && path == "sync" {
						pass.Reportf(n.Pos(), "sync.WaitGroup outside the sanctioned concurrency packages (internal/sim, internal/runner)")
					}
				}
			}
			return true
		})
	}
	return nil
}
