// Fixture for the simtime analyzer: wall-clock access in model code.
package simtime

import "time"

// Constants and types from package time stay legal everywhere.
const tick = 5 * time.Millisecond

func modelStep() time.Duration {
	start := time.Now() // want `wall-clock access time\.Now`
	time.Sleep(tick)    // want `wall-clock access time\.Sleep`
	return time.Since(start) // want `wall-clock access time\.Since`
}

func deadline() <-chan time.Time {
	return time.After(tick) // want `wall-clock access time\.After`
}

func suppressed() time.Time {
	//lint:allow simtime fixture demonstrates a justified suppression
	return time.Now()
}

func alsoSuppressedInline() time.Time {
	return time.Now() //lint:allow simtime trailing-comment form
}
