// Package eventid is the fixture for the stored-timer-handle analyzer: a
// miniature of the conn/platform timer shapes (direct literal callback,
// method value, func-typed field, transitive zero through a helper) seeded
// with the stale-EventID bugs the event-kernel hotfixes fixed by hand.
package eventid

import "sim"

type Conn struct {
	s     *sim.Sim
	timer sim.EventID
	rtoFn func()
}

func (c *Conn) fire() {}

func (c *Conn) onFire() {
	c.timer = sim.EventID{}
	c.fire()
}

// --- violations ---

func (c *Conn) armNoZero(d sim.Time) {
	c.timer = c.s.After(d, func() { c.fire() }) // want `never zeroes`
}

func (c *Conn) armOpaque(d sim.Time, cb func()) {
	c.timer = c.s.After(d, cb) // want `cannot resolve`
}

type Svc struct {
	s  *sim.Sim
	ev sim.EventID
}

func (s *Svc) cancelNoZero() {
	s.s.Cancel(s.ev) // want `never zeroed`
}

// Looper's func-typed field only ever holds a non-zeroing step.
type Looper struct {
	s    *sim.Sim
	tick sim.EventID
	fn   func()
}

func (l *Looper) step() {}

func (l *Looper) setup() {
	l.fn = l.step
}

func (l *Looper) armViaBadField(d sim.Time) {
	l.tick = l.s.After(d, l.fn) // want `never zeroes`
}

// --- suppressed ---

func (c *Conn) armSuppressed(d sim.Time) {
	c.timer = c.s.After(d, c.fire) //lint:allow eventid fixture pins the suppression path
}

// --- clean ---

func (c *Conn) armLiteral(d sim.Time) {
	c.timer = c.s.After(d, func() {
		c.timer = sim.EventID{}
		c.fire()
	})
}

func (c *Conn) armMethodValue(d sim.Time) {
	c.timer = c.s.After(d, c.onFire)
}

// armViaField is the real conn's shape: the callback lives in a func-typed
// field whose every assignment must zero the timer.
func (c *Conn) setup() {
	c.rtoFn = c.onFire
}

func (c *Conn) armViaField(d sim.Time) {
	c.timer = c.s.After(d, c.rtoFn)
}

func (c *Conn) cancelAndZero() {
	c.s.Cancel(c.timer)
	c.timer = sim.EventID{}
}

func (s *Svc) finish() {
	s.ev = sim.EventID{}
}

// armTransitive is the platform's shape: the literal zeroes through a
// helper method.
func (s *Svc) armTransitive(t sim.Time) {
	s.ev = s.s.At(t, func() { s.finish() })
}

// localsCarryNoObligation: only struct fields hold handles across events.
func localOK(s *sim.Sim) {
	id := s.After(1, func() {})
	s.Cancel(id)
}

// locks is the db-style Cancel with a different signature; type matching
// must not confuse it with sim.Cancel.
type locks struct{}

func (l *locks) Cancel(res int, txn int) {}

func unrelatedCancelOK(l *locks) {
	l.Cancel(1, 2)
}
