// Fixture for the goroutine analyzer's continuation-only rule: this package
// path is on the continuation-only list, standing in for a per-packet hot
// path (the real entry is dclue/internal/netsim). Goroutine-backed kernel
// primitives are flagged; pure callback scheduling is not.
package continuation

import "sim"

type actor struct {
	s    *sim.Sim
	ev   sim.EventID
	step func()
}

// Callback scheduling is the sanctioned style: no diagnostics.
func newActor(s *sim.Sim) *actor {
	a := &actor{s: s}
	a.step = func() { a.ev = a.s.After(1, a.step) }
	return a
}

func (a *actor) stop() { a.s.Cancel(a.ev) }

type server struct {
	inbox *sim.Mailbox // want `sim\.Mailbox in a continuation-only package`
}

func makeInbox(s *sim.Sim) *sim.Mailbox { // want `sim\.Mailbox in a continuation-only package`
	return sim.NewMailbox(s) // want `sim\.NewMailbox in a continuation-only package`
}

func serve(s *sim.Sim) {
	s.Spawn("srv", func(p *sim.Proc) { // want `sim\.Proc in a continuation-only package`
		p.Sleep(1)
	})
}

func suppressed(s *sim.Sim) {
	//lint:allow goroutine fixture demonstrates a justified suppression
	_ = sim.NewMailbox(s)
}
