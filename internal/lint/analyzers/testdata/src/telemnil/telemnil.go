// Fixture for the telemnil analyzer: telemetry-handle calls must be
// guarded — untelemetered runs carry nil handles on the hot path.
package telemnil

import "telemetry"

type params struct {
	Telemetry *telemetry.Collector
}

type link struct {
	tel *telemetry.LinkTel
}

type cluster struct {
	reg *telemetry.Registry
}

func build(p params) *cluster {
	c := &cluster{}
	c.reg = p.Telemetry.NewRegistry("run") // want `call to \(p\.Telemetry\)\.NewRegistry on a possibly-nil telemetry handle`
	return c
}

func buildGuarded(p params) *cluster {
	c := &cluster{}
	if p.Telemetry != nil {
		c.reg = p.Telemetry.NewRegistry("run") // guarded: no diagnostic
	}
	return c
}

func (l *link) serDone(from, to int64) {
	l.tel.OnTransmit(from, to) // want `call to \(l\.tel\)\.OnTransmit on a possibly-nil telemetry handle`
}

func (l *link) serDoneGuarded(from, to int64) {
	if l.tel == nil {
		return
	}
	l.tel.OnTransmit(from, to) // early-exit guard: no diagnostic
}

func (l *link) serDoneInline(from, to int64) {
	if l.tel != nil {
		l.tel.OnTransmit(from, to) // guarded: no diagnostic
	}
}

func hookAll(c *cluster) {
	var lt *telemetry.LinkTel
	if c.reg != nil {
		lt = c.reg.NewLink("node0.up")
	}
	lt.OnTransmit(0, 1) // want `call to \(lt\)\.OnTransmit on a possibly-nil telemetry handle`
	if lt != nil {
		lt.OnTransmit(0, 1) // guarded: no diagnostic
	}
}

// Constructor results and collection elements are live handles.
func constructorsAndCollections() {
	col := telemetry.NewCollector(0)
	reg := col.NewRegistry("x")
	lt := reg.NewLink("up")
	lt.OnTransmit(0, 1)
	for _, r := range col.Registries() {
		r.NewLink("down")
	}
	col.Registries()[0].NewLink("again")
}

// A closure created inside a guarded region inherits the guard.
func closureInherits(l *link) func() {
	if l.tel != nil {
		return func() { l.tel.OnTransmit(0, 1) }
	}
	return func() {}
}

func suppressed(l *link) {
	//lint:allow telemnil the caller attaches the instrument before any event fires
	l.tel.OnTransmit(0, 1)
}
