// Package sim is a miniature of dclue/internal/sim for the continuation
// fixture: just enough surface to exercise the goroutine analyzer's
// continuation-only rule (Proc/Mailbox/NewMailbox flagged, After/EventID
// legal).
package sim

type Time int64

type EventID struct{ slot, gen int32 }

type Sim struct{}

func (s *Sim) After(d Time, fn func()) EventID { fn(); return EventID{} }

func (s *Sim) At(t Time, fn func()) EventID { fn(); return EventID{} }

func (s *Sim) Cancel(id EventID) {}

type Proc struct{}

func (p *Proc) Sleep(d Time) {}

func (s *Sim) Spawn(name string, fn func(*Proc)) *Proc { return &Proc{} }

type Mailbox struct{}

func NewMailbox(s *Sim) *Mailbox { return &Mailbox{} }

func (m *Mailbox) Recv(p *Proc) any { return nil }
