// Package poolown is the fixture for the pooled-object ownership analyzer:
// a miniature of the netsim packet pool (alloc/free/send/deliver) seeded
// with the lifetime bugs the real contracts forbid. Clean functions at the
// bottom pin the patterns the analyzer must stay silent on.
package poolown

type Packet struct {
	Size    int
	Payload any
	next    *Packet
}

type Net struct {
	free *Packet
	q    []*Packet
}

// AllocPacket takes a packet off the free list; the caller owns it and
// must free or hand it off on every path.
//
//pool:alloc
func (n *Net) AllocPacket() *Packet {
	p := n.free
	if p == nil {
		return &Packet{}
	}
	n.free = p.next
	return p
}

// freePacket returns a packet to the free list.
//
//pool:free
func (n *Net) freePacket(p *Packet) {
	p.next = n.free
	n.free = p
}

// Send takes ownership of the packet and queues it for the wire.
//
//pool:sink
func (n *Net) Send(p *Packet) {
	n.q = append(n.q, p)
}

// dequeue hands an owned packet back to the caller; nil when empty.
//
//pool:alloc
func (n *Net) dequeue() *Packet {
	if len(n.q) == 0 {
		return nil
	}
	p := n.q[0]
	n.q = n.q[1:]
	return p
}

type Endpoint interface {
	// Deliver hands the endpoint a packet for the duration of the call
	// only; the network frees it afterwards.
	//
	//pool:borrow
	Deliver(p *Packet)
}

// --- violations ---

func leak(n *Net) {
	pkt := n.AllocPacket() // want `allocated here leaks`
	_ = pkt.Size
}

func leakEarlyReturn(n *Net, drop bool) {
	pkt := n.AllocPacket() // want `allocated here leaks`
	if drop {
		return // this path forgets the packet
	}
	n.freePacket(pkt)
}

func doubleFree(n *Net) {
	pkt := n.AllocPacket()
	n.freePacket(pkt)
	n.freePacket(pkt) // want `freed twice`
}

// release has no directive: its free summary is derived from the body, so
// the double free below is caught across the call.
func release(n *Net, p *Packet) {
	n.freePacket(p)
}

func doubleFreeViaHelper(n *Net) {
	pkt := n.AllocPacket()
	release(n, pkt)
	n.freePacket(pkt) // want `freed twice`
}

func useAfterFree(n *Net) {
	pkt := n.AllocPacket()
	n.freePacket(pkt)
	_ = pkt.Size // want `after it was freed`
}

func sendTwice(n *Net) {
	pkt := n.AllocPacket()
	n.Send(pkt)
	n.Send(pkt) // want `handed off twice`
}

// badFreeingEndpoint violates Deliver's borrow contract by freeing.
type badFreeingEndpoint struct{ n *Net }

func (b *badFreeingEndpoint) Deliver(p *Packet) {
	b.n.freePacket(p) // want `borrowed`
}

// badRetainingEndpoint violates it by retaining past the call.
type badRetainingEndpoint struct{ held *Packet }

func (b *badRetainingEndpoint) Deliver(p *Packet) {
	b.held = p // want `borrowed`
}

// --- suppressed ---

func suppressedLeak(n *Net) {
	pkt := n.AllocPacket() //lint:allow poolown fixture pins the suppression path
	_ = pkt
}

// --- clean ---

func goodFreeBothPaths(n *Net, drop bool) {
	pkt := n.AllocPacket()
	if drop {
		n.freePacket(pkt)
		return
	}
	n.Send(pkt)
}

// goodEndpoint only reads the borrowed packet.
type goodEndpoint struct{ total int }

func (g *goodEndpoint) Deliver(p *Packet) {
	g.total += p.Size
}

// goodDeliverThenFree is the real network's delivery shape: a borrow call
// leaves ownership with the caller, which then frees.
func goodDeliverThenFree(n *Net, ep Endpoint) {
	pkt := n.AllocPacket()
	ep.Deliver(pkt)
	n.freePacket(pkt)
}

// ring derives a sink summary from its append.
type ring struct{ buf []*Packet }

func (r *ring) push(p *Packet) {
	r.buf = append(r.buf, p)
}

func goodStoreConsume(n *Net, r *ring) {
	pkt := n.AllocPacket()
	r.push(pkt)
}

// goodDrain is the nil-guarded dequeue loop every qdisc teardown uses.
func goodDrain(n *Net) {
	for {
		pkt := n.dequeue()
		if pkt == nil {
			return
		}
		n.freePacket(pkt)
	}
}

// goodReturnTransfersOwnership: returning an owned packet moves the
// obligation to the caller.
func goodReturnTransfersOwnership(n *Net) *Packet {
	pkt := n.AllocPacket()
	pkt.Size = 1
	return pkt
}
