// Fixture for the tracenil analyzer: trace-handle calls must be guarded.
package tracenil

import "trace"

type params struct {
	Trace *trace.Collector
}

type cluster struct {
	tr *trace.Run
}

func build(p params) *cluster {
	c := &cluster{}
	c.tr = p.Trace.NewRun("run") // want `call to \(p\.Trace\)\.NewRun on a possibly-nil trace handle`
	return c
}

func buildGuarded(p params) *cluster {
	c := &cluster{}
	if p.Trace != nil {
		c.tr = p.Trace.NewRun("run") // guarded: no diagnostic
	}
	return c
}

func (c *cluster) sample(now int64) {
	c.tr.StartSpan(now) // want `call to \(c\.tr\)\.StartSpan on a possibly-nil trace handle`
}

func (c *cluster) sampleGuarded(now int64) *trace.Span {
	if c.tr == nil {
		return nil
	}
	return c.tr.StartSpan(now) // early-exit guard: no diagnostic
}

func (c *cluster) finish(now int64) {
	var sp *trace.Span
	if c.tr != nil {
		sp = c.tr.StartSpan(now)
	}
	sp.Finish(now) // want `call to \(sp\)\.Finish on a possibly-nil trace handle`
	if sp != nil {
		sp.Finish(now) // guarded: no diagnostic
	}
}

// Conjunct guards cover the right-hand side and the body.
func (c *cluster) conjunct() int {
	if c.tr != nil && c.tr.Sampled() > 0 {
		return c.tr.Sampled()
	}
	return 0
}

// Constructor results and collection elements are live handles.
func constructorsAndCollections() int {
	col := trace.NewCollector(1)
	r := col.NewRun("x")
	total := r.Sampled()
	for _, run := range col.Runs() {
		total += run.Sampled()
	}
	total += col.Runs()[0].Sampled()
	return total
}

// A closure created inside a guarded region inherits the guard.
func closureInherits(c *cluster, now int64) func() {
	if c.tr != nil {
		return func() { c.tr.StartSpan(now) }
	}
	return func() {}
}

func suppressed(c *cluster, now int64) {
	//lint:allow tracenil caller holds the collector open for the whole run
	c.tr.StartSpan(now)
}
