// Fixture for the goroutine analyzer: concurrency outside sim/runner.
package goroutine

import "sync"

func spawn(work func()) {
	go work() // want `goroutine spawned outside the sanctioned concurrency packages`
}

func fanOut(n int) {
	var wg sync.WaitGroup // want `sync\.WaitGroup outside the sanctioned concurrency packages`
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `goroutine spawned outside the sanctioned concurrency packages`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func makeQueue() chan int { // want `channel type outside the sanctioned concurrency packages`
	return nil
}

// A mutex is mutual exclusion, not concurrency: no diagnostic.
type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func suppressed(work func()) {
	//lint:allow goroutine fixture demonstrates a justified suppression
	go work()
}
