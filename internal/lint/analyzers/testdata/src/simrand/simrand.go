// Fixture for the simrand analyzer: global randomness sources in model code.
package simrand

import (
	"math/rand" // want `import of math/rand`

	crand "crypto/rand" // want `import of crypto/rand`
)

//lint:allow simrand fixture demonstrates a justified suppression
import v2 "math/rand/v2"

func draw() float64 { return rand.Float64() }

func entropy(b []byte) { crand.Read(b) }

func drawV2() uint64 { return v2.Uint64() }
