// Package trace is a miniature of dclue/internal/trace for the tracenil
// fixture: same handle type names, nil-value fast-path contract included.
// Being named "trace", it is itself exempt from the guard rule (it is the
// implementation the guards protect).
package trace

type Collector struct{ runs []*Run }

type Run struct{ n int }

type Span struct{ t int64 }

func NewCollector(n int) *Collector { return &Collector{} }

func (c *Collector) NewRun(label string) *Run {
	r := &Run{}
	c.runs = append(c.runs, r)
	return r
}

func (c *Collector) Runs() []*Run { return c.runs }

func (r *Run) StartSpan(now int64) *Span {
	r.n++
	return &Span{t: now}
}

func (r *Run) Sampled() int { return r.n }

func (s *Span) Finish(now int64) { s.t = now - s.t }
