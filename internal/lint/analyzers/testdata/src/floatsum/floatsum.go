// Fixture for the floatsum analyzer: order-sensitive float accumulation.
package floatsum

// Metrics stands in for the fingerprinted result struct.
type Metrics struct {
	Util float64
}

func meanUtil(byNode map[int]float64) float64 {
	var sum float64
	for _, u := range byNode {
		sum += u // want `float accumulation into sum inside range over map`
	}
	return sum / float64(len(byNode))
}

func intoField(m *Metrics, byNode map[int]float64) {
	for _, u := range byNode {
		m.Util += u // want `float accumulation into m\.Util inside range over map`
	}
}

// Integer accumulation commutes exactly: no diagnostic.
func totalInt(byNode map[int]int) int {
	total := 0
	for _, n := range byNode {
		total += n
	}
	return total
}

// Slice iteration is deterministic: no diagnostic.
func sumSlice(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

func suppressed(byNode map[int]float64) float64 {
	var sum float64
	for _, u := range byNode {
		sum += u //lint:allow floatsum values are exact powers of two, addition commutes
	}
	return sum
}
