// Package telemetry is a miniature of dclue/internal/telemetry for the
// telemnil fixture: same handle type names, nil-value fast-path contract
// included. Being named "telemetry", it is itself exempt from the guard
// rule (it is the implementation the guards protect).
package telemetry

type Collector struct{ regs []*Registry }

type Registry struct {
	label string
	links []*LinkTel
}

type LinkTel struct {
	Name string
	busy int64
}

type CPUTel struct {
	Name string
	busy int64
}

func NewCollector(bucket int64) *Collector { return &Collector{} }

func (c *Collector) NewRegistry(label string) *Registry {
	r := &Registry{label: label}
	c.regs = append(c.regs, r)
	return r
}

func (c *Collector) Registries() []*Registry { return c.regs }

func (r *Registry) NewLink(name string) *LinkTel {
	l := &LinkTel{Name: name}
	r.links = append(r.links, l)
	return l
}

func (r *Registry) Links() []*LinkTel { return r.links }

func (l *LinkTel) OnTransmit(from, to int64) { l.busy += to - from }

func (t *CPUTel) OnBusy(from, to int64) { t.busy += to - from }
