// Fixture for the maporder analyzer: order-sensitive work inside map ranges.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

// collectThenSort is the sanctioned idiom: the append is cleared by the
// later sort in the same function.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printInOrder(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `printing inside range over map`
	}
}

// counting is commutative: no diagnostic.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// localAppend stays inside the loop iteration: no diagnostic.
func localPerKey(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

func suppressed(w io.Writer, m map[string]int) {
	for k := range m {
		//lint:allow maporder output order is covered by an external sort in the consumer
		fmt.Fprintln(w, k)
	}
}
