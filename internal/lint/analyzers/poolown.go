package analyzers

import (
	"go/ast"
	"go/token"

	"dclue/internal/lint/analysis"
	"dclue/internal/lint/own"
)

// Poolown proves the pooled-object lifetime contracts introduced by the
// allocation-free kernel rewrite: every object obtained from a //pool:alloc
// function (Network.AllocPacket, Domain.allocSeg) must reach exactly one
// free or hand-off on every path, and borrowed objects (Endpoint.Deliver's
// packet) must be neither freed nor retained. The Summarize hook feeds the
// interprocedural engine in internal/lint/own; Run checks each function
// body against the accumulated World.
var Poolown = &analysis.Analyzer{
	Name: "poolown",
	Doc: "pooled objects must be freed or handed off exactly once on every path. " +
		"The object-pool rewrite traded GC safety for by-convention lifetimes: a " +
		"leaked Packet silently shrinks the pool, a double free corrupts the free " +
		"list, and a use after free reads a recycled object. Contract functions " +
		"are marked with //pool:alloc, //pool:free, //pool:sink and //pool:borrow " +
		"doc directives; everything else gets a summary derived from its body, so " +
		"ownership facts flow through helpers across package boundaries.",
	Summarize: own.Summarize,
	Run:       runPoolown,
}

func runPoolown(pass *analysis.Pass) error {
	w := own.Shared(pass.Facts)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fl := own.NewFlow(pass, w, func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			})
			fl.Check(fd)
		}
	}
	return nil
}
