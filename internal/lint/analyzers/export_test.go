package analyzers

// ExemptForTest exposes the sanctioned-package policy to the external test
// package.
func ExemptForTest(analyzer, pkgPath string) bool {
	switch analyzer {
	case "simtime":
		return wallClockExempt(pkgPath)
	case "simrand":
		return globalRandExempt(pkgPath)
	case "goroutine":
		return concurrencyExempt(pkgPath)
	}
	return false
}

// ContinuationOnlyForTest exposes the continuation-only package list.
func ContinuationOnlyForTest(pkgPath string) bool { return continuationOnly(pkgPath) }
