// Package load turns `go list` output into parsed, type-checked packages
// for the lint analyzers. It is a minimal stand-in for
// golang.org/x/tools/go/packages built only on the standard library: the go
// command enumerates the module's packages, go/parser parses them into one
// shared FileSet, and go/types checks them in dependency order. Standard
// library imports are resolved by the source importer (GOROOT/src); an
// import that cannot be loaded degrades to an empty stub package so the
// analyzers still run — with incomplete type information — rather than
// failing the whole lint pass.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path string // import path, e.g. dclue/internal/core
	Name string // package name
	Dir  string // directory holding the sources

	// Files holds the parsed sources: GoFiles plus, when present,
	// TestGoFiles (the in-package _test.go files). External test packages
	// (package foo_test) appear as their own Package with Path suffixed
	// "_test" per the go command's convention.
	Files []*ast.File

	Types *types.Package
	Info  *types.Info

	// LoadErrors records parse or type errors tolerated during loading.
	// Self-hosting on a tree that builds cleanly produces none; they are
	// surfaced in verbose mode only.
	LoadErrors []error

	imports []string // module-internal imports (for hashing/topo order)
	files   []string // absolute source file names, GoFiles then TestGoFiles
}

// SourceFiles returns the absolute paths of the files in Files, in order.
func (p *Package) SourceFiles() []string { return p.files }

// ModuleImports returns the package's imports that are packages of the same
// module, sorted.
func (p *Package) ModuleImports() []string { return p.imports }

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// Result is a loaded module slice.
type Result struct {
	Fset     *token.FileSet
	Packages []*Package // topologically sorted, dependencies first
	// Warnings notes imports that had to be stubbed out (types degrade).
	Warnings []string
}

// Modules loads the packages matching patterns (e.g. "./...") in the module
// rooted at dir. Test files are included: in-package tests augment their
// package, external test packages are loaded as "<path>_test".
func Modules(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Fset: token.NewFileSet()}

	inModule := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		inModule[lp.ImportPath] = lp
	}

	// Dependency order over module-internal imports. Plain imports only:
	// in-package test imports cannot add module-level cycles to this pass
	// because the augmented package is type-checked against the plain
	// exports established in dependency order below.
	order, err := topoSort(listed, inModule)
	if err != nil {
		return nil, err
	}

	std := importer.ForCompiler(res.Fset, "source", nil)
	exports := make(map[string]*types.Package)
	imp := &moduleImporter{std: std, exports: exports, res: res}

	for _, lp := range order {
		// Pass 1 for this package: plain sources establish the exported
		// type surface its dependents import.
		plainFiles, perrs := parseAll(res.Fset, lp.Dir, lp.GoFiles)
		plainPkg, plainInfo, terrs := typeCheck(res.Fset, lp.ImportPath, plainFiles, imp)
		exports[lp.ImportPath] = plainPkg

		// Pass 2: the package as analyzed, with in-package tests folded in.
		// When the package has no in-package tests, pass 1 doubles as the
		// analysis view.
		files, pkgTypes, info := plainFiles, plainPkg, plainInfo
		if len(lp.TestGoFiles) > 0 {
			testFiles, terrs2 := parseAll(res.Fset, lp.Dir, lp.TestGoFiles)
			perrs = append(perrs, terrs2...)
			files = append(append([]*ast.File{}, plainFiles...), testFiles...)
			var terrsAug []error
			pkgTypes, info, terrsAug = typeCheck(res.Fset, lp.ImportPath, files, imp)
			terrs = append(terrs, terrsAug...)
		}
		p := &Package{
			Path:       lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Files:      files,
			Types:      pkgTypes,
			Info:       info,
			LoadErrors: append(perrs, terrs...),
			imports:    moduleOnly(append(lp.Imports, lp.TestImports...), inModule),
			files:      absAll(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)),
		}
		res.Packages = append(res.Packages, p)

		// External test package, if any.
		if len(lp.XTestGoFiles) > 0 {
			xFiles, xperrs := parseAll(res.Fset, lp.Dir, lp.XTestGoFiles)
			xPkg, xInfo, xterrs := typeCheck(res.Fset, lp.ImportPath+"_test", xFiles, imp)
			res.Packages = append(res.Packages, &Package{
				Path:       lp.ImportPath + "_test",
				Name:       lp.Name + "_test",
				Dir:        lp.Dir,
				Files:      xFiles,
				Types:      xPkg,
				Info:       xInfo,
				LoadErrors: append(xperrs, xterrs...),
				imports:    moduleOnly(lp.XTestImports, inModule),
				files:      absAll(lp.Dir, lp.XTestGoFiles),
			})
		}
	}
	return res, nil
}

// goList runs `go list -json patterns...` in dir.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// topoSort orders packages dependencies-first; the module is a DAG (the go
// command enforces acyclic imports), so a cycle here means corrupt input.
func topoSort(pkgs []*listedPackage, inModule map[string]*listedPackage) ([]*listedPackage, error) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	const (
		white = iota
		grey
		black
	)
	state := make(map[string]int, len(pkgs))
	var order []*listedPackage
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case grey:
			return fmt.Errorf("import cycle through %s", lp.ImportPath)
		case black:
			return nil
		}
		state[lp.ImportPath] = grey
		for _, dep := range lp.Imports {
			if d, ok := inModule[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = black
		order = append(order, lp)
		return nil
	}
	for _, lp := range pkgs {
		if err := visit(lp); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func moduleOnly(imports []string, inModule map[string]*listedPackage) []string {
	seen := make(map[string]bool)
	var out []string
	for _, im := range imports {
		if _, ok := inModule[im]; ok && !seen[im] {
			seen[im] = true
			out = append(out, im)
		}
	}
	sort.Strings(out)
	return out
}

func absAll(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

func parseAll(fset *token.FileSet, dir string, names []string) ([]*ast.File, []error) {
	var files []*ast.File
	var errs []error
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			errs = append(errs, err)
		}
		if f != nil {
			files = append(files, f)
		}
	}
	return files, errs
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer:         imp,
		Error:            func(err error) { errs = append(errs, err) },
		FakeImportC:      true,
		IgnoreFuncBodies: false,
	}
	info := NewInfo()
	pkg, _ := conf.Check(path, fset, files, info) // errs collected above
	if pkg == nil {
		pkg = types.NewPackage(path, guessName(path))
	}
	return pkg, info, errs
}

func guessName(path string) string {
	return path[strings.LastIndex(path, "/")+1:]
}

// moduleImporter resolves module-internal imports from the exports table
// and everything else through the source importer, stubbing failures.
type moduleImporter struct {
	std     types.Importer
	exports map[string]*types.Package
	stubs   map[string]*types.Package
	res     *Result
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.exports[path]; ok && p != nil {
		return p, nil
	}
	if p, ok := m.stubs[path]; ok {
		return p, nil
	}
	p, err := m.std.Import(path)
	if err == nil && p != nil {
		return p, nil
	}
	// Unresolvable (cgo-only package, missing source): degrade to a stub so
	// analysis proceeds with incomplete types rather than not at all.
	if m.stubs == nil {
		m.stubs = make(map[string]*types.Package)
	}
	stub := types.NewPackage(path, guessName(path))
	stub.MarkComplete()
	m.stubs[path] = stub
	m.res.Warnings = append(m.res.Warnings, fmt.Sprintf("import %q could not be loaded (%v); types degrade", path, err))
	return stub, nil
}
