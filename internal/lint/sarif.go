package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"dclue/internal/lint/analysis"
)

// SARIF output (dcluevet -sarif FILE). The structs below are the minimal
// subset of SARIF 2.1.0 that GitHub code scanning consumes via
// codeql-action/upload-sarif: one run, a tool.driver with a rule per
// analyzer, and one result per finding with a physical location. Paths are
// emitted relative to the module root with %SRCROOT% as the uriBaseId,
// which is what lets GitHub anchor annotations onto PR diffs regardless of
// the runner's checkout directory.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. root is the module
// root the finding positions are made relative to; suite supplies the rule
// catalog (every analyzer is listed even when clean, so GitHub shows the
// rule set that ran, not just the rules that fired).
func WriteSARIF(w io.Writer, findings []Finding, suite []*analysis.Analyzer, root string) error {
	rules := []sarifRule{{
		// The "allow" pseudo-analyzer owns malformed and stale suppression
		// directives (see internal/lint/analysis/allow.go).
		ID:               "allow",
		ShortDescription: sarifMessage{Text: "//lint:allow directives must be well-formed and must suppress something"},
	}}
	for _, a := range suite {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: firstSentence(a.Doc)},
			FullDescription:  sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       sarifURI(f.Pos.Filename, root),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dcluevet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI makes a finding path repo-relative with forward slashes (SARIF
// URIs are not OS paths). A path outside root is passed through as-is.
func sarifURI(path, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}

// firstSentence trims an analyzer doc to its invariant statement.
func firstSentence(doc string) string {
	if i := strings.Index(doc, ". "); i >= 0 {
		return doc[:i+1]
	}
	return doc
}
