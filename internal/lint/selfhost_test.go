package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dclue/internal/lint/analysis"
	"dclue/internal/lint/analyzers"
)

// moduleRoot locates the repository root (the directory holding go.mod).
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil || strings.TrimSpace(string(out)) == "" {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// TestSelfHost is the meta-test the tentpole demands: the determinism suite
// must exit clean on the repository itself. Any finding here is either a
// real determinism hazard (fix it) or a policy gap (adjust the analyzer or
// add a reasoned //lint:allow) — never something to ignore.
func TestSelfHost(t *testing.T) {
	if testing.Short() {
		t.Skip("self-host lint loads and type-checks the whole module")
	}
	findings, err := Run(Options{Dir: moduleRoot(t), Patterns: []string{"./..."}})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("dcluevet is not clean on its own repository: %d finding(s)", len(findings))
	}
}

// TestSelfHostOwnershipOnly pins the acceptance gate the CI lint job uses:
// the interprocedural ownership analyzers alone, run over the repository,
// report nothing. Unlike TestSelfHost this exercises the -only path, where
// summaries must still be collected from every package even though only two
// analyzers run.
func TestSelfHostOwnershipOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("self-host lint loads and type-checks the whole module")
	}
	findings, err := Run(Options{
		Dir:       moduleRoot(t),
		Patterns:  []string{"./..."},
		Analyzers: []*analysis.Analyzer{analyzers.Poolown, analyzers.Eventid},
	})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("ownership analyzers are not clean on their own repository: %d finding(s)", len(findings))
	}
}

// TestFactsCache runs the suite twice through a cache directory and checks
// the second pass replays the first's (empty) findings from cache entries.
func TestFactsCache(t *testing.T) {
	if testing.Short() {
		t.Skip("self-host lint loads and type-checks the whole module")
	}
	dir := t.TempDir()
	root := moduleRoot(t)
	first, err := Run(Options{Dir: root, Patterns: []string{"./internal/rng", "./internal/stats"}, CacheDir: dir})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading cache dir: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("first run populated no cache entries")
	}
	second, err := Run(Options{Dir: root, Patterns: []string{"./internal/rng", "./internal/stats"}, CacheDir: dir})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if len(first) != len(second) {
		t.Fatalf("cache changed findings: %d -> %d", len(first), len(second))
	}
	after, _ := os.ReadDir(dir)
	if len(after) != len(entries) {
		t.Fatalf("second run grew the cache: %d -> %d entries (expected pure hits)", len(entries), len(after))
	}
}
