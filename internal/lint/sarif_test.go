package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"dclue/internal/lint/analyzers"
)

// TestWriteSARIF checks the properties GitHub code scanning depends on:
// valid JSON in the 2.1.0 shape, a rule for every analyzer plus the "allow"
// pseudo-rule, and finding locations rewritten repo-relative with forward
// slashes under %SRCROOT%.
func TestWriteSARIF(t *testing.T) {
	root := filepath.Join("/", "work", "repo")
	findings := []Finding{
		{
			Analyzer: "poolown",
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "tcp", "tcp.go"), Line: 42, Column: 3},
			Message:  "pooled tcp.segment allocated here leaks",
		},
		{
			Analyzer: "eventid",
			Pos:      token.Position{Filename: filepath.Join("/", "elsewhere", "x.go"), Line: 7, Column: 1},
			Message:  "EventID field is armed here but the callback never zeroes it",
		},
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, analyzers.All(), root); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 with 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dcluevet" {
		t.Fatalf("driver name %q", run.Tool.Driver.Name)
	}

	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no short description", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"allow", "poolown", "eventid", "maporder"} {
		if !ruleIDs[want] {
			t.Errorf("rule catalog missing %q (have %v)", want, ruleIDs)
		}
	}
	if len(run.Tool.Driver.Rules) != len(analyzers.All())+1 {
		t.Errorf("%d rules for %d analyzers + allow", len(run.Tool.Driver.Rules), len(analyzers.All()))
	}

	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "poolown" || r0.Level != "error" {
		t.Fatalf("result 0: ruleId %q level %q", r0.RuleID, r0.Level)
	}
	loc := r0.Locations[0].PhysicalLocation
	if got := loc.ArtifactLocation.URI; got != "internal/tcp/tcp.go" {
		t.Fatalf("in-root URI %q, want repo-relative forward-slash path", got)
	}
	if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Fatalf("uriBaseId %q", loc.ArtifactLocation.URIBaseID)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 3 {
		t.Fatalf("region %+v", loc.Region)
	}
	// A finding outside the root keeps its absolute path (slash form).
	if got := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; !strings.HasSuffix(got, "elsewhere/x.go") || strings.HasPrefix(got, "..") {
		t.Fatalf("out-of-root URI %q must pass through, not escape via ..", got)
	}
}
