// Package linttest is the fixture harness for the dcluevet analyzers — a
// standard-library miniature of golang.org/x/tools/go/analysis/analysistest.
// A fixture is a directory under testdata/src/<name> holding a small Go
// package seeded with violations; every line expected to be flagged carries
// a `// want "regexp"` comment, and //lint:allow-suppressed occurrences
// carry no want (the harness fails on any unexpected diagnostic, so a
// broken suppression surfaces immediately).
//
// Fixture imports resolve GOPATH-style against the testdata/src root first
// (so a fixture can ship a miniature dependency, e.g. a fake trace
// package), then against the standard library.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dclue/internal/lint/analysis"
	"dclue/internal/lint/load"
)

// Run loads the fixture package at dir (e.g. "testdata/src/simtime"),
// applies the analyzer, filters //lint:allow suppressions, and matches the
// surviving diagnostics against the fixture's `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	srcRoot := filepath.Dir(dir) // testdata/src
	files, pkgPath := parseFixture(t, fset, dir)

	imp := &fixtureImporter{
		fset:    fset,
		srcRoot: srcRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  make(map[string]*types.Package),
	}
	pkg, info := checkFixture(fset, pkgPath, files, imp)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		PkgPath:   pkgPath,
		Facts:     analysis.NewFacts(),
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if a.Summarize != nil {
		if err := a.Summarize(pass); err != nil {
			t.Fatalf("%s: summarize error: %v", pkgPath, err)
		}
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", pkgPath, err)
	}
	allows := analysis.CollectAllows(fset, files, map[string]bool{a.Name: true})
	for _, d := range allows.Malformed {
		t.Errorf("%s: malformed lint:allow: %s", fset.Position(d.Pos), d.Message)
	}
	diags = allows.Filter(a.Name, diags)
	matchWants(t, a, fset, files, diags)
}

// parseFixture parses every .go file in dir.
func parseFixture(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	return files, filepath.Base(dir)
}

func checkFixture(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info) {
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // fixtures may reference stubbed imports
	}
	info := load.NewInfo()
	pkg, _ := conf.Check(path, fset, files, info)
	if pkg == nil {
		pkg = types.NewPackage(path, path)
	}
	return pkg, info
}

// fixtureImporter resolves imports from testdata/src first, then the
// standard library, then stubs.
type fixtureImporter struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	loaded  map[string]*types.Package
}

func (m *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(m.srcRoot, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		entries, _ := os.ReadDir(dir)
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			if f, err := parser.ParseFile(m.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments); err == nil {
				files = append(files, f)
			}
		}
		pkg, _ := checkFixture(m.fset, path, files, m)
		m.loaded[path] = pkg
		return pkg, nil
	}
	if p, err := m.std.Import(path); err == nil {
		m.loaded[path] = p
		return p, nil
	}
	stub := types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
	stub.MarkComplete()
	m.loaded[path] = stub
	return stub, nil
}

// want is one expectation: the diagnostic's message must match re on line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// matchWants pairs diagnostics with `// want "re"` comments line by line.
func matchWants(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := analysis.ScanDirective(c.Text, "want")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range parseWantPatterns(t, pos, rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic from %s: %s", pos, a.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWantPatterns extracts the quoted regexps of one want comment.
func parseWantPatterns(t *testing.T, pos token.Position, rest string) []string {
	t.Helper()
	var pats []string
	for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment (expected quoted regexp): %q", pos, rest)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %s: %v", pos, q, err)
		}
		pats = append(pats, pat)
		rest = rest[len(q):]
	}
	if len(pats) == 0 {
		t.Fatalf("%s: want comment with no patterns", pos)
	}
	return pats
}

// Dir returns the conventional fixture path for an analyzer name.
func Dir(name string) string {
	return filepath.Join("testdata", "src", name)
}
