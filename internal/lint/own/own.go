// Package own is the interprocedural ownership engine under the poolown
// analyzer: it turns doc-comment contract directives and derived
// per-function summaries into a World fact that flows across packages in
// dependency order, so a caller in internal/tcp knows that
// netsim.(*Network).Send consumes its packet without ever looking at
// netsim's source again.
//
// # Contract directives
//
// A function (or interface method) is marked with a directive line in its
// doc comment:
//
//	//pool:alloc   — the function's first result is an owned pooled object;
//	                 the caller must free or hand it off on every path. The
//	                 result type becomes a pooled type. The result may be
//	                 nil (drain-style helpers); a nil-guarded early return
//	                 discharges the obligation.
//	//pool:free    — the function consumes its pooled pointer parameters by
//	                 returning them to the pool. After the call the caller
//	                 owns nothing: any further use is a use-after-free.
//	//pool:sink    — the function consumes its pooled pointer parameters by
//	                 handing ownership onward (stores them or transfers them
//	                 to another owner). The caller must not free them again.
//	//pool:borrow  — the function may read its pooled pointer parameters
//	                 only for the duration of the call: it must neither free
//	                 nor retain them. On an interface method this is a
//	                 contract every implementation is checked against,
//	                 matched by method name and parameter type.
//
// # Derived summaries
//
// Functions without directives get summaries derived from their bodies by a
// fixpoint over the package (dependencies already summarized): a pooled
// parameter consumed exactly once on every non-panic exit derives free/sink;
// one never consumed, stored, or escaped derives borrow; anything mixed
// derives unknown, which makes callers silently stop tracking the argument
// — the engine prefers silence to false positives.
package own

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dclue/internal/lint/analysis"
)

// Effect is what a callee does with one pooled-pointer parameter.
type Effect int

const (
	EffUnknown Effect = iota // no contract: callers stop tracking the argument
	EffBorrow                // valid for the call only; neither freed nor retained
	EffFree                  // consumed: returned to the pool
	EffSink                  // consumed: ownership handed onward
)

func (e Effect) String() string {
	switch e {
	case EffBorrow:
		return "borrow"
	case EffFree:
		return "free"
	case EffSink:
		return "sink"
	}
	return "unknown"
}

// Consumes reports whether the effect ends the caller's ownership.
func (e Effect) Consumes() bool { return e == EffFree || e == EffSink }

// Summary is the ownership contract of one function.
type Summary struct {
	Params    map[int]Effect // parameter index -> effect (pooled params only)
	Alloc     bool           // result 0 is an owned pooled object
	Directive bool           // explicit //pool: contract; derivation never overwrites it
}

func (s *Summary) equal(o *Summary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Alloc != o.Alloc || s.Directive != o.Directive || len(s.Params) != len(o.Params) {
		return false
	}
	for i, e := range s.Params {
		if o.Params[i] != e {
			return false
		}
	}
	return true
}

// World is the cross-package ownership fact, shared by every package of a
// lint run through the analysis.Facts store.
type World struct {
	// Pooled holds the pooled struct types, keyed "pkgpath.TypeName".
	Pooled map[string]bool
	// Funcs maps types.Func FullName (methods include the receiver, e.g.
	// "(*dclue/internal/netsim.Qdisc).Enqueue") to its contract.
	Funcs map[string]*Summary
	// BorrowMethods records interface borrow contracts for implementation
	// checking: method name -> parameter index -> pooled type key. A
	// concrete method with a matching name and parameter type inherits the
	// borrow obligation.
	BorrowMethods map[string]map[int]string
}

// FactKey is where the World lives in the run's Facts store.
const FactKey = "own:world"

// Shared returns the run's World, creating and publishing it on first use.
// A nil facts store (ad-hoc harness) yields a private world.
func Shared(facts *analysis.Facts) *World {
	if facts == nil {
		return newWorld()
	}
	if v, ok := facts.Get(FactKey); ok {
		return v.(*World)
	}
	w := newWorld()
	facts.Set(FactKey, w)
	return w
}

func newWorld() *World {
	return &World{
		Pooled:        make(map[string]bool),
		Funcs:         make(map[string]*Summary),
		BorrowMethods: make(map[string]map[int]string),
	}
}

// TypeKey returns the pooled-type key for a pointer-to-named type.
func TypeKey(t types.Type) (string, bool) {
	p, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	return obj.Pkg().Path() + "." + obj.Name(), true
}

// PooledParam reports whether t is a pointer to a pooled type.
func (w *World) PooledParam(t types.Type) (string, bool) {
	key, ok := TypeKey(t)
	if !ok || !w.Pooled[key] {
		return "", false
	}
	return key, true
}

// directives recognized in doc comments.
var directiveKinds = []string{"alloc", "free", "sink", "borrow"}

// docDirective scans a doc comment group for a //pool:<kind> line.
func docDirective(doc *ast.CommentGroup) (kind string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		for _, k := range directiveKinds {
			if _, isDir := analysis.ScanDirective(c.Text, "pool:"+k); isDir {
				return k, true
			}
		}
	}
	return "", false
}

// Summarize ingests one package into the world: contract directives first
// (they define the pooled types), then derived summaries to a fixpoint.
// Packages arrive in dependency order, so summaries for imports are already
// present.
func Summarize(pass *analysis.Pass) error {
	w := Shared(pass.Facts)

	// Pass 1: //pool:alloc directives define the pooled types.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if kind, ok := docDirective(fd.Doc); ok && kind == "alloc" {
				w.applyAlloc(pass, fd)
			}
			return true
		})
	}

	// Pass 2: free/sink/borrow directives on functions and interface
	// methods (their pooled parameter types are now known).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if kind, ok := docDirective(d.Doc); ok && kind != "alloc" {
					w.applyParamDirective(pass, d, kind)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						if kind, ok := docDirective(m.Doc); ok {
							w.applyIfaceDirective(pass, m, kind)
						}
					}
				}
			}
		}
	}

	// Pass 3: derive summaries for the rest, iterating to a fixpoint so
	// facts flow through helper chains (Send -> transmit -> Enqueue).
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	for iter, changed := 0, true; changed && iter < 10; iter++ {
		changed = false
		for _, fd := range fns {
			fn := funcObj(pass, fd)
			if fn == nil {
				continue
			}
			key := fn.FullName()
			if old := w.Funcs[key]; old != nil && old.Directive {
				continue
			}
			sum := w.derive(pass, fd, fn)
			if !sum.equal(w.Funcs[key]) {
				w.Funcs[key] = sum
				changed = true
			}
		}
	}
	return nil
}

// applyAlloc records a //pool:alloc directive: the first result type
// becomes pooled and the function an allocation site.
func (w *World) applyAlloc(pass *analysis.Pass, fd *ast.FuncDecl) {
	fn := funcObj(pass, fd)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	key, ok := TypeKey(sig.Results().At(0).Type())
	if !ok {
		return
	}
	w.Pooled[key] = true
	w.Funcs[fn.FullName()] = &Summary{Alloc: true, Directive: true, Params: map[int]Effect{}}
}

// applyParamDirective records a free/sink/borrow directive on a function:
// every pooled pointer parameter gets the effect.
func (w *World) applyParamDirective(pass *analysis.Pass, fd *ast.FuncDecl, kind string) {
	fn := funcObj(pass, fd)
	if fn == nil {
		return
	}
	sum := w.paramSummary(fn, kind)
	if sum != nil {
		w.Funcs[fn.FullName()] = sum
	}
}

// applyIfaceDirective records a directive on an interface method: the
// contract is registered under the method's FullName for call sites, and
// borrow contracts additionally under the bare method name so concrete
// implementations can be held to them.
func (w *World) applyIfaceDirective(pass *analysis.Pass, m *ast.Field, kind string) {
	if len(m.Names) == 0 {
		return
	}
	fn, ok := pass.TypesInfo.Defs[m.Names[0]].(*types.Func)
	if !ok {
		return
	}
	sum := w.paramSummary(fn, kind)
	if sum == nil {
		return
	}
	w.Funcs[fn.FullName()] = sum
	if kind != "borrow" {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sum.Params[i] != EffBorrow {
			continue
		}
		key, _ := w.PooledParam(sig.Params().At(i).Type())
		if w.BorrowMethods[fn.Name()] == nil {
			w.BorrowMethods[fn.Name()] = make(map[int]string)
		}
		w.BorrowMethods[fn.Name()][i] = key
	}
}

// paramSummary builds the directive summary for fn's pooled parameters.
func (w *World) paramSummary(fn *types.Func, kind string) *Summary {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	eff := map[string]Effect{"free": EffFree, "sink": EffSink, "borrow": EffBorrow}[kind]
	sum := &Summary{Directive: true, Params: make(map[int]Effect)}
	for i := 0; i < sig.Params().Len(); i++ {
		if _, ok := w.PooledParam(sig.Params().At(i).Type()); ok {
			sum.Params[i] = eff
		}
	}
	if len(sum.Params) == 0 {
		return nil
	}
	return sum
}

// funcObj resolves a FuncDecl to its types.Func.
func funcObj(pass *analysis.Pass, fd *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

// CalleeOf resolves the called function at a call site: a package function,
// a method (concrete or interface), or nil for func-typed values, builtins
// and conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Dataflow walker
// ---------------------------------------------------------------------------

// vstate is the per-variable ownership state along one path.
type vstate int

const (
	vUntracked vstate = iota // escaped or merged away: checking stops
	vOwned                   // live pooled object this function must consume
	vFreed                   // returned to the pool: any use is a bug
	vStored                  // handed off: field reads stay legal, consuming again is a bug
	vNil                     // proven nil on this path
	vBorrowed                // borrowed parameter: must not be consumed or retained
)

// cell is the dataflow state of one tracked variable.
type cell struct {
	st       vstate
	key      string    // pooled type key, for messages
	allocPos token.Pos // alloc site (leak obligation); NoPos for parameters
	eventPos token.Pos // where it was consumed (secondary position in reports)
	consumed int       // consumptions along this path (derivation)
	stored   bool      // ever sink-consumed (derivation flavor)
	escaped  bool      // went untracked (derivation poisons the summary)
}

func (c *cell) clone() *cell { d := *c; return &d }

// state maps variables (by types object, so shadowing resolves correctly)
// to their cells.
type state map[types.Object]*cell

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v.clone()
	}
	return out
}

// merge joins two branch outcomes: identical states keep, anything that
// disagrees goes untracked (silence over false positives).
func merge(a, b state) state {
	out := make(state, len(a))
	for obj, ca := range a {
		cb, ok := b[obj]
		if !ok {
			continue // declared in one branch only: out of scope after it
		}
		if ca.st == cb.st {
			m := ca.clone()
			if cb.consumed > m.consumed {
				m.consumed = cb.consumed
			}
			m.stored = ca.stored || cb.stored
			m.escaped = ca.escaped || cb.escaped
			out[obj] = m
			continue
		}
		m := ca.clone()
		m.st = vUntracked
		m.escaped = true
		out[obj] = m
	}
	return out
}

// Flow walks one function body. In derive mode (report nil) it records the
// parameter cells at every non-panic exit; in check mode it reports leaks,
// double-consumes, use-after-free and borrow violations.
type Flow struct {
	pass   *analysis.Pass
	w      *World
	report func(pos token.Pos, format string, args ...any) // nil in derive mode
	exits  []state
	leaked map[token.Pos]bool // alloc sites already reported (dedup across exits)
}

// NewFlow returns a checking walker reporting through report.
func NewFlow(pass *analysis.Pass, w *World, report func(pos token.Pos, format string, args ...any)) *Flow {
	return &Flow{pass: pass, w: w, report: report, leaked: make(map[token.Pos]bool)}
}

// derive analyzes fd and computes a summary for its pooled parameters.
func (w *World) derive(pass *analysis.Pass, fd *ast.FuncDecl, fn *types.Func) *Summary {
	sig := fn.Type().(*types.Signature)
	sum := &Summary{Params: make(map[int]Effect)}
	st := make(state)
	var params []types.Object
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if key, ok := w.PooledParam(p.Type()); ok {
			st[p] = &cell{st: vOwned, key: key}
			params = append(params, p)
		} else {
			params = append(params, nil)
		}
	}
	if len(st) == 0 {
		return sum
	}
	fl := &Flow{pass: pass, w: w, leaked: make(map[token.Pos]bool)}
	if fell := fl.stmts(fd.Body.List, st); fell {
		fl.exit(st, nil)
	}
	for i, p := range params {
		if p == nil {
			continue
		}
		sum.Params[i] = deriveEffect(fl.exits, p)
	}
	return sum
}

// deriveEffect folds the exit states of one parameter into an effect.
func deriveEffect(exits []state, p types.Object) Effect {
	seen := false
	consumedAll, borrowedAll, stored := true, true, false
	for _, ex := range exits {
		c := ex[p]
		if c == nil {
			return EffUnknown
		}
		if c.escaped || c.st == vUntracked {
			return EffUnknown
		}
		if c.st == vNil {
			continue // a nil-guarded exit carries no obligation
		}
		seen = true
		if c.consumed == 1 {
			borrowedAll = false
			stored = stored || c.stored
		} else if c.consumed == 0 {
			consumedAll = false
		} else {
			return EffUnknown // consumed twice on one path: never summarize that
		}
	}
	switch {
	case !seen:
		return EffUnknown
	case consumedAll && !borrowedAll:
		if stored {
			return EffSink
		}
		return EffFree
	case borrowedAll:
		return EffBorrow
	default:
		return EffUnknown
	}
}

// Check walks fd in check mode: parameters start owned (or borrowed when a
// directive or interface contract applies), alloc-call results are tracked
// to every exit.
func (fl *Flow) Check(fd *ast.FuncDecl) {
	st := make(state)
	fn := funcObj(fl.pass, fd)
	if fn != nil {
		sig := fn.Type().(*types.Signature)
		own := fl.w.Funcs[fn.FullName()]
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			key, ok := fl.w.PooledParam(p.Type())
			if !ok {
				continue
			}
			c := &cell{st: vOwned, key: key}
			if own != nil && own.Params[i] == EffBorrow {
				c.st = vBorrowed
			}
			if fd.Recv != nil {
				if bm, ok := fl.w.BorrowMethods[fn.Name()]; ok && bm[i] == key {
					c.st = vBorrowed
				}
			}
			st[p] = c
		}
	}
	if fd.Body == nil {
		return
	}
	if fell := fl.stmts(fd.Body.List, st); fell {
		fl.exit(st, nil)
	}
}

// exit handles one non-panic function exit: record for derivation, report
// leaks in check mode. ret is the return statement (nil for falling off the
// end).
func (fl *Flow) exit(st state, ret *ast.ReturnStmt) {
	if fl.report == nil {
		fl.exits = append(fl.exits, st.clone())
		return
	}
	pos := token.NoPos
	if ret != nil {
		pos = ret.Pos()
	}
	var leaks []*cell
	for _, c := range st {
		if c.st == vOwned && c.allocPos.IsValid() && !fl.leaked[c.allocPos] {
			fl.leaked[c.allocPos] = true
			leaks = append(leaks, c)
		}
	}
	// st is a map; report in alloc-site order so output is deterministic.
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].allocPos < leaks[j].allocPos })
	for _, c := range leaks {
		where := "the end of the function"
		if pos.IsValid() {
			where = fmt.Sprintf("the return at %s", fl.pass.Fset.Position(pos))
		}
		fl.report(c.allocPos,
			"pooled %s allocated here leaks: it is not freed or handed off on the path reaching %s",
			shortKey(c.key), where)
	}
}

// stmts walks a statement list; the returned bool reports whether control
// can fall past the end of the list.
func (fl *Flow) stmts(list []ast.Stmt, st state) bool {
	for _, s := range list {
		if !fl.stmt(s, st) {
			return false
		}
		// Early-exit nil guard: after `if x == nil { return }`, x is
		// non-nil (still owned) for the rest of the list — already the
		// default, since the guard only refines the then-branch.
	}
	return true
}

// stmt walks one statement; false means control never continues past it.
func (fl *Flow) stmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		return fl.stmts(s.List, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			fl.escape(e, st) // returning an owned object transfers it out
			fl.eval(e, st)
		}
		fl.exit(st, s)
		return false
	case *ast.IfStmt:
		fl.stmt(s.Init, st)
		fl.eval(s.Cond, st)
		thenSt, elseSt := st.clone(), st.clone()
		refineNil(s.Cond, thenSt, elseSt, fl.pass)
		thenFell := fl.stmt(s.Body, thenSt)
		elseFell := true
		if s.Else != nil {
			elseFell = fl.stmt(s.Else, elseSt)
		}
		switch {
		case thenFell && elseFell:
			replace(st, merge(thenSt, elseSt))
		case thenFell:
			replace(st, thenSt)
		case elseFell:
			replace(st, elseSt)
		default:
			return false
		}
	case *ast.AssignStmt:
		fl.assign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, val := range vs.Values {
						fl.eval(val, st)
						if i < len(vs.Names) {
							fl.trackBind(vs.Names[i], val, st)
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(call) {
			for _, a := range call.Args {
				fl.eval(a, st)
			}
			return false // panic exits carry no pool obligation
		}
		fl.eval(s.X, st)
	case *ast.IncDecStmt:
		fl.eval(s.X, st)
	case *ast.SendStmt:
		fl.eval(s.Chan, st)
		fl.escape(s.Value, st)
		fl.eval(s.Value, st)
	case *ast.GoStmt:
		fl.escapeCall(s.Call, st)
	case *ast.DeferStmt:
		fl.escapeCall(s.Call, st)
	case *ast.LabeledStmt:
		return fl.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto: stop this path; the loop-conservatism below
		// keeps the post-loop state sound.
		return false
	case *ast.ForStmt:
		fl.stmt(s.Init, st)
		if s.Cond != nil {
			fl.eval(s.Cond, st)
		}
		fl.loopBody(s.Body, func(inner state) {
			fl.stmt(s.Post, inner)
		}, st, nil)
	case *ast.RangeStmt:
		fl.eval(s.X, st)
		fl.loopBody(s.Body, nil, st, []ast.Expr{s.Key, s.Value})
	case *ast.SwitchStmt:
		fl.stmt(s.Init, st)
		if s.Tag != nil {
			fl.eval(s.Tag, st)
		}
		fl.switchBody(s.Body, st, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		fl.stmt(s.Init, st)
		fl.stmt(s.Assign, st)
		fl.switchBody(s.Body, st, hasDefault(s.Body))
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := st.clone()
				fl.stmt(cc.Comm, inner)
				fl.stmts(cc.Body, inner)
			}
		}
		untrackChanged(st) // conservative: any branch may have run
	case *ast.EmptyStmt:
	}
	return true
}

// loopBody analyzes a loop body once on a clone, then untracks every
// variable the body touched: a second iteration could otherwise double-free
// state the single pass thinks is settled.
func (fl *Flow) loopBody(body *ast.BlockStmt, post func(state), st state, rangeVars []ast.Expr) {
	inner := st.clone()
	for _, e := range rangeVars {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := fl.pass.TypesInfo.Defs[id]; obj != nil {
				if key, ok := fl.w.PooledParam(obj.Type()); ok {
					// Range values over pooled collections are the
					// collection's property, not ours: visible but untracked.
					inner[obj] = &cell{st: vUntracked, key: key, escaped: true}
				}
			}
		}
	}
	fl.stmts(body.List, inner)
	if post != nil {
		post(inner)
	}
	for obj, c := range st {
		in := inner[obj]
		if in == nil || in.st != c.st || in.consumed != c.consumed {
			c.st = vUntracked
			c.escaped = true
		}
	}
}

// switchBody merges every case branch (plus the fallthrough-less entry when
// there is no default case).
func (fl *Flow) switchBody(body *ast.BlockStmt, st state, hasDefault bool) {
	var outs []state
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		inner := st.clone()
		for _, e := range cc.List {
			fl.eval(e, inner)
		}
		if fl.stmts(cc.Body, inner) {
			outs = append(outs, inner)
		}
	}
	if !hasDefault {
		outs = append(outs, st.clone())
	}
	if len(outs) == 0 {
		// Every case exits; no merge needed, but the enclosing statement
		// list continues only if there was an implicit no-match path —
		// handled above. Leave st untouched.
		return
	}
	acc := outs[0]
	for _, o := range outs[1:] {
		acc = merge(acc, o)
	}
	replace(st, acc)
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// assign handles tracking across assignment statements.
func (fl *Flow) assign(s *ast.AssignStmt, st state) {
	// Store-consume: a tracked value written into a field, slice, map or
	// global hands ownership to the container.
	for _, r := range s.Rhs {
		fl.eval(r, st)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			rhs := s.Rhs[i]
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				fl.trackBind(l, rhs, st)
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				fl.eval(lhs, st)
				if c := fl.lookup(rhs, st); c != nil {
					fl.consume(c, EffSink, rhs.Pos(), exprString(rhs))
				}
				_ = l
			}
		}
		return
	}
	// Multi-value assignment: targets leave tracking.
	for _, lhs := range s.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := fl.objOf(id); obj != nil {
				delete(st, obj)
			}
		}
	}
}

// trackBind handles `x := rhs` / `x = rhs` for a plain identifier target.
func (fl *Flow) trackBind(id *ast.Ident, rhs ast.Expr, st state) {
	obj := fl.objOf(id)
	if obj == nil {
		return
	}
	// Alloc call: a fresh owned object.
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if fn := CalleeOf(fl.pass.TypesInfo, call); fn != nil {
			if sum := fl.w.Funcs[fn.FullName()]; sum != nil && sum.Alloc {
				key, _ := TypeKey(fl.pass.TypeOf(id))
				st[obj] = &cell{st: vOwned, key: key, allocPos: call.Pos()}
				return
			}
		}
	}
	// Move: `a := pkt` transfers the cell, the source leaves tracking
	// (linear ownership: exactly one name owns the object).
	if src := fl.lookup(rhs, st); src != nil {
		st[obj] = src.clone()
		src.st = vUntracked
		src.escaped = true
		return
	}
	// Anything else (field read, nil, untracked call): the target is not a
	// tracked owner.
	if _, pooled := fl.w.PooledParam(fl.pass.TypeOf(id)); pooled {
		delete(st, obj)
	}
}

// consume transitions a cell through a free/sink effect, reporting
// double-consume and borrow violations.
func (fl *Flow) consume(c *cell, eff Effect, pos token.Pos, name string) {
	verb := "freed"
	if eff == EffSink {
		verb = "handed off"
	}
	switch c.st {
	case vOwned:
		if eff == EffFree {
			c.st = vFreed
		} else {
			c.st = vStored
			c.stored = true
		}
		c.consumed++
		c.eventPos = pos
	case vFreed, vStored:
		prev := "freed"
		if c.st == vStored {
			prev = "handed off"
		}
		fl.reportf(pos, "pooled %s %s is %s twice: already %s at %s",
			shortKey(c.key), name, verb, prev, fl.pos(c.eventPos))
		c.consumed++
	case vBorrowed:
		fl.reportf(pos, "pooled %s %s is borrowed (pool:borrow): it is only valid for the duration of this call and must not be %s",
			shortKey(c.key), name, verb)
		c.escaped = true
		c.st = vUntracked
	case vNil, vUntracked:
		// Nothing to say: nil frees crash at runtime, untracked is silence.
	}
}

// eval walks an expression, applying call effects and use-after checks.
func (fl *Flow) eval(e ast.Expr, st state) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		fl.call(e, st)
	case *ast.Ident:
		fl.useCheck(e, st, false)
	case *ast.SelectorExpr:
		// Field read: legal on owned, borrowed and handed-off objects,
		// a bug on freed ones.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			fl.useCheck(id, st, true)
			return
		}
		fl.eval(e.X, st)
	case *ast.BinaryExpr:
		fl.eval(e.X, st)
		fl.eval(e.Y, st)
	case *ast.UnaryExpr:
		fl.eval(e.X, st)
	case *ast.ParenExpr:
		fl.eval(e.X, st)
	case *ast.StarExpr:
		fl.eval(e.X, st)
	case *ast.IndexExpr:
		fl.eval(e.X, st)
		fl.eval(e.Index, st)
	case *ast.SliceExpr:
		fl.eval(e.X, st)
	case *ast.TypeAssertExpr:
		fl.eval(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			fl.escape(el, st)
			fl.eval(el, st)
		}
	case *ast.KeyValueExpr:
		fl.escape(e.Value, st)
		fl.eval(e.Value, st)
	case *ast.FuncLit:
		fl.closure(e, st)
	}
}

// call applies a callee's summary to its tracked arguments.
func (fl *Flow) call(call *ast.CallExpr, st state) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 1 {
		// append(container, pkt): the container takes ownership.
		fl.eval(call.Args[0], st)
		for _, a := range call.Args[1:] {
			if c := fl.lookup(a, st); c != nil {
				fl.consume(c, EffSink, a.Pos(), exprString(a))
			} else {
				fl.eval(a, st)
			}
		}
		return
	}
	fl.eval(call.Fun, st)
	fn := CalleeOf(fl.pass.TypesInfo, call)
	var sum *Summary
	if fn != nil {
		sum = fl.w.Funcs[fn.FullName()]
	}
	for i, a := range call.Args {
		c := fl.lookup(a, st)
		if c == nil {
			fl.eval(a, st)
			continue
		}
		eff := EffUnknown
		if sum != nil {
			eff = sum.Params[i]
		}
		switch {
		case eff.Consumes():
			fl.consume(c, eff, a.Pos(), exprString(a))
		case eff == EffBorrow:
			fl.useCheckCell(c, a.Pos(), exprString(a))
		default:
			// No contract: stop tracking rather than guess.
			c.st = vUntracked
			c.escaped = true
		}
	}
}

// closure handles a func literal: captured tracked variables leave
// tracking (the closure may run at any time), and in check mode the body is
// checked as its own function scope.
func (fl *Flow) closure(lit *ast.FuncLit, st state) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := fl.objOf(id); obj != nil {
			if c, tracked := st[obj]; tracked {
				c.st = vUntracked
				c.escaped = true
			}
		}
		return true
	})
	if fl.report != nil {
		inner := make(state)
		if fell := fl.stmts(lit.Body.List, inner); fell {
			fl.exit(inner, nil)
		}
	}
}

// escape untracks a value that flows somewhere the engine cannot follow
// (return values, channel sends, composite literals).
func (fl *Flow) escape(e ast.Expr, st state) {
	if c := fl.lookup(e, st); c != nil {
		c.st = vUntracked
		c.escaped = true
	}
}

// escapeCall untracks everything a go/defer call touches: it runs later,
// outside this path.
func (fl *Flow) escapeCall(call *ast.CallExpr, st state) {
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := fl.objOf(id); obj != nil {
				if c, tracked := st[obj]; tracked {
					c.st = vUntracked
					c.escaped = true
				}
			}
		}
		return true
	})
}

// useCheck flags a read of a freed object. fieldRead permits reads on
// handed-off objects (a container owns them now, but the bytes are valid —
// the qdisc reads pkt.Size right after queueing pkt).
func (fl *Flow) useCheck(id *ast.Ident, st state, fieldRead bool) {
	obj := fl.objOf(id)
	if obj == nil {
		return
	}
	c, ok := st[obj]
	if !ok {
		return
	}
	if c.st == vFreed {
		fl.reportf(id.Pos(), "use of pooled %s %s after it was freed at %s",
			shortKey(c.key), id.Name, fl.pos(c.eventPos))
		return
	}
	if c.st == vStored && !fieldRead {
		// Passing the bare pointer onward after hand-off: stop tracking
		// (the new owner may legally share it back).
		c.st = vUntracked
		c.escaped = true
	}
}

// useCheckCell is useCheck for a cell already in hand (borrow-effect call
// arguments).
func (fl *Flow) useCheckCell(c *cell, pos token.Pos, name string) {
	if c.st == vFreed {
		fl.reportf(pos, "use of pooled %s %s after it was freed at %s",
			shortKey(c.key), name, fl.pos(c.eventPos))
	}
}

// lookup resolves e to a tracked cell (plain identifiers only: pooled
// objects are pointers, so the identifier is the whole reference).
func (fl *Flow) lookup(e ast.Expr, st state) *cell {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := fl.objOf(id)
	if obj == nil {
		return nil
	}
	return st[obj]
}

func (fl *Flow) objOf(id *ast.Ident) types.Object {
	if obj := fl.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return fl.pass.TypesInfo.Defs[id]
}

func (fl *Flow) reportf(pos token.Pos, format string, args ...any) {
	if fl.report != nil {
		fl.report(pos, format, args...)
	}
}

func (fl *Flow) pos(p token.Pos) string {
	return fl.pass.Fset.Position(p).String()
}

// refineNil applies `x == nil` / `x != nil` conditions to the branch
// states: the nil branch's cell becomes vNil (no obligation), the non-nil
// branch keeps ownership.
func refineNil(cond ast.Expr, thenSt, elseSt state, pass *analysis.Pass) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	var x ast.Expr
	nilThen := false
	switch {
	case be.Op == token.EQL && isNil(be.Y):
		x, nilThen = be.X, true
	case be.Op == token.EQL && isNil(be.X):
		x, nilThen = be.Y, true
	case be.Op == token.NEQ && isNil(be.Y):
		x, nilThen = be.X, false
	case be.Op == token.NEQ && isNil(be.X):
		x, nilThen = be.Y, false
	default:
		return
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	target := thenSt
	if !nilThen {
		target = elseSt
	}
	if c, tracked := target[obj]; tracked {
		c.st = vNil
	}
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// replace overwrites dst's contents with src (the maps are shared with the
// caller's view, so mutation must happen in place).
func replace(dst, src state) {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	for k, v := range src {
		dst[k] = v
	}
}

// untrackChanged is the select-statement conservatism: with no way to know
// which branch ran, everything consumed anywhere must leave tracking. The
// model code has no selects on pooled paths; this is belt and braces.
func untrackChanged(st state) {
	for _, c := range st {
		if c.consumed > 0 || c.st != vOwned {
			c.st = vUntracked
			c.escaped = true
		}
	}
}

// shortKey trims the package path off a pooled type key for messages.
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// exprString renders a small expression for diagnostics.
func exprString(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return types.ExprString(e)
}
