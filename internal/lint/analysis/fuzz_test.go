package analysis

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseAllow fuzzes the //lint:allow comment grammar through the shared
// directive scanner. The parser must never panic, must never accept a
// directive without both an analyzer name and a reason, and its output must
// be whitespace-normalized. The corpus cross-seeds the fault-spec grammar
// (the repo's other hand-rolled parser) so the two parsers are fuzzed
// against each other's shapes.
func FuzzParseAllow(f *testing.F) {
	for _, seed := range []string{
		// Well-formed.
		"//lint:allow simtime benchmark timestamps are wall-clock by design",
		"// lint:allow maporder consumer sorts",
		"/*lint:allow goroutine fixture*/",
		"//lint:allow floatsum values are exact powers of two, addition commutes",
		// Malformed: empty payloads, missing reasons, wrong word.
		"//lint:allow",
		"//lint:allow ",
		"//lint:allow simtime",
		"//lint:allow simtime\t",
		"//lint:allowed simtime reason",
		"//lint:allo simtime reason",
		"//lint: allow simtime reason",
		"//LINT:ALLOW simtime reason",
		"/*lint:allow simtime*/",
		"/*lint:allow*/",
		"/**/",
		"//",
		"",
		// Unicode, control characters, pathological spacing.
		"//lint:allow sím­time reason",
		"//lint:allow \x00 reason",
		"//lint:allow simtime \x00",
		"//lint:allow simtime reason",
		"//lint:allow simtime " + strings.Repeat("r", 1<<12),
		// Fault-spec grammar shapes (the other comment-free parser's inputs):
		// these must scan as not-a-directive or as malformed, never panic.
		"linkdown:node:1@60+10",
		"//lint:allow loss:interlata:0@80+20=0.3",
		"//lint:allow simtime;linkdown:node:1@60+10",
		"lint:allow simtime reason", // no comment marker
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		a, ok, err := ParseAllow(text)
		if !ok {
			if err != nil {
				t.Fatalf("not-a-directive with error: %q -> %v", text, err)
			}
			return
		}
		if err != nil {
			return // malformed directive, rejected without panic: fine
		}
		if a.Analyzer == "" || a.Reason == "" {
			t.Fatalf("accepted directive missing analyzer or reason: %q -> %+v", text, a)
		}
		if strings.ContainsAny(a.Analyzer, " \t\n") {
			t.Fatalf("analyzer name contains whitespace: %q -> %q", text, a.Analyzer)
		}
		if utf8.ValidString(text) {
			// Accepted fields of valid UTF-8 input stay valid UTF-8.
			if !utf8.ValidString(a.Analyzer) || !utf8.ValidString(a.Reason) {
				t.Fatalf("invalid UTF-8 smuggled into parsed fields: %q", text)
			}
		}
	})
}
