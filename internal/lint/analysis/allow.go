package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"unicode"
)

// Suppression comments.
//
// A finding is silenced by a directive comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// placed either at the end of the flagged line or alone on the line
// directly above it. The reason is mandatory: a suppression with no
// justification is itself reported as a finding. The same comment scanner
// feeds the fixture harness's `// want "regexp"` expectation parser
// (internal/lint/linttest), so both comment grammars share one tokenizer
// and one set of malformed-input rules.

// ScanDirective strips the comment markers from raw comment text and, when
// the first word of the remainder equals word, returns everything after it
// (whitespace-trimmed) and true. Both //-style and /*-style comments are
// accepted; leading whitespace after the marker is tolerated. Comment text
// that does not start with the directive word returns ok=false.
func ScanDirective(text, word string) (rest string, ok bool) {
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*") && strings.HasSuffix(text, "*/") && len(text) >= 4:
		text = text[2 : len(text)-2]
	}
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, word) {
		return "", false
	}
	rest = text[len(word):]
	// The directive word must end exactly there: "wanted" is not "want".
	if rest != "" && !unicode.IsSpace(rune(rest[0])) {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// Allow is one parsed //lint:allow directive.
type Allow struct {
	Analyzer string
	Reason   string
}

// ParseAllow parses one comment's text. ok is false when the comment is not
// a lint:allow directive; err is non-nil when it is one but is malformed
// (missing analyzer or missing reason).
func ParseAllow(text string) (a Allow, ok bool, err error) {
	rest, isDirective := ScanDirective(text, "lint:allow")
	if !isDirective {
		return Allow{}, false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Allow{}, true, fmt.Errorf("lint:allow needs an analyzer name and a reason")
	}
	if len(fields) == 1 {
		return Allow{}, true, fmt.Errorf("lint:allow %s needs a reason", fields[0])
	}
	a.Analyzer = fields[0]
	a.Reason = strings.Join(fields[1:], " ")
	return a, true, nil
}

// AllowSet indexes a file set's suppression directives by file and line.
type AllowSet struct {
	fset *token.FileSet
	// byLine maps file name and line to the directives written there.
	byLine map[string]map[int][]*allowEntry
	// Malformed collects directives that failed to parse, as diagnostics
	// attributed to the "allow" pseudo-analyzer.
	Malformed []Diagnostic
}

// allowEntry is one well-formed directive plus the bookkeeping the stale
// audit needs: where it sits and whether it suppressed anything this run.
type allowEntry struct {
	Allow
	pos  token.Pos
	used bool
}

// CollectAllows scans every comment of files for lint:allow directives.
// known limits the accepted analyzer names; a directive naming an unknown
// analyzer is malformed (it would otherwise silently suppress nothing).
func CollectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) *AllowSet {
	s := &AllowSet{fset: fset, byLine: make(map[string]map[int][]*allowEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok, err := ParseAllow(c.Text)
				if !ok {
					continue
				}
				if err == nil && !known[a.Analyzer] {
					err = fmt.Errorf("lint:allow names unknown analyzer %q", a.Analyzer)
				}
				if err != nil {
					s.Malformed = append(s.Malformed, Diagnostic{Pos: c.Pos(), Message: err.Error()})
					continue
				}
				pos := fset.Position(c.Pos())
				m := s.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]*allowEntry)
					s.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], &allowEntry{Allow: a, pos: c.Pos()})
			}
		}
	}
	return s
}

// Allowed reports whether a diagnostic from the named analyzer at pos is
// suppressed: a matching directive sits on the same line or the line above.
func (s *AllowSet) Allowed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	m := s.byLine[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, a := range m[line] {
			if a.Analyzer == analyzer {
				a.used = true
				return true
			}
		}
	}
	return false
}

// Stale returns one diagnostic per directive that suppressed nothing in
// this run — candidates for removal (the -allow-audit report). Only
// meaningful after the full suite's diagnostics have been filtered through
// the set; a directive for an analyzer that did not run is reported as
// stale, which is why the audit bypasses -only and the facts cache.
func (s *AllowSet) Stale() []Diagnostic {
	var entries []*allowEntry
	for _, m := range s.byLine {
		for _, line := range m {
			entries = append(entries, line...)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].pos < entries[j].pos })
	var out []Diagnostic
	for _, e := range entries {
		if !e.used {
			out = append(out, Diagnostic{
				Pos:     e.pos,
				Message: fmt.Sprintf("stale lint:allow %s (%s): it suppresses no diagnostic; remove it", e.Analyzer, e.Reason),
			})
		}
	}
	return out
}

// Filter returns the diagnostics from the named analyzer not suppressed by
// an allow directive.
func (s *AllowSet) Filter(analyzer string, diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !s.Allowed(analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	return kept
}
