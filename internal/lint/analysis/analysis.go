// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// with a Run function, a Pass hands it one type-checked package, and
// diagnostics are reported through the Pass. The x/tools module is not
// vendored here (the build must work from a bare toolchain with no module
// downloads), so this package mirrors the upstream API shape closely enough
// that the analyzers in internal/lint/analyzers could be ported to the real
// framework by changing only import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow suppression comments. It must be a lowercase word.
	Name string

	// Doc is the one-paragraph description shown by `dcluevet -list`:
	// first sentence states the invariant, the rest explains why.
	Doc string

	// Run performs the check on one package and reports findings via
	// pass.Report/Reportf. The returned error aborts the whole lint run
	// (reserved for internal failures, not findings).
	Run func(*Pass) error

	// Summarize, when non-nil, runs over every package before any Run —
	// including packages whose findings replay from the facts cache — so
	// interprocedural analyzers can publish per-function facts (ownership
	// summaries, contract directives) that dependent packages' Run passes
	// consume. It must not report diagnostics; the driver ignores reports
	// made during Summarize.
	Summarize func(*Pass) error
}

// Pass is the unit of work handed to an Analyzer: one package, parsed and
// type-checked. Type information is best-effort — when an import could not
// be resolved (no network, no module cache) the affected types are
// types.Invalid and analyzers must degrade gracefully rather than crash.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File

	// Pkg and TypesInfo hold the type-checked package. TypesInfo is never
	// nil; its maps may be incomplete if the package had type errors.
	Pkg       *types.Package
	TypesInfo *types.Info

	// PkgPath is the import path ("dclue/internal/core"); policy decisions
	// (sanctioned packages) key off it.
	PkgPath string

	// Facts is the run-wide cross-package blackboard (see Facts). Never nil
	// when driven by internal/lint or linttest; analyzers that use it should
	// still tolerate nil for ad-hoc harnesses.
	Facts *Facts

	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// PkgNameOf resolves id to the import it names, returning the imported
// package path and true when id is a package qualifier (the `time` in
// `time.Now`). It prefers type information and falls back to matching the
// file's import table so purely syntactic passes still work when type
// checking was incomplete.
func (p *Pass) PkgNameOf(file *ast.File, id *ast.Ident) (string, bool) {
	if obj, ok := p.TypesInfo.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
		return "", false // resolved to something that is not a package
	}
	// Fallback: unresolved identifier; match against the import table.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path, true
		}
	}
	return "", false
}

// TypeOf is TypesInfo.TypeOf with a nil guard: it returns types.Typ[types.Invalid]
// rather than nil when the expression was not typed.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}
