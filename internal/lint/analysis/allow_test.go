package analysis

import "testing"

func TestScanDirective(t *testing.T) {
	cases := []struct {
		text, word string
		rest       string
		ok         bool
	}{
		{"//lint:allow simtime because", "lint:allow", "simtime because", true},
		{"// lint:allow simtime because", "lint:allow", "simtime because", true},
		{"/*lint:allow x y*/", "lint:allow", "x y", true},
		{"//lint:allowed simtime r", "lint:allow", "", false}, // word must end exactly
		{"// just a comment", "lint:allow", "", false},
		{"//want \"re\"", "want", "\"re\"", true},
		{"// wanted \"re\"", "want", "", false},
		{"//lint:allow", "lint:allow", "", true}, // present but empty payload
	}
	for _, c := range cases {
		rest, ok := ScanDirective(c.text, c.word)
		if ok != c.ok || rest != c.rest {
			t.Errorf("ScanDirective(%q, %q) = %q, %v; want %q, %v", c.text, c.word, rest, ok, c.rest, c.ok)
		}
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		reason   string
		ok       bool
		wantErr  bool
	}{
		{"//lint:allow simtime benchmark needs the wall clock", "simtime", "benchmark needs the wall clock", true, false},
		{"//lint:allow maporder   padded   reason  ", "maporder", "padded reason", true, false},
		{"// not a directive", "", "", false, false},
		{"//lint:allow", "", "", true, true},         // no analyzer, no reason
		{"//lint:allow simtime", "", "", true, true}, // no reason
		{"//lint:allow simtime\t", "", "", true, true},
	}
	for _, c := range cases {
		a, ok, err := ParseAllow(c.text)
		if ok != c.ok || (err != nil) != c.wantErr {
			t.Errorf("ParseAllow(%q) ok=%v err=%v; want ok=%v err=%v", c.text, ok, err, c.ok, c.wantErr)
			continue
		}
		if err == nil && ok && (a.Analyzer != c.analyzer || a.Reason != c.reason) {
			t.Errorf("ParseAllow(%q) = %+v; want analyzer=%q reason=%q", c.text, a, c.analyzer, c.reason)
		}
	}
}
