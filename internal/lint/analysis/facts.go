package analysis

// Facts is the cross-package blackboard for interprocedural analyzers: one
// store lives for the whole lint run, and every Pass sees it. Because the
// loader hands packages to the driver in dependency order (see
// internal/lint/load), an analyzer's Summarize hook can publish facts about
// a package's exported functions and rely on them being present when a
// dependent package is analyzed — the same one-directional flow as
// go/analysis package facts, without the serialization machinery.
//
// Keys are namespaced strings (convention: "<analyzer>:<kind>:<object>",
// e.g. "own:sum:(*dclue/internal/netsim.Qdisc).Enqueue"); values are
// analyzer-owned. The store is not safe for concurrent use — the lint
// driver runs packages sequentially, which is also what keeps facts-flow
// deterministic.
type Facts struct {
	m map[string]any
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: make(map[string]any)} }

// Set publishes a fact, replacing any previous value under key.
func (f *Facts) Set(key string, v any) { f.m[key] = v }

// Get retrieves a fact; ok is false when nothing was published under key.
func (f *Facts) Get(key string) (any, bool) {
	v, ok := f.m[key]
	return v, ok
}

// Len returns the number of published facts (used by cache tests to assert
// summaries still flow on facts-cache hits).
func (f *Facts) Len() int { return len(f.m) }
