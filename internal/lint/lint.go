// Package lint orchestrates the dcluevet determinism suite: it loads the
// module's packages (internal/lint/load), runs every analyzer
// (internal/lint/analyzers) over each, filters findings through
// //lint:allow suppressions, and returns the survivors in a stable order.
// cmd/dcluevet is the thin CLI over Run; the self-hosting meta-test holds
// the repository itself to zero findings.
package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"dclue/internal/lint/analysis"
	"dclue/internal/lint/analyzers"
	"dclue/internal/lint/load"
)

// Finding is one post-suppression diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Options configures a lint run.
type Options struct {
	// Dir is the directory to resolve patterns from (the module root or
	// below); empty means the current directory.
	Dir string
	// Patterns are go-list package patterns; default ./...
	Patterns []string
	// Analyzers is the suite to run; default analyzers.All().
	Analyzers []*analysis.Analyzer
	// CacheDir, when non-empty, memoizes per-package findings keyed by the
	// transitive content hash of the package's sources, its module-internal
	// dependencies' hashes, the analyzer suite, and the Go toolchain — the
	// facts cache CI restores between runs. A hit skips the analyzers' Run
	// passes (type-checking and Summarize still happen, because dependents
	// need this package's exports and cross-package facts).
	CacheDir string
	// AllowAudit additionally reports //lint:allow directives that
	// suppressed nothing this run (stale suppressions), as findings under
	// the "allow" pseudo-analyzer. The audit needs every analyzer's
	// diagnostics to flow through the suppression filter, so it bypasses
	// the facts cache.
	AllowAudit bool
	// Log, when non-nil, receives loader warnings (stubbed imports etc.).
	Log io.Writer
}

// Run executes the suite and returns all findings, sorted by position.
func Run(opts Options) ([]Finding, error) {
	suite := opts.Analyzers
	if suite == nil {
		suite = analyzers.All()
	}
	// The set of allow-directive names every run accepts is the full
	// registered suite, not just the analyzers selected by -only: a
	// directive for an analyzer that simply isn't running this time is
	// dormant, not malformed.
	known := analyzers.Known()
	for _, a := range suite {
		known[a.Name] = true
	}

	res, err := load.Modules(opts.Dir, opts.Patterns...)
	if err != nil {
		return nil, err
	}
	if opts.Log != nil {
		for _, w := range res.Warnings {
			fmt.Fprintln(opts.Log, "dcluevet:", w)
		}
	}

	cache := newFactsCache(opts.CacheDir, suite)
	hashes := make(map[string]string) // pkg path -> transitive content hash
	facts := analysis.NewFacts()

	var findings []Finding
	for _, pkg := range res.Packages {
		// Summarize runs on every package, cache hit or not: cross-package
		// facts (ownership summaries) are rebuilt from source each run, only
		// the diagnostics replay from the cache.
		for _, a := range suite {
			if a.Summarize == nil {
				continue
			}
			pass := newPass(res.Fset, pkg, a, facts, func(analysis.Diagnostic) {})
			if err := a.Summarize(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s summarizing %s: %v", a.Name, pkg.Path, err)
			}
		}
		hash := cache.pkgHash(pkg, hashes)
		hashes[pkg.Path] = hash
		if !opts.AllowAudit {
			if cached, ok := cache.get(hash); ok {
				findings = append(findings, cached...)
				continue
			}
		}
		pf, err := runPackage(res.Fset, pkg, suite, known, facts, opts.AllowAudit)
		if err != nil {
			return nil, err
		}
		if !opts.AllowAudit {
			cache.put(hash, pf)
		}
		findings = append(findings, pf...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// newPass builds one analyzer's view of one loaded package.
func newPass(fset *token.FileSet, pkg *load.Package, a *analysis.Analyzer, facts *analysis.Facts, report func(analysis.Diagnostic)) *analysis.Pass {
	return &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		PkgPath:   pkg.Path,
		Facts:     facts,
		Report:    report,
	}
}

// runPackage applies the suite to one package and filters suppressions.
// With audit set it additionally reports the package's stale allow
// directives (ones that suppressed nothing).
func runPackage(fset *token.FileSet, pkg *load.Package, suite []*analysis.Analyzer, known map[string]bool, facts *analysis.Facts, audit bool) ([]Finding, error) {
	allows := analysis.CollectAllows(fset, pkg.Files, known)
	var findings []Finding
	for _, d := range allows.Malformed {
		findings = append(findings, Finding{Analyzer: "allow", Pos: fset.Position(d.Pos), Message: d.Message})
	}
	for _, a := range suite {
		var diags []analysis.Diagnostic
		pass := newPass(fset, pkg, a, facts, func(d analysis.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range allows.Filter(a.Name, diags) {
			findings = append(findings, Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
		}
	}
	if audit {
		for _, d := range allows.Stale() {
			findings = append(findings, Finding{Analyzer: "allow", Pos: fset.Position(d.Pos), Message: d.Message})
		}
	}
	return findings, nil
}

// factsCache memoizes per-package findings on disk. The key is a
// transitive hash: package sources, the hashes of its module-internal
// imports, and the analyzer suite version, so editing any dependency
// invalidates dependents automatically (the same shape as go build action
// IDs).
type factsCache struct {
	dir   string
	suite string
}

// suiteVersion participates in every cache key; bump when analyzer
// behavior changes in a way that should invalidate cached findings.
const suiteVersion = "dcluevet-v2"

// cacheSalt is the run-invariant prefix of every cache key. It must cover
// everything that can change a package's findings without changing its
// sources: the suite version, the Go toolchain (go/types behavior and the
// stdlib the loader type-checks against move with it), and the selected
// analyzer list (an -only run must not serve, or poison, the full suite's
// cache entries). Factored out and parameterized on the toolchain string so
// the regression test can prove each ingredient changes the key.
func cacheSalt(suite []*analysis.Analyzer, toolchain string) string {
	salt := suiteVersion + ":" + toolchain
	for _, a := range suite {
		salt += ":" + a.Name
	}
	return salt
}

func newFactsCache(dir string, suite []*analysis.Analyzer) *factsCache {
	if dir == "" {
		return &factsCache{}
	}
	return &factsCache{dir: dir, suite: cacheSalt(suite, runtime.Version())}
}

func (c *factsCache) pkgHash(pkg *load.Package, depHashes map[string]string) string {
	if c.dir == "" {
		return ""
	}
	h := sha256.New()
	fmt.Fprintln(h, c.suite)
	fmt.Fprintln(h, pkg.Path)
	for _, f := range pkg.SourceFiles() {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(h, f, "unreadable")
			continue
		}
		fmt.Fprintln(h, filepath.Base(f), len(data))
		h.Write(data)
	}
	for _, dep := range pkg.ModuleImports() {
		fmt.Fprintln(h, "dep", dep, depHashes[dep])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (c *factsCache) get(hash string) ([]Finding, bool) {
	if c.dir == "" || hash == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, hash+".json"))
	if err != nil {
		return nil, false
	}
	var findings []Finding
	if err := json.Unmarshal(data, &findings); err != nil {
		return nil, false
	}
	return findings, true
}

func (c *factsCache) put(hash string, findings []Finding) {
	if c.dir == "" || hash == "" {
		return
	}
	if findings == nil {
		findings = []Finding{} // cache the clean result, not JSON null
	}
	data, err := json.Marshal(findings)
	if err != nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	_ = os.WriteFile(filepath.Join(c.dir, hash+".json"), data, 0o644)
}
