package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dclue/internal/lint/analysis"
)

// TestCacheSaltIngredients is the regression test for the cache-key bug
// where two different toolchains (or an -only run and a full-suite run)
// shared cache entries. Every ingredient must change the salt; the same
// ingredients must reproduce it exactly.
func TestCacheSaltIngredients(t *testing.T) {
	a := &analysis.Analyzer{Name: "alpha"}
	b := &analysis.Analyzer{Name: "beta"}
	full := []*analysis.Analyzer{a, b}

	base := cacheSalt(full, "go1.22.0")
	if again := cacheSalt(full, "go1.22.0"); again != base {
		t.Fatalf("salt not deterministic: %q vs %q", base, again)
	}
	if got := cacheSalt(full, "go1.23.1"); got == base {
		t.Fatalf("toolchain change did not change the salt: %q", got)
	}
	if got := cacheSalt([]*analysis.Analyzer{a}, "go1.22.0"); got == base {
		t.Fatalf("analyzer subset (-only) did not change the salt: %q", got)
	}
	if !strings.HasPrefix(base, suiteVersion+":") {
		t.Fatalf("salt %q does not lead with the suite version", base)
	}
}

// writeTestModule materializes a throwaway module the loader can `go list`,
// so audit behavior is tested against real loading rather than mocks.
func writeTestModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestAllowAudit: a directive that suppresses a live diagnostic is fine; a
// directive that suppresses nothing is reported (only) under -allow-audit.
func TestAllowAudit(t *testing.T) {
	dir := writeTestModule(t, map[string]string{
		"go.mod": "module stalecheck\n\ngo 1.22\n",
		"p.go": `package p

// Keys relies on a real suppression: the append below ranges over a map.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:allow maporder the caller sorts the result
		out = append(out, k)
	}
	return out
}

// Twice carries a stale suppression: nothing here iterates a map.
//lint:allow maporder nothing to suppress
func Twice(x int) int { return 2 * x }
`,
	})

	quiet, err := Run(Options{Dir: dir, Patterns: []string{"./..."}})
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if len(quiet) != 0 {
		t.Fatalf("plain run must not report stale allows, got %v", quiet)
	}

	audited, err := Run(Options{Dir: dir, Patterns: []string{"./..."}, AllowAudit: true})
	if err != nil {
		t.Fatalf("audit run: %v", err)
	}
	if len(audited) != 1 {
		t.Fatalf("audit: got %d findings %v, want exactly the stale directive", len(audited), audited)
	}
	f := audited[0]
	if f.Analyzer != "allow" {
		t.Fatalf("stale directive attributed to %q, want \"allow\"", f.Analyzer)
	}
	if !strings.Contains(f.Message, "stale lint:allow maporder") {
		t.Fatalf("unexpected audit message: %q", f.Message)
	}
	if want := 14; f.Pos.Line != want {
		t.Fatalf("stale directive reported at line %d, want %d (the directive itself)", f.Pos.Line, want)
	}
}
