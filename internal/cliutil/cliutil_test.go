package cliutil

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNowUTC(t *testing.T) {
	before := time.Now().UTC()
	got := NowUTC()
	after := time.Now().UTC()
	if got.Location() != time.UTC {
		t.Fatalf("NowUTC location = %v, want UTC", got.Location())
	}
	if got.Before(before) || got.After(after) {
		t.Fatalf("NowUTC = %v, outside [%v, %v]", got, before, after)
	}
}

func TestStartProfilesWritesBoth(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestStartProfilesDisabled(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no-such-dir", "cpu"), ""); err == nil {
		t.Fatal("expected error for uncreatable profile path")
	}
}
