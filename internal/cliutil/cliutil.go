// Package cliutil holds small helpers shared by the dcluesim and dclueexp
// commands.
package cliutil

import (
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// NowUTC is the single sanctioned wall-clock read for CLI-facing metadata
// (bench record timestamps, log headers). Model code must never call it —
// simulated time comes from sim.Sim.Now — and the simtime lint analyzer
// enforces that split by exempting only cmd/* and this package.
func NowUTC() time.Time {
	return time.Now().UTC()
}

// StartProfiles starts a pprof CPU profile (cpuPath) and/or arranges a heap
// profile (memPath); empty paths disable each. The returned stop function
// must be called exactly once before the process exits — including error
// exits, which os.Exit would otherwise let skip a deferred stop — to flush
// the CPU profile and capture the heap snapshot.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
