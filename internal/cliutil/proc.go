package cliutil

import (
	"fmt"
	"io"
	"os"
	"os/exec"
)

// Proc is one exec'd worker subprocess with pipe stdio: lines go in on
// stdin, results come back on stdout, and stderr passes through to the
// configured sink. It is the process-plumbing half of the experiment farm's
// worker pool; the restart policy lives in Supervisor and the protocol in
// internal/farm.
type Proc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   io.ReadCloser
}

// StartProc launches argv[0] with argv[1:] as arguments. extraEnv entries
// (KEY=VALUE) are appended to the parent environment; stderr receives the
// child's stderr stream (nil discards it).
func StartProc(argv []string, extraEnv []string, stderr io.Writer) (*Proc, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("cliutil: empty worker command")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &Proc{cmd: cmd, stdin: stdin, out: out}, nil
}

// PID returns the child's process id.
func (p *Proc) PID() int { return p.cmd.Process.Pid }

// Send writes one already-framed line to the child's stdin.
func (p *Proc) Send(line []byte) error {
	_, err := p.stdin.Write(line)
	return err
}

// Stdout returns the child's stdout stream.
func (p *Proc) Stdout() io.Reader { return p.out }

// Stop ends the child and reaps it: the stdin pipe is closed (a well-behaved
// worker exits on EOF), the process is killed for good measure, and Wait
// releases its resources. Safe to call on an already-dead child.
func (p *Proc) Stop() {
	p.stdin.Close()
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// CloseStdin closes the child's stdin, signalling end of input without
// killing it; use Wait to collect the exit status.
func (p *Proc) CloseStdin() error { return p.stdin.Close() }

// Wait blocks until the child exits and returns its status.
func (p *Proc) Wait() error { return p.cmd.Wait() }

// Supervisor hands out a live worker Proc, restarting a crashed one a
// bounded number of times. A worker that keeps dying is a broken binary or
// a poisoned environment — restarting it forever would spin, so past
// MaxRestarts the supervisor reports permanent failure and the caller
// (the farm coordinator) reroutes or fails the affected points.
//
// A Supervisor is confined to one goroutine (each farm worker loop owns
// exactly one); it needs and takes no locks.
type Supervisor struct {
	Argv     []string
	ExtraEnv []string
	Stderr   io.Writer
	// MaxRestarts bounds restarts after the initial start (0 means the
	// worker may start once and never be restarted).
	MaxRestarts int

	cur    *Proc
	starts int
}

// Proc returns the current live worker, starting or restarting one if
// needed. Once restarts are exhausted it returns an error forever.
func (s *Supervisor) Proc() (*Proc, error) {
	if s.cur != nil {
		return s.cur, nil
	}
	if s.starts > s.MaxRestarts {
		return nil, fmt.Errorf("cliutil: worker %v exhausted %d restarts", s.Argv, s.MaxRestarts)
	}
	p, err := StartProc(s.Argv, s.ExtraEnv, s.Stderr)
	if err != nil {
		return nil, err
	}
	s.starts++
	s.cur = p
	return p, nil
}

// Fail discards the current worker after a protocol or pipe failure: the
// process is stopped and reaped, and the next Proc call starts a fresh one
// (restart budget permitting).
func (s *Supervisor) Fail() {
	if s.cur != nil {
		s.cur.Stop()
		s.cur = nil
	}
}

// Starts reports how many times a worker has been started (1 = the initial
// start, each increment beyond that a restart).
func (s *Supervisor) Starts() int { return s.starts }

// Close stops the current worker, if any.
func (s *Supervisor) Close() { s.Fail() }
