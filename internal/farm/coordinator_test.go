package farm

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dclue/internal/core"
	"dclue/internal/sim"
	"dclue/internal/trace"
)

// tinyParams is a parameter set small enough that core.Run completes in
// tens of milliseconds, so subprocess round-trip tests stay cheap.
func tinyParams(seed uint64) core.Params {
	p := core.DefaultParams(2)
	p.Seed = seed
	p.Items = 100
	p.CustomersPerDist = 20
	p.Warmup = 10 * sim.Second
	p.Measure = 20 * sim.Second
	return p
}

// testConfig wires a coordinator to helper-process workers (see TestMain).
func testConfig(t *testing.T, workers int, mode string, extraEnv ...string) Config {
	t.Helper()
	return Config{
		Workers:    workers,
		Argv:       []string{os.Args[0]},
		ExtraEnv:   append([]string{helperEnv + "=" + mode}, extraEnv...),
		ResultsDir: filepath.Join(t.TempDir(), "results"),
		CacheDir:   filepath.Join(t.TempDir(), "cache"),
		Stderr:     io.Discard,
	}
}

func mustNew(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestCoordinatorMatchesInProcess is the farm's core contract at the unit
// level: a point executed in a worker process returns exactly the Metrics an
// in-process core.Run produces; a second coordinator on the same results
// directory serves it from checkpoint; a third with a fresh results
// directory but the same cache serves it from cache — all equal.
func TestCoordinatorMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	seeds := []uint64{1, 2, 3}
	want := make([]core.Metrics, len(seeds))
	for i, s := range seeds {
		m, err := core.Run(tinyParams(s))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}

	cfg := testConfig(t, 2, "worker")
	cold := mustNew(t, cfg)
	for i, s := range seeds {
		got, err := cold.Exec(tinyParams(s))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("seed %d: farm result differs from in-process run\n got %+v\nwant %+v", s, got, want[i])
		}
	}
	if st := cold.Stats(); st.Execs != 3 || st.Points != 3 || st.CheckpointHits != 0 || st.CacheHits != 0 {
		t.Fatalf("cold stats off: %+v", st)
	}
	cold.Close()

	warm := mustNew(t, cfg) // same results dir: every point checkpointed
	for i, s := range seeds {
		got, err := warm.Exec(tinyParams(s))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("seed %d: checkpoint result differs", s)
		}
	}
	if st := warm.Stats(); st.CheckpointHits != 3 || st.Execs != 0 {
		t.Fatalf("warm stats off: %+v", st)
	}
	warm.Close()

	cfg2 := cfg
	cfg2.ResultsDir = filepath.Join(t.TempDir(), "results2")
	cached := mustNew(t, cfg2) // fresh sweep, shared cache
	for i, s := range seeds {
		got, err := cached.Exec(tinyParams(s))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("seed %d: cache result differs", s)
		}
	}
	if st := cached.Stats(); st.CacheHits != 3 || st.Execs != 0 {
		t.Fatalf("cache stats off: %+v", st)
	}
}

// TestCoordinatorConcurrentExec drives Exec from more goroutines than
// workers, as the sweep pool does; run under -race this also checks the
// coordinator's internal synchronization.
func TestCoordinatorConcurrentExec(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	c := mustNew(t, testConfig(t, 2, "worker"))
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := 0; i < len(errs); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := c.Exec(tinyParams(uint64(i + 1)))
			if err == nil && m.TpmC <= 0 {
				err = io.ErrUnexpectedEOF
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("point %d: %v", i, err)
		}
	}
	if st := c.Stats(); st.Execs != 6 {
		t.Errorf("stats off: %+v", st)
	}
}

// TestCoordinatorInvalidation pins exact cache invalidation at the
// coordinator level: reruns hit; a seed flip, a parameter flip, or a code
// flip miss — and only the affected point re-executes.
func TestCoordinatorInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	cfg := testConfig(t, 1, "worker")
	cfg.CodeHash = "codeA"
	first := mustNew(t, cfg)
	if _, err := first.Exec(tinyParams(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := first.Exec(tinyParams(2)); err != nil {
		t.Fatal(err)
	}
	first.Close()

	// Same cache, new sweep: seed 1 unchanged (hit), seed 2 flipped to 3
	// (miss, one exec).
	cfg.ResultsDir = filepath.Join(t.TempDir(), "r2")
	second := mustNew(t, cfg)
	if _, err := second.Exec(tinyParams(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Exec(tinyParams(3)); err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.CacheHits != 1 || st.Execs != 1 {
		t.Fatalf("seed flip: want 1 hit + 1 exec, got %+v", st)
	}
	second.Close()

	// Parameter flip: same seed, one knob changed — miss.
	cfg.ResultsDir = filepath.Join(t.TempDir(), "r3")
	third := mustNew(t, cfg)
	q := tinyParams(1)
	q.Affinity = 0.5
	if _, err := third.Exec(q); err != nil {
		t.Fatal(err)
	}
	if st := third.Stats(); st.CacheHits != 0 || st.Execs != 1 {
		t.Fatalf("param flip: want pure exec, got %+v", st)
	}
	third.Close()

	// Code flip: identical point, different binary fingerprint — the whole
	// cache is dead to it.
	cfg.ResultsDir = filepath.Join(t.TempDir(), "r4")
	cfg.CodeHash = "codeB"
	fourth := mustNew(t, cfg)
	if _, err := fourth.Exec(tinyParams(1)); err != nil {
		t.Fatal(err)
	}
	if st := fourth.Stats(); st.CacheHits != 0 || st.Execs != 1 {
		t.Fatalf("code flip: want pure exec, got %+v", st)
	}

	// And a corrupted cache entry is recomputed, not trusted.
	cfg.ResultsDir = filepath.Join(t.TempDir(), "r5")
	cache, err := OpenStore(cfg.CacheDir)
	if err != nil {
		t.Fatal(err)
	}
	key := fourth.Key(tinyParams(1))
	if err := os.WriteFile(cache.Path(key), []byte(`{"key":"`+key+`","checksum":"00","metrics":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fourth.Close()
	fifth := mustNew(t, cfg)
	if _, err := fifth.Exec(tinyParams(1)); err != nil {
		t.Fatal(err)
	}
	if st := fifth.Stats(); st.CacheHits != 0 || st.Execs != 1 {
		t.Fatalf("corrupt entry: want recompute, got %+v", st)
	}
}

// TestCoordinatorTracedBreakdown: a traced point farms out with its stride,
// the worker re-attaches a collector, and the trace-derived Breakdown comes
// back exactly as an in-process traced run reports it.
func TestCoordinatorTracedBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	inproc := tinyParams(1)
	inproc.Trace = trace.NewCollector(1)
	want, err := core.Run(inproc)
	if err != nil {
		t.Fatal(err)
	}
	if want.Breakdown.Sampled == 0 {
		t.Fatal("fixture produced no sampled spans")
	}

	c := mustNew(t, testConfig(t, 1, "worker"))
	farmed := tinyParams(1)
	farmed.Trace = trace.NewCollector(1)
	got, err := c.Exec(farmed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("traced farm run differs from in-process\n got %+v\nwant %+v", got, want)
	}
	// The collector pointer must not leak into the key: two distinct
	// collectors with the same stride are the same point; a different
	// stride is a different point.
	k1 := c.Key(farmed)
	other := tinyParams(1)
	other.Trace = trace.NewCollector(1)
	if c.Key(other) != k1 {
		t.Error("collector identity leaked into the point key")
	}
	other.Trace = trace.NewCollector(4)
	if c.Key(other) == k1 {
		t.Error("trace stride not part of the point key")
	}
}

// TestCoordinatorWorkerKilledMidPoint: the worker is SIGKILLed after reading
// a job and before replying — the worst moment. The coordinator requeues the
// point, the supervisor restarts the worker, and the final result is
// identical to an undisturbed run; the checkpoint log shows the requeue and
// exactly one exec-done.
func TestCoordinatorWorkerKilledMidPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	want, err := core.Run(tinyParams(1))
	if err != nil {
		t.Fatal(err)
	}
	crashDir := writeCrashTokens(t, 1)
	cfg := testConfig(t, 1, "crashy", "DCLUE_FARM_CRASHDIR="+crashDir)
	c := mustNew(t, cfg)
	got, err := c.Exec(tinyParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result after worker kill differs from in-process run")
	}
	st := c.Stats()
	if st.Requeues != 1 || st.Restarts != 1 || st.Execs != 1 {
		t.Fatalf("want 1 requeue + 1 restart + 1 exec, got %+v", st)
	}
	evs, err := ReadLog(filepath.Join(cfg.ResultsDir, "log.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var starts, requeues, dones int
	for _, e := range evs {
		switch e.Event {
		case "exec-start":
			starts++
		case "requeue":
			requeues++
		case "exec-done":
			dones++
		}
	}
	if starts != 2 || requeues != 1 || dones != 1 {
		t.Fatalf("log: want 2 starts, 1 requeue, 1 done; got %d/%d/%d (%+v)", starts, requeues, dones, evs)
	}
}

// TestCoordinatorStatus: the live snapshot the -status endpoint serves tracks
// per-worker health (liveness, restart and served counts) and per-point
// states through a sweep that loses a worker mid-point.
func TestCoordinatorStatus(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	crashDir := writeCrashTokens(t, 1)
	cfg := testConfig(t, 1, "crashy", "DCLUE_FARM_CRASHDIR="+crashDir)
	c := mustNew(t, cfg)
	if _, err := c.Exec(tinyParams(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(tinyParams(2)); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if len(st.Workers) != 1 {
		t.Fatalf("want 1 worker slot, got %d", len(st.Workers))
	}
	w := st.Workers[0]
	if !w.Alive || w.Restarts != 1 || w.Served != 2 || w.Current != "" {
		t.Fatalf("worker slot off after kill+recovery: %+v", w)
	}
	if len(st.Points) != 2 {
		t.Fatalf("want 2 points tracked, got %d: %+v", len(st.Points), st.Points)
	}
	for k, state := range st.Points {
		if state != "done" {
			t.Errorf("point %.12s: want done, got %q", k, state)
		}
	}
	if st.Stats != c.Stats() {
		t.Fatalf("status stats diverge from Stats(): %+v vs %+v", st.Stats, c.Stats())
	}
	// A re-executed point flips its state to the hit kind that served it.
	if _, err := c.Exec(tinyParams(1)); err != nil {
		t.Fatal(err)
	}
	if got := c.Status().Points[c.Key(tinyParams(1))]; got != "checkpoint-hit" {
		t.Fatalf("re-served point state: want checkpoint-hit, got %q", got)
	}
}

// TestCoordinatorWorkersExhausted: a worker that keeps dying exhausts its
// restart budget; with no workers left the point fails with a clear error
// instead of hanging.
func TestCoordinatorWorkersExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	crashDir := writeCrashTokens(t, 10)
	cfg := testConfig(t, 1, "crashy", "DCLUE_FARM_CRASHDIR="+crashDir)
	cfg.WorkerRestarts = 1
	c := mustNew(t, cfg)
	_, err := c.Exec(tinyParams(1))
	if err == nil {
		t.Fatal("point succeeded with every worker dead")
	}
	if !strings.Contains(err.Error(), "workers dead") && !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("unhelpful failure: %v", err)
	}
}

// TestCoordinatorDeterministicErrorNotRetried: a simulation-level failure
// (here: a panic on invalid parameters, caught by the worker) travels
// in-band, is not retried, and does not kill the worker — the next point on
// the same worker succeeds.
func TestCoordinatorDeterministicErrorNotRetried(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	c := mustNew(t, testConfig(t, 1, "worker"))
	bad := tinyParams(1)
	bad.Scale = 0 // core.New panics: "Params.Scale must be positive"
	if _, err := c.Exec(bad); err == nil {
		t.Fatal("invalid point succeeded")
	} else if !strings.Contains(err.Error(), "Scale") {
		t.Fatalf("error lost its cause: %v", err)
	}
	if st := c.Stats(); st.Failures != 1 || st.Requeues != 0 || st.Restarts != 0 {
		t.Fatalf("deterministic failure was retried: %+v", st)
	}
	if _, err := c.Exec(tinyParams(1)); err != nil {
		t.Fatalf("worker did not survive the failed point: %v", err)
	}
}
