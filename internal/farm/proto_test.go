package farm

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dclue/internal/core"
)

func TestJobRoundTrip(t *testing.T) {
	j := Job{ID: 7, Key: "abc", Params: core.DefaultParams(2), TraceSample: 3}
	line, err := EncodeJob(j)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(line, []byte("\n")) || bytes.Count(line, []byte("\n")) != 1 {
		t.Fatalf("not a single newline-terminated line: %q", line)
	}
	got, err := DecodeJob(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, j) {
		t.Fatalf("round trip changed job:\n got %+v\nwant %+v", got, j)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	m := sampleMetrics(2)
	r := Reply{ID: 7, Key: "abc", Metrics: &m}
	line, err := EncodeReply(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReply(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip changed reply:\n got %+v\nwant %+v", got, r)
	}
	errRep := Reply{ID: 9, Key: "abc", Err: "boom"}
	line, _ = EncodeReply(errRep)
	if got, err := DecodeReply(line); err != nil || !reflect.DeepEqual(got, errRep) {
		t.Fatalf("error reply round trip: %+v, %v", got, err)
	}
}

// TestDecodeStrictness pins the fail-fast contract: anything that is not one
// complete, exactly-shaped protocol object on a line is rejected outright.
func TestDecodeStrictness(t *testing.T) {
	good, _ := EncodeJob(Job{ID: 1, Key: "k", Params: core.DefaultParams(2)})
	goodReply, _ := EncodeReply(Reply{ID: 1, Err: "x"})
	bad := map[string]string{
		"empty":           "",
		"not-json":        "hello",
		"truncated":       string(good[:len(good)/2]),
		"unknown-field":   `{"id":1,"key":"k","bogus":true}`,
		"trailing-data":   strings.TrimSuffix(string(good), "\n") + ` {"id":2}`,
		"two-objects":     strings.TrimSuffix(string(good), "\n") + strings.TrimSuffix(string(good), "\n"),
		"array-not-obj":   `[1,2,3]`,
		"missing-key":     `{"id":1}`,
		"negative-sample": `{"id":1,"key":"k","trace_sample":-2}`,
	}
	for name, line := range bad {
		t.Run("job/"+name, func(t *testing.T) {
			if j, err := DecodeJob([]byte(line)); err == nil {
				t.Fatalf("accepted %q as %+v", line, j)
			}
		})
	}
	badReply := map[string]string{
		"empty":            "",
		"neither-result":   `{"id":1,"key":"k"}`,
		"unknown-field":    `{"id":1,"err":"x","extra":0}`,
		"trailing-garbage": strings.TrimSuffix(string(goodReply), "\n") + "}",
	}
	for name, line := range badReply {
		t.Run("reply/"+name, func(t *testing.T) {
			if r, err := DecodeReply([]byte(line)); err == nil {
				t.Fatalf("accepted %q as %+v", line, r)
			}
		})
	}
}

// TestDecodeRejectsOversizeLine: the MaxLineBytes bound applies to the
// decoders themselves, not just the scanner.
func TestDecodeRejectsOversizeLine(t *testing.T) {
	line := append([]byte(`{"key":"`), bytes.Repeat([]byte("a"), MaxLineBytes)...)
	line = append(line, []byte(`"}`)...)
	if _, err := DecodeJob(line); err == nil {
		t.Fatal("oversize line accepted")
	}
}

// TestLineScannerBound: an overlong line terminates the scan with an error
// instead of growing the buffer without bound.
func TestLineScannerBound(t *testing.T) {
	big := strings.Repeat("x", MaxLineBytes+1024)
	sc := NewLineScanner(strings.NewReader(big))
	for sc.Scan() {
	}
	if sc.Err() == nil {
		t.Fatal("oversize stream scanned without error")
	}
}
