package farm

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// The coordinator tests need real worker subprocesses. Rather than building
// a separate binary, the test binary re-execs itself: TestMain inspects
// DCLUE_FARM_HELPER and, when set, becomes a worker instead of running the
// test suite (the standard helper-process pattern).
const helperEnv = "DCLUE_FARM_HELPER"

func TestMain(m *testing.M) {
	switch mode := os.Getenv(helperEnv); mode {
	case "":
		os.Exit(m.Run())
	case "worker":
		// A faithful production worker.
		if err := Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "helper worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	case "crashy":
		crashyServe()
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "unknown helper mode %q\n", mode)
		os.Exit(2)
	}
}

// crashyServe is a worker that SIGKILLs itself mid-point — after reading a
// job, before replying — once per crash token it can claim from the
// directory named by DCLUE_FARM_CRASHDIR. Out of tokens, it serves normally.
// Self-SIGKILL is the genuine article: no deferred cleanup, no flush, the
// pipe just dies, exactly as if an operator or the OOM killer shot the
// worker.
func crashyServe() {
	dir := os.Getenv("DCLUE_FARM_CRASHDIR")
	sc := NewLineScanner(os.Stdin)
	w := bufio.NewWriter(os.Stdout)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if claimCrashToken(dir) {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		var rep Reply
		job, err := DecodeJob(line)
		if err != nil {
			rep = Reply{Err: err.Error()}
		} else {
			rep = runJob(job)
		}
		b, err := EncodeReply(rep)
		if err != nil {
			os.Exit(1)
		}
		w.Write(b)
		w.Flush()
	}
}

// claimCrashToken removes one file from dir, returning whether it won one.
// Tokens make the crash budget race-free across concurrent workers: os.Remove
// succeeds in exactly one claimant.
func claimCrashToken(dir string) bool {
	if dir == "" {
		return false
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if os.Remove(filepath.Join(dir, e.Name())) == nil {
			return true
		}
	}
	return false
}

// writeCrashTokens populates a fresh token directory with n claimable files.
func writeCrashTokens(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("tok%d", i)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}
