package farm

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dclue/internal/core"
)

// fuzzSeeds is the shared corpus for the protocol fuzzers: valid frames,
// every flavor of malformed/truncated/interleaved JSON, and — following the
// repo's cross-seeding discipline (FuzzParseFaultSpec seeds its corpus with
// the lint-directive grammar and vice versa) — shapes from the fault-spec
// and suppression-comment mini-grammars, so inputs valid in one of the
// repo's hand-rolled formats are proven inert in this one.
func fuzzSeeds(f *testing.F) {
	p := core.DefaultParams(2)
	goodJob, _ := EncodeJob(Job{ID: 1, Key: "k", Params: p, TraceSample: 2})
	goodReply, _ := EncodeReply(Reply{ID: 1, Key: "k", Err: "boom"})
	m := core.Metrics{TpmC: 1}
	metricsReply, _ := EncodeReply(Reply{ID: 2, Key: "k", Metrics: &m})
	seeds := []string{
		// Well-formed frames and streams.
		string(goodJob),
		string(goodReply),
		string(metricsReply),
		string(goodJob) + string(goodReply),
		"\n\n" + string(goodJob),
		// Truncations and splices.
		string(goodJob[:len(goodJob)/2]),
		string(goodJob[:len(goodJob)-2]) + string(goodReply),
		strings.TrimSuffix(string(goodJob), "\n") + strings.TrimSuffix(string(goodReply), "\n") + "\n",
		// Structural JSON abuse.
		"{}",
		"[]",
		"null",
		`{"id":`,
		`{"id":1,"key":"k","bogus":true}`,
		`{"id":1,"key":"k"} {"id":2,"key":"q"}`,
		`{"id":18446744073709551616,"key":"k"}`, // uint64 overflow
		`{"id":-1,"key":"k"}`,
		`{"id":1,"key":"k","trace_sample":-3}`,
		`{"id":1,"key":"k","params":{"Seed":"notanumber"}}`,
		`{"id":1,"metrics":{"TpmC":"NaN"}}`,
		`{"id":1,"metrics":null,"err":""}`,
		strings.Repeat(`{"id":1,`, 1000),
		"\x00\x01\x02",
		strings.Repeat("[", 10000), // deep nesting
		// Cross-grammar shapes: fault schedules and lint directives.
		"linkdown:node:1@60+10",
		"loss:interlata:0@80+20=0.3",
		"//lint:allow simtime reason",
		"/*lint:allow maporder reason*/",
		`{"id":1,"key":"linkdown:node:1@60+10"}`,
		`{"id":1,"key":"//lint:allow simtime reason","err":"x"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
}

// FuzzWorkerProtocol holds both protocol decoders — and the worker's serve
// loop around them — to their robustness contract: arbitrary input bytes
// never panic and never hang; whatever DOES decode round-trips exactly; and
// every line the serve loop emits is itself a well-formed Reply frame.
//
// The serve loop is exercised with the job runner stubbed out (a real job
// would start a simulation; the fuzzer's job is the framing around it, and
// runJob's panic-safety is pinned by the coordinator tests).
func FuzzWorkerProtocol(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, line := range bytes.Split(data, []byte("\n")) {
			if job, err := DecodeJob(line); err == nil {
				// Accepted jobs must re-encode and re-decode to themselves:
				// the wire format has one canonical form per value.
				enc, err := EncodeJob(job)
				if err != nil {
					t.Fatalf("accepted job does not re-encode: %+v: %v", job, err)
				}
				job2, err := DecodeJob(bytes.TrimSuffix(enc, []byte("\n")))
				if err != nil || !reflect.DeepEqual(job2, job) {
					t.Fatalf("job round-trip unstable: %+v -> %+v (%v)", job, job2, err)
				}
			}
			if rep, err := DecodeReply(line); err == nil {
				enc, err := EncodeReply(rep)
				if err != nil {
					t.Fatalf("accepted reply does not re-encode: %+v: %v", rep, err)
				}
				rep2, err := DecodeReply(enc)
				if err != nil || !reflect.DeepEqual(rep2, rep) {
					t.Fatalf("reply round-trip unstable: %+v -> %+v (%v)", rep, rep2, err)
				}
			}
		}

		// Drive the serve loop's framing over the whole stream. Decodable
		// jobs are answered by a stub (no simulation); everything else takes
		// the in-band error path — exactly Serve's structure.
		var out bytes.Buffer
		serveFramesForFuzz(data, &out)
		for _, line := range bytes.Split(out.Bytes(), []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			if _, err := DecodeReply(line); err != nil {
				t.Fatalf("serve loop emitted an undecodable reply %q: %v", line, err)
			}
		}
	})
}

// serveFramesForFuzz mirrors Serve's scan/decode/reply framing with job
// execution stubbed to a fixed result.
func serveFramesForFuzz(data []byte, out *bytes.Buffer) {
	sc := NewLineScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rep Reply
		if job, err := DecodeJob(line); err != nil {
			rep = Reply{Err: err.Error()}
		} else {
			m := core.Metrics{TpmC: 1}
			rep = Reply{ID: job.ID, Key: job.Key, Metrics: &m}
		}
		b, err := EncodeReply(rep)
		if err != nil {
			return
		}
		out.Write(b)
	}
}
