package farm

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"dclue/internal/cliutil"
	"dclue/internal/core"
)

// Config configures a Coordinator.
type Config struct {
	// Workers is the number of worker processes (at least 1).
	Workers int
	// Argv is the worker command line (e.g. the dclueexp binary with
	// -worker).
	Argv []string
	// ExtraEnv entries (KEY=VALUE) are appended to each worker's
	// environment.
	ExtraEnv []string
	// ResultsDir is this sweep's checkpoint directory: one atomically
	// written entry per completed point plus the log.jsonl checkpoint log.
	// Restarting an interrupted sweep against the same directory re-serves
	// every completed point from its checkpoint and re-runs only the rest.
	ResultsDir string
	// CacheDir is the cross-sweep content-addressed result cache. Entries
	// are keyed with the code hash, so a rebuilt binary never reads a stale
	// result. Empty disables the cache layer (checkpoints still work).
	CacheDir string
	// CodeHash overrides the executable fingerprint (tests flip it to prove
	// invalidation); empty computes CodeHash() of this process.
	CodeHash string
	// WorkerRestarts bounds how many times one crashed worker process is
	// restarted (default 3).
	WorkerRestarts int
	// PointAttempts bounds how many times one point is re-dispatched after
	// worker deaths before the point fails (default 3). Deterministic
	// simulation errors are never retried — the same params would fail the
	// same way.
	PointAttempts int
	// Stderr receives the workers' stderr streams (default os.Stderr).
	Stderr io.Writer
}

// Stats counts what the coordinator did. Points = CheckpointHits +
// CacheHits + Execs + Failures.
type Stats struct {
	Points         uint64 // Exec calls served
	CheckpointHits uint64 // served from this sweep's results directory
	CacheHits      uint64 // served from the cross-sweep cache
	Execs          uint64 // actually run on a worker
	Failures       uint64 // points that returned an error
	Requeues       uint64 // dispatch attempts lost to a dying worker
	Restarts       uint64 // worker processes restarted after a crash
}

// LogEvent is one checkpoint-log line: an append-only record of how each
// point was satisfied. The log is the kill-and-resume proof artifact — a
// point's "exec-done" appears at most once across an interrupted sweep and
// all its resumptions, because a completed checkpoint is always served as a
// hit afterwards.
type LogEvent struct {
	Event  string `json:"event"` // checkpoint-hit | cache-hit | exec-start | exec-done | exec-fail | requeue
	Key    string `json:"key"`
	Worker int    `json:"worker,omitempty"`
}

// pending is one point waiting for a worker.
type pending struct {
	job      Job
	attempts int
	done     chan pointResult
}

type pointResult struct {
	m   core.Metrics
	err error
}

// Coordinator shards simulation points across worker processes with
// checkpointing and caching. Its Exec method satisfies runner.Exec and is
// safe for concurrent use from every sweep-pool goroutine; in-flight points
// beyond the worker count queue.
type Coordinator struct {
	cfg      Config
	codeHash string
	results  *Store
	cache    *Store // nil when disabled

	jobs chan *pending
	quit chan struct{}
	wg   sync.WaitGroup

	logMu   sync.Mutex
	logFile *os.File

	mu      sync.Mutex
	stats   Stats
	alive   int
	nextID  uint64
	workers []WorkerStatus
	points  map[string]string
}

// WorkerStatus is one worker slot's live state, as reported by Status.
type WorkerStatus struct {
	ID       int    `json:"id"`
	Alive    bool   `json:"alive"`
	Restarts uint64 `json:"restarts"` // process restarts after crashes
	Served   uint64 `json:"served"`   // replies successfully read
	Current  string `json:"current,omitempty"` // key of the point in flight
}

// Status is a live snapshot of the farm: the cumulative counters, each
// worker slot's health, and every point's current state
// (queued | running | done | failed | checkpoint-hit | cache-hit).
type Status struct {
	Stats   Stats             `json:"stats"`
	Workers []WorkerStatus    `json:"workers"`
	Points  map[string]string `json:"points"`
}

// Status returns a consistent snapshot for the live status endpoint.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := make([]WorkerStatus, len(c.workers))
	copy(ws, c.workers)
	pts := make(map[string]string, len(c.points))
	for k, v := range c.points {
		pts[k] = v
	}
	return Status{Stats: c.stats, Workers: ws, Points: pts}
}

// setPoint records a point's current state.
func (c *Coordinator) setPoint(key, state string) {
	c.mu.Lock()
	if c.points == nil {
		c.points = make(map[string]string)
	}
	c.points[key] = state
	c.mu.Unlock()
}

// setWorker mutates one worker slot's status under the lock.
func (c *Coordinator) setWorker(id int, f func(*WorkerStatus)) {
	c.mu.Lock()
	f(&c.workers[id])
	c.mu.Unlock()
}

// New opens the stores and spawn-supervises cfg.Workers worker processes.
// Callers must Close the coordinator to stop the workers.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Workers < 1 {
		return nil, errors.New("farm: need at least one worker")
	}
	if len(cfg.Argv) == 0 {
		return nil, errors.New("farm: no worker command")
	}
	if cfg.ResultsDir == "" {
		return nil, errors.New("farm: no results directory")
	}
	if cfg.WorkerRestarts == 0 {
		cfg.WorkerRestarts = 3
	}
	if cfg.PointAttempts == 0 {
		cfg.PointAttempts = 3
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	codeHash := cfg.CodeHash
	if codeHash == "" {
		var err error
		if codeHash, err = CodeHash(); err != nil {
			return nil, fmt.Errorf("farm: fingerprint executable: %w", err)
		}
	}
	results, err := OpenStore(cfg.ResultsDir)
	if err != nil {
		return nil, err
	}
	var cache *Store
	if cfg.CacheDir != "" {
		if cache, err = OpenStore(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	logFile, err := os.OpenFile(filepath.Join(cfg.ResultsDir, "log.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: open checkpoint log: %w", err)
	}
	c := &Coordinator{
		cfg:      cfg,
		codeHash: codeHash,
		results:  results,
		cache:    cache,
		jobs:     make(chan *pending),
		quit:     make(chan struct{}),
		logFile:  logFile,
		alive:    cfg.Workers,
		points:   make(map[string]string),
	}
	c.workers = make([]WorkerStatus, cfg.Workers)
	for i := range c.workers {
		c.workers[i] = WorkerStatus{ID: i, Alive: true}
	}
	for i := 0; i < cfg.Workers; i++ {
		sup := &cliutil.Supervisor{
			Argv:        cfg.Argv,
			ExtraEnv:    cfg.ExtraEnv,
			Stderr:      cfg.Stderr,
			MaxRestarts: cfg.WorkerRestarts,
		}
		c.wg.Add(1)
		go c.workerLoop(i, sup)
	}
	return c, nil
}

// Close stops the worker pool and closes the checkpoint log. Exec calls
// still in flight fail with a shutdown error.
func (c *Coordinator) Close() {
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	c.wg.Wait()
	c.logMu.Lock()
	defer c.logMu.Unlock()
	c.logFile.Close()
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Key returns the content-addressed identity Exec would use for p — the
// cache-correctness tests compare keys across parameter flips through this.
func (c *Coordinator) Key(p core.Params) string {
	p, ex := splitAttachments(p)
	return PointKey(c.codeHash, p, ex)
}

// splitAttachments strips the process-local collectors from p, returning the
// wire form and the attachment extras the worker should re-attach.
func splitAttachments(p core.Params) (core.Params, Extras) {
	var ex Extras
	if p.Trace != nil {
		ex.TraceSample = p.Trace.SampleEvery()
		p.Trace = nil
	}
	if p.Telemetry != nil {
		ex.Telemetry = true
		ex.TelemetryBucket = p.Telemetry.Bucket()
		p.Telemetry = nil
	}
	return p, ex
}

// Exec satisfies runner.Exec: it serves the point from this sweep's
// checkpoints, then from the cache, and otherwise ships it to a worker —
// checkpointing the result before returning it. Identical inputs yield
// identical results wherever they are computed, so the calling sweep cannot
// tell the difference (beyond wall-clock).
func (c *Coordinator) Exec(p core.Params) (core.Metrics, error) {
	wire, ex := splitAttachments(p)
	key := PointKey(c.codeHash, wire, ex)

	if m, ok := c.results.Get(key); ok {
		c.count(func(s *Stats) { s.Points++; s.CheckpointHits++ })
		c.setPoint(key, "checkpoint-hit")
		c.logEvent(LogEvent{Event: "checkpoint-hit", Key: key})
		return m, nil
	}
	if c.cache != nil {
		if m, ok := c.cache.Get(key); ok {
			// Materialize the hit as a checkpoint so the results directory
			// is the sweep's complete record even on a fully warm cache.
			if err := c.results.Put(key, m); err != nil {
				return core.Metrics{}, err
			}
			c.count(func(s *Stats) { s.Points++; s.CacheHits++ })
			c.setPoint(key, "cache-hit")
			c.logEvent(LogEvent{Event: "cache-hit", Key: key})
			return m, nil
		}
	}

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	c.setPoint(key, "queued")
	pd := &pending{
		job: Job{ID: id, Key: key, Params: wire, TraceSample: ex.TraceSample,
			Telemetry: ex.Telemetry, TelemetryBucket: ex.TelemetryBucket},
		done: make(chan pointResult, 1),
	}
	select {
	case c.jobs <- pd:
	case <-c.quit:
		return core.Metrics{}, errors.New("farm: coordinator closed")
	}
	select {
	case r := <-pd.done:
		if r.err != nil {
			c.count(func(s *Stats) { s.Points++; s.Failures++ })
			c.setPoint(key, "failed")
			c.logEvent(LogEvent{Event: "exec-fail", Key: key})
			return core.Metrics{}, r.err
		}
		if err := c.results.Put(key, r.m); err != nil {
			return core.Metrics{}, err
		}
		if c.cache != nil {
			if err := c.cache.Put(key, r.m); err != nil {
				return core.Metrics{}, err
			}
		}
		c.count(func(s *Stats) { s.Points++; s.Execs++ })
		c.setPoint(key, "done")
		c.logEvent(LogEvent{Event: "exec-done", Key: key})
		return r.m, nil
	case <-c.quit:
		return core.Metrics{}, errors.New("farm: coordinator closed")
	}
}

// workerLoop owns one worker process (through its supervisor): it takes
// queued points, runs the one-job-one-reply conversation, and on any pipe or
// protocol failure kills the worker, requeues the point, and lets the
// supervisor start a replacement — crashing workers cost wall-clock, never
// results.
func (c *Coordinator) workerLoop(id int, sup *cliutil.Supervisor) {
	defer c.wg.Done()
	defer sup.Close()
	var sc *bufio.Scanner // reply scanner for the current worker process
	for {
		select {
		case pd := <-c.jobs:
			if !c.serve(id, sup, &sc, pd) {
				// The supervisor is out of restarts: this worker slot is
				// permanently dead and must stop taking jobs (each would
				// only bounce back to the queue).
				return
			}
		case <-c.quit:
			return
		}
	}
}

// serve runs one point to completion, failure, or requeue. It returns false
// when this worker slot has permanently failed and its loop must exit.
func (c *Coordinator) serve(id int, sup *cliutil.Supervisor, sc **bufio.Scanner, pd *pending) bool {
	for {
		if pd.attempts >= c.cfg.PointAttempts {
			pd.done <- pointResult{err: fmt.Errorf("farm: point %.12s lost %d workers; giving up", pd.job.Key, pd.attempts)}
			return true
		}
		pd.attempts++

		w, err := sup.Proc()
		if err != nil {
			// This worker slot is permanently dead. Hand the point to the
			// remaining workers — unless this was the last one, in which
			// case the whole farm has failed.
			c.mu.Lock()
			c.alive--
			last := c.alive == 0
			c.workers[id].Alive = false
			c.workers[id].Current = ""
			c.mu.Unlock()
			if last {
				pd.done <- pointResult{err: fmt.Errorf("farm: all workers dead: %w", err)}
			} else {
				c.requeue(pd)
			}
			return false
		}
		fresh := sup.Starts() // detect restarts for the stats
		if *sc == nil {
			*sc = NewLineScanner(w.Stdout())
			if fresh > 1 {
				c.count(func(s *Stats) { s.Restarts++ })
				c.setWorker(id, func(ws *WorkerStatus) { ws.Restarts++ })
			}
		}

		c.setPoint(pd.job.Key, "running")
		c.setWorker(id, func(ws *WorkerStatus) { ws.Current = pd.job.Key })
		c.logEvent(LogEvent{Event: "exec-start", Key: pd.job.Key, Worker: id})
		line, err := EncodeJob(pd.job)
		if err != nil {
			pd.done <- pointResult{err: fmt.Errorf("farm: encode job: %w", err)}
			return true
		}
		if err := w.Send(line); err != nil {
			c.workerDied(id, sup, sc, pd)
			continue
		}
		rep, err := c.readReply(*sc, pd.job)
		if err != nil {
			c.workerDied(id, sup, sc, pd)
			continue
		}
		c.setWorker(id, func(ws *WorkerStatus) { ws.Served++; ws.Current = "" })
		if rep.Err != "" {
			// In-band: a deterministic simulation failure. Retrying would
			// reproduce it, so report it as the point's result.
			pd.done <- pointResult{err: errors.New(rep.Err)}
			return true
		}
		pd.done <- pointResult{m: *rep.Metrics}
		return true
	}
}

// workerDied handles a pipe/protocol failure: the worker is discarded (the
// supervisor will start a fresh one within its restart budget) and the point
// is recorded as requeued for another attempt.
func (c *Coordinator) workerDied(id int, sup *cliutil.Supervisor, sc **bufio.Scanner, pd *pending) {
	sup.Fail()
	*sc = nil
	c.count(func(s *Stats) { s.Requeues++ })
	c.setWorker(id, func(ws *WorkerStatus) { ws.Current = "" })
	c.setPoint(pd.job.Key, "queued")
	c.logEvent(LogEvent{Event: "requeue", Key: pd.job.Key, Worker: id})
}

// readReply reads the worker's next reply for job. The worker serves jobs
// strictly in order, so the next well-formed reply must carry this job's ID
// and key; anything else means the stream is corrupt and the worker must be
// replaced.
func (c *Coordinator) readReply(sc *bufio.Scanner, job Job) (Reply, error) {
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Reply{}, err
		}
		return Reply{}, io.ErrUnexpectedEOF
	}
	rep, err := DecodeReply(sc.Bytes())
	if err != nil {
		return Reply{}, err
	}
	if rep.ID != job.ID || rep.Key != job.Key {
		return Reply{}, fmt.Errorf("farm: reply for %d/%.12s while waiting on %d/%.12s",
			rep.ID, rep.Key, job.ID, job.Key)
	}
	return rep, nil
}

// requeue reinserts a point into the job queue without blocking the caller's
// worker loop (the queue is unbuffered; a blocked send here while every
// other loop waits on the same queue would wedge the farm).
func (c *Coordinator) requeue(pd *pending) {
	go func() {
		select {
		case c.jobs <- pd:
		case <-c.quit:
		}
	}()
}

// count updates the stats under the coordinator lock.
func (c *Coordinator) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// logEvent appends one line to the checkpoint log. Each line is rendered in
// full and written with a single Write under the log lock, so concurrent
// points never interleave mid-line; O_APPEND makes the write atomic with
// respect to a coordinator killed mid-sweep (readers tolerate one torn final
// line).
func (c *Coordinator) logEvent(e LogEvent) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	c.logMu.Lock()
	defer c.logMu.Unlock()
	c.logFile.Write(append(b, '\n'))
}

// ReadLog parses a checkpoint log, tolerating a torn final line (a
// coordinator killed mid-write). Used by the resume machinery's tests and
// the CI smoke job to audit what a sweep actually executed.
func ReadLog(path string) ([]LogEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var evs []LogEvent
	sc := NewLineScanner(f)
	for sc.Scan() {
		var e LogEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // torn tail from a killed writer
		}
		evs = append(evs, e)
	}
	return evs, sc.Err()
}
