package farm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dclue/internal/core"
)

// sampleMetrics builds a distinctive Metrics value without running a
// simulation; v differentiates entries.
func sampleMetrics(v float64) core.Metrics {
	return core.Metrics{
		Nodes:      4,
		Affinity:   0.8,
		TpmC:       1234.5 + v,
		RespTimeMs: 42.25 * v,
		NetDrops:   uint64(v),
		Timeline:   []core.TimelinePoint{{T: 1, TxnRate: v}},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("hit on an absent key")
	}
	want := sampleMetrics(3)
	if err := s.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed metrics:\n got %+v\nwant %+v", got, want)
	}
	// Overwrite is atomic and last-write-wins.
	want2 := sampleMetrics(7)
	if err := s.Put("k1", want2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("k1"); !reflect.DeepEqual(got, want2) {
		t.Fatalf("overwrite not visible: got %+v", got)
	}
}

// TestStoreCorruptionDetected pins the integrity contract: a truncated,
// bit-flipped, or mislabeled entry reads as a miss — never as data — and a
// subsequent Put heals it.
func TestStoreCorruptionDetected(t *testing.T) {
	corrupt := map[string]func(path string, t *testing.T){
		"truncated": func(path string, t *testing.T) {
			b, _ := os.ReadFile(path)
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bit-flipped-metrics": func(path string, t *testing.T) {
			b, _ := os.ReadFile(path)
			// Flip a digit inside the metrics payload without breaking the
			// JSON framing: only the checksum can catch this one.
			s := strings.Replace(string(b), "1237.5", "9237.5", 1)
			if s == string(b) {
				t.Fatal("fixture drift: expected TpmC 1237.5 in entry")
			}
			if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"wrong-key": func(path string, t *testing.T) {
			b, _ := os.ReadFile(path)
			var e map[string]json.RawMessage
			if err := json.Unmarshal(b, &e); err != nil {
				t.Fatal(err)
			}
			e["key"] = json.RawMessage(`"other"`)
			nb, _ := json.Marshal(e)
			if err := os.WriteFile(path, nb, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty": func(path string, t *testing.T) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"garbage": func(path string, t *testing.T) {
			if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, mangle := range corrupt {
		t.Run(name, func(t *testing.T) {
			s, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			want := sampleMetrics(3)
			if err := s.Put("k1", want); err != nil {
				t.Fatal(err)
			}
			mangle(s.Path("k1"), t)
			if m, ok := s.Get("k1"); ok {
				t.Fatalf("corrupt entry served as data: %+v", m)
			}
			// Recompute-and-Put heals the entry.
			if err := s.Put("k1", want); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("k1"); !ok || !reflect.DeepEqual(got, want) {
				t.Fatalf("Put did not heal corrupt entry (ok=%v)", ok)
			}
		})
	}
}

// TestStoreNoTempLitter: Put leaves no temporary files behind on the happy
// path, so a results directory holds exactly one file per point plus the log.
func TestStoreNoTempLitter(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put("k", sampleMetrics(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "k.json" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("unexpected directory contents: %v", names)
	}
	if filepath.Base(s.Path("k")) != "k.json" {
		t.Fatalf("Path mismatch: %s", s.Path("k"))
	}
}
