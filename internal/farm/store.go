package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dclue/internal/core"
)

// Store is a content-addressed result store: one file per point key holding
// the point's Metrics plus an integrity checksum. The same type backs both
// layers of the farm's persistence — the per-sweep results (checkpoint)
// directory and the cross-sweep cache directory — because both answer the
// same question: "has this exact point already been computed, and can the
// stored answer be trusted byte for byte?"
type Store struct {
	dir string
}

// entry is the on-disk format. Checksum covers the raw Metrics JSON, so a
// truncated, bit-flipped, or hand-edited entry is detected on read and
// treated as a miss (recomputed), never trusted.
type entry struct {
	Key      string          `json:"key"`
	Checksum string          `json:"checksum"`
	Metrics  json.RawMessage `json:"metrics"`
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the entry file for a key.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Get returns the stored metrics for key. The boolean is false — a miss —
// when no entry exists or the entry fails any integrity check; a corrupt
// entry is reported like an absent one so callers recompute instead of
// trusting it (the next Put atomically replaces it).
func (s *Store) Get(key string) (core.Metrics, bool) {
	b, err := os.ReadFile(s.Path(key))
	if err != nil {
		return core.Metrics{}, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key {
		return core.Metrics{}, false
	}
	sum := sha256.Sum256(e.Metrics)
	if hex.EncodeToString(sum[:]) != e.Checksum {
		return core.Metrics{}, false
	}
	var m core.Metrics
	if err := json.Unmarshal(e.Metrics, &m); err != nil {
		return core.Metrics{}, false
	}
	return m, true
}

// Put stores metrics under key atomically: the entry is written to a
// temporary file in the same directory and renamed into place, so a reader
// (or a process killed mid-write) sees either the previous state or the
// complete new entry, never a torn one. Concurrent writers of the same key
// are idempotent — every writer of a key writes identical content by the
// executor's determinism contract.
func (s *Store) Put(key string, m core.Metrics) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("farm: marshal metrics: %w", err)
	}
	sum := sha256.Sum256(raw)
	b, err := json.Marshal(entry{Key: key, Checksum: hex.EncodeToString(sum[:]), Metrics: raw})
	if err != nil {
		return fmt.Errorf("farm: marshal entry: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+key+"-*")
	if err != nil {
		return fmt.Errorf("farm: store put: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("farm: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("farm: store put: %w", err)
	}
	if err := os.Rename(name, s.Path(key)); err != nil {
		os.Remove(name)
		return fmt.Errorf("farm: store put: %w", err)
	}
	return nil
}
