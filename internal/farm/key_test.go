package farm

import (
	"regexp"
	"testing"

	"dclue/internal/core"
	"dclue/internal/sim"
)

// TestPointKeyDeterministic: the key is a pure function of its inputs and a
// well-formed hex sha256 digest.
func TestPointKeyDeterministic(t *testing.T) {
	p := core.DefaultParams(4)
	k1 := PointKey("code", p, Extras{})
	k2 := PointKey("code", p, Extras{})
	if k1 != k2 {
		t.Fatalf("key not deterministic: %s vs %s", k1, k2)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(k1) {
		t.Fatalf("not a hex sha256: %q", k1)
	}
}

// TestPointKeyFlips pins exact invalidation: flipping the seed, a single
// parameter, the trace stride, the telemetry attachment, or the code hash
// each changes the key, and flipping it back restores it.
func TestPointKeyFlips(t *testing.T) {
	base := core.DefaultParams(4)
	k := PointKey("code", base, Extras{})

	seedFlip := base
	seedFlip.Seed++
	if PointKey("code", seedFlip, Extras{}) == k {
		t.Error("seed flip did not change the key")
	}

	paramFlip := base
	paramFlip.Items++
	if PointKey("code", paramFlip, Extras{}) == k {
		t.Error("parameter flip did not change the key")
	}

	if PointKey("othercode", base, Extras{}) == k {
		t.Error("code-hash flip did not change the key")
	}
	if PointKey("code", base, Extras{TraceSample: 5}) == k {
		t.Error("trace-stride flip did not change the key")
	}
	tele := PointKey("code", base, Extras{Telemetry: true})
	if tele == k {
		t.Error("telemetry flip did not change the key")
	}
	if PointKey("code", base, Extras{Telemetry: true, TelemetryBucket: sim.Second}) == tele {
		t.Error("telemetry-bucket flip did not change the key")
	}

	if PointKey("code", core.DefaultParams(4), Extras{}) != k {
		t.Error("identical inputs produced a different key")
	}
}

// TestCodeHashStable: the executable fingerprint is memoized and non-empty.
func TestCodeHashStable(t *testing.T) {
	h1, err := CodeHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := CodeHash()
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("unstable or malformed code hash: %q vs %q", h1, h2)
	}
}
