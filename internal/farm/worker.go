package farm

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"dclue/internal/core"
	"dclue/internal/telemetry"
	"dclue/internal/trace"
)

// Serve runs the worker side of the farm protocol: it reads Job lines from
// in, evaluates each with core.Run, and writes one Reply line per job to
// out, in order, flushing after each so the coordinator never waits on a
// buffered result. It returns when in reaches EOF (the coordinator closed
// the pipe or died — an orphaned worker must exit, not linger) or on a
// stream-level error.
//
// Robustness contract (pinned by FuzzWorkerProtocol): Serve never panics and
// never blocks forever on any input byte stream. A malformed line produces
// an in-band error Reply and the loop continues; a simulation panic is
// caught and reported the same way, so one poisoned point cannot take the
// worker — and its queued siblings — down with it.
func Serve(in io.Reader, out io.Writer) error {
	sc := NewLineScanner(in)
	w := bufio.NewWriter(out)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rep Reply
		job, err := DecodeJob(line)
		if err != nil {
			rep = Reply{Err: err.Error()}
		} else {
			rep = runJob(job)
		}
		b, err := EncodeReply(rep)
		if err != nil {
			// Metrics marshaling cannot fail (plain value struct), but fail
			// loudly rather than silently dropping a reply if it ever does.
			return fmt.Errorf("farm: encode reply: %w", err)
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return sc.Err()
}

// runJob evaluates one job, converting panics and run errors into in-band
// error replies.
func runJob(job Job) (rep Reply) {
	rep.ID, rep.Key = job.ID, job.Key
	defer func() {
		if r := recover(); r != nil {
			rep.Metrics = nil
			rep.Err = fmt.Sprintf("farm: run panicked: %v", r)
		}
	}()
	p := job.Params
	if job.TraceSample > 0 {
		// Re-attach the span observability layer the coordinator stripped
		// for the wire: a private histogram-only collector with the same
		// stride reproduces Metrics.Breakdown exactly (tracing is
		// non-perturbing, so everything else is identical regardless).
		p.Trace = trace.NewCollector(job.TraceSample)
	}
	if job.Telemetry {
		// Same re-attachment for the telemetry registry: the worker-private
		// collector reproduces Metrics.UtilDecomp; the registries themselves
		// die with the worker (JSONL export is an in-process feature).
		p.Telemetry = telemetry.NewCollector(job.TelemetryBucket)
	}
	m, err := core.Run(p)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	rep.Metrics = &m
	return rep
}
