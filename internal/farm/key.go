package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"sync"

	"dclue/internal/core"
	"dclue/internal/sim"
)

// Extras carries the process-local attachments stripped from Params for the
// wire that are nonetheless part of a point's identity: the trace stride and
// the telemetry configuration both change what the run reports (Breakdown,
// UtilDecomp), so a cached result computed without them must never be served
// for a point that wants them.
type Extras struct {
	TraceSample     int      `json:"trace_sample"`
	Telemetry       bool     `json:"telemetry,omitempty"`
	TelemetryBucket sim.Time `json:"telemetry_bucket,omitempty"`
}

// keyPayload is the canonical content a point key hashes: the code identity,
// the seed and attachment extras surfaced explicitly (they are the knobs the
// cache-correctness tests flip independently), and the full resolved
// parameter set in its canonical JSON form. encoding/json renders struct
// fields in declaration order and float64s in shortest round-trip form, so
// equal Params always serialize to equal bytes.
type keyPayload struct {
	Code   string      `json:"code"`
	Seed   uint64      `json:"seed"`
	Extras Extras      `json:"extras"`
	Params core.Params `json:"params"`
}

// PointKey returns the content-addressed identity of one simulation point:
// hex sha256 over (code hash, seed, extras, canonical params JSON).
// Two points share a key exactly when the same code would run the same
// simulation and report the same result — the condition under which a cached
// result may be served. Flipping the seed, any single parameter, any extra,
// or the code hash changes the key and invalidates exactly that point,
// nothing else.
func PointKey(codeHash string, p core.Params, ex Extras) string {
	b, err := json.Marshal(keyPayload{
		Code:   codeHash,
		Seed:   p.Seed,
		Extras: ex,
		Params: p,
	})
	if err != nil {
		// Params is a plain value struct (the Trace and Telemetry pointers
		// are excluded from its JSON form); marshaling cannot fail.
		panic("farm: params not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

var codeHashOnce struct {
	sync.Once
	hash string
	err  error
}

// CodeHash fingerprints the running executable (hex sha256 of its bytes).
// It is the code component of every point key: a rebuilt binary — any code
// change at all — invalidates the whole cache, which is the conservative
// side of the cache-coherence bargain. The hash is computed once per
// process.
func CodeHash() (string, error) {
	codeHashOnce.Do(func() {
		codeHashOnce.hash, codeHashOnce.err = hashExecutable()
	})
	return codeHashOnce.hash, codeHashOnce.err
}

func hashExecutable() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
