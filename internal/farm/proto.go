// Package farm is the distributed experiment farm: it shards the simulation
// points of a sweep across exec'd worker processes, checkpoints every result
// atomically under a results directory, and serves repeated points from a
// content-addressed cache keyed by (params fingerprint, seed, code hash).
//
// The farm slots in behind the runner.Exec contract: experiments hand it the
// exact core.Params of each point and get Metrics back, with no knowledge of
// whether the point ran in this process, in one of N workers, or came from a
// warm cache entry. Because every executor is held to the same pure-function
// contract, a farm sweep's rendered tables are byte-identical to an
// in-process -j1 run — the invariant the farm test suite pins point by point.
//
// Wire protocol: coordinator and worker speak line-delimited JSON over the
// worker's stdin/stdout. One Job line in, one Reply line out, strictly in
// order; the worker's stderr passes through for progress logs. Both decoders
// are strict (unknown fields rejected, one object per line, bounded line
// length) so a corrupted or interleaved stream fails fast instead of being
// half-trusted — and, by fuzzed contract, without ever panicking or hanging.
package farm

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dclue/internal/core"
	"dclue/internal/sim"
)

// MaxLineBytes bounds one protocol line. Metrics with long timelines reach
// tens of kilobytes; a megabyte of headroom keeps the bound far from real
// traffic while still refusing unbounded garbage.
const MaxLineBytes = 8 << 20

// Job is one simulation point shipped coordinator -> worker.
type Job struct {
	// ID matches a Reply to its Job on the connection; it is per-worker
	// conversation state, not part of the point's identity.
	ID uint64 `json:"id"`
	// Key is the point's content-addressed identity (see PointKey). The
	// worker echoes it so a reply can never be attributed to the wrong
	// point even if IDs are confused.
	Key string `json:"key"`
	// Params is the resolved parameter set (canonical JSON form; the
	// process-local Trace collector is excluded by construction).
	Params core.Params `json:"params"`
	// TraceSample, when positive, tells the worker to attach a private
	// histogram-only span collector with that sampling stride, so the
	// trace-derived Metrics.Breakdown comes back populated exactly as an
	// in-process traced run would report it.
	TraceSample int `json:"trace_sample,omitempty"`
	// Telemetry tells the worker to attach a private telemetry collector so
	// the telemetry-derived Metrics.UtilDecomp comes back populated exactly
	// as an in-process telemetered run would report it (registries stay in
	// the worker; only the decomposition scalars travel). TelemetryBucket is
	// the collector's timeline bucket width and requires Telemetry.
	Telemetry       bool     `json:"telemetry,omitempty"`
	TelemetryBucket sim.Time `json:"telemetry_bucket,omitempty"`
}

// Reply is one result shipped worker -> coordinator.
type Reply struct {
	ID  uint64 `json:"id"`
	Key string `json:"key,omitempty"`
	// Metrics is the run's outcome; nil when Err is set.
	Metrics *core.Metrics `json:"metrics,omitempty"`
	// Err reports a deterministic simulation failure (bad configuration,
	// cluster construction error). Protocol failures never travel in-band:
	// they surface as decode errors or a dead pipe.
	Err string `json:"err,omitempty"`
}

// EncodeJob renders a Job as one protocol line (newline included).
func EncodeJob(j Job) ([]byte, error) { return encodeLine(j) }

// EncodeReply renders a Reply as one protocol line (newline included).
func EncodeReply(r Reply) ([]byte, error) { return encodeLine(r) }

func encodeLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeJob parses one Job line. It rejects anything but a single complete
// JSON object with exactly Job's fields — a Reply line, a truncated line, or
// interleaved objects all fail here rather than decode to a half-right Job.
func DecodeJob(line []byte) (Job, error) {
	var j Job
	if err := decodeStrict(line, &j); err != nil {
		return Job{}, err
	}
	if j.Key == "" {
		return Job{}, errors.New("farm: job without key")
	}
	if j.TraceSample < 0 {
		return Job{}, fmt.Errorf("farm: negative trace sample %d", j.TraceSample)
	}
	if j.TelemetryBucket < 0 {
		return Job{}, fmt.Errorf("farm: negative telemetry bucket %d", j.TelemetryBucket)
	}
	if j.TelemetryBucket != 0 && !j.Telemetry {
		return Job{}, errors.New("farm: telemetry bucket without telemetry")
	}
	return j, nil
}

// DecodeReply parses one Reply line under the same strictness as DecodeJob.
func DecodeReply(line []byte) (Reply, error) {
	var r Reply
	if err := decodeStrict(line, &r); err != nil {
		return Reply{}, err
	}
	if r.Metrics == nil && r.Err == "" {
		return Reply{}, errors.New("farm: reply carries neither metrics nor error")
	}
	return r, nil
}

// decodeStrict decodes exactly one JSON object from line into v, rejecting
// unknown fields and trailing data.
func decodeStrict(line []byte, v any) error {
	if len(line) > MaxLineBytes {
		return fmt.Errorf("farm: protocol line of %d bytes exceeds limit", len(line))
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("farm: bad protocol line: %w", err)
	}
	// A second decode must hit EOF: one object per line, nothing trailing
	// (whitespace aside, which Decode skips).
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("farm: trailing data after protocol object")
	}
	return nil
}

// NewLineScanner wraps r in a scanner that yields one protocol line per Scan
// with the MaxLineBytes bound enforced: an overlong line terminates the
// stream with bufio.ErrTooLong instead of growing without bound.
func NewLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), MaxLineBytes)
	return sc
}
