package iscsi

import (
	"testing"

	"dclue/internal/disk"
	"dclue/internal/netsim"
	"dclue/internal/rng"
	"dclue/internal/sim"
	"dclue/internal/tcp"
)

// rig wires an initiator on node 0 against a target with one drive on
// node 1.
type rig struct {
	s    *sim.Sim
	init *Initiator
	tgt  *Target
	drv  *disk.Drive
	dom  *tcp.Domain
}

func buildRig(t *testing.T, costs CostModel) *rig {
	t.Helper()
	s := sim.New()
	n := netsim.New(s)
	r := netsim.NewRouter(n, "r", 1e6, 0)
	n.NIC(0).Attach(r, 1e9, sim.Microsecond)
	n.NIC(1).Attach(r, 1e9, sim.Microsecond)
	dom := tcp.NewDomain(n, tcp.DefaultConfig(1))
	st0 := dom.NewStack(0, tcp.InstantProcessor{}, tcp.CostModel{})
	st1 := dom.NewStack(1, tcp.InstantProcessor{}, tcp.CostModel{})

	drv := disk.NewDrive(s, disk.DefaultParams(1), rng.New(7))
	tgt := NewTarget(s, tcp.InstantProcessor{}, costs, func(int) *disk.Drive { return drv })
	st1.Listen(Port, tgt.Attach)

	ini := NewInitiator(s, tcp.InstantProcessor{}, costs)
	s.Spawn("dial", func(p *sim.Proc) {
		c := tcp.Dial(p, st0, 1, Port, tcp.DialOptions{MaxRetx: 100})
		if c == nil {
			t.Error("iscsi dial failed")
			return
		}
		ini.SetConn(1, c)
	})
	return &rig{s: s, init: ini, tgt: tgt, drv: drv, dom: dom}
}

func TestRemoteRead(t *testing.T) {
	rg := buildRig(t, HWCosts())
	var took sim.Time
	rg.s.Spawn("reader", func(p *sim.Proc) {
		for !rg.init.HasTarget(1) {
			p.Sleep(sim.Millisecond)
		}
		start := p.Now()
		rg.init.Read(p, 1, 3, 42, 8192)
		took = p.Now() - start
	})
	rg.s.Run(5 * sim.Second)
	rg.s.Shutdown()
	if rg.drv.Reads != 1 || rg.drv.BytesRead != 8192 {
		t.Fatalf("drive reads=%d bytes=%d", rg.drv.Reads, rg.drv.BytesRead)
	}
	if rg.tgt.Served != 1 {
		t.Fatalf("target served %d", rg.tgt.Served)
	}
	if took <= 0 {
		t.Fatal("read returned instantly")
	}
}

func TestRemoteWrite(t *testing.T) {
	rg := buildRig(t, HWCosts())
	done := false
	rg.s.Spawn("writer", func(p *sim.Proc) {
		for !rg.init.HasTarget(1) {
			p.Sleep(sim.Millisecond)
		}
		rg.init.Write(p, 1, 2, 7, 8192)
		done = true
	})
	rg.s.Run(5 * sim.Second)
	rg.s.Shutdown()
	if !done {
		t.Fatal("write did not complete")
	}
	if rg.drv.Writes != 1 || rg.drv.BytesWritten != 8192 {
		t.Fatalf("drive writes=%d bytes=%d", rg.drv.Writes, rg.drv.BytesWritten)
	}
}

func TestConcurrentRequestsMatchResponses(t *testing.T) {
	rg := buildRig(t, HWCosts())
	completed := 0
	for i := 0; i < 8; i++ {
		i := i
		rg.s.Spawn("reader", func(p *sim.Proc) {
			for !rg.init.HasTarget(1) {
				p.Sleep(sim.Millisecond)
			}
			rg.init.Read(p, 1, i%3, int64(i*1000), 4096)
			completed++
		})
	}
	rg.s.Run(10 * sim.Second)
	rg.s.Shutdown()
	if completed != 8 {
		t.Fatalf("completed %d of 8", completed)
	}
	if rg.drv.Reads != 8 {
		t.Fatalf("drive reads %d", rg.drv.Reads)
	}
}

func TestSWCostsSlowerThanHW(t *testing.T) {
	// With a CPU that takes real time per instruction, SW iSCSI (CRC over
	// 8KB) must take longer than HW.
	run := func(costs CostModel) sim.Time {
		s := sim.New()
		n := netsim.New(s)
		r := netsim.NewRouter(n, "r", 1e6, 0)
		n.NIC(0).Attach(r, 1e9, sim.Microsecond)
		n.NIC(1).Attach(r, 1e9, sim.Microsecond)
		dom := tcp.NewDomain(n, tcp.DefaultConfig(1))
		st0 := dom.NewStack(0, tcp.InstantProcessor{}, tcp.CostModel{})
		st1 := dom.NewStack(1, tcp.InstantProcessor{}, tcp.CostModel{})
		slow := &cycleProcessor{s: s, hz: 1e8}
		drv := disk.NewDrive(s, disk.DefaultParams(1), rng.New(7))
		tgt := NewTarget(s, slow, costs, func(int) *disk.Drive { return drv })
		st1.Listen(Port, tgt.Attach)
		ini := NewInitiator(s, slow, costs)
		var took sim.Time
		s.Spawn("reader", func(p *sim.Proc) {
			c := tcp.Dial(p, st0, 1, Port, tcp.DialOptions{})
			ini.SetConn(1, c)
			start := p.Now()
			ini.Read(p, 1, 0, 0, 8192)
			took = p.Now() - start
		})
		s.Run(10 * sim.Second)
		s.Shutdown()
		return took
	}
	hw := run(HWCosts())
	sw := run(SWCosts())
	if sw <= hw {
		t.Fatalf("SW iSCSI (%v) not slower than HW (%v)", sw, hw)
	}
}

// cycleProcessor models a CPU running pathLen instructions at hz.
type cycleProcessor struct {
	s  *sim.Sim
	hz float64
}

func (c *cycleProcessor) Process(pathLen float64, done func()) {
	c.s.After(sim.Time(pathLen/c.hz*float64(sim.Second)), done)
}

// TestDemuxSharedConnection verifies the paper's two-connections-per-pair
// layout: one storage connection carries node A's commands to B's target
// AND B's responses to A's initiator, demuxed by PDU type.
func TestDemuxSharedConnection(t *testing.T) {
	s := sim.New()
	n := netsim.New(s)
	r := netsim.NewRouter(n, "r", 1e6, 0)
	n.NIC(0).Attach(r, 1e9, sim.Microsecond)
	n.NIC(1).Attach(r, 1e9, sim.Microsecond)
	dom := tcp.NewDomain(n, tcp.DefaultConfig(1))
	st0 := dom.NewStack(0, tcp.InstantProcessor{}, tcp.CostModel{})
	st1 := dom.NewStack(1, tcp.InstantProcessor{}, tcp.CostModel{})

	drv0 := disk.NewDrive(s, disk.DefaultParams(1), rng.New(1))
	drv1 := disk.NewDrive(s, disk.DefaultParams(1), rng.New(2))
	tgt0 := NewTarget(s, tcp.InstantProcessor{}, HWCosts(), func(int) *disk.Drive { return drv0 })
	tgt1 := NewTarget(s, tcp.InstantProcessor{}, HWCosts(), func(int) *disk.Drive { return drv1 })
	ini0 := NewInitiator(s, tcp.InstantProcessor{}, HWCosts())
	ini1 := NewInitiator(s, tcp.InstantProcessor{}, HWCosts())

	st1.Listen(Port, func(conn *tcp.Conn) {
		ini1.RegisterConn(0, conn)
		Demux(conn, tgt1, ini1)
	})
	done0, done1 := false, false
	s.Spawn("a", func(p *sim.Proc) {
		conn := tcp.Dial(p, st0, 1, Port, tcp.DialOptions{})
		ini0.RegisterConn(1, conn)
		Demux(conn, tgt0, ini0)
		// A reads from B's disk...
		ini0.Read(p, 1, 0, 5, 8192)
		done0 = true
	})
	s.Spawn("b", func(p *sim.Proc) {
		for !ini1.HasTarget(0) {
			p.Sleep(sim.Millisecond)
		}
		// ... while B writes to A's disk over the same connection.
		ini1.Write(p, 0, 2, 9, 4096)
		done1 = true
	})
	s.Run(10 * sim.Second)
	s.Shutdown()
	if !done0 || !done1 {
		t.Fatalf("bidirectional shared connection: a=%v b=%v", done0, done1)
	}
	if drv1.Reads != 1 || drv0.Writes != 1 {
		t.Fatalf("drive ops: tgt1 reads=%d tgt0 writes=%d", drv1.Reads, drv0.Writes)
	}
}
