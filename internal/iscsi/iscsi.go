// Package iscsi models iSCSI block access between cluster nodes over the
// dedicated per-pair storage TCP connection of the paper. Each node is both
// an initiator (for remote partitions) and a target (serving its local
// drives). Processing costs are path lengths on the host CPUs; the paper
// notes iSCSI path lengths are small "except for the rather large overhead
// of CRC calculations" in software, which the cost models reflect.
package iscsi

import (
	"errors"

	"dclue/internal/disk"
	"dclue/internal/sim"
	"dclue/internal/tcp"
	"dclue/internal/trace"
)

// ErrIO is returned when an iSCSI operation fails after exhausting its
// retries: either the target kept reporting a check condition (injected
// drive error) or status PDUs kept timing out (lost to network faults).
var ErrIO = errors.New("iscsi: i/o failed")

// Port is the iSCSI listener port.
const Port = 3260

// PDUBytes is the basic header segment size for command/status PDUs.
const PDUBytes = 48

// CostModel gives iSCSI processing path lengths (instructions).
type CostModel struct {
	PerPDU     float64 // command/status/data PDU handling
	CRCPerByte float64 // header+data digest over payload bytes
}

// SWCosts returns the software-iSCSI cost model: modest per-PDU handling
// with the dominant per-byte CRC.
func SWCosts() CostModel { return CostModel{PerPDU: 4000, CRCPerByte: 1.2} }

// HWCosts returns the offloaded cost model: a small host touch per PDU and
// no host CRC.
func HWCosts() CostModel { return CostModel{PerPDU: 600, CRCPerByte: 0} }

// opcodes
type op int

const (
	opRead op = iota
	opWrite
)

// cmdPDU travels initiator -> target. For writes it is immediately followed
// (same message) by the data, which we fold into the message size.
type cmdPDU struct {
	id    uint64
	op    op
	table int
	block int64
	size  int
	encl  int // enclosure (home node) whose drives to use; -1 = target's own
}

// respPDU travels target -> initiator. For reads the data rides in the same
// message (Data-In + status collapsed).
type respPDU struct {
	id  uint64
	err bool // check condition: the drive failed the request
}

// Target serves local drives to remote initiators.
type Target struct {
	sim     *sim.Sim
	cpu     tcp.Processor
	costs   CostModel
	drive   func(table int) *disk.Drive
	exports map[int]func(table int) *disk.Drive
	Served  uint64
}

// NewTarget creates a target; drive selects the local drive for a table.
func NewTarget(s *sim.Sim, cpu tcp.Processor, costs CostModel, drive func(table int) *disk.Drive) *Target {
	return &Target{sim: s, cpu: cpu, costs: costs, drive: drive}
}

// SetCosts swaps the cost model (offload experiments).
func (t *Target) SetCosts(c CostModel) { t.costs = c }

// Export additionally serves another node's drive enclosure through this
// target (the dual-ported failover path: a buddy node takes over a crashed
// peer's drives). pick selects the drive within that enclosure for a table.
func (t *Target) Export(node int, pick func(table int) *disk.Drive) {
	if t.exports == nil {
		t.exports = make(map[int]func(table int) *disk.Drive)
	}
	t.exports[node] = pick
}

// Unexport stops serving the given node's enclosure (the owner rejoined).
func (t *Target) Unexport(node int) { delete(t.exports, node) }

// Attach serves one accepted connection.
func (t *Target) Attach(conn *tcp.Conn) {
	conn.SetOnMessage(func(m tcp.Message) { t.HandleMessage(conn, m) })
}

// HandleMessage processes one command PDU arriving on conn (exposed so a
// shared per-pair storage connection can be demuxed between the local
// target and initiator, keeping the paper's two-connections-per-pair
// layout).
func (t *Target) HandleMessage(conn *tcp.Conn, m tcp.Message) {
	cmd := m.Meta.(*cmdPDU)
	var inBytes int
	if cmd.op == opWrite {
		inBytes = cmd.size
	}
	t.cpu.Process(t.costs.PerPDU+t.costs.CRCPerByte*float64(inBytes), func() {
		t.serve(conn, cmd)
	})
}

// serve runs the disk operation and replies.
func (t *Target) serve(conn *tcp.Conn, cmd *cmdPDU) {
	pick := t.drive
	if cmd.encl >= 0 {
		e, ok := t.exports[cmd.encl]
		if !ok {
			// Enclosure not (or no longer) exported here: check condition.
			t.Served++
			t.cpu.Process(t.costs.PerPDU, func() {
				conn.Enqueue(&respPDU{id: cmd.id, err: true}, PDUBytes)
			})
			return
		}
		pick = e
	}
	d := pick(cmd.table)
	req := &disk.Request{
		Table: cmd.table,
		Block: cmd.block,
		Size:  cmd.size,
		Write: cmd.op == opWrite,
	}
	req.Done = func() {
		t.Served++
		respSize := PDUBytes
		var outBytes int
		if cmd.op == opRead && !req.Failed {
			respSize += cmd.size
			outBytes = cmd.size
		}
		t.cpu.Process(t.costs.PerPDU+t.costs.CRCPerByte*float64(outBytes), func() {
			// A failed drive request becomes a check-condition status PDU
			// (no data); the initiator decides whether to retry.
			conn.Enqueue(&respPDU{id: cmd.id, err: req.Failed}, respSize)
		})
	}
	d.Submit(req)
}

// Initiator issues block requests to remote targets.
type Initiator struct {
	sim     *sim.Sim
	cpu     tcp.Processor
	costs   CostModel
	conns   map[int]*tcp.Conn
	pending map[uint64]*sim.Mailbox
	nextID  uint64

	// Timeout bounds the wait for a status PDU; 0 means wait forever (the
	// pre-fault-injection behaviour). MaxRetries is how many times a timed
	// out or check-condition command is reissued before ErrIO.
	Timeout    sim.Time
	MaxRetries int

	Reads    uint64
	Writes   uint64
	Timeouts uint64 // commands whose status PDU never arrived in time
	IOErrors uint64 // check-condition statuses received
	Failed   uint64 // operations abandoned after exhausting retries
}

// NewInitiator creates an initiator charging work to cpu.
func NewInitiator(s *sim.Sim, cpu tcp.Processor, costs CostModel) *Initiator {
	return &Initiator{
		sim:     s,
		cpu:     cpu,
		costs:   costs,
		conns:   make(map[int]*tcp.Conn),
		pending: make(map[uint64]*sim.Mailbox),
	}
}

// SetCosts swaps the cost model (offload experiments).
func (i *Initiator) SetCosts(c CostModel) { i.costs = c }

// SetConn registers the storage connection toward a target node and hooks
// response handling.
func (i *Initiator) SetConn(node int, conn *tcp.Conn) {
	i.conns[node] = conn
	conn.SetOnMessage(func(m tcp.Message) { i.HandleMessage(m) })
}

// RegisterConn records the connection toward node without claiming its
// OnMessage callback (for demuxed shared connections).
func (i *Initiator) RegisterConn(node int, conn *tcp.Conn) { i.conns[node] = conn }

// HandleMessage processes one response PDU.
func (i *Initiator) HandleMessage(m tcp.Message) {
	resp := m.Meta.(*respPDU)
	var dataBytes int
	if m.Size > PDUBytes {
		dataBytes = m.Size - PDUBytes
	}
	i.cpu.Process(i.costs.PerPDU+i.costs.CRCPerByte*float64(dataBytes), func() {
		// A late response to a command the initiator already timed out and
		// abandoned finds no pending entry and is dropped here.
		if mb, ok := i.pending[resp.id]; ok {
			delete(i.pending, resp.id)
			mb.Send(resp.err)
		}
	})
}

// Demux routes PDUs on a shared per-pair storage connection: commands go to
// the local target, responses to the local initiator.
func Demux(conn *tcp.Conn, t *Target, i *Initiator) {
	conn.SetOnMessage(func(m tcp.Message) {
		switch m.Meta.(type) {
		case *cmdPDU:
			t.HandleMessage(conn, m)
		case *respPDU:
			i.HandleMessage(m)
		}
	})
}

// HasTarget reports whether a connection to node is registered.
func (i *Initiator) HasTarget(node int) bool { return i.conns[node] != nil }

// Read fetches size bytes of (table, block) from the target at node,
// blocking the calling process until the data arrives (or the command fails
// after exhausting retries).
func (i *Initiator) Read(p *sim.Proc, node, table int, block int64, size int) error {
	i.Reads++
	return i.issue(p, node, &cmdPDU{op: opRead, table: table, block: block, size: size, encl: -1}, PDUBytes)
}

// Write sends size bytes to (table, block) on the target at node, blocking
// until the status PDU returns.
func (i *Initiator) Write(p *sim.Proc, node, table int, block int64, size int) error {
	i.Writes++
	return i.issue(p, node, &cmdPDU{op: opWrite, table: table, block: block, size: size, encl: -1}, PDUBytes+size)
}

// ReadFrom fetches (table, block) of enclosure encl via the target at node:
// the failover path, where a buddy node serves a crashed peer's dual-ported
// drives.
func (i *Initiator) ReadFrom(p *sim.Proc, node, encl, table int, block int64, size int) error {
	i.Reads++
	return i.issue(p, node, &cmdPDU{op: opRead, table: table, block: block, size: size, encl: encl}, PDUBytes)
}

// WriteFrom writes (table, block) of enclosure encl via the target at node.
func (i *Initiator) WriteFrom(p *sim.Proc, node, encl, table int, block int64, size int) error {
	i.Writes++
	return i.issue(p, node, &cmdPDU{op: opWrite, table: table, block: block, size: size, encl: encl}, PDUBytes+size)
}

// issue sends the command and waits for its response, reissuing it (with a
// fresh task tag) on timeout or check condition up to MaxRetries times. The
// whole exchange — including the command/data/status network round trip —
// charges the disk trace phase: iSCSI wire time is storage latency in the
// paper's decomposition.
func (i *Initiator) issue(p *sim.Proc, node int, cmd *cmdPDU, wireBytes int) error {
	trace.Enter(p, trace.PhaseDisk)
	err := i.doIssue(p, node, cmd, wireBytes)
	trace.Exit(p)
	return err
}

func (i *Initiator) doIssue(p *sim.Proc, node int, cmd *cmdPDU, wireBytes int) error {
	conn, ok := i.conns[node]
	if !ok {
		panic("iscsi: no connection to target node")
	}
	var outBytes int
	if cmd.op == opWrite {
		outBytes = cmd.size
	}
	for attempt := 0; ; attempt++ {
		i.nextID++
		cmd.id = i.nextID
		mb := sim.NewMailbox(i.sim)
		i.pending[cmd.id] = mb
		i.cpu.Process(i.costs.PerPDU+i.costs.CRCPerByte*float64(outBytes), func() {
			conn.Enqueue(cmd, wireBytes)
		})
		var v any
		recvOK := true
		if i.Timeout > 0 {
			v, recvOK = mb.RecvTimeout(p, i.Timeout)
		} else {
			v = mb.Recv(p)
		}
		if !recvOK {
			// Status PDU never came: drop the stale tag so a late response
			// is ignored, and reissue.
			delete(i.pending, cmd.id)
			i.Timeouts++
		} else if errFlag, _ := v.(bool); errFlag {
			i.IOErrors++
		} else {
			return nil
		}
		if attempt >= i.MaxRetries {
			i.Failed++
			return ErrIO
		}
	}
}
