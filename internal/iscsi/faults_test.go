package iscsi

import (
	"testing"

	"dclue/internal/disk"
	"dclue/internal/rng"
	"dclue/internal/sim"
)

// These tests pin the initiator's fault-path contract: bounded retries on
// check conditions and timeouts, exact counter accounting, late responses
// dropped, and the failover export/unexport lifecycle.

// TestCheckConditionRetriesBounded: a drive that always fails produces one
// check condition per attempt; after MaxRetries reissues the operation
// returns ErrIO exactly once and the counters account for every attempt.
func TestCheckConditionRetriesBounded(t *testing.T) {
	rg := buildRig(t, HWCosts())
	rg.drv.SetErrorProb(1)
	rg.init.MaxRetries = 2
	var err error
	rg.s.Spawn("reader", func(p *sim.Proc) {
		for !rg.init.HasTarget(1) {
			p.Sleep(sim.Millisecond)
		}
		err = rg.init.Read(p, 1, 0, 100, 8192)
	})
	rg.s.Run(30 * sim.Second)
	rg.s.Shutdown()
	if err != ErrIO {
		t.Fatalf("err = %v, want ErrIO", err)
	}
	// MaxRetries=2 means 3 attempts total, each a served check condition.
	if rg.init.IOErrors != 3 || rg.init.Failed != 1 || rg.init.Timeouts != 0 {
		t.Fatalf("counters: ioerr=%d failed=%d timeouts=%d, want 3/1/0",
			rg.init.IOErrors, rg.init.Failed, rg.init.Timeouts)
	}
	if rg.drv.FaultErrors != 3 || rg.tgt.Served != 3 {
		t.Fatalf("drive faults=%d served=%d, want 3/3", rg.drv.FaultErrors, rg.tgt.Served)
	}
}

// TestTransientErrorRecoveredByRetry: the error injection clears mid-run;
// the operation succeeds without surfacing an error, having consumed at
// least one retry.
func TestTransientErrorRecoveredByRetry(t *testing.T) {
	rg := buildRig(t, HWCosts())
	rg.drv.SetErrorProb(1)
	rg.init.MaxRetries = 100000 // effectively unbounded; the repair below ends the loop
	rg.s.After(40*sim.Millisecond, func() { rg.drv.SetErrorProb(0) })
	var err error
	done := false
	rg.s.Spawn("reader", func(p *sim.Proc) {
		for !rg.init.HasTarget(1) {
			p.Sleep(sim.Millisecond)
		}
		err = rg.init.Read(p, 1, 0, 100, 8192)
		done = true
	})
	rg.s.Run(30 * sim.Second)
	rg.s.Shutdown()
	if !done || err != nil {
		t.Fatalf("done=%v err=%v, want recovered success", done, err)
	}
	if rg.init.IOErrors == 0 || rg.init.Failed != 0 {
		t.Fatalf("counters: ioerr=%d failed=%d, want >=1 transient and no abandonment",
			rg.init.IOErrors, rg.init.Failed)
	}
}

// TestTimeoutRetriesBoundedAndLateResponsesDropped: responses delayed far
// beyond the command timeout cause bounded reissues ending in ErrIO; when
// the stale status PDUs finally arrive they find no pending command and are
// dropped without effect.
func TestTimeoutRetriesBoundedAndLateResponsesDropped(t *testing.T) {
	rg := buildRig(t, HWCosts())
	// Every request takes ~1000x the healthy service time — far beyond the
	// timeout — but still completes and sends its (now stale) status PDU.
	rg.drv.SetLatencyFactor(1000)
	rg.init.Timeout = 100 * sim.Millisecond
	rg.init.MaxRetries = 1
	var err error
	var failedAt sim.Time
	rg.s.Spawn("reader", func(p *sim.Proc) {
		for !rg.init.HasTarget(1) {
			p.Sleep(sim.Millisecond)
		}
		err = rg.init.Read(p, 1, 0, 100, 8192)
		failedAt = p.Now()
	})
	// Run long enough for the delayed disk operations to finish after the
	// initiator has given up.
	rg.s.Run(120 * sim.Second)
	rg.s.Shutdown()
	if err != ErrIO {
		t.Fatalf("err = %v, want ErrIO", err)
	}
	if rg.init.Timeouts != 2 || rg.init.Failed != 1 || rg.init.IOErrors != 0 {
		t.Fatalf("counters: timeouts=%d failed=%d ioerr=%d, want 2/1/0",
			rg.init.Timeouts, rg.init.Failed, rg.init.IOErrors)
	}
	if failedAt > sim.Second {
		t.Fatalf("ErrIO surfaced at %v; timeouts did not bound the wait", failedAt)
	}
	// Both late responses were served by the target and dropped by the
	// initiator: no retries were credited, nothing panicked, and the drive
	// really did the work.
	if rg.tgt.Served != 2 || rg.drv.Reads != 2 {
		t.Fatalf("served=%d reads=%d, want the stale commands completed", rg.tgt.Served, rg.drv.Reads)
	}
}

// TestZeroTimeoutWaitsForever: Timeout=0 is the pre-fault-injection
// behaviour — no timeout machinery, the caller blocks until the status
// arrives, however slow the drive.
func TestZeroTimeoutWaitsForever(t *testing.T) {
	rg := buildRig(t, HWCosts())
	rg.drv.SetLatencyFactor(100)
	done := false
	rg.s.Spawn("reader", func(p *sim.Proc) {
		for !rg.init.HasTarget(1) {
			p.Sleep(sim.Millisecond)
		}
		if err := rg.init.Read(p, 1, 0, 100, 8192); err != nil {
			t.Errorf("read failed: %v", err)
		}
		done = true
	})
	rg.s.Run(60 * sim.Second)
	rg.s.Shutdown()
	if !done || rg.init.Timeouts != 0 {
		t.Fatalf("done=%v timeouts=%d, want slow success with no timeout", done, rg.init.Timeouts)
	}
}

// TestExportLifecycle covers the failover path end to end: reading a peer
// enclosure through a buddy target fails while unexported (check condition,
// local drive untouched), succeeds once exported, and fails again after
// Unexport when the owner rejoins.
func TestExportLifecycle(t *testing.T) {
	rg := buildRig(t, HWCosts())
	enclDrv := disk.NewDrive(rg.s, disk.DefaultParams(1), rng.New(9))
	rg.init.MaxRetries = 0

	var errBefore, errDuring, errAfter error
	rg.s.Spawn("failover-reader", func(p *sim.Proc) {
		for !rg.init.HasTarget(1) {
			p.Sleep(sim.Millisecond)
		}
		// Enclosure 5 not exported yet: check condition, bounded by
		// MaxRetries=0 to a single attempt.
		errBefore = rg.init.ReadFrom(p, 1, 5, 0, 64, 4096)
		rg.tgt.Export(5, func(int) *disk.Drive { return enclDrv })
		errDuring = rg.init.ReadFrom(p, 1, 5, 0, 64, 4096)
		rg.tgt.Unexport(5)
		errAfter = rg.init.ReadFrom(p, 1, 5, 0, 64, 4096)
	})
	rg.s.Run(30 * sim.Second)
	rg.s.Shutdown()
	if errBefore != ErrIO || errDuring != nil || errAfter != ErrIO {
		t.Fatalf("before/during/after = %v/%v/%v, want ErrIO/nil/ErrIO", errBefore, errDuring, errAfter)
	}
	if enclDrv.Reads != 1 || enclDrv.BytesRead != 4096 {
		t.Fatalf("enclosure drive reads=%d bytes=%d, want exactly the exported read",
			enclDrv.Reads, enclDrv.BytesRead)
	}
	if rg.drv.Reads != 0 {
		t.Fatalf("target's own drive served %d reads; enclosure routing leaked", rg.drv.Reads)
	}
	if rg.init.IOErrors != 2 || rg.init.Failed != 2 {
		t.Fatalf("counters: ioerr=%d failed=%d, want 2/2", rg.init.IOErrors, rg.init.Failed)
	}
}

// TestWriteFromRoutesToExportedEnclosure: the write-side failover path.
func TestWriteFromRoutesToExportedEnclosure(t *testing.T) {
	rg := buildRig(t, HWCosts())
	enclDrv := disk.NewDrive(rg.s, disk.DefaultParams(1), rng.New(11))
	rg.tgt.Export(3, func(int) *disk.Drive { return enclDrv })
	var err error
	rg.s.Spawn("writer", func(p *sim.Proc) {
		for !rg.init.HasTarget(1) {
			p.Sleep(sim.Millisecond)
		}
		err = rg.init.WriteFrom(p, 1, 3, 2, 10, 8192)
	})
	rg.s.Run(30 * sim.Second)
	rg.s.Shutdown()
	if err != nil {
		t.Fatalf("failover write failed: %v", err)
	}
	if enclDrv.Writes != 1 || enclDrv.BytesWritten != 8192 || rg.drv.Writes != 0 {
		t.Fatalf("writes: encl=%d (%dB) own=%d, want 1/8192/0",
			enclDrv.Writes, enclDrv.BytesWritten, rg.drv.Writes)
	}
}
