// Package rng provides small, fast, seedable random-number streams for the
// simulation. Every model component gets its own Stream (derived from a
// master seed with a component label), so changing one component's draw
// pattern does not perturb the others — the standard common-random-numbers
// discipline for comparative simulation studies.
package rng

import "math"

// Stream is a deterministic pseudo-random stream (xorshift64* core seeded
// via splitmix64). Not safe for concurrent use; the simulation kernel is
// single-threaded by construction.
type Stream struct {
	state uint64
}

// splitmix64 is used to spread seeds.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed.
func New(seed uint64) *Stream {
	s := seed
	st := splitmix64(&s)
	if st == 0 {
		st = 0x9e3779b97f4a7c15
	}
	return &Stream{state: st}
}

// Derive returns a new stream whose sequence is a deterministic function of
// the parent seed and the label, independent of draws already made.
func Derive(seed uint64, label string) *Stream {
	h := seed
	for _, c := range label {
		h = splitmix64(&h) ^ uint64(c)
	}
	return New(h)
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// IntRange returns a uniform value in [lo, hi] inclusive.
func (s *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto sample with shape alpha on [lo, hi],
// useful for file-size style heavy tails.
func (s *Stream) Pareto(alpha, lo, hi float64) float64 {
	u := s.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
