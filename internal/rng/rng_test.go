package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently seeded streams", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, "tcp")
	b := Derive(7, "disk")
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived streams with different labels produced same first draw")
	}
	c := Derive(7, "tcp")
	a2 := Derive(7, "tcp")
	if c.Uint64() != a2.Uint64() {
		t.Fatal("same-label derivation not reproducible")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("mean %v, want ~0.5", m)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntRange(t *testing.T) {
	s := New(6)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(5, 7)
		if v < 5 || v > 7 {
			t.Fatalf("IntRange(5,7) = %d", v)
		}
	}
	if v := s.IntRange(3, 3); v != 3 {
		t.Fatalf("IntRange(3,3) = %d", v)
	}
}

func TestExpMean(t *testing.T) {
	s := New(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Exp(2.5)
	}
	if m := sum / n; math.Abs(m-2.5) > 0.05 {
		t.Fatalf("Exp mean %v, want ~2.5", m)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		v := s.Pareto(1.2, 100, 100000)
		if v < 100 || v > 100000 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%32)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}
