package sim

import (
	"strings"
	"testing"
)

func TestCountingTracer(t *testing.T) {
	s := New()
	tr := NewCountingTracer()
	s.SetTracer(tr)
	s.Spawn("worker", func(p *Proc) {
		p.Sleep(10 * Millisecond)
	})
	s.Spawn("forever", func(p *Proc) {
		for {
			p.Sleep(Second)
		}
	})
	s.Run(100 * Millisecond)
	s.Shutdown()
	if tr.Events == 0 {
		t.Fatal("no events traced")
	}
	if tr.Starts["worker"] != 1 || tr.Ends["worker"] != 1 {
		t.Fatalf("worker starts=%d ends=%d", tr.Starts["worker"], tr.Ends["worker"])
	}
	if tr.Kills["worker"] != 0 {
		t.Fatal("completed worker marked killed")
	}
	if tr.Kills["forever"] != 1 {
		t.Fatalf("shutdown kill not traced: %v", tr.Kills)
	}
}

func TestWriterTracer(t *testing.T) {
	s := New()
	var b strings.Builder
	s.SetTracer(&WriterTracer{W: &b, ProcsOnly: true})
	s.Spawn("p1", func(p *Proc) { p.Sleep(Millisecond) })
	s.RunAll()
	out := b.String()
	if !strings.Contains(out, "start p1") || !strings.Contains(out, "end p1") {
		t.Fatalf("trace output:\n%s", out)
	}
	if strings.Contains(out, "event #") {
		t.Fatal("ProcsOnly leaked event lines")
	}
}

func TestWriterTracerEventLines(t *testing.T) {
	s := New()
	var b strings.Builder
	s.SetTracer(&WriterTracer{W: &b})
	s.At(5*Millisecond, func() {})
	s.Spawn("p1", func(p *Proc) { p.Sleep(Millisecond) })
	s.RunAll()
	out := b.String()
	if !strings.Contains(out, "event #") {
		t.Fatalf("no event lines without ProcsOnly:\n%s", out)
	}
	// Event lines carry the simulated timestamp in sim.Time's format.
	if !strings.Contains(out, (5 * Millisecond).String()+" event #") {
		t.Fatalf("event line missing formatted timestamp:\n%s", out)
	}
	if !strings.Contains(out, "start p1") || !strings.Contains(out, "end p1") {
		t.Fatalf("proc lines missing alongside event lines:\n%s", out)
	}
}

func TestWriterTracerKilledSuffix(t *testing.T) {
	s := New()
	var b strings.Builder
	s.SetTracer(&WriterTracer{W: &b, ProcsOnly: true})
	s.Spawn("loop", func(p *Proc) {
		for {
			p.Sleep(Second)
		}
	})
	s.Run(10 * Millisecond)
	s.Shutdown()
	out := b.String()
	if !strings.Contains(out, "end loop (killed)") {
		t.Fatalf("kill suffix missing:\n%s", out)
	}
}

func TestTracerRemoval(t *testing.T) {
	s := New()
	tr := NewCountingTracer()
	s.SetTracer(tr)
	s.At(1, func() {})
	s.SetTracer(nil)
	s.At(2, func() {})
	s.RunAll()
	if tr.Events != 0 {
		// Both events ran after removal check? The first fires with tracer on.
		if tr.Events != 1 {
			t.Fatalf("events traced %d", tr.Events)
		}
	}
}
