package sim

import (
	"testing"
)

func TestProcSleep(t *testing.T) {
	s := New()
	var wake Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * Millisecond)
		wake = p.Now()
	})
	s.RunAll()
	if wake != 42*Millisecond {
		t.Fatalf("woke at %v, want 42ms", wake)
	}
	if s.LiveProcs() != 0 {
		t.Fatalf("%d live procs after completion", s.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	s := New()
	var got []string
	s.Spawn("a", func(p *Proc) {
		got = append(got, "a0")
		p.Sleep(10)
		got = append(got, "a10")
		p.Sleep(20)
		got = append(got, "a30")
	})
	s.Spawn("b", func(p *Proc) {
		got = append(got, "b0")
		p.Sleep(15)
		got = append(got, "b15")
	})
	s.RunAll()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestProcDeterminism(t *testing.T) {
	run := func() []string {
		s := New()
		var got []string
		for i := 0; i < 10; i++ {
			name := string(rune('a' + i))
			s.Spawn(name, func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(7)
					got = append(got, name)
				}
			})
		}
		s.RunAll()
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSleepUntilAndYield(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("x", func(p *Proc) {
		p.SleepUntil(100)
		order = append(order, "x100")
		p.SleepUntil(50) // past: no-op
		if p.Now() != 100 {
			t.Errorf("SleepUntil past moved time to %v", p.Now())
		}
		p.Yield()
		order = append(order, "x-yield")
	})
	s.At(100, func() { order = append(order, "ev100") })
	s.RunAll()
	// ev100 was put on the calendar during setup (before the process ran and
	// scheduled its own wake-up), so at t=100 it has the smaller sequence
	// number and fires first.
	if order[0] != "ev100" || order[1] != "x100" || order[2] != "x-yield" {
		t.Fatalf("order = %v", order)
	}
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	s := New()
	cleaned := false
	reached := false
	s.Spawn("p", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(1 * Second)
		reached = true
	})
	s.Run(10 * Millisecond)
	s.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Shutdown")
	}
	if reached {
		t.Fatal("killed process ran past its park point")
	}
	if s.LiveProcs() != 0 {
		t.Fatalf("%d live procs after Shutdown", s.LiveProcs())
	}
}

func TestShutdownBeforeStart(t *testing.T) {
	s := New()
	ran := false
	s.Spawn("never", func(p *Proc) { ran = true })
	// Don't run the calendar at all.
	s.Shutdown()
	s.RunAll()
	if ran {
		t.Fatal("process killed before start still ran")
	}
}

func TestMailboxSendRecv(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	var got []int
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p).(int))
		}
	})
	s.At(10, func() { mb.Send(1) })
	s.At(20, func() { mb.Send(2); mb.Send(3) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxBufferedBeforeRecv(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	mb.Send("early")
	var got any
	s.Spawn("r", func(p *Proc) { got = mb.Recv(p) })
	s.RunAll()
	if got != "early" {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxTimeout(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	var ok bool
	var at Time
	s.Spawn("r", func(p *Proc) {
		_, ok = mb.RecvTimeout(p, 50*Millisecond)
		at = p.Now()
	})
	s.RunAll()
	if ok {
		t.Fatal("RecvTimeout returned ok with no sender")
	}
	if at != 50*Millisecond {
		t.Fatalf("timed out at %v, want 50ms", at)
	}
}

func TestMailboxTimeoutBeatenBySend(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	var v any
	var ok bool
	s.Spawn("r", func(p *Proc) { v, ok = mb.RecvTimeout(p, 50*Millisecond) })
	s.At(10*Millisecond, func() { mb.Send(99) })
	s.RunAll()
	if !ok || v != 99 {
		t.Fatalf("got %v/%v, want 99/true", v, ok)
	}
	// The cancelled timer must not fire anything weird later.
	s.Run(1 * Second)
}

func TestMailboxFIFOWaiters(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			mb.Recv(p)
			order = append(order, name)
		})
	}
	s.At(10, func() { mb.Send(0); mb.Send(0); mb.Send(0) })
	s.RunAll()
	if order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("waiter order %v", order)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox returned ok")
	}
	mb.Send(7)
	if v, ok := mb.TryRecv(); !ok || v != 7 {
		t.Fatalf("TryRecv = %v/%v", v, ok)
	}
	if mb.Len() != 0 {
		t.Fatal("mailbox not drained")
	}
}

func TestResourceBasic(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	var order []string
	s.Spawn("a", func(p *Proc) {
		r.Acquire(p, 0)
		order = append(order, "a-in")
		p.Sleep(100)
		r.Release()
		order = append(order, "a-out")
	})
	s.Spawn("b", func(p *Proc) {
		p.Sleep(10)
		r.Acquire(p, 0)
		order = append(order, "b-in")
		p.Sleep(10)
		r.Release()
	})
	s.RunAll()
	if order[0] != "a-in" || order[1] != "a-out" || order[2] != "b-in" {
		t.Fatalf("order %v", order)
	}
}

func TestResourcePriority(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	var order []string
	s.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 0)
		p.Sleep(100)
		r.Release()
	})
	// Queued while holder owns the server: low-prio first by arrival, then
	// high-prio should jump the queue.
	s.At(10, func() {
		s.Spawn("low", func(p *Proc) {
			r.Acquire(p, 5)
			order = append(order, "low")
			r.Release()
		})
	})
	s.At(20, func() {
		s.Spawn("high", func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, "high")
			r.Release()
		})
	})
	s.RunAll()
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("order %v, want [high low]", order)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	maxInUse := 0
	for i := 0; i < 5; i++ {
		s.Spawn("u", func(p *Proc) {
			r.Acquire(p, 0)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(50)
			r.Release()
		})
	}
	s.RunAll()
	if maxInUse != 2 {
		t.Fatalf("max in use %d, want 2", maxInUse)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	s.Spawn("u", func(p *Proc) {
		r.Use(p, 0, 500*Millisecond)
	})
	s.Run(1 * Second)
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %v, want ~0.5", u)
	}
}

func TestResourceMeanWait(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	s.Spawn("a", func(p *Proc) { r.Use(p, 0, 100*Millisecond) })
	s.Spawn("b", func(p *Proc) { r.Use(p, 0, 10*Millisecond) })
	s.RunAll()
	// b waited ~100ms.
	if w := r.MeanWait(); w < 99*Millisecond || w > 101*Millisecond {
		t.Fatalf("mean wait %v, want ~100ms", w)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release on idle resource did not panic")
		}
	}()
	s := New()
	NewResource(s, 1).Release()
}

func TestProcPanicPropagates(t *testing.T) {
	// A model panic inside a process should crash with context; we can't
	// catch a panic on another goroutine, so this test only checks the
	// killPanic pathway doesn't mask completion bookkeeping.
	s := New()
	done := false
	s.Spawn("ok", func(p *Proc) { done = true })
	s.RunAll()
	if !done {
		t.Fatal("process did not run")
	}
}
