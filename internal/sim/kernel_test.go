package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestHorizonStopsRun(t *testing.T) {
	s := New()
	fired := false
	s.At(100, func() { fired = true })
	end := s.Run(50)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != 50 {
		t.Fatalf("Run returned %v, want 50", end)
	}
	s.Run(200)
	if !fired {
		t.Fatal("event not fired after horizon extended")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	id := s.At(10, func() { fired = true })
	s.Cancel(id)
	s.Cancel(id) // double-cancel is a no-op
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromEvent(t *testing.T) {
	s := New()
	fired := false
	id := s.At(20, func() { fired = true })
	s.At(10, func() { s.Cancel(id) })
	s.RunAll()
	if fired {
		t.Fatal("event cancelled at t=10 still fired at t=20")
	}
}

func TestStop(t *testing.T) {
	s := New()
	n := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i, func() {
			n++
			if n == 5 {
				s.Stop()
			}
		})
	}
	s.RunAll()
	if n != 5 {
		t.Fatalf("executed %d events after Stop, want 5", n)
	}
	// Run can be resumed.
	s.RunAll()
	if n != 10 {
		t.Fatalf("executed %d events total, want 10", n)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.RunAll()
}

func TestAfterFromEvent(t *testing.T) {
	s := New()
	var times []Time
	s.At(10, func() {
		s.After(5, func() { times = append(times, s.Now()) })
	})
	s.RunAll()
	if len(times) != 1 || times[0] != 15 {
		t.Fatalf("After(5) at t=10 fired at %v, want [15]", times)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Errorf("Seconds() = %v", (2 * Second).Seconds())
	}
	if (3 * Millisecond).Millis() != 3.0 {
		t.Errorf("Millis() = %v", (3 * Millisecond).Millis())
	}
	if (7 * Microsecond).Micros() != 7.0 {
		t.Errorf("Micros() = %v", (7 * Microsecond).Micros())
	}
}

func TestEventCount(t *testing.T) {
	s := New()
	for i := Time(1); i <= 7; i++ {
		s.At(i, func() {})
	}
	s.RunAll()
	if s.EventCount() != 7 {
		t.Fatalf("EventCount = %d, want 7", s.EventCount())
	}
}
