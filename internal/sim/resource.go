package sim

// Resource is a counted server pool (semaphore) with a priority FIFO queue:
// lower priority values are served first; within a priority, arrivals are
// FIFO. It is the building block for CPUs, disks, and link schedulers.
type Resource struct {
	sim      *Sim
	capacity int
	inUse    int
	queue    []*resWaiter

	// Queueing statistics.
	totalWaits    uint64
	totalWaitTime Time
	busyTime      Time
	lastChange    Time
	lastBusy      int
	resetAt       Time
}

type resWaiter struct {
	p       *Proc  // goroutine-backed waiter, or
	fn      func() // continuation waiter (callback actors; see AcquireFunc)
	prio    int
	arrived Time
}

// NewResource returns a resource with the given number of servers.
func NewResource(s *Sim, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, capacity: capacity}
}

// Capacity returns the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of busy servers.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiting processes.
func (r *Resource) QueueLen() int { return len(r.queue) }

// accountBusy accumulates server-busy time for utilization reporting.
func (r *Resource) accountBusy() {
	now := r.sim.now
	r.busyTime += Time(r.lastBusy) * (now - r.lastChange)
	r.lastChange = now
	r.lastBusy = r.inUse
}

// Utilization returns mean busy servers divided by capacity since the last
// ResetUsage (or simulation start).
func (r *Resource) Utilization() float64 {
	now := r.sim.now
	if now <= r.resetAt {
		return 0
	}
	busy := r.busyTime + Time(r.lastBusy)*(now-r.lastChange)
	return float64(busy) / float64(now-r.resetAt) / float64(r.capacity)
}

// ResetUsage restarts utilization accounting from now (e.g. at the end of a
// warm-up period).
func (r *Resource) ResetUsage() {
	now := r.sim.now
	r.accountBusy()
	r.busyTime = 0
	r.lastChange = now
	r.resetAt = now
	r.totalWaits = 0
	r.totalWaitTime = 0
}

// MeanWait returns the mean queueing delay over all Acquire calls that had
// to wait at least once, in simulated time. Zero if nothing ever waited.
func (r *Resource) MeanWait() Time {
	if r.totalWaits == 0 {
		return 0
	}
	return r.totalWaitTime / Time(r.totalWaits)
}

// TryAcquire claims a server without blocking, returning false if none is
// free or waiters are queued ahead.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.accountBusy()
		r.inUse++
		r.lastBusy = r.inUse
		return true
	}
	return false
}

// Acquire claims a server, blocking the process in priority-FIFO order
// until one is free. Lower prio values are served first.
func (r *Resource) Acquire(p *Proc, prio int) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.accountBusy()
		r.inUse++
		r.lastBusy = r.inUse
		return
	}
	w := &resWaiter{p: p, prio: prio, arrived: r.sim.now}
	r.enqueue(w)
	p.park()
	r.totalWaits++
	r.totalWaitTime += r.sim.now - w.arrived
}

// AcquireFunc is the continuation-style Acquire for callback actors: if a
// server is free (and nobody is queued ahead) fn runs synchronously with the
// server held; otherwise the continuation waits in the same priority-FIFO
// queue as blocking processes and runs (via the calendar, like a woken
// process) once a server is handed to it. The caller must eventually call
// Release from fn's continuation chain. Kernel context only.
func (r *Resource) AcquireFunc(prio int, fn func()) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.accountBusy()
		r.inUse++
		r.lastBusy = r.inUse
		fn()
		return
	}
	r.enqueue(&resWaiter{fn: fn, prio: prio, arrived: r.sim.now})
}

// enqueue inserts w before the first waiter with a strictly larger prio
// value (priority-FIFO).
func (r *Resource) enqueue(w *resWaiter) {
	i := len(r.queue)
	for j, q := range r.queue {
		if q.prio > w.prio {
			i = j
			break
		}
	}
	r.queue = append(r.queue, nil)
	copy(r.queue[i+1:], r.queue[i:])
	r.queue[i] = w
}

// Release frees a server and, if someone is waiting, hands it over.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release on idle resource")
	}
	r.accountBusy()
	for len(r.queue) > 0 {
		w := r.queue[0]
		r.queue = r.queue[1:]
		if w.fn != nil {
			// Continuation waiter: the server passes directly to it; the
			// continuation runs through the calendar exactly where a woken
			// process would. Wait accounting happens here (same simulated
			// instant the woken process would record it).
			r.totalWaits++
			r.totalWaitTime += r.sim.now - w.arrived
			r.sim.After(0, w.fn)
			return
		}
		if w.p.done {
			continue // waiter was killed while queued; do not strand the server on it
		}
		// Server passes directly to the waiter; inUse unchanged.
		r.sim.After(0, func() { w.p.wake(nil) })
		return
	}
	r.inUse--
	r.lastBusy = r.inUse
}

// Use acquires a server, holds it for d, then releases it: the common
// "occupy a server for a service time" pattern.
func (r *Resource) Use(p *Proc, prio int, d Time) {
	r.Acquire(p, prio)
	p.Sleep(d)
	r.Release()
}
