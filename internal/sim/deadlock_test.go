package sim

import (
	"strings"
	"testing"
)

// TestDeadlockWatchdogFires: two processes parked forever on mailboxes with
// an empty calendar is exactly the wedge the watchdog exists to catch.
func TestDeadlockWatchdogFires(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	s.Spawn("waiter-a", func(p *Proc) { mb.Recv(p) })
	s.Spawn("waiter-b", func(p *Proc) { mb.Recv(p) })
	var got *DeadlockError
	s.OnDeadlock(func(e *DeadlockError) { got = e })
	s.Run(10 * Second)
	if got == nil {
		t.Fatal("watchdog did not fire on empty calendar with parked processes")
	}
	if len(got.Procs) != 2 || got.Procs[0] != "waiter-a" || got.Procs[1] != "waiter-b" {
		t.Fatalf("blocked procs = %v, want sorted [waiter-a waiter-b]", got.Procs)
	}
	if !strings.Contains(got.Error(), "waiter-a") {
		t.Fatalf("error %q should name blocked processes", got.Error())
	}
	s.Shutdown()
}

// TestDeadlockWatchdogQuietOnCleanRun: processes that finish (or a calendar
// that still has events at the horizon) must not trip the watchdog.
func TestDeadlockWatchdogQuietOnCleanRun(t *testing.T) {
	s := New()
	s.Spawn("sleeper", func(p *Proc) { p.Sleep(1 * Second) })
	fired := false
	s.OnDeadlock(func(*DeadlockError) { fired = true })
	s.Run(10 * Second)
	if fired {
		t.Fatal("watchdog fired on a run whose processes all completed")
	}
	s.Shutdown()
}

// TestDeadlockWatchdogQuietWhenTimedOut: a wake that eventually arrives via
// RecvTimeout is not a deadlock.
func TestDeadlockWatchdogQuietWhenTimedOut(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	s.Spawn("bounded-waiter", func(p *Proc) {
		if _, ok := mb.RecvTimeout(p, 2*Second); ok {
			t.Error("unexpected message")
		}
	})
	fired := false
	s.OnDeadlock(func(*DeadlockError) { fired = true })
	s.Run(10 * Second)
	if fired {
		t.Fatal("watchdog fired although the bounded wait timed out cleanly")
	}
	s.Shutdown()
}
