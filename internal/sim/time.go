// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel has two layers. The lower layer is a classic event calendar: a
// binary heap of (time, sequence, callback) entries executed in order by
// Run. The upper layer provides lightweight simulated processes: ordinary
// Go functions that run on their own goroutine but under strict hand-off,
// so exactly one goroutine (the kernel or a single process) is ever running.
// This keeps simulations fully deterministic while letting model code be
// written in a natural blocking style (Sleep, Wait, Acquire, ...).
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. Durations are also expressed as Time.
type Time int64

// Convenient duration units of simulated time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}
