package sim

import (
	"fmt"
	"io"
)

// Tracer receives kernel-level events. Tracing is off by default and costs
// one nil check per event when disabled; it exists for debugging model
// behaviour (who ran when, what woke whom) without printf-ing model code.
type Tracer interface {
	// Event fires for every executed calendar event.
	Event(t Time, seq uint64)
	// ProcStart fires when a process's goroutine begins running.
	ProcStart(t Time, name string)
	// ProcEnd fires when a process function returns or is killed.
	ProcEnd(t Time, name string, killed bool)
}

// SetTracer installs (or, with nil, removes) the tracer.
func (s *Sim) SetTracer(tr Tracer) { s.tracer = tr }

// WriterTracer writes one line per traced event to an io.Writer — the
// simplest useful Tracer.
type WriterTracer struct {
	W io.Writer
	// Procs limits output to process start/end when true (event lines are
	// voluminous).
	ProcsOnly bool
}

// Event implements Tracer.
func (w *WriterTracer) Event(t Time, seq uint64) {
	if w.ProcsOnly {
		return
	}
	fmt.Fprintf(w.W, "%v event #%d\n", t, seq)
}

// ProcStart implements Tracer.
func (w *WriterTracer) ProcStart(t Time, name string) {
	fmt.Fprintf(w.W, "%v start %s\n", t, name)
}

// ProcEnd implements Tracer.
func (w *WriterTracer) ProcEnd(t Time, name string, killed bool) {
	suffix := ""
	if killed {
		suffix = " (killed)"
	}
	fmt.Fprintf(w.W, "%v end %s%s\n", t, name, suffix)
}

// CountingTracer tallies activity per process name — cheap enough to leave
// on for a whole run when hunting for runaway processes.
type CountingTracer struct {
	Events uint64
	Starts map[string]uint64
	Ends   map[string]uint64
	Kills  map[string]uint64
}

// NewCountingTracer returns an empty counting tracer.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{
		Starts: make(map[string]uint64),
		Ends:   make(map[string]uint64),
		Kills:  make(map[string]uint64),
	}
}

// Event implements Tracer.
func (c *CountingTracer) Event(t Time, seq uint64) { c.Events++ }

// ProcStart implements Tracer.
func (c *CountingTracer) ProcStart(t Time, name string) { c.Starts[name]++ }

// ProcEnd implements Tracer.
func (c *CountingTracer) ProcEnd(t Time, name string, killed bool) {
	c.Ends[name]++
	if killed {
		c.Kills[name]++
	}
}
