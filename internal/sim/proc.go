package sim

import (
	"fmt"
	"sort"
)

// killSentinel is the panic value used to unwind a killed process.
type killPanic struct{}

// resumeMsg is what the kernel hands a parked process when waking it.
type resumeMsg struct {
	kill bool
	val  any
}

// Proc is a simulated process: a Go function running on its own goroutine
// under strict hand-off with the kernel. Exactly one goroutine — either the
// kernel or one process — runs at any instant, so process code needs no
// locking and the simulation stays deterministic.
//
// All Proc methods must be called from the process's own function.
type Proc struct {
	sim         *Sim
	name        string
	seq         uint64 // spawn order; fixes iteration order over proc sets
	resume      chan resumeMsg
	done        bool
	goroutineUp bool
	span        any
	wakeFn      func() // prebuilt wake(nil) continuation, so Sleep never allocates
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Seq returns the spawn-order number, usable as a deterministic sort key
// when a set of processes must be torn down in a reproducible order.
func (p *Proc) Seq() uint64 { return p.seq }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.sim.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// SetSpan attaches an opaque trace context to the process (nil detaches).
// The kernel never inspects it; instrumented model code reads it back via
// Span so a transaction's span can ride along the worker executing it.
func (p *Proc) SetSpan(v any) { p.span = v }

// Span returns the trace context attached with SetSpan, or nil. The nil
// check is the entire cost of disabled tracing on instrumented paths.
func (p *Proc) Span() any { return p.span }

// Spawn creates a process that will start (via the event calendar) at the
// current simulated time. fn runs until it returns, blocks on a kernel
// primitive, or the process is killed.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, seq: s.procSeq, resume: make(chan resumeMsg)}
	p.wakeFn = func() { p.wake(nil) }
	s.procSeq++
	s.procs[p] = struct{}{}
	s.After(0, func() { p.start(fn) })
	return p
}

// handback lazily creates the kernel hand-back channel.
func (s *Sim) handbackCh() chan struct{} {
	if s.handback == nil {
		s.handback = make(chan struct{})
	}
	return s.handback
}

// start launches the process goroutine and runs it until its first yield.
// Called from kernel context (an event).
func (p *Proc) start(fn func(*Proc)) {
	if p.done {
		return // killed before its start event fired
	}
	s := p.sim
	hb := s.handbackCh()
	p.goroutineUp = true
	s.current = p
	if s.tracer != nil {
		s.tracer.ProcStart(s.now, p.name)
	}
	go func() {
		defer func() {
			r := recover()
			p.done = true
			delete(s.procs, p)
			_, killed := r.(killPanic)
			if r != nil && !killed {
				// A real model bug: crash loudly with context.
				panic(fmt.Sprintf("sim: process %q panicked at %v: %v", p.name, s.now, r))
			}
			if s.tracer != nil {
				s.tracer.ProcEnd(s.now, p.name, killed)
			}
			hb <- struct{}{}
		}()
		fn(p)
	}()
	<-hb
	s.current = nil
}

// park yields control to the kernel and blocks until some event calls wake.
// Returns the value passed to wake.
func (p *Proc) park() any {
	s := p.sim
	if s.current != p {
		panic(fmt.Sprintf("sim: process %q parking while not current", p.name))
	}
	s.current = nil
	s.handbackCh() <- struct{}{}
	msg := <-p.resume
	if msg.kill {
		panic(killPanic{})
	}
	return msg.val
}

// wake resumes a parked process, handing it val. Must be called from kernel
// context (inside an event, never from another process); primitives ensure
// this by scheduling wakes on the calendar.
func (p *Proc) wake(val any) {
	s := p.sim
	if s.current != nil {
		panic("sim: wake from non-kernel context")
	}
	if p.done {
		return
	}
	s.current = p
	p.resume <- resumeMsg{val: val}
	<-s.handbackCh()
	s.current = nil
}

// wakeKill resumes a parked process with the kill flag, unwinding it.
func (p *Proc) wakeKill() {
	s := p.sim
	if p.done {
		return
	}
	s.current = p
	p.resume <- resumeMsg{kill: true}
	<-s.handbackCh()
	s.current = nil
}

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Time) {
	p.sim.After(d, p.wakeFn)
	p.park()
}

// SleepUntil suspends the process until absolute time t (no-op if t is in
// the past). It schedules through At directly, so a target time beyond the
// Time range is reported by At's own check rather than a wrapped delay.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.sim.now {
		return
	}
	p.sim.At(t, p.wakeFn)
	p.park()
}

// Yield reschedules the process at the current time, letting other pending
// events at this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// LiveProcs returns the number of processes that have started or are
// scheduled and have not finished.
func (s *Sim) LiveProcs() int { return len(s.procs) }

// Shutdown kills every live process. Parked processes unwind immediately
// (their deferred functions run); processes whose start event has not fired
// yet are marked so they terminate on their first yield. Shutdown must be
// called from kernel context (i.e., not from inside a process), typically
// after Run returns.
func (s *Sim) Shutdown() {
	if s.current != nil {
		panic("sim: Shutdown called from inside a process")
	}
	// Kill until no live procs remain. A dying process's defers could in
	// principle spawn more work; loop defensively. Victims die in spawn
	// order, not map order: a defer that touches shared state must observe
	// the same unwind sequence in every run.
	for len(s.procs) > 0 {
		var victims []*Proc
		for p := range s.procs {
			victims = append(victims, p)
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
		for _, p := range victims {
			if p.done {
				continue
			}
			if !p.started() {
				// Start event has not fired; run it as a killed start.
				p.done = true
				delete(s.procs, p)
				continue
			}
			p.wakeKill()
		}
	}
}

// Kill terminates a single process: parked processes unwind immediately
// (their deferred functions run); a process whose start event has not fired
// is marked dead so the event no-ops. Killing a finished process is a no-op.
// Kill must be called from kernel context (inside an event callback), like
// Shutdown — model code kills processes from fault-activation events.
func (s *Sim) Kill(p *Proc) {
	if s.current != nil {
		panic("sim: Kill called from inside a process")
	}
	if p.done {
		return
	}
	if !p.started() {
		p.done = true
		delete(s.procs, p)
		return
	}
	p.wakeKill()
}

// started reports whether the process goroutine exists. A process whose
// start event has not yet fired has no goroutine; its resume channel has
// never been handed to one. We track this with a flag set in start.
func (p *Proc) started() bool { return p.goroutineUp }
