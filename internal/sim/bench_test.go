package sim

import (
	"runtime"
	"testing"
	"time"
)

// BenchmarkSchedule measures the schedule→fire round trip that dominates the
// kernel's hot path: every iteration pushes one event and the run loop pops
// it again.
func BenchmarkSchedule(b *testing.B) {
	s := New()
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			s.After(Time(1), step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.After(Time(1), step)
	s.RunAll()
}

// BenchmarkScheduleDepth exercises heap movement with a standing population
// of 1024 timers, the regime router/link calendars run in.
func BenchmarkScheduleDepth(b *testing.B) {
	s := New()
	const depth = 1024
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			s.After(Time(1), step)
		}
	}
	// A standing population of far-future timers forces every push/pop to
	// churn through a populated heap.
	fn := func() {}
	for i := 0; i < depth; i++ {
		s.At(Time(1)<<60+Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.After(Time(1), step)
	s.RunAll()
}

// BenchmarkCancel measures the arm/disarm timer pattern (every TCP segment
// arms an RTO that is almost always cancelled by the ack).
func BenchmarkCancel(b *testing.B) {
	s := New()
	n := 0
	fn := func() {}
	var step func()
	step = func() {
		if n < b.N {
			n++
			id := s.After(Time(1000), fn)
			s.Cancel(id)
			s.After(Time(1), step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.After(Time(1), step)
	s.RunAll()
}

// BenchmarkProcSwitch measures one goroutine-backed process step (park +
// wake, two real context switches) for comparison against the continuation
// path benchmarked above.
func BenchmarkProcSwitch(b *testing.B) {
	s := New()
	s.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Time(1))
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.RunAll()
}

// TestScheduleSteadyStateAllocs pins the tentpole property: once the pool has
// grown to the working population, schedule/fire and schedule/cancel run
// without allocating.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	s := New()
	fn := func() {}
	// Warm the pool and heap beyond anything the loop below needs.
	ids := make([]EventID, 64)
	for i := range ids {
		ids[i] = s.After(Time(i+1), fn)
	}
	for _, id := range ids {
		s.Cancel(id)
	}

	if avg := testing.AllocsPerRun(200, func() {
		id := s.After(Time(10), fn)
		s.Cancel(id)
	}); avg != 0 {
		t.Errorf("schedule+cancel: %v allocs/op, want 0", avg)
	}

	if avg := testing.AllocsPerRun(200, func() {
		s.After(Time(1), fn)
		s.RunAll()
	}); avg != 0 {
		t.Errorf("schedule+fire: %v allocs/op, want 0", avg)
	}
}

// TestFiredTimerClosureCollectible is the regression test for stale-EventID
// retention: after a timer fires, the kernel must not pin its callback — the
// closure (and everything it captures) has to be collectible even while the
// caller still holds the EventID.
func TestFiredTimerClosureCollectible(t *testing.T) {
	s := New()
	type ballast struct{ buf [1 << 16]byte }
	collected := make(chan struct{})
	var id EventID
	func() {
		bal := &ballast{}
		runtime.SetFinalizer(bal, func(*ballast) { close(collected) })
		id = s.After(Time(1), func() { _ = bal.buf[0] })
	}()
	s.RunAll()
	// The EventID is still held (id), but the slot was released on fire; the
	// closure and its ballast must now be garbage.
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-collected:
			if s.Scheduled(id) {
				t.Fatal("fired event still reports Scheduled")
			}
			return
		case <-time.After(10 * time.Millisecond):
			// Finalizers run asynchronously after GC; give them a beat.
		}
	}
	t.Fatal("fired timer's closure was not collected; kernel retains fn")
}
