package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled callback.
type event struct {
	t    Time
	seq  uint64 // tie-breaker for determinism
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when popped
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ e *event }

// Sim is a discrete-event simulation. The zero value is not usable; create
// one with New.
type Sim struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// Process bookkeeping (see proc.go).
	procs    map[*Proc]struct{}
	procSeq  uint64 // next spawn-order number
	current  *Proc
	handback chan struct{}

	// nEvents counts executed events, for diagnostics.
	nEvents uint64

	tracer Tracer

	// onDeadlock, when set, is invoked by run when the calendar empties
	// while live processes remain parked (see OnDeadlock).
	onDeadlock func(*DeadlockError)
}

// New returns an empty simulation positioned at time zero.
func New() *Sim {
	return &Sim{procs: make(map[*Proc]struct{})}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// EventCount returns the number of events executed so far.
func (s *Sim) EventCount() uint64 { return s.nEvents }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a model bug.
func (s *Sim) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &event{t: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return EventID{e}
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel cancels a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(id EventID) {
	if id.e == nil || id.e.dead {
		return
	}
	id.e.dead = true
	if id.e.idx >= 0 {
		heap.Remove(&s.events, id.e.idx)
	}
	id.e.fn = nil
}

// Stop makes Run return after the currently executing event completes.
func (s *Sim) Stop() { s.stopped = true }

// DeadlockError describes a wedged simulation: the event calendar emptied
// while processes were still parked, so no future event can ever wake them.
type DeadlockError struct {
	At    Time     // simulated time at which the calendar emptied
	Procs []string // names of the blocked processes, sorted
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked with empty calendar: %s",
		e.At, len(e.Procs), strings.Join(e.Procs, ", "))
}

// OnDeadlock installs a watchdog handler. When the event calendar runs dry
// while live processes remain parked — a state in which the simulation would
// otherwise silently end with work wedged mid-protocol — run calls fn with
// the blocked process names before returning. The handler is opt-in because
// some models legitimately leave helper processes parked at the end of a
// bounded run; long-running cluster models should install it so a protocol
// stall becomes a diagnosable failure rather than a hang or truncated run.
func (s *Sim) OnDeadlock(fn func(*DeadlockError)) { s.onDeadlock = fn }

// BlockedProcs returns the sorted names of live processes that have started
// and are currently parked awaiting a wake.
func (s *Sim) BlockedProcs() []string {
	var names []string
	for p := range s.procs {
		if p.started() && !p.done {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Run executes events in time order until the calendar is empty, the
// horizon is passed, or Stop is called. It returns the time of the last
// executed event (or the horizon if it was reached). Run must not be called
// from inside an event or process.
func (s *Sim) Run(horizon Time) Time {
	return s.run(horizon, true)
}

// RunAll executes events until the calendar is empty or Stop is called,
// leaving the clock at the last executed event.
func (s *Sim) RunAll() Time {
	const forever = Time(1) << 62
	return s.run(forever, false)
}

func (s *Sim) run(horizon Time, advance bool) Time {
	if s.current != nil {
		panic("sim: Run called from inside a process")
	}
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		e := s.events[0]
		if e.t > horizon {
			s.now = horizon
			return s.now
		}
		heap.Pop(&s.events)
		if e.dead {
			continue
		}
		s.now = e.t
		s.nEvents++
		if s.tracer != nil {
			s.tracer.Event(e.t, e.seq)
		}
		fn := e.fn
		e.fn = nil
		fn()
	}
	if len(s.events) == 0 && !s.stopped && s.onDeadlock != nil && len(s.procs) > 0 {
		if names := s.BlockedProcs(); len(names) > 0 {
			s.onDeadlock(&DeadlockError{At: s.now, Procs: names})
		}
	}
	if advance && !s.stopped && s.now < horizon {
		s.now = horizon
	}
	return s.now
}
