package sim

import (
	"fmt"
	"sort"
	"strings"
)

// event is one slot of the kernel's event pool. Slots are recycled through a
// free list; gen distinguishes incarnations of the same slot so that a held
// EventID for a fired or cancelled event can never act on the slot's next
// tenant (the classic ABA hazard of free-listed handles).
type event struct {
	t   Time
	seq uint64 // tie-breaker for determinism
	fn  func()
	gen uint32
	idx int32 // position in the heap; -1 when not queued (free or firing)
}

// noSlot terminates the free list. A free slot reuses its idx field as the
// link to the next free slot, so the pool needs no side table.
const noSlot = int32(-1)

// EventID identifies a scheduled event so it can be cancelled. It is a value
// (slot index + generation), not a pointer: holding an EventID after the
// event fired or was cancelled pins nothing, and cancelling it is a detected
// no-op even if the kernel has recycled the slot for a new event.
type EventID struct {
	slot int32
	gen  uint32
}

// eventHeap is a 4-ary implicit heap of pool slot indices ordered by
// (time, seq) of the referenced slots. A 4-ary layout does ~half the levels
// of a binary heap, and child scans stay within one cache line of int32s.
type eventHeap []int32

// Sim is a discrete-event simulation. The zero value is not usable; create
// one with New.
type Sim struct {
	now     Time
	seq     uint64
	pool    []event
	free    int32 // head of the free-slot list (linked through idx), noSlot if empty
	heap    eventHeap
	stopped bool

	// Process bookkeeping (see proc.go).
	procs    map[*Proc]struct{}
	procSeq  uint64 // next spawn-order number
	current  *Proc
	handback chan struct{}

	// nEvents counts executed events, for diagnostics.
	nEvents uint64

	tracer Tracer

	// onDeadlock, when set, is invoked by run when the calendar empties
	// while live processes remain parked (see OnDeadlock).
	onDeadlock func(*DeadlockError)
}

// New returns an empty simulation positioned at time zero.
func New() *Sim {
	return &Sim{procs: make(map[*Proc]struct{}), free: noSlot}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// EventCount returns the number of events executed so far.
func (s *Sim) EventCount() uint64 { return s.nEvents }

// Pending returns the number of scheduled (not yet fired) events.
func (s *Sim) Pending() int { return len(s.heap) }

// alloc takes a slot off the free list, growing the pool if it is empty.
// Slot generations start at 1 so the zero EventID never matches a live slot.
func (s *Sim) alloc() int32 {
	if s.free != noSlot {
		slot := s.free
		s.free = s.pool[slot].idx
		return slot
	}
	s.pool = append(s.pool, event{gen: 1})
	return int32(len(s.pool) - 1)
}

// release returns a slot to the free list, clearing its callback (so the
// closure is collectible immediately) and bumping the generation (so every
// outstanding EventID for this slot goes stale).
func (s *Sim) release(slot int32) {
	e := &s.pool[slot]
	e.fn = nil
	e.gen++
	e.idx = s.free
	s.free = slot
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a model bug.
func (s *Sim) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	slot := s.alloc()
	e := &s.pool[slot]
	e.t = t
	e.seq = s.seq
	e.fn = fn
	s.seq++
	s.heapPush(slot)
	return EventID{slot: slot, gen: e.gen}
}

// After schedules fn to run d after the current time. A negative d panics,
// and so does a delay large enough to wrap Time past its positive range —
// without the check the wrapped (negative) target time would surface as a
// misleading "scheduling event before now" panic.
func (s *Sim) After(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	t := s.now + d
	if t < s.now {
		panic(fmt.Sprintf("sim: delay %d overflows simulated time (now %v)", int64(d), s.now))
	}
	return s.At(t, fn)
}

// Cancel cancels a scheduled event. Cancelling an already-fired or
// already-cancelled event — including one whose pool slot has since been
// recycled for a newer event — is a detected no-op: the generation tag in
// the EventID no longer matches the slot.
func (s *Sim) Cancel(id EventID) {
	if id.slot < 0 || int(id.slot) >= len(s.pool) {
		return
	}
	e := &s.pool[id.slot]
	if e.gen != id.gen || e.idx < 0 {
		return
	}
	s.heapRemove(e.idx)
	s.release(id.slot)
}

// Scheduled reports whether id refers to an event that is still pending
// (not fired, not cancelled, slot not recycled).
func (s *Sim) Scheduled(id EventID) bool {
	if id.slot < 0 || int(id.slot) >= len(s.pool) {
		return false
	}
	e := &s.pool[id.slot]
	return e.gen == id.gen && e.idx >= 0
}

// less orders two pool slots by (time, seq).
func (s *Sim) less(a, b int32) bool {
	ea, eb := &s.pool[a], &s.pool[b]
	if ea.t != eb.t {
		return ea.t < eb.t
	}
	return ea.seq < eb.seq
}

// heapPush appends slot and sifts it up.
func (s *Sim) heapPush(slot int32) {
	i := int32(len(s.heap))
	s.heap = append(s.heap, slot)
	s.pool[slot].idx = i
	s.siftUp(i)
}

// heapPopRoot removes and returns the root slot.
func (s *Sim) heapPopRoot() int32 {
	root := s.heap[0]
	s.pool[root].idx = -1
	last := len(s.heap) - 1
	if last > 0 {
		moved := s.heap[last]
		s.heap[0] = moved
		s.pool[moved].idx = 0
	}
	s.heap = s.heap[:last]
	if last > 1 {
		s.siftDown(0)
	}
	return root
}

// heapRemove removes the element at heap position i.
func (s *Sim) heapRemove(i int32) {
	last := int32(len(s.heap) - 1)
	victim := s.heap[i]
	s.pool[victim].idx = -1
	if i != last {
		moved := s.heap[last]
		s.heap[i] = moved
		s.pool[moved].idx = i
		s.heap = s.heap[:last]
		// The moved element may need to travel either direction.
		s.siftDown(i)
		if s.heap[i] == moved {
			s.siftUp(i)
		}
	} else {
		s.heap = s.heap[:last]
	}
}

// siftUp restores the heap property from position i toward the root.
func (s *Sim) siftUp(i int32) {
	slot := s.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := s.heap[parent]
		if !s.less(slot, p) {
			break
		}
		s.heap[i] = p
		s.pool[p].idx = i
		i = parent
	}
	s.heap[i] = slot
	s.pool[slot].idx = i
}

// siftDown restores the heap property from position i toward the leaves.
func (s *Sim) siftDown(i int32) {
	n := int32(len(s.heap))
	slot := s.heap[i]
	for {
		first := i<<2 + 1 // leftmost child
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s.less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		b := s.heap[best]
		if !s.less(b, slot) {
			break
		}
		s.heap[i] = b
		s.pool[b].idx = i
		i = best
	}
	s.heap[i] = slot
	s.pool[slot].idx = i
}

// Stop makes Run return after the currently executing event completes.
func (s *Sim) Stop() { s.stopped = true }

// DeadlockError describes a wedged simulation: the event calendar emptied
// while processes were still parked, so no future event can ever wake them.
type DeadlockError struct {
	At    Time     // simulated time at which the calendar emptied
	Procs []string // names of the blocked processes, sorted
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked with empty calendar: %s",
		e.At, len(e.Procs), strings.Join(e.Procs, ", "))
}

// OnDeadlock installs a watchdog handler. When the event calendar runs dry
// while live processes remain parked — a state in which the simulation would
// otherwise silently end with work wedged mid-protocol — run calls fn with
// the blocked process names before returning. The handler is opt-in because
// some models legitimately leave helper processes parked at the end of a
// bounded run; long-running cluster models should install it so a protocol
// stall becomes a diagnosable failure rather than a hang or truncated run.
func (s *Sim) OnDeadlock(fn func(*DeadlockError)) { s.onDeadlock = fn }

// BlockedProcs returns the sorted names of live processes that have started
// and are currently parked awaiting a wake.
func (s *Sim) BlockedProcs() []string {
	var names []string
	for p := range s.procs {
		if p.started() && !p.done {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Run executes events in time order until the calendar is empty, the
// horizon is passed, or Stop is called. It returns the time of the last
// executed event (or the horizon if it was reached). Run must not be called
// from inside an event or process.
func (s *Sim) Run(horizon Time) Time {
	return s.run(horizon, true)
}

// RunAll executes events until the calendar is empty or Stop is called,
// leaving the clock at the last executed event.
func (s *Sim) RunAll() Time {
	const forever = Time(1) << 62
	return s.run(forever, false)
}

func (s *Sim) run(horizon Time, advance bool) Time {
	if s.current != nil {
		panic("sim: Run called from inside a process")
	}
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		slot := s.heap[0]
		e := &s.pool[slot]
		if e.t > horizon {
			s.now = horizon
			return s.now
		}
		s.heapPopRoot()
		s.now = e.t
		s.nEvents++
		if s.tracer != nil {
			s.tracer.Event(e.t, e.seq)
		}
		fn := e.fn
		// Recycle the slot before invoking the callback: the hot pattern of
		// an event rescheduling its successor reuses the just-freed slot, so
		// the steady-state calendar footprint is exactly the peak population.
		s.release(slot)
		fn()
	}
	if len(s.heap) == 0 && !s.stopped && s.onDeadlock != nil && len(s.procs) > 0 {
		if names := s.BlockedProcs(); len(names) > 0 {
			s.onDeadlock(&DeadlockError{At: s.now, Procs: names})
		}
	}
	if advance && !s.stopped && s.now < horizon {
		s.now = horizon
	}
	return s.now
}
