package sim

// Mailbox is an unbounded FIFO of values with FIFO-ordered blocking
// receivers, the kernel analogue of a Go channel. Send may be called from
// kernel context or from a process; receivers are woken through the event
// calendar, preserving determinism.
type Mailbox struct {
	sim     *Sim
	vals    []any
	waiters []*mboxWaiter
}

type mboxWaiter struct {
	p        *Proc
	timer    EventID
	hasTimer bool
	removed  bool
}

// NewMailbox returns an empty mailbox bound to s.
func NewMailbox(s *Sim) *Mailbox { return &Mailbox{sim: s} }

// Len returns the number of queued (unconsumed) values.
func (m *Mailbox) Len() int { return len(m.vals) }

// Waiters returns the number of processes blocked in Recv.
func (m *Mailbox) Waiters() int { return len(m.waiters) }

// Send enqueues v and, if a receiver is waiting, schedules its wake-up at
// the current time.
func (m *Mailbox) Send(v any) {
	m.vals = append(m.vals, v)
	m.dispatch()
}

// dispatch pairs queued values with queued waiters.
func (m *Mailbox) dispatch() {
	for len(m.vals) > 0 && len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.removed {
			continue
		}
		w.removed = true
		v := m.vals[0]
		m.vals = m.vals[1:]
		if w.hasTimer {
			m.sim.Cancel(w.timer)
			w.timer = EventID{} // drop the stale handle; the slot will be recycled
			w.hasTimer = false
		}
		m.sim.After(0, func() { w.p.wake(recvResult{v, true}) })
	}
}

type recvResult struct {
	val any
	ok  bool
}

// Recv blocks the calling process until a value is available and returns it.
func (m *Mailbox) Recv(p *Proc) any {
	v, _ := m.RecvTimeout(p, -1)
	return v
}

// TryRecv returns a queued value without blocking. ok is false if the
// mailbox is empty.
func (m *Mailbox) TryRecv() (any, bool) {
	if len(m.vals) == 0 {
		return nil, false
	}
	v := m.vals[0]
	m.vals = m.vals[1:]
	return v, true
}

// RecvTimeout blocks until a value arrives or d elapses. A negative d means
// no timeout. ok is false on timeout.
func (m *Mailbox) RecvTimeout(p *Proc, d Time) (any, bool) {
	if v, ok := m.TryRecv(); ok {
		return v, true
	}
	w := &mboxWaiter{p: p}
	m.waiters = append(m.waiters, w)
	if d >= 0 {
		w.hasTimer = true
		w.timer = m.sim.After(d, func() {
			w.timer = EventID{} // fired: the ID is stale from here on
			w.hasTimer = false
			if w.removed {
				return
			}
			w.removed = true
			p.wake(recvResult{nil, false})
		})
	}
	r := p.park().(recvResult)
	return r.val, r.ok
}
