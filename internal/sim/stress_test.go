package sim

import (
	"testing"
	"testing/quick"

	"fmt"
)

// TestStressDeterminism runs a randomized mix of processes, mailboxes and
// resources twice and requires bit-identical traces — the property every
// experiment in this repository rests on.
func TestStressDeterminism(t *testing.T) {
	run := func(seed int64) (trace string, events uint64) {
		s := New()
		res := NewResource(s, 2)
		mb := NewMailbox(s)
		x := uint64(uint64(seed)*2654435761 + 12345)
		next := func(n int) int {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return int(x % uint64(n))
		}
		for i := 0; i < 20; i++ {
			i := i
			d := Time(next(1000)+1) * Microsecond
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(d)
					res.Acquire(p, next(3))
					p.Sleep(Time(next(100)+1) * Microsecond)
					res.Release()
					if i%3 == 0 {
						mb.Send(i*100 + j)
					} else if i%3 == 1 {
						if v, ok := mb.RecvTimeout(p, 2*Millisecond); ok {
							trace += fmt.Sprintf("r%v;", v)
						}
					}
					trace += fmt.Sprintf("%d@%d;", i, int64(p.Now()))
				}
			})
		}
		s.Run(5 * Second)
		s.Shutdown()
		return trace, s.EventCount()
	}
	for seed := int64(1); seed <= 5; seed++ {
		t1, e1 := run(seed)
		t2, e2 := run(seed)
		if t1 != t2 || e1 != e2 {
			t.Fatalf("seed %d: nondeterministic (events %d vs %d)", seed, e1, e2)
		}
	}
}

// TestResourceConservation: under arbitrary interleavings the resource
// never exceeds capacity and never leaks servers.
func TestResourceConservation(t *testing.T) {
	err := quick.Check(func(seed uint16, nProcs uint8) bool {
		s := New()
		cap := 1 + int(seed%3)
		res := NewResource(s, cap)
		over := false
		n := 1 + int(nProcs%16)
		for i := 0; i < n; i++ {
			d := Time(int(seed)%50+1+i) * Microsecond
			s.Spawn("w", func(p *Proc) {
				for j := 0; j < 3; j++ {
					res.Acquire(p, j%2)
					if res.InUse() > cap {
						over = true
					}
					p.Sleep(d)
					res.Release()
				}
			})
		}
		s.Run(10 * Second)
		s.Shutdown()
		return !over && res.InUse() == 0 && res.QueueLen() == 0
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMailboxConservation: every value sent is received exactly once.
func TestMailboxConservation(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	const senders, msgs = 8, 25
	got := map[int]int{}
	for i := 0; i < senders; i++ {
		i := i
		s.Spawn("snd", func(p *Proc) {
			for j := 0; j < msgs; j++ {
				p.Sleep(Time(i+1) * Microsecond)
				mb.Send(i*1000 + j)
			}
		})
	}
	for r := 0; r < 3; r++ {
		s.Spawn("rcv", func(p *Proc) {
			for {
				v, ok := mb.RecvTimeout(p, 100*Millisecond)
				if !ok {
					return
				}
				got[v.(int)]++
			}
		})
	}
	s.Run(10 * Second)
	s.Shutdown()
	if len(got) != senders*msgs {
		t.Fatalf("received %d distinct values, want %d", len(got), senders*msgs)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %d received %d times", v, n)
		}
	}
}

// TestPooledCalendarStress interleaves Cancel, Kill and Shutdown against the
// free-listed event pool: slots recycle constantly while random holders of
// stale EventIDs keep cancelling them. The pool's generation tags must make
// every stale cancel a no-op — a miscount here fires the wrong event or
// silently drops a live one, which the executed-event tally and the
// double-run comparison would both expose.
func TestPooledCalendarStress(t *testing.T) {
	run := func(seed int64) (fired int, events uint64) {
		s := New()
		x := uint64(seed)*2654435761 + 99991
		next := func(n int) int {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return int(x % uint64(n))
		}
		var ids []EventID
		var procs []*Proc
		var churn func()
		churn = func() {
			switch next(5) {
			case 0, 1: // schedule a timer and remember its ID
				ids = append(ids, s.After(Time(next(500)+1)*Microsecond, func() { fired++ }))
			case 2: // cancel a random remembered ID (often already stale)
				if len(ids) > 0 {
					s.Cancel(ids[next(len(ids))])
				}
			case 3: // re-cancel the same ID twice in a row
				if len(ids) > 0 {
					id := ids[next(len(ids))]
					s.Cancel(id)
					s.Cancel(id)
				}
			case 4: // kill a random process (its pending sleep event goes stale)
				if len(procs) > 0 {
					i := next(len(procs))
					s.Kill(procs[i])
					procs = append(procs[:i], procs[i+1:]...)
				}
			}
			s.After(Time(next(200)+1)*Microsecond, churn)
		}
		for i := 0; i < 8; i++ {
			procs = append(procs, s.Spawn("w", func(p *Proc) {
				for {
					p.Sleep(Time(next(300)+1) * Microsecond)
				}
			}))
		}
		s.After(0, churn)
		s.Run(200 * Millisecond)
		s.Shutdown()
		return fired, s.EventCount()
	}
	for seed := int64(1); seed <= 4; seed++ {
		f1, e1 := run(seed)
		f2, e2 := run(seed)
		if f1 != f2 || e1 != e2 {
			t.Fatalf("seed %d: nondeterministic pooled calendar (fired %d/%d, events %d/%d)",
				seed, f1, f2, e1, e2)
		}
		if f1 == 0 {
			t.Fatalf("seed %d: no timers fired; stress loop inert", seed)
		}
	}
}

// TestManyProcsScale sanity-checks kernel throughput: ten thousand
// processes sleeping in a loop complete without issue.
func TestManyProcsScale(t *testing.T) {
	s := New()
	done := 0
	for i := 0; i < 10000; i++ {
		s.Spawn("p", func(p *Proc) {
			for j := 0; j < 3; j++ {
				p.Sleep(Millisecond)
			}
			done++
		})
	}
	s.RunAll()
	if done != 10000 {
		t.Fatalf("completed %d of 10000", done)
	}
	if s.LiveProcs() != 0 {
		t.Fatalf("%d leaked procs", s.LiveProcs())
	}
}
