package core

import (
	"testing"

	"dclue/internal/sim"
)

// failoverParams is the standard crash-recovery scenario: three nodes, a
// crash of dp1 thirty seconds into measurement and a restart thirty seconds
// later, with a timeline to watch the dip and recovery.
func failoverParams() Params {
	p := quickParams(3)
	p.Affinity = 0.8
	p.FaultSpec = "crash:dp1@70+0;restart:dp1@100+0"
	p.TimelineBucket = 5 * sim.Second
	return p
}

// TestCrashRestartRecovers: the full lifecycle must run — detection,
// fence-to-reopen, re-admission — and report every stage in the metrics.
func TestCrashRestartRecovers(t *testing.T) {
	m := mustRun(t, failoverParams())

	if m.Crashes != 1 || m.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", m.Crashes, m.Restarts)
	}
	if m.NodesRecovered != 1 {
		t.Fatalf("fence-to-reopen did not complete: recovered=%d", m.NodesRecovered)
	}
	if m.NodesReadmitted != 1 {
		t.Fatalf("re-admission did not complete: readmitted=%d", m.NodesReadmitted)
	}
	if m.DetectMs <= 0 {
		t.Fatalf("detection latency not measured: %v", m.DetectMs)
	}
	if m.RecoveryTimeMs <= 0 {
		t.Fatalf("recovery time not measured: %v", m.RecoveryTimeMs)
	}
	if m.UnavailabilityMs < m.RecoveryTimeMs {
		t.Fatalf("unavailability %.1fms < recovery %.1fms: the window must include detection",
			m.UnavailabilityMs, m.RecoveryTimeMs)
	}
	if m.TpmC <= 0 {
		t.Fatalf("no throughput across the outage: %+v", m)
	}
	if m.WarmupFetches == 0 {
		t.Fatal("rejoined node performed no cache-warmup fetches")
	}
}

// TestRecoveryDeterministic: two identically-seeded runs of the crash
// scenario must be numerically identical — the subsystem's processes,
// timers, and message streams must not perturb event ordering.
func TestRecoveryDeterministic(t *testing.T) {
	a := mustRun(t, failoverParams())
	b := mustRun(t, failoverParams())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed, different runs:\n%v\n%v", a, b)
	}
}

// TestCrashWithoutRestartStaysBounded is the satellite regression: a peer
// that dies and never returns must not extend any survivor's protocol wait
// past the configured bounds. The run must complete (the kernel watchdog
// fails it if anything wedges) and throughput must continue on the
// survivors after the partition reopens under surrogate mastering.
func TestCrashWithoutRestartStaysBounded(t *testing.T) {
	p := failoverParams()
	p.FaultSpec = "crash:dp1@70+0"
	m := mustRun(t, p)

	if m.NodesRecovered != 1 {
		t.Fatalf("recovered=%d, want 1", m.NodesRecovered)
	}
	if m.NodesReadmitted != 0 {
		t.Fatalf("readmitted=%d with no restart scheduled", m.NodesReadmitted)
	}
	// Survivors must keep committing after the reopen: the last timeline
	// buckets cover t in [140,160), well past crash+recovery.
	tail := m.Timeline[len(m.Timeline)-4:]
	for _, pt := range tail {
		if pt.TxnRate <= 0 {
			t.Fatalf("throughput dead at t=%v after recovery: %+v", pt.T, m.Timeline)
		}
	}
}

// TestLossOnlyScheduleLeavesRecoveryDisarmed: fault schedules without
// crash/restart events must not arm the recovery subsystem — their runs
// carry no heartbeat or checkpoint events and stay event-for-event
// identical to what they were before the subsystem existed.
func TestLossOnlyScheduleLeavesRecoveryDisarmed(t *testing.T) {
	p := quickParams(2)
	p.NodesPerLata = 1
	p.FaultSpec = "loss:interlata:0@60+10=0.2"
	c := mustNew(t, p)
	if c.rec != nil {
		t.Fatal("recovery subsystem armed by a loss-only schedule")
	}
}

// TestFetchTimeoutResolution covers the default-pick path: explicit value
// wins, no fault schedule means unbounded, and a fault schedule without an
// explicit bound gets the default.
func TestFetchTimeoutResolution(t *testing.T) {
	p := quickParams(2)
	c := &Cluster{P: p}
	if got := c.fetchTimeout(); got != 0 {
		t.Fatalf("healthy run fetchTimeout=%v, want 0 (unbounded)", got)
	}
	p.FaultSpec = "crash:dp1@70+0"
	c = &Cluster{P: p}
	want := sim.Time(0.02 * float64(sim.Second) * p.Scale)
	if got := c.fetchTimeout(); got != want {
		t.Fatalf("faulted-run default fetchTimeout=%v, want %v", got, want)
	}
	p.FetchTimeout = 3 * sim.Second
	c = &Cluster{P: p}
	if got := c.fetchTimeout(); got != 3*sim.Second {
		t.Fatalf("explicit fetchTimeout not honored: got %v", got)
	}
}

// TestRetryBackoffBounds: without recovery armed the delay is the paper's
// constant; with it armed the delay doubles per attempt but never exceeds
// the configured cap.
func TestRetryBackoffBounds(t *testing.T) {
	p := quickParams(2)
	c := &Cluster{P: p}
	if got := c.retryBackoff(10); got != p.RetryDelay {
		t.Fatalf("constant retry delay violated: attempt 10 -> %v, want %v", got, p.RetryDelay)
	}
	c.rec = &recState{}
	if got := c.retryBackoff(0); got != p.RetryDelay {
		t.Fatalf("first attempt backoff %v, want base %v", got, p.RetryDelay)
	}
	if a1, a2 := c.retryBackoff(1), c.retryBackoff(2); a1 != 2*p.RetryDelay || a2 != 4*p.RetryDelay {
		t.Fatalf("backoff not doubling: %v, %v", a1, a2)
	}
	maxD := p.retryDelayMax()
	if got := c.retryBackoff(60); got != maxD {
		t.Fatalf("backoff uncapped: attempt 60 -> %v, want cap %v", got, maxD)
	}
	c.P.RetryDelayMax = 3 * p.RetryDelay
	if got := c.retryBackoff(60); got != 3*p.RetryDelay {
		t.Fatalf("explicit RetryDelayMax not honored: got %v", got)
	}
}

// timelineMean averages the timeline buckets whose end time falls in
// (from, to].
func timelineMean(tl []TimelinePoint, from, to sim.Time) float64 {
	var sum float64
	var n int
	for _, pt := range tl {
		if pt.T > from && pt.T <= to {
			sum += pt.TxnRate
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TestThroughputDipsAndRecovers is the availability shape invariant:
// throughput drops while the crashed partition is unavailable and returns
// to within 5% of the pre-crash steady state after re-admission.
func TestThroughputDipsAndRecovers(t *testing.T) {
	m := mustRun(t, failoverParams())

	pre := timelineMean(m.Timeline, 45*sim.Second, 70*sim.Second)
	dip := timelineMean(m.Timeline, 70*sim.Second, 85*sim.Second)
	tail := timelineMean(m.Timeline, 120*sim.Second, 160*sim.Second)
	if pre <= 0 {
		t.Fatalf("no pre-crash throughput: %+v", m.Timeline)
	}
	if dip >= pre*0.95 {
		t.Fatalf("no visible dip after crash: pre=%.1f dip=%.1f", pre, dip)
	}
	if tail < pre*0.95 {
		t.Fatalf("post-readmission throughput %.1f txn/s did not recover to within 5%% of pre-crash %.1f",
			tail, pre)
	}
}

// TestRecoveryTimeGrowsWithDirtyLog: checkpointing less often leaves more
// redo log and more dirty blocks for recovery to replay, so the measured
// recovery time must grow.
func TestRecoveryTimeGrowsWithDirtyLog(t *testing.T) {
	short := failoverParams()
	short.CheckpointInterval = 1 * sim.Second
	long := failoverParams()
	long.CheckpointInterval = 50 * sim.Second

	ms := mustRun(t, short)
	ml := mustRun(t, long)
	if ml.ReplayBytes <= ms.ReplayBytes {
		t.Fatalf("replay volume did not grow with checkpoint interval: short=%dB long=%dB",
			ms.ReplayBytes, ml.ReplayBytes)
	}
	if ml.RecoveryTimeMs <= ms.RecoveryTimeMs {
		t.Fatalf("recovery time did not grow with dirty log: short=%.1fms long=%.1fms",
			ms.RecoveryTimeMs, ml.RecoveryTimeMs)
	}
}
