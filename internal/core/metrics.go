package core

import (
	"fmt"
	"hash/fnv"
	"strings"

	"dclue/internal/netsim"
	"dclue/internal/sim"
	"dclue/internal/tpcc"
	"dclue/internal/trace"
)

// Metrics is everything one run reports; each paper figure reads one or two
// fields. Rates are in the scaled system; multiply throughput by the scale
// factor to compare with unscaled hardware.
type Metrics struct {
	Nodes    int
	Affinity float64

	TpmC         float64 // scaled new-orders committed per simured minute
	TotalTxnRate float64 // scaled transactions/s (all types)
	Commits      [tpcc.NumTxnTypes]uint64
	Rollbacks    uint64
	Retries      uint64
	Failures     uint64

	CtlMsgsPerTxn  float64
	DataMsgsPerTxn float64
	IPCDataBytes   uint64

	LockWaitsPerTxn float64
	LockWaitMs      float64 // mean wait duration (scaled ms)
	LockFailsPerTxn float64

	ActiveThreads  float64 // mean runnable threads per node
	CtxSwitchK     float64 // mean context-switch cost, K cycles
	CPI            float64
	CPUUtil        float64
	BufferHitRatio float64

	DiskReadsPerTxn float64
	RespTimeMs      float64 // client-observed mean, scaled ms
	RespTimeP50Ms   float64 // client-observed percentiles, scaled ms
	RespTimeP95Ms   float64
	RespTimeP99Ms   float64
	MsgDelayMs      float64 // mean best-effort packet delay, scaled ms

	InterLataUtil float64
	NetDrops      uint64
	NetMarks      uint64
	Retransmits   uint64
	ConnResets    uint64

	FTPDeliveredMbps float64 // scaled

	// Fault-injection observability (all zero on a healthy run).
	FaultDrops    uint64 // packets lost on down/lossy links
	CorruptDrops  uint64 // packets discarded by receiver checksum
	FetchTimeouts uint64 // GCS protocol waits that expired
	FetchFails    uint64 // block fetches abandoned after retries
	LogFallbacks  uint64 // central-log writes that fell back to local
	IscsiTimeouts uint64 // iSCSI commands that timed out (then retried)
	IscsiFailed   uint64 // iSCSI commands abandoned after retries
	DiskErrors    uint64 // injected drive-level I/O errors
	DiskRetries   uint64 // pager retries after drive errors
	DiskFailures  uint64 // pager reads abandoned after retries

	// Recovery observability (all zero unless the fault schedule contains
	// crash/restart events). Durations are cumulative means in scaled ms;
	// counters are cumulative from t=0, not reset at the warmup boundary —
	// a recovery straddling the boundary is reported whole.
	Crashes          uint64
	Restarts         uint64
	NodesRecovered   uint64  // fence-to-reopen sequences completed
	NodesReadmitted  uint64  // rejoins completed
	DetectMs         float64 // mean crash -> coordinator suspicion
	RecoveryTimeMs   float64 // mean suspicion -> partition reopened
	UnavailabilityMs float64 // mean crash -> partition reopened
	ReadmitMs        float64 // mean restart -> re-admission complete
	FailoverRejects  uint64  // requests failed fast by recovery gates
	ClientRetries    uint64  // terminal dials redirected off a dead node
	RemasterHoldings uint64  // directory entries rebuilt from survivors
	ReplayBytes      int64   // redo log scanned during replay
	ReplayBlocks     uint64  // dirty blocks re-applied during replay
	WarmupFetches    uint64  // blocks refetched by a rejoined node's warmup

	// Timeline is the committed-transaction rate per TimelineBucket from
	// t=0 (warmup included; empty unless Params.TimelineBucket > 0).
	Timeline []TimelinePoint

	// Breakdown is the span-derived latency decomposition (zero value unless
	// Params.Trace was set). It is the only trace-dependent part of Metrics;
	// FingerprintSansTrace hashes everything but it.
	Breakdown LatencyBreakdown

	// UtilDecomp is the telemetry-derived utilization decomposition (zero
	// value unless Params.Telemetry was set). It is the only
	// telemetry-dependent part of Metrics; FingerprintSansTelemetry hashes
	// everything but it.
	UtilDecomp UtilDecomp
}

// ClassUtil is busy-seconds attributed to each traffic class over a group
// of links.
type ClassUtil struct {
	IPC       float64
	ISCSI     float64
	Client    float64
	FTP       float64
	Heartbeat float64
	Other     float64
}

// Sum returns the total attributed busy-seconds.
func (u ClassUtil) Sum() float64 {
	return u.IPC + u.ISCSI + u.Client + u.FTP + u.Heartbeat + u.Other
}

// add accumulates another group of links into this one.
func (u ClassUtil) add(v ClassUtil) ClassUtil {
	u.IPC += v.IPC
	u.ISCSI += v.ISCSI
	u.Client += v.Client
	u.FTP += v.FTP
	u.Heartbeat += v.Heartbeat
	u.Other += v.Other
	return u
}

// UtilDecomp decomposes the fabric's busy time by traffic class and reports
// the component utilization scalars of a telemetered run. Busy-seconds are
// cumulative from t=0 (telemetry, like recovery, is not reset at the warmup
// boundary: utilization timelines must show the whole run).
type UtilDecomp struct {
	Enabled    bool
	ElapsedSec float64 // simulated seconds covered (warmup + measure)

	// Per-class attributed busy-seconds by link group, and each group's
	// total busy time from the links' own counters. By construction each
	// group's ClassUtil.Sum() equals its *BusySec exactly; AttribMismatch
	// counts links where the integer identity failed (always 0).
	InterLata        ClassUtil
	NodeLinks        ClassUtil
	ClientLink       ClassUtil
	InterLataBusySec float64
	NodeLinksBusySec float64
	ClientBusySec    float64
	AttribMismatch   int

	// Component utilization scalars, summed over nodes/spindles.
	CPUThreadSec   float64
	CPUIrqSec      float64
	DiskBusySec    float64
	LogDiskBusySec float64
	GCSCtlMsgs     uint64
	GCSDataMsgs    uint64
	LockWaitSec    float64
}

// LatencyBreakdown decomposes the sampled transactions' client-observed
// response time into per-phase mean self times (scaled ms). By construction
// CPUMs+LockMs+GCSMs+DiskMs+OtherMs is mean server residency and FabricMs is
// the client-observed remainder (wire, queueing, protocol processing outside
// the worker), so the six phases sum to TotalMs exactly.
type LatencyBreakdown struct {
	Sampled uint64 // spans finished inside the measurement window

	TotalMs  float64
	CPUMs    float64
	LockMs   float64
	GCSMs    float64
	DiskMs   float64
	FabricMs float64
	OtherMs  float64

	TotalP95Ms float64
	TotalP99Ms float64

	// Peak transmit-queue occupancy sampled across NIC egress queues and
	// router ports (zero unless the collector retains events).
	PeakQueueBytes int
	PeakQueuePkts  int
}

// Sum returns the six phase means added up (equals TotalMs up to float
// rounding; the lat-decomp experiment asserts this).
func (b LatencyBreakdown) Sum() float64 {
	return b.CPUMs + b.LockMs + b.GCSMs + b.DiskMs + b.FabricMs + b.OtherMs
}

// TimelinePoint is one bucket of the throughput timeline.
type TimelinePoint struct {
	T       sim.Time // bucket end
	TxnRate float64  // commits/s (all types) during the bucket
}

// Fingerprint hashes every reported number (timeline included) into one
// value: two runs with the same seed and schedule must produce the same
// fingerprint — the determinism regression the fault subsystem is held to.
func (m Metrics) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", m)
	return h.Sum64()
}

// FingerprintSansTrace hashes the metrics with the trace-derived breakdown
// zeroed out. The invariant every traced run is held to is
//
//	traced.FingerprintSansTrace() == untraced.Fingerprint()
//
// — tracing observes the trajectory without perturbing it. The response-time
// percentiles stay in the hash: they are always-on and must match too.
func (m Metrics) FingerprintSansTrace() uint64 {
	m.Breakdown = LatencyBreakdown{}
	return m.Fingerprint()
}

// FingerprintSansTelemetry hashes the metrics with the telemetry-derived
// utilization decomposition zeroed out. The invariant every telemetered run
// is held to is
//
//	telemetered.FingerprintSansTelemetry() == plain.Fingerprint()
//
// — telemetry observes the trajectory without perturbing it.
func (m Metrics) FingerprintSansTelemetry() uint64 {
	m.UtilDecomp = UtilDecomp{}
	return m.Fingerprint()
}

// collect gathers metrics at the end of the measurement window.
func (c *Cluster) collect() Metrics {
	p := c.P
	m := Metrics{Nodes: p.Nodes, Affinity: p.Affinity}
	meas := p.Measure.Seconds()

	var totalCommits uint64
	for ty, n := range c.commits {
		m.Commits[ty] = n
		totalCommits += n
	}
	m.TpmC = float64(c.commits[tpcc.TxnNewOrder]) / meas * 60
	m.TotalTxnRate = float64(totalCommits) / meas
	m.Rollbacks, m.Retries, m.Failures = c.rollbacks, c.retries, c.failures

	if totalCommits == 0 {
		totalCommits = 1 // avoid dividing by zero in a dead run
	}
	var ctl, data, waits, fails, diskReads uint64
	var dataBytes uint64
	var waitSum float64
	var waitN uint64
	var threads, ctx, cpi, util, hits float64
	now := c.Sim.Now()
	for _, n := range c.nodes {
		st := n.dbn.GCS.Stats
		ctl += st.CtlMsgsSent
		data += st.DataMsgsSent
		dataBytes += st.DataBytes
		waits += st.LockWaits
		fails += st.LockFails
		waitSum += st.LockWaitTime.Sum()
		waitN += st.LockWaitTime.N()
		diskReads += st.BlockDiskReads
		threads += n.cpu.ActiveThreads(now)
		ctx += n.cpu.MeanCtxSwitchCycles()
		cpi += n.cpu.CPI()
		util += n.cpu.Utilization()
		hits += n.dbn.Cache.HitRatio()
	}
	nn := float64(len(c.nodes))
	m.CtlMsgsPerTxn = float64(ctl) / float64(totalCommits)
	m.DataMsgsPerTxn = float64(data) / float64(totalCommits)
	m.IPCDataBytes = dataBytes
	m.LockWaitsPerTxn = float64(waits) / float64(totalCommits)
	m.LockFailsPerTxn = float64(fails) / float64(totalCommits)
	if waitN > 0 {
		m.LockWaitMs = waitSum / float64(waitN) * 1000
	}
	m.DiskReadsPerTxn = float64(diskReads) / float64(totalCommits)
	m.ActiveThreads = threads / nn
	m.CtxSwitchK = ctx / nn / 1000
	m.CPI = cpi / nn
	m.CPUUtil = util / nn
	m.BufferHitRatio = hits / nn

	if c.respTally.n > 0 {
		mean := c.respTally.sum / sim.Time(c.respTally.n)
		m.RespTimeMs = mean.Millis()
		m.RespTimeP50Ms = c.respHist.Quantile(0.50)
		m.RespTimeP95Ms = c.respHist.Quantile(0.95)
		m.RespTimeP99Ms = c.respHist.Quantile(0.99)
	}
	be := c.Topo.Net.DelayByClass[netsim.ClassBestEffort]
	m.MsgDelayMs = be.Mean().Millis()
	m.InterLataUtil = c.Topo.InterLataUtilization()
	m.NetDrops = c.Topo.Net.Drops
	m.NetMarks = c.Topo.Net.Marks
	m.Retransmits = c.Dom.Retransmits
	m.ConnResets = c.Dom.Resets

	if c.ftp != nil {
		m.FTPDeliveredMbps = float64(c.ftp.gen.BytesDelivered) * 8 / meas / 1e6
	}

	m.FaultDrops = c.Topo.Net.FaultDrops
	m.CorruptDrops = c.Topo.Net.CorruptDrops
	for _, n := range c.nodes {
		st := n.dbn.GCS.Stats
		m.FetchTimeouts += st.FetchTimeouts
		m.FetchFails += st.FetchFails
		m.LogFallbacks += st.LogFallbacks
		m.IscsiTimeouts += n.initiator.Timeouts
		m.IscsiFailed += n.initiator.Failed
		m.DiskRetries += n.dbn.Pager.DiskRetries
		m.DiskFailures += n.dbn.Pager.DiskFailures
		for _, d := range n.drives {
			m.DiskErrors += d.FaultErrors
		}
	}
	if c.san != nil {
		for _, d := range c.san.Drives {
			m.DiskErrors += d.FaultErrors
		}
	}
	if r := c.rec; r != nil {
		m.Crashes = r.crashes
		m.Restarts = r.restarts
		m.NodesRecovered = r.recovered
		m.NodesReadmitted = r.readmitted
		if r.crashes > 0 {
			m.DetectMs = (r.detectSum / sim.Time(r.crashes)).Millis()
		}
		if r.recovered > 0 {
			m.RecoveryTimeMs = (r.recTimeSum / sim.Time(r.recovered)).Millis()
			m.UnavailabilityMs = (r.unavailSum / sim.Time(r.recovered)).Millis()
		}
		if r.readmitted > 0 {
			m.ReadmitMs = (r.readmitSum / sim.Time(r.readmitted)).Millis()
		}
		for _, n := range c.nodes {
			m.FailoverRejects += n.dbn.GCS.Stats.GateRejects
		}
		m.ClientRetries = r.clientRetries
		m.RemasterHoldings = r.remasterHoldings
		m.ReplayBytes = r.replayBytes
		m.ReplayBlocks = r.replayBlocks
		m.WarmupFetches = r.warmupFetches
	}
	m.Timeline = c.timeline

	if c.tr != nil {
		b := &m.Breakdown
		b.Sampled = c.tr.Sampled()
		b.TotalMs = c.tr.TotalMeanMs()
		b.CPUMs = c.tr.PhaseMeanMs(trace.PhaseCPU)
		b.LockMs = c.tr.PhaseMeanMs(trace.PhaseLock)
		b.GCSMs = c.tr.PhaseMeanMs(trace.PhaseGCS)
		b.DiskMs = c.tr.PhaseMeanMs(trace.PhaseDisk)
		b.FabricMs = c.tr.PhaseMeanMs(trace.PhaseFabric)
		b.OtherMs = c.tr.PhaseMeanMs(trace.PhaseOther)
		b.TotalP95Ms = c.tr.TotalQuantileMs(0.95)
		b.TotalP99Ms = c.tr.TotalQuantileMs(0.99)
		b.PeakQueueBytes, b.PeakQueuePkts = c.tr.PeakGauge()
	}
	if c.telReg != nil {
		c.collectTelemetry(&m)
	}
	return m
}

// String renders the headline numbers for humans.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d affinity=%.2f tpmC(scaled)=%.1f txn/s=%.2f\n",
		m.Nodes, m.Affinity, m.TpmC, m.TotalTxnRate)
	fmt.Fprintf(&b, "  IPC ctl/txn=%.1f data/txn=%.2f lockWaits/txn=%.3f lockWait=%.2fms lockFails/txn=%.4f\n",
		m.CtlMsgsPerTxn, m.DataMsgsPerTxn, m.LockWaitsPerTxn, m.LockWaitMs, m.LockFailsPerTxn)
	fmt.Fprintf(&b, "  threads=%.1f ctx=%.1fK CPI=%.2f cpu=%.2f bufHit=%.3f disk/txn=%.2f resp=%.1fms\n",
		m.ActiveThreads, m.CtxSwitchK, m.CPI, m.CPUUtil, m.BufferHitRatio, m.DiskReadsPerTxn, m.RespTimeMs)
	fmt.Fprintf(&b, "  resp: p50=%.1fms p95=%.1fms p99=%.1fms\n",
		m.RespTimeP50Ms, m.RespTimeP95Ms, m.RespTimeP99Ms)
	if bd := m.Breakdown; bd.Sampled > 0 {
		fmt.Fprintf(&b, "  span(n=%d): total=%.1fms cpu=%.1f lock=%.1f gcs=%.1f disk=%.1f fabric=%.1f other=%.1f p95=%.1f p99=%.1f\n",
			bd.Sampled, bd.TotalMs, bd.CPUMs, bd.LockMs, bd.GCSMs, bd.DiskMs, bd.FabricMs, bd.OtherMs,
			bd.TotalP95Ms, bd.TotalP99Ms)
	}
	fmt.Fprintf(&b, "  net: delay=%.3fms interLataUtil=%.2f drops=%d marks=%d retx=%d resets=%d ftp=%.1fMbps\n",
		m.MsgDelayMs, m.InterLataUtil, m.NetDrops, m.NetMarks, m.Retransmits, m.ConnResets, m.FTPDeliveredMbps)
	if m.FaultDrops+m.CorruptDrops+m.FetchTimeouts+m.FetchFails+m.IscsiTimeouts+m.DiskErrors > 0 {
		fmt.Fprintf(&b, "  faults: drops=%d corrupt=%d fetchTO=%d fetchFail=%d logFB=%d iscsiTO=%d iscsiFail=%d diskErr=%d diskRetry=%d diskFail=%d\n",
			m.FaultDrops, m.CorruptDrops, m.FetchTimeouts, m.FetchFails, m.LogFallbacks,
			m.IscsiTimeouts, m.IscsiFailed, m.DiskErrors, m.DiskRetries, m.DiskFailures)
	}
	if u := m.UtilDecomp; u.Enabled {
		fmt.Fprintf(&b, "  util: interlata[ipc=%.1fs iscsi=%.1fs client=%.1fs ftp=%.1fs hb=%.1fs other=%.1fs] cpu=%.1fs irq=%.1fs disk=%.1fs log=%.1fs mismatch=%d\n",
			u.InterLata.IPC, u.InterLata.ISCSI, u.InterLata.Client, u.InterLata.FTP,
			u.InterLata.Heartbeat, u.InterLata.Other,
			u.CPUThreadSec, u.CPUIrqSec, u.DiskBusySec, u.LogDiskBusySec, u.AttribMismatch)
	}
	if m.Crashes > 0 {
		fmt.Fprintf(&b, "  recovery: crashes=%d restarts=%d recovered=%d readmitted=%d detect=%.1fms recovery=%.1fms unavail=%.1fms readmit=%.1fms\n",
			m.Crashes, m.Restarts, m.NodesRecovered, m.NodesReadmitted,
			m.DetectMs, m.RecoveryTimeMs, m.UnavailabilityMs, m.ReadmitMs)
		fmt.Fprintf(&b, "  recovery: gateRejects=%d clientRetries=%d remaster=%d replay=%dB/%dblk warmup=%d\n",
			m.FailoverRejects, m.ClientRetries, m.RemasterHoldings,
			m.ReplayBytes, m.ReplayBlocks, m.WarmupFetches)
	}
	return b.String()
}
