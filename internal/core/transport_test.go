package core

import (
	"testing"

	"dclue/internal/db"
	"dclue/internal/sim"
	"dclue/internal/tpcc"
)

// TestIPCTransportRoundTrip drives a GCS control message end-to-end over
// the real TCP mesh: node 1 requests a lock mastered at node 0 and gets the
// grant back.
func TestIPCTransportRoundTrip(t *testing.T) {
	p := quickParams(2)
	c := mustNew(t, p)
	var granted, waited bool
	done := false
	c.Sim.At(10*sim.Second, func() { // mesh established well before this
		c.Sim.Spawn("locker", func(pr *sim.Proc) {
			// A resource on a block homed at node 0, requested from node 1.
			tbl := c.Eng.Tables[tpcc.TWarehouse]
			row, ok := tbl.Lookup(0) // warehouse 0 lives on node 0
			if !ok {
				t.Error("warehouse 0 missing")
				return
			}
			res := tbl.ResourceOf(row)
			txn := db.TxnRef{Node: 1, ID: 999999}
			granted, waited = c.nodes[1].dbn.GCS.AcquireLock(pr, txn, res, db.LockX, true)
			c.nodes[1].dbn.GCS.ReleaseLocks(txn, []db.ResourceID{res})
			done = true
		})
	})
	c.Sim.Run(30 * sim.Second)
	c.Sim.Shutdown()
	if !done {
		t.Fatal("remote lock request never completed")
	}
	if !granted {
		t.Fatalf("remote lock not granted (waited=%v)", waited)
	}
}

// TestIPCSelfSendShortCircuits: messages addressed to the sender (central
// logging on the log node itself) bypass the fabric.
func TestIPCSelfSendShortCircuits(t *testing.T) {
	p := quickParams(1)
	p.CentralLogging = true // node 0 logs at node 0
	c := mustNew(t, p)
	done := false
	c.Sim.At(5*sim.Second, func() {
		c.Sim.Spawn("w", func(pr *sim.Proc) {
			c.nodes[0].dbn.GCS.WriteLog(pr, 1024)
			done = true
		})
	})
	c.Sim.Run(20 * sim.Second)
	c.Sim.Shutdown()
	if !done {
		t.Fatal("self-addressed log write never completed")
	}
}

// TestWorkerRetriesRollbackNotRetried: the spec's 1% rollback terminates a
// request (no retry); lock failures retry with delay. Exercised indirectly:
// rollbacks must stay ~1% of new-orders even with retries enabled.
func TestWorkerRollbackRate(t *testing.T) {
	p := quickParams(1)
	c := mustNew(t, p)
	m := runOK(t, c)
	no := float64(m.Commits[tpcc.TxnNewOrder])
	if no < 50 {
		t.Skip("too few new-orders for a rate check")
	}
	rate := float64(m.Rollbacks) / no
	if rate > 0.06 {
		t.Fatalf("rollback rate %.3f, want ~0.01", rate)
	}
}
