package core

import (
	"fmt"

	"dclue/internal/db"
	"dclue/internal/iscsi"
	"dclue/internal/sim"
	"dclue/internal/tcp"
	"dclue/internal/tpcc"
	"dclue/internal/trace"
)

// clientReq frames a terminal's transaction request on the wire. span is
// trace metadata riding along (nil unless the terminal sampled this
// transaction); it does not contribute to the wire size.
type clientReq struct {
	id   uint64
	req  tpcc.Request
	span *trace.Span
}

// clientResp frames the server's reply.
type clientResp struct {
	id uint64
	ok bool
}

// acceptClient serves one client connection on a server node: each request
// message spawns a worker thread that executes the transaction (with the
// paper's release-and-delayed-retry loop on lock failure) and replies.
func (c *Cluster) acceptClient(self int, conn *tcp.Conn) {
	n := c.nodes[self]
	conn.SetOnMessage(func(m tcp.Message) {
		req := m.Meta.(clientReq)
		c.spawnOn(self, fmt.Sprintf("worker-%d", self), func(p *sim.Proc) {
			if req.span != nil {
				req.span.BeginServer(p.Now())
				p.SetSpan(req.span)
			}
			ok := c.executeWithRetry(p, n, req.req)
			if req.span != nil {
				p.SetSpan(nil)
				req.span.EndServer(p.Now())
			}
			if conn.Established() {
				conn.Enqueue(clientResp{id: req.id, ok: ok}, tpcc.RespBytes(req.req.Type))
			}
		})
	})
}

// retryBackoff is the delay before re-executing a failed attempt. On a
// fault-free fabric it is the paper's constant RetryDelay; with recovery
// armed it doubles per attempt up to RetryDelayMax, so retries against a
// partition inside a fence-to-reopen window spread out instead of hammering
// the gate in lockstep.
func (c *Cluster) retryBackoff(attempt int) sim.Time {
	d := c.P.RetryDelay
	if c.rec == nil {
		return d
	}
	maxD := c.P.retryDelayMax()
	for i := 0; i < attempt && d < maxD; i++ {
		d *= 2
	}
	if d > maxD {
		d = maxD
	}
	return d
}

// executeWithRetry runs one transaction to completion: commits count toward
// throughput; lock failures abort, wait the retry delay, and re-execute
// (§2.3); the spec's intentional rollbacks are terminal. Fault-induced
// aborts — a block fetch that kept timing out, a disk read that kept
// failing — take the same release-and-delayed-retry path as lock failures:
// the transaction's effects were rolled back, and the fault window may have
// passed by the time the retry runs.
func (c *Cluster) executeWithRetry(p *sim.Proc, n *node, req tpcc.Request) bool {
	for attempt := 0; ; attempt++ {
		err := c.Eng.Execute(p, n.dbn, req, n.workerRnd)
		switch err {
		case nil:
			c.allCommits++
			if c.measuring {
				c.commits[req.Type]++
			}
			return true
		case tpcc.ErrRollback:
			c.allCommits++
			if c.measuring {
				c.rollbacks++
			}
			return true // executed per spec; not an error
		case db.ErrLockFailed, db.ErrFetchFailed, db.ErrDiskFailed, iscsi.ErrIO:
			if attempt >= c.P.MaxTxnRetries {
				if c.measuring {
					c.failures++
				}
				return false
			}
			if c.measuring {
				c.retries++
			}
			// Charge the backoff to the phase whose failure caused it.
			ph := trace.PhaseLock
			switch err {
			case db.ErrFetchFailed:
				ph = trace.PhaseGCS
			case db.ErrDiskFailed, iscsi.ErrIO:
				ph = trace.PhaseDisk
			}
			trace.Enter(p, ph)
			p.Sleep(c.retryBackoff(attempt))
			trace.Exit(p)
		default:
			if c.measuring {
				c.failures++
			}
			return false
		}
	}
}
