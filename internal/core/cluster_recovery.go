package core

import (
	"fmt"

	"dclue/internal/db"
	"dclue/internal/disk"
	"dclue/internal/faults"
	"dclue/internal/iscsi"
	"dclue/internal/netsim"
	"dclue/internal/platform"
	"dclue/internal/recovery"
	"dclue/internal/sim"
	"dclue/internal/tcp"
	"dclue/internal/telemetry"
)

// This file is the cluster's crash-recovery coordinator: it wires the
// membership service (internal/recovery) and the GCS's node-local fencing
// and remastering surgery (internal/db) into the full protocol — detect,
// fence, remaster, replay, reopen, and later re-admit. It exists only when
// the fault schedule contains crash/restart events; fault-free runs carry
// none of its calendar events and stay event-for-event identical to builds
// without it.
//
// Protocol summary. When a node's heartbeats go silent past the lease, the
// lowest-id survivor (the deterministic coordinator) drives:
//
//	FENCE     every survivor expels the dead node from directory and lock
//	          state, aborts its connections, and closes a gate that fails
//	          requests for the dead partition fast instead of timing out.
//	REMASTER  the coordinator becomes surrogate master for the dead
//	          partition and rebuilds its directory from survivors' reported
//	          holdings.
//	REPLAY    the buddy node (next live id — its dual-ported enclosure
//	          reaches the dead node's disks) scans the redo log written
//	          since the last checkpoint; the coordinator then re-applies the
//	          dirty blocks the crash lost, reading and writing through the
//	          failover I/O route.
//	OPEN      survivors lift their gates; the partition serves again under
//	          surrogate mastering and failover I/O.
//
// A restart boots a fresh engine on the surviving hardware (cold cache, new
// CPU), re-dials the mesh, and asks the coordinator to re-admit it: the
// surrogate hands the directory back, survivors clear fences and failover
// routes, and the joiner warms its cache before taking load.

// nodeCtl adapts one cluster node to the fault injector's crash/restart
// control.
type nodeCtl struct {
	c   *Cluster
	idx int
}

func (nc *nodeCtl) Crash()   { nc.c.crashNode(nc.idx) }
func (nc *nodeCtl) Restart() { nc.c.restartNode(nc.idx) }

var _ faults.NodeController = (*nodeCtl)(nil)

// recState is the cluster-wide recovery bookkeeping. Its counters are
// cumulative from t=0 and are deliberately not reset at the warmup boundary:
// a recovery straddling the boundary must still be reported whole.
type recState struct {
	c *Cluster

	// svc is each node's membership service; nil while that node is down.
	svc []*recovery.Service

	// closed[observer][home] is observer's gate: true fails observer's
	// requests for blocks homed at home fast (fence-to-reopen window).
	closed [][]bool

	down       []bool // crashed and not yet re-admitted
	recovering []bool // fence-to-reopen in progress

	crashAt   []sim.Time
	suspectAt []sim.Time
	restartAt []sim.Time

	// Crash ground truth, captured at the instant of death: the dirty owned
	// blocks and unreplayed redo bytes a real log scan would discover.
	snapDirty [][]db.BlockID
	snapRedo  []int64

	// waiters collects multi-message recovery replies (acks, holdings
	// batches, replay chunks). Unlike the GCS's request table, waking a
	// waiter does not consume it — streams send many messages to one id.
	nextWait uint64
	waiters  map[uint64]*sim.Mailbox

	// Metrics.
	crashes, restarts     uint64
	recovered, readmitted uint64
	detectSum             sim.Time // crash -> coordinator suspicion
	recTimeSum            sim.Time // suspicion -> partition reopened
	unavailSum            sim.Time // crash -> partition reopened
	readmitSum            sim.Time // restart -> re-admission complete
	clientRetries         uint64   // terminal dials redirected off a dead node
	remasterHoldings      uint64
	replayBytes           int64
	replayBlocks          uint64
	warmupFetches         uint64
}

// newRecState arms the recovery subsystem (fault schedule contains
// crash/restart). Per-node hooks attach as each engine is built.
func newRecState(c *Cluster) *recState {
	n := c.P.Nodes
	r := &recState{
		c:          c,
		svc:        make([]*recovery.Service, n),
		closed:     make([][]bool, n),
		down:       make([]bool, n),
		recovering: make([]bool, n),
		crashAt:    make([]sim.Time, n),
		suspectAt:  make([]sim.Time, n),
		restartAt:  make([]sim.Time, n),
		snapDirty:  make([][]db.BlockID, n),
		snapRedo:   make([]int64, n),
		waiters:    make(map[uint64]*sim.Mailbox),
	}
	for i := range r.closed {
		r.closed[i] = make([]bool, n)
	}
	return r
}

// wireNode installs the per-node recovery hooks on a freshly attached
// engine (initial build and restart rebuild).
func (r *recState) wireNode(n *node) {
	i := n.idx
	n.dbn.GCS.Gate = func(home int) bool { return !r.closed[i][home] }
	n.dbn.GCS.OnClusterMsg = func(from int, m db.Msg) { r.handle(i, from, m) }
}

// observeHeartbeat feeds an arriving heartbeat to the receiver's membership
// service.
func (r *recState) observeHeartbeat(self, from int) {
	if sv := r.svc[self]; sv != nil {
		sv.Observe(from)
	}
}

// startMembership boots node i's membership service (cluster setup, and
// again after the node rejoins).
func (r *recState) startMembership(i int) {
	c := r.c
	sv := recovery.NewService(c.Sim, i, c.P.Nodes, c.P.heartbeat(), c.P.suspectAfter(),
		recovery.Hooks{
			Spawn: func(name string, fn func(*sim.Proc)) *sim.Proc {
				return c.spawnOn(i, fmt.Sprintf("%s-%d", name, i), fn)
			},
			// Resolved at send time: the transport is rebuilt on restart.
			SendHeartbeat: func(to int) { c.nodes[i].transport.sendHeartbeat(to) },
			OnSuspect:     func(peer int, silent sim.Time) { r.onSuspect(i, peer) },
		})
	for j := 0; j < c.P.Nodes; j++ {
		if r.down[j] {
			sv.SetState(j, recovery.StateDown)
		}
	}
	r.svc[i] = sv
	sv.Start()
}

// startCheckpoints runs node i's dirty-page checkpoint loop, which bounds
// how much redo log a crash forces recovery to replay.
func (r *recState) startCheckpoints(i int) {
	c := r.c
	interval := c.P.checkpointInterval()
	c.spawnOn(i, fmt.Sprintf("checkpoint-%d", i), func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			c.nodes[i].dbn.GCS.Checkpoint()
		}
	})
}

// crashNode kills node i: links drop, every process dies, connections are
// abandoned (a dead host sends no RSTs), volatile state is lost. Kernel
// context (fault-activation event).
func (c *Cluster) crashNode(i int) {
	r := c.rec
	if r == nil || r.down[i] {
		return
	}
	n := c.nodes[i]
	r.down[i] = true
	r.crashAt[i] = c.Sim.Now()
	r.crashes++
	// Ground truth of what recovery must reconstruct.
	r.snapDirty[i], r.snapRedo[i] = n.dbn.CrashSnapshot()

	up, down := c.Topo.NodeLinks(i)
	up.SetDown(true)
	down.SetDown(true)

	// Tear down the CPU's continuation-style interrupt channels (queued and
	// in-flight protocol work dies with the node), then kill every process
	// the node owns, oldest first (spawn order) so teardown is deterministic.
	n.cpu.Stop()
	var procs []*sim.Proc
	procs = append(procs, n.dbn.Procs()...)
	procs = append(procs, n.cpu.Procs()...)
	procs = append(procs, n.tracked...)
	live := procs[:0]
	for _, p := range procs {
		if !p.Done() {
			live = append(live, p)
		}
	}
	sortProcsBySeq(live)
	for _, p := range live {
		c.Sim.Kill(p)
	}
	n.tracked = nil

	// Local TCP teardown only: peers discover the death by silence.
	n.stack.AbortConns()
	r.svc[i] = nil
}

// sortProcsBySeq orders processes by spawn sequence.
func sortProcsBySeq(ps []*sim.Proc) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Seq() < ps[j-1].Seq(); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// restartNode boots a fresh engine on node i's surviving hardware (NIC,
// drives, log disk persist; CPU state and caches are lost) and starts the
// rejoin protocol. Kernel context (fault-activation event).
func (c *Cluster) restartNode(i int) {
	r := c.rec
	if r == nil || !r.down[i] {
		return
	}
	n := c.nodes[i]
	r.restartAt[i] = c.Sim.Now()
	r.restarts++

	up, down := c.Topo.NodeLinks(i)
	up.SetDown(false)
	down.SetDown(false)

	n.cpu = platform.NewCPU(c.Sim, platform.DefaultConfig(c.P.Scale))
	n.stack.SetProcessor(n.cpu)
	if c.inj != nil {
		c.inj.RegisterCPU(fmt.Sprintf("node:%d", i), n.cpu)
	}
	c.attachEngine(n, c.frames, c.opCosts)

	c.spawnOn(i, fmt.Sprintf("rejoin-%d", i), func(p *sim.Proc) { r.rejoin(p, i) })
}

// onSuspect reacts to a membership suspicion on node self. Every survivor
// marks a genuinely-crashed peer Down; only the coordinator drives recovery,
// from a spawned process (suspicions fire inside the monitor process, where
// blocking protocol work must not happen).
func (r *recState) onSuspect(self, peer int) {
	c := r.c
	if !r.down[peer] {
		// False suspicion — a slow or lossy fabric, not a crash. The next
		// heartbeat revives the peer via Observe.
		return
	}
	sv := r.svc[self]
	if sv == nil {
		return
	}
	sv.SetState(peer, recovery.StateDown)
	if sv.Coordinator() != self || r.recovering[peer] {
		return
	}
	r.recovering[peer] = true
	r.suspectAt[peer] = c.Sim.Now()
	r.detectSum += c.Sim.Now() - r.crashAt[peer]
	c.spawnOn(self, fmt.Sprintf("recover-%d", peer), func(p *sim.Proc) {
		r.recover(p, self, peer)
	})
}

// recTimeout bounds each wait for recovery-protocol replies: generous
// against fabric congestion, short enough that a second crash mid-recovery
// degrades to recovering with whoever still answers.
func recTimeout(p Params) sim.Time {
	return sim.Time(2 * float64(sim.Second) * p.Scale)
}

// recover drives the fence -> remaster -> replay -> open sequence on the
// coordinator.
func (r *recState) recover(p *sim.Proc, self, dead int) {
	c := r.c
	g := c.nodes[self].dbn.GCS
	tFence := p.Now()

	// FENCE: local first, then every survivor, gathering acks.
	r.fenceLocal(self, dead)
	id, mb := r.newWait()
	want := 0
	for j := range c.nodes {
		if j == self || r.down[j] {
			continue
		}
		g.SendCtl(j, db.MsgFence{ReqID: id, Dead: dead})
		want++
	}
	for got := 0; got < want; {
		v, ok := mb.RecvTimeout(p, recTimeout(c.P))
		if !ok {
			break
		}
		if _, isAck := v.(db.MsgFenceAck); isAck {
			got++
		}
	}
	r.dropWait(id)

	tRemaster := p.Now()

	// REMASTER: become surrogate master and rebuild the dead partition's
	// directory from survivors' holdings (the catalog is shared state, so
	// every node's Master() now routes here).
	c.Cat.SetSurrogate(dead, self)
	for _, h := range g.HoldingsHomedAt(dead) {
		g.RegisterHolding(self, h)
		r.remasterHoldings++
	}
	id, mb = r.newWait()
	want = 0
	for j := range c.nodes {
		if j == self || r.down[j] {
			continue
		}
		g.SendCtl(j, db.MsgRemasterReq{ReqID: id, Dead: dead})
		want++
	}
	for done := 0; done < want; {
		v, ok := mb.RecvTimeout(p, recTimeout(c.P))
		if !ok {
			break
		}
		switch msg := v.(type) {
		case db.MsgRemaster:
			for _, h := range msg.Holdings {
				g.RegisterHolding(msg.From, h)
				r.remasterHoldings++
			}
		case db.MsgRemasterDone:
			done++
		}
	}
	r.dropWait(id)

	tReplay := p.Now()
	r.replay(p, self, dead)

	tOpen := p.Now()
	r.openLocal(self, dead)
	for j := range c.nodes {
		if j == self || r.down[j] {
			continue
		}
		g.SendCtl(j, db.MsgRecoveryOpen{Dead: dead})
	}
	now := p.Now()
	r.recovered++
	r.recTimeSum += now - r.suspectAt[dead]
	r.unavailSum += now - r.crashAt[dead]
	r.recovering[dead] = false
	if reg := c.telReg; reg != nil {
		comp := fmt.Sprintf("recover-%d", dead)
		reg.RecordPhase(comp, "fence", tFence, tRemaster)
		reg.RecordPhase(comp, "remaster", tRemaster, tReplay)
		reg.RecordPhase(comp, "replay", tReplay, tOpen)
		reg.RecordPhase(comp, "open", tOpen, now)
	}
}

// replay performs the log scan and dirty-block reapplication. The scan runs
// on the buddy (whose enclosure reaches the dead node's log disk); the
// block work runs here through the failover I/O route, spread over a small
// worker pool the way a real recovery parallelizes redo.
func (r *recState) replay(p *sim.Proc, self, dead int) {
	c := r.c
	g := c.nodes[self].dbn.GCS
	redo := r.snapRedo[dead]
	buddy := r.buddyOf(dead)
	if redo > 0 {
		if buddy == self {
			// Direct dual-ported access to the log device.
			c.nodes[dead].logDisk.Read(p, int(redo))
		} else {
			id, mb := r.newWait()
			g.SendCtl(buddy, db.MsgReplayReq{ReqID: id, Dead: dead, Bytes: redo})
			for {
				v, ok := mb.RecvTimeout(p, recTimeout(c.P))
				if !ok {
					break
				}
				if ch, isChunk := v.(db.MsgReplayChunk); isChunk && ch.Last {
					break
				}
			}
			r.dropWait(id)
		}
		r.replayBytes += redo
	}

	dirty := r.snapDirty[dead]
	if len(dirty) == 0 {
		return
	}
	workers := 8
	if len(dirty) < workers {
		workers = len(dirty)
	}
	joined := sim.NewMailbox(c.Sim)
	for w := 0; w < workers; w++ {
		w := w
		c.spawnOn(self, fmt.Sprintf("replay-%d-%d", dead, w), func(wp *sim.Proc) {
			n := c.nodes[self]
			for bi := w; bi < len(dirty); bi += workers {
				blk := dirty[bi]
				if n.dbn.Pager.ReadBlock(wp, blk, db.BlockBytes) != nil {
					continue
				}
				// Apply the logged changes to the block image.
				n.cpu.Execute(wp, c.opCosts.RowWrite*4)
				n.dbn.Pager.WriteBack(blk, db.BlockBytes)
				r.replayBlocks++
			}
			joined.Send(w)
		})
	}
	for w := 0; w < workers; w++ {
		joined.Recv(p)
	}
}

// fenceLocal expels dead from node j's state: GCS surgery, connection
// abort, gate closed, failover I/O route installed. The buddy additionally
// exports the dead node's enclosure to the rest of the cluster.
func (r *recState) fenceLocal(j, dead int) {
	if r.closed[j][dead] {
		return
	}
	c := r.c
	r.closed[j][dead] = true
	n := c.nodes[j]
	n.dbn.GCS.FenceNode(dead)
	n.transport.abortPeer(dead)
	buddy := r.buddyOf(dead)
	if buddy == j {
		deadDrives := c.nodes[dead].drives
		n.dbn.Pager.SetFailover(dead, buddy, deadDrives)
		n.target.Export(dead, func(table int) *disk.Drive {
			return deadDrives[table%len(deadDrives)]
		})
	} else {
		n.dbn.Pager.SetFailover(dead, buddy, nil)
	}
	if sv := r.svc[j]; sv != nil {
		sv.SetState(dead, recovery.StateDown)
	}
}

// openLocal lifts node j's gate for the dead partition (surrogate serving).
func (r *recState) openLocal(j, dead int) {
	r.closed[j][dead] = false
}

// clearFenceLocal undoes fenceLocal after the node rejoined.
func (r *recState) clearFenceLocal(j, rejoined int) {
	c := r.c
	r.closed[j][rejoined] = false
	n := c.nodes[j]
	n.dbn.Pager.ClearFailover(rejoined)
	n.target.Unexport(rejoined)
	if sv := r.svc[j]; sv != nil {
		sv.SetState(rejoined, recovery.StateLive)
	}
}

// handle routes recovery-protocol messages arriving at node self's GCS.
// Kernel context (post-dispatch).
func (r *recState) handle(self, from int, m db.Msg) {
	c := r.c
	g := c.nodes[self].dbn.GCS
	switch msg := m.(type) {
	case db.MsgFence:
		r.fenceLocal(self, msg.Dead)
		g.SendCtl(from, db.MsgFenceAck{ReqID: msg.ReqID, From: self})

	case db.MsgRemasterReq:
		hs := g.HoldingsHomedAt(msg.Dead)
		const batch = 256
		for off := 0; off < len(hs); off += batch {
			end := off + batch
			if end > len(hs) {
				end = len(hs)
			}
			b := hs[off:end]
			g.SendData(from, db.MsgRemaster{ReqID: msg.ReqID, From: self, Holdings: b}, len(b)*16)
		}
		g.SendCtl(from, db.MsgRemasterDone{ReqID: msg.ReqID, From: self})

	case db.MsgReplayReq:
		// Buddy side: scan the dead node's log off the dual-ported enclosure
		// and stream it back. Blocking disk reads need a process.
		dead, bytes, reqID := msg.Dead, msg.Bytes, msg.ReqID
		c.spawnOn(self, fmt.Sprintf("logscan-%d", dead), func(p *sim.Proc) {
			const chunk = 64 * 1024
			remaining := bytes
			for remaining > 0 {
				n := chunk
				if remaining < chunk {
					n = int(remaining)
				}
				c.nodes[dead].logDisk.Read(p, n)
				remaining -= int64(n)
				g.SendData(from, db.MsgReplayChunk{ReqID: reqID, Bytes: n, Last: remaining <= 0}, n)
			}
		})

	case db.MsgRecoveryOpen:
		r.openLocal(self, msg.Dead)

	case db.MsgJoinReq:
		node, reqID := msg.Node, msg.ReqID
		c.spawnOn(self, fmt.Sprintf("readmit-%d", node), func(p *sim.Proc) {
			r.readmit(p, self, node, reqID)
		})

	case db.MsgJoinDir:
		g.ImportDir(msg.Entries)

	case db.MsgJoinOK:
		if msg.ReqID != 0 {
			r.wakeWait(msg.ReqID, msg)
			return
		}
		// Survivor broadcast: the node rejoined.
		r.clearFenceLocal(self, msg.Node)

	case db.MsgFenceAck:
		r.wakeWait(msg.ReqID, msg)
	case db.MsgRemaster:
		r.wakeWait(msg.ReqID, msg)
	case db.MsgRemasterDone:
		r.wakeWait(msg.ReqID, msg)
	case db.MsgReplayChunk:
		r.wakeWait(msg.ReqID, msg)
	}
}

// readmit runs on the coordinator (surrogate): hand mastering back to the
// rejoined node, clear cluster-wide fences and failover routes, and confirm.
func (r *recState) readmit(p *sim.Proc, self, node int, reqID uint64) {
	c := r.c
	g := c.nodes[self].dbn.GCS

	// A join request can arrive while the fence-to-reopen of the same node
	// is still in flight (a very fast restart); let it finish first.
	for r.recovering[node] {
		p.Sleep(c.P.heartbeat())
	}

	entries := g.ExportDirHomedAt(node)
	const batch = 128
	for off := 0; off < len(entries); off += batch {
		end := off + batch
		if end > len(entries) {
			end = len(entries)
		}
		b := entries[off:end]
		g.SendData(node, db.MsgJoinDir{ReqID: reqID, Entries: b}, len(b)*32)
	}
	g.DropDirHomedAt(node)
	g.DropLocksHomedAt(node)
	c.Cat.ClearSurrogate(node)
	r.down[node] = false
	r.clearFenceLocal(self, node)
	for j := range c.nodes {
		if j == self || j == node || r.down[j] {
			continue
		}
		g.SendCtl(j, db.MsgJoinOK{ReqID: 0, Node: node})
	}
	g.SendCtl(node, db.MsgJoinOK{ReqID: reqID, Node: node})
	r.readmitted++
	r.readmitSum += p.Now() - r.restartAt[node]
	if reg := c.telReg; reg != nil {
		reg.RecordPhase(fmt.Sprintf("rejoin-%d", node), "readmit", r.restartAt[node], p.Now())
	}
}

// rejoin runs on a restarted node: re-dial the mesh, ask the coordinator
// for re-admission, import the handed-back directory, warm the cache, and
// resume membership and checkpointing.
func (r *recState) rejoin(p *sim.Proc, i int) {
	c := r.c
	opts := tcp.DialOptions{Class: netsim.ClassBestEffort, MaxRetx: 1000, TC: telemetry.ClassIPC}
	stoOpts := opts
	stoOpts.TC = telemetry.ClassISCSI
	for j := 0; j < c.P.Nodes; j++ {
		if j == i || r.down[j] {
			continue
		}
		ipc := tcp.Dial(p, c.nodes[i].stack, netsim.NodeAddr(j), PortIPC, opts)
		if ipc == nil {
			continue // peer died in the meantime; skip it
		}
		c.bindIPC(i, j, ipc)
		sto := tcp.Dial(p, c.nodes[i].stack, netsim.NodeAddr(j), iscsi.Port, stoOpts)
		if sto == nil {
			continue
		}
		c.bindISCSI(i, j, sto)
	}

	coord := -1
	for j := 0; j < c.P.Nodes; j++ {
		if j != i && !r.down[j] {
			coord = j
			break
		}
	}
	if coord >= 0 {
		g := c.nodes[i].dbn.GCS
		id, mb := r.newWait()
		g.SendCtl(coord, db.MsgJoinReq{ReqID: id, Node: i})
		for {
			v, ok := mb.RecvTimeout(p, recTimeout(c.P))
			if !ok {
				// Re-ask: the coordinator may still be mid-recovery.
				g.SendCtl(coord, db.MsgJoinReq{ReqID: id, Node: i})
				continue
			}
			if _, isOK := v.(db.MsgJoinOK); isOK {
				break
			}
		}
		r.dropWait(id)
	} else {
		// No survivors to join: serve immediately.
		r.down[i] = false
	}

	r.warmCache(p, i)
	r.startMembership(i)
	r.startCheckpoints(i)
}

// warmCache fetches the hottest blocks of the joiner's own partition — its
// index leaves — before the node takes full load, bounding the post-rejoin
// cache-miss storm the availability experiments measure.
func (r *recState) warmCache(p *sim.Proc, i int) {
	c := r.c
	const warmupCap = 512
	n := c.nodes[i]
	fetched := 0
	for _, t := range c.Eng.Tables {
		for b := int64(0); b < t.IndexLeafBlocks(); b++ {
			blk := t.IndexLeafBlock(b)
			if c.Cat.Home(blk) != i {
				continue
			}
			if err := n.dbn.GCS.GetBlock(p, blk, false); err != nil {
				continue
			}
			n.dbn.Cache.Unpin(blk)
			r.warmupFetches++
			if fetched++; fetched >= warmupCap {
				return
			}
		}
	}
}

// buddyOf returns the next live node after dead in the ring: the server
// whose dual-ported enclosure connection reaches the dead node's disks.
func (r *recState) buddyOf(dead int) int {
	n := r.c.P.Nodes
	for k := 1; k < n; k++ {
		j := (dead + k) % n
		if !r.down[j] {
			return j
		}
	}
	return dead
}

// failoverTarget redirects a terminal whose preferred server is down to the
// next live node in the ring.
func (r *recState) failoverTarget(pref int) int {
	n := r.c.P.Nodes
	for k := 1; k < n; k++ {
		j := (pref + k) % n
		if !r.down[j] {
			return j
		}
	}
	return pref
}

// newWait registers a recovery wait: a mailbox that collects any number of
// messages routed to its id (unlike GCS requests, which consume on wake).
func (r *recState) newWait() (uint64, *sim.Mailbox) {
	r.nextWait++
	mb := sim.NewMailbox(r.c.Sim)
	r.waiters[r.nextWait] = mb
	return r.nextWait, mb
}

// wakeWait delivers one message to a registered wait (late replies to
// dropped waits are ignored).
func (r *recState) wakeWait(id uint64, v any) {
	if mb, ok := r.waiters[id]; ok {
		mb.Send(v)
	}
}

// dropWait abandons a wait.
func (r *recState) dropWait(id uint64) { delete(r.waiters, id) }
