package core

import (
	"testing"

	"dclue/internal/sim"
)

func TestLataLayout(t *testing.T) {
	cases := []struct {
		nodes, per int
		want       []int
	}{
		{4, 12, []int{4}},
		{12, 12, []int{12}},
		{16, 12, []int{12, 4}},
		{24, 12, []int{12, 12}},
		{25, 12, []int{12, 12, 1}},
		{8, 4, []int{4, 4}},
	}
	for _, c := range cases {
		p := DefaultParams(c.nodes)
		p.NodesPerLata = c.per
		got := p.LataLayout()
		if len(got) != len(c.want) {
			t.Fatalf("LataLayout(%d,%d) = %v, want %v", c.nodes, c.per, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("LataLayout(%d,%d) = %v, want %v", c.nodes, c.per, got, c.want)
			}
		}
	}
}

func TestWarehouseCountRules(t *testing.T) {
	p := DefaultParams(4)
	if p.WarehouseCount() != 160 {
		t.Fatalf("linear warehouses %d, want 160", p.WarehouseCount())
	}
	p.Warehouses = 99
	if p.WarehouseCount() != 99 {
		t.Fatal("explicit warehouse count not honored")
	}
	p.Warehouses = 0
	p.Growth = GrowthSqrtBeyond90K
	w := p.WarehouseCount()
	if w >= 160 || w <= 72 {
		t.Fatalf("sqrt growth gave %d, want between 72 and 160", w)
	}
	// Below the knee the rules agree.
	q := DefaultParams(1)
	q.Growth = GrowthSqrtBeyond90K
	if q.WarehouseCount() != 40 {
		t.Fatalf("sqrt growth below knee %d, want 40", q.WarehouseCount())
	}
}

func TestSqrtGrowthWarehouses(t *testing.T) {
	if SqrtGrowthWarehouses(50) != 50 {
		t.Fatal("below knee must be identity")
	}
	if got := SqrtGrowthWarehouses(72); got != 72 {
		t.Fatalf("at knee: %d", got)
	}
	big := SqrtGrowthWarehouses(960)
	if big >= 960 || big <= 72 {
		t.Fatalf("far past knee: %d", big)
	}
	// Monotone.
	prev := 0
	for _, lin := range []int{72, 100, 200, 400, 960} {
		g := SqrtGrowthWarehouses(lin)
		if g < prev {
			t.Fatalf("sqrt growth not monotone at %d", lin)
		}
		prev = g
	}
}

func TestCostModelsDiffer(t *testing.T) {
	p := DefaultParams(2)
	hw := p.tcpCosts()
	p.SWTCP = true
	sw := p.tcpCosts()
	if sw.RecvPerByte <= hw.RecvPerByte || sw.SendPerSegment <= hw.SendPerSegment {
		t.Fatal("software TCP not more expensive than offloaded")
	}
	if sw.RecvPerByte <= sw.SendPerByte {
		t.Fatal("receive path must cost more than send (2 copies vs 1)")
	}
	p.SWiSCSI = true
	if p.iscsiCosts().CRCPerByte == 0 {
		t.Fatal("software iSCSI must pay CRC per byte")
	}
}

func TestLowComputationScalesCosts(t *testing.T) {
	p := DefaultParams(2)
	normal := p.opCosts()
	p.LowComputation = true
	low := p.opCosts()
	if low.RowRead*4 != normal.RowRead || low.TxnBegin*4 != normal.TxnBegin {
		t.Fatal("low computation is not a 4x path-length reduction")
	}
	// Non-computational costs (protocol handling) stay put.
	if low.CtlMsgHandle != normal.CtlMsgHandle {
		t.Fatal("message handling should not scale with computation weight")
	}
}

func TestFeasibleCriteria(t *testing.T) {
	m := Metrics{TpmC: 12.5 * 10, RespTimeMs: 100}
	if !feasible(m, 10) {
		t.Fatal("exact offered load with fast responses must be feasible")
	}
	m.TpmC = 12.5 * 10 * 0.5
	if feasible(m, 10) {
		t.Fatal("half the offered load must be infeasible")
	}
	m.TpmC = 12.5 * 10
	m.RespTimeMs = feasibleRespMsScaled * 2
	if feasible(m, 10) {
		t.Fatal("slow responses must be infeasible")
	}
}

func TestDefaultParamsScaledConsistently(t *testing.T) {
	p := DefaultParams(4)
	if p.Scale != 100 {
		t.Fatalf("default scale %v", p.Scale)
	}
	// 1 Gb/s scaled 100x -> 10 Mb/s.
	if p.NodeLinkBps != 1e7 {
		t.Fatalf("node link %v", p.NodeLinkBps)
	}
	// 10000 pkt/s in the scaled model.
	if p.RouterFwdRate != 10000 {
		t.Fatalf("router rate %v", p.RouterFwdRate)
	}
	if p.Warmup <= 0 || p.Measure <= 0 {
		t.Fatal("run windows must be positive")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Nodes: 4, Affinity: 0.8, TpmC: 123.4}
	s := m.String()
	for _, want := range []string{"nodes=4", "tpmC", "123.4"} {
		if !contains(s, want) {
			t.Fatalf("Metrics.String missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestExtraLatencyKnobReachesTopology(t *testing.T) {
	p := quickParams(2)
	p.NodesPerLata = 1
	p.ExtraLatency = 3 * sim.Millisecond
	c := mustNew(t, p)
	defer c.Sim.Shutdown()
	if c.Topo.Config.ExtraInterLataLatency != 3*sim.Millisecond {
		t.Fatal("extra latency not plumbed to topology")
	}
}
