package core

import (
	"fmt"

	"dclue/internal/netsim"
	"dclue/internal/telemetry"
)

// This file wires the unified telemetry registry (internal/telemetry) into
// the cluster: instrument creation at assembly, re-attachment across node
// crash-restarts, and the end-of-run utilization decomposition. All of it is
// gated on Params.Telemetry; an untelemetered run never allocates a registry
// and every component hook short-circuits on its nil instrument handle.

// Link groups for the utilization decomposition.
const (
	telGroupNode = iota
	telGroupInterLata
	telGroupClient
)

// telLink pairs an instrumented link with its group so collectTelemetry can
// cross-check the per-class attribution against the link's own counter.
type telLink struct {
	group int
	link  *netsim.Link
	tel   *telemetry.LinkTel
}

// initTelemetry creates this run's registry and the per-node engine
// instruments (CPU, GCS). These are created before node assembly because
// attachEngine attaches them — and re-attaches them when a crashed node
// boots a fresh engine, so a node's counters stay cumulative across
// restarts.
func (c *Cluster) initTelemetry() {
	if c.P.Telemetry == nil {
		return
	}
	reg := c.P.Telemetry.NewRegistry(c.P.telemetryLabel())
	c.telReg = reg
	for i := 0; i < c.P.Nodes; i++ {
		c.telCPU = append(c.telCPU, reg.NewCPU(fmt.Sprintf("node%d.cpu", i)))
		c.telGCS = append(c.telGCS, reg.NewGCS(fmt.Sprintf("node%d.gcs", i)))
	}
}

// instrumentFabric attaches link, queue and disk instruments once the
// topology and nodes exist. The hardware persists across crash-restarts
// (NICs, links, enclosures), so these attach exactly once. Queue names match
// the trace layer's gauge sampler so the two observability surfaces line up.
func (c *Cluster) instrumentFabric() {
	reg := c.telReg
	if reg == nil {
		return
	}
	hook := func(group int, name string, l *netsim.Link) {
		lt := reg.NewLink(name)
		l.SetTelemetry(lt)
		c.telLinks = append(c.telLinks, telLink{group: group, link: l, tel: lt})
	}
	for i := range c.nodes {
		up, down := c.Topo.NodeLinks(i)
		hook(telGroupNode, fmt.Sprintf("node%d.up", i), up)
		hook(telGroupNode, fmt.Sprintf("node%d.down", i), down)
		up.Queue().SetTelemetry(reg.NewQueue(fmt.Sprintf("node%d.nic", i)))
	}
	for l := range c.Topo.Config.NodesPerLata {
		up, down := c.Topo.InterLataLinkPair(l)
		hook(telGroupInterLata, fmt.Sprintf("interlata%d.up", l), up)
		hook(telGroupInterLata, fmt.Sprintf("interlata%d.down", l), down)
	}
	cUp, cDown := c.Topo.ClientLinks()
	hook(telGroupClient, "client.up", cUp)
	hook(telGroupClient, "client.down", cDown)
	cUp.Queue().SetTelemetry(reg.NewQueue("client.nic"))
	for ri, r := range c.Topo.Inner {
		for pi, q := range r.Ports() {
			q.SetTelemetry(reg.NewQueue(fmt.Sprintf("inner%d.port%d", ri, pi)))
		}
	}
	for pi, q := range c.Topo.Outer.Ports() {
		q.SetTelemetry(reg.NewQueue(fmt.Sprintf("outer.port%d", pi)))
	}
	for i, n := range c.nodes {
		for d, drv := range n.drives {
			dt := reg.NewDisk(fmt.Sprintf("node%d.disk%d", i, d))
			drv.SetTelemetry(dt)
			c.telDisks = append(c.telDisks, dt)
		}
		lt := reg.NewDisk(fmt.Sprintf("node%d.log", i))
		n.logDisk.SetTelemetry(lt)
		c.telLogs = append(c.telLogs, lt)
	}
	if c.san != nil {
		for d, drv := range c.san.Drives {
			dt := reg.NewDisk(fmt.Sprintf("san.disk%d", d))
			drv.SetTelemetry(dt)
			c.telDisks = append(c.telDisks, dt)
		}
	}
}

// collectTelemetry fills the utilization decomposition from the instruments
// and seals the registry, making it visible to the collector's exporters.
func (c *Cluster) collectTelemetry(m *Metrics) {
	u := &m.UtilDecomp
	u.Enabled = true
	u.ElapsedSec = c.Sim.Now().Seconds()
	for _, tl := range c.telLinks {
		total := tl.link.BusyTime()
		//lint:allow telemnil every telLink is built around a live instrument at hook time
		if tl.tel.BusyTotal() != total {
			u.AttribMismatch++
		}
		cu, sec := classUtilOf(tl.tel), total.Seconds()
		switch tl.group {
		case telGroupNode:
			u.NodeLinks = u.NodeLinks.add(cu)
			u.NodeLinksBusySec += sec
		case telGroupInterLata:
			u.InterLata = u.InterLata.add(cu)
			u.InterLataBusySec += sec
		case telGroupClient:
			u.ClientLink = u.ClientLink.add(cu)
			u.ClientBusySec += sec
		}
	}
	for _, ct := range c.telCPU {
		u.CPUThreadSec += ct.ThreadBusy.Seconds()
		u.CPUIrqSec += ct.IRQBusy.Seconds()
	}
	for _, dt := range c.telDisks {
		u.DiskBusySec += dt.Busy.Seconds()
	}
	for _, dt := range c.telLogs {
		u.LogDiskBusySec += dt.Busy.Seconds()
	}
	for _, gt := range c.telGCS {
		u.GCSCtlMsgs += gt.CtlMsgs
		u.GCSDataMsgs += gt.DataMsgs
		u.LockWaitSec += gt.LockWait.Sum()
	}
	if col := c.P.Telemetry; col != nil {
		col.Seal(c.telReg)
	}
}

// classUtilOf converts a link's per-class busy times to reported seconds.
func classUtilOf(lt *telemetry.LinkTel) ClassUtil {
	return ClassUtil{
		IPC:       lt.Busy[telemetry.ClassIPC].Seconds(),
		ISCSI:     lt.Busy[telemetry.ClassISCSI].Seconds(),
		Client:    lt.Busy[telemetry.ClassClient].Seconds(),
		FTP:       lt.Busy[telemetry.ClassFTP].Seconds(),
		Heartbeat: lt.Busy[telemetry.ClassHeartbeat].Seconds(),
		Other:     lt.Busy[telemetry.ClassOther].Seconds(),
	}
}
