package core

import (
	"fmt"

	"dclue/internal/netsim"
	"dclue/internal/rng"
	"dclue/internal/sim"
	"dclue/internal/tcp"
	"dclue/internal/telemetry"
	"dclue/internal/tpcc"
	"dclue/internal/trace"
)

// terminal is one TPC-C terminal: per the spec it is tied to a single
// warehouse (and district) and issues business transactions — a new-order
// followed by companion transactions in the nominal proportions — over a
// fresh client-server TCP connection each (§2.3). The affinity parameter
// decides whether a business transaction goes to the warehouse's home
// server or a random one.
func (c *Cluster) terminal(p *sim.Proc, w, t int) {
	r := rng.Derive(c.P.Seed, fmt.Sprintf("terminal-%d-%d", w, t))
	d := t % tpcc.Districts
	home := c.Eng.WarehouseOwner(w)
	var reqID uint64

	// Stagger terminal starts across the early warmup to avoid a thundering
	// herd at t=0 (the warm-up statistics are discarded anyway).
	p.Sleep(sim.Time(r.Float64() * 0.4 * float64(c.P.Warmup)))

	for {
		target := home
		if !r.Bool(c.P.Affinity) {
			target = r.Intn(c.P.Nodes)
		}
		// Client-side failover (recovery-armed runs only): a terminal whose
		// server is known down redirects to the next live node instead of
		// burning a SYN retransmission cycle against a dead address. The rng
		// draws above happen regardless, so the terminal's stream stays
		// aligned with fault-free runs.
		if c.rec != nil && c.rec.down[target] {
			target = c.rec.failoverTarget(target)
			c.rec.clientRetries++
		}
		conn := tcp.Dial(p, c.clientStack, nodeAddrOf(target), PortClient,
			tcp.DialOptions{Class: netsim.ClassBestEffort, MaxRetx: 50, TC: telemetry.ClassClient})
		if conn == nil {
			p.Sleep(1 * sim.Second)
			continue
		}
		inbox := sim.NewMailbox(p.Sim())
		conn.SetOnMessage(func(m tcp.Message) { inbox.Send(m.Meta) })

		for _, ty := range businessSequence(r) {
			// Keying + think time precede each transaction (spec shape,
			// unscaled: the per-warehouse arrival rate is what the 100x
			// platform scaling leaves constant).
			p.Sleep(sim.Time(r.Exp(float64(tpcc.MeanTxnDelay(ty)))))
			reqID++
			sent := p.Now()
			// Offer the transaction to the trace sampler; the span (if any)
			// rides the request to the server worker and is finished here
			// when the reply arrives.
			var sp *trace.Span
			if c.tr != nil {
				sp = c.tr.StartSpan(sent, w*c.P.TerminalsPerWarehouse+t)
			}
			conn.Enqueue(clientReq{id: reqID, req: tpcc.Request{Type: ty, Warehouse: w, District: d}, span: sp},
				tpcc.ReqBytes)
			// Terminals wait out slow responses: abandoning a request whose
			// transaction is still executing server-side would let the
			// terminal's next transaction deadlock with its own zombie on
			// the same district row. The long stop-loss only covers a
			// reply that can never arrive. With recovery armed it tightens:
			// a crash kills the server worker outright (no zombie survives),
			// so a terminal caught mid-request re-dials after a bounded wait
			// instead of sitting out the whole outage.
			stopLoss := 600 * sim.Second
			if c.rec != nil {
				stopLoss = 30 * sim.Second
			}
			if _, ok := inbox.RecvTimeout(p, stopLoss); !ok {
				break
			}
			if c.measuring {
				c.respTally.n++
				c.respTally.sum += p.Now() - sent
				c.respHist.Add((p.Now() - sent).Millis())
				if sp != nil {
					sp.Finish(p.Now())
				}
			}
		}
		conn.Close()
	}
}

// businessSequence draws one business transaction: a new-order plus
// companions so that the long-run mix matches 43/43/5/5/4.
func businessSequence(r *rng.Stream) []tpcc.TxnType {
	seq := []tpcc.TxnType{tpcc.TxnNewOrder, tpcc.TxnPayment}
	if r.Bool(5.0 / 43.0) {
		seq = append(seq, tpcc.TxnOrderStatus)
	}
	if r.Bool(5.0 / 43.0) {
		seq = append(seq, tpcc.TxnDelivery)
	}
	if r.Bool(4.0 / 43.0) {
		seq = append(seq, tpcc.TxnStockLevel)
	}
	return seq
}
