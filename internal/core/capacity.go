package core

import "math"

// Feasibility thresholds for the capacity search: a configuration "keeps
// up" when achieved throughput is close to offered and response times stay
// within the (scaled) TPC-C-style bound.
const (
	feasibleTpmCFraction = 0.85
	feasibleRespMsScaled = 8000 // 8 s scaled = 80 ms unscaled at scale 100
	tpmCPerWarehouse     = 12.5
)

// CapacityResult reports a capacity search outcome.
type CapacityResult struct {
	Metrics    Metrics
	Warehouses int
	Feasible   bool // false when even the smallest configuration thrashed
}

// MeasureCapacity finds the largest TPC-C configuration the cluster
// sustains and returns its metrics. TPC-C couples database size to
// throughput (≈12.5 tpm-C per warehouse), so "throughput at N nodes" is the
// largest warehouse population whose offered load the cluster still serves
// with healthy response times — the paper's scaling experiments follow this
// self-sizing rule (§2.2). The search is a binary search over warehouses
// per node (1..maxPerNode), each probe being a deterministic full run.
// A probe that fails outright (construction or mid-run error) is treated
// as infeasible.
func MeasureCapacity(p Params, maxPerNode int) CapacityResult {
	return SearchCapacity(p, maxPerNode, Run, nil)
}

// CapacityProbe evaluates one capacity-search candidate. It must behave as
// a pure, deterministic function of its Params: the search result is a
// function of probe outcomes only.
type CapacityProbe func(Params) (Metrics, error)

// SearchCapacity is MeasureCapacity with pluggable probe execution. It runs
// the same bisection over warehouses per node in [1, maxPerNode]; probe is
// called for every candidate the search visits, in bisection order. Before
// each probe, speculate (when non-nil) receives the candidate configurations
// the search may visit next — one for each branch of the pending feasibility
// decision — so a parallel driver can start warming them while the current
// probe runs; speculate must not block. Because the visited path depends
// only on probe outcomes, any driver whose probe agrees with sequential Run
// produces a byte-identical CapacityResult.
func SearchCapacity(p Params, maxPerNode int, probe CapacityProbe, speculate func(...Params)) CapacityResult {
	if maxPerNode <= 0 {
		maxPerNode = 48
	}
	candidate := func(lo, hi int) (Params, bool) {
		if lo > hi {
			return Params{}, false
		}
		q := p
		q.Warehouses = (lo + hi) / 2 * p.Nodes
		return q, true
	}
	lo, hi := 1, maxPerNode
	var best Metrics
	bestW := 0
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		q := p
		q.Warehouses = mid * p.Nodes
		if speculate != nil {
			// The two configurations the next iteration probes, depending on
			// whether mid turns out feasible (search moves up) or not (down).
			next := make([]Params, 0, 2)
			if c, ok := candidate(mid+1, hi); ok {
				next = append(next, c)
			}
			if c, ok := candidate(lo, mid-1); ok {
				next = append(next, c)
			}
			speculate(next...)
		}
		m, err := probe(q)
		if err != nil {
			hi = mid - 1
			continue
		}
		if feasible(m, q.Warehouses) {
			best, bestW, found = m, q.Warehouses, true
			lo = mid + 1
		} else {
			if !found {
				// Track the latest undersized-but-infeasible probe so a fully
				// saturated cluster still reports its (degraded) plateau.
				best, bestW = m, q.Warehouses
			}
			hi = mid - 1
		}
	}
	return CapacityResult{Metrics: best, Warehouses: bestW, Feasible: found}
}

// feasible applies the keep-up criteria.
func feasible(m Metrics, warehouses int) bool {
	offered := tpmCPerWarehouse * float64(warehouses)
	return m.TpmC >= feasibleTpmCFraction*offered && m.RespTimeMs <= feasibleRespMsScaled
}

// SqrtGrowthWarehouses applies Fig 10's rule to a linear-rule warehouse
// count: TPC-C sizing up to 90 K tpm-C (7200 warehouses unscaled, 72
// scaled), then warehouses grow with the square root of the additional
// throughput.
func SqrtGrowthWarehouses(linear int) int {
	const knee = 72
	if linear <= knee {
		return linear
	}
	return knee + int(math.Sqrt(20*float64(linear-knee)))
}
