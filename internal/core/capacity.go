package core

import "math"

// Feasibility thresholds for the capacity search: a configuration "keeps
// up" when achieved throughput is close to offered and response times stay
// within the (scaled) TPC-C-style bound.
const (
	feasibleTpmCFraction = 0.85
	feasibleRespMsScaled = 8000 // 8 s scaled = 80 ms unscaled at scale 100
	tpmCPerWarehouse     = 12.5
)

// CapacityResult reports a capacity search outcome.
type CapacityResult struct {
	Metrics    Metrics
	Warehouses int
	Feasible   bool // false when even the smallest configuration thrashed
}

// MeasureCapacity finds the largest TPC-C configuration the cluster
// sustains and returns its metrics. TPC-C couples database size to
// throughput (≈12.5 tpm-C per warehouse), so "throughput at N nodes" is the
// largest warehouse population whose offered load the cluster still serves
// with healthy response times — the paper's scaling experiments follow this
// self-sizing rule (§2.2). The search is a binary search over warehouses
// per node (1..maxPerNode), each probe being a deterministic full run.
// A probe that fails outright (construction or mid-run error) is treated
// as infeasible.
func MeasureCapacity(p Params, maxPerNode int) CapacityResult {
	if maxPerNode <= 0 {
		maxPerNode = 48
	}
	lo, hi := 1, maxPerNode
	var best Metrics
	bestW := 0
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		q := p
		q.Warehouses = mid * p.Nodes
		m, err := Run(q)
		if err != nil {
			hi = mid - 1
			continue
		}
		if feasible(m, q.Warehouses) {
			best, bestW, found = m, q.Warehouses, true
			lo = mid + 1
		} else {
			if !found || m.TpmC > best.TpmC {
				// Track the best even when infeasible so a fully saturated
				// cluster still reports its (degraded) plateau.
				if !found {
					best, bestW = m, q.Warehouses
				}
			}
			hi = mid - 1
		}
	}
	return CapacityResult{Metrics: best, Warehouses: bestW, Feasible: found}
}

// feasible applies the keep-up criteria.
func feasible(m Metrics, warehouses int) bool {
	offered := tpmCPerWarehouse * float64(warehouses)
	return m.TpmC >= feasibleTpmCFraction*offered && m.RespTimeMs <= feasibleRespMsScaled
}

// SqrtGrowthWarehouses applies Fig 10's rule to a linear-rule warehouse
// count: TPC-C sizing up to 90 K tpm-C (7200 warehouses unscaled, 72
// scaled), then warehouses grow with the square root of the additional
// throughput.
func SqrtGrowthWarehouses(linear int) int {
	const knee = 72
	if linear <= knee {
		return linear
	}
	return knee + int(math.Sqrt(20*float64(linear-knee)))
}
