package core

import (
	"math"
	"strings"
	"testing"

	"dclue/internal/sim"
	"dclue/internal/telemetry"
)

// TestTelemetryNonPerturbing is the telemetry layer's central guarantee: a
// fully instrumented run (every link, queue, CPU, disk and GCS hooked, with
// per-second timelines) follows the exact same trajectory as a bare run.
// Everything outside the utilization decomposition must hash identically.
func TestTelemetryNonPerturbing(t *testing.T) {
	p := quickParams(2)
	base := mustRun(t, p)

	p.Telemetry = telemetry.NewCollector(sim.Second)
	telem := mustRun(t, p)

	if got, want := telem.FingerprintSansTelemetry(), base.Fingerprint(); got != want {
		t.Fatalf("telemetered run diverged: fingerprint %x, bare %x\ntelemetered: %vbare: %v",
			got, want, telem, base)
	}
	if !telem.UtilDecomp.Enabled {
		t.Fatal("telemetered run reported no decomposition")
	}
	if base.UtilDecomp.Enabled {
		t.Fatal("bare run reported a decomposition")
	}
}

// TestTelemetryAttributionExact checks the attribution identity the
// decomposition advertises: summed per class, a link's telemetry busy time
// equals the link's own busy counter (integer sim.Time equality, surfaced as
// AttribMismatch), and the reported class-group sums agree with the group
// totals to float rounding.
func TestTelemetryAttributionExact(t *testing.T) {
	p := quickParams(2)
	p.Telemetry = telemetry.NewCollector(0)
	m := mustRun(t, p)

	u := m.UtilDecomp
	if u.AttribMismatch != 0 {
		t.Fatalf("%d links with per-class busy times not summing to the link counter", u.AttribMismatch)
	}
	check := func(name string, cu ClassUtil, total float64) {
		if diff := math.Abs(cu.Sum() - total); diff > 1e-9*(total+1) {
			t.Errorf("%s: class sum %.9fs vs group total %.9fs", name, cu.Sum(), total)
		}
	}
	check("node links", u.NodeLinks, u.NodeLinksBusySec)
	check("inter-LATA", u.InterLata, u.InterLataBusySec)
	check("client link", u.ClientLink, u.ClientBusySec)

	// A healthy warm run exercises every instrumented component (heartbeats
	// only flow in crash/restart runs — see TestTelemetrySurvivesRestart).
	if u.NodeLinks.IPC <= 0 || u.NodeLinks.ISCSI <= 0 || u.NodeLinks.Client <= 0 {
		t.Fatalf("degenerate class decomposition: %+v", u.NodeLinks)
	}
	if u.CPUThreadSec <= 0 || u.DiskBusySec <= 0 || u.LogDiskBusySec <= 0 {
		t.Fatalf("idle platform instruments: cpu=%v disk=%v log=%v", u.CPUThreadSec, u.DiskBusySec, u.LogDiskBusySec)
	}
	if u.GCSCtlMsgs == 0 || u.GCSDataMsgs == 0 {
		t.Fatalf("GCS instruments saw no messages: %+v", u)
	}
}

// TestTelemetrySurvivesRestart: instruments stay attached across a node
// crash and rejoin — the fresh engine re-attaches the same cumulative CPU
// and GCS instruments, and the recovery pipeline records its phase timeline
// into the registry (visible through the JSONL export).
func TestTelemetrySurvivesRestart(t *testing.T) {
	p := quickParams(2)
	p.FaultSpec = "crash:dp1@70+0;restart:dp1@100+0"
	col := telemetry.NewCollector(0)
	p.Telemetry = col
	m := mustRun(t, p)
	if m.UtilDecomp.AttribMismatch != 0 {
		t.Fatalf("attribution broke across restart: %d mismatches", m.UtilDecomp.AttribMismatch)
	}
	if m.UtilDecomp.NodeLinks.Heartbeat <= 0 {
		t.Fatalf("membership run recorded no heartbeat traffic: %+v", m.UtilDecomp.NodeLinks)
	}

	var out strings.Builder
	if err := col.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"fence", "remaster", "replay", "open", "readmit"} {
		if !strings.Contains(out.String(), `"phase":"`+phase+`"`) {
			t.Errorf("no %q recovery phase in the export", phase)
		}
	}
	if !strings.Contains(out.String(), `"component":"recover-1"`) {
		t.Error("recovery phases not attributed to the dead node")
	}
}
